// Package ctxflow is the golden fixture for the context-discipline
// analyzer: no context.Background()/TODO() outside main (and never where
// a ctx is already in scope), loop sends must be gated on ctx.Done(),
// and ctx-taking functions must not block in ways cancellation cannot
// reach.
package ctxflow

import (
	"context"
	"sync"
	"time"
)

func doWork(ctx context.Context) error { return ctx.Err() }

// mintRoot mints a root context in a library package.
func mintRoot() context.Context {
	return context.Background() // want "outside func main"
}

// todoRoot: TODO is the same violation.
func todoRoot() context.Context {
	return context.TODO() // want "outside func main"
}

// discard drops the caller's cancellation on the floor.
func discard(ctx context.Context) error {
	return doWork(context.Background()) // want "discards the ctx already in scope"
}

// threads is the clean idiom: derive and pass on.
func threads(ctx context.Context) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return doWork(tctx)
}

// discardInClosure: closures inherit the obligation — they captured ctx.
func discardInClosure(ctx context.Context) func() error {
	return func() error {
		return doWork(context.Background()) // want "discards the ctx already in scope"
	}
}

// pump sends in a loop with nothing listening for cancellation.
func pump(ctx context.Context, out chan<- int) {
	for i := 0; i < 10; i++ {
		out <- i // want "channel send in a loop without selecting on ctx.Done"
	}
}

// pumpGated is the clean idiom: every send can lose to ctx.Done.
func pumpGated(ctx context.Context, out chan<- int) {
	for i := 0; i < 10; i++ {
		select {
		case out <- i:
		case <-ctx.Done():
			return
		}
	}
}

// waitBare blocks on a receive the ctx cannot interrupt.
func waitBare(ctx context.Context, ch chan int) {
	<-ch // want "bare channel receive ignores the in-scope ctx"
}

// waitSelect blocks on a select with no escape clause.
func waitSelect(ctx context.Context, a, b chan int) {
	select { // want "select blocks without a ctx.Done"
	case <-a:
	case <-b:
	}
}

// waitDone is clean: cancellation is one of the cases.
func waitDone(ctx context.Context, a chan int) {
	select {
	case <-a:
	case <-ctx.Done():
	}
}

// joinBare waits on a WaitGroup the ctx cannot interrupt.
func joinBare(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want "WaitGroup.Wait ignores the in-scope ctx"
}

// joinHelper is the clean join idiom: the blocking wait moves into a
// helper goroutine and the function selects on the result and ctx.
func joinHelper(ctx context.Context, wg *sync.WaitGroup) error {
	idle := make(chan struct{})
	go func() {
		wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// plainPump has no ctx in scope: channel use is unconstrained here.
func plainPump(out chan<- int) {
	for i := 0; i < 3; i++ {
		out <- i
	}
}
