package slave

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/wire"
)

// Options tunes the slave loop.
type Options struct {
	// NotifyEvery is the minimum interval between progress notifications.
	NotifyEvery time.Duration
	// Poll is how long to stand by before re-asking when the master had
	// nothing for us.
	Poll time.Duration
	// TopK bounds how many hits per task travel back to the master;
	// 0 means all.
	TopK int
	// AlignBest runs the traceback phase for the best hit of every task
	// (engines implementing Aligner only) and ships the alignment rows.
	AlignBest bool
}

func (o *Options) fill() {
	if o.NotifyEvery <= 0 {
		o.NotifyEvery = 500 * time.Millisecond
	}
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
}

// Run registers the engine with the master behind caller and executes the
// request/execute/notify loop until the master reports the job done. It
// returns the number of tasks this slave completed (accepted or not).
func Run(caller wire.Caller, eng Engine, opts Options) (int, error) {
	opts.fill()
	resp, err := caller.Call(wire.Envelope{Register: &wire.RegisterMsg{
		Name:          eng.Name(),
		Kind:          eng.Kind(),
		DeclaredSpeed: eng.DeclaredSpeed(),
	}})
	if err != nil {
		return 0, err
	}
	if resp.RegisterAck == nil {
		return 0, fmt.Errorf("slave: master did not acknowledge registration")
	}
	id := resp.RegisterAck.Slave

	canceled := newCancelSet()
	completed := 0
	jobDone := false
	for !jobDone {
		resp, err := caller.Call(wire.Envelope{Request: &wire.RequestMsg{Slave: id}})
		if err != nil {
			return completed, err
		}
		a := resp.Assign
		if a == nil {
			return completed, fmt.Errorf("slave: unexpected response to Request")
		}
		if a.Done {
			return completed, nil
		}
		if len(a.Tasks) == 0 {
			time.Sleep(opts.Poll)
			continue
		}
		for _, spec := range a.Tasks {
			if canceled.has(spec.ID) {
				continue
			}
			done, finished, err := runTask(caller, eng, id, spec, canceled, opts)
			if err != nil {
				return completed, err
			}
			if done {
				completed++
			}
			if finished {
				jobDone = true
			}
		}
	}
	return completed, nil
}

// runTask executes one task, streaming progress notifications and honoring
// cancellations that piggyback on their acknowledgements.
func runTask(caller wire.Caller, eng Engine, id sched.SlaveID, spec wire.TaskSpec, canceled *cancelSet, opts Options) (completed, jobDone bool, err error) {
	query := &seq.Sequence{ID: spec.QueryID, Residues: spec.Residues}
	var callErr error
	lastNotify := time.Now()
	var lastCells int64
	progress := func(cells int64) {
		now := time.Now()
		elapsed := now.Sub(lastNotify)
		if elapsed < opts.NotifyEvery || callErr != nil {
			return
		}
		delta := cells - lastCells
		rate := float64(delta) / elapsed.Seconds()
		resp, err := caller.Call(wire.Envelope{Progress: &wire.ProgressMsg{Slave: id, Rate: rate, Cells: delta}})
		if err != nil {
			callErr = err
			return
		}
		if resp.ProgressAck != nil {
			canceled.add(resp.ProgressAck.Cancel)
		}
		lastNotify, lastCells = now, cells
	}

	hits, err := eng.Search(query, progress, canceled.channelFor(spec.ID))
	if callErr != nil {
		return false, false, callErr
	}
	if err == ErrCanceled {
		return false, false, nil
	}
	if err != nil {
		return false, false, fmt.Errorf("slave: task %d: %w", spec.ID, err)
	}
	top := TopK(hits, opts.TopK)
	if opts.AlignBest && len(top) > 0 && top[0].Score > 0 {
		if al, ok := eng.(Aligner); ok {
			if a, err := al.AlignHit(query, top[0].Index); err == nil {
				top[0].QueryRow, top[0].TargetRow = a.QueryRow, a.TargetRow
				top[0].QueryStart, top[0].QueryEnd = a.QueryStart, a.QueryEnd
				top[0].TargetStart, top[0].TargetEnd = a.TargetStart, a.TargetEnd
			}
		}
	}
	resp, err := caller.Call(wire.Envelope{Complete: &wire.CompleteMsg{
		Slave: id, Task: spec.ID, Hits: top,
	}})
	if err != nil {
		return false, false, err
	}
	if resp.CompleteAck != nil {
		canceled.add(resp.CompleteAck.Cancel)
		jobDone = resp.CompleteAck.Done
	}
	return true, jobDone, nil
}

// cancelSet tracks canceled task IDs and exposes a close-once channel per
// task so engines can abort mid-scan.
type cancelSet struct {
	mu    sync.Mutex
	ids   map[sched.TaskID]bool
	chans map[sched.TaskID]chan struct{}
}

func newCancelSet() *cancelSet {
	return &cancelSet{ids: map[sched.TaskID]bool{}, chans: map[sched.TaskID]chan struct{}{}}
}

func (c *cancelSet) add(ids []sched.TaskID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		if c.ids[id] {
			continue
		}
		c.ids[id] = true
		if ch, ok := c.chans[id]; ok {
			close(ch)
		}
	}
}

func (c *cancelSet) has(id sched.TaskID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ids[id]
}

func (c *cancelSet) channelFor(id sched.TaskID) <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.chans[id]
	if !ok {
		ch = make(chan struct{})
		c.chans[id] = ch
		if c.ids[id] {
			close(ch)
		}
	}
	return ch
}
