package analysis

// This file is the generic forward-dataflow engine the flow-sensitive
// analyzers share. A FlowProblem supplies the lattice operations — an
// entry fact, join, equality, and a per-block transfer — and Solve runs
// the classic worklist iteration to a fixpoint, returning the fact that
// holds on entry to every reachable block. Analyzers typically key their
// facts by go/types objects (a mutex path, a context variable) so that
// the same variable is tracked across blocks regardless of spelling.
//
// Facts must be treated as immutable: Transfer must return a fresh value
// rather than mutating its input, because the input fact is shared with
// the block's in-state map.

// FlowProblem describes one forward dataflow analysis over a CFG.
type FlowProblem[T any] struct {
	// Entry is the fact holding on entry to the function.
	Entry T
	// Join merges the facts of two predecessors at a control-flow merge.
	Join func(a, b T) T
	// Equal reports whether two facts are the same; the fixpoint
	// iteration stops re-queuing a block once its in-fact is stable.
	Equal func(a, b T) bool
	// Transfer computes the fact after executing block b given the fact
	// before it.
	Transfer func(b *Block, in T) T
}

// Solve runs the worklist algorithm to a fixpoint and returns the
// in-fact of every block reachable from Entry. Unreachable blocks (dead
// code after return/panic) have no entry in the result.
func Solve[T any](g *CFG, p FlowProblem[T]) map[*Block]T {
	in := map[*Block]T{g.Entry: p.Entry}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := p.Transfer(b, in[b])
		for _, s := range b.Succs {
			prev, seen := in[s]
			var next T
			if seen {
				next = p.Join(prev, out)
				if p.Equal(prev, next) {
					continue
				}
			} else {
				next = out
			}
			in[s] = next
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}
