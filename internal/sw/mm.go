package sw

import "repro/internal/score"

// This file implements the Myers-Miller (1988) divide-and-conquer alignment,
// which recovers an optimal affine-gap alignment in O(m+n) space instead of
// the O(mn) matrix used by Align/AlignGlobal. The paper cites this family of
// techniques ([4]: "Smith-Waterman Alignment of Huge Sequences with GPU in
// Linear Space") as the way to align sequences whose DP matrix cannot be
// stored.
//
// Orientation: the first sequence q is split at its midpoint; only vertical
// gaps (q residues aligned to '-') can cross a split boundary. tb and te are
// the gap-open penalties in force at the top and bottom boundaries of a
// block: 0 when the block's boundary gap continues an enclosing gap.

// mmAligner carries the shared state of one Myers-Miller run.
type mmAligner struct {
	s          score.Scheme
	qRow, tRow []byte // emitted alignment rows
}

// AlignGlobalLinear computes an optimal global alignment of q vs t in linear
// space. It produces the same score as AlignGlobal (the traceback itself may
// differ among co-optimal alignments).
func AlignGlobalLinear(q, t []byte, s score.Scheme) *Alignment {
	a := &mmAligner{s: s}
	sc := a.diff(q, t, s.Gap.Open, s.Gap.Open)
	return &Alignment{
		Score:    sc,
		QueryEnd: len(q), TargetEnd: len(t),
		QueryRow: a.qRow, TargetRow: a.tRow,
	}
}

// AlignLinearSpace computes an optimal Smith-Waterman local alignment in
// linear space: a forward score pass locates the alignment end, a reverse
// pass locates its start, and Myers-Miller aligns the bounded region.
func AlignLinearSpace(q, t []byte, s score.Scheme) *Alignment {
	best, qe, te := ScoreEnds(q, t, s)
	if best == 0 {
		return &Alignment{}
	}
	// Reverse pass over the prefixes ending at (qe, te) finds the start.
	qr := reversed(q[:qe+1])
	tr := reversed(t[:te+1])
	rBest, rqe, rte := ScoreEnds(qr, tr, s)
	if rBest != best {
		// Cannot happen for a correct kernel; fail loudly in tests.
		panic("sw: forward/reverse local score mismatch")
	}
	qs, ts := qe-rqe, te-rte

	a := &mmAligner{s: s}
	sc := a.diff(q[qs:qe+1], t[ts:te+1], s.Gap.Open, s.Gap.Open)
	return &Alignment{
		Score:      sc,
		QueryStart: qs, QueryEnd: qe + 1,
		TargetStart: ts, TargetEnd: te + 1,
		QueryRow: a.qRow, TargetRow: a.tRow,
	}
}

func reversed(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		out[len(b)-1-i] = c
	}
	return out
}

// del emits k query residues aligned to gaps (a vertical gap).
func (a *mmAligner) del(q []byte) {
	for _, c := range q {
		a.qRow = append(a.qRow, c)
		a.tRow = append(a.tRow, '-')
	}
}

// ins emits k target residues aligned to gaps (a horizontal gap).
func (a *mmAligner) ins(t []byte) {
	for _, c := range t {
		a.qRow = append(a.qRow, '-')
		a.tRow = append(a.tRow, c)
	}
}

// rep emits an aligned residue pair.
func (a *mmAligner) rep(qc, tc byte) {
	a.qRow = append(a.qRow, qc)
	a.tRow = append(a.tRow, tc)
}

// gapCost returns the (positive) cost of a gap of length k with opening
// penalty open.
func (a *mmAligner) gapCost(open, k int) int {
	if k <= 0 {
		return 0
	}
	return open + k*a.s.Gap.Extend
}

// diff aligns q vs t, emitting the alignment and returning its score. tb and
// te are the vertical-gap opening penalties in force at the top and bottom
// boundaries.
func (a *mmAligner) diff(q, t []byte, tb, te int) int {
	m, n := len(q), len(t)
	open, ext := a.s.Gap.Open, a.s.Gap.Extend

	// Base case: no target residues left; q becomes one vertical gap that
	// may continue past either boundary.
	if n == 0 {
		if m == 0 {
			return 0
		}
		a.del(q)
		return -a.gapCost(min(tb, te), m)
	}
	// Base case: no query residues; t becomes one horizontal gap.
	if m == 0 {
		a.ins(t)
		return -a.gapCost(open, n)
	}
	// Base case: a single query residue, solved directly.
	if m == 1 {
		// Option A: delete q[0] and insert all of t as separate gaps.
		bestScore := -(a.gapCost(min(tb, te), 1) + a.gapCost(open, n))
		bestJ := -1
		// Option B: align q[0] to t[j], gaps around it.
		for j := 0; j < n; j++ {
			sc := -a.gapCost(open, j) + a.s.Matrix.Score(q[0], t[j]) - a.gapCost(open, n-1-j)
			if sc > bestScore {
				bestScore, bestJ = sc, j
			}
		}
		if bestJ < 0 {
			if tb < te { // place the deletion next to the cheaper boundary
				a.del(q)
				a.ins(t)
			} else {
				a.ins(t)
				a.del(q)
			}
		} else {
			a.ins(t[:bestJ])
			a.rep(q[0], t[bestJ])
			a.ins(t[bestJ+1:])
		}
		return bestScore
	}

	mid := m / 2

	// Forward pass over q[:mid]: CC[j] = best score of q[:mid] vs t[:j];
	// DD[j] = best such score ending in a vertical gap.
	CC := make([]int, n+1)
	DD := make([]int, n+1)
	fwd := func(qh []byte, boundaryOpen int, lookup func(int) byte) {
		CC[0] = 0
		for j := 1; j <= n; j++ {
			CC[j] = -a.gapCost(open, j)
			DD[j] = CC[j] - open // effectively -inf for the recurrence
		}
		tAcc := -boundaryOpen
		for i := 1; i <= len(qh); i++ {
			s := CC[0]
			tAcc -= ext
			c := tAcc
			CC[0] = c
			e := tAcc - open
			for j := 1; j <= n; j++ {
				e = max(e, c-open) - ext
				DD[j] = max(DD[j], CC[j]-open) - ext
				c = max(DD[j], e, s+a.s.Matrix.Score(qh[i-1], lookup(j-1)))
				s = CC[j]
				CC[j] = c
			}
		}
		DD[0] = CC[0]
	}
	fwd(q[:mid], tb, func(j int) byte { return t[j] })

	// Reverse pass over q[mid:] and reversed t.
	RR := make([]int, n+1)
	SS := make([]int, n+1)
	CC, RR = RR, CC
	DD, SS = SS, DD
	fwd(reversed(q[mid:]), te, func(j int) byte { return t[n-1-j] })
	CC, RR = RR, CC
	DD, SS = SS, DD

	// Join: either the boundary is crossed between two aligned columns
	// (type 1) or inside a vertical gap (type 2, which refunds one gap
	// opening since both halves charged it).
	bestScore := CC[0] + RR[n]
	bestJ, bestType := 0, 1
	for j := 0; j <= n; j++ {
		if sc := CC[j] + RR[n-j]; sc > bestScore {
			bestScore, bestJ, bestType = sc, j, 1
		}
		if sc := DD[j] + SS[n-j] + open; sc > bestScore {
			bestScore, bestJ, bestType = sc, j, 2
		}
	}

	if bestType == 1 {
		a.diff(q[:mid], t[:bestJ], tb, open)
		a.diff(q[mid:], t[bestJ:], open, te)
	} else {
		// Rows mid-1 and mid sit inside the boundary-crossing gap.
		a.diff(q[:mid-1], t[:bestJ], tb, 0)
		a.del(q[mid-1 : mid+1])
		a.diff(q[mid+1:], t[bestJ:], 0, te)
	}
	return bestScore
}
