package sim

import (
	"testing"
	"time"
)

// TestShardFailoverScenario is the deterministic counterpart of the
// cluster package's failover test: the shard primary crashes mid-scan and
// the replica must complete the whole task set exactly once (the invariant
// library reports any lost or double-completed task as a violation).
func TestShardFailoverScenario(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		sc := ShardFailover(seed)
		rep := mustRun(t, sc)
		requireClean(t, rep)
		if len(rep.Results) != len(sc.TaskResidues) {
			t.Errorf("seed %d: %d results, want %d", seed, len(rep.Results), len(sc.TaskResidues))
		}
		// The crash must actually land mid-scan: a run finishing before
		// CrashAt never exercised the failover.
		if rep.Makespan <= sc.Slaves[0].CrashAt {
			t.Errorf("seed %d: makespan %v ended before the primary's crash at %v",
				seed, rep.Makespan, sc.Slaves[0].CrashAt)
		}
	}
}

func TestNamedScenarios(t *testing.T) {
	sc, err := Named("shard-failover", 3)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 3 || sc.Name != "shard-failover" {
		t.Fatalf("scenario = %+v", sc)
	}
	if sc.Slaves[0].CrashAt != time.Second {
		t.Fatalf("primary crash not pinned: %+v", sc.Slaves[0])
	}
	if _, err := Named("nope", 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}
