package sw

import "repro/internal/score"

// ScoreBanded computes the best Smith-Waterman local score restricted to
// alignments whose DP path stays within the diagonal band |i - j| <= band.
// With band >= max(len(q), len(t)) it equals the unrestricted Score. Banded
// search is the standard way to trade sensitivity for speed when the two
// sequences are known to be similar (e.g. re-scoring candidate hits).
func ScoreBanded(q, t []byte, s score.Scheme, band int) int {
	m, n := len(q), len(t)
	if m == 0 || n == 0 || band < 0 {
		return 0
	}
	open, ext := s.Gap.Open, s.Gap.Extend

	// H holds the previous row within the band (absolute column index);
	// V holds the vertical-gap state per column. Row 0 is all zeros.
	H := make([]int, n+1)
	V := make([]int, n+1)
	prevH := make([]int, n+1)
	for j := range V {
		V[j] = negInf
	}
	best := 0
	for i := 1; i <= m; i++ {
		lo := max(1, i-band)
		hi := min(n, i+band)
		if lo > hi {
			break // band has left the matrix
		}
		copy(prevH, H)
		hGap := negInf
		for j := lo; j <= hi; j++ {
			up, v := prevH[j], V[j]
			if j > i-1+band { // cell above lies outside the previous row's band
				up, v = negInf, negInf
			}
			v = max(up-open-ext, v-ext)
			left := negInf
			if j > lo || lo == 1 {
				left = H[j-1]
			}
			hGap = max(left-open-ext, hGap-ext)
			diag := prevH[j-1]
			h := max(diag+s.Matrix.Score(q[i-1], t[j-1]), v, hGap, 0)
			H[j], V[j] = h, v
			if h > best {
				best = h
			}
		}
	}
	return best
}
