package jobs

import (
	"fmt"
	"testing"
)

func qjob(id string, prio int) *job {
	return &job{Job: Job{ID: id, Request: Request{Priority: prio}}}
}

func popOrder(q *queue) []string {
	var out []string
	for j := q.pop(); j != nil; j = q.pop() {
		out = append(out, j.ID)
	}
	return out
}

func TestQueuePriorityFIFO(t *testing.T) {
	q := newQueue(10, nil)
	for _, j := range []*job{qjob("a", 0), qjob("b", 1), qjob("c", 0), qjob("d", 1), qjob("e", 2)} {
		if !q.push(j) {
			t.Fatalf("push %s rejected", j.ID)
		}
	}
	got := fmt.Sprint(popOrder(q))
	// Highest priority first, submission order within a level.
	if want := "[e b d a c]"; got != want {
		t.Fatalf("pop order %s, want %s", got, want)
	}
}

func TestQueueBoundAndForcePush(t *testing.T) {
	q := newQueue(2, nil)
	if !q.push(qjob("a", 0)) || !q.push(qjob("b", 0)) {
		t.Fatal("pushes under capacity rejected")
	}
	if q.push(qjob("c", 0)) {
		t.Fatal("push over capacity accepted")
	}
	q.forcePush(qjob("d", 5))
	if q.len() != 3 {
		t.Fatalf("len = %d after forcePush", q.len())
	}
	if j := q.pop(); j.ID != "d" {
		t.Fatalf("head after forcePush = %s", j.ID)
	}
	// The temporary bound lift must not stick: two items remain (= max),
	// so a regular push is rejected until one drains.
	if q.push(qjob("e", 0)) {
		t.Fatal("bound did not restore after forcePush")
	}
	q.pop()
	if !q.push(qjob("f", 0)) {
		t.Fatal("push below capacity rejected")
	}
}

func TestQueueRemove(t *testing.T) {
	q := newQueue(0, nil)
	a, b, c := qjob("a", 0), qjob("b", 0), qjob("c", 0)
	q.push(a)
	q.push(b)
	q.push(c)
	if !q.remove(b) {
		t.Fatal("remove of present job failed")
	}
	if q.remove(b) {
		t.Fatal("second remove succeeded")
	}
	if got := fmt.Sprint(popOrder(q)); got != "[a c]" {
		t.Fatalf("after remove: %s", got)
	}
	if q.pop() != nil {
		t.Fatal("pop of empty queue returned a job")
	}
}

func TestLRUEvictsByBytes(t *testing.T) {
	c := newLRU(10)
	if ev := c.put("a", []byte("aaaa")); ev != 0 {
		t.Fatalf("evicted %d on first put", ev)
	}
	c.put("b", []byte("bbbb"))
	// Touch a so b is the eviction victim.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	if ev := c.put("c", []byte("cccc")); ev != 1 {
		t.Fatalf("evicted %d inserting c, want 1", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	if c.size() != 8 || c.entries() != 2 {
		t.Fatalf("size=%d entries=%d", c.size(), c.entries())
	}
}

func TestLRUOverBudgetBodyNotCached(t *testing.T) {
	c := newLRU(4)
	c.put("a", []byte("aa"))
	if ev := c.put("big", []byte("xxxxxxxx")); ev != 0 {
		t.Fatalf("over-budget put evicted %d", ev)
	}
	if _, ok := c.get("big"); ok {
		t.Fatal("over-budget body was cached")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("existing entry lost to an over-budget put")
	}
}

func TestLRURefreshSameKey(t *testing.T) {
	c := newLRU(100)
	c.put("k", []byte("12345"))
	c.put("k", []byte("123"))
	if c.size() != 3 || c.entries() != 1 {
		t.Fatalf("size=%d entries=%d after refresh", c.size(), c.entries())
	}
	body, _ := c.get("k")
	if string(body) != "123" {
		t.Fatalf("body = %q", body)
	}
}
