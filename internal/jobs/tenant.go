package jobs

import (
	"fmt"
	"time"
)

// TenantPolicy selects how the queue orders work across tenants.
type TenantPolicy int

const (
	// TenantFIFO is the legacy single-queue behaviour: one global priority
	// FIFO, tenant-blind ordering (quotas still apply).
	TenantFIFO TenantPolicy = iota
	// TenantWFQ is weighted fair queueing over declared residues: each
	// dequeue charges the tenant's virtual pass by residues/weight, and the
	// backlogged tenant with the lowest pass pops next.
	TenantWFQ
	// TenantDRF is dominant-resource fair queueing: the charge is the
	// request's dominant share across query slots and residues (scaled by
	// the reference capacities below), divided by the tenant's weight.
	TenantDRF
)

// String returns the policy name used in flags, logs and metrics.
func (p TenantPolicy) String() string {
	switch p {
	case TenantFIFO:
		return "fifo"
	case TenantWFQ:
		return "wfq"
	case TenantDRF:
		return "drf"
	default:
		return fmt.Sprintf("TenantPolicy(%d)", int(p))
	}
}

// ParseTenantPolicy resolves a policy name (as accepted by swserve's
// -tenant-policy flag).
func ParseTenantPolicy(s string) (TenantPolicy, error) {
	switch s {
	case "", "fifo":
		return TenantFIFO, nil
	case "wfq":
		return TenantWFQ, nil
	case "drf":
		return TenantDRF, nil
	default:
		return TenantFIFO, fmt.Errorf("jobs: unknown tenant policy %q (fifo|wfq|drf)", s)
	}
}

// Reference capacities normalizing the two DRF resources of a request: a
// request's share is max(queries/DRFRefQueries, residues/DRFRefResidues),
// so a many-short-queries tenant and a few-huge-queries tenant are charged
// by whichever dimension they actually dominate.
const (
	DRFRefQueries  = 64
	DRFRefResidues = 1 << 20
)

// MaxRetryAfter caps the depth-scaled backpressure hint.
const MaxRetryAfter = 60 * time.Second

// RetryAfterFor scales a rejection's retry hint with the current queue
// depth: base × (1 + depth/(2×executors)), capped at MaxRetryAfter. An
// empty queue hints the base; a queue dozens deep per executor hints the
// minute range — honest backpressure instead of a fixed constant.
func RetryAfterFor(base time.Duration, depth, executors int) time.Duration {
	if base <= 0 {
		base = DefaultRetryAfter
	}
	if executors < 1 {
		executors = 1
	}
	if depth < 0 {
		depth = 0
	}
	d := base * time.Duration(1+depth/(2*executors))
	if d > MaxRetryAfter {
		return MaxRetryAfter
	}
	return d
}

// TenantConfig is one tenant's scheduling contract.
type TenantConfig struct {
	// Weight scales the tenant's fair share; 0 means 1.
	Weight float64
	// MaxOutstanding caps the tenant's queued+running jobs; 0 means
	// unlimited.
	MaxOutstanding int
	// MaxOutstandingResidues caps the tenant's queued+running declared
	// residues; 0 means unlimited.
	MaxOutstandingResidues int64
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	queued, running                 int
	queuedResidues, runningResidues int64
	servedResidues                  int64
	pass                            float64
}

// TenantBook is the pure per-tenant accounting shared by the Manager's fair
// queue and the simulator's modeled front door: quota admission, queued/
// running counts, and the virtual-time passes that drive WFQ/DRF dequeue
// order. It is not safe for concurrent use; callers serialize (the Manager
// under its mutex, the simulator by construction).
type TenantBook struct {
	policy   TenantPolicy
	defaults TenantConfig
	cfg      map[string]TenantConfig
	state    map[string]*tenantState
	// vclock is the system virtual time: the pass of the most recent
	// dequeue. Tenants going from idle to backlogged rejoin at vclock, so
	// an idle spell never banks credit and a returning tenant never
	// starves the queue while it catches up.
	vclock float64
}

// NewTenantBook builds an empty book. cfg maps tenant names to their
// contracts; defaults applies to unlisted tenants (including "").
func NewTenantBook(policy TenantPolicy, cfg map[string]TenantConfig, defaults TenantConfig) *TenantBook {
	return &TenantBook{
		policy:   policy,
		defaults: defaults,
		cfg:      cfg,
		state:    map[string]*tenantState{},
	}
}

// Policy returns the book's dequeue policy.
func (b *TenantBook) Policy() TenantPolicy { return b.policy }

// Limits resolves a tenant's contract.
func (b *TenantBook) Limits(tenant string) TenantConfig {
	if c, ok := b.cfg[tenant]; ok {
		return c
	}
	return b.defaults
}

// Weight resolves a tenant's fair-share weight.
func (b *TenantBook) Weight(tenant string) float64 {
	if w := b.Limits(tenant).Weight; w > 0 {
		return w
	}
	return 1
}

func (b *TenantBook) stateOf(tenant string) *tenantState {
	st := b.state[tenant]
	if st == nil {
		st = &tenantState{}
		b.state[tenant] = st
	}
	return st
}

// Admit checks one prospective submission against the tenant's quota and
// returns the rejection (reason "tenant_quota") that the HTTP layer maps to
// 429, or nil. It mutates nothing.
func (b *TenantBook) Admit(tenant string, residues int64) *RejectError {
	lim := b.Limits(tenant)
	st := b.stateOf(tenant)
	out := st.queued + st.running
	outRes := st.queuedResidues + st.runningResidues
	switch {
	case lim.MaxOutstanding > 0 && out+1 > lim.MaxOutstanding:
		return &RejectError{
			Reason: "tenant_quota",
			Detail: fmt.Sprintf("tenant %q has %d outstanding jobs (quota %d)", tenant, out, lim.MaxOutstanding),
		}
	case lim.MaxOutstandingResidues > 0 && outRes+residues > lim.MaxOutstandingResidues:
		return &RejectError{
			Reason: "tenant_quota",
			Detail: fmt.Sprintf("tenant %q has %d outstanding residues (quota %d)", tenant, outRes, lim.MaxOutstandingResidues),
		}
	}
	return nil
}

// Enqueue records a job entering the queue. A tenant going from idle to
// backlogged rejoins the virtual clock at its current value.
func (b *TenantBook) Enqueue(tenant string, residues int64) {
	st := b.stateOf(tenant)
	if st.queued+st.running == 0 && st.pass < b.vclock {
		st.pass = b.vclock
	}
	st.queued++
	st.queuedResidues += residues
}

// cost is the pass charge of one dequeued request under the book's policy.
func (b *TenantBook) cost(queries int, residues int64) float64 {
	if queries < 1 {
		queries = 1
	}
	if residues < 1 {
		residues = 1
	}
	switch b.policy {
	case TenantFIFO:
		return 0
	case TenantWFQ:
		return float64(residues)
	case TenantDRF:
		q := float64(queries) / DRFRefQueries
		r := float64(residues) / DRFRefResidues
		if q > r {
			return q
		}
		return r
	default:
		return float64(residues)
	}
}

// Dequeue records a job moving from queued to running and charges the
// tenant's pass — the service-start charge of start-time fair queueing.
func (b *TenantBook) Dequeue(tenant string, queries int, residues int64) {
	st := b.stateOf(tenant)
	st.queued--
	st.queuedResidues -= residues
	st.running++
	st.runningResidues += residues
	if st.pass > b.vclock {
		b.vclock = st.pass
	}
	st.pass += b.cost(queries, residues) / b.Weight(tenant)
}

// Remove records a queued job leaving without running (cancellation). No
// pass charge: the tenant consumed no service.
func (b *TenantBook) Remove(tenant string, residues int64) {
	st := b.stateOf(tenant)
	st.queued--
	st.queuedResidues -= residues
}

// Finish records a running job ending. served marks a successful run,
// crediting the tenant's served-residues total (the fairness observable).
func (b *TenantBook) Finish(tenant string, residues int64, served bool) {
	st := b.stateOf(tenant)
	st.running--
	st.runningResidues -= residues
	if served {
		st.servedResidues += residues
	}
}

// Pass returns a tenant's virtual pass (dequeue priority: lowest first).
func (b *TenantBook) Pass(tenant string) float64 { return b.stateOf(tenant).pass }

// Outstanding reports a tenant's queued+running jobs and residues.
func (b *TenantBook) Outstanding(tenant string) (jobs int, residues int64) {
	st := b.stateOf(tenant)
	return st.queued + st.running, st.queuedResidues + st.runningResidues
}

// Queued reports a tenant's queued jobs.
func (b *TenantBook) Queued(tenant string) int { return b.stateOf(tenant).queued }

// Running reports a tenant's running jobs.
func (b *TenantBook) Running(tenant string) int { return b.stateOf(tenant).running }

// ServedResidues reports a tenant's successfully served residues.
func (b *TenantBook) ServedResidues(tenant string) int64 { return b.stateOf(tenant).servedResidues }

// Check audits every counter for impossible (negative) values — the
// property-test oracle for "quota accounting never goes negative".
func (b *TenantBook) Check() error {
	for name, st := range b.state {
		if st.queued < 0 || st.running < 0 || st.queuedResidues < 0 || st.runningResidues < 0 {
			return fmt.Errorf("jobs: tenant %q accounting went negative: %+v", name, *st)
		}
	}
	return nil
}
