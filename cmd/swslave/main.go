// Command swslave runs one slave of the distributed task execution
// environment: it loads the database, connects to the master, registers,
// and executes tasks until the job finishes.
//
// Usage:
//
//	swslave -db db.fasta -master host:7777 -engine sse -name sse1
//	swslave -db db.fasta -master host:7777 -engine gpu -name gpu1
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cudasw"
	"repro/internal/fasta"
	"repro/internal/metrics"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/seqio"
	"repro/internal/slave"
	"repro/internal/wire"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "database FASTA file (resident on this node)")
		addr      = flag.String("master", "127.0.0.1:7777", "master address")
		engine    = flag.String("engine", "sse", `engine: "sse" (adapted Farrar), "swipe", "multicore" or "gpu"`)
		cores     = flag.Int("cores", 0, "workers for the multicore engine (0 = all)")
		name      = flag.String("name", "", "slave name (default: engine type + pid)")
		topK      = flag.Int("top", 0, "hits per task shipped to the master (0 = all)")
		notify    = flag.Duration("notify", 500*time.Millisecond, "progress notification interval")
		declare   = flag.Float64("declare", 0, "declared speed in cells/s (for the WFixed baseline)")
		retry     = flag.Int("retry", slave.DefaultMaxRetries, "consecutive reconnect attempts after a lost master before giving up (0 disables reconnection)")
		ioTimeout = flag.Duration("io-timeout", 30*time.Second, "per-call network deadline; a hung master trips it and triggers reconnection (0 disables)")
		metricsA  = flag.String("metrics", "", "serve GET /metrics and /varz on this address (empty disables)")
	)
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	db, err := loadDB(*dbPath)
	if err != nil {
		fail("%v", err)
	}
	if *name == "" {
		*name = fmt.Sprintf("%s-%d", *engine, os.Getpid())
	}

	var eng slave.Engine
	switch *engine {
	case "sse":
		eng, err = slave.NewFarrarEngine(*name, score.DefaultProtein(), db, *declare)
	case "swipe":
		eng, err = slave.NewSwipeEngine(*name, score.DefaultProtein(), db, *declare)
	case "multicore":
		eng, err = slave.NewMulticoreEngine(*name, score.DefaultProtein(), db, *cores, *declare)
	case "gpu":
		eng, err = slave.NewGPUEngine(*name, cudasw.GTX580(), score.DefaultProtein(), db, *declare)
	default:
		fail("unknown engine %q", *engine)
	}
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("slave %s: database %s loaded (%d sequences, %d residues)\n",
		*name, *dbPath, len(db), eng.DatabaseResidues())

	var slaveMet *slave.Metrics
	var wireMet *wire.Metrics
	if *metricsA != "" {
		reg := metrics.NewRegistry()
		slaveMet = slave.NewMetrics(reg)
		wireMet = wire.NewMetrics(reg)
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.Handle("GET /varz", reg.VarzHandler())
		go func() {
			if err := http.ListenAndServe(*metricsA, mux); err != nil {
				fmt.Fprintf(os.Stderr, "swslave: metrics listener: %v\n", err)
			}
		}()
		fmt.Printf("slave %s: metrics on http://%s/metrics\n", *name, *metricsA)
	}

	dial := func() (wire.Caller, error) {
		c, err := wire.Dial(*addr)
		if err != nil {
			return nil, err
		}
		c.Timeout = *ioTimeout
		return wire.Meter(c, wireMet), nil
	}
	client, err := dial()
	if err != nil {
		fail("connecting to master: %v", err)
	}
	defer client.Close()
	opts := slave.Options{NotifyEvery: *notify, TopK: *topK, MaxRetries: *retry, Metrics: slaveMet}
	if *retry > 0 {
		// Retry with exponential backoff + jitter; each attempt re-dials
		// and re-registers, so the slave survives a master restart from
		// checkpoint and its own lease expiry after a stall.
		opts.Reconnect = dial
	}
	n, err := slave.Run(client, eng, opts)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("slave %s: job done, executed %d task(s)\n", *name, n)
}

// loadDB reads either the packed binary format (by extension or magic) or
// FASTA.
func loadDB(path string) ([]*seq.Sequence, error) {
	if strings.HasSuffix(path, ".swpkd") {
		db, _, err := seqio.ReadPacked(path)
		return db, err
	}
	return fasta.ReadFile(path)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swslave: "+format+"\n", args...)
	os.Exit(1)
}
