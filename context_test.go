package hybridsw_test

import (
	"context"
	"errors"
	"testing"
	"time"

	hybridsw "repro"
)

func TestSearchContextPreCancelled(t *testing.T) {
	db, err := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries := hybridsw.GenerateQueries(db, 2, 50, 100, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = hybridsw.SearchContext(ctx, queries, db, hybridsw.Platform{SSECores: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled search returned %v, want context.Canceled", err)
	}
}

func TestSearchContextCancelMidRun(t *testing.T) {
	// A workload big enough that the full search takes well over the
	// cancellation delay: cancellation must cut it short and surface as
	// context.Canceled rather than a (partial) report.
	db, err := hybridsw.GenerateDatabase("UniProtKB/SwissProt", 0.002, 2)
	if err != nil {
		t.Fatal(err)
	}
	queries := hybridsw.GenerateQueries(db, 4, 300, 500, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	rep, err := hybridsw.SearchContext(ctx, queries, db, hybridsw.Platform{SSECores: 2, Adjust: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search returned (%v, %v), want context.Canceled", rep, err)
	}
}

func TestSearchContextBackground(t *testing.T) {
	// A background context must behave exactly like Search.
	db, err := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries := hybridsw.GenerateQueries(db, 2, 50, 100, 7)
	rep, err := hybridsw.SearchContext(context.Background(), queries, db, hybridsw.Platform{SSECores: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerQuery) != 2 {
		t.Fatalf("%d per-query results, want 2", len(rep.PerQuery))
	}
}
