package seq

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAlphabetSizes(t *testing.T) {
	if got := DNA.Size(); got != 4 {
		t.Errorf("DNA.Size() = %d, want 4", got)
	}
	if got := RNA.Size(); got != 4 {
		t.Errorf("RNA.Size() = %d, want 4", got)
	}
	if got := Protein.Size(); got != 24 {
		t.Errorf("Protein.Size() = %d, want 24", got)
	}
}

func TestAlphabetIndexRoundTrip(t *testing.T) {
	for _, a := range []*Alphabet{DNA, RNA, Protein} {
		for i := 0; i < a.Size(); i++ {
			c := a.Letter(i)
			if got := a.Index(c); got != i {
				t.Errorf("%s: Index(Letter(%d)) = %d", a.Kind(), i, got)
			}
		}
	}
}

func TestAlphabetCaseInsensitive(t *testing.T) {
	if DNA.Index('a') != DNA.Index('A') {
		t.Error("DNA lookup is case-sensitive")
	}
	if !Protein.Contains('w') || !Protein.Contains('W') {
		t.Error("Protein should contain w/W")
	}
}

func TestAlphabetValidate(t *testing.T) {
	if err := DNA.Validate([]byte("ATGCatgc")); err != nil {
		t.Errorf("Validate(ATGCatgc) = %v, want nil", err)
	}
	err := DNA.Validate([]byte("ATXG"))
	if err == nil {
		t.Fatal("Validate(ATXG) = nil, want error")
	}
}

func TestEncodeDecode(t *testing.T) {
	in := []byte("ACDEFGHIKLMNPQRSTVWY")
	enc, err := Protein.Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := Protein.Decode(enc); !bytes.Equal(got, in) {
		t.Errorf("Decode(Encode(%s)) = %s", in, got)
	}
	if _, err := Protein.Encode([]byte("AC1")); err == nil {
		t.Error("Encode with invalid residue should fail")
	}
}

func TestDecodeOutOfRange(t *testing.T) {
	got := DNA.Decode([]byte{0, 200})
	if got[1] != '?' {
		t.Errorf("Decode out-of-range = %q, want '?'", got[1])
	}
}

func TestNewUppercasesAndCopies(t *testing.T) {
	buf := []byte("acgt")
	s := New("s1", "test", buf)
	if string(s.Residues) != "ACGT" {
		t.Errorf("Residues = %s, want ACGT", s.Residues)
	}
	buf[0] = 'X'
	if s.Residues[0] != 'A' {
		t.Error("New aliased the caller's buffer")
	}
}

func TestSequenceString(t *testing.T) {
	s := New("q1", "", []byte("ACDEFGHIKLMNPQRSTVWY"))
	str := s.String()
	if !bytes.Contains([]byte(str), []byte("q1")) || !bytes.Contains([]byte(str), []byte("...")) {
		t.Errorf("String() = %q, want ID and truncation marker", str)
	}
	short := New("q2", "", []byte("AC"))
	if bytes.Contains([]byte(short.String()), []byte("...")) {
		t.Errorf("short String() = %q, should not truncate", short.String())
	}
}

func TestComposition(t *testing.T) {
	counts, invalid := Composition(DNA, []byte("AATG?C"))
	if invalid != 1 {
		t.Errorf("invalid = %d, want 1", invalid)
	}
	if counts[DNA.Index('A')] != 2 || counts[DNA.Index('T')] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestGuessAlphabet(t *testing.T) {
	cases := []struct {
		in   string
		want *Alphabet
	}{
		{"ATGCATGC", DNA},
		{"AUGGCA", RNA},
		{"MKVLAT", Protein},
		{"ATGU", Protein}, // both T and U: not a nucleotide sequence
		{"acgt", DNA},
	}
	for _, c := range cases {
		if got := GuessAlphabet([]byte(c.in)); got != c.want {
			t.Errorf("GuessAlphabet(%q) = %s, want %s", c.in, got.Kind(), c.want.Kind())
		}
	}
}

func TestKindString(t *testing.T) {
	if DNAKind.String() != "DNA" || ProteinKind.String() != "protein" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() == "" {
		t.Error("unknown Kind should still render")
	}
}

// Property: Encode/Decode round-trips for any string drawn from the alphabet.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(raw []byte) bool {
		letters := Protein.Letters()
		s := make([]byte, len(raw))
		for i, b := range raw {
			s[i] = letters[int(b)%len(letters)]
		}
		enc, err := Protein.Encode(s)
		if err != nil {
			return false
		}
		return bytes.Equal(Protein.Decode(enc), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewAlphabetDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAlphabet with duplicate letters should panic")
		}
	}()
	NewAlphabet(DNAKind, "AATC")
}

func TestReverseComplement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ATGC", "GCAT"},
		{"AAAA", "TTTT"},
		{"", ""},
		{"ATGN", "NCAT"},
		{"atgc", "gcat"},
	}
	for _, c := range cases {
		if got := string(ReverseComplement([]byte(c.in))); got != c.want {
			t.Errorf("ReverseComplement(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Involution: rc(rc(x)) == x.
	in := []byte("ATGCATTTGCGC")
	if got := ReverseComplement(ReverseComplement(in)); !bytes.Equal(got, in) {
		t.Errorf("double reverse complement = %s", got)
	}
}
