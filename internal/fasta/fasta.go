// Package fasta reads and writes FASTA-formatted sequence files.
//
// Biological "databases" such as UniProtKB/SwissProt are distributed as huge
// flat FASTA files: a '>' header line followed by one or more residue lines
// per record. This package provides a streaming Reader that tolerates the
// format variations found in real databases (CRLF endings, blank lines,
// ';' comment lines, lower-case residues) and a Writer with configurable
// line wrapping.
package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/seq"
)

// Reader streams sequences from FASTA input.
type Reader struct {
	br   *bufio.Reader
	line int    // current line number, 1-based, for errors
	next []byte // buffered header line starting with '>' (without '>')
	eof  bool
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next sequence, or io.EOF after the last one.
func (r *Reader) Read() (*seq.Sequence, error) {
	header, err := r.header()
	if err != nil {
		return nil, err
	}
	var residues []byte
	for {
		line, err := r.readLine()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(line) == 0 || line[0] == ';' {
			continue
		}
		if line[0] == '>' {
			r.next = line[1:]
			break
		}
		residues = append(residues, line...)
	}
	id, desc := SplitHeader(string(header))
	if id == "" {
		return nil, fmt.Errorf("fasta: empty header at line %d", r.line)
	}
	return seq.New(id, desc, residues), nil
}

// ReadAll drains the reader and returns every remaining sequence.
func (r *Reader) ReadAll() ([]*seq.Sequence, error) {
	var out []*seq.Sequence
	for {
		s, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// header scans forward to the next '>' line and returns its content.
func (r *Reader) header() ([]byte, error) {
	if r.next != nil {
		h := r.next
		r.next = nil
		return h, nil
	}
	for {
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		if len(line) == 0 || line[0] == ';' {
			continue
		}
		if line[0] == '>' {
			return line[1:], nil
		}
		return nil, fmt.Errorf("fasta: line %d: expected '>' header, got %q", r.line, preview(line))
	}
}

// readLine returns the next line with the trailing newline (and any CR)
// stripped. Returns io.EOF only when no data remains at all.
func (r *Reader) readLine() ([]byte, error) {
	if r.eof {
		return nil, io.EOF
	}
	line, err := r.br.ReadBytes('\n')
	if err == io.EOF {
		r.eof = true
		if len(line) == 0 {
			return nil, io.EOF
		}
		err = nil
	}
	if err != nil {
		return nil, err
	}
	r.line++
	line = bytes.TrimRight(line, "\r\n")
	return line, nil
}

func preview(b []byte) string {
	if len(b) > 20 {
		return string(b[:20]) + "..."
	}
	return string(b)
}

// SplitHeader splits a FASTA header into its first word (the ID) and the
// remaining description.
func SplitHeader(h string) (id, desc string) {
	h = strings.TrimSpace(h)
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

// ReadFile parses an entire FASTA file from disk.
func ReadFile(path string) ([]*seq.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	seqs, err := NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("fasta: %s: %w", path, err)
	}
	return seqs, nil
}

// Writer emits FASTA records with residue lines wrapped at Wrap columns.
type Writer struct {
	w    *bufio.Writer
	Wrap int // residues per line; <= 0 means a single unwrapped line
}

// NewWriter returns a Writer targeting w with the conventional 60-column wrap.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), Wrap: 60}
}

// Write emits one sequence record.
func (w *Writer) Write(s *seq.Sequence) error {
	w.w.WriteByte('>')
	w.w.WriteString(s.ID)
	if s.Description != "" {
		w.w.WriteByte(' ')
		w.w.WriteString(s.Description)
	}
	w.w.WriteByte('\n')
	r := s.Residues
	if w.Wrap <= 0 {
		w.w.Write(r)
		w.w.WriteByte('\n')
	} else {
		for len(r) > 0 {
			n := min(w.Wrap, len(r))
			w.w.Write(r[:n])
			w.w.WriteByte('\n')
			r = r[n:]
		}
		if s.Len() == 0 {
			w.w.WriteByte('\n')
		}
	}
	return w.w.Flush()
}

// WriteAll emits every sequence in order.
func (w *Writer) WriteAll(seqs []*seq.Sequence) error {
	for _, s := range seqs {
		if err := w.Write(s); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes sequences to a FASTA file on disk.
func WriteFile(path string, seqs []*seq.Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f)
	if err := w.WriteAll(seqs); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
