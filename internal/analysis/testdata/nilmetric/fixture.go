// Package nilmetric is the golden fixture for the optional-instrumentation
// analyzer: metric handles reached through a nilable bundle pointer must
// be dominated by a nil check, in one of the guard shapes the codebase
// uses.
package nilmetric

import "repro/internal/metrics"

// bundle mimics an optional instrumentation bundle like sched.Metrics.
type bundle struct {
	Hits  *metrics.Counter
	Depth *metrics.Gauge
	Calls *metrics.CounterVec
}

type server struct {
	met *bundle
}

func (s *server) bad() {
	s.met.Hits.Inc() // want "use of metric handle s.met.Hits is not dominated by a nil check of s.met"
}

func (s *server) badVec(route string) {
	s.met.Calls.With(route).Inc() // want "use of metric handle s.met.Calls is not dominated by a nil check of s.met"
}

// enclosingIf is guard shape one: the use sits in the body of
// `if owner != nil`.
func (s *server) enclosingIf() {
	if s.met != nil {
		s.met.Hits.Inc()
	}
}

// ifInit is the codebase's favourite spelling of shape one.
func (s *server) ifInit() {
	if m := s.met; m != nil {
		m.Hits.Inc()
	}
}

// earlyReturn is guard shape two: an earlier `if owner == nil { return }`
// in an enclosing block.
func (s *server) earlyReturn(d float64) {
	if s.met == nil {
		return
	}
	s.met.Depth.Set(d)
}

// handleGuard nil-checks the handle itself rather than the bundle, which
// also counts.
func (s *server) handleGuard() {
	if s.met.Hits == nil {
		return
	}
	s.met.Hits.Inc()
}

// valueBundle owns its bundle by value: the owner cannot be nil, so no
// guard is demanded.
type valueBundle struct {
	b bundle
}

func (v *valueBundle) ok() {
	v.b.Hits.Inc()
}
