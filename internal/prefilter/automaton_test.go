package prefilter

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// naiveScan is the oracle: for every pattern, try every start position with
// bytes.Equal. Quadratic, obviously correct.
func naiveScan(data []byte, patterns [][]byte) []acMatch {
	var out []acMatch
	for pi, p := range patterns {
		for i := 0; i+len(p) <= len(data); i++ {
			if bytes.Equal(data[i:i+len(p)], p) {
				out = append(out, acMatch{end: i + len(p), pat: pi})
			}
		}
	}
	sortMatches(out)
	return out
}

type acMatch struct{ end, pat int }

func sortMatches(ms []acMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].end != ms[j].end {
			return ms[i].end < ms[j].end
		}
		return ms[i].pat < ms[j].pat
	})
}

func acScan(t testing.TB, data []byte, patterns [][]byte) []acMatch {
	a, err := Compile(patterns)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var out []acMatch
	a.Scan(data, func(end, pat int) {
		if pat < 0 || pat >= len(patterns) {
			t.Fatalf("Scan emitted pattern index %d of %d", pat, len(patterns))
		}
		want := patterns[pat]
		if end < len(want) || !bytes.Equal(data[end-len(want):end], want) {
			t.Fatalf("Scan reported pattern %q ending at %d but data there is %q", want, end, data[maxInt(0, end-len(want)):end])
		}
		out = append(out, acMatch{end: end, pat: pat})
	})
	sortMatches(out)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestAutomatonVsNaiveHandPicked(t *testing.T) {
	cases := []struct {
		name     string
		data     string
		patterns []string
	}{
		{"classic", "ushers", []string{"he", "she", "his", "hers"}},
		{"overlapping", "aaaaaa", []string{"aa", "aaa"}},
		{"suffix-of-other", "abcabcabc", []string{"abcabc", "cab", "bc"}},
		{"duplicate-patterns", "xyxyxy", []string{"xy", "xy", "yx"}},
		{"no-match", "GATTACA", []string{"TTT", "CCC"}},
		{"bytes-outside-alphabet", "AC-GT-ACGT", []string{"ACGT", "GT"}},
		{"pattern-is-whole-data", "HELLO", []string{"HELLO"}},
		{"single-byte-patterns", "mississippi", []string{"s", "i", "p"}},
		{"unicode-bytes", "héllo héll", []string{"héll", "llo"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pats := make([][]byte, len(tc.patterns))
			for i, p := range tc.patterns {
				pats[i] = []byte(p)
			}
			got := acScan(t, []byte(tc.data), pats)
			want := naiveScan([]byte(tc.data), pats)
			if !matchesEqual(got, want) {
				t.Fatalf("AC found %v, naive found %v", got, want)
			}
		})
	}
}

func matchesEqual(a, b []acMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAutomatonVsNaiveRandom runs the differential over random pattern sets
// and texts on small alphabets (small alphabets maximize overlap and
// fail-link pressure).
func TestAutomatonVsNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabets := []string{"ab", "ACGT", "ACDEFGHIKLMNPQRSTVWY"}
	for trial := 0; trial < 300; trial++ {
		sigma := alphabets[trial%len(alphabets)]
		npat := 1 + rng.Intn(8)
		pats := make([][]byte, npat)
		for i := range pats {
			plen := 1 + rng.Intn(6)
			p := make([]byte, plen)
			for j := range p {
				p[j] = sigma[rng.Intn(len(sigma))]
			}
			pats[i] = p
		}
		data := make([]byte, rng.Intn(200))
		for j := range data {
			data[j] = sigma[rng.Intn(len(sigma))]
		}
		got := acScan(t, data, pats)
		want := naiveScan(data, pats)
		if !matchesEqual(got, want) {
			t.Fatalf("trial %d (alphabet %q, %d patterns, text %q): AC %v, naive %v", trial, sigma, npat, data, got, want)
		}
	}
}

func TestCompileRejectsEmptyInputs(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Fatal("Compile(nil) succeeded")
	}
	if _, err := Compile([][]byte{[]byte("ok"), nil}); err == nil {
		t.Fatal("Compile with an empty pattern succeeded")
	}
}

func TestAutomatonStateAccounting(t *testing.T) {
	a, err := Compile([][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")})
	if err != nil {
		t.Fatal(err)
	}
	// Classic example: root + 9 trie nodes.
	if a.States() != 10 {
		t.Fatalf("States() = %d, want 10", a.States())
	}
	if a.Patterns() != 4 {
		t.Fatalf("Patterns() = %d, want 4", a.Patterns())
	}
	for i, want := range []int{2, 3, 3, 4} {
		if a.PatternLen(i) != want {
			t.Fatalf("PatternLen(%d) = %d, want %d", i, a.PatternLen(i), want)
		}
	}
}

// FuzzACVsNaive is the fuzz form of the differential: the fuzzer mutates a
// raw text plus a pattern-bank selector, and any divergence from the naive
// oracle (or an emit with wrong bytes, checked inside acScan) fails.
func FuzzACVsNaive(f *testing.F) {
	f.Add([]byte("ushers"), []byte("he\nshe\nhis\nhers"))
	f.Add([]byte("aaaaaa"), []byte("aa\naaa"))
	f.Add([]byte("GATTACAGATTACA"), []byte("GAT\nTACA\nA"))
	f.Add([]byte(""), []byte("x"))
	f.Fuzz(func(t *testing.T, data, patBlob []byte) {
		var pats [][]byte
		for _, p := range bytes.Split(patBlob, []byte("\n")) {
			if len(p) == 0 || len(p) > 32 {
				continue
			}
			pats = append(pats, p)
			if len(pats) == 16 {
				break
			}
		}
		if len(pats) == 0 || len(data) > 1<<12 {
			return
		}
		got := acScan(t, data, pats)
		want := naiveScan(data, pats)
		if !matchesEqual(got, want) {
			t.Fatalf("AC %v != naive %v (data %q, patterns %q)", got, want, data, pats)
		}
	})
}

func BenchmarkACScan(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	const sigma = "ACDEFGHIKLMNPQRSTVWY"
	query := make([]byte, 200)
	for i := range query {
		query[i] = sigma[rng.Intn(len(sigma))]
	}
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = sigma[rng.Intn(len(sigma))]
	}
	pats, _ := compileSeeds(query, Spec{}.Normalize())
	a, err := Compile(pats)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		a.Scan(data, func(end, pat int) { sink++ })
	}
	_ = sink
	b.ReportMetric(float64(b.N)*float64(len(data))/b.Elapsed().Seconds(), "residues/s")
}

func ExampleAutomaton_Scan() {
	a, _ := Compile([][]byte{[]byte("he"), []byte("she")})
	a.Scan([]byte("ushers"), func(end, pat int) {
		fmt.Println(end, pat)
	})
	// Output:
	// 4 1
	// 4 0
}
