// Package jobs is the golden fixture for the goroutine-leak analyzer:
// every goroutine spawned in the scoped packages needs a termination
// path reachable from its entry, its body must be auditable in this
// package, and sends on locally-made unbuffered channels must not be
// abandonable by a receiver that stops selecting.
package jobs

import "fmt"

type pool struct {
	done chan struct{}
	work chan int
}

func process(int) {}

func slow(n int) int { return n * n }

// spawnForever loops with no exit: the goroutine outlives the pool.
func (p *pool) spawnForever() {
	go func() { // want "no termination path"
		for {
			process(<-p.work)
		}
	}()
}

// spawnGoverned is the clean worker idiom: the done channel ends it.
func (p *pool) spawnGoverned() {
	go func() {
		for {
			select {
			case <-p.done:
				return
			case w := <-p.work:
				process(w)
			}
		}
	}()
}

// spawnBounded is clean: the loop terminates on its own.
func (p *pool) spawnBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			process(i)
		}
	}()
}

// spawnNamed spawns a same-package method whose body never exits; the
// analyzer follows the call to the declaration.
func (p *pool) spawnNamed() {
	go p.loopForever() // want "no termination path"
}

func (p *pool) loopForever() {
	for {
		process(<-p.work)
	}
}

// spawnExternal hands the goroutine body to another package, where this
// analyzer cannot audit its exit path.
func (p *pool) spawnExternal() {
	go fmt.Println("bye") // want "declared outside this package"
}

// compute abandons its sender: once the caller's ctx-like done fires,
// nothing ever receives and the goroutine blocks on the send forever.
func (p *pool) compute(in int) int {
	res := make(chan int)
	go func() {
		res <- slow(in) // want "send on unbuffered res blocks forever"
	}()
	select {
	case v := <-res:
		return v
	case <-p.done:
		return 0
	}
}

// computeBuffered is clean: the buffer lets the sender finish and exit
// even if the receiver already gave up.
func (p *pool) computeBuffered(in int) int {
	res := make(chan int, 1)
	go func() {
		res <- slow(in)
	}()
	select {
	case v := <-res:
		return v
	case <-p.done:
		return 0
	}
}

// computeJoined is clean: the enclosing function always receives, so the
// send cannot be abandoned.
func (p *pool) computeJoined(in int) int {
	res := make(chan int)
	go func() {
		res <- slow(in)
	}()
	return <-res
}
