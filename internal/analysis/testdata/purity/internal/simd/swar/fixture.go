// Package swar is the SWAR-purity golden fixture. Its directory sits
// under testdata/purity/internal/simd/swar, so the loader's synthetic
// import path ends in internal/simd/swar and the hot-path rules fire here
// exactly as they do on the real primitives package: no loops, and no
// import of the emulated ISA the package exists to replace.
package swar

import (
	_ "repro/internal/simd" // want "SWAR package swar imports the emulated ISA"
)

const lo8 = 0x0101010101010101

// Splat8 is the clean idiom: a pure, branch-free, loop-free expression
// over a packed word.
func Splat8(v uint8) uint64 { return uint64(v) * lo8 }

// sumLanes shows both forbidden loop forms.
func sumLanes(w uint64) (s uint8) {
	for i := 0; i < 8; i++ { // want "loop statement in SWAR package swar"
		s += uint8(w >> (8 * i))
	}
	for range [8]int{} { // want "loop statement in SWAR package swar"
		s++
	}
	return s
}
