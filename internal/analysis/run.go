package analysis

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Run expands the given package patterns (a directory, or a directory
// followed by /... for a recursive walk) relative to the module rooted at
// root, loads every matched package, runs the analyzers over each, and
// writes one line per diagnostic to w. It returns the number of
// diagnostics. Directories named testdata, vendor or starting with "." are
// skipped by pattern expansion — fixtures are loaded explicitly by the
// golden tests, never by a production run.
func Run(root string, patterns []string, analyzers []*Analyzer, w io.Writer) (int, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return 0, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return 0, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return 0, err
		}
		diags = append(diags, Check(pkg, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return len(diags), nil
}

// Check runs the analyzers over one loaded package and returns their
// diagnostics plus any malformed ignore directives found in it.
func Check(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags := append([]Diagnostic(nil), pkg.malformed...)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
		a.Run(pass)
	}
	return diags
}

// expandPatterns resolves CLI package patterns to package directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
		return nil
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "" || base == "." {
			base = root
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			names, err := goSourceFiles(path)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				return add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
