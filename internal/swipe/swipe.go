// Package swipe implements inter-sequence SIMD Smith-Waterman in the style
// of SWIPE (Rognes 2011, "Faster Smith-Waterman database searches with
// inter-sequence SIMD parallelisation") — reference [17] of the paper and
// the approach its multicore related work builds on.
//
// Where Farrar's striped kernel vectorizes *within* one alignment, SWIPE
// assigns one database sequence per SIMD lane and advances 16 alignments in
// lock step. The recurrences of different lanes are completely independent,
// so no lazy-F correction pass exists at all; the price is a per-column
// score gather (the "score profile" must be rebuilt whenever lane residues
// change). When a lane's sequence ends, the next database sequence is
// loaded into that lane immediately, keeping all 16 lanes busy until the
// database is exhausted.
//
// The kernel runs on the emulated SSE2 ISA of internal/simd with the same
// 8-bit biased unsigned arithmetic as the original; sequences whose score
// saturates the 8-bit range are re-scored with the 16-bit Farrar kernel
// (and ultimately the scalar reference), exactly like the CPU programs the
// paper cites.
package swipe

import (
	"fmt"

	"repro/internal/farrar"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/simd"
	"repro/internal/sw"
)

const lanes = 16

// Stats counts how sequences were resolved.
type Stats struct {
	Scored8    int64 // resolved by the 8-bit inter-sequence kernel
	Rescored   int64 // overflowed and re-scored by the wider kernels
	ColumnsRun int64 // total vector columns executed
}

// Searcher scores one query against many database sequences.
type Searcher struct {
	query  []byte
	qIdx   []byte // dense alphabet indices of the query
	scheme score.Scheme
	bias   int
	// matrix8[r][c] = score(r, c) + bias as a byte, indexed by dense
	// residue indices with an extra "invalid" row/column at index size.
	matrix8 [][]uint8
	fb      *farrar.Kernel // lazily built fallback kernel
	stats   Stats
}

// New validates the query and builds the biased byte matrix.
func New(query []byte, s score.Scheme) (*Searcher, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(query) == 0 {
		return nil, fmt.Errorf("swipe: empty query")
	}
	alpha := s.Matrix.Alphabet()
	if err := alpha.Validate(query); err != nil {
		return nil, fmt.Errorf("swipe: query: %w", err)
	}
	sr := &Searcher{query: query, scheme: s, bias: -s.Matrix.Min()}
	if sr.bias < 0 {
		sr.bias = 0
	}
	sr.qIdx = make([]byte, len(query))
	for i, c := range query {
		sr.qIdx[i] = byte(alpha.Index(c))
	}
	n := alpha.Size()
	sr.matrix8 = make([][]uint8, n+1)
	for r := 0; r <= n; r++ {
		row := make([]uint8, n+1)
		for c := 0; c <= n; c++ {
			v := s.Matrix.Min()
			if r < n && c < n {
				v = s.Matrix.ScoreIndex(byte(r), byte(c))
			}
			row[c] = uint8(v + sr.bias)
		}
		sr.matrix8[r] = row
	}
	return sr, nil
}

// Stats returns cumulative counters.
func (sr *Searcher) Stats() Stats { return sr.stats }

// laneState tracks the sequence currently occupying one SIMD lane.
type laneState struct {
	seqIdx int    // database index, -1 when idle
	res    []byte // dense residue indices (precomputed per sequence)
	pos    int
}

// Search scores the query against every database sequence, returning scores
// in database order.
func (sr *Searcher) Search(db []*seq.Sequence) []int {
	scores := make([]int, len(db))
	if len(db) == 0 {
		return scores
	}
	alpha := sr.scheme.Matrix.Alphabet()
	invalid := byte(alpha.Size())
	encode := func(s *seq.Sequence) []byte {
		out := make([]byte, s.Len())
		for i, c := range s.Residues {
			if k := alpha.Index(c); k >= 0 {
				out[i] = byte(k)
			} else {
				out[i] = invalid
			}
		}
		return out
	}

	m := len(sr.query)
	H := make([]simd.U8x16, m) // previous column's H per query row
	E := make([]simd.U8x16, m) // per-row horizontal gap state
	var laneMax simd.U8x16     // per-lane running maximum
	var lanesLive int          // occupied lanes
	next := 0                  // next database sequence to load
	var overflow []int         // sequences needing a wider kernel
	lanesArr := [lanes]laneState{}
	for l := range lanesArr {
		lanesArr[l].seqIdx = -1
	}

	vGapOE := simd.SplatU8(uint8(sr.scheme.Gap.Open + sr.scheme.Gap.Extend))
	vGapE := simd.SplatU8(uint8(sr.scheme.Gap.Extend))
	vBias := simd.SplatU8(uint8(sr.bias))
	// A score above this bound may have been clipped by saturation.
	satLimit := 255 - sr.bias
	if mx := sr.scheme.Matrix.Max(); mx > 0 {
		satLimit = 255 - sr.bias - mx
	}

	// retire extracts a finished lane's score and clears its state.
	retire := func(l int) {
		st := &lanesArr[l]
		got := int(laneMax[l])
		if got >= satLimit {
			overflow = append(overflow, st.seqIdx)
		} else {
			scores[st.seqIdx] = got
			sr.stats.Scored8++
		}
		st.seqIdx = -1
		lanesLive--
	}
	// load pulls the next sequence into lane l and zeroes its DP state.
	load := func(l int) {
		st := &lanesArr[l]
		st.seqIdx = next
		st.res = encode(db[next])
		st.pos = 0
		next++
		lanesLive++
		laneMax[l] = 0
		for i := 0; i < m; i++ {
			H[i][l] = 0
			E[i][l] = 0
		}
	}

	for l := 0; l < lanes && next < len(db); l++ {
		load(l)
	}

	var colRes [lanes]byte // dense residue index per lane for this column
	for lanesLive > 0 {
		// Advance each lane one residue; retire/refill exhausted lanes.
		for l := range lanesArr {
			st := &lanesArr[l]
			for st.seqIdx >= 0 && st.pos >= len(st.res) {
				retire(l)
				if next < len(db) {
					load(l)
				}
			}
			if st.seqIdx < 0 {
				colRes[l] = invalid
				continue
			}
			colRes[l] = st.res[st.pos]
			st.pos++
		}
		if lanesLive == 0 {
			break
		}
		sr.stats.ColumnsRun++

		// One DP column across all lanes: no inter-lane dependencies.
		var diag, F simd.U8x16
		for i := 0; i < m; i++ {
			var prof simd.U8x16
			row := sr.matrix8[sr.qIdx[i]]
			for l := 0; l < lanes; l++ {
				prof[l] = row[colRes[l]]
			}
			h := simd.SubSatU8(simd.AddSatU8(diag, prof), vBias)
			h = simd.MaxU8(h, E[i])
			h = simd.MaxU8(h, F)
			laneMax = simd.MaxU8(laneMax, h)

			hGap := simd.SubSatU8(h, vGapOE)
			E[i] = simd.MaxU8(simd.SubSatU8(E[i], vGapE), hGap)
			F = simd.MaxU8(simd.SubSatU8(F, vGapE), hGap)

			diag = H[i]
			H[i] = h
		}
	}
	// Retire any lanes still holding finished sequences.
	for l := range lanesArr {
		if lanesArr[l].seqIdx >= 0 {
			retire(l)
		}
	}

	// Re-score saturated sequences with the wider kernels.
	for _, idx := range overflow {
		scores[idx] = sr.rescore(db[idx].Residues)
		sr.stats.Rescored++
	}
	return scores
}

func (sr *Searcher) rescore(target []byte) int {
	if sr.fb == nil {
		k, err := farrar.NewKernel(sr.query, sr.scheme)
		if err != nil {
			// The query was validated in New; fall back to the reference.
			return sw.Score(sr.query, target, sr.scheme)
		}
		sr.fb = k
	}
	if v, ok := sr.fb.Score16(target); ok {
		return v
	}
	return sw.Score(sr.query, target, sr.scheme)
}
