package sw

import (
	"math/rand"
	"testing"
)

func TestCIGARBasic(t *testing.T) {
	a := &Alignment{
		QueryRow:  []byte("ACT-TGTC"),
		TargetRow: []byte("AGTATG-C"),
	}
	// A= C:X(G) T= -:D T= G= T:I C=  -> 1=1X1=1D2=1I1=
	if got := a.CIGAR(); got != "1=1X1=1D2=1I1=" {
		t.Errorf("CIGAR = %q", got)
	}
	if (&Alignment{}).CIGAR() != "" {
		t.Error("empty alignment CIGAR should be empty")
	}
}

func TestCIGARRunsMerge(t *testing.T) {
	a := &Alignment{
		QueryRow:  []byte("AAAA--TT"),
		TargetRow: []byte("AAAACCTT"),
	}
	if got := a.CIGAR(); got != "4=2D2=" {
		t.Errorf("CIGAR = %q", got)
	}
}

func TestCIGARRoundTripRandomAlignments(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	s := protScheme()
	for iter := 0; iter < 40; iter++ {
		q := randProtein(rng, 1+rng.Intn(60))
		d := mutate(rng, q, 0.4)
		a := Align(q, d, s)
		if a.Score == 0 {
			continue
		}
		cig := a.CIGAR()
		ops, err := ParseCIGAR(cig)
		if err != nil {
			t.Fatalf("iter %d: %v (%q)", iter, err, cig)
		}
		if len(ops) != len(a.QueryRow) {
			t.Fatalf("iter %d: %d ops for %d columns", iter, len(ops), len(a.QueryRow))
		}
		// Op counts must match the rows.
		for i, op := range ops {
			switch op {
			case '=':
				if a.QueryRow[i] != a.TargetRow[i] {
					t.Fatalf("iter %d col %d: %c marked =", iter, i, a.QueryRow[i])
				}
			case 'X':
				if a.QueryRow[i] == a.TargetRow[i] || a.QueryRow[i] == '-' || a.TargetRow[i] == '-' {
					t.Fatalf("iter %d col %d: bad X", iter, i)
				}
			case 'D':
				if a.QueryRow[i] != '-' {
					t.Fatalf("iter %d col %d: bad D", iter, i)
				}
			case 'I':
				if a.TargetRow[i] != '-' {
					t.Fatalf("iter %d col %d: bad I", iter, i)
				}
			}
		}
	}
}

func TestParseCIGARErrors(t *testing.T) {
	for _, bad := range []string{"=", "3", "4Q", "0=", "12", "=3"} {
		if _, err := ParseCIGAR(bad); err == nil {
			t.Errorf("ParseCIGAR(%q) accepted", bad)
		}
	}
	ops, err := ParseCIGAR("2M3=")
	if err != nil || len(ops) != 5 {
		t.Errorf("ParseCIGAR(2M3=) = %v, %v", ops, err)
	}
	empty, err := ParseCIGAR("")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty CIGAR: %v, %v", empty, err)
	}
}
