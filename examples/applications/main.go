// Applications demonstrates the paper's §VI future-work items, implemented
// in this reproduction: multiple sequence alignment (center-star
// progressive MSA over the pairwise engines) and DNA assembly (greedy
// overlap-layout over the overlap-alignment kernel).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/assembly"
	"repro/internal/dataset"
	"repro/internal/msa"
	"repro/internal/score"
	"repro/internal/seq"
)

func main() {
	msaDemo()
	assemblyDemo()
}

func msaDemo() {
	fmt.Println("=== Multiple sequence alignment (center-star) ===")
	// A small protein family: mutated copies of one ancestor.
	rng := rand.New(rand.NewSource(42))
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	ancestor := make([]byte, 48)
	for i := range ancestor {
		ancestor[i] = canon[rng.Intn(len(canon))]
	}
	var family []*seq.Sequence
	ids := []string{}
	for i := 0; i < 5; i++ {
		res := append([]byte{}, ancestor...)
		// A few substitutions and one deletion per member.
		for k := 0; k < 4; k++ {
			res[rng.Intn(len(res))] = canon[rng.Intn(len(canon))]
		}
		cut := rng.Intn(len(res) - 1)
		res = append(res[:cut], res[cut+1:]...)
		id := fmt.Sprintf("member%d", i+1)
		family = append(family, seq.New(id, "", res))
		ids = append(ids, id)
	}
	res, err := msa.Align(family, score.DefaultProtein(), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("center sequence: %s; %d columns; sum-of-pairs score %d\n\n",
		ids[res.Center], res.Columns(), res.SumOfPairs(score.DefaultProtein()))
	fmt.Print(res.Format(ids, 60))
}

func assemblyDemo() {
	fmt.Println("=== DNA assembly (greedy overlap-layout) ===")
	genome := dataset.GenerateDNA(dataset.DNAProfile{
		Name: "toy genome", NumSeqs: 1, MeanLen: 1000, SigmaLn: 0.01, MinLen: 900, MaxLen: 1100,
	}, 7)[0].Residues
	// Shred into overlapping 150 bp reads and shuffle them.
	var reads []*seq.Sequence
	for start := 0; ; start += 100 {
		end := min(start+150, len(genome))
		reads = append(reads, seq.New(fmt.Sprintf("read%02d", len(reads)), "", genome[start:end]))
		if end == len(genome) {
			break
		}
	}
	rng := rand.New(rand.NewSource(9))
	rng.Shuffle(len(reads), func(i, j int) { reads[i], reads[j] = reads[j], reads[i] })

	contigs, err := assembly.Assemble(reads, assembly.Options{MinOverlap: 30, MinScore: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genome %d bp shredded into %d shuffled reads\n", len(genome), len(reads))
	fmt.Printf("assembled %d contig(s), N50 = %d\n", len(contigs), assembly.N50(contigs))
	ok := string(contigs[0].Residues) == string(genome)
	fmt.Printf("largest contig (%d bp) identical to genome: %v\n", len(contigs[0].Residues), ok)
}
