package wire

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/sched"
)

// CallBuckets spans the protocol's latency range: in-process dispatch
// (tens of microseconds) through LAN round trips to a badly lagging link.
var CallBuckets = []float64{50e-6, 200e-6, 1e-3, 5e-3, 25e-3, 0.1, 0.5, 2}

// Metrics is the wire layer's instrumentation bundle, shared by the
// caller-side and handler-side wrappers: Meter times the slave's view of a
// call (network round trip included), MeterHandler times the master's
// dispatch alone, each against whichever registry it was built on.
type Metrics struct {
	CallSeconds *metrics.HistogramVec
	Faults      *metrics.Counter
}

// NewMetrics registers (or re-attaches to) the wire families on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		CallSeconds: r.HistogramVec("wire_call_seconds", "Protocol call latency by message kind.", CallBuckets, "kind"),
		Faults:      r.Counter("wire_faults_injected_total", "Faults fired by FaultCaller rules (chaos tests)."),
	}
}

// meteredCaller wraps a Caller, timing every Call by message kind.
type meteredCaller struct {
	inner Caller
	m     *Metrics
}

// Meter wraps c so every Call records its latency (success or failure) in
// m.CallSeconds under the request's message kind. A nil m returns c
// unchanged, so call sites can wrap unconditionally.
func Meter(c Caller, m *Metrics) Caller {
	if m == nil {
		return c
	}
	return &meteredCaller{inner: c, m: m}
}

func (mc *meteredCaller) Call(req Envelope) (Envelope, error) {
	start := time.Now()
	resp, err := mc.inner.Call(req)
	//swcheck:ignore nilmetric Meter returns the bare Caller when m is nil, so mc.m is never nil here
	mc.m.CallSeconds.With(KindOf(req).String()).Observe(time.Since(start).Seconds())
	return resp, err
}

func (mc *meteredCaller) Close() error { return mc.inner.Close() }

// meteredHandler wraps a Handler, timing every Dispatch by message kind.
type meteredHandler struct {
	inner Handler
	m     *Metrics
}

// MeterHandler wraps h so every Dispatch records its latency in
// m.CallSeconds under the request's message kind. A nil m returns h
// unchanged.
func MeterHandler(h Handler, m *Metrics) Handler {
	if m == nil {
		return h
	}
	return &meteredHandler{inner: h, m: m}
}

func (mh *meteredHandler) Dispatch(req Envelope) Envelope {
	start := time.Now()
	resp := mh.inner.Dispatch(req)
	//swcheck:ignore nilmetric MeterHandler returns the bare Handler when m is nil, so mh.m is never nil here
	mh.m.CallSeconds.With(KindOf(req).String()).Observe(time.Since(start).Seconds())
	return resp
}

func (mh *meteredHandler) SlaveGone(id sched.SlaveID) { mh.inner.SlaveGone(id) }
