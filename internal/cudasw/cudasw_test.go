package cudasw

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
)

func randProtein(rng *rand.Rand, n int) []byte {
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	out := make([]byte, n)
	for i := range out {
		out[i] = canon[rng.Intn(len(canon))]
	}
	return out
}

func randDB(rng *rand.Rand, n, maxLen int) []*seq.Sequence {
	db := make([]*seq.Sequence, n)
	for i := range db {
		db[i] = seq.New(string(rune('A'+i%26))+string(rune('0'+i%10)), "", randProtein(rng, 1+rng.Intn(maxLen)))
	}
	return db
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(GTX580(), score.DefaultProtein(), nil); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := NewEngine(GTX580(), score.Scheme{}, randDB(rand.New(rand.NewSource(1)), 3, 10)); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestSearchScoresMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randDB(rng, 40, 120)
	e, err := NewEngine(GTX580(), score.DefaultProtein(), db)
	if err != nil {
		t.Fatal(err)
	}
	q := randProtein(rng, 80)
	hits, rep, err := e.Search(q, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(db) {
		t.Fatalf("%d hits for %d sequences", len(hits), len(db))
	}
	for i, h := range hits {
		if h.Index != i {
			t.Fatalf("hit %d has Index %d: order not restored", i, h.Index)
		}
		if h.ID != db[i].ID {
			t.Fatalf("hit %d ID %q != %q", i, h.ID, db[i].ID)
		}
		want := sw.Score(q, db[i].Residues, score.DefaultProtein())
		if h.Score != want {
			t.Fatalf("hit %d score %d, want %d", i, h.Score, want)
		}
	}
	if rep.Cells <= 0 || rep.Elapsed <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestSearchWithoutCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randDB(rng, 10, 50)
	e, _ := NewEngine(GTX580(), score.DefaultProtein(), db)
	hits, rep, err := e.Search(randProtein(rng, 30), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Score != 0 {
			t.Fatal("compute=false produced scores")
		}
	}
	if rep.Elapsed <= 0 || rep.Cells <= 0 {
		t.Errorf("cost model idle: %+v", rep)
	}
}

func TestCellsAccounting(t *testing.T) {
	db := []*seq.Sequence{
		seq.New("a", "", []byte("ACDEF")),      // 5
		seq.New("b", "", []byte("ACDEFGHIKL")), // 10
	}
	e, _ := NewEngine(GTX580(), score.DefaultProtein(), db)
	q := []byte("ACD")
	_, rep, _ := e.Search(q, false)
	if want := int64(3 * 15); rep.Cells != want {
		t.Errorf("Cells = %d, want %d", rep.Cells, want)
	}
	// One warp, padded to the longest (10): 2 * 3 * 10 cells.
	if want := int64(2 * 3 * 10); rep.PaddedCells != want {
		t.Errorf("PaddedCells = %d, want %d", rep.PaddedCells, want)
	}
	if rep.InterTaskSeqs != 2 || rep.IntraTaskSeqs != 0 || rep.KernelLaunches != 1 {
		t.Errorf("kernel split = %+v", rep)
	}
}

func TestIntraTaskKernelSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	long := seq.New("long", "", randProtein(rng, interTaskMaxLen+100))
	db := append(randDB(rng, 5, 50), long)
	e, _ := NewEngine(GTX580(), score.DefaultProtein(), db)
	_, rep, _ := e.Search(randProtein(rng, 20), false)
	if rep.IntraTaskSeqs != 1 || rep.InterTaskSeqs != 5 {
		t.Errorf("kernel split = %+v", rep)
	}
	if rep.KernelLaunches != 2 {
		t.Errorf("launches = %d, want 2 (one inter + one intra)", rep.KernelLaunches)
	}
}

func TestGCUPSGrowsWithDatabaseSize(t *testing.T) {
	// The Table IV effect: per-search overhead amortizes over bigger
	// databases, so simulated GCUPS must grow monotonically.
	rng := rand.New(rand.NewSource(5))
	q := randProtein(rng, 300)
	prev := 0.0
	for _, n := range []int{50, 500, 5000} {
		db := make([]*seq.Sequence, n)
		for i := range db {
			db[i] = seq.New("s", "", randProtein(rng, 200+rng.Intn(200)))
		}
		e, _ := NewEngine(GTX580(), score.DefaultProtein(), db)
		_, rep, _ := e.Search(q, false)
		g := rep.GCUPS()
		if g <= prev {
			t.Fatalf("GCUPS did not grow: %v after %v at n=%d", g, prev, n)
		}
		prev = g
	}
	// And it must stay below the device peak.
	if peak := GTX580().PeakCellsPerSecond() / 1e9; prev >= peak {
		t.Fatalf("GCUPS %v exceeds device peak %v", prev, peak)
	}
}

func TestPeakIsCalibratedNearCUDASW(t *testing.T) {
	// CUDASW++ 2.0 reports ~35 GCUPS peak on a GTX 580-class device.
	peak := GTX580().PeakCellsPerSecond() / 1e9
	if peak < 30 || peak > 40 {
		t.Errorf("GTX580 peak = %.1f GCUPS, want ~35", peak)
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e, _ := NewEngine(GTX580(), score.DefaultProtein(), randDB(rng, 3, 20))
	if _, _, err := e.Search(nil, true); err == nil {
		t.Error("empty query accepted")
	}
}

func TestReportGCUPSZeroElapsed(t *testing.T) {
	if (Report{Cells: 100}).GCUPS() != 0 {
		t.Error("zero elapsed should yield zero GCUPS")
	}
	r := Report{Cells: 35e9, Elapsed: time.Second}
	if g := r.GCUPS(); g < 34.9 || g > 35.1 {
		t.Errorf("GCUPS = %v, want 35", g)
	}
}

func TestDatabaseAccessors(t *testing.T) {
	db := []*seq.Sequence{seq.New("a", "", []byte("ACD")), seq.New("b", "", []byte("AC"))}
	e, _ := NewEngine(GTX580(), score.DefaultProtein(), db)
	if e.DatabaseSeqs() != 2 || e.DatabaseResidues() != 5 {
		t.Errorf("accessors: %d seqs, %d residues", e.DatabaseSeqs(), e.DatabaseResidues())
	}
}

func TestMemoryChunkingCost(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := randDB(rng, 30, 100)
	var residues int64
	for _, d := range db {
		residues += int64(d.Len())
	}
	q := randProtein(rng, 50)

	fits := GTX580()
	fits.MemoryBytes = residues * 2
	eFits, _ := NewEngine(fits, score.DefaultProtein(), db)
	_, repFits, _ := eFits.Search(q, false)

	tight := GTX580()
	tight.MemoryBytes = residues / 3 // forces ~3 chunks
	eTight, _ := NewEngine(tight, score.DefaultProtein(), db)
	_, repTight, _ := eTight.Search(q, false)

	if repTight.Elapsed <= repFits.Elapsed {
		t.Errorf("chunked search not slower: %v vs %v", repTight.Elapsed, repFits.Elapsed)
	}
	// Scores/cells unchanged by chunking.
	if repTight.Cells != repFits.Cells {
		t.Errorf("cells differ: %d vs %d", repTight.Cells, repFits.Cells)
	}
}
