package parallel

import (
	"sync"

	"repro/internal/score"
)

// borderMsg carries one strip of DP border state from a column block to its
// right-hand neighbour: for each row of the strip, H at the sender's last
// column and E entering the receiver's first column, plus the corner value
// H[firstRow-1][senderLastCol] for the receiver's first diagonal term.
type borderMsg struct {
	cornerH int
	h, e    []int
}

// FineGrainedScore computes the local alignment score of one pair with the
// paper's Fig. 3a scheme: the DP matrix is partitioned into `workers`
// column blocks connected by channels, and each block processes the matrix
// in horizontal strips of `strip` rows. At the beginning only the first
// worker computes; the wavefront then fills the pipeline, and near the end
// only the last worker is active — exactly the fill/drain behaviour §II-B
// describes.
func FineGrainedScore(q, t []byte, s score.Scheme, workers, strip int) int {
	m, n := len(q), len(t)
	if m == 0 || n == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if strip < 1 {
		strip = 64
	}

	open, ext := s.Gap.Open, s.Gap.Extend
	bests := make([]int, workers)
	var wg sync.WaitGroup

	// chans[k] feeds worker k from worker k-1 (chans[0] is unused).
	chans := make([]chan borderMsg, workers)
	for i := 1; i < workers; i++ {
		chans[i] = make(chan borderMsg, 4)
	}

	for k := 0; k < workers; k++ {
		lo := k * n / workers       // first 0-based column of t in this block
		hi := (k + 1) * n / workers // past-end column
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			width := hi - lo
			F := make([]int, width)     // vertical-gap state per column
			prevH := make([]int, width) // H of the last processed row (row 0: all zero)
			for j := range F {
				F[j] = negInf
			}
			best := 0

			for rowStart := 1; rowStart <= m; rowStart += strip {
				rowEnd := min(rowStart+strip-1, m)
				rows := rowEnd - rowStart + 1
				var in borderMsg
				if k > 0 {
					in = <-chans[k]
				} else {
					// The true left border of the matrix: H[i][0] = 0 and
					// no horizontal gap can enter from column 0.
					in = borderMsg{cornerH: 0, h: make([]int, rows), e: make([]int, rows)}
					for r := range in.e {
						in.e[r] = negInf
					}
				}

				outCorner := prevH[width-1]
				outH := make([]int, 0, rows)
				outE := make([]int, 0, rows)
				diagLeft := in.cornerH // H[i-1][lo-1]
				for i := rowStart; i <= rowEnd; i++ {
					e := in.e[i-rowStart] // E[i][lo], computed by the sender
					diag := diagLeft
					for j := 0; j < width; j++ {
						F[j] = max(prevH[j]-open-ext, F[j]-ext)
						h := max(diag+s.Matrix.Score(q[i-1], t[lo+j]), e, F[j], 0)
						diag = prevH[j]
						prevH[j] = h
						if h > best {
							best = h
						}
						e = max(h-open-ext, e-ext) // E[i][lo+j+1]
					}
					outH = append(outH, prevH[width-1])
					outE = append(outE, e) // E entering the next block
					diagLeft = in.h[i-rowStart]
				}
				if k+1 < workers {
					chans[k+1] <- borderMsg{cornerH: outCorner, h: outH, e: outE}
				}
			}
			bests[k] = best
		}(k, lo, hi)
	}
	wg.Wait()
	best := 0
	for _, b := range bests {
		if b > best {
			best = b
		}
	}
	return best
}
