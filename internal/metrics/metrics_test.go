package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative counter Add did not panic")
		}
	}()
	var g Gauge
	g.Set(7)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
	c.Add(-1)
}

// TestHistogramBucketBoundaries pins the le (inclusive upper bound)
// semantics: a value equal to a bound lands in that bound's bucket, and
// values beyond the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0001, 2, 2.5, 5, 5.0001, 100} {
		h.Observe(v)
	}
	// buckets: le=1 gets {0.5, 1}; le=2 gets {1.0001, 2}; le=5 gets {2.5, 5};
	// +Inf gets {5.0001, 100}.
	want := []uint64{2, 2, 2, 2}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if diff := h.Sum() - 117.0002; math.Abs(diff) > 1e-9 {
		t.Errorf("sum = %v, want 117.0002", h.Sum())
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bad := range [][]float64{nil, {}, {1, 1}, {2, 1}, {1, math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("buckets %v accepted", bad)
				}
			}()
			NewHistogram(bad)
		}()
	}
}

// TestPrometheusGolden locks the full exposition byte-for-byte: family
// ordering, HELP/TYPE headers, label rendering, cumulative histogram
// buckets, _sum/_count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_jobs_total", "Jobs processed.").Add(3)
	v := r.CounterVec("test_errors_total", "Errors by kind.", "kind")
	v.With("io").Inc()
	v.With("decode").Add(2)
	r.Gauge("test_queue_depth", "Tasks waiting.").Set(7)
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.25, 1})
	h.Observe(0.25) // exactly representable so _sum renders exactly
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_errors_total Errors by kind.
# TYPE test_errors_total counter
test_errors_total{kind="decode"} 2
test_errors_total{kind="io"} 1
# HELP test_jobs_total Jobs processed.
# TYPE test_jobs_total counter
test_jobs_total 3
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.25"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 2.75
test_latency_seconds_count 3
# HELP test_queue_depth Tasks waiting.
# TYPE test_queue_depth gauge
test_queue_depth 7
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_hits_total", "hits")
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "test_hits_total 0") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestVarzJSON(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_ops_total", "ops", "kind").With("read").Add(4)
	r.Histogram("test_wait_seconds", "wait", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]struct {
		Type    string `json:"type"`
		Metrics []struct {
			Labels  map[string]string `json:"labels"`
			Value   *float64          `json:"value"`
			Count   *uint64           `json:"count"`
			Buckets []struct {
				LE    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("varz is not valid JSON: %v\n%s", err, buf.String())
	}
	ops := out["test_ops_total"]
	if ops.Type != "counter" || len(ops.Metrics) != 1 || *ops.Metrics[0].Value != 4 || ops.Metrics[0].Labels["kind"] != "read" {
		t.Errorf("test_ops_total = %+v", ops)
	}
	wait := out["test_wait_seconds"]
	if wait.Type != "histogram" || *wait.Metrics[0].Count != 1 || len(wait.Metrics[0].Buckets) != 2 {
		t.Errorf("test_wait_seconds = %+v", wait)
	}
	if last := wait.Metrics[0].Buckets[1]; last.LE != "+Inf" || last.Count != 1 {
		t.Errorf("+Inf bucket = %+v", last)
	}
}

func TestNameConvention(t *testing.T) {
	good := []struct {
		kind Kind
		name string
	}{
		{KindCounter, "sched_tasks_completed_total"},
		{KindGauge, "sched_ready_tasks"},
		{KindGauge, "sched_slave_rate_gcups"},
		{KindHistogram, "wire_call_seconds"},
		{KindHistogram, "http_request_bytes"},
	}
	for _, g := range good {
		if err := CheckName(g.kind, g.name); err != nil {
			t.Errorf("CheckName(%s, %q) = %v, want ok", g.kind, g.name, err)
		}
	}
	bad := []struct {
		kind Kind
		name string
	}{
		{KindCounter, "tasks"},                 // no subsystem prefix
		{KindCounter, "sched_tasks_completed"}, // counter without _total
		{KindGauge, "sched_tasks_total"},       // gauge with _total
		{KindHistogram, "wire_call_latency"},   // histogram without unit
		{KindCounter, "Sched_Tasks_Total"},     // uppercase
		{KindCounter, "sched__tasks_total"},    // empty segment
		{Kind("meter"), "sched_tasks_total"},   // unknown kind
	}
	for _, b := range bad {
		if err := CheckName(b.kind, b.name); err == nil {
			t.Errorf("CheckName(%s, %q) accepted", b.kind, b.name)
		}
	}
}

func TestRegistryPanicsOnBadName(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("bad counter name accepted")
		}
	}()
	r.Counter("badname", "no prefix")
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_items_total", "items")
	b := r.Counter("test_items_total", "items")
	if a != b {
		t.Error("same-signature re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("handles do not share state")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict accepted")
		}
	}()
	r.GaugeVec("test_items_total", "items", "kind")
}

func TestWithArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_calls_total", "calls", "kind")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity accepted")
		}
	}()
	v.With("a", "b")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_weird_total", "weird", "name").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `name="a\"b\\c\nd"`) {
		t.Errorf("escaping wrong:\n%s", buf.String())
	}
}

// TestRegistryRace hammers one registry from 32 goroutines — counters,
// gauges, histograms, dynamic label children and concurrent renders — and
// is run under -race by make test. The final counts are also checked so the
// atomics are proven lossless, not merely data-race-free.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_race_ops_total", "ops")
	g := r.Gauge("test_race_depth", "depth")
	hv := r.HistogramVec("test_race_wait_seconds", "wait", []float64{0.001, 0.01, 0.1}, "worker")
	cv := r.CounterVec("test_race_kind_total", "by kind", "kind")

	const goroutines = 32
	const iters = 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worker := fmt.Sprintf("w%d", i%8)
			h := hv.With(worker)
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j%200) / 1000)
				cv.With(worker).Inc()
				if j%100 == 0 {
					r.WritePrometheus(io.Discard)
					r.WriteJSON(io.Discard)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*iters {
		t.Errorf("counter = %v, want %d", got, goroutines*iters)
	}
	var total uint64
	for i := 0; i < 8; i++ {
		total += hv.With(fmt.Sprintf("w%d", i)).Count()
	}
	if total != goroutines*iters {
		t.Errorf("histogram observations = %d, want %d", total, goroutines*iters)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalFloats(exp, want) {
		t.Errorf("ExponentialBuckets = %v, want %v", exp, want)
	}
	lin := LinearBuckets(0, 5, 3)
	if want := []float64{0, 5, 10}; !equalFloats(lin, want) {
		t.Errorf("LinearBuckets = %v, want %v", lin, want)
	}
}
