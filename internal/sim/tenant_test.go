package sim

import (
	"testing"
	"time"
)

// TestTenantStarvationScenario is the acceptance invariant of the
// multi-tenancy work: flood-vs-trickle at equal weight, swept over the
// pinned property seed matrix. Every admitted arrival must complete, the
// trickle tenant inside its DRF-derived SLO (a FIFO scheduler would blow
// it by seconds), and the envy sweep must see real contention.
func TestTenantStarvationScenario(t *testing.T) {
	for _, seed := range propertySeeds {
		sc := TenantStarvation(seed)
		rep := mustRun(t, sc)
		requireClean(t, rep)
		if rep.Arrivals != 24 || rep.Rejected != 0 {
			t.Errorf("seed %d: arrivals=%d rejected=%d, want 24/0", seed, rep.Arrivals, rep.Rejected)
		}
		// 1 seed task + 24 arrivals, each with exactly one result.
		if len(rep.Results) != 25 {
			t.Errorf("seed %d: %d results, want 25", seed, len(rep.Results))
		}
	}
}

// TestQuotaBurstScenario pins admission control: the greedy tenant's burst
// must actually hit its MaxOutstanding cap (a run with no rejections never
// exercised the quota), and everything admitted still completes.
func TestQuotaBurstScenario(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rep := mustRun(t, QuotaBurst(seed))
		requireClean(t, rep)
		if rep.Rejected == 0 {
			t.Errorf("seed %d: burst of 12 against MaxOutstanding 2 rejected nothing", seed)
		}
		if rep.Arrivals-rep.Rejected < 5 {
			t.Errorf("seed %d: only %d of %d arrivals admitted", seed, rep.Arrivals-rep.Rejected, rep.Arrivals)
		}
	}
}

// TestPreemptStormScenario pins the preemption path end to end: the
// scenario is built so the fast slave replicates the slow slave's task and
// then loses that replica to a higher-priority arrival. Zero preemptions
// means the path never fired; any sole-copy preemption is a violation the
// invariant library reports on its own.
func TestPreemptStormScenario(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rep := mustRun(t, PreemptStorm(seed))
		requireClean(t, rep)
		if rep.Replicas == 0 {
			t.Errorf("seed %d: adjustment never replicated; the scenario lost its teeth", seed)
		}
		if rep.Preempts == 0 {
			t.Errorf("seed %d: no preemption fired; the scenario lost its teeth", seed)
		}
	}
}

// TestAutoscaleFlapScenario pins elastic-pool stability under the pinned
// seed matrix: the pool must grow for each burst (zero scale events means
// the controller never reacted), stay within the flip budget — that
// invariant lives in the run itself — and finish every arrival despite
// scale-ins requeuing work.
func TestAutoscaleFlapScenario(t *testing.T) {
	for _, seed := range propertySeeds {
		sc := AutoscaleFlap(seed)
		rep := mustRun(t, sc)
		requireClean(t, rep)
		if rep.ScaleEvents == 0 {
			t.Errorf("seed %d: autoscaler never acted under two bursts", seed)
		}
		if rep.Rejected != 0 {
			t.Errorf("seed %d: %d arrivals rejected with no quotas set", seed, rep.Rejected)
		}
	}
}

// TestTenantArrivalsSurviveMasterRestart composes the two hard parts: a
// master crash in the middle of a two-tenant arrival stream. Arrivals that
// land while the master is down defer and retry after the restore;
// arrivals admitted after the last checkpoint are resubmitted from the
// front-door metadata; either way every admitted job completes exactly
// once, which checkFinal verifies against the grown query list.
func TestTenantArrivalsSurviveMasterRestart(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		sc := TenantStarvation(seed)
		sc.Name = "tenant-restart"
		// No SLO under a 400ms outage: deferred arrivals legitimately wait.
		sc.Tenants[1].MaxWait = 0
		sc.CheckFairShare = false
		sc.TearWAL = true
		sc.Restarts = []MasterRestart{{At: 700 * time.Millisecond, DownFor: 400 * time.Millisecond}}
		rep := mustRun(t, sc)
		requireClean(t, rep)
		if rep.Restarts != 1 {
			t.Errorf("seed %d: %d restarts, want 1", seed, rep.Restarts)
		}
	}
}

// TestFairShareDetectsStarvation is the invariant library testing itself:
// feed checkEnvy a synthetic trace in which one backlogged tenant is
// served everything and the other nothing, and the sweep must object. The
// real scheduler passing the same check is only meaningful if this fails.
func TestFairShareDetectsStarvation(t *testing.T) {
	r := &run{sc: Scenario{
		CheckFairShare: true,
		FairTolerance:  0.10,
		FairSlackCells: 1,
		Tenants: []TenantSpec{
			{Name: "served", Weight: 1},
			{Name: "starved", Weight: 1},
		},
	}}
	r.fairTrace = []fairEvent{
		{at: 0, tenant: "served", delta: +1},
		{at: 0, tenant: "starved", delta: +1},
		{at: 1, tenant: "served", delta: -1, cells: 1000},
		{at: 1, tenant: "served", delta: +1},
		{at: 2, tenant: "served", delta: -1, cells: 1000},
		{at: 3, tenant: "starved", delta: -1, cells: 10},
	}
	r.checkEnvy()
	if len(r.violations) == 0 {
		t.Fatal("one-sided service trace passed the envy sweep")
	}
}
