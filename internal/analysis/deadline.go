package analysis

import (
	"go/ast"
	"go/types"
)

// DeadlineAnalyzer guards against unbounded RPC waits: every call site
// of a wire client method (any Call(wire.Envelope) method — wire.Client,
// the wire.Caller interface, or a middleware wrapper) must be governed
// by some deadline mechanism. Accepted evidence, anywhere in the
// enclosing top-level function (closures inherit it):
//
//   - deriving a context with context.WithTimeout/WithDeadline;
//   - driving the call from a wire.Backoff retry loop (referencing the
//     Backoff type or calling its Delay method);
//   - setting a wire.Client's Timeout field, or dialing with
//     wire.DialTimeout (which sets it).
//
// A helper whose own body shows no evidence is cleared when every
// same-package caller (transitively) is governed — the slave's
// runSession/runTask helpers run under Run's backoff loop, and that
// suffices. The wire package itself is exempt (it implements the
// mechanisms), as are Call(wire.Envelope) methods themselves — a
// middleware's Call forwards whatever governance its caller chose.
//
// A second rule flags wire.Dial calls in functions that never set the
// resulting client's Timeout: DialTimeout exists precisely so no
// connection starts with an unbounded per-call wait.
var DeadlineAnalyzer = &Analyzer{
	Name: "deadline",
	Doc:  "wire RPC call sites must be governed by a deadline (WithTimeout, Backoff retry, or Client.Timeout)",
	Run:  runDeadline,
}

func runDeadline(pass *Pass) {
	if pathHasPackage(pass.Pkg.Path, "internal/wire") {
		return // the transport implements the deadline mechanisms
	}
	info := pass.Pkg.Info

	decls := packageFuncDecls(pass.Pkg)

	// callers[f] lists the same-package functions that call (or
	// reference) f; references count as calls, which only makes the
	// governance requirement stricter.
	callers := map[*ast.FuncDecl][]*ast.FuncDecl{}
	evidence := map[*ast.FuncDecl]bool{}
	for _, fd := range decls {
		evidence[fd] = hasDeadlineEvidence(info, fd)
	}
	for _, fd := range decls {
		ast.Inspect(fd, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj, ok := info.Uses[id].(*types.Func); ok {
				if callee, ok := decls[obj]; ok && callee != fd {
					callers[callee] = append(callers[callee], fd)
				}
			}
			return true
		})
	}

	governed := map[*ast.FuncDecl]int{} // 0 unknown, 1 in progress, 2 yes, 3 no
	var isGoverned func(fd *ast.FuncDecl) bool
	isGoverned = func(fd *ast.FuncDecl) bool {
		switch governed[fd] {
		case 1:
			return true // cycle: optimistic, some entry into it is checked
		case 2:
			return true
		case 3:
			return false
		}
		if evidence[fd] {
			governed[fd] = 2
			return true
		}
		cs := callers[fd]
		if len(cs) == 0 {
			governed[fd] = 3
			return false
		}
		governed[fd] = 1
		ok := true
		for _, c := range cs {
			if !isGoverned(c) {
				ok = false
				break
			}
		}
		if ok {
			governed[fd] = 2
		} else {
			governed[fd] = 3
		}
		return ok
	}

	for _, fd := range decls {
		if isCallForwarder(info, fd) {
			continue
		}
		fdGoverned := isGoverned(fd)
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isWireEnvelopeCall(info, call) && !fdGoverned {
				pass.Reportf(call.Pos(), "wire RPC without a governing deadline: derive a context.WithTimeout, drive the call from a wire.Backoff loop, or set Client.Timeout")
			}
			if fn := calleeFunc(info, call); isPkgFunc(fn, "internal/wire", "Dial") && !setsClientTimeout(info, fd) {
				pass.Reportf(call.Pos(), "wire.Dial leaves Client.Timeout zero (RPCs can wait forever): use wire.DialTimeout or set Timeout")
			}
			return true
		})
	}
}

// hasDeadlineEvidence scans one declaration (closures included) for any
// accepted deadline mechanism.
func hasDeadlineEvidence(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if isPkgFunc(fn, "context", "WithTimeout", "WithDeadline") ||
				isPkgFunc(fn, "internal/wire", "DialTimeout") {
				found = true
			}
		case *ast.Ident:
			// Any use of a wire.Backoff value (opts.Backoff.Delay(...),
			// a Backoff field, a Backoff literal).
			if obj := info.Uses[n]; obj != nil && namedFrom(obj.Type(), "internal/wire", "Backoff") {
				found = true
			}
		}
		if setsClientTimeoutNode(info, n) {
			found = true
		}
		return !found
	})
	return found
}

// setsClientTimeout reports whether the declaration assigns a
// wire.Client's Timeout field anywhere.
func setsClientTimeout(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if setsClientTimeoutNode(info, n) {
			found = true
		}
		return !found
	})
	return found
}

// setsClientTimeoutNode matches `c.Timeout = ...` (or a composite
// literal field) for a wire.Client.
func setsClientTimeoutNode(info *types.Info, n ast.Node) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Timeout" {
			continue
		}
		if tv, ok := info.Types[sel.X]; ok && namedFrom(tv.Type, "internal/wire", "Client") {
			return true
		}
	}
	return false
}

// isCallForwarder reports whether fd is itself a Call(wire.Envelope)
// method — transport middleware forwarding under the caller's
// governance.
func isCallForwarder(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Call" {
		return false
	}
	for _, p := range fd.Type.Params.List {
		if namedFrom(info.Types[p.Type].Type, "internal/wire", "Envelope") {
			return true
		}
	}
	return false
}
