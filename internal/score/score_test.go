package score

import (
	"strings"
	"testing"

	"repro/internal/seq"
)

func TestBLOSUM62KnownValues(t *testing.T) {
	cases := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', 4},
		{'W', 'W', 11},
		{'W', 'A', -3},
		{'E', 'Z', 4},
		{'C', 'C', 9},
		{'*', '*', 1},
		{'A', '*', -4},
		{'L', 'I', 2},
	}
	for _, c := range cases {
		if got := BLOSUM62.Score(c.a, c.b); got != c.want {
			t.Errorf("BLOSUM62(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBLOSUM50KnownValues(t *testing.T) {
	if got := BLOSUM50.Score('W', 'W'); got != 15 {
		t.Errorf("BLOSUM50(W,W) = %d, want 15", got)
	}
	if got := BLOSUM50.Score('A', 'A'); got != 5 {
		t.Errorf("BLOSUM50(A,A) = %d, want 5", got)
	}
}

func TestMatricesSymmetric(t *testing.T) {
	for _, m := range []*Matrix{BLOSUM62, BLOSUM50} {
		if !m.IsSymmetric() {
			t.Errorf("%s is not symmetric", m.Name())
		}
	}
}

func TestMatrixDiagonalDominance(t *testing.T) {
	// Every standard matrix scores identity at least as well as any
	// substitution involving that residue (for the 20 canonical residues).
	for _, m := range []*Matrix{BLOSUM62, BLOSUM50} {
		for i := 0; i < 20; i++ {
			a := m.Alphabet().Letter(i)
			for j := 0; j < 20; j++ {
				b := m.Alphabet().Letter(j)
				if i != j && m.Score(a, b) >= m.Score(a, a) {
					t.Errorf("%s: score(%c,%c)=%d >= score(%c,%c)=%d",
						m.Name(), a, b, m.Score(a, b), a, a, m.Score(a, a))
				}
			}
		}
	}
}

func TestMatrixMaxMin(t *testing.T) {
	if BLOSUM62.Max() != 11 {
		t.Errorf("BLOSUM62.Max() = %d, want 11", BLOSUM62.Max())
	}
	if BLOSUM62.Min() != -4 {
		t.Errorf("BLOSUM62.Min() = %d, want -4", BLOSUM62.Min())
	}
}

func TestScoreUnknownResidue(t *testing.T) {
	if got := BLOSUM62.Score('A', '1'); got != BLOSUM62.Min() {
		t.Errorf("score vs non-residue = %d, want matrix min %d", got, BLOSUM62.Min())
	}
}

func TestMatchMismatch(t *testing.T) {
	m := NewMatchMismatch(seq.DNA, 1, -1)
	if m.Score('A', 'A') != 1 || m.Score('A', 'T') != -1 {
		t.Errorf("match/mismatch scores wrong: %d %d", m.Score('A', 'A'), m.Score('A', 'T'))
	}
	if !m.IsSymmetric() {
		t.Error("match/mismatch matrix should be symmetric")
	}
}

func TestScoreIndexAgreesWithScore(t *testing.T) {
	a := BLOSUM62.Alphabet()
	for i := 0; i < a.Size(); i++ {
		for j := 0; j < a.Size(); j++ {
			if BLOSUM62.ScoreIndex(byte(i), byte(j)) != BLOSUM62.Score(a.Letter(i), a.Letter(j)) {
				t.Fatalf("ScoreIndex(%d,%d) disagrees with Score", i, j)
			}
		}
	}
}

func TestGapModels(t *testing.T) {
	lin := LinearGap(2)
	if lin.IsAffine() {
		t.Error("LinearGap should not be affine")
	}
	if lin.Cost(3) != 6 {
		t.Errorf("linear Cost(3) = %d, want 6", lin.Cost(3))
	}
	aff := AffineGap(10, 2)
	if !aff.IsAffine() {
		t.Error("AffineGap should be affine")
	}
	if aff.Cost(1) != 12 || aff.Cost(3) != 16 {
		t.Errorf("affine costs = %d, %d; want 12, 16", aff.Cost(1), aff.Cost(3))
	}
	if aff.Cost(0) != 0 {
		t.Errorf("Cost(0) = %d, want 0", aff.Cost(0))
	}
}

func TestGapValidate(t *testing.T) {
	if err := AffineGap(10, 2).Validate(); err != nil {
		t.Errorf("valid gap rejected: %v", err)
	}
	if err := (Gap{Open: -1, Extend: 2}).Validate(); err == nil {
		t.Error("negative open accepted")
	}
	if err := (Gap{Open: 5, Extend: 0}).Validate(); err == nil {
		t.Error("zero extend accepted")
	}
}

func TestGapString(t *testing.T) {
	if s := AffineGap(10, 2).String(); !strings.Contains(s, "affine") {
		t.Errorf("String() = %q", s)
	}
	if s := LinearGap(2).String(); !strings.Contains(s, "linear") {
		t.Errorf("String() = %q", s)
	}
}

func TestSchemeValidate(t *testing.T) {
	if err := DefaultProtein().Validate(); err != nil {
		t.Errorf("DefaultProtein invalid: %v", err)
	}
	if err := DefaultDNA().Validate(); err != nil {
		t.Errorf("DefaultDNA invalid: %v", err)
	}
	if err := (Scheme{}).Validate(); err == nil {
		t.Error("empty scheme accepted")
	}
}

func TestParseNCBIErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"AB C\nA 1 2",        // bad header field
		"A C\nA 1",           // short row
		"A C\nA 1 x\nC 1 1",  // non-numeric
		"A C\nAB 1 2\nC 1 1", // bad row label
	}
	for _, c := range cases {
		if _, err := ParseNCBI("bad", strings.NewReader(c)); err == nil {
			t.Errorf("ParseNCBI(%q) succeeded, want error", c)
		}
	}
}

func TestParseNCBIMissingResidues(t *testing.T) {
	// A tiny matrix defining only A and C: all other protein residues must
	// fall back to the file minimum.
	m, err := ParseNCBI("tiny", strings.NewReader(" A C\nA 4 -2\nC -2 9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Score('A', 'A') != 4 || m.Score('C', 'C') != 9 {
		t.Error("defined scores wrong")
	}
	if m.Score('W', 'W') != -2 {
		t.Errorf("undefined residue score = %d, want file min -2", m.Score('W', 'W'))
	}
}

func TestNewMatrixShapeErrors(t *testing.T) {
	if _, err := NewMatrix("bad", seq.DNA, [][]int{{1}}); err == nil {
		t.Error("wrong row count accepted")
	}
	if _, err := NewMatrix("bad", seq.DNA, [][]int{{1}, {1}, {1}, {1}}); err == nil {
		t.Error("ragged rows accepted")
	}
}
