package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/wire"
)

// slaveBackoff is the reconnect schedule simulated slaves ride when the
// master is unreachable — the same truncated-exponential wire.Backoff the
// real slave loop uses, jittered from the machine's seeded rng.
var slaveBackoff = wire.Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.2}

// work is the task a machine is currently executing.
type work struct {
	spec      wire.TaskSpec
	cellsDone int64
}

// machine is one simulated slave: a virtual-time state machine mirroring
// the real slave loop (register → request → execute/notify → complete,
// with reconnect backoff), driven entirely by scheduled events. Its speed
// comes from the shared platform.PE model; its link faults from a seeded
// wire.RuleSet.
type machine struct {
	r     *run
	index int
	spec  SlaveSpec
	pe    *platform.PE
	rng   *rand.Rand
	rules *wire.RuleSet

	// epoch bumps on crash, hang and revival; events scheduled by an older
	// epoch (in-flight responses, pending slices) are dropped on arrival.
	epoch   int
	id      sched.SlaveID
	crashed bool
	wedged  bool
	stopped bool // saw Done: the job is over for this slave
	elastic bool // booted by the autoscaler; eligible for scale-in
	attempt int  // consecutive transport failures, drives backoff

	queue   []wire.TaskSpec
	working *work
}

func newMachine(r *run, index int, spec SlaveSpec) *machine {
	return &machine{
		r:     r,
		index: index,
		spec:  spec,
		pe:    spec.pe(),
		rng:   rand.New(rand.NewSource(r.sc.Seed ^ int64(0x51a7e)*int64(index+1))),
		rules: wire.NewRuleSet(r.sc.Seed^int64(0x1111)*int64(index+1), spec.Rules...),
		id:    -1,
	}
}

// boot schedules the machine's birth and its fault timetable. Starts are
// staggered per index so registration order is by construction rather than
// heap tie-breaking — easier to reason about in failure reproducers.
func (m *machine) boot() {
	// Relative to now, not absolute: elastic machines boot mid-run. At
	// t=0 the two are identical for the static fleet.
	m.r.sim.After(time.Duration(m.index)*time.Millisecond, m.guard(m.register))
	if m.spec.CrashAt > 0 {
		m.r.sim.Schedule(m.spec.CrashAt, m.crash)
	}
	if m.spec.HangAt > 0 {
		m.r.sim.Schedule(m.spec.HangAt, m.hang)
	}
	if m.spec.RecoverAt > 0 {
		m.r.sim.Schedule(m.spec.RecoverAt, m.revive)
	}
}

// guard wraps a callback so it only runs if the machine is still in the
// same lifetime that scheduled it.
func (m *machine) guard(fn func()) func() {
	ep := m.epoch
	return func() {
		if m.epoch == ep && !m.stopped {
			fn()
		}
	}
}

// retry schedules fn after the next backoff delay (one more consecutive
// transport failure).
func (m *machine) retry(fn func()) {
	m.attempt++
	m.r.sim.After(slaveBackoff.Delay(m.attempt-1, m.rng), m.guard(fn))
}

// reset drops every trace of the current session — registration and
// assigned work — and re-registers. This is the slave's reaction to an
// Error envelope ("expired; re-register", "unknown slave" after a master
// restart): the work it held has been requeued (or will be) on the master
// side; finishing it under a stale ID would be rejected anyway.
func (m *machine) reset() {
	m.id = -1
	m.queue = nil
	m.working = nil
	m.register()
}

func (m *machine) register() {
	m.r.roundTrip(m, wire.Envelope{Register: &wire.RegisterMsg{
		Name:          m.spec.Name,
		Kind:          m.spec.Kind,
		DeclaredSpeed: m.pe.DeclaredSpeed(),
	}}, func(resp wire.Envelope, err error) {
		if err != nil || resp.RegisterAck == nil {
			m.retry(m.register)
			return
		}
		m.attempt = 0
		m.id = resp.RegisterAck.Slave
		m.requestWork()
	})
}

func (m *machine) requestWork() {
	m.r.roundTrip(m, wire.Envelope{Request: &wire.RequestMsg{Slave: m.id}}, func(resp wire.Envelope, err error) {
		switch {
		case err != nil:
			m.retry(m.requestWork)
		case resp.Error != "":
			m.reset()
		case resp.Assign == nil:
			m.retry(m.requestWork)
		case resp.Assign.Done:
			m.stopped = true
		case resp.Assign.Standby:
			m.attempt = 0
			m.r.sim.After(m.r.sc.PollEvery, m.guard(m.requestWork))
		default:
			m.attempt = 0
			m.queue = append(m.queue, resp.Assign.Tasks...)
			m.startNext()
		}
	})
}

// startNext begins the next queued task (charging the PE's per-task
// overhead first) or goes back to asking for work.
func (m *machine) startNext() {
	if m.working != nil {
		return
	}
	if len(m.queue) == 0 {
		m.requestWork()
		return
	}
	m.working = &work{spec: m.queue[0]}
	m.queue = m.queue[1:]
	m.r.sim.After(m.pe.TaskOverhead, m.guard(m.slice))
}

// slice advances the current task by up to one notification interval at
// the PE's current effective speed (capacity windows + jitter — the same
// model the discrete-event runner integrates). A full slice ends in a
// progress notification; the final partial slice ends in completion, its
// delta carried on the Complete message. Computation pauses while a call
// is in flight, matching a synchronous notifier.
func (m *machine) slice() {
	w := m.working
	if w == nil {
		m.startNext()
		return
	}
	speed := m.pe.SpeedAt(m.r.sim.Now(), m.rng)
	remaining := w.spec.Cells - w.cellsDone
	sliceCells := int64(speed * m.r.sc.NotifyEvery.Seconds())
	if sliceCells < 1 {
		sliceCells = 1
	}
	if remaining <= sliceCells {
		dur := time.Duration(float64(remaining) / speed * float64(time.Second))
		m.r.sim.After(dur, m.guard(func() { m.complete(remaining, speed) }))
		return
	}
	m.r.sim.After(m.r.sc.NotifyEvery, m.guard(func() {
		w.cellsDone += sliceCells
		m.notify(sliceCells, speed)
	}))
}

func (m *machine) notify(cells int64, rate float64) {
	m.r.roundTrip(m, wire.Envelope{Progress: &wire.ProgressMsg{
		Slave: m.id, Rate: rate, Cells: cells,
	}}, func(resp wire.Envelope, err error) {
		switch {
		case err != nil:
			// The cells are done; only the notification is lost. Retry the
			// same message — the master tolerates duplicate progress.
			m.retry(func() { m.notify(cells, rate) })
		case resp.Error != "":
			m.reset()
		case resp.ProgressAck == nil:
			m.retry(func() { m.notify(cells, rate) })
		case resp.ProgressAck.Done:
			m.stopped = true
		default:
			m.attempt = 0
			m.applyCancels(resp.ProgressAck.Cancel)
			m.slice()
		}
	})
}

func (m *machine) complete(finalCells int64, rate float64) {
	w := m.working
	if w == nil {
		m.startNext()
		return
	}
	w.cellsDone = w.spec.Cells
	m.r.roundTrip(m, wire.Envelope{Complete: &wire.CompleteMsg{
		Slave: m.id,
		Task:  w.spec.ID,
		Hits:  hitsFor(w.spec),
		Rate:  rate,
		Cells: finalCells,
	}}, func(resp wire.Envelope, err error) {
		switch {
		case err != nil:
			// At-least-once delivery: the completion may already have
			// landed (response dropped); the master's duplicate guard
			// answers the retry with Accepted=false and no harm done.
			m.retry(func() { m.complete(finalCells, rate) })
		case resp.Error != "":
			m.reset()
		case resp.CompleteAck == nil:
			m.retry(func() { m.complete(finalCells, rate) })
		case resp.CompleteAck.Done:
			m.stopped = true
		default:
			m.attempt = 0
			m.working = nil
			m.applyCancels(resp.CompleteAck.Cancel)
			m.startNext()
		}
	})
}

// applyCancels drops tasks whose other copy finished first: the current
// task if it is named, and any queued copies.
func (m *machine) applyCancels(cancel []sched.TaskID) {
	if len(cancel) == 0 {
		return
	}
	moot := map[sched.TaskID]bool{}
	for _, id := range cancel {
		moot[id] = true
	}
	if m.working != nil && moot[m.working.spec.ID] {
		m.working = nil
	}
	kept := m.queue[:0]
	for _, t := range m.queue {
		if !moot[t.ID] {
			kept = append(kept, t)
		}
	}
	m.queue = kept
}

// crash kills the machine: every in-flight event of this lifetime is
// orphaned, and the master hears the connection drop one latency later —
// unless it is down, in which case the restart loses the registration
// anyway.
func (m *machine) crash() {
	if m.stopped || m.crashed {
		return
	}
	m.epoch++
	m.crashed = true
	m.queue = nil
	m.working = nil
	id, self := m.id, m
	m.id = -1
	if id >= 0 {
		m.r.sim.After(m.r.sc.Latency, func() {
			own, ok := m.r.owner[id]
			if ok && own.m == self && m.r.masterUp() {
				m.r.core.SlaveGone(id)
			}
		})
	}
}

// hang wedges the machine silently: no SlaveGone, no further messages.
// Its registered ID stays live on the master until the lease expires.
func (m *machine) hang() {
	if m.stopped || m.wedged || m.crashed {
		return
	}
	m.epoch++
	m.wedged = true
	m.queue = nil
	m.working = nil
}

// revive reboots a crashed or hung machine as a fresh incarnation that
// re-registers for a new ID.
func (m *machine) revive() {
	if m.stopped || (!m.crashed && !m.wedged) {
		return
	}
	m.epoch++
	m.crashed = false
	m.wedged = false
	m.attempt = 0
	m.id = -1
	m.queue = nil
	m.working = nil
	m.register()
}

// hitsFor synthesizes a deterministic result payload for a task: a pure
// function of the task, so the job's merged results are identical no
// matter which replica wins the race.
func hitsFor(spec wire.TaskSpec) []wire.Hit {
	n := 1 + int(spec.ID)%3
	hits := make([]wire.Hit, n)
	for i := range hits {
		hits[i] = wire.Hit{
			SeqID: fmt.Sprintf("db%04d", (int(spec.ID)*131+i*37)%9973),
			Index: int(spec.ID)*10 + i,
			Score: 40 + (int(spec.ID)*17+i*29)%120,
		}
	}
	return hits
}
