package sched

import (
	"fmt"
	"time"
)

// PreemptReason classifies why a replicated task copy was revoked.
type PreemptReason int

const (
	// PreemptShare marks a revocation driven by dominant-resource fairness:
	// the victim's tenant held a dominant share far above an underserved
	// tenant with ready work.
	PreemptShare PreemptReason = iota
	// PreemptPriority marks a revocation driven by task priority: ready
	// work of strictly higher priority existed while a replicated copy of
	// lower-priority work occupied the slave.
	PreemptPriority
)

// String returns the reason label used in logs, traces and tests.
func (r PreemptReason) String() string {
	switch r {
	case PreemptShare:
		return "share"
	case PreemptPriority:
		return "priority"
	default:
		return fmt.Sprintf("PreemptReason(%d)", int(r))
	}
}

// PreemptEvent records one preemption for traces and the simulator's
// sole-copy-never-preempted invariant: Survivors is the executor count of
// the task immediately after the revoked copy was dropped, and must always
// be at least 1.
type PreemptEvent struct {
	At        time.Duration
	Task      TaskID
	Tenant    string
	Slave     SlaveID
	Reason    PreemptReason
	Survivors int
}

// tenantShare is the coordinator's per-tenant allocation ledger. running
// holds in-flight cells bucketed by the slave kind each task was first
// granted to (its "home" kind) — the resource vector of dominant-resource
// fairness, where each hardware class is one divisible resource. Replica
// copies are deliberately not charged: DRF shares describe what a tenant
// holds, and a replica adds no held work, only redundancy.
type tenantShare struct {
	weight    float64
	doneCells int64
	running   map[SlaveKind]int64
	homeKind  map[TaskID]SlaveKind
}

// tenantOf returns (creating on first use) the share ledger for a tenant.
func (c *Coordinator) tenantOf(name string) *tenantShare {
	ts := c.tenants[name]
	if ts == nil {
		w := c.cfg.Tenants[name]
		if w <= 0 {
			w = 1
		}
		ts = &tenantShare{
			weight:   w,
			running:  map[SlaveKind]int64{},
			homeKind: map[TaskID]SlaveKind{},
		}
		c.tenants[name] = ts
	}
	return ts
}

// tenantGrant charges a first-copy grant to the tenant's ledger under the
// granting slave's hardware kind.
func (c *Coordinator) tenantGrant(t Task, kind SlaveKind) {
	if !c.mixedTenants {
		return
	}
	ts := c.tenantOf(t.Tenant)
	ts.running[kind] += t.Cells
	ts.homeKind[t.ID] = kind
}

// tenantRelease removes a task from its tenant's in-flight ledger (the task
// finished or fell back to ready). done marks an accepted completion, which
// also credits the tenant's served total.
func (c *Coordinator) tenantRelease(t Task, done bool) {
	if !c.mixedTenants {
		return
	}
	ts := c.tenantOf(t.Tenant)
	if k, ok := ts.homeKind[t.ID]; ok {
		ts.running[k] -= t.Cells
		if ts.running[k] < 0 {
			ts.running[k] = 0
		}
		delete(ts.homeKind, t.ID)
	}
	if done {
		ts.doneCells += t.Cells
	}
}

// capacityByKind sums the current speed estimates of alive slaves per
// hardware kind — the resource totals DRF shares are normalized against.
// Slaves with no speed information count 1 "unit" so a freshly booted fleet
// still yields usable shares.
func (c *Coordinator) capacityByKind() map[SlaveKind]float64 {
	cap := map[SlaveKind]float64{}
	for i, s := range c.slaves {
		if s.dead {
			continue
		}
		v := c.SpeedOf(SlaveID(i))
		if v <= 0 {
			v = 1
		}
		cap[s.info.Kind] += v
	}
	return cap
}

// dominantScore is a tenant's dominant share divided by its weight: the
// quantity DRF equalizes. The dominant share is the maximum, over hardware
// kinds with nonzero capacity, of the tenant's in-flight cells on that kind
// divided by the kind's total capacity.
func dominantScore(ts *tenantShare, capacity map[SlaveKind]float64) float64 {
	var dom float64
	for k, cells := range ts.running {
		cp := capacity[k]
		if cp <= 0 || cells <= 0 {
			continue
		}
		if sh := float64(cells) / cp; sh > dom {
			dom = sh
		}
	}
	return dom / ts.weight
}

// takeReadyFair is the tenant-aware grant path: up to n ready tasks for
// slave id, each chosen from the most underserved tenant (minimum dominant
// share over weight) that has admissible ready work; within a tenant,
// highest priority first, then arrival order. Shares update between picks
// so one multi-task grant cannot hand a whole batch to a single tenant.
// With no tenants in play it degenerates to the historical FIFO take.
func (c *Coordinator) takeReadyFair(n int, allow func(Task) bool, id SlaveID, now time.Duration) []Task {
	if !c.mixedTenants {
		return c.pool.TakeReadyFunc(n, allow, id, now)
	}
	kind := c.slaves[id].info.Kind
	capacity := c.capacityByKind()
	var out []Task
	for len(out) < n {
		// First admissible ready task per tenant, preferring priority then
		// FIFO order (the readyFIFO is globally arrival-ordered, so the
		// first hit at a given priority is that tenant's oldest).
		head := map[string]TaskID{}
		for _, rid := range c.pool.readyFIFO {
			t := c.pool.entries[rid].task
			if allow != nil && !allow(t) {
				continue
			}
			prev, ok := head[t.Tenant]
			if !ok || t.Priority > c.pool.entries[prev].task.Priority {
				head[t.Tenant] = rid
			}
		}
		if len(head) == 0 {
			break
		}
		bestTenant, picked := "", TaskID(-1)
		bestScore := 0.0
		for name, rid := range head {
			score := dominantScore(c.tenantOf(name), capacity)
			if picked < 0 || score < bestScore || (score == bestScore && name < bestTenant) {
				bestTenant, picked, bestScore = name, rid, score
			}
		}
		t := c.pool.TakeReadyTask(picked, id, now)
		c.tenantGrant(t, kind)
		out = append(out, t)
	}
	return out
}

// PreemptLog returns every preemption event in time order.
func (c *Coordinator) PreemptLog() []PreemptEvent { return c.preemptLog }

// preemptFactor resolves the configured share-imbalance threshold.
func (c *Coordinator) preemptFactor() float64 {
	if c.cfg.PreemptFactor > 0 {
		return c.cfg.PreemptFactor
	}
	return 1.5
}

// Preempt considers revoking one task copy from slave id to make room for
// more deserving ready work. It is the inverse of the workload adjustment
// mechanism and shares its safety spine: only *replicated* tasks — two or
// more live executors — are ever preempted, so a preemption can never send
// an executing task back to ready or lose sole-copy work. The revoked copy
// is dropped from the slave and the pool (the surviving executors keep
// running); the returned IDs are for the caller to deliver as protocol
// cancellations, exactly like moot-replica cancels.
//
// A copy is revocable when a ready task R this slave could run satisfies
// either trigger:
//   - priority: R.Priority strictly exceeds the victim's, or
//   - share: the victim tenant's dominant score exceeds R's tenant's by
//     the configured factor (default 1.5×) — DRF rebalancing.
//
// At most one copy is revoked per call; callers invoke it on the progress
// path, so the preemption rate is naturally bounded by the notification
// interval.
func (c *Coordinator) Preempt(id SlaveID, now time.Duration) []TaskID {
	if !c.cfg.Preempt || c.slaves[id].dead || c.pool.Ready() == 0 {
		return nil
	}
	allow := c.allowFor(id)
	capacity := c.capacityByKind()

	// The strongest claim among ready tasks this slave could take over:
	// highest priority, and the lowest tenant score seen at that priority.
	bestPrio := int(-1 << 31)
	readyScore := map[string]float64{}
	for _, rid := range c.pool.readyFIFO {
		t := c.pool.entries[rid].task
		if allow != nil && !allow(t) {
			continue
		}
		if t.Priority > bestPrio {
			bestPrio = t.Priority
		}
		if _, ok := readyScore[t.Tenant]; !ok {
			readyScore[t.Tenant] = dominantScore(c.tenantOf(t.Tenant), capacity)
		}
	}
	if len(readyScore) == 0 {
		return nil
	}
	minReadyScore, haveScore := 0.0, false
	for _, sc := range readyScore {
		if !haveScore || sc < minReadyScore {
			minReadyScore, haveScore = sc, true
		}
	}

	s := c.slaves[id]
	victim := TaskID(-1)
	var victimScore float64
	var reason PreemptReason
	for _, tid := range s.order {
		if c.pool.StateOf(tid) != Executing || len(c.pool.Executors(tid)) < 2 {
			continue // sole copies are untouchable
		}
		t := c.pool.Task(tid)
		vScore := dominantScore(c.tenantOf(t.Tenant), capacity)
		switch {
		case bestPrio > t.Priority:
			if victim < 0 || vScore > victimScore {
				victim, victimScore, reason = tid, vScore, PreemptPriority
			}
		case c.mixedTenants && vScore > minReadyScore*c.preemptFactor():
			if victim < 0 || vScore > victimScore {
				victim, victimScore, reason = tid, vScore, PreemptShare
			}
		}
	}
	if victim < 0 {
		return nil
	}
	t := c.pool.Task(victim)
	s.drop(victim, t.Cells)
	c.pool.Abandon(victim, id)
	survivors := len(c.pool.Executors(victim))
	c.preemptLog = append(c.preemptLog, PreemptEvent{
		At: now, Task: victim, Tenant: t.Tenant, Slave: id,
		Reason: reason, Survivors: survivors,
	})
	if m := c.cfg.Metrics; m != nil {
		m.TasksPreempted.Inc()
	}
	c.syncGauges()
	return []TaskID{victim}
}
