package autoscale

import "repro/internal/metrics"

// Metrics is the autoscaler's instrumentation bundle; nil skips all
// accounting, like every bundle in this repo.
type Metrics struct {
	PoolSize *metrics.Gauge
	Events   *metrics.CounterVec
}

// NewMetrics registers (or re-attaches to) the autoscaler families on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		PoolSize: r.Gauge("autoscale_pool_size", "Slaves currently provisioned by the elastic pool (including booting ones)."),
		Events:   r.CounterVec("autoscale_events_total", "Scale actions applied to the elastic pool, by direction.", "direction"),
	}
}

// Record mirrors one applied action and the resulting pool size into the
// bundle.
func (m *Metrics) Record(a Action, pool int) {
	if m == nil {
		return
	}
	m.PoolSize.Set(float64(pool))
	if a != Hold {
		m.Events.With(a.String()).Inc()
	}
}
