package sched

import "time"

// Snapshot is a serializable image of a job's durable state: the task set
// and the results collected so far. Slave registrations, speed histories
// and in-flight executions are deliberately *not* captured — after a master
// restart the slaves are gone, so unfinished tasks must re-run anyway.
// Payloads must be gob-registered by the caller when the snapshot crosses a
// process boundary.
type Snapshot struct {
	Tasks    []Task
	Finished []FinishedTask
}

// FinishedTask is one collected result inside a snapshot.
type FinishedTask struct {
	Task    TaskID
	QueryID string
	Slave   SlaveID
	At      time.Duration
	Payload any
}

// Snapshot captures the job's durable state. Tasks currently executing are
// recorded as unfinished (they will re-run after a restore).
func (c *Coordinator) Snapshot() *Snapshot {
	snap := &Snapshot{Tasks: make([]Task, c.pool.Len())}
	for i := 0; i < c.pool.Len(); i++ {
		snap.Tasks[i] = c.pool.Task(TaskID(i))
	}
	for _, r := range c.Results() {
		snap.Finished = append(snap.Finished, FinishedTask{
			Task:    r.Task,
			QueryID: r.QueryID,
			Slave:   r.Slave,
			At:      r.At,
			Payload: r.Payload,
		})
	}
	return snap
}

// Restore builds a coordinator from a snapshot: finished tasks keep their
// results and never re-run; everything else returns to the ready queue.
// The configuration (policy, adjustment, Ω) is supplied fresh — policies
// are stateful per run and are not part of the durable state.
func Restore(snap *Snapshot, cfg Config) *Coordinator {
	c := NewCoordinator(snap.Tasks, cfg)
	for _, f := range snap.Finished {
		c.pool.restoreFinished(f.Task, f.Slave, f.At)
		c.tenantRelease(c.pool.Task(f.Task), true)
		c.results[f.Task] = Result{
			Task:    f.Task,
			QueryID: f.QueryID,
			Slave:   f.Slave,
			At:      f.At,
			Payload: f.Payload,
		}
	}
	c.syncGauges()
	return c
}

// restoreFinished force-marks a ready task as finished during a restore.
func (p *Pool) restoreFinished(id TaskID, s SlaveID, at time.Duration) {
	e := &p.entries[id]
	if e.state != Ready {
		return
	}
	// Remove from the ready FIFO.
	for i, rid := range p.readyFIFO {
		if rid == id {
			p.readyFIFO = append(p.readyFIFO[:i], p.readyFIFO[i+1:]...)
			break
		}
	}
	e.state = Finished
	e.finishedBy = s
	e.finishedAt = at
	p.nReady--
	p.nFinished++
}
