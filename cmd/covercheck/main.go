// Command covercheck enforces a statement-coverage floor on a Go cover
// profile, so `make cover` and CI fail loudly when coverage regresses
// instead of printing a number nobody reads.
//
// Usage:
//
//	go test ./... -coverprofile=cover.out
//	covercheck -profile cover.out -min 60
//
// The total is computed the same way `go tool cover -func` does: covered
// statements over tracked statements, where a block counts as covered
// when any run executed it. Exit status is 1 below the floor, 2 on a
// malformed profile.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	profile := flag.String("profile", "cover.out", "cover profile written by go test -coverprofile")
	min := flag.Float64("min", 0, "minimum total statement coverage, in percent")
	flag.Parse()

	total, covered, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(2)
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "covercheck: profile tracks zero statements")
		os.Exit(2)
	}
	pct := float64(covered) / float64(total) * 100
	fmt.Printf("covercheck: %.1f%% of statements covered (floor %.1f%%)\n", pct, *min)
	if pct < *min {
		fmt.Fprintf(os.Stderr, "covercheck: coverage %.1f%% is below the %.1f%% floor\n", pct, *min)
		os.Exit(1)
	}
}

// parseProfile reads a cover profile: a "mode:" header, then one line per
// block — file:startLine.startCol,endLine.endCol numStmts hitCount.
// Blocks can repeat across runs; a statement is covered when any
// occurrence has a nonzero hit count.
func parseProfile(path string) (total, covered int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()

	type block struct {
		stmts int64
		hit   bool
	}
	blocks := map[string]*block{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "mode:") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return 0, 0, fmt.Errorf("%s:%d: malformed profile line %q", path, line, text)
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("%s:%d: statement count: %v", path, line, err)
		}
		hits, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("%s:%d: hit count: %v", path, line, err)
		}
		b := blocks[fields[0]]
		if b == nil {
			b = &block{stmts: stmts}
			blocks[fields[0]] = b
		}
		if hits > 0 {
			b.hit = true
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	for _, b := range blocks {
		total += b.stmts
		if b.hit {
			covered += b.stmts
		}
	}
	return total, covered, nil
}
