package vtime

import (
	"math/rand"
	"testing"
	"time"
)

// TestRandomScheduleFiresInOrder schedules random events (some nested, some
// canceled) and verifies global time-ordering and exact cancellation.
func TestRandomScheduleFiresInOrder(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New()

		var fired []time.Duration
		expected := 0
		var canceled []*Event

		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(10000)) * time.Millisecond
			depth := rng.Intn(3)
			var mk func(at time.Duration, depth int)
			mk = func(at time.Duration, depth int) {
				expected++
				e := s.Schedule(at, func() {
					fired = append(fired, s.Now())
					if depth > 0 {
						mk(s.Now()+time.Duration(rng.Intn(1000))*time.Millisecond, depth-1)
					}
				})
				if rng.Intn(10) == 0 {
					e.Cancel()
					canceled = append(canceled, e)
					expected--
					if depth > 0 {
						// Nested events never get created.
						expected -= 0
					}
				}
			}
			mk(at, depth)
		}
		if _, err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("seed %d: events fired out of order: %v then %v", seed, fired[i-1], fired[i])
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("seed %d: %d events pending after Run", seed, s.Pending())
		}
	}
}

// TestNestedCountsExact verifies the fired counter matches scheduled minus
// canceled when no nesting hides events.
func TestNestedCountsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	scheduled, canceled := 0, 0
	for i := 0; i < 300; i++ {
		e := s.After(time.Duration(rng.Intn(5000))*time.Millisecond, func() {})
		scheduled++
		if rng.Intn(4) == 0 {
			e.Cancel()
			canceled++
		}
	}
	s.Run(0)
	if got := int(s.Fired()); got != scheduled-canceled {
		t.Fatalf("fired %d, want %d", got, scheduled-canceled)
	}
}

// TestClockNeverRewinds interleaves RunUntil and Step with random
// schedules.
func TestClockNeverRewinds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := New()
	last := time.Duration(0)
	for i := 0; i < 100; i++ {
		s.After(time.Duration(rng.Intn(1000))*time.Millisecond, func() {})
		switch rng.Intn(3) {
		case 0:
			s.Step()
		case 1:
			s.RunUntil(s.Now() + time.Duration(rng.Intn(500))*time.Millisecond)
		case 2:
			// idle
		}
		if s.Now() < last {
			t.Fatalf("clock rewound: %v after %v", s.Now(), last)
		}
		last = s.Now()
	}
}
