package stats

import (
	"math"
	"testing"

	"repro/internal/score"
	"repro/internal/seq"
)

func TestLookupExact(t *testing.T) {
	p, ok := Lookup(score.Scheme{Matrix: score.BLOSUM62, Gap: score.AffineGap(11, 1)})
	if !ok {
		t.Fatal("BLOSUM62 11/1 should be tabulated")
	}
	if p.Lambda != 0.267 || p.K != 0.041 {
		t.Errorf("params = %+v", p)
	}
	// The paper's default scheme must also be tabulated.
	if _, ok := Lookup(score.DefaultProtein()); !ok {
		t.Error("BLOSUM62 10/2 should be tabulated")
	}
}

func TestLookupFallback(t *testing.T) {
	p, ok := Lookup(score.Scheme{Matrix: score.BLOSUM62, Gap: score.AffineGap(99, 9)})
	if ok {
		t.Error("exotic gaps claimed exact")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("fallback params unusable: %v", err)
	}
	// Fallback must be the most conservative (smallest λ) BLOSUM62 entry.
	for e, q := range table {
		if e.matrix == "BLOSUM62" && q.Lambda < p.Lambda {
			t.Errorf("fallback λ=%v not minimal (found %v)", p.Lambda, q.Lambda)
		}
	}
}

func TestLookupUnknownMatrix(t *testing.T) {
	m := score.NewMatchMismatch(seq.DNA, 1, -1)
	if p, ok := Lookup(score.Scheme{Matrix: m, Gap: score.LinearGap(2)}); ok || p.Validate() == nil {
		t.Error("unknown matrix should return no usable params")
	}
	if _, ok := Lookup(score.Scheme{}); ok {
		t.Error("nil matrix accepted")
	}
}

func TestBitScoreMonotone(t *testing.T) {
	p, _ := Lookup(score.DefaultProtein())
	prev := math.Inf(-1)
	for raw := 10; raw <= 500; raw += 10 {
		b := p.BitScore(raw)
		if b <= prev {
			t.Fatalf("bit score not increasing at raw=%d", raw)
		}
		prev = b
	}
}

func TestEValueBehaviour(t *testing.T) {
	p, _ := Lookup(score.DefaultProtein())
	m, n := 300, int64(190_000_000)
	// Higher scores -> lower E.
	if p.EValue(50, m, n) <= p.EValue(300, m, n) {
		t.Error("E-value not decreasing in score")
	}
	// Bigger database -> higher E at fixed score.
	if p.EValue(100, m, n) >= p.EValue(100, m, 10*n) {
		t.Error("E-value not increasing in database size")
	}
	// A strong hit against SwissProt-scale search space is significant.
	if e := p.EValue(300, m, n); e > 1e-6 {
		t.Errorf("E(300) = %g, want tiny", e)
	}
	// A weak score is not.
	if e := p.EValue(30, m, n); e < 1 {
		t.Errorf("E(30) = %g, want >= 1", e)
	}
	if !math.IsInf(p.EValue(100, 0, n), 1) {
		t.Error("degenerate m should give +Inf")
	}
}

func TestRawForEValueInverts(t *testing.T) {
	p, _ := Lookup(score.DefaultProtein())
	m, n := 250, int64(12_000_000)
	for _, e := range []float64{10, 0.01, 1e-10} {
		raw := p.RawForEValue(e, m, n)
		if got := p.EValue(raw, m, n); got > e {
			t.Errorf("E(RawForEValue(%g)) = %g, want <= %g", e, got, e)
		}
		if raw > 1 {
			if got := p.EValue(raw-1, m, n); got <= e {
				t.Errorf("RawForEValue(%g) = %d not minimal", e, raw)
			}
		}
	}
	if p.RawForEValue(0, m, n) != math.MaxInt32 {
		t.Error("zero E should demand an unreachable score")
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{Lambda: 0.2, K: 0.05}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Params{}).Validate(); err == nil {
		t.Error("zero params accepted")
	}
}
