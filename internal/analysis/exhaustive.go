package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveAnalyzer checks that every switch over one of the module's
// own enum types either covers all declared constants of that type or
// carries a default case. An enum is a named type declared in this module
// whose underlying type is an integer or string and which has at least
// two package-level constants of exactly that type — sched.State,
// wire.MsgKind, seq.Kind, sched.SlaveKind, sched.TaskKind,
// wire.FaultAction and metrics.Kind all qualify. Adding a constant to such a type then breaks
// the build of `make lint` at every switch that silently ignores it,
// instead of misbehaving at run time.
//
// Switches with any non-constant case expression are skipped: the
// analyzer cannot reason about them, and guessing would produce noise.
var ExhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over module enum types must cover every constant or have a default case",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) {
	pass.Pkg.WalkStack(func(n ast.Node, _ []ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[sw.Tag]
		if !ok {
			return true
		}
		named, members := enumMembers(tv.Type, pass.Pkg.ModulePath)
		if named == nil || len(members) < 2 {
			return true
		}

		covered := map[string]bool{} // constant.Value.ExactString() -> seen
		for _, stmt := range sw.Body.List {
			clause := stmt.(*ast.CaseClause)
			if clause.List == nil {
				return true // default case: always exhaustive
			}
			for _, e := range clause.List {
				etv := pass.Pkg.Info.Types[e]
				if etv.Value == nil {
					return true // non-constant case: cannot reason
				}
				covered[etv.Value.ExactString()] = true
			}
		}

		var missing []string
		for _, m := range members {
			if !covered[m.val] {
				missing = append(missing, m.name)
			}
		}
		if len(missing) > 0 {
			pass.Reportf(sw.Pos(), "switch over %s misses %s and has no default case",
				types.TypeString(named, types.RelativeTo(pass.Pkg.Types)), strings.Join(missing, ", "))
		}
		return true
	})
}

// enumMember is one declared constant of an enum type; aliases with the
// same value collapse to one member (the first name in source order).
type enumMember struct {
	name string
	val  string
	obj  types.Object
}

// enumMembers reports the named type behind t if it is a module-declared
// enum, along with its declared constants.
func enumMembers(t types.Type, modulePath string) (types.Type, []enumMember) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !inModule(obj.Pkg().Path(), modulePath) {
		return nil, nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return nil, nil
	}

	scope := obj.Pkg().Scope()
	byVal := map[string]enumMember{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v := c.Val().ExactString()
		if prev, dup := byVal[v]; !dup || c.Pos() < prev.obj.Pos() {
			byVal[v] = enumMember{name: name, val: v, obj: c}
		}
	}
	members := make([]enumMember, 0, len(byVal))
	for _, m := range byVal {
		members = append(members, m)
	}
	// Declaration order keeps diagnostics stable and readable.
	sort.Slice(members, func(i, j int) bool {
		return members[i].obj.Pos() < members[j].obj.Pos()
	})
	return named, members
}

// inModule reports whether pkgPath belongs to the module.
func inModule(pkgPath, modulePath string) bool {
	return pkgPath == modulePath || strings.HasPrefix(pkgPath, modulePath+"/")
}
