package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/wire"
)

// Generate derives a randomized chaos scenario from a seed: a small hybrid
// cluster (one slave always healthy and fault-free, so the job can always
// finish) with seeded crashes, hangs, slow-downs, link faults and master
// restarts. The scenario — and therefore the whole run — is a pure
// function of the seed, which is all a failure report needs to replay.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Name:        fmt.Sprintf("gen-%d", seed),
		Seed:        seed,
		Policy:      [...]string{"SS", "PSS"}[rng.Intn(2)],
		Adjust:      rng.Intn(2) == 0,
		Lease:       2*time.Second + time.Duration(rng.Intn(3000))*time.Millisecond,
		NotifyEvery: 250 * time.Millisecond,
		PollEvery:   500 * time.Millisecond,
		Latency:     time.Duration(1+rng.Intn(15)) * time.Millisecond,
		CallTimeout: time.Second,
		TearWAL:     rng.Intn(2) == 0,
	}
	nTasks := 3 + rng.Intn(8)
	for i := 0; i < nTasks; i++ {
		sc.TaskResidues = append(sc.TaskResidues, 200+rng.Intn(1800))
	}

	nSlaves := 2 + rng.Intn(4)
	for i := 0; i < nSlaves; i++ {
		kind := sched.KindCPU
		speed := 2e8 + rng.Float64()*8e8
		if rng.Intn(2) == 0 {
			kind = sched.KindGPU
			speed = 1e9 + rng.Float64()*4e9
		}
		s := SlaveSpec{
			Name:     fmt.Sprintf("s%d", i),
			Kind:     kind,
			Speed:    speed,
			Jitter:   rng.Float64() * 0.1,
			Overhead: time.Duration(rng.Intn(20)) * time.Millisecond,
		}
		if i > 0 {
			s = addFaults(rng, s)
		}
		sc.Slaves = append(sc.Slaves, s)
	}

	for n := rng.Intn(3); n > 0; n-- {
		at := time.Duration(1+rng.Intn(6000)) * time.Millisecond
		if len(sc.Restarts) > 0 {
			prev := sc.Restarts[len(sc.Restarts)-1]
			at += prev.At + prev.DownFor
		}
		sc.Restarts = append(sc.Restarts, MasterRestart{
			At:      at,
			DownFor: time.Duration(200+rng.Intn(800)) * time.Millisecond,
		})
	}

	// Multi-tenant chaos: about a third of the seeds add tenant arrival
	// streams, so the structural invariants (exactly-once over the grown
	// job, quota accounting, preempt safety, restart resubmission) soak
	// against every fault family above. SLO and envy checks stay off —
	// those require calibrated scenarios (see TenantStarvation); the
	// always-on invariants are the point here.
	if rng.Intn(3) == 0 {
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			t := TenantSpec{
				Name:     fmt.Sprintf("t%d", i),
				Weight:   float64(1 + rng.Intn(2)),
				Jobs:     1 + rng.Intn(3),
				Residues: 200 + rng.Intn(800),
				StartAt:  time.Duration(rng.Intn(2000)) * time.Millisecond,
				Every:    time.Duration(200+rng.Intn(800)) * time.Millisecond,
				Priority: rng.Intn(3),
			}
			if rng.Intn(3) == 0 {
				t.MaxOutstanding = 1 + rng.Intn(2)
			}
			sc.Tenants = append(sc.Tenants, t)
		}
	}
	sc.Preempt = rng.Intn(2) == 0
	if rng.Intn(3) == 0 {
		sc.Autoscale = &AutoscaleSpec{
			Slave: SlaveSpec{
				Name:  "auto",
				Kind:  sched.KindCPU,
				Speed: 2e8 + rng.Float64()*8e8,
			},
			Max: len(sc.Slaves) + 1 + rng.Intn(2),
		}
	}
	return sc
}

// addFaults rolls one fault family for a non-essential slave: a crash, a
// hang (with optional recovery), a slow-down window, or a set of bounded
// link-fault rules. Bounded means the faults cannot starve the job
// forever: probabilistic rules stay below certainty and counted rules run
// out, so the always-healthy slave eventually drains the pool.
func addFaults(rng *rand.Rand, s SlaveSpec) SlaveSpec {
	switch rng.Intn(5) {
	case 0:
		s.CrashAt = time.Duration(500+rng.Intn(5000)) * time.Millisecond
		if rng.Intn(2) == 0 {
			s.RecoverAt = s.CrashAt + time.Duration(500+rng.Intn(4000))*time.Millisecond
		}
	case 1:
		s.HangAt = time.Duration(500+rng.Intn(5000)) * time.Millisecond
		if rng.Intn(2) == 0 {
			s.RecoverAt = s.HangAt + time.Duration(500+rng.Intn(4000))*time.Millisecond
		}
	case 2:
		from := time.Duration(rng.Intn(3000)) * time.Millisecond
		s.Slow = append(s.Slow, platform.LoadPhase{
			From:     from,
			To:       from + time.Duration(1+rng.Intn(5))*time.Second,
			Capacity: 0.05 + rng.Float64()*0.5,
		})
	case 3:
		kinds := []wire.MsgKind{wire.AnyMsg, wire.ProgressKind, wire.CompleteKind, wire.RequestKind}
		actions := []wire.FaultAction{wire.FaultError, wire.FaultDrop, wire.FaultDelay, wire.FaultDup, wire.FaultHang}
		for n := 1 + rng.Intn(3); n > 0; n-- {
			r := wire.Rule{
				Kind:   kinds[rng.Intn(len(kinds))],
				Action: actions[rng.Intn(len(actions))],
				After:  rng.Intn(10),
				Prob:   0.1 + rng.Float64()*0.4,
			}
			if r.Action == wire.FaultDelay {
				r.Delay = time.Duration(10+rng.Intn(400)) * time.Millisecond
			}
			// Unbounded high-probability faults could keep a slave's link
			// dark forever; cap how often each rule may fire.
			r.Count = 1 + rng.Intn(20)
			s.Rules = append(s.Rules, r)
		}
	case 4:
		// Healthy extra slave: chaos also needs witnesses.
	}
	return s
}
