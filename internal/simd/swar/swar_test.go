package swar

import (
	"math/rand"
	"testing"

	"repro/internal/simd"
)

// unpack8 extracts byte lane l.
func unpack8(w uint64, l int) uint8 { return uint8(w >> (8 * l)) }

// pack8 builds a word from 8 byte lanes.
func pack8(lanes [Lanes8]uint8) uint64 {
	var w uint64
	for l, v := range lanes {
		w |= uint64(v) << (8 * l)
	}
	return w
}

// unpack16 extracts 16-bit lane l.
func unpack16(w uint64, l int) uint16 { return uint16(w >> (16 * l)) }

func pack16(lanes [Lanes16]uint16) uint64 {
	var w uint64
	for l, v := range lanes {
		w |= uint64(v) << (16 * l)
	}
	return w
}

// wordPair8 spreads the lane pair (a, b) across all 8 lanes with
// different per-lane offsets, so a cross-lane carry or borrow leak in any
// direction corrupts at least one checked lane.
func wordPair8(a, b uint8) (uint64, uint64, [Lanes8]uint8, [Lanes8]uint8) {
	var la, lb [Lanes8]uint8
	for l := 0; l < Lanes8; l++ {
		la[l] = a + uint8(l*37)
		lb[l] = b + uint8(l*91)
	}
	return pack8(la), pack8(lb), la, lb
}

// TestExhaustive8BitLanePairs drives every (a, b) byte pair through every
// 8-bit op and checks each lane against the scalar truth — the exhaustive
// truth table of the saturating arithmetic the kernels rely on.
func TestExhaustive8BitLanePairs(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			wa, wb, la, lb := wordPair8(uint8(a), uint8(b))
			add, sub, mx, gt := AddSat8(wa, wb), SubSat8(wa, wb), Max8(wa, wb), Gt8(wa, wb)
			anyGt := false
			for l := 0; l < Lanes8; l++ {
				x, y := la[l], lb[l]
				wantAdd := uint8(255)
				if s := int(x) + int(y); s <= 255 {
					wantAdd = uint8(s)
				}
				wantSub := uint8(0)
				if x > y {
					wantSub = x - y
				}
				wantMax := max(x, y)
				wantGt := uint8(0)
				if x > y {
					wantGt = 0xFF
					anyGt = true
				}
				if got := unpack8(add, l); got != wantAdd {
					t.Fatalf("AddSat8(%d,%d) lane %d = %d, want %d", x, y, l, got, wantAdd)
				}
				if got := unpack8(sub, l); got != wantSub {
					t.Fatalf("SubSat8(%d,%d) lane %d = %d, want %d", x, y, l, got, wantSub)
				}
				if got := unpack8(mx, l); got != wantMax {
					t.Fatalf("Max8(%d,%d) lane %d = %d, want %d", x, y, l, got, wantMax)
				}
				if got := unpack8(gt, l); got != wantGt {
					t.Fatalf("Gt8(%d,%d) lane %d = %#x, want %#x", x, y, l, got, wantGt)
				}
			}
			if got := AnyGt8(wa, wb); got != anyGt {
				t.Fatalf("AnyGt8(a=%d,b=%d) = %v, want %v", a, b, got, anyGt)
			}
		}
	}
}

// TestAgainstEmulatedISA8 cross-checks the SWAR ops against the emulated
// SSE2 ISA lane by lane on random words: the two implementations must
// agree everywhere, since internal/simd is the kernels' bit-exact oracle.
func TestAgainstEmulatedISA8(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20000; iter++ {
		var la, lb [Lanes8]uint8
		var va, vb simd.U8x16
		for l := 0; l < Lanes8; l++ {
			la[l] = uint8(rng.Intn(256))
			lb[l] = uint8(rng.Intn(256))
			va[l], vb[l] = la[l], lb[l]
		}
		wa, wb := pack8(la), pack8(lb)
		eAdd, eSub, eMax := simd.AddSatU8(va, vb), simd.SubSatU8(va, vb), simd.MaxU8(va, vb)
		sAdd, sSub, sMax := AddSat8(wa, wb), SubSat8(wa, wb), Max8(wa, wb)
		for l := 0; l < Lanes8; l++ {
			if unpack8(sAdd, l) != eAdd[l] || unpack8(sSub, l) != eSub[l] || unpack8(sMax, l) != eMax[l] {
				t.Fatalf("lane %d: swar (%d,%d,%d) != emulated (%d,%d,%d) for a=%d b=%d",
					l, unpack8(sAdd, l), unpack8(sSub, l), unpack8(sMax, l), eAdd[l], eSub[l], eMax[l], la[l], lb[l])
			}
		}
		// AnyGt must agree with the emulated movemask idiom on the lanes
		// both hold (the emulated register's upper 8 lanes stay zero).
		if got, want := AnyGt8(wa, wb), simd.AnyGtU8(va, vb); got != want {
			t.Fatalf("AnyGt8 = %v, emulated = %v", got, want)
		}
		// Shifting lanes left must match the emulated byte shift.
		eSh := simd.ShiftLanesLeftU8(va, 1)
		sSh := ShiftLane8(wa)
		for l := 0; l < Lanes8; l++ {
			if unpack8(sSh, l) != eSh[l] {
				t.Fatalf("ShiftLane8 lane %d = %d, emulated %d", l, unpack8(sSh, l), eSh[l])
			}
		}
	}
}

// TestHMax8 checks the horizontal fold on crafted and random words.
func TestHMax8(t *testing.T) {
	cases := [][Lanes8]uint8{
		{}, {255}, {0, 0, 0, 0, 0, 0, 0, 255}, {1, 2, 3, 4, 5, 6, 7, 8},
		{8, 7, 6, 5, 4, 3, 2, 1}, {0x80, 0x7F, 0xFF, 1, 0, 0xFE, 3, 9},
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		var c [Lanes8]uint8
		for l := range c {
			c[l] = uint8(rng.Intn(256))
		}
		cases = append(cases, c)
	}
	for _, c := range cases {
		want := uint8(0)
		for _, v := range c {
			want = max(want, v)
		}
		if got := HMax8(pack8(c)); got != want {
			t.Fatalf("HMax8(%v) = %d, want %d", c, got, want)
		}
	}
}

// TestProperty16BitLanes drives the 16-bit ops through boundary values
// and random pairs per lane (the full 2^32 cross product is out of
// budget; boundaries plus dense sampling covers the carry structure).
func TestProperty16BitLanes(t *testing.T) {
	boundary := []uint16{0, 1, 2, 0x7FFE, 0x7FFF, 0x8000, 0x8001, 0xFFFE, 0xFFFF}
	rng := rand.New(rand.NewSource(9))
	check := func(la, lb [Lanes16]uint16) {
		t.Helper()
		wa, wb := pack16(la), pack16(lb)
		add, sub, mx, gt := AddSat16(wa, wb), SubSat16(wa, wb), Max16(wa, wb), Gt16(wa, wb)
		anyGt := false
		for l := 0; l < Lanes16; l++ {
			x, y := la[l], lb[l]
			wantAdd := uint16(0xFFFF)
			if s := int(x) + int(y); s <= 0xFFFF {
				wantAdd = uint16(s)
			}
			wantSub := uint16(0)
			if x > y {
				wantSub = x - y
			}
			wantGt := uint16(0)
			if x > y {
				wantGt = 0xFFFF
				anyGt = true
			}
			if got := unpack16(add, l); got != wantAdd {
				t.Fatalf("AddSat16(%d,%d) lane %d = %d, want %d", x, y, l, got, wantAdd)
			}
			if got := unpack16(sub, l); got != wantSub {
				t.Fatalf("SubSat16(%d,%d) lane %d = %d, want %d", x, y, l, got, wantSub)
			}
			if got := unpack16(mx, l); got != max(x, y) {
				t.Fatalf("Max16(%d,%d) lane %d = %d, want %d", x, y, l, got, max(x, y))
			}
			if got := unpack16(gt, l); got != wantGt {
				t.Fatalf("Gt16(%d,%d) lane %d = %#x, want %#x", x, y, l, got, wantGt)
			}
		}
		if got := AnyGt16(wa, wb); got != anyGt {
			t.Fatalf("AnyGt16(%v,%v) = %v, want %v", la, lb, got, anyGt)
		}
	}
	// Every boundary pair in every lane position, same pair in all lanes.
	for _, x := range boundary {
		for _, y := range boundary {
			check([Lanes16]uint16{x, y, x, y}, [Lanes16]uint16{y, x, y, x})
			check([Lanes16]uint16{x, x, x, x}, [Lanes16]uint16{y, y, y, y})
		}
	}
	for iter := 0; iter < 100000; iter++ {
		var la, lb [Lanes16]uint16
		for l := 0; l < Lanes16; l++ {
			la[l] = uint16(rng.Intn(1 << 16))
			lb[l] = uint16(rng.Intn(1 << 16))
		}
		check(la, lb)
	}
}

// TestHMaxAndShift16 checks the 16-bit fold and lane shift.
func TestHMaxAndShift16(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 5000; iter++ {
		var c [Lanes16]uint16
		for l := range c {
			c[l] = uint16(rng.Intn(1 << 16))
		}
		w := pack16(c)
		want := uint16(0)
		for _, v := range c {
			want = max(want, v)
		}
		if got := HMax16(w); got != want {
			t.Fatalf("HMax16(%v) = %d, want %d", c, got, want)
		}
		sh := ShiftLane16(w)
		if unpack16(sh, 0) != 0 {
			t.Fatalf("ShiftLane16 lane 0 = %d, want 0", unpack16(sh, 0))
		}
		for l := 1; l < Lanes16; l++ {
			if unpack16(sh, l) != c[l-1] {
				t.Fatalf("ShiftLane16 lane %d = %d, want %d", l, unpack16(sh, l), c[l-1])
			}
		}
	}
}

// TestSplat fills every lane.
func TestSplat(t *testing.T) {
	for _, v := range []uint8{0, 1, 0x7F, 0x80, 0xFF} {
		w := Splat8(v)
		for l := 0; l < Lanes8; l++ {
			if unpack8(w, l) != v {
				t.Fatalf("Splat8(%d) lane %d = %d", v, l, unpack8(w, l))
			}
		}
	}
	for _, v := range []uint16{0, 1, 0x7FFF, 0x8000, 0xFFFF} {
		w := Splat16(v)
		for l := 0; l < Lanes16; l++ {
			if unpack16(w, l) != v {
				t.Fatalf("Splat16(%d) lane %d = %d", v, l, unpack16(w, l))
			}
		}
	}
}
