package wire

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/sched"
)

// passHandler acks everything, counting what reached it.
type passHandler struct{ registers, requests, progresses, completes int }

func (h *passHandler) Dispatch(req Envelope) Envelope {
	switch {
	case req.Register != nil:
		h.registers++
		return Envelope{RegisterAck: &RegisterAckMsg{Slave: 1}}
	case req.Request != nil:
		h.requests++
		return Envelope{Assign: &AssignMsg{Done: true}}
	case req.Progress != nil:
		h.progresses++
		return Envelope{ProgressAck: &ProgressAckMsg{}}
	case req.Complete != nil:
		h.completes++
		return Envelope{CompleteAck: &CompleteAckMsg{Accepted: true}}
	}
	return Envelope{Error: "bad"}
}

func (h *passHandler) SlaveGone(sched.SlaveID) {}

func TestFaultCallerErrorAndCounting(t *testing.T) {
	h := &passHandler{}
	fc := NewFaultCaller(Local{H: h}, 1,
		Rule{Kind: ProgressKind, Action: FaultError, After: 1, Count: 2},
	)
	defer fc.Close()
	// Register passes through untouched.
	if _, err := fc.Call(Envelope{Register: &RegisterMsg{Name: "x"}}); err != nil {
		t.Fatal(err)
	}
	// First progress is skipped by After, next two fail, then pass again.
	wantErr := []bool{false, true, true, false}
	for i, want := range wantErr {
		_, err := fc.Call(Envelope{Progress: &ProgressMsg{Slave: 1}})
		if got := err != nil; got != want {
			t.Fatalf("progress %d: err=%v, want failure=%v", i, err, want)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("progress %d: error %v is not ErrInjected", i, err)
		}
	}
	if fc.Fired(0) != 2 {
		t.Fatalf("Fired = %d, want 2", fc.Fired(0))
	}
	// Faulted calls never reached the handler.
	if h.progresses != 2 {
		t.Fatalf("handler saw %d progresses, want 2", h.progresses)
	}
}

func TestFaultCallerDropDeliversButLosesResponse(t *testing.T) {
	h := &passHandler{}
	fc := NewFaultCaller(Local{H: h}, 1,
		Rule{Kind: CompleteKind, Action: FaultDrop, Count: 1},
	)
	defer fc.Close()
	_, err := fc.Call(Envelope{Complete: &CompleteMsg{Slave: 1, Task: 0}})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped response error = %v", err)
	}
	if h.completes != 1 {
		t.Fatalf("handler saw %d completes, want 1 (request delivered, response lost)", h.completes)
	}
}

func TestFaultCallerHangReleasedByClose(t *testing.T) {
	fc := NewFaultCaller(Local{H: &passHandler{}}, 1,
		Rule{Kind: RequestKind, Action: FaultHang},
	)
	errc := make(chan error, 1)
	go func() {
		_, err := fc.Call(Envelope{Request: &RequestMsg{Slave: 1}})
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("hung call returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	fc.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("released hang error = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the hung call")
	}
}

func TestFaultCallerDeterministicProb(t *testing.T) {
	run := func() int {
		fc := NewFaultCaller(Local{H: &passHandler{}}, 42,
			Rule{Kind: AnyMsg, Action: FaultError, Prob: 0.5},
		)
		defer fc.Close()
		fails := 0
		for i := 0; i < 100; i++ {
			if _, err := fc.Call(Envelope{Request: &RequestMsg{Slave: 1}}); err != nil {
				fails++
			}
		}
		return fails
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault counts: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("Prob 0.5 fired %d/100 times", a)
	}
}

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond, Jitter: 0.5}
	// nil rng: deterministic, no jitter.
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// Zero value falls back to the defaults.
	var zero Backoff
	if got := zero.Delay(0, nil); got != DefaultBackoff.Base {
		t.Fatalf("zero Backoff Delay(0) = %v, want %v", got, DefaultBackoff.Base)
	}
}

// TestClientCallTimeout proves the per-call I/O deadline trips on a hung
// master: the server accepts the connection and then never answers.
func TestClientCallTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(5 * time.Second) // never respond
	}()

	c, err := DialTimeout(l.Addr().String(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call(Envelope{Register: &RegisterMsg{Name: "x"}})
	if err == nil {
		t.Fatal("call to a mute master succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to trip", elapsed)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("error %v is not a timeout", err)
	}
}
