package farrar

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
)

func protScheme() score.Scheme { return score.DefaultProtein() }

func randProtein(rng *rand.Rand, n int) []byte {
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	out := make([]byte, n)
	for i := range out {
		out[i] = canon[rng.Intn(len(canon))]
	}
	return out
}

func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	var out []byte
	for _, c := range s {
		r := rng.Float64()
		switch {
		case r < rate/3:
		case r < 2*rate/3:
			out = append(out, c, canon[rng.Intn(len(canon))])
		case r < rate:
			out = append(out, canon[rng.Intn(len(canon))])
		default:
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []byte("A")
	}
	return out
}

func TestNewKernelValidation(t *testing.T) {
	if _, err := NewKernel(nil, protScheme()); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := NewKernel([]byte("ACDE1"), protScheme()); err == nil {
		t.Error("invalid residue accepted")
	}
	if _, err := NewKernel([]byte("ACDE"), score.Scheme{}); err == nil {
		t.Error("invalid scheme accepted")
	}
	if _, err := NewKernel([]byte("ACDE"), protScheme()); err != nil {
		t.Errorf("valid kernel rejected: %v", err)
	}
}

func TestScoreMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 150; iter++ {
		q := randProtein(rng, 1+rng.Intn(120))
		d := mutate(rng, q, 0.4)
		k, err := NewKernel(q, protScheme())
		if err != nil {
			t.Fatal(err)
		}
		want := sw.Score(q, d, protScheme())
		if got := k.Score(d); got != want {
			t.Fatalf("iter %d (m=%d n=%d): farrar=%d reference=%d\nq=%s\nd=%s",
				iter, len(q), len(d), got, want, q, d)
		}
	}
}

func TestScoreMatchesReferenceUnrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 80; iter++ {
		q := randProtein(rng, 1+rng.Intn(200))
		d := randProtein(rng, 1+rng.Intn(400))
		k, _ := NewKernel(q, protScheme())
		if got, want := k.Score(d), sw.Score(q, d, protScheme()); got != want {
			t.Fatalf("iter %d: farrar=%d reference=%d", iter, got, want)
		}
	}
}

func TestScoreGapHeavySchemes(t *testing.T) {
	// Cheap gaps and harsh mismatches force the lazy-F correction loop to
	// run; this is where striped implementations usually break.
	schemes := []score.Scheme{
		{Matrix: score.NewMatchMismatch(seq.Protein, 4, -10), Gap: score.AffineGap(1, 1)},
		{Matrix: score.NewMatchMismatch(seq.Protein, 2, -1), Gap: score.AffineGap(0+1, 1)},
		{Matrix: score.BLOSUM62, Gap: score.AffineGap(1, 1)},
		{Matrix: score.BLOSUM62, Gap: score.LinearGap(1)},
		{Matrix: score.BLOSUM50, Gap: score.AffineGap(12, 2)},
	}
	rng := rand.New(rand.NewSource(44))
	for si, s := range schemes {
		for iter := 0; iter < 40; iter++ {
			q := randProtein(rng, 1+rng.Intn(90))
			d := mutate(rng, q, 0.5)
			k, err := NewKernel(q, s)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := k.Score(d), sw.Score(q, d, s); got != want {
				t.Fatalf("scheme %d iter %d: farrar=%d reference=%d\nq=%s\nd=%s", si, iter, got, want, q, d)
			}
		}
	}
}

func TestScoreSingleLaneAndBoundarySizes(t *testing.T) {
	// Query lengths around multiples of the lane counts hit striping edge
	// cases (partial final lanes).
	rng := rand.New(rand.NewSource(45))
	for _, m := range []int{1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 127, 128, 129} {
		q := randProtein(rng, m)
		d := mutate(rng, q, 0.3)
		k, _ := NewKernel(q, protScheme())
		if got, want := k.Score(d), sw.Score(q, d, protScheme()); got != want {
			t.Fatalf("m=%d: farrar=%d reference=%d", m, got, want)
		}
	}
}

func TestScoreEmptyTarget(t *testing.T) {
	k, _ := NewKernel([]byte("ACDEFG"), protScheme())
	if got := k.Score(nil); got != 0 {
		t.Errorf("empty target score = %d", got)
	}
}

func TestScoreInvalidTargetResidues(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	q := randProtein(rng, 40)
	d := append(randProtein(rng, 30), '1', '?', 'J')
	rng.Shuffle(len(d), func(i, j int) { d[i], d[j] = d[j], d[i] })
	k, _ := NewKernel(q, protScheme())
	if got, want := k.Score(d), sw.Score(q, d, protScheme()); got != want {
		t.Errorf("invalid-residue target: farrar=%d reference=%d", got, want)
	}
}

func TestFallbackTo16Bit(t *testing.T) {
	// A self-comparison of a 60-residue query scores far above the ~250
	// 8-bit ceiling minus bias, forcing the 16-bit kernel.
	rng := rand.New(rand.NewSource(47))
	q := randProtein(rng, 600)
	k, _ := NewKernel(q, protScheme())
	want := sw.Score(q, q, protScheme())
	if want < 255 {
		t.Fatalf("test setup: self score %d too small", want)
	}
	if got := k.Score(q); got != want {
		t.Fatalf("16-bit fallback score = %d, want %d", got, want)
	}
	st := k.Stats()
	if st.Fallback16 != 1 || st.Scored8 != 0 {
		t.Errorf("stats = %+v, want exactly one 16-bit fallback", st)
	}
	if _, ok := k.ScoreU8(q); ok {
		t.Error("ScoreU8 claimed ok on an overflowing comparison")
	}
}

func TestFallbackToScalar(t *testing.T) {
	// Self-comparison of 3000 tryptophans: score 3000*11 (W:W=11)
	// exceeds 32767, forcing the scalar fallback.
	q := bytes.Repeat([]byte("W"), 3000)
	k, _ := NewKernel(q, protScheme())
	want := 3000 * 11
	if got := k.Score(q); got != want {
		t.Fatalf("scalar fallback score = %d, want %d", got, want)
	}
	if st := k.Stats(); st.FallbackSW != 1 {
		t.Errorf("stats = %+v, want one scalar fallback", st)
	}
	if _, ok := k.ScoreI16(q); ok {
		t.Error("ScoreI16 claimed ok on an overflowing comparison")
	}
}

func TestKernelReuseAcrossTargets(t *testing.T) {
	// One profile, many targets: the database-search usage pattern.
	rng := rand.New(rand.NewSource(48))
	q := randProtein(rng, 80)
	k, _ := NewKernel(q, protScheme())
	for i := 0; i < 30; i++ {
		d := mutate(rng, q, 0.6)
		if got, want := k.Score(d), sw.Score(q, d, protScheme()); got != want {
			t.Fatalf("target %d: farrar=%d reference=%d", i, got, want)
		}
	}
	if got := k.Stats().Scored8; got != 30 {
		t.Errorf("Scored8 = %d, want 30", got)
	}
}

func TestCellsAndQuery(t *testing.T) {
	q := []byte("ACDEF")
	k, _ := NewKernel(q, protScheme())
	if !bytes.Equal(k.Query(), q) {
		t.Error("Query() mismatch")
	}
	if k.Cells([]byte("ACD")) != 15 {
		t.Errorf("Cells = %d, want 15", k.Cells([]byte("ACD")))
	}
}

func TestScoreI16DirectMatchesReference(t *testing.T) {
	// Exercise the 16-bit kernel directly (not only via fallback).
	rng := rand.New(rand.NewSource(49))
	for iter := 0; iter < 60; iter++ {
		q := randProtein(rng, 1+rng.Intn(100))
		d := mutate(rng, q, 0.4)
		k, _ := NewKernel(q, protScheme())
		got, ok := k.ScoreI16(d)
		if !ok {
			t.Fatalf("iter %d: unexpected i16 overflow", iter)
		}
		if want := sw.Score(q, d, protScheme()); got != want {
			t.Fatalf("iter %d: i16=%d reference=%d", iter, got, want)
		}
	}
}

func TestFarrarOnDNAScheme(t *testing.T) {
	// The kernels are alphabet-agnostic: the paper's Fig. 1 DNA scoring
	// (match +1, mismatch -1) must agree with the reference as well.
	s := score.Scheme{Matrix: score.NewMatchMismatch(seq.DNA, 1, -1), Gap: score.AffineGap(1, 1)}
	rng := rand.New(rand.NewSource(60))
	letters := []byte("ATGC")
	for iter := 0; iter < 40; iter++ {
		q := make([]byte, 1+rng.Intn(80))
		d := make([]byte, 1+rng.Intn(120))
		for i := range q {
			q[i] = letters[rng.Intn(4)]
		}
		for i := range d {
			d[i] = letters[rng.Intn(4)]
		}
		k, err := NewKernel(q, s)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := k.Score(d), sw.Score(q, d, s); got != want {
			t.Fatalf("iter %d: %d != %d", iter, got, want)
		}
	}
}
