package sw

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSemiGlobalQueryInsideTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	s := protScheme()
	q := randProtein(rng, 25)
	target := append(append(randProtein(rng, 40), q...), randProtein(rng, 40)...)
	// The query matches perfectly inside the target: score = self score,
	// with the flanks free.
	want := 0
	for _, c := range q {
		want += s.Matrix.Score(c, c)
	}
	a := AlignSemiGlobal(q, target, s)
	if a.Score != want {
		t.Fatalf("score = %d, want %d", a.Score, want)
	}
	if a.TargetStart != 40 || a.TargetEnd != 65 {
		t.Errorf("target window = [%d,%d), want [40,65)", a.TargetStart, a.TargetEnd)
	}
	if a.QueryStart != 0 || a.QueryEnd != len(q) {
		t.Errorf("query window = [%d,%d)", a.QueryStart, a.QueryEnd)
	}
	if got := ScoreSemiGlobal(q, target, s); got != want {
		t.Errorf("ScoreSemiGlobal = %d, want %d", got, want)
	}
}

func TestSemiGlobalAlignAgreesWithScore(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := protScheme()
	for iter := 0; iter < 80; iter++ {
		q := randProtein(rng, 1+rng.Intn(40))
		d := randProtein(rng, 1+rng.Intn(120))
		a := AlignSemiGlobal(q, d, s)
		if got := ScoreSemiGlobal(q, d, s); got != a.Score {
			t.Fatalf("iter %d: traceback %d != score-only %d", iter, a.Score, got)
		}
		// The rows must spell the full query and the claimed target window.
		if strings.ReplaceAll(string(a.QueryRow), "-", "") != string(q) {
			t.Fatalf("iter %d: query row does not spell the query", iter)
		}
		if strings.ReplaceAll(string(a.TargetRow), "-", "") != string(d[a.TargetStart:a.TargetEnd]) {
			t.Fatalf("iter %d: target rows/coords inconsistent", iter)
		}
		re, err := a.Rescore(s)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if re != a.Score {
			t.Fatalf("iter %d: rescore %d != %d", iter, re, a.Score)
		}
	}
}

func TestSemiGlobalOrderings(t *testing.T) {
	// local >= semiglobal (free everything beats forced query), and
	// semiglobal >= global (free target ends beat forced ends).
	rng := rand.New(rand.NewSource(22))
	s := protScheme()
	for iter := 0; iter < 60; iter++ {
		q := randProtein(rng, 1+rng.Intn(40))
		d := randProtein(rng, 1+rng.Intn(80))
		local := Score(q, d, s)
		semi := ScoreSemiGlobal(q, d, s)
		global := AlignGlobal(q, d, s).Score
		if semi > local {
			t.Fatalf("iter %d: semiglobal %d > local %d", iter, semi, local)
		}
		if global > semi {
			t.Fatalf("iter %d: global %d > semiglobal %d", iter, global, semi)
		}
	}
}

func TestSemiGlobalEmptyInputs(t *testing.T) {
	s := protScheme()
	a := AlignSemiGlobal(nil, []byte("ACD"), s)
	if a.Score != 0 || len(a.QueryRow) != 0 {
		t.Errorf("empty query: %+v", a)
	}
	// Empty target: the whole query becomes one costly gap.
	a = AlignSemiGlobal([]byte("ACD"), nil, s)
	want := -(s.Gap.Open + 3*s.Gap.Extend)
	if a.Score != want {
		t.Errorf("empty target score = %d, want %d", a.Score, want)
	}
	if got := ScoreSemiGlobal([]byte("ACD"), nil, s); got != want {
		t.Errorf("ScoreSemiGlobal empty target = %d, want %d", got, want)
	}
}

func TestAlignBandedCoveringBandEqualsAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	s := protScheme()
	for iter := 0; iter < 60; iter++ {
		q := randProtein(rng, 1+rng.Intn(50))
		d := mutate(rng, q, 0.35)
		full := Align(q, d, s)
		band := max(len(q), len(d))
		got := AlignBanded(q, d, s, band)
		if got.Score != full.Score {
			t.Fatalf("iter %d: banded %d != full %d", iter, got.Score, full.Score)
		}
		if got.Score == 0 {
			continue
		}
		re, err := got.Rescore(s)
		if err != nil || re != got.Score {
			t.Fatalf("iter %d: rescore %d (%v) != %d", iter, re, err, got.Score)
		}
		if strings.ReplaceAll(string(got.QueryRow), "-", "") != string(q[got.QueryStart:got.QueryEnd]) {
			t.Fatalf("iter %d: rows/coords inconsistent", iter)
		}
	}
}

func TestAlignBandedNarrowBandConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := protScheme()
	for iter := 0; iter < 40; iter++ {
		q := randProtein(rng, 1+rng.Intn(60))
		d := mutate(rng, q, 0.2)
		for _, band := range []int{0, 2, 8} {
			a := AlignBanded(q, d, s, band)
			// The traceback score must equal the score-only banded kernel.
			if want := ScoreBanded(q, d, s, band); a.Score != want {
				t.Fatalf("iter %d band %d: traceback %d != score-only %d", iter, band, a.Score, want)
			}
			if a.Score == 0 {
				continue
			}
			if re, err := a.Rescore(s); err != nil || re != a.Score {
				t.Fatalf("iter %d band %d: rescore mismatch (%v)", iter, band, err)
			}
			// Every aligned column must respect the band.
			qi, ti := a.QueryStart, a.TargetStart
			for c := range a.QueryRow {
				if d := (qi + 1) - (ti + 1); d > band || -d > band {
					t.Fatalf("iter %d band %d col %d: path leaves the band", iter, band, c)
				}
				if a.QueryRow[c] != '-' {
					qi++
				}
				if a.TargetRow[c] != '-' {
					ti++
				}
			}
		}
	}
}

func TestAlignBandedDegenerate(t *testing.T) {
	s := protScheme()
	if a := AlignBanded(nil, []byte("ACD"), s, 3); a.Score != 0 {
		t.Error("empty query")
	}
	if a := AlignBanded([]byte("ACD"), []byte("ACD"), s, -1); a.Score != 0 {
		t.Error("negative band")
	}
}
