package fasta

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func TestReadBasic(t *testing.T) {
	in := ">q1 first query\nACDE\nFGHI\n>q2\nKLMN\n"
	seqs, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d sequences, want 2", len(seqs))
	}
	if seqs[0].ID != "q1" || seqs[0].Description != "first query" {
		t.Errorf("header = %q %q", seqs[0].ID, seqs[0].Description)
	}
	if string(seqs[0].Residues) != "ACDEFGHI" {
		t.Errorf("residues = %s", seqs[0].Residues)
	}
	if string(seqs[1].Residues) != "KLMN" {
		t.Errorf("residues = %s", seqs[1].Residues)
	}
}

func TestReadCRLFAndComments(t *testing.T) {
	in := "; a comment\r\n>s1 desc here\r\nAC\r\n\r\nGT\r\n"
	seqs, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || string(seqs[0].Residues) != "ACGT" {
		t.Fatalf("got %+v", seqs)
	}
}

func TestReadNoTrailingNewline(t *testing.T) {
	seqs, err := NewReader(strings.NewReader(">s\nACGT")).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(seqs[0].Residues) != "ACGT" {
		t.Errorf("residues = %s", seqs[0].Residues)
	}
}

func TestReadLowercase(t *testing.T) {
	seqs, err := NewReader(strings.NewReader(">s\nacgt\n")).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(seqs[0].Residues) != "ACGT" {
		t.Errorf("residues = %s, want upper-cased", seqs[0].Residues)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := NewReader(strings.NewReader("ACGT\n")).Read(); err == nil {
		t.Error("data before header should fail")
	}
	if _, err := NewReader(strings.NewReader(">\nACGT\n")).Read(); err == nil {
		t.Error("empty header should fail")
	}
	if _, err := NewReader(strings.NewReader("")).Read(); err != io.EOF {
		t.Errorf("empty input: err = %v, want io.EOF", err)
	}
}

func TestReadStreaming(t *testing.T) {
	r := NewReader(strings.NewReader(">a\nAA\n>b\nCC\n"))
	s1, err := r.Read()
	if err != nil || s1.ID != "a" {
		t.Fatalf("first Read = %v, %v", s1, err)
	}
	s2, err := r.Read()
	if err != nil || s2.ID != "b" {
		t.Fatalf("second Read = %v, %v", s2, err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("third Read err = %v, want io.EOF", err)
	}
}

func TestSplitHeader(t *testing.T) {
	cases := []struct{ in, id, desc string }{
		{"sp|P1|NAME desc text", "sp|P1|NAME", "desc text"},
		{"plain", "plain", ""},
		{"  padded  id ", "padded", "id"},
		{"tab\tdesc", "tab", "desc"},
	}
	for _, c := range cases {
		id, desc := SplitHeader(c.in)
		if id != c.id || desc != c.desc {
			t.Errorf("SplitHeader(%q) = %q,%q want %q,%q", c.in, id, desc, c.id, c.desc)
		}
	}
}

func TestWriteWrap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Wrap = 4
	if err := w.Write(seq.New("s1", "d", []byte("ACDEFGHIK"))); err != nil {
		t.Fatal(err)
	}
	want := ">s1 d\nACDE\nFGHI\nK\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}

func TestWriteNoWrap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Wrap = 0
	w.Write(seq.New("s", "", []byte("ACGT")))
	if buf.String() != ">s\nACGT\n" {
		t.Errorf("got %q", buf.String())
	}
}

func TestWriteEmptySequence(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(seq.New("e", "", nil))
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Len() != 0 {
		t.Errorf("round trip of empty sequence = %v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.fasta")
	in := []*seq.Sequence{
		seq.New("a", "first", []byte("ACDEFGHIKLMNPQRSTVWY")),
		seq.New("b", "", []byte("MKV")),
	}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d sequences, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || !bytes.Equal(out[i].Residues, in[i].Residues) {
			t.Errorf("record %d mismatch: %v vs %v", i, out[i], in[i])
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.fasta")); err == nil {
		t.Error("missing file should fail")
	}
}

// Property: write-then-read preserves IDs and residues for arbitrary
// alphabet-constrained content and wrap widths.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []byte, wrap uint8) bool {
		letters := seq.Protein.Letters()
		res := make([]byte, len(raw))
		for i, b := range raw {
			res[i] = letters[int(b)%20]
		}
		in := seq.New("id1", "some description", res)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Wrap = int(wrap%80) + 1
		if err := w.Write(in); err != nil {
			return false
		}
		out, err := NewReader(&buf).ReadAll()
		if err != nil || len(out) != 1 {
			return false
		}
		return out[0].ID == in.ID && bytes.Equal(out[0].Residues, in.Residues)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
