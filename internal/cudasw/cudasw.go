// Package cudasw implements a CUDASW++ 2.0-style Smith-Waterman database
// search engine with a simulated GPU device model.
//
// The paper runs CUDASW++ 2.0 (Liu, Schmidt, Maskell 2010) on its GPU
// slaves. That engine's observable structure, reproduced here:
//
//   - the database is sorted by sequence length and packed into warp-sized
//     batches, so the threads of a warp align similarly-sized sequences and
//     divergence/padding stays small;
//   - sequences up to a length threshold are aligned by the *inter-task*
//     SIMT kernel (one alignment per thread); longer sequences fall back to
//     the *intra-task* kernel built on a virtualized SIMD abstraction;
//   - per-search costs (kernel launches, host transfers) amortize over the
//     database, which is why measured GCUPS grows with database size — the
//     effect behind Table IV's SwissProt-vs-small-database gap.
//
// Scores are computed for real (bit-exact with internal/sw, via the striped
// kernel of internal/farrar as the compute core). Time is *simulated*: a
// cycle-level cost model of the device returns the duration the search
// would take, which the discrete-event experiments consume. No actual GPU
// is involved (the machine has none); DESIGN.md documents this substitution.
package cudasw

import (
	"fmt"
	"sort"

	"repro/internal/farrar"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
	"time"
)

// Device describes the simulated GPU. The defaults model the NVIDIA GTX 580
// (Fermi GF110) used by the paper's testbed.
type Device struct {
	Name       string
	SMs        int     // streaming multiprocessors
	CoresPerSM int     // CUDA cores per SM
	ClockHz    float64 // shader clock
	// CellsPerCoreCycle is the sustained DP-cell throughput per core per
	// cycle for the inter-task kernel, calibrated so that peak GCUPS
	// matches CUDASW++ 2.0 on this device (~35 GCUPS on a GTX 580:
	// 16 SMs * 32 cores * 1.544 GHz * 0.044 ≈ 35e9 cells/s).
	CellsPerCoreCycle float64
	// IntraTaskEfficiency discounts the intra-task (long-sequence) kernel
	// relative to the inter-task one.
	IntraTaskEfficiency float64
	// LaunchOverhead is charged once per kernel launch; TransferBytesPerSec
	// models host->device sequence upload for the query.
	LaunchOverhead      time.Duration
	TransferBytesPerSec float64
	// SearchOverhead is charged once per query search (result download,
	// host-side setup) — the cost that small databases cannot amortize.
	SearchOverhead time.Duration
	// MemoryBytes is the device memory available for database residues.
	// A database larger than this is processed in resident chunks, paying
	// an extra host->device transfer of the chunk per search. 0 means
	// unlimited.
	MemoryBytes int64
}

// GTX580 returns the device model of the paper's GPUs.
func GTX580() Device {
	return Device{
		Name:                "GeForce GTX 580",
		SMs:                 16,
		CoresPerSM:          32,
		ClockHz:             1.544e9,
		CellsPerCoreCycle:   0.0443,
		IntraTaskEfficiency: 0.60,
		LaunchOverhead:      80 * time.Microsecond,
		TransferBytesPerSec: 5e9, // PCIe 2.0 x16 effective
		SearchOverhead:      350 * time.Millisecond,
		MemoryBytes:         1536 << 20, // GTX 580: 1.5 GB
	}
}

// PeakCellsPerSecond returns the device's theoretical inter-task throughput.
func (d Device) PeakCellsPerSecond() float64 {
	return float64(d.SMs) * float64(d.CoresPerSM) * d.ClockHz * d.CellsPerCoreCycle
}

const (
	// interTaskMaxLen is the CUDASW++ 2.0 length threshold: database
	// sequences at most this long use the inter-task SIMT kernel.
	interTaskMaxLen = 3072
	// warpSize is the CUDA warp width; the inter-task kernel pads every
	// warp's sequences to the longest in the warp.
	warpSize = 32
	// seqsPerLaunch bounds how many alignments one kernel launch covers.
	seqsPerLaunch = 64 * 1024
)

// Hit is the score of the query against one database sequence.
type Hit struct {
	Index int    // position in the original (unsorted) database
	ID    string // database sequence ID
	Score int
}

// Report describes one simulated search: where the time went and how the
// work split across kernels.
type Report struct {
	Cells          int64 // useful DP cells (the GCUPS numerator)
	PaddedCells    int64 // cells including warp padding
	InterTaskSeqs  int
	IntraTaskSeqs  int
	KernelLaunches int
	Elapsed        time.Duration // simulated wall time on the device
	// Kernel reports how the real compute core resolved each sequence
	// across the 8/16/scalar overflow ladder (zero when compute=false).
	Kernel farrar.Stats
}

// GCUPS returns the search's simulated billions of cell updates per second.
func (r Report) GCUPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Cells) / r.Elapsed.Seconds() / 1e9
}

// Engine is a loaded database ready to be searched, the moral equivalent of
// a CUDASW++ process with the database resident on the device.
type Engine struct {
	dev    Device
	scheme score.Scheme

	seqs     []*seq.Sequence // sorted by length, ascending
	origIdx  []int           // sorted position -> original index
	residues int64
	nInter   int // sequences handled by the inter-task kernel
}

// NewEngine sorts and "uploads" the database. The sort by length is the
// CUDASW++ preprocessing step that keeps warps convergent.
func NewEngine(dev Device, s score.Scheme, db []*seq.Sequence) (*Engine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("cudasw: empty database")
	}
	e := &Engine{dev: dev, scheme: s}
	e.origIdx = make([]int, len(db))
	for i := range e.origIdx {
		e.origIdx[i] = i
	}
	sort.SliceStable(e.origIdx, func(a, b int) bool {
		return db[e.origIdx[a]].Len() < db[e.origIdx[b]].Len()
	})
	e.seqs = make([]*seq.Sequence, len(db))
	for pos, oi := range e.origIdx {
		e.seqs[pos] = db[oi]
		e.residues += int64(db[oi].Len())
	}
	e.nInter = sort.Search(len(e.seqs), func(i int) bool { return e.seqs[i].Len() > interTaskMaxLen })
	return e, nil
}

// DatabaseResidues returns the total residue count of the loaded database.
func (e *Engine) DatabaseResidues() int64 { return e.residues }

// DatabaseSeqs returns the number of database sequences.
func (e *Engine) DatabaseSeqs() int { return len(e.seqs) }

// Search aligns the query against the whole database, returning hits in
// original database order plus the simulated cost report.
func (e *Engine) Search(query []byte, compute bool) ([]Hit, Report, error) {
	if len(query) == 0 {
		return nil, Report{}, fmt.Errorf("cudasw: empty query")
	}
	var kern *farrar.Kernel
	if compute {
		var err error
		kern, err = farrar.NewKernel(query, e.scheme)
		if err != nil {
			return nil, Report{}, err
		}
	}
	m := int64(len(query))
	rep := Report{}
	hits := make([]Hit, len(e.seqs))

	// Inter-task kernel: warps of 32 similar-length sequences, padded to
	// the warp maximum.
	for base := 0; base < e.nInter; base += warpSize {
		end := min(base+warpSize, e.nInter)
		maxLen := 0
		for i := base; i < end; i++ {
			n := e.seqs[i].Len()
			if n > maxLen {
				maxLen = n
			}
			rep.Cells += m * int64(n)
			hits[i] = e.hit(i, kern)
		}
		rep.PaddedCells += m * int64(maxLen) * int64(end-base)
	}
	rep.InterTaskSeqs = e.nInter
	if e.nInter > 0 {
		rep.KernelLaunches += (e.nInter + seqsPerLaunch - 1) / seqsPerLaunch
	}

	// Intra-task kernel: one launch per long sequence.
	for i := e.nInter; i < len(e.seqs); i++ {
		n := int64(e.seqs[i].Len())
		rep.Cells += m * n
		rep.PaddedCells += m * n
		rep.IntraTaskSeqs++
		rep.KernelLaunches++
		hits[i] = e.hit(i, kern)
	}

	rep.Elapsed = e.cost(m, rep)
	if kern != nil {
		rep.Kernel = kern.Stats()
	}

	// Undo the length sort so callers see database order.
	out := make([]Hit, len(hits))
	for pos, h := range hits {
		out[e.origIdx[pos]] = h
	}
	return out, rep, nil
}

func (e *Engine) hit(pos int, kern *farrar.Kernel) Hit {
	h := Hit{Index: e.origIdx[pos], ID: e.seqs[pos].ID}
	if kern != nil {
		h.Score = kern.Score(e.seqs[pos].Residues)
	}
	return h
}

// cost is the device cost model: query transfer, per-launch overheads, and
// padded cells at kernel-specific throughput, plus the fixed per-search
// overhead. Long-sequence cells run at the discounted intra-task rate.
func (e *Engine) cost(m int64, rep Report) time.Duration {
	peak := e.dev.PeakCellsPerSecond()
	interPadded := rep.PaddedCells
	var intraCells int64
	for i := e.nInter; i < len(e.seqs); i++ {
		intraCells += m * int64(e.seqs[i].Len())
	}
	interPadded -= intraCells

	secs := float64(interPadded) / peak
	if intraCells > 0 {
		eff := e.dev.IntraTaskEfficiency
		if eff <= 0 {
			eff = 1
		}
		secs += float64(intraCells) / (peak * eff)
	}
	d := time.Duration(secs * float64(time.Second))
	d += time.Duration(rep.KernelLaunches) * e.dev.LaunchOverhead
	if e.dev.TransferBytesPerSec > 0 {
		d += time.Duration(float64(m) / e.dev.TransferBytesPerSec * float64(time.Second))
		// A database that does not fit in device memory is streamed in
		// chunks: every chunk beyond the resident first one re-uploads
		// its residues for this search.
		if e.dev.MemoryBytes > 0 && e.residues > e.dev.MemoryBytes {
			chunks := (e.residues + e.dev.MemoryBytes - 1) / e.dev.MemoryBytes
			extra := float64((chunks-1)*e.dev.MemoryBytes) / e.dev.TransferBytesPerSec
			d += time.Duration(extra * float64(time.Second))
		}
	}
	d += e.dev.SearchOverhead
	return d
}

// ScoreOnly is a convenience that verifies one query/target pair against
// the engine's scheme with the reference kernel; used by tests.
func (e *Engine) ScoreOnly(query, target []byte) int {
	return sw.Score(query, target, e.scheme)
}
