package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	hybridsw "repro"
	"repro/internal/dataset"
	"repro/internal/score"
	"repro/internal/sw"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	p := dataset.Profile{Name: "t", NumSeqs: 20, MeanLen: 70, SigmaLn: 0.5, MinLen: 20, MaxLen: 200}
	db := dataset.Generate(p, 42)
	s, err := New("test-db", db, hybridsw.Platform{SSECores: 1, Adjust: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

func TestHealthAndDatabase(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/database")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("database: %v %v", resp.StatusCode, err)
	}
	var info map[string]any
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if info["name"] != "test-db" || info["sequences"].(float64) != 20 {
		t.Errorf("database info = %v", info)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv, ts := testServer(t)
	// Build a query from database content so a strong hit exists.
	q := srv.db[3] // a database member: guaranteed strong self-hit
	fastaQ := fmt.Sprintf(">query1\n%s\n", q.Residues)

	resp, body := post(t, ts.URL+"/search", SearchRequest{
		QueriesFasta: fastaQ, TopK: 3, Align: true,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SearchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || len(out.Results[0].Hits) != 3 {
		t.Fatalf("results = %+v", out)
	}
	best := out.Results[0].Hits[0]
	// Verify the reported score against the reference.
	want := 0
	for _, d := range srv.db {
		if sc := sw.Score(q.Residues, d.Residues, score.DefaultProtein()); sc > want {
			want = sc
		}
	}
	if best.Score != want {
		t.Errorf("top score %d, reference %d", best.Score, want)
	}
	if best.EValue == nil || *best.EValue > 1e-3 {
		t.Errorf("strong hit EValue = %v (score %d)", *best.EValue, best.Score)
	}
	if best.QueryRow == "" || len(best.QueryRow) != len(best.TargetRow) {
		t.Error("alignment rows missing despite align=true")
	}
	if out.GCUPS <= 0 || out.Database != "test-db" {
		t.Errorf("metadata: %+v", out)
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	_, ts := testServer(t)
	if resp, _ := post(t, ts.URL+"/search", SearchRequest{QueriesFasta: ""}); resp.StatusCode != 400 {
		t.Errorf("empty queries: status %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/search", SearchRequest{QueriesFasta: "garbage no header"}); resp.StatusCode != 400 {
		t.Errorf("bad FASTA: status %d", resp.StatusCode)
	}
	raw, _ := http.Post(ts.URL+"/search", "application/json", strings.NewReader("{not json"))
	if raw.StatusCode != 400 {
		t.Errorf("bad JSON: status %d", raw.StatusCode)
	}
	raw.Body.Close()
	// An unknown policy is caught by validation (422), not at run time.
	if resp, _ := post(t, ts.URL+"/search", SearchRequest{QueriesFasta: ">q\nACD\n", Policy: "bogus"}); resp.StatusCode != 422 {
		t.Errorf("bad policy: status %d", resp.StatusCode)
	}
}

func TestAlignEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, body := post(t, ts.URL+"/align", AlignRequest{A: "mkvlatgll", B: "MKVLAGLL"})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out AlignResponse
	json.Unmarshal(body, &out)
	want := sw.Score([]byte("MKVLATGLL"), []byte("MKVLAGLL"), score.DefaultProtein())
	if out.Score != want {
		t.Errorf("score %d, want %d", out.Score, want)
	}
	if out.QueryRow == "" || out.Identity <= 0 {
		t.Errorf("response = %+v", out)
	}
	if resp, _ := post(t, ts.URL+"/align", AlignRequest{A: "", B: "AC"}); resp.StatusCode != 400 {
		t.Errorf("missing sequence: status %d", resp.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /search: status %d", resp.StatusCode)
	}
}

func TestNewRejectsEmptyDB(t *testing.T) {
	if _, err := New("x", nil, hybridsw.Platform{}); err == nil {
		t.Error("empty database accepted")
	}
}
