// Package sim is the purity golden fixture for the cluster simulator's
// scope. Its directory sits under testdata/purity/internal/sim, so the
// loader's synthetic import path matches the analyzer's internal/sim
// scope: determinism there is load-bearing — a wall-clock read or a
// goroutine would silently break byte-identical seed replay — so the
// contract is enforced mechanically.
package sim

import (
	"math/rand"
	"time"

	_ "net" // want "pure package sim imports net"
)

// Step is the clean idiom: virtual time arrives as an argument and all
// randomness flows from a seeded generator, so a scenario is a pure
// function of its seed.
func Step(now time.Duration, rng *rand.Rand) time.Duration {
	return now + time.Duration(rng.Int63n(int64(time.Millisecond)))
}

func violations() {
	_ = time.Now()        // want "time.Now in pure package sim"
	_ = rand.Float64()    // want "rand.Float64 draws from the global source"
	go func() { _ = 0 }() // want "go statement in pure package sim"
}
