package seqio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fasta"
	"repro/internal/seq"
)

func writeFasta(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.fasta")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildAndOpen(t *testing.T) {
	path := writeFasta(t, ">q0 first\nACDE\nFG\n>q1\nMK\n>q2 third\nWWWWWWWWWW\n")
	n, err := Build(path, IndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Build indexed %d, want 3", n)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Count() != 3 {
		t.Errorf("Count = %d", f.Count())
	}
	if f.MaxLen() != 10 {
		t.Errorf("MaxLen = %d, want 10", f.MaxLen())
	}
	s, err := f.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != "q1" || string(s.Residues) != "MK" {
		t.Errorf("Get(1) = %v", s)
	}
	// Random access to the middle/end.
	s2, _ := f.Get(2)
	if s2.ID != "q2" || s2.Len() != 10 {
		t.Errorf("Get(2) = %v", s2)
	}
	s0, _ := f.Get(0)
	if s0.ID != "q0" || string(s0.Residues) != "ACDEFG" || s0.Description != "first" {
		t.Errorf("Get(0) = %v", s0)
	}
}

func TestOpenBuildsMissingIndex(t *testing.T) {
	path := writeFasta(t, ">a\nAC\n")
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Count() != 1 {
		t.Errorf("Count = %d", f.Count())
	}
	if _, err := os.Stat(IndexPath(path)); err != nil {
		t.Error("index not persisted")
	}
}

func TestGetRange(t *testing.T) {
	path := writeFasta(t, ">a\nAC\n>b\nDE\n>c\nFG\n>d\nHI\n")
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.GetRange(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "c" {
		t.Errorf("GetRange = %v", got)
	}
	if _, err := f.GetRange(3, 2); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := f.GetRange(0, 9); err == nil {
		t.Error("overlong range accepted")
	}
	empty, err := f.GetRange(2, 2)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty range = %v, %v", empty, err)
	}
}

func TestGetOutOfRange(t *testing.T) {
	path := writeFasta(t, ">a\nAC\n")
	f, _ := Open(path)
	defer f.Close()
	if _, err := f.Get(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := f.Get(1); err == nil {
		t.Error("past-end index accepted")
	}
}

func TestCRLFAndNoTrailingNewline(t *testing.T) {
	path := writeFasta(t, ">a x\r\nACGT\r\n>b\r\nMKVL")
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Count() != 2 || f.MaxLen() != 4 {
		t.Fatalf("Count=%d MaxLen=%d", f.Count(), f.MaxLen())
	}
	s, err := f.Get(1)
	if err != nil || string(s.Residues) != "MKVL" {
		t.Errorf("Get(1) = %v, %v", s, err)
	}
}

func TestRoundTripAgainstFastaReader(t *testing.T) {
	// Index-based access must agree with a sequential FASTA parse.
	var buf bytes.Buffer
	w := fasta.NewWriter(&buf)
	w.Wrap = 7
	var want []*seq.Sequence
	for i := 0; i < 25; i++ {
		s := seq.New(
			string(rune('a'+i)),
			"desc",
			bytes.Repeat([]byte{"ACDEFGHIKLMNPQRSTVWY"[i%20]}, 1+i*3),
		)
		want = append(want, s)
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	path := writeFasta(t, buf.String())
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", f.Count(), len(want))
	}
	for i := len(want) - 1; i >= 0; i-- { // access out of order on purpose
		got, err := f.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want[i].ID || !bytes.Equal(got.Residues, want[i].Residues) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if f.MaxLen() != want[len(want)-1].Len() {
		t.Errorf("MaxLen = %d, want %d", f.MaxLen(), want[len(want)-1].Len())
	}
}

func TestOpenRejectsCorruptIndex(t *testing.T) {
	path := writeFasta(t, ">a\nAC\n")
	if err := os.WriteFile(IndexPath(path), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("corrupt index accepted")
	}
	// Truncated but with valid magic.
	idx := append(append([]byte{}, magic[:]...), make([]byte, 16)...)
	idx[8] = 9 // claims 9 records with no offset table
	os.WriteFile(IndexPath(path), idx, 0o644)
	if _, err := Open(path); err == nil {
		t.Error("truncated index accepted")
	}
}

func TestBuildMissingFile(t *testing.T) {
	if _, err := Build("/nonexistent/x.fasta", "/tmp/x.idx"); err == nil {
		t.Error("missing flat file accepted")
	}
}

func TestBuildEmptyFile(t *testing.T) {
	path := writeFasta(t, "")
	n, err := Build(path, IndexPath(path))
	if err != nil || n != 0 {
		t.Errorf("empty build = %d, %v", n, err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Count() != 0 {
		t.Errorf("Count = %d", f.Count())
	}
}
