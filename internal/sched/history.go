package sched

import "time"

// History is the Ω-window weighted speed estimator behind the PSS policy
// (§IV-A.2): the master records the progress notifications each slave sends
// and summarizes them as a weighted mean of the last Ω speed samples, with
// linearly decaying weights so recent samples dominate. A small Ω tracks
// only very recent behaviour (fast adaptation, more noise); a large Ω also
// considers older history (stable, slower to react to local load).
type History struct {
	omega   int
	samples []float64 // ring buffer of the last omega speeds, cells/second
	next    int       // ring write position
	n       int       // samples stored, <= omega

	lastTime  time.Duration // time of the previous notification
	lastValid bool
}

// DefaultOmega is the notification-window length used by the experiments.
const DefaultOmega = 8

// NewHistory returns an estimator over the last omega notifications.
// omega < 1 falls back to DefaultOmega.
func NewHistory(omega int) *History {
	if omega < 1 {
		omega = DefaultOmega
	}
	return &History{omega: omega, samples: make([]float64, omega)}
}

// Anchor sets the estimator's timebase without recording a sample: the
// next Observe divides its cell delta by the time elapsed since this
// instant. The coordinator anchors at registration, so a late-joining
// slave's first delta is measured against time it actually spent working
// rather than time since the job started (which deflated the first PSS
// speed sample for late registrants).
func (h *History) Anchor(now time.Duration) {
	h.lastTime, h.lastValid = now, true
}

// Observe records a progress notification: cells processed since the
// previous notification, at time now. An un-anchored first notification
// only anchors the timebase — without a start instant there is no sound
// elapsed time to divide by. Notifications with non-positive elapsed time
// are ignored.
func (h *History) Observe(cells int64, now time.Duration) {
	if !h.lastValid {
		h.Anchor(now)
		return
	}
	elapsed := now - h.lastTime
	h.lastTime = now
	if elapsed <= 0 || cells < 0 {
		return
	}
	h.push(float64(cells) / elapsed.Seconds())
}

// ObserveRate records a directly measured speed sample (cells/second),
// bypassing the inter-notification timing. Used when the slave reports its
// own measured rate.
func (h *History) ObserveRate(cellsPerSecond float64, now time.Duration) {
	h.lastTime, h.lastValid = now, true
	if cellsPerSecond > 0 {
		h.push(cellsPerSecond)
	}
}

func (h *History) push(v float64) {
	h.samples[h.next] = v
	h.next = (h.next + 1) % h.omega
	if h.n < h.omega {
		h.n++
	}
}

// Samples returns how many speed samples the estimator holds.
func (h *History) Samples() int { return h.n }

// Speed returns the Ω-window weighted mean speed in cells/second and
// whether any samples exist. The k-th most recent sample has weight
// omega-k, so the newest sample weighs omega and the oldest in the window
// weighs 1.
func (h *History) Speed() (cellsPerSecond float64, ok bool) {
	if h.n == 0 {
		return 0, false
	}
	var sum, wsum float64
	for k := 0; k < h.n; k++ {
		// k-th most recent sample sits omega+next-1-k positions into the ring.
		idx := (h.next - 1 - k + h.omega + h.omega) % h.omega
		w := float64(h.omega - k)
		sum += w * h.samples[idx]
		wsum += w
	}
	return sum / wsum, true
}
