// Command swalign aligns two sequences with Smith-Waterman (both phases:
// score and traceback) and prints the alignment, the paper's §II-A worked
// end to end.
//
// Usage:
//
//	swalign -a query.fasta -b target.fasta [-global] [-linear-space] \
//	        [-open 10 -extend 2] [-matrix BLOSUM62]
//
// Each input file's first sequence is used. With -seq, the arguments are
// taken as literal residue strings instead of paths.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fasta"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
)

func main() {
	var (
		aPath   = flag.String("a", "", "first sequence (FASTA path, or residues with -seq)")
		bPath   = flag.String("b", "", "second sequence (FASTA path, or residues with -seq)")
		literal = flag.Bool("seq", false, "treat -a/-b as literal residue strings")
		global  = flag.Bool("global", false, "global (Needleman-Wunsch) instead of local alignment")
		semi    = flag.Bool("semiglobal", false, "semiglobal: whole query, free target ends")
		linear  = flag.Bool("linear-space", false, "use the Myers-Miller linear-space traceback")
		open    = flag.Int("open", 10, "gap open penalty")
		extend  = flag.Int("extend", 2, "gap extend penalty")
		matrix  = flag.String("matrix", "BLOSUM62", "substitution matrix: BLOSUM62, BLOSUM50 or DNA")
		width   = flag.Int("width", 60, "alignment columns per output block")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	a, err := load(*aPath, *literal, "a")
	if err != nil {
		fail("%v", err)
	}
	b, err := load(*bPath, *literal, "b")
	if err != nil {
		fail("%v", err)
	}

	var m *score.Matrix
	switch *matrix {
	case "BLOSUM62":
		m = score.BLOSUM62
	case "BLOSUM50":
		m = score.BLOSUM50
	case "DNA":
		m = score.NewMatchMismatch(seq.DNA, 1, -1)
	default:
		fail("unknown matrix %q", *matrix)
	}
	scheme := score.Scheme{Matrix: m, Gap: score.AffineGap(*open, *extend)}
	if err := scheme.Validate(); err != nil {
		fail("%v", err)
	}

	var aln *sw.Alignment
	switch {
	case *semi && (*global || *linear):
		fail("-semiglobal cannot combine with -global or -linear-space")
	case *semi:
		aln = sw.AlignSemiGlobal(a.Residues, b.Residues, scheme)
	case *global && *linear:
		aln = sw.AlignGlobalLinear(a.Residues, b.Residues, scheme)
	case *global:
		aln = sw.AlignGlobal(a.Residues, b.Residues, scheme)
	case *linear:
		aln = sw.AlignLinearSpace(a.Residues, b.Residues, scheme)
	default:
		aln = sw.Align(a.Residues, b.Residues, scheme)
	}

	fmt.Printf("%s (%d aa) vs %s (%d aa), %s, gaps %s\n\n",
		a.ID, a.Len(), b.ID, b.Len(), m.Name(), scheme.Gap)
	fmt.Print(aln.Format(scheme, *width))
}

func load(arg string, literal bool, name string) (*seq.Sequence, error) {
	if literal {
		return seq.New(name, "", []byte(arg)), nil
	}
	seqs, err := fasta.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("%s: no sequences", arg)
	}
	return seqs[0], nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swalign: "+format+"\n", args...)
	os.Exit(1)
}
