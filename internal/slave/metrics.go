package slave

import "repro/internal/metrics"

// TaskBuckets spans task wall times from milliseconds (tiny queries) to
// minutes (whole-database scans), in seconds.
var TaskBuckets = []float64{0.005, 0.025, 0.1, 0.5, 2, 10, 60, 300}

// Metrics is the slave-side instrumentation bundle, attached through
// Options.Metrics. All hooks are optional (nil skips them).
type Metrics struct {
	// TaskSeconds is the wall time of each completed task on this slave
	// (canceled tasks are not observed — their duration says nothing about
	// throughput).
	TaskSeconds *metrics.Histogram
	// Cells counts DP cells whose results reached the master: per-progress
	// deltas plus each task's final delta.
	Cells *metrics.Counter
	// Reconnects counts successful re-dials after a lost master.
	Reconnects *metrics.Counter
	// BackoffSleeps / BackoffSeconds count the retry sleeps (and their
	// total duration) taken while the master was unreachable.
	BackoffSleeps  *metrics.Counter
	BackoffSeconds *metrics.Counter
}

// NewMetrics registers (or re-attaches to) the slave families on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		TaskSeconds:    r.Histogram("slave_task_seconds", "Wall time per completed task.", TaskBuckets),
		Cells:          r.Counter("slave_cells_computed_total", "DP cells computed and reported to the master."),
		Reconnects:     r.Counter("slave_reconnects_total", "Successful reconnections after a lost master."),
		BackoffSleeps:  r.Counter("slave_backoff_sleeps_total", "Retry sleeps taken while the master was unreachable."),
		BackoffSeconds: r.Counter("slave_backoff_seconds_total", "Total time spent in retry backoff sleeps."),
	}
}
