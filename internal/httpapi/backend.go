package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	hybridsw "repro"
	"repro/internal/cluster"
	"repro/internal/fasta"
	"repro/internal/jobs"
)

// localExecutor runs jobs on the in-process engine set — the single-node
// path swserve has always had, lifted behind the jobs.Executor seam.
type localExecutor struct{ s *Server }

func (e *localExecutor) Kind() jobs.Backend { return jobs.BackendLocal }

func (e *localExecutor) Execute(ctx context.Context, req jobs.Request) ([]byte, error) {
	return e.s.runJob(ctx, req)
}

// clusterExecutor runs jobs on a sharded master/slave fleet: the request's
// knobs map onto cluster.Params, per-shard progress folds into the job
// record (GET /jobs/{id} shows shard states while the job runs), and the
// scatter-gather report is rendered through the same response builder as
// the local backend — the ranking-identity contract makes the two paths
// byte-compatible on the wire.
type clusterExecutor struct {
	s     *Server
	fleet *cluster.Fleet
}

func (e *clusterExecutor) Kind() jobs.Backend { return jobs.BackendCluster }

func (e *clusterExecutor) Execute(ctx context.Context, req jobs.Request) ([]byte, error) {
	queries, err := fasta.NewReader(strings.NewReader(req.QueriesFasta)).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("queries_fasta: %w", err)
	}
	// Resolve request overrides against the platform defaults exactly like
	// the local path, so a request means the same thing on both backends.
	p := e.s.platform
	if req.TopK > 0 {
		p.TopK = req.TopK
	}
	if req.Policy != "" {
		p.Policy = req.Policy
	}
	p.AlignBest = req.Align
	if req.Mode != "" {
		p.Mode = req.Mode
	}
	params := cluster.Params{
		Policy:    p.Policy,
		Adjust:    p.Adjust,
		Omega:     p.Omega,
		TopK:      p.TopK,
		AlignBest: p.AlignBest,
		Mode:      p.Mode,
		OnShards: func(shards []cluster.ShardStatus) {
			e.s.jobs.SetShards(ctx, viewShards(shards))
		},
	}
	if p.Mode == "filtered" {
		params.Filter = hybridsw.FilterSpec{K: req.FilterK, Margin: req.FilterMargin}
		params.StageProgress = func(stage string, done, total int64) {
			e.s.jobs.SetStage(ctx, stage, done, total)
		}
	}
	rep, err := e.fleet.SearchContext(ctx, queries, params)
	if err != nil {
		return nil, err
	}
	// The cluster report already aggregates cells across shards, so the
	// local Report shape carries it losslessly into the shared renderer.
	lrep := &hybridsw.Report{
		PerQuery: rep.PerQuery,
		Elapsed:  rep.Elapsed,
		Cells:    rep.Cells,
		Filter:   rep.Filter,
	}
	return json.Marshal(e.s.buildSearchResponse(queries, lrep, p))
}

// viewShards adapts the cluster's live shard statuses to the job record's
// projection (internal/jobs stays decoupled from internal/cluster).
func viewShards(shards []cluster.ShardStatus) []jobs.ShardProgress {
	out := make([]jobs.ShardProgress, len(shards))
	for i, sh := range shards {
		out[i] = jobs.ShardProgress{
			Shard:      sh.Shard,
			State:      sh.State.String(),
			Cells:      sh.Cells,
			TotalCells: sh.TotalCells,
			Rate:       sh.Rate,
		}
	}
	return out
}

// ReadyResponse is the GET /readyz payload: which backend serves traffic
// and whether it can actually take a job right now.
type ReadyResponse struct {
	Ready    bool          `json:"ready"`
	Backend  jobs.Backend  `json:"backend"`
	Draining bool          `json:"draining"`
	Shards   []ShardHealth `json:"shards,omitempty"`
}

// ShardHealth mirrors cluster.ShardHealth in the API namespace.
type ShardHealth struct {
	Shard     int   `json:"shard"`
	Sequences int   `json:"sequences"`
	Residues  int64 `json:"residues"`
	Replicas  int   `json:"replicas"`
	Live      int   `json:"live"`
}

// handleReady is GET /readyz: 200 while the server can accept work, 503
// once it is draining or — on the cluster backend — when any shard has no
// live replica left (a job submitted then would fail, so load balancers
// should stop routing here). /healthz stays a pure liveness probe.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{
		Ready:    !s.draining.Load(),
		Backend:  jobs.BackendLocal,
		Draining: s.draining.Load(),
	}
	if s.fleet != nil {
		resp.Backend = jobs.BackendCluster
		for _, h := range s.fleet.Health() {
			resp.Shards = append(resp.Shards, ShardHealth(h))
			if h.Live == 0 {
				resp.Ready = false
			}
		}
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}
