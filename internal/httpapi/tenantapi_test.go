package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/jobs"
)

// submitAs POSTs a job for a tenant via the X-Tenant header and returns
// the response and decoded body.
func submitAs(t *testing.T, url, tenant, fasta string) (*http.Response, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(SearchRequest{QueriesFasta: fasta, TopK: 1})
	req, err := http.NewRequest("POST", url+"/jobs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return resp, body
}

// The X-Tenant header outranks the body field, and the resolved tenant is
// visible when polling the job.
func TestTenantHeaderPrecedence(t *testing.T) {
	_, ts := testServerOpts(t, Options{})
	raw, _ := json.Marshal(SearchRequest{QueriesFasta: ">q\nMKVLAA", TopK: 1, Tenant: "bodyteam"})
	req, err := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", "headerteam")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "headerteam" {
		t.Fatalf("job tenant = %q, want the X-Tenant header value", v.Tenant)
	}
	got := pollJob(t, ts.URL, v.ID, jobs.StateDone)
	if got.Tenant != "headerteam" {
		t.Fatalf("polled tenant = %q", got.Tenant)
	}
}

// Tenant names are queue buckets and metrics labels; reject anything
// outside [a-zA-Z0-9._-] or longer than 64 characters before it gets in.
func TestBadTenantRejected(t *testing.T) {
	_, ts := testServerOpts(t, Options{})
	for _, bad := range []string{"no/slash", "no space", strings.Repeat("x", 65)} {
		resp, body := submitAs(t, ts.URL, bad, ">q\nMKVLAA")
		if resp.StatusCode != http.StatusUnprocessableEntity || body["reason"] != "bad_tenant" {
			t.Errorf("tenant %q: status %d reason %v, want 422/bad_tenant", bad, resp.StatusCode, body["reason"])
		}
	}
}

// An over-quota tenant gets 429 with a Retry-After hint — and only that
// tenant: a co-tenant's submissions are untouched.
func TestTenantQuota429(t *testing.T) {
	_, ts := testServerOpts(t, Options{Jobs: jobs.Config{
		Executors: -1, // no executors: jobs stay queued, quotas stay held
		Tenants:   map[string]jobs.TenantConfig{"capped": {MaxOutstanding: 1}},
	}})
	if resp, body := submitAs(t, ts.URL, "capped", ">q1\nMKVLAA"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %v", resp.StatusCode, body)
	}
	resp, body := submitAs(t, ts.URL, "capped", ">q2\nMKVLAW")
	if resp.StatusCode != http.StatusTooManyRequests || body["reason"] != "tenant_quota" {
		t.Fatalf("over-quota submit: status %d reason %v, want 429/tenant_quota", resp.StatusCode, body["reason"])
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if resp, body := submitAs(t, ts.URL, "other", ">q3\nMKVLAY"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("co-tenant submit hit the quota: %d %v", resp.StatusCode, body)
	}
}
