package sched

import (
	"fmt"
	"math"
	"strings"
)

// Request is everything a policy may consult when deciding how many ready
// tasks to grant to a requesting slave.
type Request struct {
	Slave  SlaveID
	Ready  int // ready tasks remaining in the pool
	Total  int // total tasks in the job
	Slaves int // registered slaves

	// Speeds holds the estimated speed (cells/second) per slave, indexed
	// by SlaveID; 0 means no estimate yet. DeclaredSpeeds holds the static
	// speeds slaves announced at registration (used by WFixed).
	Speeds         []float64
	DeclaredSpeeds []float64
}

// Policy decides how many ready tasks a requesting slave receives. Policies
// may be stateful (Fixed/WFixed hand out a one-time quota), so a fresh
// instance is required per job.
type Policy interface {
	// Name identifies the policy in reports ("SS", "PSS", ...).
	Name() string
	// Grant returns how many of the Ready tasks to assign now; the
	// coordinator clamps the result to [0, Ready].
	Grant(req Request) int
}

// NewPolicy builds a policy by name: "SS", "PSS", "Fixed" or "WFixed"
// (case-insensitive). PSS accepts an optional "PSS:<maxBurst>" suffix.
func NewPolicy(name string) (Policy, error) {
	u := strings.ToUpper(name)
	switch {
	case u == "SS":
		return SS{}, nil
	case u == "PSS":
		return &PSS{}, nil
	case strings.HasPrefix(u, "PSS:"):
		var burst int
		if _, err := fmt.Sscanf(u, "PSS:%d", &burst); err != nil || burst < 1 {
			return nil, fmt.Errorf("sched: bad PSS burst in %q", name)
		}
		return &PSS{MaxBurst: burst}, nil
	case u == "FIXED":
		return &Fixed{}, nil
	case u == "WFIXED":
		return &WFixed{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q (want SS, PSS, Fixed or WFixed)", name)
	}
}

// SS is the Self-Scheduling policy (§IV-A.1): every request is granted
// exactly one task, so the maximum idle wait is bounded by one task on the
// slowest slave, at the price of one master interaction per task.
type SS struct{}

// Name implements Policy.
func (SS) Name() string { return "SS" }

// Grant implements Policy: always one task.
func (SS) Grant(req Request) int {
	if req.Ready <= 0 {
		return 0
	}
	return 1
}

// PSS is the Package Weighted Adaptive Self-Scheduling policy (§IV-A.2):
// PSS(p_i, N, P) = Allocate(N, p_i) * Φ(p_i, P), where Allocate is the SS
// policy (one task) and Φ is the requesting slave's weight — its Ω-window
// weighted mean speed relative to the slowest slave with a known speed. A
// slave measured 6x faster than the slowest therefore receives 6 tasks per
// request, cutting master interactions while keeping allocation adaptive.
type PSS struct {
	// MaxBurst caps Φ so one slave cannot drain the pool in a single
	// request; 0 means no cap.
	MaxBurst int
}

// Name implements Policy.
func (p *PSS) Name() string { return "PSS" }

// Grant implements Policy.
func (p *PSS) Grant(req Request) int {
	if req.Ready <= 0 {
		return 0
	}
	mine := 0.0
	if int(req.Slave) < len(req.Speeds) {
		mine = req.Speeds[req.Slave]
	}
	if mine <= 0 {
		return 1 // no history yet: behave like SS (the "first allocation")
	}
	slowest := math.Inf(1)
	for _, v := range req.Speeds {
		if v > 0 && v < slowest {
			slowest = v
		}
	}
	if math.IsInf(slowest, 1) {
		return 1
	}
	phi := int(math.Round(mine / slowest))
	if phi < 1 {
		phi = 1
	}
	if p.MaxBurst > 0 && phi > p.MaxBurst {
		phi = p.MaxBurst
	}
	if phi > req.Ready {
		phi = req.Ready
	}
	return phi
}

// Fixed is the baseline of Singh & Aruni [10]: work is split evenly across
// slaves on their first request, assuming every processing element has the
// same computing power. Subsequent requests receive nothing.
type Fixed struct {
	granted map[SlaveID]bool
}

// Name implements Policy.
func (f *Fixed) Name() string { return "Fixed" }

// Grant implements Policy.
func (f *Fixed) Grant(req Request) int {
	if f.granted == nil {
		f.granted = map[SlaveID]bool{}
	}
	if f.granted[req.Slave] || req.Ready <= 0 || req.Slaves <= 0 {
		return 0
	}
	f.granted[req.Slave] = true
	// Even share of the original total; the last requester takes any
	// remainder left by rounding.
	share := (req.Total + req.Slaves - 1) / req.Slaves
	if len(f.granted) == req.Slaves {
		share = req.Ready
	}
	return share
}

// WFixed is the baseline of Meng & Chaudhary [13]: work is split once,
// proportionally to the *declared* (theoretical) speed of each processing
// element from its registration, with no runtime adaptation.
type WFixed struct {
	granted map[SlaveID]bool
}

// Name implements Policy.
func (w *WFixed) Name() string { return "WFixed" }

// Grant implements Policy.
func (w *WFixed) Grant(req Request) int {
	if w.granted == nil {
		w.granted = map[SlaveID]bool{}
	}
	if w.granted[req.Slave] || req.Ready <= 0 || req.Slaves <= 0 {
		return 0
	}
	w.granted[req.Slave] = true
	var total float64
	for _, v := range req.DeclaredSpeeds {
		if v > 0 {
			total += v
		}
	}
	mine := 0.0
	if int(req.Slave) < len(req.DeclaredSpeeds) {
		mine = req.DeclaredSpeeds[req.Slave]
	}
	if total <= 0 || mine <= 0 {
		// No usable declarations: degrade to an even split.
		return (req.Total + req.Slaves - 1) / req.Slaves
	}
	share := int(math.Round(float64(req.Total) * mine / total))
	if share < 1 {
		share = 1
	}
	if len(w.granted) == req.Slaves && req.Ready > share {
		share = req.Ready // last requester sweeps rounding leftovers
	}
	return share
}
