package cluster

import (
	"sync"

	"repro/internal/sched"
	"repro/internal/seq"
)

// progressBoard folds the per-shard masters' progress hooks into one
// consistent view: every change snapshots all shard statuses for
// Params.OnShards, and filtered-stage counts are summed across shards for
// Params.StageProgress. Hooks run under their shard master's lock, so the
// board does nothing slower than a copy under its own mutex.
type progressBoard struct {
	onShards func([]ShardStatus)
	onStage  func(stage string, done, total int64)

	mu       sync.Mutex
	statuses []ShardStatus
	// stages holds each shard's latest done/total per stage name.
	stages []map[string][2]int64
}

func newBoard(shards []*shard, queries []*seq.Sequence, filtered bool, queryResidues int64, p Params) *progressBoard {
	b := &progressBoard{
		onShards: p.OnShards,
		onStage:  p.StageProgress,
		statuses: make([]ShardStatus, len(shards)),
		stages:   make([]map[string][2]int64, len(shards)),
	}
	for i, s := range shards {
		total := queryResidues * s.residues
		if filtered {
			// The seed workload: one prefilter pass per query. Rescore
			// tasks append as candidates emerge, so this is a lower bound.
			total = int64(len(queries)) * s.residues * sched.PrefilterEquivCells
		}
		b.statuses[i] = ShardStatus{Shard: i, State: ShardPending, TotalCells: total}
		b.stages[i] = map[string][2]int64{}
	}
	return b
}

// emitLocked snapshots the statuses for the observer; call under mu, use
// the returned closure after releasing it.
func (b *progressBoard) emitLocked() func() {
	if b.onShards == nil {
		return func() {}
	}
	snap := make([]ShardStatus, len(b.statuses))
	copy(snap, b.statuses)
	return func() { b.onShards(snap) }
}

// setProgress records a shard master's finished-cell tally and the latest
// reporting replica's rate.
func (b *progressBoard) setProgress(shard int, cells int64, rate float64) {
	b.mu.Lock()
	st := &b.statuses[shard]
	st.Cells = cells
	st.Rate = rate
	if st.State == ShardPending {
		st.State = ShardScanning
	}
	emit := b.emitLocked()
	b.mu.Unlock()
	emit()
}

// setState forces a shard's lifecycle state (failover back to scanning,
// terminal failure).
func (b *progressBoard) setState(shard int, state ShardState) {
	b.mu.Lock()
	b.statuses[shard].State = state
	emit := b.emitLocked()
	b.mu.Unlock()
	emit()
}

// finish marks a shard's scan complete.
func (b *progressBoard) finish(shard int) {
	b.mu.Lock()
	b.statuses[shard].State = ShardDone
	emit := b.emitLocked()
	b.mu.Unlock()
	emit()
}

// setStage folds one shard's filtered-stage completion into the cross-
// shard sum the observer sees.
func (b *progressBoard) setStage(shard int, stage string, done, total int64) {
	if b.onStage == nil {
		return
	}
	b.mu.Lock()
	b.stages[shard][stage] = [2]int64{done, total}
	var sumDone, sumTotal int64
	for _, m := range b.stages {
		if c, ok := m[stage]; ok {
			sumDone += c[0]
			sumTotal += c[1]
		}
	}
	b.mu.Unlock()
	b.onStage(stage, sumDone, sumTotal)
}
