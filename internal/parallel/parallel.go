// Package parallel implements the three ways to parallelize Smith-Waterman
// that the paper's §II-B and Fig. 3 lay out, as real goroutine-parallel
// algorithms:
//
//   - fine-grained (Fig. 3a): ONE alignment split across processing
//     elements by column blocks; values flow as waves on anti-diagonals, so
//     each worker streams border columns to its right-hand neighbour;
//   - coarse-grained (Fig. 3b): one query, the database partitioned into
//     chunks that workers claim by self-scheduling;
//   - very coarse-grained (Fig. 3c): each worker compares a whole query
//     against the whole database — the granularity the paper's task
//     execution environment uses, including its load-imbalance hazard.
//
// All three produce scores bit-exact with the internal/sw reference; tests
// enforce it. The package exists both as a faithful rendering of the
// paper's taxonomy and as the multicore driver for CPU slaves with more
// than one core.
package parallel

import (
	"fmt"
	"sync"

	"repro/internal/farrar"
	"repro/internal/score"
	"repro/internal/seq"
)

const negInf = -(1 << 30)

// CoarseGrainedSearch compares one query to the database with the Fig. 3b
// scheme: the database is split into chunks of `chunk` sequences that
// `workers` goroutines claim by self-scheduling. Scores return in database
// order.
func CoarseGrainedSearch(q []byte, db []*seq.Sequence, s score.Scheme, workers, chunk int) ([]int, error) {
	scores, _, err := CoarseGrainedSearchStats(q, db, s, workers, chunk)
	return scores, err
}

// CoarseGrainedSearchStats is CoarseGrainedSearch plus the aggregated
// kernel dispatch stats. Each worker goroutine owns a private
// farrar.Kernel whose per-kernel counters would otherwise vanish with the
// worker; summing them after the join is what feeds the
// farrar_fallback_total counters.
func CoarseGrainedSearchStats(q []byte, db []*seq.Sequence, s score.Scheme, workers, chunk int) ([]int, farrar.Stats, error) {
	if workers < 1 {
		workers = 1
	}
	if chunk < 1 {
		chunk = 16
	}
	scores := make([]int, len(db))
	type job struct{ lo, hi int }
	jobs := make(chan job)
	errs := make([]error, workers)
	stats := make([]farrar.Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kern, err := farrar.NewKernel(q, s)
			if err != nil {
				errs[w] = err
				for range jobs { // drain so the feeder never blocks
				}
				return
			}
			for j := range jobs {
				for i := j.lo; i < j.hi; i++ {
					scores[i] = kern.Score(db[i].Residues)
				}
			}
			stats[w] = kern.Stats()
		}(w)
	}
	for lo := 0; lo < len(db); lo += chunk {
		jobs <- job{lo, min(lo+chunk, len(db))}
	}
	close(jobs)
	wg.Wait()
	var agg farrar.Stats
	for _, st := range stats {
		agg = agg.Add(st)
	}
	for _, err := range errs {
		if err != nil {
			return nil, agg, err
		}
	}
	return scores, agg, nil
}

// VeryCoarseGrainedSearch compares each query to the whole database with
// the Fig. 3c scheme: workers claim whole queries. As the paper notes, the
// work per task is large and heterogeneous, so this granularity "can easily
// lead to load imbalance" — which is exactly what its workload adjustment
// mechanism repairs at the cluster level.
func VeryCoarseGrainedSearch(queries []*seq.Sequence, db []*seq.Sequence, s score.Scheme, workers int) ([][]int, error) {
	out, _, err := VeryCoarseGrainedSearchStats(queries, db, s, workers)
	return out, err
}

// VeryCoarseGrainedSearchStats is VeryCoarseGrainedSearch plus the kernel
// dispatch stats aggregated across every worker's per-query kernels.
func VeryCoarseGrainedSearchStats(queries []*seq.Sequence, db []*seq.Sequence, s score.Scheme, workers int) ([][]int, farrar.Stats, error) {
	if workers < 1 {
		workers = 1
	}
	out := make([][]int, len(queries))
	idx := make(chan int)
	errs := make([]error, workers)
	stats := make([]farrar.Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for qi := range idx {
				kern, err := farrar.NewKernel(queries[qi].Residues, s)
				if err != nil {
					errs[w] = fmt.Errorf("query %s: %w", queries[qi].ID, err)
					continue
				}
				scores := make([]int, len(db))
				for i, d := range db {
					scores[i] = kern.Score(d.Residues)
				}
				out[qi] = scores
				stats[w] = stats[w].Add(kern.Stats())
			}
		}(w)
	}
	for qi := range queries {
		idx <- qi
	}
	close(idx)
	wg.Wait()
	var agg farrar.Stats
	for _, st := range stats {
		agg = agg.Add(st)
	}
	for _, err := range errs {
		if err != nil {
			return nil, agg, err
		}
	}
	return out, agg, nil
}
