package analysis

import "fmt"

// All returns every analyzer in the suite, in reporting-name order. This
// is the set `swcheck ./...` (and therefore `make lint` and `make test`)
// runs.
func All() []*Analyzer {
	return []*Analyzer{
		CtxflowAnalyzer,
		DeadlineAnalyzer,
		ErrcheckAnalyzer,
		ExhaustiveAnalyzer,
		LeakcheckAnalyzer,
		LockguardAnalyzer,
		MetricNameAnalyzer,
		NilMetricAnalyzer,
		PurityAnalyzer,
		UnlockpathAnalyzer,
	}
}

// Select resolves comma-separated analyzer names against All.
func Select(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
