package analysis

import (
	"io"
	"testing"
)

// BenchmarkSwcheckRepo times the full ten-analyzer suite over the whole
// module — the price every `make lint` invocation and the CI lint job
// pay. Load + type-check dominates; the benchmark keeps that cost
// visible so analyzer additions that blow it up are caught in
// bench-smoke, not discovered as a slow CI queue.
func BenchmarkSwcheckRepo(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatalf("FindModuleRoot: %v", err)
	}
	for i := 0; i < b.N; i++ {
		n, err := Run(root, []string{"./..."}, All(), io.Discard)
		if err != nil {
			b.Fatalf("Run: %v", err)
		}
		if n != 0 {
			b.Fatalf("swcheck found %d finding(s); benchmark expects a clean tree", n)
		}
	}
}
