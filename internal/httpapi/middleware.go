package httpapi

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// DefaultMaxBody caps request bodies (http.MaxBytesReader); an oversized
// POST fails with 413 instead of being read without bound. FASTA payloads
// for realistic query batches are well under this.
const DefaultMaxBody = 8 << 20

// RequestIDHeader carries the per-request correlation ID. An incoming
// value is honored (so callers can trace across services); otherwise the
// middleware generates one. Either way it is echoed on the response.
const RequestIDHeader = "X-Request-ID"

// RequestBuckets spans HTTP handler latencies from static JSON (sub-ms)
// to long database searches, in seconds.
var RequestBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2, 10, 60}

// httpMetrics is the HTTP-layer instrumentation bundle.
type httpMetrics struct {
	requests *metrics.CounterVec
	seconds  *metrics.HistogramVec
	inFlight *metrics.Gauge
}

func newHTTPMetrics(r *metrics.Registry) *httpMetrics {
	return &httpMetrics{
		requests: r.CounterVec("httpapi_requests_total", "HTTP requests by route and status class.", "route", "class"),
		seconds:  r.HistogramVec("httpapi_request_seconds", "HTTP request latency by route.", RequestBuckets, "route"),
		inFlight: r.Gauge("httpapi_in_flight_requests", "Requests currently being served."),
	}
}

// statusWriter records the status code a handler sent (200 when it only
// ever wrote a body).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps one route's handler with the service middleware: a
// request ID echoed on the response, a body-size cap, request metrics
// (count by status class, latency, in-flight) and an optional access-log
// line.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		sw := &statusWriter{ResponseWriter: w}
		met := s.met
		if met != nil {
			met.inFlight.Inc()
		}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if met != nil {
			met.inFlight.Dec()
			met.requests.With(route, statusClass(sw.status)).Inc()
			met.seconds.With(route).Observe(elapsed.Seconds())
		}
		if s.Log != nil {
			s.Log.Printf("%s %s %d %s id=%s", r.Method, r.URL.Path, sw.status, elapsed.Round(time.Microsecond), id)
		}
	}
}

func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000deadbeef"
	}
	return hex.EncodeToString(b[:])
}
