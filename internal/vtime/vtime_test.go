package vtime

import (
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(2*time.Second, func() { got = append(got, 2) })
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var got []string
	s.After(time.Second, func() { got = append(got, "a") })
	s.After(time.Second, func() { got = append(got, "b") })
	s.After(time.Second, func() { got = append(got, "c") })
	s.Run(0)
	if string(got[0][0])+string(got[1][0])+string(got[2][0]) != "abc" {
		t.Errorf("tie order = %v, want scheduling order", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []time.Duration
	s.After(time.Second, func() {
		fired = append(fired, s.Now())
		s.After(time.Second, func() { fired = append(fired, s.Now()) })
	})
	s.Run(0)
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Errorf("fired = %v", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.After(time.Second, func() { fired = true })
	e.Cancel()
	s.Run(0)
	if fired {
		t.Error("canceled event fired")
	}
	if s.Fired() != 0 {
		t.Errorf("Fired = %d", s.Fired())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.After(time.Second, func() {})
	s.Run(0)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	s.Schedule(time.Millisecond, func() {})
}

func TestAfterNegativePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After should panic")
		}
	}()
	s.After(-time.Second, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []int
	s.After(1*time.Second, func() { fired = append(fired, 1) })
	s.After(5*time.Second, func() { fired = append(fired, 5) })
	s.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Errorf("fired = %v, want [1]", fired)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
	s.Run(0)
	if len(fired) != 2 {
		t.Errorf("fired = %v, want both after full Run", fired)
	}
}

func TestRunUntilSkipsCanceledHead(t *testing.T) {
	s := New()
	e := s.After(time.Second, func() { t.Error("canceled fired") })
	e.Cancel()
	ok := false
	s.After(2*time.Second, func() { ok = true })
	s.RunUntil(3 * time.Second)
	if !ok {
		t.Error("event after canceled head did not fire")
	}
}

func TestRunBound(t *testing.T) {
	s := New()
	var rearm func()
	n := 0
	rearm = func() {
		n++
		s.After(time.Second, rearm)
	}
	s.After(time.Second, rearm)
	fired, err := s.Run(100)
	if err == nil {
		t.Error("unbounded loop not detected")
	}
	if fired != 100 {
		t.Errorf("fired = %d, want 100", fired)
	}
}

func TestEventAccessors(t *testing.T) {
	s := New()
	e := s.After(7*time.Second, func() {})
	if e.At() != 7*time.Second {
		t.Errorf("At = %v", e.At())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestZeroDelayEventRunsNow(t *testing.T) {
	s := New()
	s.After(time.Second, func() {
		at := s.Now()
		s.After(0, func() {
			if s.Now() != at {
				t.Errorf("zero-delay event at %v, want %v", s.Now(), at)
			}
		})
	})
	s.Run(0)
}
