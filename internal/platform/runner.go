package platform

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sched"
	"repro/internal/vtime"
)

// Experiment describes one virtual-time run: a task set, a platform, a
// policy and the communication/notification parameters.
type Experiment struct {
	Tasks  []sched.Task
	PEs    []*PE
	Policy sched.Policy // fresh instance per run; nil = PSS
	Adjust bool
	Omega  int
	// GainThreshold tunes the adjustment mechanism's replication gate;
	// see sched.Config.GainThreshold.
	GainThreshold float64

	// CommLatency is the one-way master<->slave message latency (the
	// paper's hosts sit on Gigabit Ethernet; ~0.2 ms RTT/2).
	CommLatency time.Duration
	// NotifyEvery is the progress-notification period, which is also the
	// resolution at which capacity changes (local load) take effect.
	NotifyEvery time.Duration
	// PollEvery is how often an idle slave re-asks for work after being
	// told to stand by. Defaults to NotifyEvery.
	PollEvery time.Duration
	// Lease enables the master's lease-based failure detection in virtual
	// time: a PE silent for longer than this is declared dead and its
	// tasks requeue — the only rescue for a hung PE (PE.HangAt) when the
	// workload adjustment mechanism is off. Must comfortably exceed
	// NotifyEvery and PollEvery. 0 disables.
	Lease time.Duration

	Seed      int64
	MaxEvents uint64 // event-loop guard; 0 means 20 million
}

// Sample is one point of a per-PE throughput timeline (Figs. 7-8).
type Sample struct {
	T    time.Duration
	Rate float64 // cells/second over the preceding slice
}

// Execution is one task occupancy window on a PE (overhead included).
// Completed is false when the window ended in a cancellation.
type Execution struct {
	Task       sched.TaskID
	Start, End time.Duration
	Completed  bool
	Replica    bool
}

// PEStat aggregates one PE's run.
type PEStat struct {
	Name       string
	Kind       sched.SlaveKind
	CellsDone  int64 // cells actually computed (replicas included)
	TasksWon   int   // tasks whose first completion this PE delivered
	Busy       time.Duration
	Timeline   []Sample
	Executions []Execution
}

// GCUPS returns the PE's achieved billions of cells per second while busy.
func (s PEStat) GCUPS() float64 {
	if s.Busy <= 0 {
		return 0
	}
	return float64(s.CellsDone) / s.Busy.Seconds() / 1e9
}

// Result is the outcome of one experiment run.
type Result struct {
	Makespan    time.Duration
	UsefulCells int64 // unique task cells (the paper's GCUPS numerator)
	WastedCells int64 // replica cells computed beyond the first completion
	Replicas    int   // replica assignments made by the adjustment mechanism
	PerPE       []PEStat
	Assignments []sched.Assignment
}

// GCUPS returns the run's overall rate: useful cells over the makespan.
func (r *Result) GCUPS() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.UsefulCells) / r.Makespan.Seconds() / 1e9
}

// Run executes the experiment in virtual time and returns its result.
func Run(exp Experiment) (*Result, error) {
	if len(exp.Tasks) == 0 {
		return nil, fmt.Errorf("platform: no tasks")
	}
	if len(exp.PEs) == 0 {
		return nil, fmt.Errorf("platform: no PEs")
	}
	for _, pe := range exp.PEs {
		if err := pe.Validate(); err != nil {
			return nil, err
		}
	}
	if exp.NotifyEvery <= 0 {
		exp.NotifyEvery = 500 * time.Millisecond
	}
	if exp.PollEvery <= 0 {
		exp.PollEvery = exp.NotifyEvery
	}
	if exp.MaxEvents == 0 {
		exp.MaxEvents = 20_000_000
	}

	r := &runner{
		sim: vtime.New(),
		rng: rand.New(rand.NewSource(exp.Seed)),
		exp: exp,
		coord: sched.NewCoordinator(exp.Tasks, sched.Config{
			Policy:        exp.Policy,
			Adjust:        exp.Adjust,
			Omega:         exp.Omega,
			GainThreshold: exp.GainThreshold,
		}),
	}
	r.byID = map[sched.SlaveID]*simSlave{}
	for _, pe := range exp.PEs {
		s := &simSlave{run: r, pe: pe, stat: PEStat{Name: pe.Name, Kind: pe.Kind}}
		r.slaves = append(r.slaves, s)
		// A PE registers when it joins (the paper's future-work scenario of
		// nodes entering mid-run) and is torn down if it leaves.
		pe := pe
		r.sim.Schedule(pe.JoinAt, func() {
			s.id = r.coord.Register(sched.SlaveInfo{
				Name:          pe.Name,
				Kind:          pe.Kind,
				DeclaredSpeed: pe.DeclaredSpeed(),
			}, r.sim.Now())
			r.byID[s.id] = s
			s.requestWork()
		})
		if pe.LeaveAt > 0 {
			r.sim.Schedule(pe.LeaveAt, func() { s.leave() })
		}
		if pe.HangAt > 0 {
			r.sim.Schedule(pe.HangAt, func() { s.hang() })
		}
	}
	if exp.Lease > 0 {
		// The same Coordinator.Expire the wall-clock master drives from a
		// ticker, here driven by a recurring simulated event — both clocks
		// exercise identical failure-detection code.
		interval := exp.Lease / 4
		if interval <= 0 {
			interval = exp.Lease
		}
		var expire func()
		expire = func() {
			if r.done {
				return
			}
			r.coord.Expire(r.sim.Now(), exp.Lease)
			r.sim.After(interval, expire)
		}
		r.sim.After(interval, expire)
	}
	if _, err := r.sim.Run(exp.MaxEvents); err != nil {
		return nil, err
	}
	if !r.coord.Done() {
		return nil, fmt.Errorf("platform: simulation drained with %d/%d tasks finished",
			r.coord.Pool().Finished(), r.coord.Pool().Len())
	}

	res := &Result{
		Makespan:    r.makespan,
		Replicas:    0,
		Assignments: r.coord.AssignmentLog(),
	}
	for _, t := range exp.Tasks {
		res.UsefulCells += t.Cells
	}
	var computed int64
	for _, s := range r.slaves {
		res.PerPE = append(res.PerPE, s.stat)
		computed += s.stat.CellsDone
	}
	if computed > res.UsefulCells {
		res.WastedCells = computed - res.UsefulCells
	}
	for _, a := range res.Assignments {
		if a.Replica {
			res.Replicas++
		}
	}
	return res, nil
}

type runner struct {
	sim      *vtime.Simulator
	coord    *sched.Coordinator
	exp      Experiment
	rng      *rand.Rand
	slaves   []*simSlave
	byID     map[sched.SlaveID]*simSlave
	makespan time.Duration
	done     bool
}

// finish freezes the makespan and halts every slave.
func (r *runner) finish(at time.Duration) {
	if r.done {
		return
	}
	r.done = true
	r.makespan = at
	for _, s := range r.slaves {
		s.stop()
	}
}

type simSlave struct {
	run  *runner
	pe   *PE
	id   sched.SlaveID
	stat PEStat

	queue []sched.Task
	cur   *sched.Task
	// curStart and curReplica describe the running task's occupancy window.
	curStart   time.Duration
	curReplica bool
	replicaIDs map[sched.TaskID]bool

	remaining   float64 // cells left in the current task
	inOverhead  bool
	sliceStart  time.Duration
	sliceSpeed  float64
	sliceEvent  *vtime.Event
	pollEvent   *vtime.Event
	requesting  bool
	stopped     bool
	notifyCells float64 // cells since last progress notification
	notifyBusy  time.Duration
}

func (s *simSlave) now() time.Duration { return s.run.sim.Now() }

func (s *simSlave) stop() {
	s.stopped = true
	if s.sliceEvent != nil {
		s.sliceEvent.Cancel()
	}
	if s.pollEvent != nil {
		s.pollEvent.Cancel()
	}
}

// leave removes the PE mid-run: the master requeues its tasks so the
// surviving slaves pick them up.
func (s *simSlave) leave() {
	if s.stopped {
		return
	}
	s.stop()
	s.queue = nil
	s.cur = nil
	s.run.coord.SlaveDied(s.id)
}

// hang wedges the PE: it stops computing and notifying but — unlike leave
// — the master is never told. Its tasks stay in the executing state until
// lease expiry or a replica rescues them.
func (s *simSlave) hang() {
	if s.stopped {
		return
	}
	s.stop()
	s.queue = nil
	s.cur = nil
}

// requestWork sends a work request to the master and handles the response,
// modeling one-way latency in both directions.
func (s *simSlave) requestWork() {
	if s.stopped || s.requesting {
		return
	}
	s.requesting = true
	lat := s.run.exp.CommLatency
	s.run.sim.After(lat, func() {
		if s.run.done {
			s.requesting = false
			return
		}
		tasks, isReplica := s.run.coord.RequestWork(s.id, s.run.sim.Now())
		s.run.sim.After(lat, func() {
			s.requesting = false
			if s.stopped {
				return
			}
			if len(tasks) == 0 {
				// Stand by and re-ask; the job may still requeue or
				// replicate something for us.
				s.pollEvent = s.run.sim.After(s.run.exp.PollEvery, s.requestWork)
				return
			}
			if isReplica {
				if s.replicaIDs == nil {
					s.replicaIDs = map[sched.TaskID]bool{}
				}
				for _, t := range tasks {
					s.replicaIDs[t.ID] = true
				}
			}
			s.queue = append(s.queue, tasks...)
			if s.cur == nil {
				s.startNext()
			}
		})
	})
}

// startNext begins the next queued task, charging the per-task overhead
// first.
func (s *simSlave) startNext() {
	if s.stopped || s.cur != nil {
		return
	}
	if len(s.queue) == 0 {
		s.requestWork()
		return
	}
	t := s.queue[0]
	s.queue = s.queue[1:]
	s.cur = &t
	s.curStart = s.now()
	s.curReplica = s.replicaIDs[t.ID]
	s.remaining = float64(t.Cells)
	if s.pe.TaskOverhead > 0 {
		s.inOverhead = true
		s.sliceStart = s.now()
		s.sliceEvent = s.run.sim.After(s.pe.TaskOverhead, s.overheadDone)
		return
	}
	s.scheduleSlice()
}

func (s *simSlave) overheadDone() {
	d := s.now() - s.sliceStart
	s.stat.Busy += d
	s.notifyBusy += d
	s.inOverhead = false
	s.scheduleSlice()
}

// scheduleSlice runs the next computation slice: capacity and jitter are
// sampled at the slice start and held for its (bounded) duration.
func (s *simSlave) scheduleSlice() {
	s.sliceStart = s.now()
	s.sliceSpeed = s.pe.SpeedAt(s.sliceStart, s.run.rng)
	d := time.Duration(s.remaining / s.sliceSpeed * float64(time.Second))
	if d > s.run.exp.NotifyEvery {
		d = s.run.exp.NotifyEvery
	}
	if d <= 0 {
		d = time.Nanosecond
	}
	s.sliceEvent = s.run.sim.After(d, s.sliceDone)
}

func (s *simSlave) sliceDone() {
	d := s.now() - s.sliceStart
	cells := s.sliceSpeed * d.Seconds()
	if cells > s.remaining {
		cells = s.remaining
	}
	s.remaining -= cells
	s.stat.Busy += d
	s.stat.CellsDone += int64(cells)
	s.notifyCells += cells
	s.notifyBusy += d
	s.stat.Timeline = append(s.stat.Timeline, Sample{T: s.now(), Rate: s.sliceSpeed})

	// Periodic progress notification: measured rate over busy time, which
	// amortizes task overheads into the estimate the master uses.
	if s.notifyBusy >= s.run.exp.NotifyEvery || s.remaining <= 1e-6 {
		rate := s.notifyCells / s.notifyBusy.Seconds()
		delta := int64(s.notifyCells)
		now := s.now()
		lat := s.run.exp.CommLatency
		id := s.id
		s.run.sim.After(lat, func() {
			if !s.run.done {
				s.run.coord.ProgressRate(id, rate, delta, now+lat)
			}
		})
		s.notifyCells, s.notifyBusy = 0, 0
	}

	if s.remaining <= 1e-6 {
		s.completeCurrent()
		return
	}
	s.scheduleSlice()
}

// completeCurrent reports the finished task to the master.
func (s *simSlave) completeCurrent() {
	t := *s.cur
	s.stat.Executions = append(s.stat.Executions, Execution{
		Task: t.ID, Start: s.curStart, End: s.now(), Completed: true, Replica: s.curReplica,
	})
	s.cur = nil
	lat := s.run.exp.CommLatency
	s.run.sim.After(lat, func() {
		if s.run.done {
			return
		}
		now := s.run.sim.Now()
		accepted, cancel := s.run.coord.Complete(s.id, t.ID, nil, now)
		if accepted {
			s.stat.TasksWon++
			for _, cid := range cancel {
				victim := s.run.byID[cid]
				if victim == nil {
					continue
				}
				s.run.sim.After(lat, func() { victim.cancelTask(t.ID) })
			}
			if s.run.coord.Done() {
				s.run.finish(now)
				return
			}
		}
	})
	// Proceed immediately with queued work; the master hears about the
	// completion one latency later.
	s.startNext()
}

// cancelTask aborts a now-moot replica, freeing the slave for useful work.
func (s *simSlave) cancelTask(id sched.TaskID) {
	if s.stopped {
		return
	}
	// Drop queued copies.
	keep := s.queue[:0]
	for _, t := range s.queue {
		if t.ID != id {
			keep = append(keep, t)
		}
	}
	s.queue = keep
	if s.cur != nil && s.cur.ID == id {
		if s.sliceEvent != nil {
			s.sliceEvent.Cancel()
		}
		// Account the partial slice that did run.
		if !s.inOverhead {
			d := s.now() - s.sliceStart
			cells := s.sliceSpeed * d.Seconds()
			if cells > s.remaining {
				cells = s.remaining
			}
			s.stat.Busy += d
			s.stat.CellsDone += int64(cells)
		} else {
			s.stat.Busy += s.now() - s.sliceStart
		}
		s.stat.Executions = append(s.stat.Executions, Execution{
			Task: id, Start: s.curStart, End: s.now(), Completed: false, Replica: s.curReplica,
		})
		s.cur = nil
		s.inOverhead = false
		s.startNext()
	}
}
