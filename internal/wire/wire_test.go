package wire

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// echoHandler answers every message with a fixed assign and records drops.
type echoHandler struct {
	mu   sync.Mutex
	gone []sched.SlaveID
}

func (h *echoHandler) Dispatch(req Envelope) Envelope {
	switch {
	case req.Register != nil:
		return Envelope{RegisterAck: &RegisterAckMsg{Slave: 7}}
	case req.Request != nil:
		return Envelope{Assign: &AssignMsg{Tasks: []TaskSpec{{ID: 3, QueryID: "q", Residues: []byte("ACD"), Cells: 30}}}}
	case req.Progress != nil:
		return Envelope{ProgressAck: &ProgressAckMsg{Cancel: []sched.TaskID{9}}}
	case req.Complete != nil:
		return Envelope{CompleteAck: &CompleteAckMsg{Accepted: true}}
	}
	return Envelope{Error: "bad message"}
}

func (h *echoHandler) SlaveGone(id sched.SlaveID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gone = append(h.gone, id)
}

func (h *echoHandler) goneList() []sched.SlaveID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]sched.SlaveID{}, h.gone...)
}

func TestLocalTransport(t *testing.T) {
	c := Local{H: &echoHandler{}}
	resp, err := c.Call(Envelope{Register: &RegisterMsg{Name: "x"}})
	if err != nil || resp.RegisterAck == nil || resp.RegisterAck.Slave != 7 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := &echoHandler{}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, h)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Call(Envelope{Register: &RegisterMsg{Name: "n", Kind: sched.KindGPU, DeclaredSpeed: 5}})
	if err != nil || resp.RegisterAck.Slave != 7 {
		t.Fatalf("register: %+v, %v", resp, err)
	}
	resp, err = c.Call(Envelope{Request: &RequestMsg{Slave: 7}})
	if err != nil {
		t.Fatal(err)
	}
	ts := resp.Assign.Tasks[0]
	if ts.ID != 3 || ts.QueryID != "q" || string(ts.Residues) != "ACD" || ts.Cells != 30 {
		t.Fatalf("task = %+v", ts)
	}
	resp, err = c.Call(Envelope{Progress: &ProgressMsg{Slave: 7, Rate: 1.5, Cells: 10}})
	if err != nil || len(resp.ProgressAck.Cancel) != 1 || resp.ProgressAck.Cancel[0] != 9 {
		t.Fatalf("progress: %+v, %v", resp, err)
	}
	// Error responses surface as Go errors.
	if _, err := c.Call(Envelope{}); err == nil {
		t.Error("error envelope not surfaced")
	}
	c.Close()
}

func TestServeReportsSlaveGone(t *testing.T) {
	h := &echoHandler{}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() { Serve(l, h); close(done) }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(Envelope{Register: &RegisterMsg{Name: "x"}}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// The serve goroutine should notice the drop shortly.
	var gone []sched.SlaveID
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if gone = h.goneList(); len(gone) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(gone) == 0 || gone[0] != 7 {
		t.Errorf("gone = %v", gone)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}
