package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// store is the durable side of the Manager: a JSON-lines write-ahead log of
// job records plus a periodic snapshot, and one file per cached result.
// Layout under the jobs dir:
//
//	snapshot.json   JSON array of job records (the compacted base state)
//	wal.jsonl       one job record per line, appended on every transition;
//	                replayed over the snapshot on boot, last record wins
//	results/        <key>.json encoded result bodies, content-addressed
//
// The store is not safe for concurrent use; the Manager serializes access
// under its mutex. Write failures degrade durability, never serving: the
// Manager counts them and keeps going.
type store struct {
	dir     string
	wal     *os.File
	appends int // records since the last snapshot, drives compaction
}

const (
	walName      = "wal.jsonl"
	snapshotName = "snapshot.json"
	resultsDir   = "results"
)

// openStore opens (creating if needed) a jobs dir and returns the surviving
// job records: the snapshot with the WAL replayed over it (see Replay),
// sorted by creation.
func openStore(dir string) (*store, []Job, error) {
	if err := os.MkdirAll(filepath.Join(dir, resultsDir), 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: creating %s: %w", dir, err)
	}
	var snapRaw, walRaw []byte
	if raw, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		snapRaw = raw
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	if raw, err := os.ReadFile(filepath.Join(dir, walName)); err == nil {
		walRaw = raw
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	out, err := Replay(snapRaw, walRaw)
	if err != nil {
		return nil, nil, fmt.Errorf("%w (in %s)", err, dir)
	}
	// Drop a torn final line (crash mid-append) before reopening for
	// append, or the next record would be concatenated onto it and lost.
	if clean := CleanLength(walRaw); clean != len(walRaw) {
		if err := os.Truncate(filepath.Join(dir, walName), int64(clean)); err != nil {
			return nil, nil, fmt.Errorf("jobs: truncating torn WAL tail: %w", err)
		}
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &store{dir: dir, wal: wal}, out, nil
}

// append logs one job record.
func (s *store) append(j Job) error {
	raw, err := MarshalRecord(j)
	if err != nil {
		return err
	}
	if _, err := s.wal.Write(raw); err != nil {
		return err
	}
	s.appends++
	return nil
}

// saveResult persists one result body under its content key, atomically.
func (s *store) saveResult(key string, body []byte) error {
	final := s.resultPath(key)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// loadResult returns a persisted result body, if present.
func (s *store) loadResult(key string) ([]byte, bool) {
	raw, err := os.ReadFile(s.resultPath(key))
	if err != nil {
		return nil, false
	}
	return raw, true
}

func (s *store) resultPath(key string) string {
	return filepath.Join(s.dir, resultsDir, key+".json")
}

// snapshot compacts the store: the given records become the new snapshot,
// the WAL restarts empty, and result files whose key is not in keep are
// pruned (their jobs aged out of retention).
func (s *store) snapshot(all []Job, keep map[string]bool) error {
	raw, err := json.MarshalIndent(all, "", " ")
	if err != nil {
		return err
	}
	final := filepath.Join(s.dir, snapshotName)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	// The snapshot holds every record, so the WAL can restart from zero.
	// Truncate-in-place keeps the open append handle valid.
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return err
	}
	s.appends = 0
	entries, err := os.ReadDir(filepath.Join(s.dir, resultsDir))
	if err != nil {
		return err
	}
	for _, e := range entries {
		key := strings.TrimSuffix(e.Name(), ".json")
		if key == e.Name() || keep[key] {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, resultsDir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// close releases the WAL handle (callers snapshot first).
func (s *store) close() error { return s.wal.Close() }
