// Package experiments reproduces every table and figure of the paper's
// evaluation (§V) on the calibrated virtual-time platform, plus the
// ablations DESIGN.md calls out. Each experiment is a deterministic
// function of its fixed seed; cmd/benchtables prints them and
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/gcups"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Standard parameters shared by all experiments (see DESIGN.md: calibrated
// once, never tuned per experiment).
const (
	NotifyEvery = 500 * time.Millisecond
	CommLatency = 200 * time.Microsecond
	Omega       = sched.DefaultOmega
	baseSeed    = 20130520 // IPDPS 2013 week; any fixed value works
)

// QueryLengths is the paper's query set: 40 sequences with lengths equally
// distributed from 100 to 5,000 residues.
func QueryLengths() []int { return dataset.QueryLengths(40, 100, 5000) }

// Tasks builds the very coarse-grained task set of one database experiment:
// one task per query, each costing |q| x database-residues cells. Query
// files are not sorted by length, so the order is a fixed, seeded shuffle
// of the 40 lengths — task sizes arrive unpredictably, which is precisely
// the situation the workload adjustment mechanism exists for (a slow slave
// drawing one of the biggest queries).
func Tasks(db dataset.Profile) []sched.Task {
	lengths := QueryLengths()
	rng := rand.New(rand.NewSource(baseSeed))
	rng.Shuffle(len(lengths), func(i, j int) { lengths[i], lengths[j] = lengths[j], lengths[i] })
	tasks := make([]sched.Task, len(lengths))
	for i, n := range lengths {
		tasks[i] = sched.Task{
			QueryID: fmt.Sprintf("Q%02d_len%d", i, n),
			Cells:   int64(n) * db.Residues(),
		}
	}
	return tasks
}

// Run is one measured cell of a table: a platform configuration against one
// database.
type Run struct {
	Config string
	DB     string
	Result *platform.Result
}

// GCUPS is shorthand for the run's overall throughput.
func (r Run) GCUPS() float64 { return r.Result.GCUPS() }

// Time is shorthand for the run's makespan.
func (r Run) Time() time.Duration { return r.Result.Makespan }

func runConfig(db dataset.Profile, pes []*platform.PE, adjust bool, policy sched.Policy, seed int64) (*platform.Result, error) {
	if policy == nil {
		policy = &sched.PSS{}
	}
	return platform.Run(platform.Experiment{
		Tasks:       Tasks(db),
		PEs:         pes,
		Policy:      policy,
		Adjust:      adjust,
		Omega:       Omega,
		CommLatency: CommLatency,
		NotifyEvery: NotifyEvery,
		Seed:        seed,
	})
}

// Table2 renders the database inventory (the paper's Table II) from the
// synthetic profiles.
func Table2() *gcups.Table {
	t := &gcups.Table{
		Title:  "Table II: genomic databases (synthetic profiles)",
		Header: []string{"Database", "Sequences", "Residues", "Mean len"},
	}
	for _, p := range dataset.TableII() {
		t.AddRow(p.Name, p.NumSeqs, p.Residues(), fmt.Sprintf("%.0f", p.MeanLen))
	}
	return t
}

// Table3 reproduces "Results for the SSE cores": 40 queries vs each
// database on 1, 2, 4 and 8 SSE cores (PSS + workload adjustment, as in all
// of §V-A).
func Table3() ([]Run, *gcups.Table, error) {
	return sweep("Table III: results for the SSE cores", func(n int) []*platform.PE {
		return platform.Hybrid(0, n)
	}, []int{1, 2, 4, 8}, func(n int) string { return fmt.Sprintf("%d SSE", n) })
}

// Table4 reproduces "Results for the GPUs": the same workload on 1, 2 and 4
// GPUs.
func Table4() ([]Run, *gcups.Table, error) {
	return sweep("Table IV: results for the GPUs", func(n int) []*platform.PE {
		return platform.Hybrid(n, 0)
	}, []int{1, 2, 4}, func(n int) string { return fmt.Sprintf("%d GPU", n) })
}

// hybridConfigs are Table V's columns.
var hybridConfigs = []struct {
	Name       string
	GPUs, SSEs int
}{
	{"1 GPU + 1 SSE", 1, 1},
	{"1 GPU + 2 SSE", 1, 2},
	{"1 GPU + 4 SSE", 1, 4},
	{"2 GPU + 4 SSE", 2, 4},
	{"4 GPU + 4 SSE", 4, 4},
}

// Table5 reproduces "Results for the GPUs and SSEs": the hybrid
// configurations against every database.
func Table5() ([]Run, *gcups.Table, error) {
	var runs []Run
	t := &gcups.Table{
		Title:  "Table V: results for the GPUs and SSEs (time s / GCUPS)",
		Header: []string{"Database"},
	}
	for _, c := range hybridConfigs {
		t.Header = append(t.Header, c.Name)
	}
	for _, db := range dataset.TableII() {
		row := []any{db.Name}
		for i, c := range hybridConfigs {
			res, err := runConfig(db, platform.Hybrid(c.GPUs, c.SSEs), true, nil, baseSeed+int64(i))
			if err != nil {
				return nil, nil, fmt.Errorf("%s / %s: %w", db.Name, c.Name, err)
			}
			runs = append(runs, Run{Config: c.Name, DB: db.Name, Result: res})
			row = append(row, fmt.Sprintf("%s / %.2f", gcups.Seconds(res.Makespan), res.GCUPS()))
		}
		t.AddRow(row...)
	}
	return runs, t, nil
}

// sweep runs one table: every database against a family of configurations.
func sweep(title string, build func(int) []*platform.PE, sizes []int, label func(int) string) ([]Run, *gcups.Table, error) {
	var runs []Run
	t := &gcups.Table{Title: title, Header: []string{"Database"}}
	for _, n := range sizes {
		t.Header = append(t.Header, label(n)+" time", label(n)+" GCUPS")
	}
	for _, db := range dataset.TableII() {
		row := []any{db.Name}
		for i, n := range sizes {
			res, err := runConfig(db, build(n), true, nil, baseSeed+int64(100*i))
			if err != nil {
				return nil, nil, fmt.Errorf("%s / %s: %w", db.Name, label(n), err)
			}
			runs = append(runs, Run{Config: label(n), DB: db.Name, Result: res})
			row = append(row, res.Makespan, res.GCUPS())
		}
		t.AddRow(row...)
	}
	return runs, t, nil
}

// HeadlineRun executes the paper's headline configuration — 4 GPUs + 4 SSE
// cores against SwissProt with PSS and the workload adjustment mechanism —
// and returns the raw result for trace export and ad-hoc analysis.
func HeadlineRun() (*platform.Result, error) {
	db, err := dataset.ProfileByName("UniProtKB/SwissProt")
	if err != nil {
		return nil, err
	}
	return runConfig(db, platform.Hybrid(4, 4), true, nil, baseSeed)
}
