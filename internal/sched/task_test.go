package sched

import (
	"testing"
	"time"
)

func mkTasks(n int) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{QueryID: string(rune('a' + i)), Cells: 1000}
	}
	return out
}

func TestPoolLifecycle(t *testing.T) {
	p := NewPool(mkTasks(3))
	if p.Len() != 3 || p.Ready() != 3 || p.ExecutingCount() != 0 || p.Finished() != 0 {
		t.Fatalf("fresh pool counts wrong: %d %d %d", p.Ready(), p.ExecutingCount(), p.Finished())
	}
	got := p.TakeReady(2, 0, 0)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("TakeReady = %v", got)
	}
	if p.Ready() != 1 || p.ExecutingCount() != 2 {
		t.Fatalf("counts after take: %d %d", p.Ready(), p.ExecutingCount())
	}
	if p.StateOf(0) != Executing || p.StateOf(2) != Ready {
		t.Fatal("states wrong after take")
	}
	first, others := p.Complete(0, 0, time.Second)
	if !first || others != nil {
		t.Fatalf("Complete = %v %v", first, others)
	}
	if p.Finished() != 1 || p.Done() {
		t.Fatal("finished accounting wrong")
	}
	sid, at, ok := p.FinishedBy(0)
	if !ok || sid != 0 || at != time.Second {
		t.Fatalf("FinishedBy = %v %v %v", sid, at, ok)
	}
	if _, _, ok := p.FinishedBy(1); ok {
		t.Fatal("FinishedBy on executing task should be !ok")
	}
}

func TestPoolTakeReadyClamps(t *testing.T) {
	p := NewPool(mkTasks(2))
	if got := p.TakeReady(10, 0, 0); len(got) != 2 {
		t.Fatalf("TakeReady(10) = %d tasks", len(got))
	}
	if got := p.TakeReady(1, 0, 0); got != nil {
		t.Fatalf("TakeReady on empty = %v", got)
	}
	if got := p.TakeReady(0, 0, 0); got != nil {
		t.Fatalf("TakeReady(0) = %v", got)
	}
}

func TestPoolReplicaAndFirstWins(t *testing.T) {
	p := NewPool(mkTasks(1))
	p.TakeReady(1, 0, 0)
	p.AddExecutor(0, 1, time.Second)
	if n := len(p.Executors(0)); n != 2 {
		t.Fatalf("executors = %d, want 2", n)
	}
	first, others := p.Complete(0, 1, 2*time.Second)
	if !first || len(others) != 1 || others[0] != 0 {
		t.Fatalf("Complete = %v %v", first, others)
	}
	// The loser's completion is ignored.
	first, others = p.Complete(0, 0, 3*time.Second)
	if first || others != nil {
		t.Fatalf("second Complete = %v %v", first, others)
	}
	if sid, _, _ := p.FinishedBy(0); sid != 1 {
		t.Fatalf("FinishedBy = %d, want 1", sid)
	}
	if !p.Done() {
		t.Fatal("pool should be done")
	}
}

func TestPoolAddExecutorPanicsOnReady(t *testing.T) {
	p := NewPool(mkTasks(1))
	defer func() {
		if recover() == nil {
			t.Error("AddExecutor on ready task should panic")
		}
	}()
	p.AddExecutor(0, 0, 0)
}

func TestPoolCompleteByStrangerPanics(t *testing.T) {
	p := NewPool(mkTasks(1))
	p.TakeReady(1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("Complete by non-executor should panic")
		}
	}()
	p.Complete(0, 7, 0)
}

func TestPoolAbandonRequeues(t *testing.T) {
	p := NewPool(mkTasks(2))
	p.TakeReady(2, 0, 0)
	p.Abandon(1, 0)
	if p.Ready() != 1 || p.StateOf(1) != Ready {
		t.Fatal("abandoned task did not requeue")
	}
	// Requeued task comes back first.
	got := p.TakeReady(1, 1, time.Second)
	if got[0].ID != 1 {
		t.Fatalf("requeued task not at FIFO head: got %d", got[0].ID)
	}
	// Abandon with another executor alive keeps the task executing.
	p2 := NewPool(mkTasks(1))
	p2.TakeReady(1, 0, 0)
	p2.AddExecutor(0, 1, 0)
	p2.Abandon(0, 0)
	if p2.StateOf(0) != Executing {
		t.Fatal("task with remaining executor requeued")
	}
}

func TestStateString(t *testing.T) {
	if Ready.String() != "ready" || Executing.String() != "executing" || Finished.String() != "finished" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state should render")
	}
}
