package master

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/prefilter"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/wire"
)

// Core is the master's protocol state machine with the clock factored out:
// one envelope in, one envelope out, with the current time passed as an
// argument. It is deliberately single-threaded and performs no I/O — the
// same discipline sched.Coordinator follows — so the identical dispatch
// code serves two drivers:
//
//   - Master wraps a Core with a mutex and the wall clock for real TCP and
//     in-process slaves;
//   - the deterministic cluster simulator (internal/sim) drives a Core from
//     a virtual-time event loop, where reproducibility demands that no
//     goroutine or wall-clock read sneaks onto the decision path.
//
// Methods are not safe for concurrent use; the driver owns the locking.
type Core struct {
	queries []*seq.Sequence
	// queryByID resolves a task's QueryID back to its sequence. With the
	// single-kind workload task IDs equal query indices, but a filtered job
	// holds two tasks per query (prefilter + appended rescore), so lookups
	// go through the query identifier instead of the task ID.
	queryByID map[string]*seq.Sequence
	// qorder is each query's position in the submitted list, for
	// query-ordered result merging.
	qorder map[string]int
	coord  *sched.Coordinator
	events *metrics.EventLog
	// pendingCancel queues cancellations per slave: the protocol is
	// slave-initiated, so a slave learns that its copy of a task became
	// moot on its next Progress or Complete acknowledgement.
	pendingCancel map[sched.SlaveID][]sched.TaskID
	// finished latches the job-done transition so the summary trailer is
	// emitted exactly once.
	finished bool

	// Filtered-search state. filtered selects the two-stage pipeline;
	// filter is the prefilter parameterization shipped with every
	// TaskPrefilter assignment; dbResidues sizes the full-scan baseline
	// the savings accounting compares against.
	filtered   bool
	filter     prefilter.Spec
	dbResidues int64
	fstats     FilterStats
	// stageProgress, when set, is invoked on every accepted stage
	// completion with cumulative done/total counts for that stage.
	stageProgress func(stage string, done, total int64)
	// progress, when set, observes the job's execution progress on every
	// Progress and accepted Complete message: doneCells comes from the
	// pool's finished tally (authoritative — replicated scans are not
	// double-counted) and rate is the reporting slave's instantaneous
	// speed. The cluster backend feeds per-shard progress from it.
	progress func(doneCells int64, rate float64)
	// fmet, when set, receives the master-side savings accounting
	// (prefilter_rescore_cells_saved_total); the per-pass scan metrics are
	// observed slave-side where the work happens.
	fmet *prefilter.Metrics
}

// FilterStats aggregates the filtered pipeline's accounting across the job,
// for reports and the selectivity acceptance check. Zero for full-scan
// jobs.
type FilterStats struct {
	Queries           int   // queries in the job
	PrefilterDone     int   // prefilter tasks with an accepted result
	RescoreDone       int   // rescore tasks with an accepted result
	ResiduesScanned   int64 // database residues streamed through automata
	CandidateResidues int64 // residues admitted for rescoring
	Windows           int   // merged candidate windows across queries
	RescoredCells     int64 // true DP cells the rescore stage computed
	FullScanCells     int64 // DP cells the same queries would cost unfiltered
}

// Selectivity is the fraction of database residues admitted for rescoring.
func (s FilterStats) Selectivity() float64 {
	if s.ResiduesScanned == 0 {
		return 0
	}
	return float64(s.CandidateResidues) / float64(s.ResiduesScanned)
}

// CellsSaved is the DP work the filter avoided versus full scans.
func (s FilterStats) CellsSaved() int64 {
	if saved := s.FullScanCells - s.RescoredCells; saved > 0 {
		return saved
	}
	return 0
}

// NewCore builds the protocol core for a job: one very coarse-grained task
// per query (|query| x database residues cells), all ready. events may be
// nil to discard the structured event stream.
func NewCore(queries []*seq.Sequence, dbResidues int64, sc sched.Config, events *metrics.EventLog) (*Core, error) {
	tasks, err := seedTasks(queries, dbResidues, sched.TaskSW)
	if err != nil {
		return nil, err
	}
	return newCore(queries, dbResidues, tasks, sc, events), nil
}

// NewFilteredCore builds the protocol core for a two-stage filtered job:
// one TaskPrefilter per query, each costing dbResidues *
// sched.PrefilterEquivCells cell-equivalents, with the matching TaskRescore
// appended the moment the prefilter's candidate windows arrive.
func NewFilteredCore(queries []*seq.Sequence, dbResidues int64, filter prefilter.Spec, sc sched.Config, events *metrics.EventLog) (*Core, error) {
	tasks, err := seedTasks(queries, dbResidues, sched.TaskPrefilter)
	if err != nil {
		return nil, err
	}
	c := newCore(queries, dbResidues, tasks, sc, events)
	c.filtered = true
	c.filter = filter.Normalize()
	c.fstats.Queries = len(queries)
	return c, nil
}

// seedTasks builds the initial one-task-per-query set: full scans for
// TaskSW jobs, automaton passes for TaskPrefilter jobs.
func seedTasks(queries []*seq.Sequence, dbResidues int64, kind sched.TaskKind) ([]sched.Task, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("master: no queries")
	}
	if dbResidues <= 0 {
		return nil, fmt.Errorf("master: DBResidues = %d", dbResidues)
	}
	seen := map[string]bool{}
	tasks := make([]sched.Task, len(queries))
	for i, q := range queries {
		if q.Len() == 0 {
			return nil, fmt.Errorf("master: query %d (%s) is empty", i, q.ID)
		}
		// Filtered jobs route rescore state through the query identifier,
		// so those must be unique; plain scans keep the historical
		// task-index identity and tolerate duplicates.
		if kind == sched.TaskPrefilter && seen[q.ID] {
			return nil, fmt.Errorf("master: duplicate query ID %q", q.ID)
		}
		seen[q.ID] = true
		cells := int64(q.Len()) * dbResidues
		if kind == sched.TaskPrefilter {
			cells = dbResidues * sched.PrefilterEquivCells
		}
		tasks[i] = sched.Task{QueryID: q.ID, Cells: cells, Kind: kind}
	}
	return tasks, nil
}

func newCore(queries []*seq.Sequence, dbResidues int64, tasks []sched.Task, sc sched.Config, events *metrics.EventLog) *Core {
	c := &Core{
		queries:       queries,
		queryByID:     make(map[string]*seq.Sequence, len(queries)),
		qorder:        make(map[string]int, len(queries)),
		coord:         sched.NewCoordinator(tasks, sc),
		events:        events,
		pendingCancel: map[sched.SlaveID][]sched.TaskID{},
		dbResidues:    dbResidues,
	}
	for i, q := range queries {
		c.queryByID[q.ID] = q
		c.qorder[q.ID] = i
	}
	return c
}

// Submit appends one query to a running full-scan job: the query joins the
// core's merge tables and a ready TaskSW task joins the pool, tagged with
// the submitting tenant and priority. Queries and seed-shaped tasks stay
// 1:1 in submission order, so a checkpoint taken after arrivals restores
// through RestoreCore by supplying the grown query list. Filtered jobs
// reject arrivals: their appended tasks are reserved for rescore stages.
func (c *Core) Submit(q *seq.Sequence, tenant string, priority int) (sched.TaskID, error) {
	if c.filtered {
		return 0, fmt.Errorf("master: filtered jobs do not accept runtime arrivals")
	}
	if q == nil || q.Len() == 0 {
		return 0, fmt.Errorf("master: empty arrival query")
	}
	id := sched.TaskID(len(c.queries))
	c.queries = append(c.queries, q)
	c.queryByID[q.ID] = q
	c.qorder[q.ID] = int(id)
	c.coord.AddTasks([]sched.Task{{
		QueryID:  q.ID,
		Kind:     sched.TaskSW,
		Cells:    int64(q.Len()) * c.dbResidues,
		Tenant:   tenant,
		Priority: priority,
	}})
	return id, nil
}

// SetStageProgress installs the per-stage progress hook (filtered jobs).
// Call before serving traffic; the hook runs inside the dispatch path.
func (c *Core) SetStageProgress(fn func(stage string, done, total int64)) { c.stageProgress = fn }

// SetProgress installs the execution-progress hook. Call before serving
// traffic; the hook runs inside the dispatch path, so keep it fast and
// never call back into the core.
func (c *Core) SetProgress(fn func(doneCells int64, rate float64)) { c.progress = fn }

// SetFilterMetrics attaches the prefilter bundle for master-side savings
// accounting.
func (c *Core) SetFilterMetrics(m *prefilter.Metrics) { c.fmet = m }

// FilterStats returns the filtered pipeline's accounting so far (zero for
// full-scan jobs). Stats reset on checkpoint restore: they describe this
// incarnation's observed traffic, not recomputed history.
func (c *Core) FilterStats() FilterStats { return c.fstats }

// RestoreCore rebuilds a protocol core from a checkpoint snapshot. The
// same queries (in the same order) must be supplied — the checkpoint
// carries only scheduling state, not sequence data — and are verified
// against the snapshot. Finished tasks keep their results; everything else
// re-runs.
func RestoreCore(snap *sched.Snapshot, queries []*seq.Sequence, sc sched.Config, events *metrics.EventLog) (*Core, error) {
	// The first len(queries) tasks are the per-query seeds and must match
	// the query list in order; a filtered job's checkpoint additionally
	// carries the rescore tasks appended before the snapshot, which only
	// need a known query.
	if len(snap.Tasks) < len(queries) {
		return nil, fmt.Errorf("master: checkpoint has %d tasks but %d queries were supplied",
			len(snap.Tasks), len(queries))
	}
	filtered := false
	for i, t := range snap.Tasks[:len(queries)] {
		if t.QueryID != queries[i].ID {
			return nil, fmt.Errorf("master: checkpoint task %d is %q but query %d is %q",
				i, t.QueryID, i, queries[i].ID)
		}
		if t.Kind == sched.TaskPrefilter {
			filtered = true
		}
	}
	if !filtered && len(snap.Tasks) != len(queries) {
		return nil, fmt.Errorf("master: checkpoint has %d tasks but %d queries were supplied",
			len(snap.Tasks), len(queries))
	}
	known := map[string]bool{}
	for _, q := range queries {
		known[q.ID] = true
	}
	for i, t := range snap.Tasks[len(queries):] {
		if t.Kind != sched.TaskRescore {
			return nil, fmt.Errorf("master: checkpoint task %d is an appended %s task; only rescore tasks grow mid-job",
				len(queries)+i, t.Kind)
		}
		if !known[t.QueryID] {
			return nil, fmt.Errorf("master: checkpoint task %d references unknown query %q", len(queries)+i, t.QueryID)
		}
	}
	c := &Core{
		queries:       queries,
		queryByID:     make(map[string]*seq.Sequence, len(queries)),
		qorder:        make(map[string]int, len(queries)),
		coord:         sched.Restore(snap, sc),
		events:        events,
		pendingCancel: map[sched.SlaveID][]sched.TaskID{},
		filtered:      filtered,
	}
	for i, q := range queries {
		c.queryByID[q.ID] = q
		c.qorder[q.ID] = i
	}
	if filtered {
		c.fstats.Queries = len(queries)
		// Reconstruct derived config from the seed tasks: the snapshot
		// stores scheduling state, not the job's Config.
		c.dbResidues = snap.Tasks[0].Cells / sched.PrefilterEquivCells
		// A crash between accepting a prefilter result and the rescore
		// completing leaves a query without a finished rescore task. The
		// windows ride in the prefilter result's payload, so the missing
		// stage is re-created here; duplicates are impossible because
		// AddTasks happened in the same dispatch step as the acceptance.
		haveRescore := map[string]bool{}
		for _, t := range snap.Tasks[len(queries):] {
			haveRescore[t.QueryID] = true
		}
		pool := c.coord.Pool()
		for id := 0; id < len(queries); id++ {
			tid := sched.TaskID(id)
			if pool.StateOf(tid) != sched.Finished || haveRescore[pool.Task(tid).QueryID] {
				continue
			}
			windows, _ := c.resultPayload(tid).([]sched.Window)
			c.appendRescore(pool.Task(tid).QueryID, windows)
		}
	} else if len(queries) > 0 {
		c.dbResidues = snap.Tasks[0].Cells / int64(queries[0].Len())
	}
	// A job restored already-done never emits a completion summary: the
	// incarnation that finished it did (or died trying).
	c.finished = c.coord.Done()
	return c, nil
}

// resultPayload fetches a finished task's stored payload, nil if absent.
func (c *Core) resultPayload(tid sched.TaskID) any {
	for _, r := range c.coord.Results() {
		if r.Task == tid {
			return r.Payload
		}
	}
	return nil
}

// Dispatch is the single protocol entry point: it applies one request
// envelope at virtual or wall time now and returns the response. Malformed
// messages (unknown slave or task IDs) get an error envelope instead of
// crashing the server: the master faces the network.
func (c *Core) Dispatch(req wire.Envelope, now time.Duration) wire.Envelope {
	badSlave := func(id sched.SlaveID) bool {
		return id < 0 || int(id) >= c.coord.Slaves()
	}
	badTask := func(id sched.TaskID) bool {
		return id < 0 || int(id) >= c.coord.Pool().Len()
	}
	// deadSlave answers a lease-expired or disconnected slave with an
	// explicit error so a hung-then-recovered slave learns its ID is gone
	// and re-registers for a fresh one instead of polling forever.
	deadSlave := func(id sched.SlaveID) *wire.Envelope {
		if !c.coord.Dead(id) {
			return nil
		}
		return &wire.Envelope{Error: fmt.Sprintf("slave %d expired; re-register", id)}
	}
	switch {
	case req.Register != nil:
		id := c.coord.Register(sched.SlaveInfo{
			Name:          req.Register.Name,
			Kind:          req.Register.Kind,
			DeclaredSpeed: req.Register.DeclaredSpeed,
			Caps:          req.Register.Caps,
		}, now)
		return wire.Envelope{RegisterAck: &wire.RegisterAckMsg{Slave: id}}

	case req.Request != nil:
		if badSlave(req.Request.Slave) {
			return wire.Envelope{Error: fmt.Sprintf("unknown slave %d", req.Request.Slave)}
		}
		if e := deadSlave(req.Request.Slave); e != nil {
			return *e
		}
		if c.coord.Done() {
			return wire.Envelope{Assign: &wire.AssignMsg{Done: true}}
		}
		tasks, replica := c.coord.RequestWork(req.Request.Slave, now)
		if len(tasks) == 0 {
			return wire.Envelope{Assign: &wire.AssignMsg{Standby: true, Done: c.coord.Done()}}
		}
		if c.events != nil {
			ids := make([]int, len(tasks))
			for i, t := range tasks {
				ids[i] = int(t.ID)
			}
			_ = c.events.Emit(metrics.Event{
				Kind: metrics.EventAssign, TimeSec: now.Seconds(),
				PE: c.slaveName(req.Request.Slave), Tasks: ids, Replica: replica,
			})
		}
		specs := make([]wire.TaskSpec, len(tasks))
		for i, t := range tasks {
			specs[i] = wire.TaskSpec{
				ID:       t.ID,
				QueryID:  t.QueryID,
				Residues: c.queryFor(t).Residues,
				Cells:    t.Cells,
				TaskKind: t.Kind,
			}
			switch t.Kind {
			case sched.TaskPrefilter:
				f := c.filter
				specs[i].Filter = &f
			case sched.TaskRescore:
				specs[i].Windows = t.Windows
			case sched.TaskSW:
				// Query and cells alone describe a full scan.
			}
		}
		return wire.Envelope{Assign: &wire.AssignMsg{Tasks: specs, Replica: replica}}

	case req.Progress != nil:
		if badSlave(req.Progress.Slave) {
			return wire.Envelope{Error: fmt.Sprintf("unknown slave %d", req.Progress.Slave)}
		}
		if e := deadSlave(req.Progress.Slave); e != nil {
			return *e
		}
		c.coord.ProgressRate(req.Progress.Slave, req.Progress.Rate, req.Progress.Cells, now)
		// Preemption piggybacks on the progress heartbeat: a replicated copy
		// this slave holds may be revoked in favor of higher-priority or
		// underserved-tenant ready work, delivered through the same cancel
		// channel replica cancellations use. Sole copies are never revoked
		// (sched.Coordinator.Preempt guarantees a surviving executor).
		if victims := c.coord.Preempt(req.Progress.Slave, now); len(victims) > 0 {
			c.pendingCancel[req.Progress.Slave] = append(c.pendingCancel[req.Progress.Slave], victims...)
		}
		if c.progress != nil {
			c.progress(c.coord.Pool().FinishedCells(), req.Progress.Rate)
		}
		if c.events != nil {
			_ = c.events.Emit(metrics.Event{
				Kind: metrics.EventSample, TimeSec: now.Seconds(),
				PE: c.slaveName(req.Progress.Slave), GCUPS: req.Progress.Rate / 1e9,
			})
		}
		return wire.Envelope{ProgressAck: &wire.ProgressAckMsg{
			Cancel: c.takeCancels(req.Progress.Slave),
			Done:   c.coord.Done(),
		}}

	case req.Complete != nil:
		if badSlave(req.Complete.Slave) {
			return wire.Envelope{Error: fmt.Sprintf("unknown slave %d", req.Complete.Slave)}
		}
		if badTask(req.Complete.Task) {
			return wire.Envelope{Error: fmt.Sprintf("unknown task %d", req.Complete.Task)}
		}
		if e := deadSlave(req.Complete.Slave); e != nil {
			return *e
		}
		// Capture the executor's start time before CompleteWork clears it,
		// so the exec event carries the full occupancy window.
		var startAt time.Duration
		if c.events != nil {
			if st, ok := c.coord.Pool().Executors(req.Complete.Task)[req.Complete.Slave]; ok {
				startAt = st
			}
		}
		task := c.coord.Pool().Task(req.Complete.Task)
		// A prefilter task's result is its candidate windows, not hits;
		// storing them as the payload makes checkpoints carry everything
		// needed to reconstruct the missing rescore stage.
		payload := any(req.Complete.Hits)
		if task.Kind == sched.TaskPrefilter {
			payload = req.Complete.Windows
		}
		accepted, canceledSlaves := c.coord.CompleteWork(req.Complete.Slave, req.Complete.Task,
			payload, req.Complete.Cells, req.Complete.Rate, now)
		for _, o := range canceledSlaves {
			c.pendingCancel[o] = append(c.pendingCancel[o], req.Complete.Task)
		}
		if accepted && c.progress != nil {
			c.progress(c.coord.Pool().FinishedCells(), req.Complete.Rate)
		}
		if accepted && c.events != nil {
			_ = c.events.Emit(metrics.Event{
				Kind: metrics.EventExec, PE: c.slaveName(req.Complete.Slave),
				Task: int(req.Complete.Task), TimeSec: startAt.Seconds(),
				EndSec: now.Seconds(), Completed: true,
			})
		}
		if accepted && task.Kind != sched.TaskSW {
			c.completeStage(task, req.Complete, now)
		}
		if c.coord.Done() && !c.finished {
			c.finished = true
			c.emitSummary(now)
		}
		return wire.Envelope{CompleteAck: &wire.CompleteAckMsg{
			Accepted: accepted,
			Cancel:   c.takeCancels(req.Complete.Slave),
			Done:     c.coord.Done(),
		}}

	default:
		return wire.Envelope{Error: "unknown message"}
	}
}

// queryFor resolves a task's query sequence. Seed tasks keep the
// historical task-index identity (NewPool renumbers IDs to indices);
// appended rescore tasks resolve through the query identifier.
func (c *Core) queryFor(t sched.Task) *seq.Sequence {
	if int(t.ID) < len(c.queries) {
		return c.queries[t.ID]
	}
	return c.queryByID[t.QueryID]
}

// completeStage handles the filtered-pipeline bookkeeping of one accepted
// non-SW completion: stats, the stage trace event, the per-stage progress
// hook, and — for prefilter tasks — appending the query's rescore task.
// It runs inside Dispatch, so the rescore task joins the pool in the same
// single-threaded step that accepted the prefilter result: the pool is
// never transiently Done between the stages.
func (c *Core) completeStage(task sched.Task, msg *wire.CompleteMsg, now time.Duration) {
	ev := metrics.Event{
		Kind: metrics.EventStage, TimeSec: now.Seconds(),
		PE: c.slaveName(msg.Slave), Task: int(task.ID), Stage: task.Kind.String(),
	}
	switch task.Kind {
	case sched.TaskPrefilter:
		c.fstats.PrefilterDone++
		c.fstats.ResiduesScanned += msg.Scanned
		c.fstats.CandidateResidues += msg.Candidates
		c.fstats.Windows += len(msg.Windows)
		ev.Windows = len(msg.Windows)
		if msg.Scanned > 0 {
			ev.Selectivity = float64(msg.Candidates) / float64(msg.Scanned)
		}
		c.appendRescore(task.QueryID, msg.Windows)
		if c.stageProgress != nil {
			c.stageProgress("prefilter", int64(c.fstats.PrefilterDone), int64(len(c.queries)))
		}
	case sched.TaskRescore:
		c.fstats.RescoreDone++
		c.fstats.RescoredCells += task.Cells
		full := int64(c.queryFor(task).Len()) * c.dbResidues
		c.fstats.FullScanCells += full
		c.fmet.ObserveSaved(full, task.Cells)
		if c.stageProgress != nil {
			c.stageProgress("rescore", int64(c.fstats.RescoreDone), int64(len(c.queries)))
		}
	case sched.TaskSW:
		return
	}
	if c.events != nil {
		_ = c.events.Emit(ev)
	}
}

// appendRescore grows the pool with the rescore task that consumes a
// finished prefilter's windows. A windowless prefilter still appends a
// (1-cell) rescore task so every query's result keeps the full hit-list
// shape — one entry per database sequence, score 0 where nothing was
// admitted — and ranks like a full scan that found nothing.
func (c *Core) appendRescore(queryID string, windows []sched.Window) {
	q := c.queryByID[queryID]
	cells := prefilter.CellsFor(q.Len(), windows)
	if cells < 1 {
		cells = 1
	}
	c.coord.AddTasks([]sched.Task{{
		QueryID: queryID,
		Kind:    sched.TaskRescore,
		Cells:   cells,
		Windows: windows,
	}})
}

// SlaveGone records a dropped connection: the slave's tasks return to the
// pool (the paper's future-work scenario of nodes leaving mid-run). It
// reports whether the slave was newly declared dead, so drivers can count
// deaths without double-counting lease expiries.
func (c *Core) SlaveGone(id sched.SlaveID) bool {
	if id < 0 || int(id) >= c.coord.Slaves() {
		return false
	}
	if c.coord.Dead(id) {
		return false
	}
	c.coord.SlaveDied(id)
	return true
}

// Expire drives the coordinator's lease-based failure detector.
func (c *Core) Expire(now, lease time.Duration) []sched.SlaveID {
	return c.coord.Expire(now, lease)
}

// Done reports whether every task has a result.
func (c *Core) Done() bool { return c.coord.Done() }

// Coordinator exposes the scheduling state for reports and invariant
// checks. Callers must respect the driver's locking discipline.
func (c *Core) Coordinator() *sched.Coordinator { return c.coord }

// Snapshot captures the job's durable state (task set + collected
// results).
func (c *Core) Snapshot() *sched.Snapshot { return c.coord.Snapshot() }

// Results merges and returns the per-query outcomes, in query order.
func (c *Core) Results() []QueryResult {
	raw := c.coord.Results()
	out := make([]QueryResult, 0, len(raw))
	replicas := map[sched.TaskID]int{}
	for _, a := range c.coord.AssignmentLog() {
		if a.Replica {
			for _, t := range a.Tasks {
				replicas[t]++
			}
		}
	}
	for _, r := range raw {
		// A prefilter result is an intermediate stage (its payload is the
		// candidate windows); the query's reportable outcome is its
		// rescore task.
		if c.coord.Pool().Task(r.Task).Kind == sched.TaskPrefilter {
			continue
		}
		qr := QueryResult{
			Query:    r.QueryID,
			Slave:    r.Slave,
			Elapsed:  r.At,
			Replicas: replicas[r.Task],
		}
		if hits, ok := r.Payload.([]wire.Hit); ok {
			qr.Hits = append(qr.Hits, hits...)
			wire.SortHits(qr.Hits)
		}
		out = append(out, qr)
	}
	if c.filtered {
		// Rescore task IDs follow prefilter completion order, not query
		// order; restore the submitted order for the merge step.
		sort.SliceStable(out, func(i, j int) bool { return c.qorder[out[i].Query] < c.qorder[out[j].Query] })
	}
	return out
}

// slaveName is the event-stream PE label for a slave: its registered name,
// or a synthetic one when it registered anonymously. IDs outside the
// current slave table are possible after a checkpoint restore — results
// restored from the snapshot credit slaves of the previous incarnation,
// whose registrations were deliberately not captured.
func (c *Core) slaveName(id sched.SlaveID) string {
	if id >= 0 && int(id) < c.coord.Slaves() {
		if name := c.coord.SlaveInfoOf(id).Name; name != "" {
			return name
		}
	}
	return fmt.Sprintf("slave%d", int(id))
}

// emitSummary closes the event stream with per-slave and overall summary
// lines, mirroring platform.WriteTrace's trailer. Per-slave lines are
// ordered by slave ID so the stream is deterministic — the simulator
// asserts byte-identical logs across reruns of a seed.
func (c *Core) emitSummary(now time.Duration) {
	if c.events == nil {
		return
	}
	won := map[sched.SlaveID]int{}
	var cells int64
	for _, r := range c.coord.Results() {
		won[r.Slave]++
		cells += c.coord.Pool().Task(r.Task).Cells
	}
	ids := make([]sched.SlaveID, 0, len(won))
	for id := range won {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		_ = c.events.Emit(metrics.Event{Kind: metrics.EventSummary, PE: c.slaveName(id), TasksWon: won[id]})
	}
	overall := metrics.Event{Kind: metrics.EventSummary, MakespanSec: now.Seconds(), CellsDone: cells}
	if now > 0 {
		overall.TotalGCUPS = float64(cells) / now.Seconds() / 1e9
	}
	_ = c.events.Emit(overall)
}

// takeCancels pops the queued cancellations for a slave.
func (c *Core) takeCancels(id sched.SlaveID) []sched.TaskID {
	out := c.pendingCancel[id]
	delete(c.pendingCancel, id)
	return out
}
