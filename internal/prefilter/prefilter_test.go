package prefilter

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
)

const protein = "ACDEFGHIKLMNPQRSTVWY"

func randomResidues(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = protein[rng.Intn(len(protein))]
	}
	return out
}

// plantDB builds a random database and embeds the query verbatim into the
// chosen sequences, returning the database.
func plantDB(rng *rand.Rand, nseqs, seqLen int, query []byte, into []int) []*seq.Sequence {
	db := make([]*seq.Sequence, nseqs)
	planted := map[int]bool{}
	for _, i := range into {
		planted[i] = true
	}
	for i := range db {
		res := randomResidues(rng, seqLen)
		if planted[i] {
			at := rng.Intn(seqLen - len(query))
			copy(res[at:], query)
		}
		db[i] = seq.New("s"+string(rune('A'+i)), "", res)
	}
	return db
}

func TestRunFindsPlantedQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	query := randomResidues(rng, 40)
	db := plantDB(rng, 8, 400, query, []int{2, 5})
	res, err := Run(query, db, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	covered := map[int]bool{}
	for _, w := range res.Windows {
		covered[w.Seq] = true
		if w.Start < 0 || w.End > db[w.Seq].Len() || w.Start >= w.End {
			t.Fatalf("invalid window %+v for sequence of length %d", w, db[w.Seq].Len())
		}
	}
	if !covered[2] || !covered[5] {
		t.Fatalf("planted sequences not covered; windows %v", res.Windows)
	}
	if res.Stats.SeedHits == 0 || res.Stats.Windows == 0 || res.Stats.Patterns == 0 {
		t.Fatalf("stats not accounted: %+v", res.Stats)
	}
	if res.Stats.ResiduesScanned != res.Stats.TotalResidues || res.Stats.TotalResidues != 8*400 {
		t.Fatalf("residue accounting wrong: %+v", res.Stats)
	}
	if sel := res.Stats.Selectivity(); sel <= 0 || sel >= 1 {
		t.Fatalf("selectivity %v not in (0,1) on a selective query", sel)
	}
}

// TestFilteredRankingMatchesFullScan is the package-level form of the
// acceptance criterion: when the prefilter admits every hit's alignment
// window, rescored per-sequence scores are identical to the full scan's.
func TestFilteredRankingMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	scheme := score.DefaultProtein()
	query := randomResidues(rng, 48)
	db := plantDB(rng, 12, 600, query, []int{0, 4, 9})
	res, err := Run(query, db, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRescorer(query, scheme)
	if err != nil {
		t.Fatal(err)
	}
	filtered, cells, err := r.Rescore(db, res.Windows)
	if err != nil {
		t.Fatal(err)
	}
	var fullCells int64
	for i, d := range db {
		full := sw.Score(query, d.Residues, scheme)
		fullCells += sw.Cells(len(query), d.Len())
		// Planted sequences must agree exactly; unplanted sequences may
		// score lower under the filter (their weak best alignment can fall
		// outside every window), which reorders nothing above the noise.
		if planted := i == 0 || i == 4 || i == 9; planted && filtered[i] != full {
			t.Fatalf("sequence %d: filtered score %d != full %d", i, filtered[i], full)
		} else if filtered[i] > full {
			t.Fatalf("sequence %d: filtered score %d exceeds full-scan %d", i, filtered[i], full)
		}
	}
	if cells <= 0 || cells >= fullCells {
		t.Fatalf("rescored cells %d not strictly below full-scan cells %d", cells, fullCells)
	}
	if got := CellsFor(len(query), res.Windows); got != cells {
		t.Fatalf("CellsFor = %d, Rescore computed %d", got, cells)
	}
}

func TestMergeWindows(t *testing.T) {
	in := []sched.Window{{Seq: 0, Start: 50, End: 90}, {Seq: 0, Start: 10, End: 40}, {Seq: 0, Start: 30, End: 60}, {Seq: 0, Start: 90, End: 95}}
	got := mergeWindows(in)
	want := []sched.Window{{Seq: 0, Start: 10, End: 95}}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("mergeWindows = %v, want %v", got, want)
	}
	disjoint := []sched.Window{{Seq: 0, Start: 0, End: 5}, {Seq: 0, Start: 6, End: 9}}
	if got := mergeWindows(disjoint); len(got) != 2 {
		t.Fatalf("disjoint windows merged: %v", got)
	}
}

func TestShortQueryClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	query := []byte("WWW") // shorter than DefaultK
	db := plantDB(rng, 3, 100, query, []int{1})
	res, err := Run(query, db, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range res.Windows {
		if w.Seq == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("3-residue query missed its planted copy; windows %v", res.Windows)
	}
	if _, err := Run(nil, db, Spec{}); err != nil {
		t.Fatalf("empty query errored: %v", err)
	}
}

func TestSeedStrideHonorsMaxPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	query := randomResidues(rng, 5000)
	spec := Spec{MaxPatterns: 64}.Normalize()
	pats, offs := compileSeeds(query, spec)
	if len(pats) > 64 {
		t.Fatalf("%d patterns exceed cap 64", len(pats))
	}
	if len(pats) == 0 {
		t.Fatal("no seeds compiled")
	}
	total := 0
	for i, po := range offs {
		total += len(po)
		for _, off := range po {
			if string(query[off:int(off)+spec.K]) != string(pats[i]) {
				t.Fatalf("offset %d does not hold pattern %q", off, pats[i])
			}
		}
	}
	if total > 64 {
		t.Fatalf("%d seed instances exceed cap", total)
	}
}

func TestValidateWindows(t *testing.T) {
	db := []*seq.Sequence{seq.New("a", "", []byte("ACGTACGT"))}
	bad := [][]sched.Window{
		{{Seq: 1, Start: 0, End: 4}},
		{{Seq: -1, Start: 0, End: 4}},
		{{Seq: 0, Start: -1, End: 4}},
		{{Seq: 0, Start: 0, End: 9}},
		{{Seq: 0, Start: 4, End: 4}},
	}
	for i, ws := range bad {
		if err := ValidateWindows(ws, db); err == nil {
			t.Fatalf("case %d: invalid window %v accepted", i, ws[0])
		}
	}
	if err := ValidateWindows([]sched.Window{{Seq: 0, Start: 0, End: 8}}, db); err != nil {
		t.Fatalf("valid window rejected: %v", err)
	}
}

func TestSpecNormalize(t *testing.T) {
	n := Spec{}.Normalize()
	if n.K != DefaultK || n.Margin != DefaultMargin || n.MaxPatterns != DefaultMaxPatterns || n.Step != 1 {
		t.Fatalf("zero Spec normalized to %+v", n)
	}
	if m := (Spec{Margin: -1}).Normalize().Margin; m != 0 {
		t.Fatalf("negative margin normalized to %d, want 0", m)
	}
	if m := (Spec{Margin: 7}).Normalize().Margin; m != 7 {
		t.Fatalf("explicit margin normalized to %d, want 7", m)
	}
}

func TestMetricsObserve(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	m.Observe(Stats{Patterns: 3, ResiduesScanned: 100, Windows: 2, CandidateResidues: 25, TotalResidues: 100})
	if got := m.PatternsCompiled.Value(); got != 3 {
		t.Fatalf("patterns counter = %v", got)
	}
	if got := m.Selectivity.Count(); got != 1 {
		t.Fatalf("selectivity observations = %d", got)
	}
	m.ObserveSaved(1000, 100)
	m.ObserveSaved(100, 1000) // clamped, must not panic or go negative
	if got := m.RescoreCellsSaved.Value(); got != 900 {
		t.Fatalf("cells saved = %v, want 900", got)
	}
	// Nil bundle: every observation is a no-op.
	var nilM *Metrics
	nilM.Observe(Stats{})
	nilM.ObserveSaved(10, 1)
}
