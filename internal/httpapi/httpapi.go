// Package httpapi exposes the hybrid search engine as a small REST service
// (cmd/swserve): a database is loaded at startup and queries are submitted
// over HTTP, making the task execution environment usable from any
// language. JSON in, JSON out, stdlib only.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	hybridsw "repro"
	"repro/internal/fasta"
	"repro/internal/seq"
	"repro/internal/stats"
)

// Server serves search requests against one resident database.
type Server struct {
	db       []*seq.Sequence
	dbName   string
	residues int64
	platform hybridsw.Platform
	started  time.Time
}

// New builds a server over a database with a default platform configuration
// (individual request fields can override parts of it).
func New(dbName string, db []*seq.Sequence, platform hybridsw.Platform) (*Server, error) {
	if len(db) == 0 {
		return nil, fmt.Errorf("httpapi: empty database")
	}
	s := &Server{db: db, dbName: dbName, platform: platform, started: time.Now()}
	for _, d := range db {
		s.residues += int64(d.Len())
	}
	return s, nil
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /database", s.handleDatabase)
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("POST /align", s.handleAlign)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleDatabase(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"name":      s.dbName,
		"sequences": len(s.db),
		"residues":  s.residues,
	})
}

// SearchRequest is the POST /search payload.
type SearchRequest struct {
	// QueriesFasta holds one or more FASTA records.
	QueriesFasta string `json:"queries_fasta"`
	TopK         int    `json:"top_k,omitempty"`
	Policy       string `json:"policy,omitempty"`
	Align        bool   `json:"align,omitempty"`
}

// SearchHit is one reported hit.
type SearchHit struct {
	SeqID  string   `json:"seq_id"`
	Score  int      `json:"score"`
	EValue *float64 `json:"evalue,omitempty"`

	QueryRow  string `json:"query_row,omitempty"`
	TargetRow string `json:"target_row,omitempty"`
}

// SearchResult is one query's outcome.
type SearchResult struct {
	Query string      `json:"query"`
	Hits  []SearchHit `json:"hits"`
}

// SearchResponse is the POST /search reply.
type SearchResponse struct {
	Results  []SearchResult `json:"results"`
	Elapsed  float64        `json:"elapsed_s"`
	GCUPS    float64        `json:"gcups"`
	Database string         `json:"database"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	queries, err := fasta.NewReader(strings.NewReader(req.QueriesFasta)).ReadAll()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "queries_fasta: %v", err)
		return
	}
	if len(queries) == 0 {
		writeErr(w, http.StatusBadRequest, "queries_fasta contains no sequences")
		return
	}
	p := s.platform
	if req.TopK > 0 {
		p.TopK = req.TopK
	}
	if req.Policy != "" {
		p.Policy = req.Policy
	}
	p.AlignBest = req.Align

	rep, err := hybridsw.Search(queries, s.db, p)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "search: %v", err)
		return
	}
	scheme := p.Scheme
	if scheme.Matrix == nil {
		scheme = hybridsw.DefaultScheme()
	}
	params, haveStats := stats.Lookup(scheme)
	queryLen := map[string]int{}
	for _, q := range queries {
		queryLen[q.ID] = q.Len()
	}
	resp := SearchResponse{
		Elapsed:  rep.Elapsed.Seconds(),
		GCUPS:    rep.GCUPS(),
		Database: s.dbName,
	}
	for _, qr := range rep.PerQuery {
		res := SearchResult{Query: qr.Query}
		for _, h := range qr.Hits {
			hit := SearchHit{SeqID: h.SeqID, Score: h.Score}
			if haveStats {
				e := params.EValue(h.Score, queryLen[qr.Query], s.residues)
				hit.EValue = &e
			}
			if len(h.QueryRow) > 0 {
				hit.QueryRow = string(h.QueryRow)
				hit.TargetRow = string(h.TargetRow)
			}
			res.Hits = append(res.Hits, hit)
		}
		resp.Results = append(resp.Results, res)
	}
	writeJSON(w, http.StatusOK, resp)
}

// AlignRequest is the POST /align payload: two literal sequences.
type AlignRequest struct {
	A      string `json:"a"`
	B      string `json:"b"`
	Global bool   `json:"global,omitempty"`
}

// AlignResponse is the POST /align reply.
type AlignResponse struct {
	Score     int     `json:"score"`
	Identity  float64 `json:"identity"`
	QueryRow  string  `json:"query_row"`
	TargetRow string  `json:"target_row"`
}

func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	var req AlignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.A == "" || req.B == "" {
		writeErr(w, http.StatusBadRequest, "both a and b are required")
		return
	}
	scheme := hybridsw.DefaultScheme()
	a := hybridsw.Align([]byte(strings.ToUpper(req.A)), []byte(strings.ToUpper(req.B)), scheme)
	writeJSON(w, http.StatusOK, AlignResponse{
		Score:     a.Score,
		Identity:  a.Identity(),
		QueryRow:  string(a.QueryRow),
		TargetRow: string(a.TargetRow),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
