package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckAnalyzer flags statement-position calls whose results include an
// error that is silently dropped. It is a "lite" errcheck: only plain
// expression statements are considered (deferred Close calls and
// goroutine launches follow their own conventions), and the classic
// cannot-fail sinks are exempt — fmt.Print*/Fprint* (the repo's errWriter
// pattern makes these deliberate) and methods on strings.Builder and
// bytes.Buffer, whose errors are documented to be always nil. An explicit
// `_ = f()` is an acknowledged discard and is never flagged; that is the
// idiomatic fix where ignoring the error is correct, e.g. rendering
// metrics into an http.ResponseWriter.
var ErrcheckAnalyzer = &Analyzer{
	Name: "errcheck",
	Doc:  "error results must be checked or explicitly discarded with _ =",
	Run:  runErrcheck,
}

func runErrcheck(pass *Pass) {
	info := pass.Pkg.Info
	pass.Pkg.WalkStack(func(n ast.Node, _ []ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := info.Types[call]
		if !ok || !resultHasError(tv.Type) {
			return true
		}
		if exemptCallee(info, call) {
			return true
		}
		pass.Reportf(call.Pos(), "%s returns an error that is silently dropped (check it or discard with _ =)",
			calleeName(info, call))
		return true
	})
}

// resultHasError reports whether a call's result type includes error.
func resultHasError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// exemptCallee reports whether the call target is on the cannot-fail
// exemption list.
func exemptCallee(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	// bufio.Writer keeps a sticky error that the mandatory trailing Flush
	// (whose error IS checked) reports, so intermediate writes are exempt.
	return (pkg == "strings" && name == "Builder") ||
		(pkg == "bytes" && name == "Buffer") ||
		(pkg == "bufio" && name == "Writer")
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeName renders the call target for diagnostics.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	return types.ExprString(call.Fun)
}
