// Package score provides substitution matrices and gap-penalty models for
// biological sequence comparison.
//
// A pairwise alignment is scored column by column: a substitution score for
// two aligned residues (match/mismatch for nucleotides, a matrix entry such
// as BLOSUM62 for proteins), plus penalties for gaps. The package supports
// both the linear gap model of the original Smith-Waterman algorithm (every
// gap residue costs g) and the affine model of Gotoh (the first gap residue
// costs GapOpen+GapExtend, each following one GapExtend), which reflects
// that in nature gaps tend to occur together.
package score

import (
	"fmt"

	"repro/internal/seq"
)

// Matrix is a residue substitution matrix over an alphabet. Scores are
// indexed by the dense residue indices of the alphabet.
type Matrix struct {
	name     string
	alphabet *seq.Alphabet
	scores   [][]int // scores[i][j], square, Size x Size
	max, min int
}

// NewMatrix wraps a square score table defined over alphabet a. The table is
// not copied; callers must not mutate it afterwards.
func NewMatrix(name string, a *seq.Alphabet, scores [][]int) (*Matrix, error) {
	n := a.Size()
	if len(scores) != n {
		return nil, fmt.Errorf("score: %s: %d rows for alphabet of size %d", name, len(scores), n)
	}
	m := &Matrix{name: name, alphabet: a, scores: scores}
	m.max, m.min = scores[0][0], scores[0][0]
	for i, row := range scores {
		if len(row) != n {
			return nil, fmt.Errorf("score: %s: row %d has %d columns, want %d", name, i, len(row), n)
		}
		for _, v := range row {
			if v > m.max {
				m.max = v
			}
			if v < m.min {
				m.min = v
			}
		}
	}
	return m, nil
}

// NewMatchMismatch builds the simple nucleotide scorer of the paper's Fig. 1:
// punctuation ma for identical residues, penalty mi otherwise.
func NewMatchMismatch(a *seq.Alphabet, ma, mi int) *Matrix {
	n := a.Size()
	scores := make([][]int, n)
	for i := range scores {
		scores[i] = make([]int, n)
		for j := range scores[i] {
			if i == j {
				scores[i][j] = ma
			} else {
				scores[i][j] = mi
			}
		}
	}
	m, err := NewMatrix(fmt.Sprintf("match%+d/mismatch%+d", ma, mi), a, scores)
	if err != nil {
		panic(err) // impossible: table is square by construction
	}
	return m
}

// Name returns the matrix name (e.g. "BLOSUM62").
func (m *Matrix) Name() string { return m.name }

// Alphabet returns the alphabet the matrix is defined over.
func (m *Matrix) Alphabet() *seq.Alphabet { return m.alphabet }

// Score returns the substitution score of residue letters a vs b.
// Residues outside the alphabet score the matrix minimum, so malformed
// input degrades instead of crashing the dynamic programming kernels.
func (m *Matrix) Score(a, b byte) int {
	i, j := m.alphabet.Index(a), m.alphabet.Index(b)
	if i < 0 || j < 0 {
		return m.min
	}
	return m.scores[i][j]
}

// ScoreIndex returns the substitution score for dense residue indices.
func (m *Matrix) ScoreIndex(i, j byte) int { return m.scores[i][j] }

// Max returns the largest score in the matrix.
func (m *Matrix) Max() int { return m.max }

// Min returns the smallest score in the matrix.
func (m *Matrix) Min() int { return m.min }

// Row returns the score row for dense residue index i.
func (m *Matrix) Row(i int) []int { return m.scores[i] }

// IsSymmetric reports whether scores[i][j] == scores[j][i] for all residues,
// which holds for every standard substitution matrix.
func (m *Matrix) IsSymmetric() bool {
	for i := range m.scores {
		for j := i + 1; j < len(m.scores); j++ {
			if m.scores[i][j] != m.scores[j][i] {
				return false
			}
		}
	}
	return true
}

// Gap describes gap penalties. Penalties are stored as non-negative
// magnitudes and subtracted by the alignment kernels.
//
// Linear model (IsAffine() == false): a run of k gap residues costs
// k*Extend. Affine (Gotoh) model: the run costs Open + k*Extend.
type Gap struct {
	Open   int // penalty charged once when a gap is opened; 0 means linear
	Extend int // penalty charged for every gap residue
}

// LinearGap returns the linear model where each gap residue costs g.
func LinearGap(g int) Gap { return Gap{Open: 0, Extend: g} }

// AffineGap returns the affine (Gotoh) model.
func AffineGap(open, extend int) Gap { return Gap{Open: open, Extend: extend} }

// IsAffine reports whether opening a gap costs extra.
func (g Gap) IsAffine() bool { return g.Open != 0 }

// Cost returns the total penalty of a gap run of length k (k >= 1).
func (g Gap) Cost(k int) int {
	if k <= 0 {
		return 0
	}
	return g.Open + k*g.Extend
}

// Validate checks the penalties are usable by the DP kernels.
func (g Gap) Validate() error {
	if g.Open < 0 || g.Extend <= 0 {
		return fmt.Errorf("score: invalid gap penalties open=%d extend=%d (want open >= 0, extend > 0)", g.Open, g.Extend)
	}
	return nil
}

func (g Gap) String() string {
	if g.IsAffine() {
		return fmt.Sprintf("affine(open=%d, extend=%d)", g.Open, g.Extend)
	}
	return fmt.Sprintf("linear(g=%d)", g.Extend)
}

// Scheme bundles a substitution matrix with gap penalties — everything a
// Smith-Waterman kernel needs to score alignments.
type Scheme struct {
	Matrix *Matrix
	Gap    Gap
}

// DefaultProtein is the scheme used throughout the paper's evaluation:
// BLOSUM62 with gap open 10, gap extend 2 (the CUDASW++ 2.0 default).
func DefaultProtein() Scheme {
	return Scheme{Matrix: BLOSUM62, Gap: AffineGap(10, 2)}
}

// DefaultDNA is the Fig. 1 scheme: match +1, mismatch -1, linear gap 2.
func DefaultDNA() Scheme {
	return Scheme{Matrix: NewMatchMismatch(seq.DNA, 1, -1), Gap: LinearGap(2)}
}

// Validate checks the scheme is internally consistent.
func (s Scheme) Validate() error {
	if s.Matrix == nil {
		return fmt.Errorf("score: scheme has no substitution matrix")
	}
	return s.Gap.Validate()
}
