package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// LeakcheckAnalyzer is the static complement of the sim harness's
// starvation probes: every `go` statement in the long-lived packages —
// master, slave, sched, jobs, httpapi, wire — must spawn a goroutine
// that can terminate. The check builds the goroutine body's CFG and
// verifies that from every block reachable from entry the synthetic Exit
// block is still reachable: a `for {}` with no break/return, or a loop
// whose only exits are panics, is a goroutine the process can never
// join, and it is reported at the `go` statement.
//
// Bodies it cannot see — a goroutine running a function declared in
// another package — are reported too: termination must be auditable
// where the goroutine is spawned. A second rule catches the classic
// abandoned-sender leak: a goroutine sending on an unbuffered channel
// created in the spawning function, where every receive sits behind a
// multi-way select, blocks forever once the receiver takes another
// case; the send must be buffered or wrapped in its own select.
var LeakcheckAnalyzer = &Analyzer{
	Name: "leakcheck",
	Doc:  "goroutines in long-lived packages need a reachable termination path",
	Run:  runLeakcheck,
}

// leakScopes are the package path segments leakcheck applies to.
var leakScopes = []string{
	"internal/master", "internal/slave", "internal/sched",
	"internal/jobs", "internal/httpapi", "internal/wire",
	"internal/cluster",
}

func runLeakcheck(pass *Pass) {
	inScope := false
	for _, s := range leakScopes {
		if pathHasPackage(pass.Pkg.Path, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}

	decls := packageFuncDecls(pass.Pkg)

	pass.Pkg.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := goBody(pass.Pkg.Info, decls, gs.Call)
		if body == nil {
			pass.Reportf(gs.Pos(), "goroutine body is declared outside this package: termination cannot be audited here — wrap it in a local function with an explicit exit path")
			return true
		}
		checkTermination(pass, gs, body)
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			checkAbandonedSender(pass, stack, lit)
		}
		return true
	})
}

// packageFuncDecls maps every function/method object of the package to
// its declaration.
func packageFuncDecls(pkg *Package) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// goBody resolves the body a `go` statement runs: a function literal, or
// a function/method declared in the same package. nil means the body is
// not visible here.
func goBody(info *types.Info, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	default:
		if fn := calleeFunc(info, call); fn != nil {
			if fd, ok := decls[fn]; ok {
				return fd.Body
			}
		}
	}
	return nil
}

// checkTermination reports the go statement when some reachable part of
// the goroutine body cannot reach the function's exit.
func checkTermination(pass *Pass, gs *ast.GoStmt, body *ast.BlockStmt) {
	g := BuildCFG(body)
	canExit := g.CanReachExit()
	for b := range g.ReachableFromEntry() {
		if canExit[b] {
			continue
		}
		where := ""
		if pos := b.FirstPos(); pos.IsValid() {
			where = " (loop around line " + strconv.Itoa(pass.Pkg.Fset.Position(pos).Line) + ")"
		}
		pass.Reportf(gs.Pos(), "goroutine has no termination path%s: add a ctx/done-channel case or a bounded loop", where)
		return // one report per goroutine is enough
	}
}

// checkAbandonedSender flags a goroutine closure that sends on an
// unbuffered channel of the spawning function whose receives are all
// behind multi-way selects.
func checkAbandonedSender(pass *Pass, stack []ast.Node, lit *ast.FuncLit) {
	info := pass.Pkg.Info
	encl := enclosingFuncBody(stack)
	if encl == nil {
		return
	}
	inspectStack(lit.Body, func(n ast.Node, sendStack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if isGatedSend(sendStack) {
			return true
		}
		ch, ok := ast.Unparen(send.Chan).(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[ch]
		if obj == nil || !madeUnbuffered(info, encl, obj) {
			return true
		}
		if hasUnconditionalReceive(info, encl, lit, obj) {
			return true
		}
		pass.Reportf(send.Pos(), "send on unbuffered %s blocks forever once the receiver stops selecting: buffer the channel or select on a done signal", ch.Name)
		return true
	})
}

// isGatedSend reports whether the send (whose ancestor stack is given,
// innermost last) is a select comm with an alternative: a default or
// any second clause.
func isGatedSend(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	if _, ok := stack[len(stack)-1].(*ast.CommClause); !ok {
		return false
	}
	for i := len(stack) - 2; i >= 0; i-- {
		if sel, ok := stack[i].(*ast.SelectStmt); ok {
			return len(sel.Body.List) > 1 || selectHasDefault(sel)
		}
	}
	return false
}

// enclosingFuncBody returns the body of the innermost enclosing function
// on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// madeUnbuffered reports whether obj is assigned from an unbuffered
// make(chan T) in the enclosing body.
func madeUnbuffered(info *types.Info, encl *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if info.Defs[id] != obj && info.Uses[id] != obj {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "make" {
			return true
		}
		if len(call.Args) < 2 {
			found = true // make(chan T): unbuffered
		}
		return true
	})
	return found
}

// hasUnconditionalReceive reports whether the enclosing body (outside
// the goroutine literal) receives from obj's channel outside any
// multi-way select — a receive that is guaranteed to be attempted.
func hasUnconditionalReceive(info *types.Info, encl *ast.BlockStmt, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	inspectStack(encl, func(n ast.Node, stack []ast.Node) bool {
		if n == lit {
			return false
		}
		u, ok := n.(*ast.UnaryExpr)
		if !ok || recvOf(info, u, obj) == nil {
			return true
		}
		for i := len(stack) - 1; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.CommClause:
				// A single-clause select with no default is as
				// unconditional as a bare receive.
				if sel := enclosingSelect(stack[:i]); sel != nil &&
					len(sel.Body.List) == 1 && !selectHasDefault(sel) {
					found = true
				}
				return true
			case *ast.FuncLit:
				return true // receive in another closure: not guaranteed
			}
		}
		found = true
		return true
	})
	return found
}

// recvOf returns u if it is a receive `<-obj`.
func recvOf(info *types.Info, u *ast.UnaryExpr, obj types.Object) *ast.UnaryExpr {
	if u.Op != token.ARROW {
		return nil
	}
	if id, ok := ast.Unparen(u.X).(*ast.Ident); ok && info.Uses[id] == obj {
		return u
	}
	return nil
}

// enclosingSelect finds the nearest SelectStmt on the stack.
func enclosingSelect(stack []ast.Node) *ast.SelectStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if sel, ok := stack[i].(*ast.SelectStmt); ok {
			return sel
		}
	}
	return nil
}
