package jobs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// These tests pin the recovery edge cases the cluster simulator exposes:
// a running→queued demotion racing a result that already landed on disk,
// and the ordering of jobs re-queued by a drain deadline.

// TestDemotionRacesLateResult: the previous process crashed after
// persisting a job's result body but before appending the done record (a
// torn WAL tail). Recovery sees "running", demotes to queued, and must
// re-execute — the running record is authoritative — with the fresh result
// replacing the stale body. The demotion must also zero the stale
// Started/Finished/Error fields.
func TestDemotionRacesLateResult(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		t.Fatal(err)
	}
	// Build the crash scene by hand: a WAL whose last complete record says
	// running (the done line was torn away), plus the orphaned result body.
	rec := Job{
		ID:      "j-demoted",
		Key:     "stalekey",
		State:   StateRunning,
		Request: Request{QueriesFasta: ">q\nMKVL", Queries: 1, Residues: 4},
		Created: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),
		Started: time.Date(2026, 8, 1, 12, 0, 1, 0, time.UTC),
		Error:   "leftover from a previous failed attempt",
	}
	line, err := MarshalRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(line, []byte(`{"id":"j-demoted","state":"do`)...)
	if err := os.WriteFile(filepath.Join(dir, walName), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "results", "stalekey.json"), []byte(`{"stale":true}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var execs int
	var mu sync.Mutex
	m, err := New(Config{
		Executors: 1,
		Dir:       dir,
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			mu.Lock()
			execs++
			mu.Unlock()
			return []byte(`{"fresh":true}`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	got := waitState(t, m, "j-demoted", StateDone)
	if !got.Started.After(rec.Started) {
		t.Errorf("re-execution kept the stale Started time: %v", got.Started)
	}
	if got.Error != "" {
		t.Errorf("demotion kept the stale Error: %q", got.Error)
	}
	mu.Lock()
	if execs != 1 {
		t.Errorf("demoted job executed %d times, want 1", execs)
	}
	mu.Unlock()
	body, _, err := m.Result("j-demoted")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Fresh bool `json:"fresh"`
		Stale bool `json:"stale"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Fresh || res.Stale {
		t.Errorf("re-execution served the stale on-disk body: %s", body)
	}
}

// TestDrainRequeueOrdering: jobs bounced back to the queue by a drain
// deadline must re-run after reboot in priority order, FIFO by creation
// within a level — a requeued job gets no special treatment over jobs that
// were still queued when the drain hit.
func TestDrainRequeueOrdering(t *testing.T) {
	dir := t.TempDir()
	running := make(chan struct{}, 1)
	m1, err := New(Config{
		Executors: 1,
		Dir:       dir,
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			running <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// low-running starts executing; high and low-queued wait behind it.
	lowRunning, err := m1.Submit(Request{QueriesFasta: "low-running", Queries: 1, Residues: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	<-running
	high, err := m1.Submit(Request{QueriesFasta: "high", Queries: 1, Residues: 1, Priority: 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	lowQueued, err := m1.Submit(Request{QueriesFasta: "low-queued", Queries: 1, Residues: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel() // drain deadline already past: abort the running job now
	if err := m1.Close(expired); err != nil {
		t.Fatal(err)
	}

	var order []string
	var mu sync.Mutex
	m2, err := New(Config{
		Executors: 1,
		Dir:       dir,
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			mu.Lock()
			order = append(order, r.QueriesFasta)
			mu.Unlock()
			return []byte(`{}`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	waitState(t, m2, lowRunning.ID, StateDone)
	waitState(t, m2, high.ID, StateDone)
	waitState(t, m2, lowQueued.ID, StateDone)
	mu.Lock()
	defer mu.Unlock()
	want := []string{"high", "low-running", "low-queued"}
	if len(order) != len(want) {
		t.Fatalf("execution order after recovery = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order after recovery = %v, want %v", order, want)
		}
	}
}
