package master

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/wire"
)

// Core is the master's protocol state machine with the clock factored out:
// one envelope in, one envelope out, with the current time passed as an
// argument. It is deliberately single-threaded and performs no I/O — the
// same discipline sched.Coordinator follows — so the identical dispatch
// code serves two drivers:
//
//   - Master wraps a Core with a mutex and the wall clock for real TCP and
//     in-process slaves;
//   - the deterministic cluster simulator (internal/sim) drives a Core from
//     a virtual-time event loop, where reproducibility demands that no
//     goroutine or wall-clock read sneaks onto the decision path.
//
// Methods are not safe for concurrent use; the driver owns the locking.
type Core struct {
	queries []*seq.Sequence
	coord   *sched.Coordinator
	events  *metrics.EventLog
	// pendingCancel queues cancellations per slave: the protocol is
	// slave-initiated, so a slave learns that its copy of a task became
	// moot on its next Progress or Complete acknowledgement.
	pendingCancel map[sched.SlaveID][]sched.TaskID
	// finished latches the job-done transition so the summary trailer is
	// emitted exactly once.
	finished bool
}

// NewCore builds the protocol core for a job: one very coarse-grained task
// per query (|query| x database residues cells), all ready. events may be
// nil to discard the structured event stream.
func NewCore(queries []*seq.Sequence, dbResidues int64, sc sched.Config, events *metrics.EventLog) (*Core, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("master: no queries")
	}
	if dbResidues <= 0 {
		return nil, fmt.Errorf("master: DBResidues = %d", dbResidues)
	}
	tasks := make([]sched.Task, len(queries))
	for i, q := range queries {
		if q.Len() == 0 {
			return nil, fmt.Errorf("master: query %d (%s) is empty", i, q.ID)
		}
		tasks[i] = sched.Task{
			QueryID: q.ID,
			Cells:   int64(q.Len()) * dbResidues,
		}
	}
	return &Core{
		queries:       queries,
		coord:         sched.NewCoordinator(tasks, sc),
		events:        events,
		pendingCancel: map[sched.SlaveID][]sched.TaskID{},
	}, nil
}

// RestoreCore rebuilds a protocol core from a checkpoint snapshot. The
// same queries (in the same order) must be supplied — the checkpoint
// carries only scheduling state, not sequence data — and are verified
// against the snapshot. Finished tasks keep their results; everything else
// re-runs.
func RestoreCore(snap *sched.Snapshot, queries []*seq.Sequence, sc sched.Config, events *metrics.EventLog) (*Core, error) {
	if len(snap.Tasks) != len(queries) {
		return nil, fmt.Errorf("master: checkpoint has %d tasks but %d queries were supplied",
			len(snap.Tasks), len(queries))
	}
	for i, t := range snap.Tasks {
		if t.QueryID != queries[i].ID {
			return nil, fmt.Errorf("master: checkpoint task %d is %q but query %d is %q",
				i, t.QueryID, i, queries[i].ID)
		}
	}
	c := &Core{
		queries:       queries,
		coord:         sched.Restore(snap, sc),
		events:        events,
		pendingCancel: map[sched.SlaveID][]sched.TaskID{},
	}
	// A job restored already-done never emits a completion summary: the
	// incarnation that finished it did (or died trying).
	c.finished = c.coord.Done()
	return c, nil
}

// Dispatch is the single protocol entry point: it applies one request
// envelope at virtual or wall time now and returns the response. Malformed
// messages (unknown slave or task IDs) get an error envelope instead of
// crashing the server: the master faces the network.
func (c *Core) Dispatch(req wire.Envelope, now time.Duration) wire.Envelope {
	badSlave := func(id sched.SlaveID) bool {
		return id < 0 || int(id) >= c.coord.Slaves()
	}
	badTask := func(id sched.TaskID) bool {
		return id < 0 || int(id) >= c.coord.Pool().Len()
	}
	// deadSlave answers a lease-expired or disconnected slave with an
	// explicit error so a hung-then-recovered slave learns its ID is gone
	// and re-registers for a fresh one instead of polling forever.
	deadSlave := func(id sched.SlaveID) *wire.Envelope {
		if !c.coord.Dead(id) {
			return nil
		}
		return &wire.Envelope{Error: fmt.Sprintf("slave %d expired; re-register", id)}
	}
	switch {
	case req.Register != nil:
		id := c.coord.Register(sched.SlaveInfo{
			Name:          req.Register.Name,
			Kind:          req.Register.Kind,
			DeclaredSpeed: req.Register.DeclaredSpeed,
		}, now)
		return wire.Envelope{RegisterAck: &wire.RegisterAckMsg{Slave: id}}

	case req.Request != nil:
		if badSlave(req.Request.Slave) {
			return wire.Envelope{Error: fmt.Sprintf("unknown slave %d", req.Request.Slave)}
		}
		if e := deadSlave(req.Request.Slave); e != nil {
			return *e
		}
		if c.coord.Done() {
			return wire.Envelope{Assign: &wire.AssignMsg{Done: true}}
		}
		tasks, replica := c.coord.RequestWork(req.Request.Slave, now)
		if len(tasks) == 0 {
			return wire.Envelope{Assign: &wire.AssignMsg{Standby: true, Done: c.coord.Done()}}
		}
		if c.events != nil {
			ids := make([]int, len(tasks))
			for i, t := range tasks {
				ids[i] = int(t.ID)
			}
			_ = c.events.Emit(metrics.Event{
				Kind: metrics.EventAssign, TimeSec: now.Seconds(),
				PE: c.slaveName(req.Request.Slave), Tasks: ids, Replica: replica,
			})
		}
		specs := make([]wire.TaskSpec, len(tasks))
		for i, t := range tasks {
			specs[i] = wire.TaskSpec{
				ID:       t.ID,
				QueryID:  t.QueryID,
				Residues: c.queries[t.ID].Residues,
				Cells:    t.Cells,
			}
		}
		return wire.Envelope{Assign: &wire.AssignMsg{Tasks: specs, Replica: replica}}

	case req.Progress != nil:
		if badSlave(req.Progress.Slave) {
			return wire.Envelope{Error: fmt.Sprintf("unknown slave %d", req.Progress.Slave)}
		}
		if e := deadSlave(req.Progress.Slave); e != nil {
			return *e
		}
		c.coord.ProgressRate(req.Progress.Slave, req.Progress.Rate, req.Progress.Cells, now)
		if c.events != nil {
			_ = c.events.Emit(metrics.Event{
				Kind: metrics.EventSample, TimeSec: now.Seconds(),
				PE: c.slaveName(req.Progress.Slave), GCUPS: req.Progress.Rate / 1e9,
			})
		}
		return wire.Envelope{ProgressAck: &wire.ProgressAckMsg{
			Cancel: c.takeCancels(req.Progress.Slave),
			Done:   c.coord.Done(),
		}}

	case req.Complete != nil:
		if badSlave(req.Complete.Slave) {
			return wire.Envelope{Error: fmt.Sprintf("unknown slave %d", req.Complete.Slave)}
		}
		if badTask(req.Complete.Task) {
			return wire.Envelope{Error: fmt.Sprintf("unknown task %d", req.Complete.Task)}
		}
		if e := deadSlave(req.Complete.Slave); e != nil {
			return *e
		}
		// Capture the executor's start time before CompleteWork clears it,
		// so the exec event carries the full occupancy window.
		var startAt time.Duration
		if c.events != nil {
			if st, ok := c.coord.Pool().Executors(req.Complete.Task)[req.Complete.Slave]; ok {
				startAt = st
			}
		}
		accepted, canceledSlaves := c.coord.CompleteWork(req.Complete.Slave, req.Complete.Task,
			req.Complete.Hits, req.Complete.Cells, req.Complete.Rate, now)
		for _, o := range canceledSlaves {
			c.pendingCancel[o] = append(c.pendingCancel[o], req.Complete.Task)
		}
		if accepted && c.events != nil {
			_ = c.events.Emit(metrics.Event{
				Kind: metrics.EventExec, PE: c.slaveName(req.Complete.Slave),
				Task: int(req.Complete.Task), TimeSec: startAt.Seconds(),
				EndSec: now.Seconds(), Completed: true,
			})
		}
		if c.coord.Done() && !c.finished {
			c.finished = true
			c.emitSummary(now)
		}
		return wire.Envelope{CompleteAck: &wire.CompleteAckMsg{
			Accepted: accepted,
			Cancel:   c.takeCancels(req.Complete.Slave),
			Done:     c.coord.Done(),
		}}

	default:
		return wire.Envelope{Error: "unknown message"}
	}
}

// SlaveGone records a dropped connection: the slave's tasks return to the
// pool (the paper's future-work scenario of nodes leaving mid-run). It
// reports whether the slave was newly declared dead, so drivers can count
// deaths without double-counting lease expiries.
func (c *Core) SlaveGone(id sched.SlaveID) bool {
	if id < 0 || int(id) >= c.coord.Slaves() {
		return false
	}
	if c.coord.Dead(id) {
		return false
	}
	c.coord.SlaveDied(id)
	return true
}

// Expire drives the coordinator's lease-based failure detector.
func (c *Core) Expire(now, lease time.Duration) []sched.SlaveID {
	return c.coord.Expire(now, lease)
}

// Done reports whether every task has a result.
func (c *Core) Done() bool { return c.coord.Done() }

// Coordinator exposes the scheduling state for reports and invariant
// checks. Callers must respect the driver's locking discipline.
func (c *Core) Coordinator() *sched.Coordinator { return c.coord }

// Snapshot captures the job's durable state (task set + collected
// results).
func (c *Core) Snapshot() *sched.Snapshot { return c.coord.Snapshot() }

// Results merges and returns the per-query outcomes, in query order.
func (c *Core) Results() []QueryResult {
	raw := c.coord.Results()
	out := make([]QueryResult, 0, len(raw))
	replicas := map[sched.TaskID]int{}
	for _, a := range c.coord.AssignmentLog() {
		if a.Replica {
			for _, t := range a.Tasks {
				replicas[t]++
			}
		}
	}
	for _, r := range raw {
		qr := QueryResult{
			Query:    r.QueryID,
			Slave:    r.Slave,
			Elapsed:  r.At,
			Replicas: replicas[r.Task],
		}
		if hits, ok := r.Payload.([]wire.Hit); ok {
			qr.Hits = append(qr.Hits, hits...)
			sort.SliceStable(qr.Hits, func(i, j int) bool {
				if qr.Hits[i].Score != qr.Hits[j].Score {
					return qr.Hits[i].Score > qr.Hits[j].Score
				}
				return qr.Hits[i].Index < qr.Hits[j].Index
			})
		}
		out = append(out, qr)
	}
	return out
}

// slaveName is the event-stream PE label for a slave: its registered name,
// or a synthetic one when it registered anonymously. IDs outside the
// current slave table are possible after a checkpoint restore — results
// restored from the snapshot credit slaves of the previous incarnation,
// whose registrations were deliberately not captured.
func (c *Core) slaveName(id sched.SlaveID) string {
	if id >= 0 && int(id) < c.coord.Slaves() {
		if name := c.coord.SlaveInfoOf(id).Name; name != "" {
			return name
		}
	}
	return fmt.Sprintf("slave%d", int(id))
}

// emitSummary closes the event stream with per-slave and overall summary
// lines, mirroring platform.WriteTrace's trailer. Per-slave lines are
// ordered by slave ID so the stream is deterministic — the simulator
// asserts byte-identical logs across reruns of a seed.
func (c *Core) emitSummary(now time.Duration) {
	if c.events == nil {
		return
	}
	won := map[sched.SlaveID]int{}
	var cells int64
	for _, r := range c.coord.Results() {
		won[r.Slave]++
		cells += c.coord.Pool().Task(r.Task).Cells
	}
	ids := make([]sched.SlaveID, 0, len(won))
	for id := range won {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		_ = c.events.Emit(metrics.Event{Kind: metrics.EventSummary, PE: c.slaveName(id), TasksWon: won[id]})
	}
	overall := metrics.Event{Kind: metrics.EventSummary, MakespanSec: now.Seconds(), CellsDone: cells}
	if now > 0 {
		overall.TotalGCUPS = float64(cells) / now.Seconds() / 1e9
	}
	_ = c.events.Emit(overall)
}

// takeCancels pops the queued cancellations for a slave.
func (c *Core) takeCancels(id sched.SlaveID) []sched.TaskID {
	out := c.pendingCancel[id]
	delete(c.pendingCancel, id)
	return out
}
