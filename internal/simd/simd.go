// Package simd emulates the 128-bit SSE2 integer vector operations that
// Farrar's striped Smith-Waterman uses on Intel CPUs.
//
// The paper's multicore slaves run "a modified version of the Farrar
// algorithm" on the SSE extensions of Intel i7 cores. Pure Go has no
// intrinsics, so this package provides software implementations of the exact
// SSE2 semantics the kernel needs: 16-lane unsigned bytes (epu8) and 8-lane
// signed words (epi16) with saturating arithmetic, lane-wise max, compares,
// whole-register byte shifts and movemask. The striped kernel in
// internal/farrar is written against these, keeping the algorithm, data
// layout and instruction mix identical to the SSE2 original.
package simd

// U8x16 models an XMM register holding 16 unsigned bytes.
type U8x16 [16]uint8

// I16x8 models an XMM register holding 8 signed 16-bit words.
type I16x8 [8]int16

// SplatU8 returns a vector with every lane set to v (_mm_set1_epi8).
func SplatU8(v uint8) U8x16 {
	var out U8x16
	for i := range out {
		out[i] = v
	}
	return out
}

// AddSatU8 is lane-wise unsigned saturating addition (_mm_adds_epu8).
func AddSatU8(a, b U8x16) U8x16 {
	var out U8x16
	for i := range out {
		s := uint16(a[i]) + uint16(b[i])
		if s > 255 {
			s = 255
		}
		out[i] = uint8(s)
	}
	return out
}

// SubSatU8 is lane-wise unsigned saturating subtraction (_mm_subs_epu8):
// results below zero clamp to 0.
func SubSatU8(a, b U8x16) U8x16 {
	var out U8x16
	for i := range out {
		if a[i] > b[i] {
			out[i] = a[i] - b[i]
		}
	}
	return out
}

// MaxU8 is lane-wise unsigned maximum (_mm_max_epu8).
func MaxU8(a, b U8x16) U8x16 {
	var out U8x16
	for i := range out {
		out[i] = max(a[i], b[i])
	}
	return out
}

// GtU8 returns a lane mask with 0xFF where a > b (emulating the
// subs+cmpeq idiom SSE2 needs for unsigned compare-greater).
func GtU8(a, b U8x16) U8x16 {
	var out U8x16
	for i := range out {
		if a[i] > b[i] {
			out[i] = 0xFF
		}
	}
	return out
}

// MoveMaskU8 collects the high bit of every byte lane (_mm_movemask_epi8).
func MoveMaskU8(a U8x16) int {
	m := 0
	for i := range a {
		if a[i]&0x80 != 0 {
			m |= 1 << i
		}
	}
	return m
}

// AnyGtU8 reports whether any lane of a exceeds the matching lane of b.
func AnyGtU8(a, b U8x16) bool { return MoveMaskU8(GtU8(a, b)) != 0 }

// ShiftLanesLeftU8 shifts the register left by n byte lanes, filling vacated
// low lanes with zero (_mm_slli_si128). In the striped layout this moves
// values from query segment s to segment s+1.
func ShiftLanesLeftU8(a U8x16, n int) U8x16 {
	var out U8x16
	for i := n; i < 16; i++ {
		out[i] = a[i-n]
	}
	return out
}

// HMaxU8 returns the maximum lane value.
func HMaxU8(a U8x16) uint8 {
	m := a[0]
	for _, v := range a[1:] {
		m = max(m, v)
	}
	return m
}

// SplatI16 returns a vector with every lane set to v (_mm_set1_epi16).
func SplatI16(v int16) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = v
	}
	return out
}

// AddSatI16 is lane-wise signed saturating addition (_mm_adds_epi16).
func AddSatI16(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = satI16(int32(a[i]) + int32(b[i]))
	}
	return out
}

// SubSatI16 is lane-wise signed saturating subtraction (_mm_subs_epi16).
func SubSatI16(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = satI16(int32(a[i]) - int32(b[i]))
	}
	return out
}

func satI16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// MaxI16 is lane-wise signed maximum (_mm_max_epi16).
func MaxI16(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = max(a[i], b[i])
	}
	return out
}

// GtI16 returns a lane mask with all bits set where a > b
// (_mm_cmpgt_epi16).
func GtI16(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if a[i] > b[i] {
			out[i] = -1
		}
	}
	return out
}

// MoveMaskI16 collects the sign bit of every 16-bit lane.
func MoveMaskI16(a I16x8) int {
	m := 0
	for i := range a {
		if a[i] < 0 {
			m |= 1 << i
		}
	}
	return m
}

// AnyGtI16 reports whether any lane of a exceeds the matching lane of b.
func AnyGtI16(a, b I16x8) bool { return MoveMaskI16(GtI16(a, b)) != 0 }

// ShiftLanesLeftI16 shifts the register left by n 16-bit lanes, filling
// vacated low lanes with fill (the striped kernel inserts the boundary
// value, not zero, because signed scores may legitimately be negative).
func ShiftLanesLeftI16(a I16x8, n int, fill int16) I16x8 {
	var out I16x8
	for i := 0; i < n && i < 8; i++ {
		out[i] = fill
	}
	for i := n; i < 8; i++ {
		out[i] = a[i-n]
	}
	return out
}

// HMaxI16 returns the maximum lane value.
func HMaxI16(a I16x8) int16 {
	m := a[0]
	for _, v := range a[1:] {
		m = max(m, v)
	}
	return m
}
