// Package swar implements SIMD-within-a-register arithmetic: the
// saturating byte and word operations of Farrar's striped kernel computed
// on packed uint64 values with branch-free, loop-free bit tricks, at
// native Go speed.
//
// Where internal/simd emulates the SSE2 ISA faithfully — one Go loop
// iteration per lane, which is what makes it a trustworthy oracle and
// what makes it slow — this package packs 8 unsigned bytes (or 4 unsigned
// 16-bit words) into one uint64 and computes all lanes at once with the
// classic carry/borrow-isolation identities (Hacker's Delight §2).
// Lane l occupies bits [8l, 8l+8) (or [16l, 16l+16)); "left" lane shifts
// therefore are plain word shifts toward higher significance.
//
// Every function here is a pure expression over uint64: no loops, no
// branches, no imports of the emulated ISA. swcheck's purity analyzer
// enforces both properties mechanically, and the package tests prove the
// lane laws exhaustively against internal/simd.
package swar

// Lane geometry of the packed word.
const (
	Lanes8  = 8 // 8-bit lanes in a uint64
	Lanes16 = 4 // 16-bit lanes in a uint64
)

// Bit masks isolating each lane's high bit (hi) and low bit (lo).
const (
	hi8  = 0x8080808080808080
	lo8  = 0x0101010101010101
	hi16 = 0x8000800080008000
	lo16 = 0x0001000100010001
)

// Splat8 returns a word with every byte lane set to v.
func Splat8(v uint8) uint64 { return uint64(v) * lo8 }

// Splat16 returns a word with every 16-bit lane set to v.
func Splat16(v uint16) uint64 { return uint64(v) * lo16 }

// AddSat8 is lane-wise unsigned saturating addition on byte lanes: lanes
// whose true sum exceeds 255 clamp to 255. The high bit of each lane is
// masked off so the partial add cannot carry across lanes, then restored
// by XOR; the per-lane carry-out identifies lanes to saturate.
func AddSat8(a, b uint64) uint64 {
	s := (a &^ hi8) + (b &^ hi8)
	sum := s ^ ((a ^ b) & hi8)
	carry := ((a & b) | ((a | b) &^ sum)) & hi8
	return sum | ((carry >> 7) * 0xFF)
}

// SubSat8 is lane-wise unsigned saturating subtraction on byte lanes:
// lanes where b exceeds a clamp to 0. The lanes are subtracted with the
// borrow confined inside each lane, then lanes that borrowed are zeroed.
func SubSat8(a, b uint64) uint64 {
	d := (a | hi8) - (b &^ hi8)
	diff := d ^ ((a ^ b) & hi8) ^ hi8
	borrow := ((^a & b) | ((^a | b) & diff)) & hi8
	return diff &^ ((borrow >> 7) * 0xFF)
}

// Max8 is lane-wise unsigned maximum on byte lanes.
func Max8(a, b uint64) uint64 {
	d := (a | hi8) - (b &^ hi8)
	diff := d ^ ((a ^ b) & hi8) ^ hi8
	borrow := ((^a & b) | ((^a | b) & diff)) & hi8 // lanes where a < b
	sel := (borrow >> 7) * 0xFF                    // 0xFF where b wins
	return a ^ ((a ^ b) & sel)
}

// Gt8 returns a lane mask with 0xFF in every byte lane where a > b.
func Gt8(a, b uint64) uint64 {
	d := (b | hi8) - (a &^ hi8)
	diff := d ^ ((a ^ b) & hi8) ^ hi8
	borrow := ((^b & a) | ((^b | a) & diff)) & hi8 // lanes where b < a
	return (borrow >> 7) * 0xFF
}

// AnyGt8 reports whether any byte lane of a exceeds the matching lane of
// b — the termination test of the lazy-F correction loop.
func AnyGt8(a, b uint64) bool {
	d := (b | hi8) - (a &^ hi8)
	diff := d ^ ((a ^ b) & hi8) ^ hi8
	return ((^b&a)|((^b|a)&diff))&hi8 != 0
}

// ShiftLane8 shifts every byte lane up by one (lane l to lane l+1), the
// striped layout's segment-boundary move; lane 0 fills with zero.
func ShiftLane8(a uint64) uint64 { return a << 8 }

// HMax8 returns the maximum byte lane value via a logarithmic fold; the
// zero lanes shifted in never win an unsigned maximum.
func HMax8(a uint64) uint8 {
	m := Max8(a, a>>32)
	m = Max8(m, m>>16)
	m = Max8(m, m>>8)
	return uint8(m)
}

// AddSat16 is lane-wise unsigned saturating addition on 16-bit lanes.
func AddSat16(a, b uint64) uint64 {
	s := (a &^ hi16) + (b &^ hi16)
	sum := s ^ ((a ^ b) & hi16)
	carry := ((a & b) | ((a | b) &^ sum)) & hi16
	return sum | ((carry >> 15) * 0xFFFF)
}

// SubSat16 is lane-wise unsigned saturating subtraction on 16-bit lanes.
func SubSat16(a, b uint64) uint64 {
	d := (a | hi16) - (b &^ hi16)
	diff := d ^ ((a ^ b) & hi16) ^ hi16
	borrow := ((^a & b) | ((^a | b) & diff)) & hi16
	return diff &^ ((borrow >> 15) * 0xFFFF)
}

// Max16 is lane-wise unsigned maximum on 16-bit lanes.
func Max16(a, b uint64) uint64 {
	d := (a | hi16) - (b &^ hi16)
	diff := d ^ ((a ^ b) & hi16) ^ hi16
	borrow := ((^a & b) | ((^a | b) & diff)) & hi16
	sel := (borrow >> 15) * 0xFFFF
	return a ^ ((a ^ b) & sel)
}

// Gt16 returns a lane mask with 0xFFFF in every 16-bit lane where a > b.
func Gt16(a, b uint64) uint64 {
	d := (b | hi16) - (a &^ hi16)
	diff := d ^ ((a ^ b) & hi16) ^ hi16
	borrow := ((^b & a) | ((^b | a) & diff)) & hi16
	return (borrow >> 15) * 0xFFFF
}

// AnyGt16 reports whether any 16-bit lane of a exceeds the matching lane
// of b.
func AnyGt16(a, b uint64) bool {
	d := (b | hi16) - (a &^ hi16)
	diff := d ^ ((a ^ b) & hi16) ^ hi16
	return ((^b&a)|((^b|a)&diff))&hi16 != 0
}

// ShiftLane16 shifts every 16-bit lane up by one; lane 0 fills with zero.
func ShiftLane16(a uint64) uint64 { return a << 16 }

// HMax16 returns the maximum 16-bit lane value.
func HMax16(a uint64) uint16 {
	m := Max16(a, a>>32)
	m = Max16(m, m>>16)
	return uint16(m)
}
