// Package metricname is the golden fixture for the metric-name analyzer:
// every literal name handed to a Registry constructor must satisfy
// metrics.CheckName, and a method merely named Counter on some other
// type must not be confused for one.
package metricname

import "repro/internal/metrics"

func register(r *metrics.Registry) {
	r.Counter("demo_events_total", "Well-formed counter name.")
	r.Gauge("demo_queue_depth", "Well-formed gauge name.")
	r.Histogram("demo_wait_seconds", "Well-formed histogram name.", nil)
	r.CounterVec("demo_calls_total", "Well-formed vec name.", "kind")

	r.Counter("demo_events", "Counter without its unit suffix.") // want "counter .demo_events. must end in _total"
	r.Gauge("demo_live_total", "Gauge with a counter suffix.")   // want "gauge .demo_live_total. must not end in _total"
	r.Histogram("demo_wait", "Histogram without a unit.", nil)   // want "histogram .demo_wait. must end in a unit suffix"
	r.CounterVec("BadTotal", "Not snake_case at all.", "kind")   // want "not subsystem_name_unit lowercase snake_case"
}

// notARegistry has a method named Counter; the analyzer resolves the
// receiver type and leaves it alone.
type notARegistry struct{}

func (notARegistry) Counter(name, help string) {}

func unrelated(n notARegistry) {
	n.Counter("AnythingGoes", "not a metrics.Registry constructor")
}
