package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared type- and AST-queries of the flow-sensitive analyzers
// (unlockpath, ctxflow, leakcheck, deadline).

// inspectStack is ast.Inspect with an ancestor stack: fn receives each
// node with its ancestors (outermost first, excluding n). Returning
// false skips the node's children.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// namedFrom reports whether t (after pointer dereference) is the named
// type pkgPath.name, where pkgPath is matched on a path-segment boundary
// ("sync" matches only the real sync package; "internal/wire" matches
// the module's wire package wherever the module path puts it).
func namedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && pathHasPackage(obj.Pkg().Path(), pkgPath)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// ctxParamObjs returns the types.Objects of every context.Context
// parameter of a function type.
func ctxParamObjs(info *types.Info, ft *ast.FuncType) []types.Object {
	if ft == nil || ft.Params == nil {
		return nil
	}
	var objs []types.Object
	for _, field := range ft.Params.List {
		if !isContextType(info.Types[field.Type].Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// isPkgFunc reports whether fn is the function pkgPath.name (pkgPath
// matched on a segment boundary, so it works for both stdlib packages
// and module-internal ones).
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || !pathHasPackage(fn.Pkg().Path(), pkgPath) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isWireEnvelopeCall reports whether the call is a wire RPC: a method
// named Call whose signature takes the wire package's Envelope. This
// matches wire.Client.Call, the wire.Caller interface, and every
// middleware wrapper that implements it.
func isWireEnvelopeCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Call" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if namedFrom(sig.Params().At(i).Type(), "internal/wire", "Envelope") {
			return true
		}
	}
	return false
}

// selectHasDefault reports whether a select statement has a default
// clause (making it a non-blocking attempt).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// recvChanExpr returns the channel expression of a receive statement:
// an expression statement `<-ch`, or an assignment whose single RHS is a
// receive (`v := <-ch`, `v, ok := <-ch`).
func recvChanExpr(s ast.Stmt) ast.Expr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

// isDoneRecv reports whether the comm statement of a select clause
// receives from a Done()-style channel: `<-ctx.Done()`, `<-x.Done()`,
// or a channel variable whose name suggests shutdown (done, stop, quit,
// closed) — the repo's conventional escape signals.
func isDoneRecv(s ast.Stmt) bool {
	ch := recvChanExpr(s)
	if ch == nil {
		return false
	}
	switch ch := ast.Unparen(ch).(type) {
	case *ast.CallExpr:
		if sel, ok := ch.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
	case *ast.Ident:
		return doneish(ch.Name)
	case *ast.SelectorExpr:
		return doneish(ch.Sel.Name)
	}
	return false
}

// doneish reports whether a channel identifier names a shutdown signal.
func doneish(name string) bool {
	switch name {
	case "done", "stop", "quit", "closed", "stopped", "idle", "exit":
		return true
	}
	return false
}
