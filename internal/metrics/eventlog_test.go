package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEventLogEmit(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	events := []Event{
		{Kind: EventAssign, TimeSec: 0.5, PE: "GPU1", Tasks: []int{0, 1}},
		{Kind: EventSample, TimeSec: 1.0, PE: "GPU1", GCUPS: 27.5},
		{Kind: EventExec, TimeSec: 0.5, EndSec: 2.0, PE: "GPU1", Task: 0, Completed: true},
		{Kind: EventSummary, MakespanSec: 2.0, CellsDone: 123, TotalGCUPS: 0.1},
	}
	for _, e := range events {
		if err := l.Emit(e); err != nil {
			t.Fatal(err)
		}
	}
	if l.Emitted() != 4 {
		t.Errorf("Emitted = %d, want 4", l.Emitted())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	var back Event
	if err := json.Unmarshal([]byte(lines[0]), &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != EventAssign || back.PE != "GPU1" || len(back.Tasks) != 2 {
		t.Errorf("round-trip = %+v", back)
	}
	// The JSON field names are the contract with platform.TraceEvent.
	for _, key := range []string{`"kind"`, `"t"`, `"pe"`} {
		if !strings.Contains(lines[0], key) {
			t.Errorf("line missing %s: %s", key, lines[0])
		}
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	if err := l.Emit(Event{Kind: EventSample}); err != nil {
		t.Errorf("nil Emit = %v", err)
	}
	if l.Emitted() != 0 {
		t.Error("nil Emitted != 0")
	}
}

func TestEventLogConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Emit(Event{Kind: EventSample, GCUPS: float64(j)})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1600 {
		t.Fatalf("got %d lines, want 1600", len(lines))
	}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("interleaved write produced bad JSON: %v in %q", err, line)
		}
	}
}
