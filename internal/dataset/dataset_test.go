package dataset

import (
	"math"
	"testing"

	"repro/internal/seq"
)

func TestTableIICounts(t *testing.T) {
	want := map[string]int{
		"Ensembl Dog Proteins":  25160,
		"Ensembl Rat Proteins":  32971,
		"RefSeq Human Proteins": 34705,
		"RefSeq Mouse Proteins": 29437,
		"UniProtKB/SwissProt":   537505,
	}
	profiles := TableII()
	if len(profiles) != 5 {
		t.Fatalf("TableII has %d profiles", len(profiles))
	}
	for _, p := range profiles {
		if want[p.Name] != p.NumSeqs {
			t.Errorf("%s: NumSeqs = %d, want %d", p.Name, p.NumSeqs, want[p.Name])
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("UniProtKB/SwissProt")
	if err != nil || p.NumSeqs != 537505 {
		t.Errorf("ProfileByName = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestScale(t *testing.T) {
	p, _ := ProfileByName("UniProtKB/SwissProt")
	s := p.Scale(0.001)
	if s.NumSeqs != 538 {
		t.Errorf("scaled NumSeqs = %d, want 538", s.NumSeqs)
	}
	if tiny := p.Scale(1e-9); tiny.NumSeqs != 1 {
		t.Errorf("tiny scale NumSeqs = %d, want 1", tiny.NumSeqs)
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	p := Profile{Name: "test", NumSeqs: 200, MeanLen: 300, SigmaLn: 0.7, MinLen: 20, MaxLen: 3000}
	a := Generate(p, 7)
	b := Generate(p, 7)
	if len(a) != 200 {
		t.Fatalf("generated %d sequences", len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID || string(a[i].Residues) != string(b[i].Residues) {
			t.Fatal("generation is not deterministic")
		}
		if err := seq.Protein.Validate(a[i].Residues); err != nil {
			t.Fatalf("sequence %d invalid: %v", i, err)
		}
		if a[i].Len() < p.MinLen || a[i].Len() > p.MaxLen {
			t.Fatalf("sequence %d length %d outside [%d,%d]", i, a[i].Len(), p.MinLen, p.MaxLen)
		}
	}
	c := Generate(p, 8)
	if string(a[0].Residues) == string(c[0].Residues) {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateMeanLength(t *testing.T) {
	p := Profile{Name: "test", NumSeqs: 3000, MeanLen: 355, SigmaLn: 0.7, MinLen: 10, MaxLen: 36000}
	db := Generate(p, 3)
	var total int64
	for _, s := range db {
		total += int64(s.Len())
	}
	mean := float64(total) / float64(len(db))
	if mean < 0.85*p.MeanLen || mean > 1.15*p.MeanLen {
		t.Errorf("empirical mean length %.1f, want ~%.0f", mean, p.MeanLen)
	}
}

func TestResidues(t *testing.T) {
	p := Profile{NumSeqs: 1000, MeanLen: 355}
	if got := p.Residues(); got != 355000 {
		t.Errorf("Residues = %d", got)
	}
}

func TestQueryLengths(t *testing.T) {
	ls := QueryLengths(40, 100, 5000)
	if len(ls) != 40 || ls[0] != 100 || ls[39] != 5000 {
		t.Fatalf("QueryLengths ends = %d..%d", ls[0], ls[39])
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			t.Fatalf("lengths not increasing at %d", i)
		}
		step := ls[i] - ls[i-1]
		if math.Abs(float64(step)-4900.0/39) > 1 {
			t.Fatalf("step %d not equally distributed", step)
		}
	}
	if got := QueryLengths(1, 100, 5000); len(got) != 1 || got[0] != 100 {
		t.Errorf("single length = %v", got)
	}
	if QueryLengths(0, 1, 2) != nil {
		t.Error("zero queries should be nil")
	}
}

func TestQueriesFromDatabase(t *testing.T) {
	p := Profile{Name: "test", NumSeqs: 50, MeanLen: 200, SigmaLn: 0.6, MinLen: 50, MaxLen: 1000}
	db := Generate(p, 11)
	qs := Queries(db, 40, 100, 5000, 12)
	if len(qs) != 40 {
		t.Fatalf("%d queries", len(qs))
	}
	lengths := QueryLengths(40, 100, 5000)
	for i, q := range qs {
		if q.Len() != lengths[i] {
			t.Errorf("query %d length %d, want %d", i, q.Len(), lengths[i])
		}
		if err := seq.Protein.Validate(q.Residues); err != nil {
			t.Errorf("query %d invalid: %v", i, err)
		}
	}
	// Determinism.
	qs2 := Queries(db, 40, 100, 5000, 12)
	if string(qs[7].Residues) != string(qs2[7].Residues) {
		t.Error("queries not deterministic")
	}
}

func TestQueriesWithoutDatabase(t *testing.T) {
	qs := Queries(nil, 3, 100, 300, 5)
	if len(qs) != 3 || qs[0].Len() != 100 || qs[2].Len() != 300 {
		t.Fatalf("queries = %v", qs)
	}
}

func TestTotalCells(t *testing.T) {
	qs := []*seq.Sequence{
		seq.New("a", "", make([]byte, 100)),
		seq.New("b", "", make([]byte, 200)),
	}
	if got := TotalCells(qs, 1000); got != 300000 {
		t.Errorf("TotalCells = %d", got)
	}
}

func TestTableIIWorkloadMagnitude(t *testing.T) {
	// Sanity anchor: 40 queries averaging ~2550 aa against SwissProt
	// (~191M residues) is ~1.9e13 cells; at the paper's 7,190 s on one
	// SSE core that implies ~2.7 GCUPS, a plausible Farrar figure.
	p, _ := ProfileByName("UniProtKB/SwissProt")
	cells := int64(40*2550) * p.Residues()
	if cells < 1.5e13 || cells > 2.5e13 {
		t.Errorf("SwissProt workload = %g cells, outside expected band", float64(cells))
	}
}

func TestGenerateDNA(t *testing.T) {
	p := DNAProfile{Name: "dna", NumSeqs: 100, MeanLen: 200, SigmaLn: 0.5, MinLen: 50, MaxLen: 1000, GC: 0.6}
	db := GenerateDNA(p, 17)
	if len(db) != 100 {
		t.Fatalf("%d sequences", len(db))
	}
	var gcCount, total int
	for _, s := range db {
		if err := seq.DNA.Validate(s.Residues); err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		for _, c := range s.Residues {
			total++
			if c == 'G' || c == 'C' {
				gcCount++
			}
		}
	}
	gc := float64(gcCount) / float64(total)
	if gc < 0.55 || gc > 0.65 {
		t.Errorf("GC content %.3f, want ~0.6", gc)
	}
	// Determinism.
	db2 := GenerateDNA(p, 17)
	if string(db[3].Residues) != string(db2[3].Residues) {
		t.Error("not deterministic")
	}
}
