package farrar

// A swar*.go kernel file must stay off the emulated ISA: its substrate is
// the packed-word primitives, and reaching for internal/simd here would
// silently reintroduce the per-lane-loop tax the SWAR tier removes.

import (
	_ "repro/internal/simd"      // want "SWAR kernel file swar8.go imports the emulated ISA"
	_ "repro/internal/simd/swar" // the packed-word primitives: allowed
)

// kernel8 stands in for the packed 8-bit tier; loops are fine in kernel
// files (only the primitives package is loop-free).
func kernel8(prof []uint64) (best uint64) {
	for _, w := range prof {
		best |= w
	}
	return best
}
