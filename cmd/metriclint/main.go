// Command metriclint enforces the repository's metric naming convention
// (subsystem_name_unit; counters end in _total, gauges must not, histogram
// names carry a unit suffix — see metrics.CheckName). It parses every .go
// file under the given directories and checks each string literal passed
// as the name of a registry constructor call:
//
//	r.Counter("sched_tasks_assigned_total", ...)
//	r.HistogramVec("wire_call_seconds", ..., buckets, "kind")
//
// The registry panics on a bad name at run time; the linter catches the
// same mistake at `make test` time, including on code paths no test
// registers. Exit status 1 when any name violates the convention.
//
// Usage:
//
//	metriclint [dir ...]   # default: .
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// constructors maps registry method names to the metric kind their first
// string argument names.
var constructors = map[string]metrics.Kind{
	"Counter":      metrics.KindCounter,
	"CounterVec":   metrics.KindCounter,
	"Gauge":        metrics.KindGauge,
	"GaugeVec":     metrics.KindGauge,
	"Histogram":    metrics.KindHistogram,
	"HistogramVec": metrics.KindHistogram,
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			// Tests are exempt: the metrics package's own tests register
			// bad names on purpose to prove the registry rejects them.
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			n, err := lintFile(path)
			bad += n
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(1)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d bad metric name(s)\n", bad)
		os.Exit(1)
	}
}

// lintFile reports every constructor call in one file whose name literal
// violates the convention.
func lintFile(path string) (bad int, err error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return 0, err
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind, ok := constructors[sel.Sel.Name]
		if !ok {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, uerr := strconv.Unquote(lit.Value)
		if uerr != nil {
			return true
		}
		if cerr := metrics.CheckName(kind, name); cerr != nil {
			fmt.Printf("%s: %v\n", fset.Position(lit.Pos()), cerr)
			bad++
		}
		return true
	})
	return bad, nil
}
