// Package sched implements the paper's task-execution core: the task pool
// with its ready/executing/finished lifecycle, the user-selectable task
// allocation policies (SS, PSS, and the Fixed/WFixed baselines from related
// work), the Ω-window weighted speed estimator that feeds PSS, and the
// dynamic workload-adjustment mechanism that re-assigns still-executing
// tasks to idle processing elements.
//
// The package is a pure state machine: every method takes the current time
// as an argument and performs no I/O, no sleeping and no goroutines. The
// same code therefore drives both the wall-clock master (internal/master)
// and the calibrated discrete-event experiments (internal/platform), which
// is what makes the reproduced scheduling results meaningful.
package sched

import (
	"fmt"
	"sort"
	"time"
)

// TaskID identifies a task within one job.
type TaskID int

// SlaveID identifies a registered slave within one coordinator.
type SlaveID int

// TaskKind classifies the work a task carries. The paper's environment has
// exactly one shape of work — a full Smith-Waterman database scan per query
// — but the two-stage filtered-search pipeline adds heterogeneous kinds:
// a cheap multi-pattern prefilter pass over the database, followed by a
// Smith-Waterman rescore restricted to the candidate windows the prefilter
// emitted. The scheduler routes kinds by slave capability (SlaveInfo.Caps)
// and otherwise treats them uniformly through the shared cell currency.
type TaskKind int

const (
	// TaskSW is a full Smith-Waterman scan of the query against the whole
	// database (the paper's only task shape).
	TaskSW TaskKind = iota
	// TaskPrefilter is an Aho-Corasick multi-pattern scan of the database
	// with the query's k-mer seeds, emitting candidate windows.
	TaskPrefilter
	// TaskRescore is a Smith-Waterman pass restricted to the candidate
	// windows of a preceding prefilter task.
	TaskRescore
)

// String returns the kind name used in logs, traces and metric labels.
func (k TaskKind) String() string {
	switch k {
	case TaskSW:
		return "sw"
	case TaskPrefilter:
		return "prefilter"
	case TaskRescore:
		return "rescore"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// PrefilterEquivCells is the cost model of prefilter tasks: scanning one
// database residue through the Aho-Corasick automaton costs roughly this
// many Smith-Waterman cell updates (a couple of table lookups versus the
// DP cell's adds and maxes). Task.Cells is always denominated in SW-cell
// equivalents, so one speed estimator, one backlog model and one GCUPS
// currency serve every kind: a prefilter task over R database residues is
// created with Cells = R * PrefilterEquivCells, while TaskSW and
// TaskRescore tasks carry true DP cell counts (factor 1). That is what
// makes prefilter tasks "cheap per query": R*8 equivalent cells versus
// |query|*R for the full scan.
const PrefilterEquivCells = 8

// Window is one candidate region of a database sequence: produced by a
// prefilter task, consumed by the rescore task that follows it. The
// scheduler treats windows as opaque payload; internal/prefilter defines
// their semantics (diagonal projection of seed hits, margin expansion,
// overlap merging).
type Window struct {
	Seq        int // database sequence index
	Start, End int // half-open residue range within the sequence
}

// Task is one schedulable work unit. In the paper's workload it is the
// very coarse-grained comparison of one query sequence against the whole
// genomic database (§IV); the filtered-search pipeline adds prefilter and
// rescore kinds over the same distribution machinery.
type Task struct {
	ID      TaskID
	QueryID string // identifier of the query sequence
	Cells   int64  // scheduling cost in SW-cell equivalents (see PrefilterEquivCells)
	// Kind selects the execution path on the slave; the zero value TaskSW
	// keeps every pre-existing call site on the paper's single-kind shape.
	Kind TaskKind
	// Windows restricts a TaskRescore task to candidate regions; nil for
	// other kinds.
	Windows []Window
	// Tenant names the submitter for multi-tenant fair-share scheduling.
	// The empty string is the anonymous tenant, which keeps every
	// pre-existing call site (and the paper's single-job workload) on the
	// tenant-blind fast path.
	Tenant string
	// Priority orders grants within a tenant (higher first) and lets the
	// preemption mechanism prefer high-priority ready work over replicated
	// low-priority copies. Zero is the default level.
	Priority int
}

// State is the lifecycle of a task in the pool (§IV-A.3).
type State int

const (
	// Ready tasks have not been handed to any slave.
	Ready State = iota
	// Executing tasks are running on at least one slave. With the workload
	// adjustment mechanism, several slaves may execute the same task.
	Executing
	// Finished tasks have a collected result.
	Finished
)

// String returns the state name used in logs and traces.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Executing:
		return "executing"
	case Finished:
		return "finished"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

type poolEntry struct {
	task       Task
	state      State
	executors  map[SlaveID]time.Duration // slave -> time it started this task
	finishedBy SlaveID
	finishedAt time.Duration
}

// Pool tracks every task of a job through the ready -> executing ->
// finished lifecycle.
type Pool struct {
	entries   []poolEntry
	readyFIFO []TaskID
	nReady    int
	nExec     int
	nFinished int
}

// NewPool builds a pool over the given tasks, all Ready, dispensed in slice
// order. Task IDs must equal their index; NewPool renumbers them to enforce
// this.
func NewPool(tasks []Task) *Pool {
	p := &Pool{entries: make([]poolEntry, len(tasks)), nReady: len(tasks)}
	p.readyFIFO = make([]TaskID, len(tasks))
	for i, t := range tasks {
		t.ID = TaskID(i)
		p.entries[i] = poolEntry{task: t, state: Ready, executors: map[SlaveID]time.Duration{}, finishedBy: -1}
		p.readyFIFO[i] = t.ID
	}
	return p
}

// Len returns the total number of tasks.
func (p *Pool) Len() int { return len(p.entries) }

// Ready returns the number of tasks not yet assigned.
func (p *Pool) Ready() int { return p.nReady }

// ExecutingCount returns the number of tasks currently in the executing state.
func (p *Pool) ExecutingCount() int { return p.nExec }

// Finished returns the number of completed tasks.
func (p *Pool) Finished() int { return p.nFinished }

// Done reports whether every task has a collected result.
func (p *Pool) Done() bool { return p.nFinished == len(p.entries) }

// Task returns the task with the given ID.
func (p *Pool) Task(id TaskID) Task { return p.entries[id].task }

// StateOf returns the lifecycle state of a task.
func (p *Pool) StateOf(id TaskID) State { return p.entries[id].state }

// TakeReady moves up to n ready tasks to the executing state on slave s,
// returning them in FIFO order.
func (p *Pool) TakeReady(n int, s SlaveID, now time.Duration) []Task {
	return p.TakeReadyFunc(n, nil, s, now)
}

// TakeReadyFunc is TakeReady restricted to tasks allow admits (nil admits
// every task): the kind-aware grant path, where a slave only receives task
// kinds it declared capability for. Skipped tasks keep their FIFO position
// for the next capable requester.
func (p *Pool) TakeReadyFunc(n int, allow func(Task) bool, s SlaveID, now time.Duration) []Task {
	if n <= 0 {
		return nil
	}
	var out []Task
	rest := p.readyFIFO[:0]
	for _, id := range p.readyFIFO {
		e := &p.entries[id]
		if len(out) < n && (allow == nil || allow(e.task)) {
			e.state = Executing
			e.executors[s] = now
			out = append(out, e.task)
			continue
		}
		rest = append(rest, id)
	}
	p.readyFIFO = rest
	p.nReady -= len(out)
	p.nExec += len(out)
	return out
}

// TakeReadyTask moves one specific ready task to the executing state on
// slave s, preserving the FIFO position of every other ready task — the
// tenant-fair grant path, where the coordinator (not arrival order) picks
// which ready task a slave receives. It panics if the task is not ready:
// the caller selects from the ready set it just inspected.
func (p *Pool) TakeReadyTask(id TaskID, s SlaveID, now time.Duration) Task {
	e := &p.entries[id]
	if e.state != Ready {
		panic(fmt.Sprintf("sched: TakeReadyTask on %s task %d", e.state, id))
	}
	for i, rid := range p.readyFIFO {
		if rid == id {
			p.readyFIFO = append(p.readyFIFO[:i], p.readyFIFO[i+1:]...)
			break
		}
	}
	e.state = Executing
	e.executors[s] = now
	p.nReady--
	p.nExec++
	return e.task
}

// ReadyFunc counts the ready tasks allow admits (nil admits every task) —
// the pool depth as seen by a slave of limited capability.
func (p *Pool) ReadyFunc(allow func(Task) bool) int {
	if allow == nil {
		return len(p.readyFIFO)
	}
	n := 0
	for _, id := range p.readyFIFO {
		if allow(p.entries[id].task) {
			n++
		}
	}
	return n
}

// Append adds follow-on tasks to the pool mid-job, all Ready at the back
// of the FIFO, and returns their assigned IDs. This is how heterogeneous
// pipelines grow: a filtered search starts with one prefilter task per
// query and appends each rescore task the moment its candidate windows are
// known. IDs continue the existing numbering (Task.ID is renumbered like
// NewPool does).
func (p *Pool) Append(tasks []Task) []TaskID {
	ids := make([]TaskID, len(tasks))
	for i, t := range tasks {
		t.ID = TaskID(len(p.entries))
		p.entries = append(p.entries, poolEntry{task: t, state: Ready, executors: map[SlaveID]time.Duration{}, finishedBy: -1})
		p.readyFIFO = append(p.readyFIFO, t.ID)
		ids[i] = t.ID
	}
	p.nReady += len(tasks)
	return ids
}

// AddExecutor records that slave s (additionally) executes task id — the
// workload adjustment path. It panics if the task is not executing: only
// executing tasks can be replicated.
func (p *Pool) AddExecutor(id TaskID, s SlaveID, now time.Duration) {
	e := &p.entries[id]
	if e.state != Executing {
		panic(fmt.Sprintf("sched: AddExecutor on %s task %d", e.state, id))
	}
	e.executors[s] = now
}

// Executors returns the slaves currently executing task id with their start
// times. The returned map is the pool's own; callers must not mutate it.
func (p *Pool) Executors(id TaskID) map[SlaveID]time.Duration {
	return p.entries[id].executors
}

// ExecutingTasks returns the IDs of all tasks in the executing state, in
// task order.
func (p *Pool) ExecutingTasks() []TaskID {
	var out []TaskID
	for i := range p.entries {
		if p.entries[i].state == Executing {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Complete records that slave s finished task id at time now. The first
// completion wins (first = true); later completions of the same task by
// replica executors are ignored (first = false). others lists the slaves
// that still hold a now-moot copy, so the caller can notify them.
func (p *Pool) Complete(id TaskID, s SlaveID, now time.Duration) (first bool, others []SlaveID) {
	e := &p.entries[id]
	if e.state == Finished {
		delete(e.executors, s)
		return false, nil
	}
	if _, ok := e.executors[s]; !ok {
		panic(fmt.Sprintf("sched: slave %d completed task %d it was not executing", s, id))
	}
	e.state = Finished
	e.finishedBy = s
	e.finishedAt = now
	delete(e.executors, s)
	for other := range e.executors {
		others = append(others, other)
	}
	// Sorted so callers that fan out cancellations (and the deterministic
	// simulator's event log) see a seed-stable order.
	sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
	e.executors = map[SlaveID]time.Duration{}
	p.nExec--
	p.nFinished++
	return true, others
}

// Abandon removes slave s from the executors of task id (e.g. the slave
// died or was canceled). If the task loses its last executor it returns to
// the ready state at the head of the FIFO.
func (p *Pool) Abandon(id TaskID, s SlaveID) {
	e := &p.entries[id]
	if e.state != Executing {
		return
	}
	delete(e.executors, s)
	if len(e.executors) == 0 {
		e.state = Ready
		p.nExec--
		p.nReady++
		p.readyFIFO = append([]TaskID{id}, p.readyFIFO...)
	}
}

// FinishedCells sums the Cells of finished tasks: the authoritative
// completed-work figure for progress reporting. Per-slave progress deltas
// cannot serve that role — with the workload adjustment mechanism several
// replicas scan the same task and each reports its own cells, so summing
// deltas double-counts replicated work.
func (p *Pool) FinishedCells() int64 {
	var cells int64
	for i := range p.entries {
		if p.entries[i].state == Finished {
			cells += p.entries[i].task.Cells
		}
	}
	return cells
}

// FinishedBy returns which slave completed task id and when; ok is false if
// the task is not finished.
func (p *Pool) FinishedBy(id TaskID) (s SlaveID, at time.Duration, ok bool) {
	e := &p.entries[id]
	if e.state != Finished {
		return -1, 0, false
	}
	return e.finishedBy, e.finishedAt, true
}
