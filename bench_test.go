// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), one benchmark per artifact, plus kernel micro-benchmarks for the
// real compute path. Virtual-time experiments report their simulated
// seconds and GCUPS as custom metrics (sim_s, sim_GCUPS); kernel benchmarks
// report real MCUPS.
//
// Run: go test -bench=. -benchmem
package hybridsw_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	hybridsw "repro"
	"repro/internal/assembly"
	"repro/internal/cudasw"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/farrar"
	"repro/internal/msa"
	"repro/internal/parallel"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
	"repro/internal/swipe"
)

// reportRun attaches a run's simulated time and GCUPS to the benchmark.
func reportRun(b *testing.B, seconds, gcups float64) {
	b.ReportMetric(seconds, "sim_s")
	b.ReportMetric(gcups, "sim_GCUPS")
}

func BenchmarkTable2_Databases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Table2(); tab == nil {
			b.Fatal("no table")
		}
	}
}

func benchSweep(b *testing.B, f func() ([]experiments.Run, interface{ String() string }, error)) {
	runs, _, err := f()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range runs {
		r := r
		b.Run(fmt.Sprintf("%s/%s", sanitize(r.DB), sanitize(r.Config)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// The sweep above already ran everything once
				// deterministically; re-running per-iteration keeps the
				// benchmark honest about cost.
			}
			reportRun(b, r.Time().Seconds(), r.GCUPS())
		})
	}
}

func BenchmarkTable3_SSE(b *testing.B) {
	benchSweep(b, func() ([]experiments.Run, interface{ String() string }, error) {
		runs, tab, err := experiments.Table3()
		return runs, tab, err
	})
}

func BenchmarkTable4_GPU(b *testing.B) {
	benchSweep(b, func() ([]experiments.Run, interface{ String() string }, error) {
		runs, tab, err := experiments.Table4()
		return runs, tab, err
	})
}

func BenchmarkTable5_Hybrid(b *testing.B) {
	benchSweep(b, func() ([]experiments.Run, interface{ String() string }, error) {
		runs, tab, err := experiments.Table5()
		return runs, tab, err
	})
}

func BenchmarkFig5_Walkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.With.Makespan.Seconds(), "with_s")
			b.ReportMetric(res.Without.Makespan.Seconds(), "without_s")
		}
	}
}

func BenchmarkFig6_Adjustment(b *testing.B) {
	rows, _, err := experiments.Fig6()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		r := r
		b.Run(sanitize(r.Config), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(r.With, "with_GCUPS")
			b.ReportMetric(r.Without, "without_GCUPS")
			b.ReportMetric(r.GainPercent, "gain_pct")
		})
	}
}

func BenchmarkFig7_Dedicated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Makespan.Seconds(), "sim_s")
		}
	}
}

func BenchmarkFig8_NonDedicated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Makespan.Seconds(), "sim_s")
		}
	}
}

func BenchmarkPolicyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PolicyAblation(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOmegaAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OmegaAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatencyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LatencyAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- real compute-kernel benchmarks ------------------------------------

func randProtein(rng *rand.Rand, n int) []byte {
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	out := make([]byte, n)
	for i := range out {
		out[i] = canon[rng.Intn(len(canon))]
	}
	return out
}

// reportMCUPS converts benchmark cell throughput to millions of cell
// updates per second.
func reportMCUPS(b *testing.B, cellsPerOp int64, elapsed time.Duration) {
	if elapsed <= 0 {
		return
	}
	mcups := float64(cellsPerOp) * float64(b.N) / elapsed.Seconds() / 1e6
	b.ReportMetric(mcups, "MCUPS")
}

// BenchmarkKernelFarrarSWAR8 measures the default production 8-bit tier:
// the 64-bit SWAR kernel behind the dispatched Score8 entry point.
func BenchmarkKernelFarrarSWAR8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := randProtein(rng, 128)
	d := randProtein(rng, 400)
	k, err := farrar.NewKernel(q, score.DefaultProtein())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, ok := k.Score8(d); !ok {
			b.Fatal("overflow")
		}
	}
	reportMCUPS(b, int64(len(q))*int64(len(d)), time.Since(start))
}

// BenchmarkKernelFarrarU8 measures the emulated-ISA oracle on the same
// tier; the gap to KernelFarrarSWAR8 is the SWAR rewrite's payoff.
func BenchmarkKernelFarrarU8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := randProtein(rng, 128)
	d := randProtein(rng, 400)
	k, err := farrar.NewKernel(q, score.DefaultProtein())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, ok := k.ScoreU8(d); !ok {
			b.Fatal("overflow")
		}
	}
	reportMCUPS(b, int64(len(q))*int64(len(d)), time.Since(start))
}

func BenchmarkKernelFarrarI16(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	q := randProtein(rng, 128)
	d := randProtein(rng, 400)
	k, _ := farrar.NewKernel(q, score.DefaultProtein())
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, ok := k.ScoreI16(d); !ok {
			b.Fatal("overflow")
		}
	}
	reportMCUPS(b, int64(len(q))*int64(len(d)), time.Since(start))
}

func BenchmarkKernelReferenceSW(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	q := randProtein(rng, 128)
	d := randProtein(rng, 400)
	s := score.DefaultProtein()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sw.Score(q, d, s)
	}
	reportMCUPS(b, int64(len(q))*int64(len(d)), time.Since(start))
}

func BenchmarkKernelTraceback(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	q := randProtein(rng, 200)
	d := randProtein(rng, 200)
	s := score.DefaultProtein()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Align(q, d, s)
	}
}

func BenchmarkKernelLinearSpace(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	q := randProtein(rng, 200)
	d := randProtein(rng, 200)
	s := score.DefaultProtein()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.AlignLinearSpace(q, d, s)
	}
}

func BenchmarkCUDASWEngineSearch(b *testing.B) {
	p := dataset.Profile{Name: "bench", NumSeqs: 100, MeanLen: 200, SigmaLn: 0.5, MinLen: 50, MaxLen: 800}
	db := dataset.Generate(p, 6)
	eng, err := cudasw.NewEngine(cudasw.GTX580(), score.DefaultProtein(), db)
	if err != nil {
		b.Fatal(err)
	}
	q := dataset.Queries(db, 1, 150, 150, 7)[0]
	b.ResetTimer()
	start := time.Now()
	var cells int64
	for i := 0; i < b.N; i++ {
		_, rep, err := eng.Search(q.Residues, true)
		if err != nil {
			b.Fatal(err)
		}
		cells = rep.Cells
	}
	reportMCUPS(b, cells, time.Since(start))
}

func BenchmarkSearchEndToEnd(b *testing.B) {
	db, err := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.0008, 9)
	if err != nil {
		b.Fatal(err)
	}
	queries := hybridsw.GenerateQueries(db, 3, 60, 200, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hybridsw.Search(queries, db, hybridsw.Platform{
			GPUs: 1, SSECores: 1, Policy: "PSS", Adjust: true, TopK: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '/', '+':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkKernelSwipe(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	q := randProtein(rng, 128)
	db := make([]*seq.Sequence, 64)
	var cells int64
	for i := range db {
		db[i] = seq.New("s", "", randProtein(rng, 400))
		cells += int64(len(q)) * 400
	}
	sr, err := swipe.New(q, score.DefaultProtein())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sr.Search(db)
	}
	reportMCUPS(b, cells, time.Since(start))
}

func BenchmarkParallelStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	q := randProtein(rng, 100)
	db := make([]*seq.Sequence, 48)
	for i := range db {
		db[i] = seq.New("s", "", randProtein(rng, 300))
	}
	s := score.DefaultProtein()
	b.Run("fine_grained_pair", func(b *testing.B) {
		d := db[0].Residues
		for i := 0; i < b.N; i++ {
			parallel.FineGrainedScore(q, d, s, 4, 64)
		}
	})
	b.Run("coarse_grained_db", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := parallel.CoarseGrainedSearch(q, db, s, 4, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("very_coarse_queries", func(b *testing.B) {
		queries := []*seq.Sequence{seq.New("q", "", q)}
		for i := 0; i < b.N; i++ {
			if _, err := parallel.VeryCoarseGrainedSearch(queries, db, s, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMSACenterStar(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	ancestor := randProtein(rng, 80)
	var seqs []*seq.Sequence
	for i := 0; i < 6; i++ {
		res := append([]byte{}, ancestor...)
		for k := 0; k < 6; k++ {
			res[rng.Intn(len(res))] = "ACDEFGHIKLMNPQRSTVWY"[rng.Intn(20)]
		}
		seqs = append(seqs, seq.New("m", "", res))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := msa.Align(seqs, score.DefaultProtein(), 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssemblyGreedyOLC(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	genome := make([]byte, 800)
	for i := range genome {
		genome[i] = "ATGC"[rng.Intn(4)]
	}
	var reads []*seq.Sequence
	for start := 0; start+120 <= len(genome); start += 80 {
		reads = append(reads, seq.New("r", "", genome[start:start+120]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assembly.Assemble(reads, assembly.Options{MinOverlap: 30, MinScore: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFutureWorkScenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FutureWork(); err != nil {
			b.Fatal(err)
		}
	}
}
