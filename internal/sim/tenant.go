package sim

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/jobs"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/wire"
)

// arrival is one tenant job flowing through the simulated front door:
// scheduled at a virtual instant, checked against the tenant's quota
// (jobs.TenantBook — the exact accounting the HTTP layer uses), submitted
// to the running master as a tagged task, and tracked to completion for
// the no-starvation and fairness invariants.
type arrival struct {
	tenant   string
	index    int
	residues int
	priority int
	maxWait  time.Duration

	query     *seq.Sequence
	tid       sched.TaskID
	submitted bool
	rejected  bool
	admitAt   time.Duration
	done      bool
	doneAt    time.Duration
}

// fairEvent is one entry of the chronological fairness trace: an arrival
// entering (+1) or completing (-1, carrying its task cells) a tenant's
// backlog. The envy sweep replays it per tenant pair.
type fairEvent struct {
	at     time.Duration
	tenant string
	delta  int
	cells  int64
}

// initTenants builds the front-door book and the arrival list (newRun).
func (r *run) initTenants() {
	cfg := map[string]jobs.TenantConfig{}
	for _, t := range r.sc.Tenants {
		cfg[t.Name] = jobs.TenantConfig{Weight: t.Weight, MaxOutstanding: t.MaxOutstanding}
	}
	r.book = jobs.NewTenantBook(jobs.TenantDRF, cfg, jobs.TenantConfig{})
	r.taskMeta = map[sched.TaskID]*arrival{}
	for _, t := range r.sc.Tenants {
		for j := 0; j < t.Jobs; j++ {
			a := &arrival{
				tenant:   t.Name,
				index:    j,
				residues: t.Residues,
				priority: t.Priority,
				maxWait:  t.MaxWait,
				query: seq.New(fmt.Sprintf("%s-j%02d", t.Name, j), "",
					bytes.Repeat([]byte{'M'}, t.Residues)),
			}
			r.arrivals = append(r.arrivals, a)
		}
	}
}

// startTenants schedules every arrival (start).
func (r *run) startTenants() {
	for _, t := range r.sc.Tenants {
		for _, a := range r.arrivals {
			if a.tenant != t.Name {
				continue
			}
			a := a
			r.arrivalsLeft++
			r.sim.Schedule(t.StartAt+time.Duration(a.index)*t.Every, func() { r.arrive(a) })
		}
	}
}

// arrive is the client knocking: with the master down the arrival defers
// (the client retries after the restore), otherwise it goes through
// admission.
func (r *run) arrive(a *arrival) {
	r.arrivalsLeft--
	if !r.masterUp() {
		r.deferred = append(r.deferred, a)
		return
	}
	r.admit(a)
}

// admit runs one arrival through quota admission and, if accepted, submits
// it to the running job. Rejection models the HTTP 429: the client goes
// away; only admitted arrivals join the no-starvation contract.
func (r *run) admit(a *arrival) {
	now := r.sim.Now()
	if rej := r.book.Admit(a.tenant, int64(a.residues)); rej != nil {
		a.rejected = true
		r.rejectedArrivals++
		return
	}
	// The book's queued phase is instantaneous in this model: the fair
	// queueing itself happens in the coordinator, the book carries quota
	// and audit state.
	r.book.Enqueue(a.tenant, int64(a.residues))
	r.book.Dequeue(a.tenant, 1, int64(a.residues))
	tid, err := r.core.Submit(a.query, a.tenant, a.priority)
	if err != nil {
		r.violatef("arrivals: submit %s: %v", a.query.ID, err)
		return
	}
	a.tid = tid
	a.submitted = true
	a.admitAt = now
	r.queries = append(r.queries, a.query)
	r.taskMeta[tid] = a
	r.appendLedger(tid, jobs.StateQueued)
	r.fairTrace = append(r.fairTrace, fairEvent{at: now, tenant: a.tenant, delta: +1})
}

// resubmitArrivals replays submitted arrivals the restored checkpoint does
// not carry (everything after the last synchronous checkpoint), in task-ID
// order so pool numbering realigns with r.queries. Front-door state (book,
// admit times) is durable across master restarts — the jobs layer owns it.
func (r *run) resubmitArrivals(from int) {
	for tid := from; tid < len(r.queries); tid++ {
		a := r.taskMeta[sched.TaskID(tid)]
		if a == nil {
			r.violatef("restart: task %d has no arrival metadata", tid)
			return
		}
		got, err := r.core.Submit(a.query, a.tenant, a.priority)
		if err != nil {
			r.violatef("restart: resubmit %s: %v", a.query.ID, err)
			return
		}
		if got != a.tid {
			r.violatef("restart: arrival %s realigned to task %d, was %d", a.query.ID, got, a.tid)
		}
	}
}

// drainDeferred re-admits arrivals that found the master down.
func (r *run) drainDeferred() {
	pending := r.deferred
	r.deferred = nil
	for _, a := range pending {
		r.admit(a)
	}
}

// arrivalsPending reports whether future or deferred arrivals exist — while
// true, Done must not reach the slaves (persistent-service mode).
func (r *run) arrivalsPending() bool {
	return r.arrivalsLeft > 0 || len(r.deferred) > 0
}

// afterDispatch maintains the tenant/preemption bookkeeping around one
// delivered envelope: completion accounting for tagged tasks, the
// sole-copy-never-preempted audit, Done-stripping while arrivals remain,
// and the jobDone latch.
func (r *run) afterDispatch(req wire.Envelope, resp *wire.Envelope, now time.Duration) {
	// Arrival completions: the accepted completion of a tagged task closes
	// its front-door accounting and feeds the fairness trace.
	if req.Complete != nil && resp.CompleteAck != nil && resp.CompleteAck.Accepted {
		if a := r.taskMeta[req.Complete.Task]; a != nil && !a.done {
			a.done = true
			a.doneAt = now
			r.book.Finish(a.tenant, int64(a.residues), true)
			r.fairTrace = append(r.fairTrace, fairEvent{
				at: now, tenant: a.tenant, delta: -1,
				cells: r.core.Coordinator().Pool().Task(req.Complete.Task).Cells,
			})
		}
	}

	// Sole-copy audit: every preemption event must leave a survivor.
	log := r.core.Coordinator().PreemptLog()
	for i := r.preemptSeen; i < len(log); i++ {
		r.preempts++
		if log[i].Survivors < 1 {
			r.violatef("preempt-safety: task %d preempted at %v with %d surviving copies",
				log[i].Task, log[i].At, log[i].Survivors)
		}
	}
	r.preemptSeen = len(log)

	// Persistent service: while arrivals remain, Done must not reach the
	// slaves — they would latch stopped and never serve the next arrival.
	if r.arrivalsPending() {
		if resp.Assign != nil && resp.Assign.Done {
			resp.Assign.Done = false
			resp.Assign.Standby = len(resp.Assign.Tasks) == 0
		}
		if resp.ProgressAck != nil {
			resp.ProgressAck.Done = false
		}
		if resp.CompleteAck != nil {
			resp.CompleteAck.Done = false
		}
	} else if r.core.Done() {
		r.jobDone = true
	}
}

// --- elastic pool -----------------------------------------------------

// startAutoscale boots the controller and its observation ticker (start).
func (r *run) startAutoscale() {
	a := r.sc.Autoscale
	if a == nil {
		return
	}
	r.scaler = autoscale.New(autoscale.Config{
		Min: a.Min, Max: a.Max,
		UpAt: a.UpAt, DownAt: a.DownAt,
		UpAfter: a.UpAfter, DownAfter: a.DownAfter,
		Cooldown: a.Cooldown,
	})
	r.sim.After(a.Every, r.autoscaleTick)
}

// alivePool counts machines that could serve work right now.
func (r *run) alivePool() int {
	n := 0
	for _, m := range r.machines {
		if !m.crashed && !m.wedged && !m.stopped {
			n++
		}
	}
	return n
}

// autoscaleTick is the recurring observation: feed (ready backlog, alive
// pool) to the controller and apply its action. Ticks pause while the
// master is down (nothing to observe) and stop for good when the job is
// done.
func (r *run) autoscaleTick() {
	if r.jobDone {
		return
	}
	a := r.sc.Autoscale
	if r.masterUp() {
		pool := r.alivePool()
		switch r.scaler.Observe(r.core.Coordinator().Pool().Ready(), pool, r.sim.Now()) {
		case autoscale.Grow:
			r.growElastic()
		case autoscale.Shrink:
			r.retireElastic()
		case autoscale.Hold:
		}
		if after := r.alivePool(); after > a.Max {
			r.violatef("autoscale-clamp: %d alive machines exceed Max %d", after, a.Max)
		}
	}
	r.sim.After(a.Every, r.autoscaleTick)
}

// growElastic boots a fresh slave from the template after the boot delay.
func (r *run) growElastic() {
	spec := r.sc.Autoscale.Slave
	spec.Name = fmt.Sprintf("%s-%d", spec.Name, r.autoSeq)
	r.autoSeq++
	m := newMachine(r, len(r.machines), spec)
	m.elastic = true
	r.machines = append(r.machines, m)
	r.sim.After(r.sc.Autoscale.BootDelay, m.boot)
}

// retireElastic kills the most recently booted live elastic slave — the
// scale-in path reuses the crash machinery, so the master hears SlaveGone
// and requeues whatever the retiree held.
func (r *run) retireElastic() {
	for i := len(r.machines) - 1; i >= 0; i-- {
		m := r.machines[i]
		if m.elastic && !m.crashed && !m.wedged && !m.stopped {
			m.crash()
			return
		}
	}
}

// --- final invariants -------------------------------------------------

// checkTenantsFinal runs the multi-tenancy invariant library at
// quiescence: every admitted arrival completed (and inside its SLO), the
// quota book audits clean, the scale-action budget held, and — when the
// scenario asks — the pairwise DRF envy sweep.
func (r *run) checkTenantsFinal() {
	for _, a := range r.arrivals {
		switch {
		case a.rejected:
			continue
		case !a.submitted:
			r.violatef("no-starvation: arrival %s-j%02d was never admitted (master down at arrival and never retried?)",
				a.tenant, a.index)
		case !a.done:
			r.violatef("no-starvation: admitted arrival %s never completed", a.query.ID)
		case a.maxWait > 0 && a.doneAt-a.admitAt > a.maxWait:
			r.violatef("no-starvation: arrival %s waited %v, SLO %v (admitted %v, done %v)",
				a.query.ID, a.doneAt-a.admitAt, a.maxWait, a.admitAt, a.doneAt)
		}
	}
	if r.book != nil {
		if err := r.book.Check(); err != nil {
			r.violatef("quota-accounting: %v", err)
		}
		for _, t := range r.sc.Tenants {
			if out, _ := r.book.Outstanding(t.Name); out != 0 {
				r.violatef("quota-accounting: tenant %q ends with %d outstanding jobs", t.Name, out)
			}
		}
	}
	if r.scaler != nil {
		if n := len(r.scaler.Decisions()); n > r.sc.Autoscale.MaxActions {
			r.violatef("autoscale-stability: %d scale actions exceed the budget of %d (flapping): %+v",
				n, r.sc.Autoscale.MaxActions, r.scaler.Decisions())
		}
	}
	if r.sc.CheckFairShare {
		r.checkEnvy()
	}
}

// checkEnvy is the DRF envy-freeness sweep: for every tenant pair, replay
// the fairness trace and total each side's weight-normalized served cells
// during the windows where BOTH were backlogged. Fair scheduling keeps the
// normalized totals close; a starved tenant watches the other complete
// work all through its own backlog and fails loudly. Tolerance is relative
// (FairTolerance of the pair's combined normalized service) plus an
// absolute slack covering coarse-task granularity.
func (r *run) checkEnvy() {
	slack := float64(r.sc.FairSlackCells)
	if slack <= 0 {
		var maxCells int64
		for _, a := range r.arrivals {
			if c := int64(a.residues) * r.sc.DBResidues; c > maxCells {
				maxCells = c
			}
		}
		slack = 2 * float64(maxCells)
	}
	weight := map[string]float64{}
	for _, t := range r.sc.Tenants {
		weight[t.Name] = t.Weight
	}
	sawContention := false
	for i := 0; i < len(r.sc.Tenants); i++ {
		for j := i + 1; j < len(r.sc.Tenants); j++ {
			na, nb := r.sc.Tenants[i].Name, r.sc.Tenants[j].Name
			outs := map[string]int{}
			var servedA, servedB int64
			for _, e := range r.fairTrace {
				if e.delta < 0 && outs[na] > 0 && outs[nb] > 0 {
					sawContention = true
					switch e.tenant {
					case na:
						servedA += e.cells
					case nb:
						servedB += e.cells
					}
				}
				outs[e.tenant] += e.delta
			}
			normA := float64(servedA) / weight[na]
			normB := float64(servedB) / weight[nb]
			diff := normA - normB
			if diff < 0 {
				diff = -diff
			}
			if limit := r.sc.FairTolerance*(normA+normB) + slack; diff > limit {
				r.violatef("drf-envy: tenants %q/%q diverge by %.3g normalized cells in contention (limit %.3g; served %d vs %d)",
					na, nb, diff, limit, servedA, servedB)
			}
		}
	}
	if !sawContention && len(r.sc.Tenants) >= 2 {
		r.violatef("drf-envy: CheckFairShare set but no two tenants were ever backlogged together — the scenario proves nothing")
	}
}
