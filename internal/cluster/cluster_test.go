package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/wire"
)

func testDB(t *testing.T, name string, scale float64, seed int64) []*seq.Sequence {
	t.Helper()
	db, err := hybridsw.GenerateDatabase(name, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// rankingJSON projects results onto exactly the fields the ranking-identity
// contract covers (query identity plus the full hit lists, alignment
// payloads included) and serializes them, so "byte-identical" is literal.
func rankingJSON(t *testing.T, perQuery []hybridsw.QueryResult) string {
	t.Helper()
	type row struct {
		Query string
		Hits  []wire.Hit
	}
	rows := make([]row, len(perQuery))
	for i, q := range perQuery {
		rows[i] = row{Query: q.Query, Hits: q.Hits}
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterMatchesLocalRanking is the ranking-identity property test:
// across a seeded scheme x database x mode x top-k matrix, the cluster
// scatter-gather merge must be byte-identical to the local backend.
func TestClusterMatchesLocalRanking(t *testing.T) {
	altScheme := hybridsw.DefaultScheme()
	altScheme.Gap = score.AffineGap(5, 1)
	schemes := []struct {
		name string
		s    hybridsw.Scheme
	}{
		{"blosum62-10-2", hybridsw.DefaultScheme()},
		{"blosum62-5-1", altScheme},
	}
	dbs := []struct {
		name  string
		scale float64
		seed  int64
	}{
		{"Ensembl Dog Proteins", 0.0006, 13},
		{"UniProtKB/SwissProt", 0.0015, 2},
	}
	for _, dbc := range dbs {
		db := testDB(t, dbc.name, dbc.scale, dbc.seed)
		queries := hybridsw.GenerateQueries(db, 3, 40, 100, dbc.seed+1)
		for _, sc := range schemes {
			for _, mode := range []string{"full", "filtered"} {
				for _, topK := range []int{0, 3} {
					// Exercise the alignment-stripping path on one cell of
					// the matrix; tracebacks are expensive to run everywhere.
					align := mode == "full" && topK == 3
					name := fmt.Sprintf("%s/%s/%s/topk=%d", dbc.name, sc.name, mode, topK)
					t.Run(name, func(t *testing.T) {
						local, err := hybridsw.Search(queries, db, hybridsw.Platform{
							SSECores: 1, Policy: "PSS", TopK: topK,
							Scheme: sc.s, Mode: mode, AlignBest: align,
						})
						if err != nil {
							t.Fatal(err)
						}
						fleet, err := cluster.New(cluster.Config{
							DB: db, Shards: 3, Replicas: 2, Scheme: sc.s,
						})
						if err != nil {
							t.Fatal(err)
						}
						rep, err := fleet.Search(queries, cluster.Params{
							Policy: "PSS", TopK: topK, Mode: mode, AlignBest: align,
						})
						if err != nil {
							t.Fatal(err)
						}
						got, want := rankingJSON(t, rep.PerQuery), rankingJSON(t, local.PerQuery)
						if got != want {
							t.Errorf("cluster ranking diverges from local:\n got %s\nwant %s", got, want)
						}
						if mode == "filtered" {
							if rep.Filter == nil || local.Filter == nil {
								t.Fatal("filtered report missing Filter stats")
							}
							// Residue accounting must sum back to the local
							// backend's totals; rescored cells may exceed them
							// by at most one padding cell per (shard, query)
							// pair (a windowless shard prefilter still appends
							// a 1-cell rescore task).
							if rep.Filter.ResiduesScanned != local.Filter.ResiduesScanned ||
								rep.Filter.FullScanCells != local.Filter.FullScanCells {
								t.Errorf("filter accounting diverges: cluster %+v local %+v", rep.Filter, local.Filter)
							}
							slack := int64(3 * len(queries))
							if rep.Filter.RescoredCells < local.Filter.RescoredCells ||
								rep.Filter.RescoredCells > local.Filter.RescoredCells+slack {
								t.Errorf("rescored cells %d outside [%d, %d+%d]",
									rep.Filter.RescoredCells, local.Filter.RescoredCells, local.Filter.RescoredCells, slack)
							}
						} else if rep.Cells != local.Cells {
							t.Errorf("cell totals diverge: cluster %d local %d", rep.Cells, local.Cells)
						}
					})
				}
			}
		}
	}
}

// TestClusterFailover kills a shard's replica mid-scan and asserts the
// surviving replica finishes the job with results still identical to the
// local backend — the e2e counterpart of the sim scenario.
func TestClusterFailover(t *testing.T) {
	db := testDB(t, "Ensembl Dog Proteins", 0.002, 7)
	queries := hybridsw.GenerateQueries(db, 5, 80, 160, 8)
	local, err := hybridsw.Search(queries, db, hybridsw.Platform{SSECores: 1, TopK: 4})
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	fleet, err := cluster.New(cluster.Config{DB: db, Shards: 2, Replicas: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Kill shard 0's first replica the moment the shard reports real
	// progress, so the crash lands mid-scan rather than before or after.
	var kill sync.Once
	rep, err := fleet.SearchContext(context.Background(), queries, cluster.Params{
		TopK: 4,
		OnShards: func(shards []cluster.ShardStatus) {
			if shards[0].Cells > 0 {
				kill.Do(func() {
					if err := fleet.KillReplica(0, 0); err != nil {
						t.Error(err)
					}
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rankingJSON(t, rep.PerQuery), rankingJSON(t, local.PerQuery); got != want {
		t.Errorf("post-failover ranking diverges from local:\n got %s\nwant %s", got, want)
	}
	if rep.Shards[0].Failovers < 1 {
		t.Errorf("shard 0 absorbed no failover (report %+v)", rep.Shards[0])
	}
	if !fleet.Ready() {
		t.Error("fleet not ready: surviving replicas should keep every shard live")
	}
	if err := fleet.ReviveReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	health := fleet.Health()
	if health[0].Live != 2 {
		t.Errorf("revived shard 0 reports %d live replicas, want 2", health[0].Live)
	}
}

// TestReportAggregatesGCUPS is the regression test for cross-shard
// throughput accounting: Report.Cells must sum every shard's work (not
// just the last completing engine's), with a per-shard breakdown.
func TestReportAggregatesGCUPS(t *testing.T) {
	db := testDB(t, "Ensembl Dog Proteins", 0.001, 21)
	queries := hybridsw.GenerateQueries(db, 3, 60, 120, 22)
	fleet, err := cluster.New(cluster.Config{DB: db, Shards: 3, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Search(queries, cluster.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shards) != 3 {
		t.Fatalf("%d shard reports, want 3", len(rep.Shards))
	}
	var sum int64
	for _, s := range rep.Shards {
		if s.Cells <= 0 {
			t.Errorf("shard %d reports %d cells", s.Shard, s.Cells)
		}
		if s.Elapsed <= 0 || s.GCUPS <= 0 {
			t.Errorf("shard %d breakdown incomplete: %+v", s.Shard, s)
		}
		sum += s.Cells
	}
	if rep.Cells != sum {
		t.Errorf("Report.Cells = %d, want the cross-shard sum %d", rep.Cells, sum)
	}
	var queryRes, dbRes int64
	for _, q := range queries {
		queryRes += int64(q.Len())
	}
	for _, d := range db {
		dbRes += int64(d.Len())
	}
	if want := queryRes * dbRes; rep.Cells != want {
		t.Errorf("Report.Cells = %d, want |queries| x |db| = %d", rep.Cells, want)
	}
	if g := rep.GCUPS(); g <= 0 {
		t.Errorf("aggregate GCUPS = %v", g)
	}
}

// TestFleetValidation covers the constructor's error paths and the
// replica-addressing seam.
func TestFleetValidation(t *testing.T) {
	db := testDB(t, "Ensembl Dog Proteins", 0.0004, 5)
	if _, err := cluster.New(cluster.Config{}); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := cluster.New(cluster.Config{DB: db, Shards: len(db) + 1}); err == nil {
		t.Error("more shards than sequences accepted")
	}
	if _, err := cluster.New(cluster.Config{DB: db, CPUKernel: "bogus"}); err == nil {
		t.Error("unknown kernel accepted")
	}
	fleet, err := cluster.New(cluster.Config{DB: db, Shards: 2, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.KillReplica(9, 0); err == nil {
		t.Error("kill of unknown shard accepted")
	}
	if err := fleet.KillReplica(0, 9); err == nil {
		t.Error("kill of unknown replica accepted")
	}
	if err := fleet.ReviveReplica(9, 0); err == nil {
		t.Error("revive of unknown shard accepted")
	}
	queries := hybridsw.GenerateQueries(db, 1, 50, 50, 6)
	if _, err := fleet.Search(nil, cluster.Params{}); err == nil {
		t.Error("empty query set accepted")
	}
	if _, err := fleet.Search(queries, cluster.Params{Policy: "bogus"}); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := fleet.Search(queries, cluster.Params{Mode: "bogus"}); err == nil {
		t.Error("bad mode accepted")
	}
	// A shard with every replica dead fails the job instead of hanging.
	if err := fleet.KillReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	if fleet.Ready() {
		t.Error("fleet with a dead shard reports ready")
	}
	if _, err := fleet.Search(queries, cluster.Params{}); err == nil {
		t.Error("search with a replica-less shard succeeded")
	}
}
