# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet lint lint-cover test race race-full sim-smoke fuzz-smoke bench-smoke cover cluster-cover tenancy-cover bench tables svg csv examples clean

# The concurrency-heavy packages (distributed path + scheduler) always run
# under the race detector as part of `make test`; `race-full` covers the
# whole module. internal/sim is single-threaded by construction (the purity
# analyzer forbids goroutines there), but it rides along so any accidental
# concurrency shows up as a race, not just a determinism break.
# internal/simd rides along too: the SWAR lane-law property tests there are
# pure math, but running them under -race keeps the exhaustive truth tables
# honest if anyone parallelizes them later.
RACE_PKGS := ./internal/sched/... ./internal/master/... ./internal/slave/... ./internal/wire/... ./internal/httpapi/... ./internal/metrics/... ./internal/jobs/... ./internal/autoscale/... ./internal/sim/... ./internal/simd/... ./internal/prefilter/... ./internal/cluster/...

all: build lint test

build:
	go build ./...

vet:
	go vet ./...

# Run the repo's own static-analysis suite (see cmd/swcheck and DESIGN §7):
# scheduler purity, enum-switch exhaustiveness, mutex discipline, nil-guarded
# metric handles, dropped errors, metric naming, and the flow-sensitive
# quartet (ctxflow, unlockpath, leakcheck, deadline) built on the CFG/
# dataflow engine. The second pass audits every //swcheck:ignore directive
# and fails on stale ones. cmd/metriclint survives as a deprecated alias
# for the metricname analyzer alone. CI runs this as its own job (with a
# JSON findings artifact); locally it still rides along in `make all`.
lint:
	go run ./cmd/swcheck ./...
	go run ./cmd/swcheck -ignores ./...

# Coverage floor for the analyzer engine itself: the CFG/dataflow core
# gates the whole tree, so its own tests must not rot.
lint-cover:
	go test -coverprofile=analysis.cover.out ./internal/analysis
	go run ./cmd/covercheck -profile analysis.cover.out -min 80

# test runs vet plus the test suite; lint is deliberately NOT a
# prerequisite any more — CI runs it as a separate job so analyzer
# findings and test failures show up independently. `make all` still
# chains build + lint + test for the local one-shot.
test: vet
	go test ./...
	go test -race $(RACE_PKGS)

race:
	go test -race $(RACE_PKGS)

race-full:
	go test -race ./...

# Chaos-test the master/slave/jobs stack: 200 generated fault scenarios
# replayed under virtual time from pinned seeds (see cmd/swsim and
# DESIGN §10) — about a third of which now carry tenant arrival streams,
# preemption and elastic pools — plus the curated scenarios: the cluster
# backend's replica-crash story, the DRF flood-vs-trickle fairness
# contract, quota admission, preemption safety and autoscaler stability
# (DESIGN §13). Fails loudly with a shrunken reproducer on any invariant
# violation.
sim-smoke:
	go run ./cmd/swsim -seed 1 -scenarios 200 -duration 60s
	go run ./cmd/swsim -named shard-failover -seed 1 -scenarios 25
	go run ./cmd/swsim -named tenant-starvation -seed 1 -scenarios 25
	go run ./cmd/swsim -named quota-burst -seed 1 -scenarios 25
	go run ./cmd/swsim -named preempt-storm -seed 1 -scenarios 25
	go run ./cmd/swsim -named autoscale-flap -seed 1 -scenarios 25

# Coverage floor for the multi-tenant control plane: the fair queue +
# quota book (jobs) and the scale controller (autoscale) gate admission
# and capacity decisions, so their tests must not rot.
tenancy-cover:
	go test -coverprofile=tenancy.cover.out ./internal/jobs ./internal/autoscale
	go run ./cmd/covercheck -profile tenancy.cover.out -min 78

# Coverage floor for the cluster backend: the scatter-gather merge and
# failover paths gate serving correctness, so their tests must not rot.
cluster-cover:
	go test -coverprofile=cluster.cover.out ./internal/cluster
	go run ./cmd/covercheck -profile cluster.cover.out -min 75

# Short runs of the coverage-guided fuzzers over the two parsers that
# consume untrusted or crash-corrupted bytes (the wire codec and the jobs
# WAL replayer) plus the two differential fuzzers: the Farrar kernel one,
# which drives random sequences and gap schemes through the full
# SWAR/emulated/scalar ladder and fails on any score divergence, and the
# Aho-Corasick one, which pits the prefilter automaton against a naive
# multi-pattern scan, and the fair-queue one, which replays randomized
# push/pop/finish/remove interleavings against a shadow model of the
# per-tenant accounting. Each target fuzzes for a fixed budget;
# regressions land in testdata/fuzz and replay as ordinary tests forever
# after.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzWireDecode -fuzztime=10s ./internal/wire
	go test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=10s ./internal/jobs
	go test -run='^$$' -fuzz=FuzzFairQueue -fuzztime=10s ./internal/jobs
	go test -run='^$$' -fuzz=FuzzFarrarVsScalar -fuzztime=10s ./internal/farrar
	go test -run='^$$' -fuzz=FuzzACVsNaive -fuzztime=10s ./internal/prefilter

# Fast kernel health check: the four Score8/Score16 microbenchmarks (SWAR
# vs emulated, so a vanished speedup is visible at a glance), the
# Aho-Corasick automaton-throughput microbenchmark (residues/s over a 1-MiB
# stream), plus the coverage floor over the kernel and prefilter packages
# only. Cheap enough for every PR, unlike the full `bench` archive run.
bench-smoke:
	go test -bench='BenchmarkScore(8|16)' -benchmem -run='^$$' ./internal/farrar
	go test -bench='BenchmarkACScan' -benchmem -run='^$$' ./internal/prefilter
	go test -bench='BenchmarkSwcheckRepo' -benchtime=1x -run='^$$' ./internal/analysis
	go test -coverprofile=kernel.cover.out ./internal/farrar ./internal/simd/... ./internal/prefilter
	go run ./cmd/covercheck -profile kernel.cover.out -min 75

# Coverage with a ratcheted floor: cmd/covercheck fails the build when
# total statement coverage drops below -min.
cover:
	go test -coverprofile=cover.out ./...
	go run ./cmd/covercheck -profile cover.out -min 75

# Run every benchmark with allocation stats and archive the run as
# BENCH_<date>.json (see EXPERIMENTS.md for the format); raw output
# stays visible on stderr.
bench:
	go test -bench=. -benchmem -run='^$$' ./... | go run ./cmd/benchjson

# Regenerate every table and figure of the paper (EXPERIMENTS.md data).
tables:
	go run ./cmd/benchtables

svg:
	go run ./cmd/benchtables -svg out/svg

csv:
	go run ./cmd/benchtables -csv out/csv

examples:
	@for e in quickstart adjustment hybridsearch nondedicated distributed applications; do \
		echo "=== examples/$$e ==="; go run ./examples/$$e || exit 1; done

clean:
	rm -rf out
