package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	srv, ts := testServer(t)
	// Run one search so the scheduler/wire/slave families carry values.
	q := srv.db[0]
	resp, body := post(t, ts.URL+"/search", SearchRequest{
		QueriesFasta: fmt.Sprintf(">q\n%s\n", q.Residues), TopK: 1,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("search: %d %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("metrics: %v %v", resp, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	expo := buf.String()
	for _, want := range []string{
		"# TYPE sched_tasks_completed_total counter",
		"sched_slave_rate_gcups{slave=",
		"wire_call_seconds_bucket{kind=\"Complete\",le=",
		"slave_task_seconds_count",
		"httpapi_requests_total{route=\"search\",class=\"2xx\"} 1",
		"httpapi_request_seconds_count{route=\"search\"} 1",
		"# TYPE httpapi_in_flight_requests gauge",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestVarzEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/varz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("varz: %v %v", resp, err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	// The pre-registered scheduler families appear before any traffic.
	if _, ok := doc["sched_tasks_completed_total"]; !ok {
		t.Errorf("varz missing sched_tasks_completed_total: %v", doc)
	}
}

func TestRequestIDEcho(t *testing.T) {
	_, ts := testServer(t)
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "trace-me-42" {
		t.Errorf("request ID not echoed: %q", got)
	}
	// Absent on the request, one is generated.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("no request ID generated")
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	_, ts := testServer(t)
	// Valid JSON that only reveals its size by being read: a syntax error
	// would 400 before the body cap ever fired.
	huge := fmt.Sprintf(`{"a":%q}`, strings.Repeat("A", int(DefaultMaxBody)+1))
	resp, err := http.Post(ts.URL+"/align", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (%s)", resp.StatusCode, buf.Bytes())
	}
	// And the middleware filed it under the 4xx class.
	var expo bytes.Buffer
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(expo.String(), `httpapi_requests_total{route="align",class="4xx"} 1`) {
		t.Error("413 not counted in the 4xx class")
	}
}
