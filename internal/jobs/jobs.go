// Package jobs is the asynchronous job subsystem between the HTTP serving
// layer and the hybrid search engine: a bounded priority queue with
// admission control, a fixed-size executor pool with end-to-end context
// cancellation, a content-addressed result cache with singleflight
// coalescing of identical in-flight submissions, and an optional durable
// store (JSON-lines WAL + snapshot) so queued work survives a restart.
//
// The paper's environment runs one batch search at a time on a dedicated
// master (§IV-A); this package is what lets the same engine absorb many
// concurrent callers: overload is rejected early (429-style, with a retry
// hint) instead of accepted and thrashed, identical work executes once, and
// repeated queries are answered from the cache without touching a kernel.
//
// The Manager knows nothing about Smith-Waterman: Config.Run is the
// executor body (the HTTP layer closes it over hybridsw.SearchContext), and
// results are opaque byte slices, which keeps the subsystem independently
// testable.
package jobs

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a job's lifecycle position.
type State string

// The job lifecycle: queued -> running -> done | failed | canceled.
// Cancellation can also strike a queued job directly. On restart, a job
// found running is demoted to queued and re-executed.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled:
		return true
	case StateQueued, StateRunning:
		return false
	default:
		return false
	}
}

// Request is the executable payload of a job. QueriesFasta, TopK, Policy
// and Align define the work (and the cache identity); Priority orders the
// queue (higher first, FIFO within a level); Queries and Residues are
// accounting filled in by the submitter after parsing, so admission control
// can cap request size without re-parsing FASTA.
type Request struct {
	QueriesFasta string `json:"queries_fasta"`
	TopK         int    `json:"top_k,omitempty"`
	Policy       string `json:"policy,omitempty"`
	Align        bool   `json:"align,omitempty"`
	// Mode selects the pipeline ("" or "full" = exhaustive scan, "filtered"
	// = prefilter + rescore); FilterK and FilterMargin tune the filtered
	// pipeline's seed length and window margin (0 = engine defaults). All
	// three are part of the cache identity — a filtered result must never
	// answer a full-scan request.
	Mode         string `json:"mode,omitempty"`
	FilterK      int    `json:"filter_k,omitempty"`
	FilterMargin int    `json:"filter_margin,omitempty"`
	Priority     int    `json:"priority,omitempty"`
	Queries      int    `json:"queries,omitempty"`
	Residues     int64  `json:"residues,omitempty"`
	// Tenant names the submitter for quota enforcement and fair queueing.
	// Empty is the anonymous tenant. Tenant is deliberately NOT part of the
	// cache identity: results depend only on the query and the database, so
	// tenants share cache entries (and identical in-flight submissions
	// coalesce across tenants without charging the later tenant's quota).
	// Because Request is embedded in the persisted Job record, tenancy
	// rides the WAL for free and survives a restart.
	Tenant string `json:"tenant,omitempty"`
}

// StageCount is one pipeline stage's progress: queries completed vs total.
type StageCount struct {
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
}

// Job is the public snapshot of one job's state.
type Job struct {
	ID       string    `json:"id"`
	Key      string    `json:"key"`
	State    State     `json:"state"`
	Request  Request   `json:"request"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	Error    string    `json:"error,omitempty"`
	// Coalesced counts extra submissions merged into this execution.
	Coalesced int `json:"coalesced,omitempty"`
	// CacheHit marks a job answered from the result cache without running.
	CacheHit    bool  `json:"cache_hit,omitempty"`
	ResultBytes int64 `json:"result_bytes,omitempty"`
	// Stages is the live per-stage progress of a filtered job ("prefilter",
	// "rescore"), fed by SetStage while the job runs. Nil for full scans.
	Stages map[string]StageCount `json:"stages,omitempty"`
	// Backend names the execution path that runs (or ran) this job.
	Backend Backend `json:"backend,omitempty"`
	// Shards is the live per-shard progress of a cluster job, fed by
	// SetShards while the job runs. Nil on the local backend.
	Shards []ShardProgress `json:"shards,omitempty"`
}

// job is the Manager's live record: the public snapshot plus coordination
// state. Every field is mutated under the Manager's mutex.
type job struct {
	Job
	done     chan struct{}      // closed on terminal transition
	cancel   context.CancelFunc // set while running
	canceled bool               // a caller asked for cancellation
	async    bool               // owned by a fire-and-forget submission
	waiters  int                // attached synchronous waiters
}

func (j *job) snapshot() Job { return j.Job }

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("jobs: no such job")

// RejectError is an admission-control rejection. Reason is machine-readable
// ("queue_full", "too_many_queries", "too_many_residues", "draining");
// RetryAfter, when positive, hints that the same request can succeed later
// (the HTTP layer turns it into a Retry-After header on a 429).
type RejectError struct {
	Reason     string
	Detail     string
	RetryAfter time.Duration
}

func (e *RejectError) Error() string { return "jobs: " + e.Detail }

// Config describes a Manager.
type Config struct {
	// Run executes one job. It must honor ctx: cancellation aborts the job
	// (DELETE, client disconnect, shutdown past the drain deadline).
	// Exactly one of Run and Executor must be set; a bare Run is the
	// legacy local path (jobs are stamped BackendLocal).
	Run func(ctx context.Context, req Request) ([]byte, error)
	// Executor, when non-nil, is the pluggable execution seam: jobs run
	// through Executor.Execute and are stamped with Executor.Kind().
	Executor Executor
	// Salt folds the serving identity (database, platform, scheme) into the
	// cache key, so results never leak across different configurations.
	Salt string
	// Executors is the worker-pool size; 0 means DefaultExecutors and
	// negative means none (jobs queue but never run — tests and drained
	// replicas).
	Executors int
	// MaxQueue bounds queued (not running) jobs; 0 means DefaultMaxQueue.
	MaxQueue int
	// MaxQueries and MaxResidues cap one request's declared size; 0 means
	// uncapped here (the HTTP layer applies its own validation caps).
	MaxQueries  int
	MaxResidues int64
	// CacheBytes budgets the in-memory result cache; 0 means
	// DefaultCacheBytes and negative disables caching.
	CacheBytes int64
	// Dir, when non-empty, makes the Manager durable: job records are
	// WAL-logged and snapshotted there and results are persisted, so
	// queued/finished jobs survive a restart.
	Dir string
	// MaxJobs bounds retained terminal job records (oldest-finished pruned
	// at snapshot time); 0 means DefaultMaxJobs.
	MaxJobs int
	// RetryAfter is the base hint attached to backpressure rejections; the
	// actual hint scales with queue depth (see RetryAfterFor). 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// TenantPolicy selects the cross-tenant dequeue order (fifo|wfq|drf);
	// the zero value keeps the legacy single priority FIFO.
	TenantPolicy TenantPolicy
	// Tenants maps tenant names to their scheduling contracts (weights and
	// quotas); TenantDefaults applies to unlisted tenants. Zero values mean
	// weight 1 and no quotas, which keeps single-tenant deployments
	// entirely unaffected.
	Tenants        map[string]TenantConfig
	TenantDefaults TenantConfig
	// Metrics, when non-nil, instruments every transition (see NewMetrics).
	Metrics *Metrics
}

// Defaults for the zero-valued Config knobs.
const (
	DefaultExecutors  = 2
	DefaultMaxQueue   = 64
	DefaultCacheBytes = 64 << 20
	DefaultMaxJobs    = 1024
	DefaultRetryAfter = 2 * time.Second

	// snapshotEvery compacts the WAL after this many appended records.
	snapshotEvery = 256
)

// Manager owns the queue, the executor pool, the cache and the durable
// store. Fields above mu are set once in New; the group below mu is what mu
// guards (the cache carries its own lock so result reads skip mu).
type Manager struct {
	cfg Config
	// backend stamps every new job with the execution path that will run
	// it (derived from Config.Executor, BackendLocal for bare Config.Run).
	backend Backend
	base    context.Context
	abort   context.CancelFunc
	cache   *lru
	wg      sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	st       *store
	jobs     map[string]*job
	byKey    map[string]*job
	q        *queue
	book     *TenantBook
	stopped  bool
	draining bool
}

// New builds a Manager and starts its executor pool. With Config.Dir set it
// first recovers the surviving job records: terminal jobs reload as history
// (their results readable if persisted), and queued or previously running
// jobs re-enqueue in creation order.
func New(cfg Config) (*Manager, error) {
	backend := BackendLocal
	switch {
	case cfg.Run == nil && cfg.Executor == nil:
		return nil, fmt.Errorf("jobs: one of Config.Run or Config.Executor is required")
	case cfg.Run != nil && cfg.Executor != nil:
		return nil, fmt.Errorf("jobs: Config.Run and Config.Executor are mutually exclusive")
	case cfg.Executor != nil:
		backend = cfg.Executor.Kind()
		cfg.Run = cfg.Executor.Execute
	}
	if cfg.Executors == 0 {
		cfg.Executors = DefaultExecutors
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	//swcheck:ignore ctxflow the Manager's base ctx outlives any submitter: queued jobs survive caller disconnects and re-run after recovery, so it must root at Background
	base, abort := context.WithCancel(context.Background())
	book := NewTenantBook(cfg.TenantPolicy, cfg.Tenants, cfg.TenantDefaults)
	m := &Manager{
		cfg:     cfg,
		backend: backend,
		base:    base,
		abort:   abort,
		cache:   newLRU(cfg.CacheBytes),
		jobs:    map[string]*job{},
		byKey:   map[string]*job{},
		q:       newQueue(cfg.MaxQueue, book),
		book:    book,
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.Dir != "" {
		st, recs, err := openStore(cfg.Dir)
		if err != nil {
			abort()
			return nil, err
		}
		m.mu.Lock()
		m.st = st
		m.recoverLocked(recs)
		m.mu.Unlock()
	}
	for i := 0; i < cfg.Executors; i++ {
		m.wg.Add(1)
		go m.executor()
	}
	return m, nil
}

// recoverLocked rebuilds the live state from persisted records.
func (m *Manager) recoverLocked(recs []Job) {
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Created.Equal(recs[j].Created) {
			return recs[i].Created.Before(recs[j].Created)
		}
		return recs[i].ID < recs[j].ID
	})
	for _, rec := range recs {
		j := &job{Job: rec, done: make(chan struct{}), async: true}
		switch rec.State {
		case StateQueued, StateRunning:
			// A job caught mid-run by the crash restarts from scratch.
			j.Started, j.Finished = time.Time{}, time.Time{}
			j.Error = ""
			j.State = "" // setStateLocked charges the gauge fresh
			m.setStateLocked(j, StateQueued)
			m.q.forcePush(j)
			if m.byKey[j.Key] == nil {
				m.byKey[j.Key] = j
			}
			m.logLocked(j)
		case StateDone, StateFailed, StateCanceled:
			close(j.done)
			if mm := m.cfg.Metrics; mm != nil {
				mm.ByState.With(string(rec.State)).Inc()
			}
		default:
			continue // unknown state in a newer WAL: skip, don't crash
		}
		m.jobs[j.ID] = j
	}
	if mm := m.cfg.Metrics; mm != nil {
		mm.QueueDepth.Set(float64(m.q.len()))
	}
}

// key derives the content address of a request: everything that determines
// the result (queries, scoring knobs) plus the Manager's serving salt.
func (m *Manager) key(req Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00%s\x00%t\x00%s\x00%d\x00%d\x00%s",
		m.cfg.Salt, req.TopK, req.Policy, req.Align,
		req.Mode, req.FilterK, req.FilterMargin, req.QueriesFasta)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// newID mints a job identifier.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("j%016x", time.Now().UnixNano())
	}
	return "j" + hex.EncodeToString(b[:])
}

// Submit runs a request through admission control and either coalesces it
// into an identical in-flight job, answers it from the result cache, or
// enqueues it. async marks a fire-and-forget submission (POST /jobs): such
// jobs run to completion even if nobody waits, and only an explicit
// DELETE cancels them. Synchronous submissions (async=false) are cancelled
// automatically when their last waiter disconnects.
func (m *Manager) Submit(req Request, async bool) (Job, error) {
	if err := m.admit(req); err != nil {
		return Job{}, err
	}
	key := m.key(req)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped || m.draining {
		m.countRejectLocked("draining")
		return Job{}, &RejectError{Reason: "draining", Detail: "server is draining; not accepting jobs"}
	}
	if j := m.byKey[key]; j != nil && !j.State.Terminal() {
		j.Coalesced++
		if async {
			j.async = true
		}
		if mm := m.cfg.Metrics; mm != nil {
			mm.Coalesced.Inc()
		}
		return j.snapshot(), nil
	}
	if body, ok := m.cachedLocked(key); ok {
		j := m.newJobLocked(key, req, async)
		now := time.Now()
		j.Started, j.Finished = now, now
		j.CacheHit = true
		j.ResultBytes = int64(len(body))
		m.setStateLocked(j, StateDone)
		close(j.done)
		if mm := m.cfg.Metrics; mm != nil {
			mm.Submitted.Inc()
			mm.CacheHits.Inc()
		}
		m.logLocked(j)
		return j.snapshot(), nil
	}
	if rej := m.book.Admit(req.Tenant, req.Residues); rej != nil {
		m.countRejectLocked("tenant_quota")
		if mm := m.cfg.Metrics; mm != nil {
			mm.TenantRejected.With(tenantLabel(req.Tenant)).Inc()
		}
		rej.RetryAfter = RetryAfterFor(m.cfg.RetryAfter, m.q.len(), m.cfg.Executors)
		return Job{}, rej
	}
	if m.q.len() >= m.cfg.MaxQueue {
		m.countRejectLocked("queue_full")
		return Job{}, &RejectError{
			Reason:     "queue_full",
			Detail:     fmt.Sprintf("queue is full (%d jobs)", m.q.len()),
			RetryAfter: RetryAfterFor(m.cfg.RetryAfter, m.q.len(), m.cfg.Executors),
		}
	}
	j := m.newJobLocked(key, req, async)
	m.setStateLocked(j, StateQueued)
	m.q.push(j)
	m.byKey[key] = j
	if mm := m.cfg.Metrics; mm != nil {
		mm.Submitted.Inc()
		mm.CacheMisses.Inc()
		mm.QueueDepth.Set(float64(m.q.len()))
	}
	m.syncTenantLocked(req.Tenant)
	m.logLocked(j)
	m.cond.Signal()
	return j.snapshot(), nil
}

// tenantLabel is the metric label for a tenant; the anonymous tenant
// renders as "default".
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// syncTenantLocked refreshes one tenant's queued/running gauges.
func (m *Manager) syncTenantLocked(tenant string) {
	mm := m.cfg.Metrics
	if mm == nil {
		return
	}
	label := tenantLabel(tenant)
	mm.TenantQueued.With(label).Set(float64(m.book.Queued(tenant)))
	mm.TenantRunning.With(label).Set(float64(m.book.Running(tenant)))
}

// admit applies the per-request size caps (no lock needed: caps are
// immutable and the rejection counter is atomic).
func (m *Manager) admit(req Request) error {
	var reason, detail string
	switch {
	case m.cfg.MaxQueries > 0 && req.Queries > m.cfg.MaxQueries:
		reason = "too_many_queries"
		detail = fmt.Sprintf("%d queries exceeds the %d-query cap", req.Queries, m.cfg.MaxQueries)
	case m.cfg.MaxResidues > 0 && req.Residues > m.cfg.MaxResidues:
		reason = "too_many_residues"
		detail = fmt.Sprintf("%d total query residues exceeds the %d-residue cap", req.Residues, m.cfg.MaxResidues)
	default:
		return nil
	}
	if mm := m.cfg.Metrics; mm != nil {
		mm.Rejected.With(reason).Inc()
	}
	return &RejectError{Reason: reason, Detail: detail}
}

func (m *Manager) countRejectLocked(reason string) {
	if mm := m.cfg.Metrics; mm != nil {
		mm.Rejected.With(reason).Inc()
	}
}

func (m *Manager) newJobLocked(key string, req Request, async bool) *job {
	j := &job{
		Job: Job{
			ID:      newID(),
			Key:     key,
			Request: req,
			Created: time.Now(),
			Backend: m.backend,
		},
		done:  make(chan struct{}),
		async: async,
	}
	m.jobs[j.ID] = j
	return j
}

// setStateLocked transitions a job and keeps the by-state gauge honest.
func (m *Manager) setStateLocked(j *job, s State) {
	if mm := m.cfg.Metrics; mm != nil {
		if j.State != "" {
			mm.ByState.With(string(j.State)).Dec()
		}
		mm.ByState.With(string(s)).Inc()
	}
	j.State = s
}

// cachedLocked looks a result up in memory, then in the durable store
// (warming the memory cache on a disk hit).
func (m *Manager) cachedLocked(key string) ([]byte, bool) {
	if body, ok := m.cache.get(key); ok {
		return body, true
	}
	if m.st == nil {
		return nil, false
	}
	body, ok := m.st.loadResult(key)
	if !ok {
		return nil, false
	}
	evicted := m.cache.put(key, body)
	if mm := m.cfg.Metrics; mm != nil {
		mm.CacheEvictions.Add(float64(evicted))
		mm.CacheBytes.Set(float64(m.cache.size()))
	}
	return body, true
}

// logLocked appends the job's current record to the WAL (when durable) and
// compacts once the WAL has grown enough.
func (m *Manager) logLocked(j *job) {
	if m.st == nil {
		return
	}
	if err := m.st.append(j.Job); err != nil {
		if mm := m.cfg.Metrics; mm != nil {
			mm.StoreErrors.Inc()
		}
		return
	}
	if m.st.appends >= snapshotEvery {
		m.snapshotLocked()
	}
}

// snapshotLocked prunes retention and compacts the durable store.
func (m *Manager) snapshotLocked() {
	if m.st == nil {
		return
	}
	// Retention: drop the oldest-finished terminal records beyond MaxJobs.
	if over := len(m.jobs) - m.cfg.MaxJobs; over > 0 {
		var terminal []*job
		for _, j := range m.jobs {
			if j.State.Terminal() {
				terminal = append(terminal, j)
			}
		}
		sort.Slice(terminal, func(i, k int) bool {
			return terminal[i].Finished.Before(terminal[k].Finished)
		})
		for _, j := range terminal {
			if over <= 0 {
				break
			}
			delete(m.jobs, j.ID)
			if mm := m.cfg.Metrics; mm != nil {
				mm.ByState.With(string(j.State)).Dec()
			}
			over--
		}
	}
	all := make([]Job, 0, len(m.jobs))
	keep := make(map[string]bool, len(m.jobs))
	for _, j := range m.jobs {
		all = append(all, j.Job)
		keep[j.Key] = true
	}
	if err := m.st.snapshot(all, keep); err != nil {
		if mm := m.cfg.Metrics; mm != nil {
			mm.StoreErrors.Inc()
		}
	}
}

// executor is one worker: it pops queued jobs and runs them until the
// Manager drains.
func (m *Manager) executor() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.stopped && !m.draining && m.q.len() == 0 {
			m.cond.Wait()
		}
		if m.stopped || m.draining {
			m.mu.Unlock()
			return
		}
		j := m.q.pop()
		jctx, cancel := context.WithCancel(m.base)
		jctx = context.WithValue(jctx, jobIDKey{}, j.ID)
		j.cancel = cancel
		j.Started = time.Now()
		m.setStateLocked(j, StateRunning)
		if mm := m.cfg.Metrics; mm != nil {
			mm.QueueDepth.Set(float64(m.q.len()))
			mm.ExecutorsBusy.Inc()
			mm.WaitSeconds.Observe(j.Started.Sub(j.Created).Seconds())
		}
		m.syncTenantLocked(j.Request.Tenant)
		m.logLocked(j)
		req := j.Request
		m.mu.Unlock()

		body, err := m.cfg.Run(jctx, req)
		cancel()

		m.mu.Lock()
		j.cancel = nil
		j.Finished = time.Now()
		switch {
		case err == nil:
			j.ResultBytes = int64(len(body))
			m.setStateLocked(j, StateDone)
			m.storeResultLocked(j.Key, body)
			m.book.Finish(req.Tenant, req.Residues, true)
			if mm := m.cfg.Metrics; mm != nil {
				mm.TenantServed.With(tenantLabel(req.Tenant)).Add(float64(req.Residues))
			}
			m.finishLocked(j, "done")
		case j.canceled:
			j.Error = context.Canceled.Error()
			m.setStateLocked(j, StateCanceled)
			m.book.Finish(req.Tenant, req.Residues, false)
			m.finishLocked(j, "canceled")
		case m.base.Err() != nil:
			// Shutdown aborted the run: the job goes back to queued so the
			// next boot re-executes it; done stays open.
			j.Started, j.Finished = time.Time{}, time.Time{}
			m.setStateLocked(j, StateQueued)
			m.book.Finish(req.Tenant, req.Residues, false)
			m.q.forcePush(j)
			m.logLocked(j)
		default:
			j.Error = err.Error()
			m.setStateLocked(j, StateFailed)
			m.book.Finish(req.Tenant, req.Residues, false)
			m.finishLocked(j, "failed")
		}
		m.syncTenantLocked(req.Tenant)
		if mm := m.cfg.Metrics; mm != nil {
			mm.ExecutorsBusy.Dec()
			if !j.Finished.IsZero() {
				mm.RunSeconds.Observe(j.Finished.Sub(j.Started).Seconds())
			}
		}
		m.mu.Unlock()
	}
}

// finishLocked records a terminal transition: the singleflight slot frees,
// waiters wake, the outcome is counted and logged.
func (m *Manager) finishLocked(j *job, outcome string) {
	if m.byKey[j.Key] == j {
		delete(m.byKey, j.Key)
	}
	close(j.done)
	if mm := m.cfg.Metrics; mm != nil {
		mm.Completed.With(outcome).Inc()
	}
	m.logLocked(j)
}

// storeResultLocked caches and persists one result body.
func (m *Manager) storeResultLocked(key string, body []byte) {
	evicted := m.cache.put(key, body)
	if mm := m.cfg.Metrics; mm != nil {
		mm.CacheEvictions.Add(float64(evicted))
		mm.CacheBytes.Set(float64(m.cache.size()))
		mm.ResultBytes.Observe(float64(len(body)))
	}
	if m.st != nil {
		if err := m.st.saveResult(key, body); err != nil {
			if mm := m.cfg.Metrics; mm != nil {
				mm.StoreErrors.Inc()
			}
		}
	}
}

// jobIDKey carries the running job's ID in the context handed to Config.Run,
// so the executor body can report progress back via SetStage.
type jobIDKey struct{}

// JobID extracts the running job's identifier from a Config.Run context
// (empty outside an executor).
func JobID(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// SetStage records a running job's per-stage progress (stage names are the
// pipeline's, e.g. "prefilter"/"rescore"). The executor body calls it from
// inside Config.Run with the Run context; calls with a foreign or stale
// context are dropped. The job's Stages map is replaced, not mutated, so
// snapshots already handed out stay race-free.
func (m *Manager) SetStage(ctx context.Context, stage string, done, total int64) {
	id := JobID(ctx)
	if id == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil || j.State != StateRunning {
		return
	}
	next := make(map[string]StageCount, len(j.Stages)+1)
	for k, v := range j.Stages {
		next[k] = v
	}
	next[stage] = StageCount{Done: done, Total: total}
	j.Stages = next
}

// Get returns a job's snapshot.
func (m *Manager) Get(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return Job{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// List returns every tracked job, newest first.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.After(out[k].Created)
		}
		return out[i].ID > out[k].ID
	})
	return out
}

// Result returns a done job's encoded result body along with its snapshot.
// For a job in any other state the body is nil and the caller inspects the
// snapshot. A done job whose result was evicted from both cache and store
// reports an error.
func (m *Manager) Result(id string) ([]byte, Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, Job{}, ErrNotFound
	}
	snap := j.snapshot()
	if snap.State != StateDone {
		return nil, snap, nil
	}
	body, ok := m.cachedLocked(snap.Key)
	if !ok {
		return nil, snap, fmt.Errorf("jobs: result of %s was evicted", id)
	}
	return body, snap, nil
}

// Cancel aborts a job: a queued job leaves the queue immediately, a running
// one has its context cancelled (the executor records the terminal state
// once Run unwinds). Terminal jobs are left untouched — Cancel is
// idempotent and returns the current snapshot either way.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return Job{}, ErrNotFound
	}
	m.cancelLocked(j)
	return j.snapshot(), nil
}

func (m *Manager) cancelLocked(j *job) {
	switch j.State {
	case StateQueued:
		if !m.q.remove(j) {
			return // racing executor already popped it; treat as running
		}
		j.canceled = true
		j.Finished = time.Now()
		j.Error = context.Canceled.Error()
		m.setStateLocked(j, StateCanceled)
		if mm := m.cfg.Metrics; mm != nil {
			mm.QueueDepth.Set(float64(m.q.len()))
		}
		m.syncTenantLocked(j.Request.Tenant)
		m.finishLocked(j, "canceled")
	case StateRunning:
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		}
	case StateDone, StateFailed, StateCanceled:
		// Terminal: nothing to abort.
	default:
	}
}

// Wait blocks until the job reaches a terminal state or ctx ends. When the
// last synchronous waiter of a non-async job gives up, the job itself is
// cancelled — a disconnected client must not keep burning a full search.
func (m *Manager) Wait(ctx context.Context, id string) (Job, error) {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return Job{}, ErrNotFound
	}
	j.waiters++
	done := j.done
	m.mu.Unlock()
	select {
	case <-done:
		m.mu.Lock()
		defer m.mu.Unlock()
		j.waiters--
		return j.snapshot(), nil
	case <-ctx.Done():
		m.mu.Lock()
		defer m.mu.Unlock()
		j.waiters--
		if j.waiters == 0 && !j.async {
			m.cancelLocked(j)
		}
		return j.snapshot(), ctx.Err()
	}
}

// QueueDepth reports how many jobs are waiting for an executor.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.q.len()
}

// Close drains the Manager: no new submissions are admitted, idle executors
// exit, and running jobs get until ctx ends to finish — past the deadline
// their contexts are cancelled and they return to the queue, to be
// re-executed on the next boot. The durable store is then compacted and
// closed. Close is idempotent.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
		m.abort()
		<-idle
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = true
	if m.st == nil {
		return nil
	}
	m.snapshotLocked()
	return m.st.close()
}
