package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/sched"
	"repro/internal/wire"
)

// replicaCaller is the protocol client of one replica within one job. It
// layers two failure behaviours over the in-process caller:
//
//   - Replica death: once the replica's down channel closes, every call
//     fails — the first failure reports SlaveGone to the shard master
//     (requeueing the replica's tasks, exactly like a dropped TCP
//     connection) and counts one failover. The failed call also makes the
//     slave loop cancel its in-flight scan and exit.
//   - Context cancellation: like the local backend's caller, a cancelled
//     context answers work requests with Done and progress notifications
//     with a cancellation of every task still assigned here, so the whole
//     fleet winds down promptly without failing the master's accounting.
type replicaCaller struct {
	ctx        context.Context
	inner      wire.Caller
	handler    wire.Handler
	rep        *replica
	onFailover func()
	goneOnce   sync.Once

	mu         sync.Mutex
	id         sched.SlaveID
	registered bool
	downSeen   bool
	// pending are tasks assigned through this caller and not yet finished
	// with (completed, or cancelled by the master or the context).
	pending map[sched.TaskID]bool
}

func newReplicaCaller(ctx context.Context, rep *replica, inner wire.Caller, handler wire.Handler, onFailover func()) *replicaCaller {
	return &replicaCaller{
		ctx: ctx, inner: inner, handler: handler, rep: rep,
		onFailover: onFailover, pending: map[sched.TaskID]bool{},
	}
}

// Call implements wire.Caller.
func (c *replicaCaller) Call(req wire.Envelope) (wire.Envelope, error) {
	select {
	case <-c.rep.down:
		c.gone()
		return wire.Envelope{}, fmt.Errorf("cluster: replica %s is down", c.rep.name)
	default:
	}
	if c.ctx.Err() != nil {
		switch {
		case req.Request != nil:
			return wire.Envelope{Assign: &wire.AssignMsg{Done: true}}, nil
		case req.Progress != nil:
			return wire.Envelope{ProgressAck: &wire.ProgressAckMsg{
				Cancel: c.takePending(), Done: true,
			}}, nil
		}
		// Register and Complete still reach the shard master: registration
		// is the session's first call, and completions that beat the
		// cancellation keep the coordinator's books straight.
	}
	resp, err := c.inner.Call(req)
	if err != nil {
		return resp, err
	}
	c.track(req, resp)
	return resp, nil
}

// gone reports the replica's death to the shard master exactly once,
// requeueing any task it was executing and recording the failover.
func (c *replicaCaller) gone() {
	c.goneOnce.Do(func() {
		c.mu.Lock()
		c.downSeen = true
		registered, id := c.registered, c.id
		c.mu.Unlock()
		if registered {
			c.handler.SlaveGone(id)
		}
		if c.onFailover != nil {
			c.onFailover()
		}
	})
}

// Down reports whether this caller has observed its replica's death —
// which makes the slave loop's terminal error expected rather than a
// shard failure.
func (c *replicaCaller) Down() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downSeen
}

// track maintains the slave identity and pending-task set from the live
// protocol flow.
func (c *replicaCaller) track(req, resp wire.Envelope) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Register != nil && resp.RegisterAck != nil {
		c.id = resp.RegisterAck.Slave
		c.registered = true
	}
	if resp.Assign != nil {
		for _, t := range resp.Assign.Tasks {
			c.pending[t.ID] = true
		}
	}
	if req.Complete != nil {
		delete(c.pending, req.Complete.Task)
	}
	var cancels []sched.TaskID
	if resp.ProgressAck != nil {
		cancels = resp.ProgressAck.Cancel
	}
	if resp.CompleteAck != nil {
		cancels = resp.CompleteAck.Cancel
	}
	for _, id := range cancels {
		delete(c.pending, id)
	}
}

// takePending drains the pending-task set for a synthetic cancellation ack.
func (c *replicaCaller) takePending() []sched.TaskID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]sched.TaskID, 0, len(c.pending))
	for id := range c.pending {
		out = append(out, id)
	}
	c.pending = map[sched.TaskID]bool{}
	return out
}

// Close implements wire.Caller.
func (c *replicaCaller) Close() error { return c.inner.Close() }
