// Package svgplot renders the experiment figures as standalone SVG charts
// using only the standard library: grouped bar charts (Fig. 6's
// with/without-adjustment pairs) and line charts (the per-core GCUPS
// timelines of Figs. 7-8). The output is deterministic, styled with an
// embedded palette, and viewable in any browser.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Layout constants shared by both chart kinds.
const (
	chartWidth   = 760
	chartHeight  = 420
	marginLeft   = 64
	marginRight  = 16
	marginTop    = 44
	marginBottom = 64
)

var palette = []string{"#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5"}

// Bar is one bar within a group.
type Bar struct {
	Label string // legend label; bars with equal labels share a color
	Value float64
}

// BarGroup is one cluster of bars under a shared x-axis label.
type BarGroup struct {
	Label string
	Bars  []Bar
}

// BarChart is a grouped bar chart.
type BarChart struct {
	Title  string
	YLabel string
	Groups []BarGroup
}

// Render produces a standalone SVG document.
func (c *BarChart) Render() string {
	var b strings.Builder
	header(&b, c.Title)

	maxV := 0.0
	legend := []string{}
	seen := map[string]int{}
	for _, g := range c.Groups {
		for _, bar := range g.Bars {
			if bar.Value > maxV {
				maxV = bar.Value
			}
			if _, ok := seen[bar.Label]; !ok {
				seen[bar.Label] = len(legend)
				legend = append(legend, bar.Label)
			}
		}
	}
	ticks := niceTicks(0, maxV, 6)
	top := ticks[len(ticks)-1]
	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	y := func(v float64) float64 { return marginTop + plotH*(1-v/top) }

	drawYAxis(&b, ticks, y, c.YLabel)

	groupW := plotW / float64(len(c.Groups))
	for gi, g := range c.Groups {
		x0 := float64(marginLeft) + groupW*float64(gi)
		barW := groupW * 0.8 / float64(max(1, len(g.Bars)))
		for bi, bar := range g.Bars {
			x := x0 + groupW*0.1 + barW*float64(bi)
			h := float64(marginTop) + plotH - y(bar.Value)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.2f</title></rect>`+"\n",
				x, y(bar.Value), barW*0.92, h, palette[seen[bar.Label]%len(palette)],
				escape(g.Label), escape(bar.Label), bar.Value)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" class="lbl">%s</text>`+"\n",
			x0+groupW/2, chartHeight-marginBottom+18, escape(g.Label))
	}
	drawLegend(&b, legend, seen)
	b.WriteString("</svg>\n")
	return b.String()
}

// Point is one sample of a line series.
type Point struct {
	X, Y float64
}

// LineSeries is one named curve.
type LineSeries struct {
	Name   string
	Points []Point
}

// LineChart plots one or more series over a shared numeric x axis.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []LineSeries
}

// Render produces a standalone SVG document.
func (c *LineChart) Render() string {
	var b strings.Builder
	header(&b, c.Title)

	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	for _, s := range c.Series {
		for _, p := range s.Points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX = 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	yTicks := niceTicks(0, maxY, 6)
	top := yTicks[len(yTicks)-1]
	xTicks := niceTicks(minX, maxX, 8)
	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	xmap := func(v float64) float64 { return marginLeft + plotW*(v-minX)/(maxX-minX) }
	ymap := func(v float64) float64 { return marginTop + plotH*(1-v/top) }

	drawYAxis(&b, yTicks, ymap, c.YLabel)
	for _, t := range xTicks {
		if t < minX || t > maxX {
			continue
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" class="lbl">%s</text>`+"\n",
			xmap(t), chartHeight-marginBottom+18, fmtTick(t))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" class="axis">%s</text>`+"\n",
		marginLeft+int(plotW/2), chartHeight-14, escape(c.XLabel))

	legend := []string{}
	seen := map[string]int{}
	for _, s := range c.Series {
		if _, ok := seen[s.Name]; !ok {
			seen[s.Name] = len(legend)
			legend = append(legend, s.Name)
		}
		var path strings.Builder
		for i, p := range s.Points {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xmap(p.X), ymap(p.Y))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"><title>%s</title></path>`+"\n",
			strings.TrimSpace(path.String()), palette[seen[s.Name]%len(palette)], escape(s.Name))
	}
	drawLegend(&b, legend, seen)
	b.WriteString("</svg>\n")
	return b.String()
}

func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`+"\n",
		chartWidth, chartHeight, chartWidth, chartHeight)
	b.WriteString(`<style>.lbl{font-size:11px;fill:#444}.axis{font-size:12px;fill:#222}.title{font-size:15px;font-weight:600;fill:#111}.grid{stroke:#ddd;stroke-width:1}</style>` + "\n")
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartWidth, chartHeight)
	fmt.Fprintf(b, `<text x="%d" y="24" class="title">%s</text>`+"\n", marginLeft, escape(title))
}

func drawYAxis(b *strings.Builder, ticks []float64, ymap func(float64) float64, label string) {
	for _, t := range ticks {
		yy := ymap(t)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" class="grid"/>`+"\n",
			marginLeft, yy, chartWidth-marginRight, yy)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" text-anchor="end" class="lbl">%s</text>`+"\n",
			marginLeft-6, yy+4, fmtTick(t))
	}
	fmt.Fprintf(b, `<text x="14" y="%d" class="axis" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
		marginTop+(chartHeight-marginTop-marginBottom)/2, marginTop+(chartHeight-marginTop-marginBottom)/2, escape(label))
}

func drawLegend(b *strings.Builder, labels []string, colorOf map[string]int) {
	x := marginLeft
	for _, l := range labels {
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			x, 30, palette[colorOf[l]%len(palette)])
		fmt.Fprintf(b, `<text x="%d" y="39" class="lbl">%s</text>`+"\n", x+14, escape(l))
		x += 14 + 7*len(l) + 18
	}
}

// niceTicks returns 2..n+1 round tick values covering [lo, hi], always
// including a tick at or above hi.
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for span/step > float64(n) {
		switch {
		case span/(step*2) <= float64(n):
			step *= 2
		case span/(step*5) <= float64(n):
			step *= 5
		default:
			step *= 10
		}
	}
	start := math.Floor(lo/step) * step
	var out []float64
	for t := start; ; t += step {
		out = append(out, t)
		if t >= hi {
			break
		}
	}
	return out
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// GanttBar is one task occupancy window on a row of a Gantt chart.
type GanttBar struct {
	Row     string
	Start   float64
	End     float64
	Label   string
	Replica bool // rendered with a dashed outline
}

// GanttChart renders task schedules (the Fig. 5 walkthrough) as SVG.
type GanttChart struct {
	Title  string
	XLabel string
	Bars   []GanttBar
}

// Render produces a standalone SVG document.
func (c *GanttChart) Render() string {
	var b strings.Builder
	header(&b, c.Title)

	var rows []string
	rowIdx := map[string]int{}
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, bar := range c.Bars {
		if _, ok := rowIdx[bar.Row]; !ok {
			rowIdx[bar.Row] = len(rows)
			rows = append(rows, bar.Row)
		}
		minX = math.Min(minX, bar.Start)
		maxX = math.Max(maxX, bar.End)
	}
	if math.IsInf(minX, 1) {
		minX, maxX = 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	xmap := func(v float64) float64 { return marginLeft + plotW*(v-minX)/(maxX-minX) }
	rowH := plotH / float64(max(1, len(rows)))

	for _, t := range niceTicks(minX, maxX, 8) {
		if t < minX || t > maxX {
			continue
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" class="grid"/>`+"\n",
			xmap(t), marginTop, xmap(t), chartHeight-marginBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" class="lbl">%s</text>`+"\n",
			xmap(t), chartHeight-marginBottom+18, fmtTick(t))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" class="axis">%s</text>`+"\n",
		marginLeft+int(plotW/2), chartHeight-14, escape(c.XLabel))

	for ri, row := range rows {
		y := float64(marginTop) + rowH*float64(ri)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" class="axis">%s</text>`+"\n",
			marginLeft-8, y+rowH/2+4, escape(row))
	}
	for _, bar := range c.Bars {
		y := float64(marginTop) + rowH*float64(rowIdx[bar.Row]) + rowH*0.15
		h := rowH * 0.7
		w := xmap(bar.End) - xmap(bar.Start)
		style := ""
		if bar.Replica {
			style = ` stroke="#b10c00" stroke-width="1.6" stroke-dasharray="4 2"`
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.85"%s><title>%s [%.1f, %.1f]</title></rect>`+"\n",
			xmap(bar.Start), y, w, h, palette[rowIdx[bar.Row]%len(palette)], style,
			escape(bar.Label), bar.Start, bar.End)
		if w > 24 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" class="lbl" fill="white">%s</text>`+"\n",
				xmap(bar.Start)+w/2, y+h/2+4, escape(bar.Label))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}
