package svgplot

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestBarChartRender(t *testing.T) {
	c := &BarChart{
		Title:  "Fig. 6: adjustment impact",
		YLabel: "GCUPS",
		Groups: []BarGroup{
			{Label: "1 GPU", Bars: []Bar{{Label: "without", Value: 39.6}, {Label: "with", Value: 39.6}}},
			{Label: "4 GPU + 4 SSE", Bars: []Bar{{Label: "without", Value: 67.2}, {Label: "with", Value: 155.6}}},
		},
	}
	svg := c.Render()
	for _, want := range []string{"<svg", "</svg>", "Fig. 6: adjustment impact", "GCUPS", "<rect", "4 GPU + 4 SSE", "without", "with"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q in bar chart", want)
		}
	}
	// Four data bars -> at least 4 rects beyond background/legend.
	if n := strings.Count(svg, "<rect"); n < 5 {
		t.Errorf("only %d rects", n)
	}
}

func TestLineChartRender(t *testing.T) {
	c := &LineChart{
		Title:  "Fig. 8: per-core GCUPS",
		XLabel: "time (s)",
		YLabel: "GCUPS",
		Series: []LineSeries{
			{Name: "SSE1", Points: []Point{{0, 2.7}, {60, 2.7}, {62, 1.2}, {120, 1.2}}},
			{Name: "SSE2", Points: []Point{{0, 2.7}, {120, 2.7}}},
		},
	}
	svg := c.Render()
	for _, want := range []string{"<svg", "<path", "SSE1", "SSE2", "time (s)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q in line chart", want)
		}
	}
	if n := strings.Count(svg, "<path"); n != 2 {
		t.Errorf("%d paths, want 2", n)
	}
	if !strings.Contains(svg, "M") {
		t.Error("path has no moveto")
	}
}

func TestLineChartEmptyAndDegenerate(t *testing.T) {
	// No points and single-x series must not divide by zero or emit NaN.
	for _, c := range []*LineChart{
		{Title: "empty"},
		{Title: "single", Series: []LineSeries{{Name: "s", Points: []Point{{5, 1}}}}},
	} {
		svg := c.Render()
		if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
			t.Errorf("%s: degenerate values leaked:\n%s", c.Title, svg)
		}
	}
}

func TestEscaping(t *testing.T) {
	c := &BarChart{
		Title:  `<script>&"attack"`,
		Groups: []BarGroup{{Label: "a<b", Bars: []Bar{{Label: "x&y", Value: 1}}}},
	}
	svg := c.Render()
	if strings.Contains(svg, "<script>") {
		t.Error("title not escaped")
	}
	for _, want := range []string{"&lt;script&gt;", "a&lt;b", "x&amp;y"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing escaped %q", want)
		}
	}
}

func TestNiceTicksProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		lo := rng.Float64() * 100
		hi := lo + rng.Float64()*1e4
		n := 2 + rng.Intn(10)
		ticks := niceTicks(lo, hi, n)
		if len(ticks) < 2 {
			t.Fatalf("too few ticks for [%v,%v]", lo, hi)
		}
		if ticks[0] > lo || ticks[len(ticks)-1] < hi {
			t.Fatalf("ticks %v do not cover [%v,%v]", ticks, lo, hi)
		}
		if len(ticks) > n+2 {
			t.Fatalf("%d ticks for n=%d over [%v,%v]", len(ticks), n, lo, hi)
		}
		step := ticks[1] - ticks[0]
		for i := 2; i < len(ticks); i++ {
			if math.Abs((ticks[i]-ticks[i-1])-step) > 1e-9*step {
				t.Fatalf("uneven steps in %v", ticks)
			}
		}
	}
}

func TestNiceTicksDegenerate(t *testing.T) {
	ticks := niceTicks(5, 5, 4)
	if len(ticks) < 2 {
		t.Errorf("degenerate range ticks = %v", ticks)
	}
}

func TestFmtTick(t *testing.T) {
	if fmtTick(40) != "40" || fmtTick(2.5) != "2.5" {
		t.Errorf("fmtTick: %q %q", fmtTick(40), fmtTick(2.5))
	}
}

func TestGanttChartRender(t *testing.T) {
	c := &GanttChart{
		Title:  "Fig. 5a: schedule with the adjustment mechanism",
		XLabel: "time (s)",
		Bars: []GanttBar{
			{Row: "GPU1", Start: 0, End: 1, Label: "t1"},
			{Row: "GPU1", Start: 13, End: 14, Label: "t20", Replica: true},
			{Row: "SSE1", Start: 0, End: 6, Label: "t2"},
		},
	}
	svg := c.Render()
	for _, want := range []string{"<svg", "GPU1", "SSE1", "t20", "stroke-dasharray", "time (s)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("gantt missing %q", want)
		}
	}
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked")
	}
	// Degenerate: no bars.
	if out := (&GanttChart{Title: "x"}).Render(); strings.Contains(out, "NaN") {
		t.Error("empty gantt has NaN")
	}
}
