package sw

import (
	"fmt"
	"strings"

	"repro/internal/score"
)

// Format renders the alignment in the familiar three-row style:
//
//	Query   1 ACT-TGTCCGA
//	          |:| ||||  |
//	Target  4 AGTATGTCTCA
//
// The midline marks identities with '|', positive-scoring substitutions
// under scheme s with ':', and everything else with a space. width sets the
// number of alignment columns per block; width <= 0 uses 60.
func (a *Alignment) Format(s score.Scheme, width int) string {
	if width <= 0 {
		width = 60
	}
	if len(a.QueryRow) == 0 {
		return fmt.Sprintf("(empty alignment, score %d)\n", a.Score)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Score %d, identity %.1f%%, %d columns, %d gaps\n",
		a.Score, 100*a.Identity(), len(a.QueryRow), a.Gaps())

	qPos, tPos := a.QueryStart, a.TargetStart
	for off := 0; off < len(a.QueryRow); off += width {
		end := min(off+width, len(a.QueryRow))
		qSeg, tSeg := a.QueryRow[off:end], a.TargetRow[off:end]

		mid := make([]byte, len(qSeg))
		for i := range qSeg {
			switch {
			case qSeg[i] == '-' || tSeg[i] == '-':
				mid[i] = ' '
			case qSeg[i] == tSeg[i]:
				mid[i] = '|'
			case s.Matrix != nil && s.Matrix.Score(qSeg[i], tSeg[i]) > 0:
				mid[i] = ':'
			default:
				mid[i] = ' '
			}
		}
		qStartCol := qPos + 1 // 1-based display
		tStartCol := tPos + 1
		for _, c := range qSeg {
			if c != '-' {
				qPos++
			}
		}
		for _, c := range tSeg {
			if c != '-' {
				tPos++
			}
		}
		fmt.Fprintf(&b, "Query  %6d %s %d\n", qStartCol, qSeg, qPos)
		fmt.Fprintf(&b, "              %s\n", mid)
		fmt.Fprintf(&b, "Target %6d %s %d\n\n", tStartCol, tSeg, tPos)
	}
	return b.String()
}
