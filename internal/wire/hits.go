package wire

import "sort"

// HitLess is the module-wide hit-ranking contract: score descending, then
// database index ascending. Every layer that orders hits — the slave's
// per-task top-k cut, the master core's per-query merge, and the cluster
// backend's cross-shard scatter-gather merge — must use exactly this
// comparator. That single definition is what makes a sharded run's ranking
// byte-identical to a single-node run's: (Score, Index) is unique per hit,
// so any list sorted with HitLess has exactly one legal order regardless of
// which engine, replica or shard produced each entry.
func HitLess(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Index < b.Index
}

// SortHits orders hits best-first under HitLess, in place.
func SortHits(hits []Hit) {
	sort.SliceStable(hits, func(i, j int) bool { return HitLess(hits[i], hits[j]) })
}
