package sched

import (
	"testing"
)

func TestCanRun(t *testing.T) {
	// Nil caps is the historical contract: full Smith-Waterman scans only.
	if !CanRun(nil, TaskSW) {
		t.Error("nil caps must run SW")
	}
	if CanRun(nil, TaskPrefilter) || CanRun(nil, TaskRescore) {
		t.Error("nil caps must not run filtered stages")
	}
	caps := []TaskKind{TaskSW, TaskPrefilter}
	if !CanRun(caps, TaskPrefilter) || !CanRun(caps, TaskSW) {
		t.Error("declared kinds must run")
	}
	if CanRun(caps, TaskRescore) {
		t.Error("undeclared kind must not run")
	}
}

func TestTaskKindString(t *testing.T) {
	for k, want := range map[TaskKind]string{
		TaskSW: "sw", TaskPrefilter: "prefilter", TaskRescore: "rescore",
	} {
		if got := k.String(); got != want {
			t.Errorf("TaskKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := TaskKind(99).String(); got != "TaskKind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestPoolAppendContinuesNumbering(t *testing.T) {
	p := NewPool(mkTasks(3))
	ids := p.Append([]Task{
		{QueryID: "x", Cells: 10, Kind: TaskRescore},
		{QueryID: "y", Cells: 20, Kind: TaskRescore},
	})
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Fatalf("appended IDs = %v, want [3 4]", ids)
	}
	if p.Len() != 5 || p.Ready() != 5 {
		t.Fatalf("pool %d/%d after append", p.Ready(), p.Len())
	}
	if got := p.Task(3); got.QueryID != "x" || got.Kind != TaskRescore || got.ID != 3 {
		t.Fatalf("appended task = %+v", got)
	}
}

func TestTakeReadyFuncSkipsAndKeepsFIFO(t *testing.T) {
	tasks := mkTasks(4)
	tasks[1].Kind = TaskPrefilter
	tasks[2].Kind = TaskPrefilter
	p := NewPool(tasks)

	swOnly := func(tk Task) bool { return tk.Kind == TaskSW }
	if got := p.ReadyFunc(swOnly); got != 2 {
		t.Fatalf("ReadyFunc(swOnly) = %d, want 2", got)
	}
	if got := p.ReadyFunc(nil); got != 4 {
		t.Fatalf("ReadyFunc(nil) = %d, want 4", got)
	}

	// An SW-only taker receives tasks 0 and 3; the skipped prefilter tasks
	// keep their FIFO position.
	got := p.TakeReadyFunc(4, swOnly, 1, 0)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 3 {
		t.Fatalf("swOnly take = %v", got)
	}
	rest := p.TakeReadyFunc(4, nil, 2, 0)
	if len(rest) != 2 || rest[0].ID != 1 || rest[1].ID != 2 {
		t.Fatalf("remaining FIFO = %v, want prefilter tasks 1,2 in order", rest)
	}
	if p.Ready() != 0 || p.ExecutingCount() != 4 {
		t.Fatalf("pool counts %d ready %d executing", p.Ready(), p.ExecutingCount())
	}
}

func TestRequestWorkHonorsCapabilities(t *testing.T) {
	tasks := mkTasks(2)
	tasks[0].Kind = TaskPrefilter
	tasks[1].Kind = TaskPrefilter
	c := NewCoordinator(tasks, Config{Policy: SS{}})
	legacy := c.Register(SlaveInfo{Name: "legacy", Kind: KindGPU}, 0)
	capable := c.Register(SlaveInfo{Name: "cpu", Kind: KindCPU,
		Caps: []TaskKind{TaskSW, TaskPrefilter, TaskRescore}}, 0)

	if got, _ := c.RequestWork(legacy, 0); len(got) != 0 {
		t.Fatalf("nil-caps slave granted %v on a prefilter pool", got)
	}
	got, _ := c.RequestWork(capable, 0)
	if len(got) != 1 || got[0].Kind != TaskPrefilter {
		t.Fatalf("capable slave granted %v", got)
	}
	// The skipped tasks stayed ready for the capable slave.
	if got, _ := c.RequestWork(capable, 0); len(got) != 1 {
		t.Fatalf("second grant = %v", got)
	}
}

func TestKindBlindFastPathForPureSWPools(t *testing.T) {
	// An all-SW pool never consults capabilities, so nil-caps slaves drain
	// it exactly as before the kinds existed.
	c := NewCoordinator(mkTasks(2), Config{Policy: SS{}})
	s := c.Register(SlaveInfo{Name: "legacy", Kind: KindCPU}, 0)
	if got, _ := c.RequestWork(s, 0); len(got) != 1 {
		t.Fatalf("grant = %v", got)
	}
}

func TestReplicaSkipsIncapableSlave(t *testing.T) {
	tasks := mkTasks(1)
	tasks[0].Kind = TaskRescore
	c := NewCoordinator(tasks, Config{Policy: SS{}, Adjust: true})
	capable := c.Register(SlaveInfo{Name: "cpu", Kind: KindCPU,
		Caps: []TaskKind{TaskSW, TaskPrefilter, TaskRescore}}, 0)
	legacy := c.Register(SlaveInfo{Name: "gpu", Kind: KindGPU}, 0)
	c.ProgressRate(capable, 1000, 0, 0)
	c.ProgressRate(legacy, 100000, 0, 0)

	if got, _ := c.RequestWork(capable, 0); len(got) != 1 {
		t.Fatal("setup: capable slave should take the rescore task")
	}
	// The much faster legacy slave would normally win a replica of the
	// executing task, but it cannot run a rescore.
	if got, replica := c.RequestWork(legacy, sec(1)); len(got) != 0 || replica {
		t.Fatalf("nil-caps slave granted replica %v of a rescore task", got)
	}
}

func TestAddTasksLatchesMixedKinds(t *testing.T) {
	// A pool seeded pure-SW switches to kind-aware grants the moment a
	// non-SW task is appended mid-job.
	c := NewCoordinator(mkTasks(1), Config{Policy: SS{}})
	legacy := c.Register(SlaveInfo{Name: "legacy", Kind: KindCPU}, 0)
	got, _ := c.RequestWork(legacy, 0)
	if len(got) != 1 {
		t.Fatal("setup: SW grant failed")
	}
	if ok, _ := c.Complete(legacy, got[0].ID, nil, 0); !ok {
		t.Fatal("setup: completion rejected")
	}
	ids := c.AddTasks([]Task{{QueryID: "a", Cells: 10, Kind: TaskRescore}})
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("AddTasks ids = %v", ids)
	}
	if got, _ := c.RequestWork(legacy, 0); len(got) != 0 {
		t.Fatalf("nil-caps slave granted appended rescore task: %v", got)
	}
	capable := c.Register(SlaveInfo{Name: "cpu", Kind: KindCPU,
		Caps: []TaskKind{TaskRescore}}, 0)
	if got, _ := c.RequestWork(capable, 0); len(got) != 1 || got[0].Kind != TaskRescore {
		t.Fatalf("capable grant = %v", got)
	}
}
