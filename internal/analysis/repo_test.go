package analysis

import (
	"bytes"
	"testing"
)

// TestRepoIsClean is the meta-test behind `make lint`: the full analyzer
// suite must produce zero diagnostics on the real tree. Any new
// violation fails here with the same file:line output swcheck prints,
// so CI catches it even if the Makefile target is skipped.
func TestRepoIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	var buf bytes.Buffer
	n, err := Run(root, []string{"./..."}, All(), &buf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 0 {
		t.Errorf("swcheck found %d finding(s) on the repository:\n%s", n, buf.String())
	}
}
