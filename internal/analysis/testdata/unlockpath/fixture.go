// Package unlockpath is the golden fixture for the flow-sensitive lock
// analyzer: every Lock must reach an Unlock on all paths (defer-aware,
// including deferred closures), a definite re-Lock is a self-deadlock,
// and no lock may be held across an unbounded blocking operation.
package unlockpath

import (
	"sync"

	"repro/internal/wire"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// cleanDefer is the canonical idiom: Lock with deferred Unlock.
func (s *store) cleanDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// cleanBranches releases explicitly on every path.
func (s *store) cleanBranches(flag bool) int {
	s.mu.Lock()
	if flag {
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// cleanDeferClosure: the unlock hides inside a deferred closure.
func (s *store) cleanDeferClosure() {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	s.n++
}

// missingOnPath leaks the lock on the early return.
func (s *store) missingOnPath(flag bool) int {
	s.mu.Lock() // want "released on some paths but not others"
	if flag {
		return 0
	}
	s.mu.Unlock()
	return s.n
}

// neverReleased holds the lock at every return.
func (s *store) neverReleased() {
	s.mu.Lock() // want "still held at every return"
	s.n++
}

// doubleLock re-locks a mutex that is definitely held.
func (s *store) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want "locked twice without an intervening Unlock"
	s.n++
	s.mu.Unlock()
	s.mu.Unlock()
}

// readClean: RLock balanced by a deferred RUnlock.
func (s *store) readClean() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

// leakyRead leaks the read lock on the early return.
func (s *store) leakyRead(flag bool) int {
	s.rw.RLock() // want "released on some paths but not others"
	if flag {
		return 0
	}
	s.rw.RUnlock()
	return s.n
}

// panicPath is clean: the panicking path never reaches a return, so only
// the normal path needs the release.
func (s *store) panicPath(flag bool) {
	s.mu.Lock()
	if flag {
		s.mu.Unlock()
		panic("boom")
	}
	s.mu.Unlock()
}

// heldAcrossSend blocks on a channel while holding the lock.
func (s *store) heldAcrossSend(ch chan int) {
	s.mu.Lock()
	ch <- s.n // want "held across a channel send"
	s.mu.Unlock()
}

// heldAcrossRecv blocks on a receive while holding the lock.
func (s *store) heldAcrossRecv(ch chan int) {
	s.mu.Lock()
	s.n = <-ch // want "held across a channel receive"
	s.mu.Unlock()
}

// heldAcrossSelect: a select without default can block arbitrarily.
func (s *store) heldAcrossSelect(ch chan int) {
	s.mu.Lock()
	select { // want "held across a select without default"
	case v := <-ch:
		s.n = v
	}
	s.mu.Unlock()
}

// nonblockingPoll is clean: default makes the select a non-blocking
// attempt.
func (s *store) nonblockingPoll(ch chan int) {
	s.mu.Lock()
	select {
	case v := <-ch:
		s.n = v
	default:
	}
	s.mu.Unlock()
}

// heldAcrossWait joins a WaitGroup while holding the lock.
func (s *store) heldAcrossWait(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "held across sync.WaitGroup.Wait"
	s.mu.Unlock()
}

// condWait is clean: sync.Cond.Wait releases the mutex while waiting by
// contract.
func (s *store) condWait(c *sync.Cond) {
	s.mu.Lock()
	for s.n == 0 {
		c.Wait()
	}
	s.mu.Unlock()
}

// heldAcrossRPC holds the lock across a wire round trip.
func (s *store) heldAcrossRPC(c wire.Caller) {
	s.mu.Lock()
	_, _ = c.Call(wire.Envelope{}) // want "held across a wire RPC"
	s.mu.Unlock()
}

// unlockFirst is clean: releasing before blocking is exactly the fix the
// analyzer asks for.
func (s *store) unlockFirst(c wire.Caller) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	_, _ = c.Call(wire.Envelope{Error: ""})
	_ = n
}
