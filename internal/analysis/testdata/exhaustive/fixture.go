// Package exhaustive is the golden fixture for the enum-switch analyzer.
package exhaustive

// Phase qualifies as a module enum: a named integer type with at least
// two package-level constants of exactly that type.
type Phase int

const (
	PhaseIdle Phase = iota
	PhaseRun
	PhaseDone
)

// PhaseRunning aliases PhaseRun; same-value constants collapse to one
// enum member, so covering either name covers the member.
const PhaseRunning = PhaseRun

// Mode is a string-backed enum.
type Mode string

const (
	ModeFast Mode = "fast"
	ModeSafe Mode = "safe"
)

// lone has only one constant, so it is not an enum and its switches are
// never checked.
type lone int

const onlyLone lone = 0

func bad(p Phase) string {
	switch p { // want "switch over Phase misses PhaseDone and has no default case"
	case PhaseIdle:
		return "idle"
	case PhaseRun:
		return "run"
	}
	return "?"
}

func badString(m Mode) {
	switch m { // want "switch over Mode misses ModeSafe and has no default case"
	case ModeFast:
	}
}

func coversAll(p Phase) string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseRunning: // alias name covers the PhaseRun member
		return "run"
	case PhaseDone:
		return "done"
	}
	return "?"
}

func hasDefault(p Phase) string {
	switch p {
	case PhaseDone:
		return "done"
	default:
		return "busy"
	}
}

func nonConstantCase(p, q Phase) bool {
	switch p { // skipped: a non-constant case defeats static reasoning
	case q:
		return true
	}
	return false
}

func notAnEnum(l lone) {
	switch l { // single-constant types are not enums
	case onlyLone:
	}
}

// TaskKind mirrors sched.TaskKind: an iota enum that grew from one de
// facto value (the zero value meant the only kind) to several. The
// zero-valued member counts like any other, so a switch written before
// the type grew now needs every kind or a default.
type TaskKind int

const (
	TaskSW TaskKind = iota
	TaskPrefilter
	TaskRescore
)

func staleKindSwitch(k TaskKind) int64 {
	switch k { // want "switch over TaskKind misses TaskPrefilter, TaskRescore and has no default case"
	case TaskSW:
		return 1
	}
	return 0
}

func grownKindSwitch(k TaskKind) string {
	switch k {
	case TaskSW:
		return "sw"
	case TaskPrefilter:
		return "prefilter"
	case TaskRescore:
		return "rescore"
	}
	return "?"
}

// ShardState mirrors cluster.ShardState: the shard-scan lifecycle enum the
// cluster backend switches over when rendering progress.
type ShardState int

const (
	ShardPending ShardState = iota
	ShardScanning
	ShardDone
	ShardFailed
)

func staleShardSwitch(s ShardState) bool {
	switch s { // want "switch over ShardState misses ShardDone, ShardFailed and has no default case"
	case ShardPending, ShardScanning:
		return false
	}
	return true
}

// Backend mirrors jobs.Backend: the string enum naming a job's execution
// path. Routing switches must handle every backend or default.
type Backend string

const (
	BackendLocal   Backend = "local"
	BackendCluster Backend = "cluster"
)

func staleBackendSwitch(b Backend) string {
	switch b { // want "switch over Backend misses BackendCluster and has no default case"
	case BackendLocal:
		return "in-process"
	}
	return "?"
}

func routedBackendSwitch(b Backend) string {
	switch b {
	case BackendLocal:
		return "in-process"
	case BackendCluster:
		return "scatter-gather"
	}
	return "?"
}

// TenantPolicy mirrors jobs.TenantPolicy: the fair-queue dequeue
// discipline enum. Cost functions switch over it; a policy added later
// must not silently fall through to FIFO charging.
type TenantPolicy int

const (
	TenantFIFO TenantPolicy = iota
	TenantWFQ
	TenantDRF
)

func staleTenantPolicySwitch(p TenantPolicy) float64 {
	switch p { // want "switch over TenantPolicy misses TenantDRF and has no default case"
	case TenantFIFO:
		return 0
	case TenantWFQ:
		return 1
	}
	return 0
}

// ScaleState mirrors autoscale.State: the hysteresis controller's dwell
// phases. The controller's transition switch must either name every phase
// or default, or a new phase would silently never dwell.
type ScaleState int

const (
	ScaleSteady ScaleState = iota
	ScaleUp
	ScaleDown
)

func staleScaleSwitch(s ScaleState) bool {
	switch s { // want "switch over ScaleState misses ScaleDown and has no default case"
	case ScaleSteady, ScaleUp:
		return false
	}
	return true
}

// PreemptReason mirrors sched.PreemptReason: why a replicated task copy
// was revoked. Audit renderers switch over it.
type PreemptReason int

const (
	PreemptShare PreemptReason = iota
	PreemptPriority
)

func labeledPreemptSwitch(r PreemptReason) string {
	switch r {
	case PreemptShare:
		return "share"
	case PreemptPriority:
		return "priority"
	default:
		return "unknown"
	}
}
