// Command swserve exposes the hybrid Smith-Waterman search engine as a
// small HTTP/JSON service over a resident database.
//
// Usage:
//
//	swserve -db db.fasta -listen :8080 -gpus 1 -sse 2
//
// Endpoints:
//
//	GET  /healthz   liveness and uptime
//	GET  /database  database name/size
//	POST /search    {"queries_fasta": ">q\nACDE...", "top_k": 5, "align": true}
//	POST /align     {"a": "MKVL...", "b": "MKIL...", "global": false}
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	hybridsw "repro"
	"repro/internal/fasta"
	"repro/internal/httpapi"
	"repro/internal/seq"
	"repro/internal/seqio"
)

func main() {
	var (
		dbPath = flag.String("db", "", "database FASTA or packed (.swpkd) file")
		listen = flag.String("listen", ":8080", "HTTP listen address")
		gpus   = flag.Int("gpus", 1, "simulated GPU engines")
		sse    = flag.Int("sse", 2, "SSE-core engines")
		policy = flag.String("policy", "PSS", "default allocation policy")
		adjust = flag.Bool("adjust", true, "enable the workload adjustment mechanism")
	)
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var db []*seq.Sequence
	var err error
	if strings.HasSuffix(*dbPath, ".swpkd") {
		db, _, err = seqio.ReadPacked(*dbPath)
	} else {
		db, err = fasta.ReadFile(*dbPath)
	}
	if err != nil {
		fail("%v", err)
	}
	srv, err := httpapi.New(*dbPath, db, hybridsw.Platform{
		GPUs:     *gpus,
		SSECores: *sse,
		Policy:   *policy,
		Adjust:   *adjust,
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("swserve: %d sequences loaded from %s; listening on %s\n", len(db), *dbPath, *listen)
	if err := http.ListenAndServe(*listen, srv.Handler()); err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swserve: "+format+"\n", args...)
	os.Exit(1)
}
