// Package autoscale decides when an elastic slave pool should grow or
// shrink. It is a pure policy: callers feed it observations (backlog and
// pool size at a virtual or wall timestamp) and apply the returned actions
// themselves, so the same controller drives the deterministic simulator and
// a live deployment.
//
// The controller is a classic hysteresis loop. Pressure is the backlog per
// pool member; crossing UpAt (or DownAt) starts a dwell clock, and only
// after the pressure has stayed over (under) the threshold for UpAfter
// (DownAfter) does the controller emit a Grow (Shrink) — a momentary spike
// or trough never moves the pool. After any action a Cooldown mutes further
// actions, and Min/Max clamp the pool absolutely, so a flapping workload
// produces a bounded number of scale events (the simulator asserts this as
// an invariant).
package autoscale

import (
	"fmt"
	"time"
)

// State is the controller's dwell phase.
type State int

const (
	// Steady: pressure inside the [DownAt, UpAt] band, no dwell running.
	Steady State = iota
	// ScalingUp: pressure has been above UpAt since the dwell started.
	ScalingUp
	// ScalingDown: pressure has been below DownAt since the dwell started.
	ScalingDown
)

// String names the state for logs and decision traces.
func (s State) String() string {
	switch s {
	case Steady:
		return "steady"
	case ScalingUp:
		return "scaling-up"
	case ScalingDown:
		return "scaling-down"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Action is what the caller should do to the pool.
type Action int

const (
	// Hold: leave the pool alone.
	Hold Action = iota
	// Grow: add one slave.
	Grow
	// Shrink: retire one slave.
	Shrink
)

// String names the action for logs and metrics labels.
func (a Action) String() string {
	switch a {
	case Hold:
		return "hold"
	case Grow:
		return "grow"
	case Shrink:
		return "shrink"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Config tunes the controller. The zero value is completed by sane
// defaults (see Defaults).
type Config struct {
	// Min and Max clamp the pool size the controller will steer toward.
	// Min defaults to 1; Max defaults to 8.
	Min, Max int
	// UpAt is the backlog-per-slave pressure above which the pool wants to
	// grow; defaults to 4.
	UpAt float64
	// DownAt is the pressure below which the pool wants to shrink;
	// defaults to 0.5. Must be < UpAt for the hysteresis band to exist.
	DownAt float64
	// UpAfter and DownAfter are how long the pressure must dwell past the
	// threshold before the controller acts. Both default to 2s. Shrinking
	// usually wants a longer dwell than growing.
	UpAfter, DownAfter time.Duration
	// Cooldown mutes all actions after one fires, letting the pool change
	// take effect before the controller reacts to its own wake. Defaults
	// to 5s.
	Cooldown time.Duration
}

// Defaults fills unset fields and returns the completed config.
func (c Config) Defaults() Config {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 8
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.UpAt <= 0 {
		c.UpAt = 4
	}
	if c.DownAt <= 0 {
		c.DownAt = 0.5
	}
	if c.DownAt >= c.UpAt {
		c.DownAt = c.UpAt / 2
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2 * time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// Decision is one recorded Observe outcome that changed something: every
// non-Hold action, kept so tests and the simulator can audit flap counts.
type Decision struct {
	At       time.Duration
	Action   Action
	Pool     int // pool size the controller observed
	Backlog  int
	Pressure float64
}

// Controller is the hysteresis loop. Not safe for concurrent use; it keeps
// no goroutines and never reads the wall clock — time arrives through
// Observe's now argument.
type Controller struct {
	cfg   Config
	state State
	// dwellStart is when pressure first crossed the active threshold.
	dwellStart time.Duration
	lastAction time.Duration
	acted      bool // lastAction is valid (distinguishes t=0 from never)
	decisions  []Decision
}

// New builds a controller; cfg is completed with Defaults.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.Defaults()}
}

// Config returns the completed configuration.
func (c *Controller) Config() Config { return c.cfg }

// State returns the current dwell phase.
func (c *Controller) State() State { return c.state }

// Decisions returns every non-Hold action taken so far, in order.
func (c *Controller) Decisions() []Decision { return c.decisions }

// Observe feeds one (backlog, pool) sample at time now and returns the
// action the caller should apply. now must not go backwards between calls.
func (c *Controller) Observe(backlog, pool int, now time.Duration) Action {
	if pool < 1 {
		pool = 1
	}
	pressure := float64(backlog) / float64(pool)

	// Classify the sample against the hysteresis band.
	var want State
	switch {
	case pressure > c.cfg.UpAt:
		want = ScalingUp
	case pressure < c.cfg.DownAt:
		want = ScalingDown
	default:
		want = Steady
	}

	// (Re)start the dwell clock whenever the phase changes: a sample back
	// inside the band resets accumulated intent.
	if want != c.state {
		c.state = want
		c.dwellStart = now
	}
	if c.state == Steady {
		return Hold
	}
	// Cooldown after an action, regardless of dwell.
	if c.acted && now-c.lastAction < c.cfg.Cooldown {
		return Hold
	}

	switch c.state {
	case ScalingUp:
		if now-c.dwellStart < c.cfg.UpAfter || pool >= c.cfg.Max {
			return Hold
		}
		return c.act(Grow, backlog, pool, pressure, now)
	case ScalingDown:
		if now-c.dwellStart < c.cfg.DownAfter || pool <= c.cfg.Min {
			return Hold
		}
		return c.act(Shrink, backlog, pool, pressure, now)
	default:
		return Hold
	}
}

func (c *Controller) act(a Action, backlog, pool int, pressure float64, now time.Duration) Action {
	c.lastAction = now
	c.acted = true
	// The action resets the dwell: the next sample re-evaluates from
	// scratch against the changed pool.
	c.state = Steady
	c.decisions = append(c.decisions, Decision{
		At: now, Action: a, Pool: pool, Backlog: backlog, Pressure: pressure,
	})
	return a
}
