package sched

import (
	"math/rand"
	"testing"
	"time"
)

// TestPoolRandomOpsInvariants drives the pool with random valid operations
// and checks the counting invariants and state machine after every step.
func TestPoolRandomOpsInvariants(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		p := NewPool(mkTasks(n))
		nSlaves := 1 + rng.Intn(5)

		// executing[taskID] = set of slaves holding it, mirrored model.
		model := map[TaskID]map[SlaveID]bool{}
		finished := map[TaskID]bool{}

		check := func() {
			t.Helper()
			if p.Ready()+p.ExecutingCount()+p.Finished() != n {
				t.Fatalf("seed %d: counts %d+%d+%d != %d", seed, p.Ready(), p.ExecutingCount(), p.Finished(), n)
			}
			if p.Finished() != len(finished) {
				t.Fatalf("seed %d: finished %d != model %d", seed, p.Finished(), len(finished))
			}
			if p.ExecutingCount() != len(model) {
				t.Fatalf("seed %d: executing %d != model %d", seed, p.ExecutingCount(), len(model))
			}
			for id, slaves := range model {
				if p.StateOf(id) != Executing {
					t.Fatalf("seed %d: task %d should be executing", seed, id)
				}
				if got := len(p.Executors(id)); got != len(slaves) {
					t.Fatalf("seed %d: task %d executors %d != %d", seed, id, got, len(slaves))
				}
			}
		}

		for step := 0; step < 500 && !p.Done(); step++ {
			now := time.Duration(step) * time.Second
			s := SlaveID(rng.Intn(nSlaves))
			switch rng.Intn(4) {
			case 0: // take ready
				k := 1 + rng.Intn(3)
				for _, task := range p.TakeReady(k, s, now) {
					if model[task.ID] == nil {
						model[task.ID] = map[SlaveID]bool{}
					}
					model[task.ID][s] = true
				}
			case 1: // add a replica executor to a random executing task
				if ids := p.ExecutingTasks(); len(ids) > 0 {
					id := ids[rng.Intn(len(ids))]
					if !model[id][s] {
						p.AddExecutor(id, s, now)
						model[id][s] = true
					}
				}
			case 2: // a random executor completes its task
				if ids := p.ExecutingTasks(); len(ids) > 0 {
					id := ids[rng.Intn(len(ids))]
					for exec := range model[id] {
						first, others := p.Complete(id, exec, now)
						if !first {
							t.Fatalf("seed %d: first completion rejected", seed)
						}
						if len(others) != len(model[id])-1 {
							t.Fatalf("seed %d: others %d != %d", seed, len(others), len(model[id])-1)
						}
						delete(model, id)
						finished[id] = true
						break
					}
				}
			case 3: // a random executor abandons its task
				if ids := p.ExecutingTasks(); len(ids) > 0 {
					id := ids[rng.Intn(len(ids))]
					for exec := range model[id] {
						p.Abandon(id, exec)
						delete(model[id], exec)
						if len(model[id]) == 0 {
							delete(model, id) // requeued
						}
						break
					}
				}
			}
			check()
		}
	}
}
