// Package dataset generates deterministic synthetic protein databases and
// query sets matching the profiles of the paper's Table II.
//
// The original evaluation compares 40 real query sequences against five
// public databases (Ensembl Dog/Rat, RefSeq Human/Mouse,
// UniProtKB/SwissProt). Those downloads are unavailable offline, and the
// scheduling experiments depend on the databases only through their size
// profile — sequence count and length distribution — which enters every
// formula as DP cell counts. This package reproduces the profiles (scaled
// versions included, for tests and real-compute runs) with realistic
// residue composition so the compute kernels do real work, and derives
// query sets the way the paper does: lengths equally distributed between
// 100 and ~5,000 amino acids, drawn from database content so that
// homologous hits exist.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/seq"
)

// Profile describes a database's size and length distribution. Sequence
// lengths are drawn from a clamped log-normal, the textbook fit for protein
// databases.
type Profile struct {
	Name    string
	NumSeqs int
	MeanLen float64 // arithmetic mean sequence length
	SigmaLn float64 // log-space standard deviation
	MinLen  int
	MaxLen  int
}

// TableII returns the five database profiles of the paper's Table II.
// Sequence counts are the paper's exact numbers; mean lengths are the
// published statistics of the 2012-era releases (SwissProt averaged ~355
// aa; Ensembl/RefSeq proteomes run longer, ~480-560 aa).
func TableII() []Profile {
	return []Profile{
		{Name: "Ensembl Dog Proteins", NumSeqs: 25160, MeanLen: 481, SigmaLn: 0.75, MinLen: 30, MaxLen: 15000},
		{Name: "Ensembl Rat Proteins", NumSeqs: 32971, MeanLen: 465, SigmaLn: 0.75, MinLen: 30, MaxLen: 15000},
		{Name: "RefSeq Human Proteins", NumSeqs: 34705, MeanLen: 555, SigmaLn: 0.78, MinLen: 30, MaxLen: 20000},
		{Name: "RefSeq Mouse Proteins", NumSeqs: 29437, MeanLen: 506, SigmaLn: 0.76, MinLen: 30, MaxLen: 20000},
		{Name: "UniProtKB/SwissProt", NumSeqs: 537505, MeanLen: 355, SigmaLn: 0.70, MinLen: 10, MaxLen: 36000},
	}
}

// ProfileByName finds a Table II profile by (case-sensitive) name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range TableII() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown database %q", name)
}

// Residues returns the expected total residue count, the quantity the
// virtual-time experiments consume without generating any sequences.
func (p Profile) Residues() int64 {
	return int64(math.Round(float64(p.NumSeqs) * p.MeanLen))
}

// Scale returns a copy with the sequence count scaled by f (at least 1
// sequence), used to build laptop-sized variants for real-compute runs.
func (p Profile) Scale(f float64) Profile {
	out := p
	out.Name = fmt.Sprintf("%s (x%g)", p.Name, f)
	out.NumSeqs = int(math.Round(float64(p.NumSeqs) * f))
	if out.NumSeqs < 1 {
		out.NumSeqs = 1
	}
	return out
}

// Robinson-Robinson amino-acid background frequencies (per mil), in the
// order of the 20 canonical residues below.
var (
	aaLetters = []byte("ACDEFGHIKLMNPQRSTVWY")
	aaFreqs   = []float64{78, 19, 54, 63, 39, 74, 22, 51, 57, 90, 22, 45, 52, 43, 51, 71, 58, 64, 13, 32}
)

// sampler draws residues from the background distribution.
type sampler struct {
	rng *rand.Rand
	cum []float64
}

func newSampler(rng *rand.Rand) *sampler {
	cum := make([]float64, len(aaFreqs))
	total := 0.0
	for i, f := range aaFreqs {
		total += f
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &sampler{rng: rng, cum: cum}
}

func (s *sampler) residue() byte {
	r := s.rng.Float64()
	for i, c := range s.cum {
		if r <= c {
			return aaLetters[i]
		}
	}
	return aaLetters[len(aaLetters)-1]
}

func (s *sampler) sequence(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = s.residue()
	}
	return out
}

// length draws one sequence length from the profile's clamped log-normal.
func (p Profile) length(rng *rand.Rand) int {
	// For a log-normal with parameters (mu, sigma), mean = exp(mu+sigma²/2).
	mu := math.Log(p.MeanLen) - p.SigmaLn*p.SigmaLn/2
	n := int(math.Round(math.Exp(rng.NormFloat64()*p.SigmaLn + mu)))
	if n < p.MinLen {
		n = p.MinLen
	}
	if p.MaxLen > 0 && n > p.MaxLen {
		n = p.MaxLen
	}
	return n
}

// Generate builds the database deterministically from the seed.
func Generate(p Profile, seed int64) []*seq.Sequence {
	rng := rand.New(rand.NewSource(seed))
	smp := newSampler(rng)
	db := make([]*seq.Sequence, p.NumSeqs)
	for i := range db {
		n := p.length(rng)
		db[i] = seq.New(fmt.Sprintf("DB%06d", i), fmt.Sprintf("synthetic %s", p.Name), smp.sequence(n))
	}
	return db
}

// QueryLengths returns n lengths equally distributed over [minLen, maxLen],
// the paper's query-selection rule (40 queries from 100 to ~5,000 aa).
func QueryLengths(n, minLen, maxLen int) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	if n == 1 {
		out[0] = minLen
		return out
	}
	step := float64(maxLen-minLen) / float64(n-1)
	for i := range out {
		out[i] = minLen + int(math.Round(step*float64(i)))
	}
	return out
}

// Queries derives n query sequences of equally distributed lengths from the
// database: each query is stitched from mutated fragments of database
// sequences, so real hits exist. With an empty db the queries are pure
// background samples.
func Queries(db []*seq.Sequence, n, minLen, maxLen int, seed int64) []*seq.Sequence {
	rng := rand.New(rand.NewSource(seed))
	smp := newSampler(rng)
	lengths := QueryLengths(n, minLen, maxLen)
	out := make([]*seq.Sequence, n)
	for i, want := range lengths {
		var buf []byte
		for len(buf) < want {
			if len(db) > 0 && rng.Float64() < 0.8 {
				src := db[rng.Intn(len(db))].Residues
				if len(src) > 0 {
					k := min(len(src), 50+rng.Intn(200))
					start := 0
					if len(src) > k {
						start = rng.Intn(len(src) - k)
					}
					frag := src[start : start+k]
					for _, c := range frag {
						if rng.Float64() < 0.05 { // point mutations
							c = smp.residue()
						}
						buf = append(buf, c)
					}
					continue
				}
			}
			buf = append(buf, smp.sequence(min(want-len(buf), 100))...)
		}
		buf = buf[:want]
		out[i] = seq.New(fmt.Sprintf("Q%02d_len%d", i, want), "synthetic query", buf)
	}
	return out
}

// TotalCells returns the DP cells of comparing every query against a
// database with the given residue count — the workload size of one
// experiment, Σ|q| x residues.
func TotalCells(queries []*seq.Sequence, residues int64) int64 {
	var total int64
	for _, q := range queries {
		total += int64(q.Len()) * residues
	}
	return total
}

// DNAProfile describes a synthetic nucleotide database; lengths follow the
// same clamped log-normal as the protein profiles.
type DNAProfile struct {
	Name    string
	NumSeqs int
	MeanLen float64
	SigmaLn float64
	MinLen  int
	MaxLen  int
	// GC is the G+C content in [0,1]; 0 means the uniform 0.5.
	GC float64
}

// GenerateDNA builds a deterministic synthetic DNA database.
func GenerateDNA(p DNAProfile, seed int64) []*seq.Sequence {
	rng := rand.New(rand.NewSource(seed))
	gc := p.GC
	if gc <= 0 {
		gc = 0.5
	}
	prof := Profile{MeanLen: p.MeanLen, SigmaLn: p.SigmaLn, MinLen: p.MinLen, MaxLen: p.MaxLen}
	db := make([]*seq.Sequence, p.NumSeqs)
	for i := range db {
		n := prof.length(rng)
		res := make([]byte, n)
		for j := range res {
			if rng.Float64() < gc {
				if rng.Intn(2) == 0 {
					res[j] = 'G'
				} else {
					res[j] = 'C'
				}
			} else {
				if rng.Intn(2) == 0 {
					res[j] = 'A'
				} else {
					res[j] = 'T'
				}
			}
		}
		db[i] = seq.New(fmt.Sprintf("DNA%06d", i), fmt.Sprintf("synthetic %s", p.Name), res)
	}
	return db
}
