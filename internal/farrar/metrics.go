package farrar

import "repro/internal/metrics"

// Tier label values of the farrar_fallback_total counter, one per rung of
// the 8 -> 16 -> scalar overflow ladder.
const (
	Tier8      = "8bit"
	Tier16     = "16bit"
	TierScalar = "scalar"
)

// Metrics is the kernel-side instrumentation bundle. Kernels themselves
// stay metrics-free (they are built per worker goroutine and per query);
// callers aggregate Stats across kernels and publish the totals here.
type Metrics struct {
	// Fallback counts sequences by the ladder tier that resolved them,
	// labelled tier="8bit" | "16bit" | "scalar".
	Fallback *metrics.CounterVec
}

// NewMetrics registers (or re-attaches to) the kernel families on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Fallback: r.CounterVec("farrar_fallback_total",
			"Sequences resolved per kernel tier of the 8/16/scalar overflow ladder.", "tier"),
	}
}

// Observe publishes one batch of aggregated kernel stats. Nil receivers
// and zero deltas are no-ops, so callers can observe unconditionally.
func (m *Metrics) Observe(s Stats) {
	if m == nil {
		return
	}
	if s.Scored8 > 0 {
		m.Fallback.With(Tier8).Add(float64(s.Scored8))
	}
	if s.Fallback16 > 0 {
		m.Fallback.With(Tier16).Add(float64(s.Fallback16))
	}
	if s.FallbackSW > 0 {
		m.Fallback.With(TierScalar).Add(float64(s.FallbackSW))
	}
}
