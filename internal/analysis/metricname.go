package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// MetricNameAnalyzer is cmd/metriclint folded into the swcheck suite: it
// applies metrics.CheckName to every literal metric name passed to a
// *metrics.Registry constructor (Counter, GaugeVec, HistogramVec, ...),
// so a name that would panic the registry at run time fails `make lint`
// instead — including on code paths no test registers. Unlike the
// original purely syntactic linter it resolves the receiver type, so a
// method merely named Counter on some other type is not misflagged.
var MetricNameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc:  "metric names passed to registry constructors must follow the subsystem_name_unit convention",
	Run:  runMetricName,
}

// metricConstructors maps Registry method names to the metric kind their
// first string argument names.
var metricConstructors = map[string]metrics.Kind{
	"Counter":      metrics.KindCounter,
	"CounterVec":   metrics.KindCounter,
	"Gauge":        metrics.KindGauge,
	"GaugeVec":     metrics.KindGauge,
	"Histogram":    metrics.KindHistogram,
	"HistogramVec": metrics.KindHistogram,
}

func runMetricName(pass *Pass) {
	info := pass.Pkg.Info
	pass.Pkg.WalkStack(func(n ast.Node, _ []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind, ok := metricConstructors[sel.Sel.Name]
		if !ok || !isRegistry(info.Types[sel.X].Type) {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if cerr := metrics.CheckName(kind, name); cerr != nil {
			pass.Reportf(lit.Pos(), "%v", cerr)
		}
		return true
	})
}

// isRegistry reports whether t is *metrics.Registry (or metrics.Registry).
func isRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/metrics")
}
