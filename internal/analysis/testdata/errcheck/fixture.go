// Package errcheck is the golden fixture for the dropped-error analyzer.
package errcheck

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func valAndErr() (int, error) { return 0, nil }

func bad() {
	mayFail()         // want "mayFail returns an error that is silently dropped"
	os.Remove("gone") // want "Remove returns an error that is silently dropped"
	valAndErr()       // want "valAndErr returns an error that is silently dropped"
}

func clean(buf *bytes.Buffer, sb *strings.Builder) error {
	// An explicit discard is an acknowledged decision: never flagged.
	_ = mayFail()

	// Checked errors are the point.
	if err := mayFail(); err != nil {
		return err
	}

	// fmt print sinks and the always-nil writers are exempt.
	fmt.Println("print sinks are deliberate in the errWriter pattern")
	buf.WriteString("bytes.Buffer errors are documented always-nil")
	sb.WriteString("strings.Builder too")

	// Deferred calls follow their own conventions (close-on-exit) and are
	// out of scope for the lite checker.
	defer mayFail()

	return nil
}
