package gcups

import (
	"strings"
	"testing"
	"time"
)

func TestGCUPS(t *testing.T) {
	if got := GCUPS(35e9, time.Second); got != 35 {
		t.Errorf("GCUPS = %v", got)
	}
	if got := GCUPS(100, 0); got != 0 {
		t.Errorf("GCUPS with zero duration = %v", got)
	}
	if got := GCUPS(2e9, 4*time.Second); got != 0.5 {
		t.Errorf("GCUPS = %v, want 0.5", got)
	}
}

func TestSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1.5"},
		{99 * time.Second, "99.0"},
		{112 * time.Second, "112"},
		{7190 * time.Second, "7,190"},
		{1234567 * time.Second, "1,234,567"},
	}
	for _, c := range cases {
		if got := Seconds(c.d); got != c.want {
			t.Errorf("Seconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestBucketize(t *testing.T) {
	times := []time.Duration{0, 500 * time.Millisecond, 1200 * time.Millisecond}
	rates := []float64{2e9, 4e9, 6e9}
	s := Bucketize("core0", times, rates, time.Second, 2*time.Second)
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].GCUPS != 3 { // (2+4)/2
		t.Errorf("bucket 0 = %v, want 3", s.Points[0].GCUPS)
	}
	if s.Points[1].GCUPS != 6 {
		t.Errorf("bucket 1 = %v, want 6", s.Points[1].GCUPS)
	}
	if s.Points[2].GCUPS != 0 {
		t.Errorf("empty bucket = %v, want 0", s.Points[2].GCUPS)
	}
}

func TestBucketizeDegenerate(t *testing.T) {
	if got := Bucketize("x", nil, nil, 0, time.Second); len(got.Points) != 0 {
		t.Error("zero step should produce no points")
	}
	// Samples beyond `until` are dropped rather than panicking.
	s := Bucketize("x", []time.Duration{10 * time.Second}, []float64{1e9}, time.Second, 2*time.Second)
	for _, p := range s.Points {
		if p.GCUPS != 0 {
			t.Error("out-of-range sample leaked into a bucket")
		}
	}
}

func TestSeriesMeans(t *testing.T) {
	s := Series{Points: []Point{
		{T: 0, GCUPS: 2},
		{T: time.Second, GCUPS: 4},
		{T: 2 * time.Second, GCUPS: 6},
	}}
	if got := s.Mean(); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.MeanBetween(time.Second, 3*time.Second); got != 5 {
		t.Errorf("MeanBetween = %v", got)
	}
	if got := (Series{}).Mean(); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
	if got := s.MeanBetween(9*time.Second, 10*time.Second); got != 0 {
		t.Errorf("empty MeanBetween = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "Results for the GPUs",
		Header: []string{"Database", "1 GPU", "2 GPUs"},
	}
	tab.AddRow("SwissProt", 487*time.Second, 244*time.Second)
	tab.AddRow("Dog", 12.345, 6.789)
	out := tab.String()
	for _, want := range []string{"Results for the GPUs", "Database", "SwissProt", "487", "12.35", "==="} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and data rows must have equal rendered width (alignment).
	if len(lines[2]) == 0 || len(lines) < 6 {
		t.Fatalf("unexpected table layout:\n%s", out)
	}
}

func TestTableNoHeader(t *testing.T) {
	tab := &Table{}
	tab.AddRow("a", 1)
	out := tab.String()
	if strings.Contains(out, "---") {
		t.Errorf("headerless table should not draw a rule:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Header: []string{"Database", "Time (s)"}}
	tab.AddRow(`Swiss"Prot, full`, 7190*time.Second)
	tab.AddRow("Dog", 57.4)
	got := tab.CSV()
	want := "Database,Time (s)\n\"Swiss\"\"Prot, full\",\"7,190\"\nDog,57.40\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
