package jobs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func rec(id string, st State) Job {
	return Job{ID: id, Key: "k" + id, State: st, Created: time.Unix(1700000000, 0)}
}

func TestStoreReplayLastWins(t *testing.T) {
	dir := t.TempDir()
	st, recs, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(recs))
	}
	if err := st.append(rec("a", StateQueued)); err != nil {
		t.Fatal(err)
	}
	if err := st.append(rec("b", StateQueued)); err != nil {
		t.Fatal(err)
	}
	if err := st.append(rec("a", StateDone)); err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	_, recs, err = openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]State{}
	for _, r := range recs {
		byID[r.ID] = r.State
	}
	if len(byID) != 2 || byID["a"] != StateDone || byID["b"] != StateQueued {
		t.Fatalf("replayed records = %v", byID)
	}
}

func TestStoreTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	st, _, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.append(rec("a", StateQueued)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a truncated, unparseable final line.
	if _, err := st.wal.WriteString(`{"id":"b","sta`); err != nil {
		t.Fatal(err)
	}
	_ = st.close()

	_, recs, err := openStore(dir)
	if err != nil {
		t.Fatalf("torn tail broke recovery: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("recovered %v", recs)
	}
}

func TestStoreSnapshotCompactsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	st, _, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.saveResult("keep", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.saveResult("drop", []byte(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.append(rec("a", StateQueued)); err != nil {
			t.Fatal(err)
		}
	}
	keep := Job{ID: "a", Key: "keep", State: StateDone}
	if err := st.snapshot([]Job{keep}, map[string]bool{"keep": true}); err != nil {
		t.Fatal(err)
	}
	if st.appends != 0 {
		t.Fatalf("appends = %d after snapshot", st.appends)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not truncated: %v %d", err, fi.Size())
	}
	if _, ok := st.loadResult("keep"); !ok {
		t.Fatal("kept result pruned")
	}
	if _, ok := st.loadResult("drop"); ok {
		t.Fatal("unreferenced result survived snapshot")
	}
	// The WAL handle must still be usable after truncate-in-place.
	if err := st.append(rec("c", StateQueued)); err != nil {
		t.Fatalf("append after snapshot: %v", err)
	}
	_ = st.close()

	_, recs, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]State{}
	for _, r := range recs {
		byID[r.ID] = r.State
	}
	if byID["a"] != StateDone || byID["c"] != StateQueued {
		t.Fatalf("snapshot+WAL recovery = %v", byID)
	}
}

func TestStoreResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, _, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()
	if _, ok := st.loadResult("nope"); ok {
		t.Fatal("missing result loaded")
	}
	body := []byte(`{"results":[]}`)
	if err := st.saveResult("k1", body); err != nil {
		t.Fatal(err)
	}
	got, ok := st.loadResult("k1")
	if !ok || string(got) != string(body) {
		t.Fatalf("round trip = %q %v", got, ok)
	}
}
