package sw

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/score"
	"repro/internal/seq"
)

// fig1Scheme is the paper's Fig. 1 scoring: ma=+1, mi=-1, g=-2 (linear).
func fig1Scheme() score.Scheme {
	return score.Scheme{Matrix: score.NewMatchMismatch(seq.DNA, 1, -1), Gap: score.LinearGap(2)}
}

func protScheme() score.Scheme { return score.DefaultProtein() }

// randProtein draws n residues from the 20 canonical amino acids.
func randProtein(rng *rand.Rand, n int) []byte {
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	out := make([]byte, n)
	for i := range out {
		out[i] = canon[rng.Intn(len(canon))]
	}
	return out
}

// mutate returns a noisy copy of s: point substitutions plus indels, so
// related pairs exercise gap code paths.
func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	var out []byte
	for _, c := range s {
		r := rng.Float64()
		switch {
		case r < rate/3: // deletion
		case r < 2*rate/3: // insertion
			out = append(out, c, canon[rng.Intn(len(canon))])
		case r < rate: // substitution
			out = append(out, canon[rng.Intn(len(canon))])
		default:
			out = append(out, c)
		}
	}
	return out
}

func TestPaperFig2LocalScore(t *testing.T) {
	// §II-A Fig. 2: the similarity matrix of s=GCTGACCT(?) vs t=GAAGCTA
	// yields local score 3 with ma=+1, mi=-1, g=-2 — the exact match "GCT".
	got := Score([]byte("GCTGACCT"), []byte("GAAGCTA"), fig1Scheme())
	if got != 3 {
		t.Errorf("Fig.2 local score = %d, want 3", got)
	}
}

func TestScoreHandComputed(t *testing.T) {
	s := fig1Scheme()
	cases := []struct {
		q, t string
		want int
	}{
		{"", "", 0},
		{"A", "", 0},
		{"", "T", 0},
		{"A", "A", 1},
		{"A", "T", 0},        // empty alignment beats a mismatch
		{"ACGT", "ACGT", 4},  // perfect identity
		{"ACGT", "TGCA", 1},  // best is any single match
		{"AAAA", "AATAA", 2}, // 4 matches - one gap (4-2), ties 3 matches - 1 mismatch
		{"ACGTACGT", "ACGT", 4},
	}
	for _, c := range cases {
		if got := Score([]byte(c.q), []byte(c.t), s); got != c.want {
			t.Errorf("Score(%q,%q) = %d, want %d", c.q, c.t, got, c.want)
		}
	}
}

func TestScoreAffineHandComputed(t *testing.T) {
	// match +2, mismatch -1, open 2, extend 1 over DNA.
	s := score.Scheme{Matrix: score.NewMatchMismatch(seq.DNA, 2, -1), Gap: score.AffineGap(2, 1)}
	// q=ACGTT t=ACTT: align ACGTT / AC-TT = 4 matches (8) - (2+1) = 5,
	// or ACGTT/AC.TT with mismatch G/T: 2+2-1+2+2 = 7? ACGTT vs ACTT has
	// len 5 vs 4 so one gap is mandatory for full use; local best:
	// "ACGTT" vs "AC-TT" scores 8-3=5; "CGTT" vs "CTT"... "GTT"/"TT"?
	// "TT"/"TT" = 4. Check best = 5.
	if got := Score([]byte("ACGTT"), []byte("ACTT"), s); got != 5 {
		t.Errorf("affine Score = %d, want 5", got)
	}
}

func TestScoreEndsCoordinates(t *testing.T) {
	s := fig1Scheme()
	// The GCT match spans q[0:3] and t[3:6] (0-based inclusive ends 2, 5).
	sc, qe, te := ScoreEnds([]byte("GCTGACCT"), []byte("GAAGCTA"), s)
	if sc != 3 || qe != 2 || te != 5 {
		t.Errorf("ScoreEnds = (%d,%d,%d), want (3,2,5)", sc, qe, te)
	}
	sc, qe, te = ScoreEnds([]byte("AAAA"), []byte("TTTT"), s)
	if sc != 0 || qe != -1 || te != -1 {
		t.Errorf("no-alignment ScoreEnds = (%d,%d,%d), want (0,-1,-1)", sc, qe, te)
	}
}

func TestScoreMatrixAgreesWithScore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		q := randProtein(rng, 1+rng.Intn(40))
		d := randProtein(rng, 1+rng.Intn(40))
		H := ScoreMatrix(q, d, protScheme())
		best := 0
		for _, row := range H {
			for _, v := range row {
				if v > best {
					best = v
				}
			}
		}
		if got := Score(q, d, protScheme()); got != best {
			t.Fatalf("iter %d: Score=%d, matrix max=%d", iter, got, best)
		}
	}
}

func TestScoreSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		q := randProtein(rng, 1+rng.Intn(60))
		d := randProtein(rng, 1+rng.Intn(60))
		if Score(q, d, protScheme()) != Score(d, q, protScheme()) {
			t.Fatalf("Score not symmetric for %s vs %s", q, d)
		}
	}
}

func TestScoreSelfIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := randProtein(rng, 100)
	want := 0
	for _, c := range q {
		want += protScheme().Matrix.Score(c, c)
	}
	if got := Score(q, q, protScheme()); got != want {
		t.Errorf("self score = %d, want %d", got, want)
	}
}

func TestScoreMonotoneInTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := randProtein(rng, 50)
	d := randProtein(rng, 100)
	prev := -1
	for cut := 0; cut <= len(d); cut += 10 {
		sc := Score(q, d[:cut], protScheme())
		if sc < prev {
			t.Fatalf("score decreased when extending target: %d -> %d", prev, sc)
		}
		prev = sc
	}
}

func TestLinearEqualsAffineWithZeroOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := score.NewMatchMismatch(seq.DNA, 2, -3)
	lin := score.Scheme{Matrix: m, Gap: score.LinearGap(2)}
	aff := score.Scheme{Matrix: m, Gap: score.Gap{Open: 0, Extend: 2}}
	letters := []byte("ATGC")
	for iter := 0; iter < 50; iter++ {
		q := make([]byte, 1+rng.Intn(30))
		d := make([]byte, 1+rng.Intn(30))
		for i := range q {
			q[i] = letters[rng.Intn(4)]
		}
		for i := range d {
			d[i] = letters[rng.Intn(4)]
		}
		if Score(q, d, lin) != Score(q, d, aff) {
			t.Fatalf("linear != affine(open=0) for %s vs %s", q, d)
		}
	}
}

func TestAlignAgreesWithScoreAndRescores(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 80; iter++ {
		q := randProtein(rng, 1+rng.Intn(80))
		d := mutate(rng, q, 0.3)
		if len(d) == 0 {
			continue
		}
		want := Score(q, d, protScheme())
		a := Align(q, d, protScheme())
		if a.Score != want {
			t.Fatalf("iter %d: Align.Score=%d, Score=%d", iter, a.Score, want)
		}
		if want == 0 {
			continue
		}
		re, err := a.Rescore(protScheme())
		if err != nil {
			t.Fatalf("iter %d: Rescore: %v", iter, err)
		}
		if re != want {
			t.Fatalf("iter %d: Rescore=%d, want %d\n%s", iter, re, want, a.Format(protScheme(), 60))
		}
		// Aligned rows must spell the claimed sub-sequences.
		if got := strings.ReplaceAll(string(a.QueryRow), "-", ""); got != string(q[a.QueryStart:a.QueryEnd]) {
			t.Fatalf("iter %d: query row %q != q[%d:%d]", iter, got, a.QueryStart, a.QueryEnd)
		}
		if got := strings.ReplaceAll(string(a.TargetRow), "-", ""); got != string(d[a.TargetStart:a.TargetEnd]) {
			t.Fatalf("iter %d: target row %q != t[%d:%d]", iter, got, a.TargetStart, a.TargetEnd)
		}
	}
}

func TestAlignEmptyResult(t *testing.T) {
	a := Align([]byte("AAAA"), []byte("TTTT"), fig1Scheme())
	if a.Score != 0 || len(a.QueryRow) != 0 {
		t.Errorf("expected empty alignment, got %+v", a)
	}
	if a.Identity() != 0 {
		t.Errorf("empty Identity = %v", a.Identity())
	}
}

func TestAlignGlobalHandComputed(t *testing.T) {
	s := fig1Scheme()
	// Global ACGT vs AGT: A/A +1, C/- -2, G/G +1, T/T +1 = 1.
	a := AlignGlobal([]byte("ACGT"), []byte("AGT"), s)
	if a.Score != 1 {
		t.Errorf("global score = %d, want 1", a.Score)
	}
	re, err := a.Rescore(s)
	if err != nil || re != a.Score {
		t.Errorf("rescore = %d (%v), want %d", re, err, a.Score)
	}
	// Both rows must consume the full sequences.
	if strings.ReplaceAll(string(a.QueryRow), "-", "") != "ACGT" ||
		strings.ReplaceAll(string(a.TargetRow), "-", "") != "AGT" {
		t.Errorf("global alignment rows wrong: %s / %s", a.QueryRow, a.TargetRow)
	}
}

func TestAlignGlobalRescoreProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		q := randProtein(rng, 1+rng.Intn(50))
		d := mutate(rng, q, 0.4)
		if len(d) == 0 {
			d = []byte("A")
		}
		a := AlignGlobal(q, d, protScheme())
		re, err := a.Rescore(protScheme())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if re != a.Score {
			t.Fatalf("iter %d: global rescore %d != score %d", iter, re, a.Score)
		}
		if a.Score < Score(q, d, protScheme())-2*MaxPossibleScore(len(q)+len(d), protScheme()) {
			t.Fatalf("iter %d: absurd global score %d", iter, a.Score)
		}
	}
}

func TestAlignGlobalLinearMatchesFullMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 120; iter++ {
		q := randProtein(rng, rng.Intn(60))
		d := mutate(rng, q, 0.5)
		full := AlignGlobal(q, d, protScheme())
		lin := AlignGlobalLinear(q, d, protScheme())
		if lin.Score != full.Score {
			t.Fatalf("iter %d (m=%d n=%d): MM score %d != full %d", iter, len(q), len(d), lin.Score, full.Score)
		}
		if len(q) == 0 && len(d) == 0 {
			continue
		}
		re, err := lin.Rescore(protScheme())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if re != lin.Score {
			t.Fatalf("iter %d: MM rescore %d != score %d", iter, re, lin.Score)
		}
		if strings.ReplaceAll(string(lin.QueryRow), "-", "") != string(q) ||
			strings.ReplaceAll(string(lin.TargetRow), "-", "") != string(d) {
			t.Fatalf("iter %d: MM rows do not spell inputs", iter)
		}
	}
}

func TestAlignLinearSpaceMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 120; iter++ {
		q := randProtein(rng, 1+rng.Intn(70))
		d := mutate(rng, q, 0.35)
		want := Score(q, d, protScheme())
		a := AlignLinearSpace(q, d, protScheme())
		if a.Score != want {
			t.Fatalf("iter %d: linear-space local score %d != %d", iter, a.Score, want)
		}
		if want == 0 {
			continue
		}
		re, err := a.Rescore(protScheme())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if re != want {
			t.Fatalf("iter %d: linear-space rescore %d != %d", iter, re, want)
		}
		if strings.ReplaceAll(string(a.QueryRow), "-", "") != string(q[a.QueryStart:a.QueryEnd]) {
			t.Fatalf("iter %d: rows/coords inconsistent", iter)
		}
	}
}

func TestScoreBandedFullBandEqualsScore(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 80; iter++ {
		q := randProtein(rng, 1+rng.Intn(50))
		d := mutate(rng, q, 0.4)
		if len(d) == 0 {
			d = []byte("G")
		}
		want := Score(q, d, protScheme())
		band := max(len(q), len(d))
		if got := ScoreBanded(q, d, protScheme(), band); got != want {
			t.Fatalf("iter %d: full-band score %d != %d (m=%d n=%d)", iter, got, want, len(q), len(d))
		}
	}
}

func TestScoreBandedNeverExceedsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		q := randProtein(rng, 1+rng.Intn(50))
		d := mutate(rng, q, 0.4)
		if len(d) == 0 {
			d = []byte("G")
		}
		full := Score(q, d, protScheme())
		prev := -1
		for _, band := range []int{0, 1, 2, 4, 8, 16, 64} {
			got := ScoreBanded(q, d, protScheme(), band)
			if got > full {
				t.Fatalf("iter %d band %d: banded %d > full %d", iter, band, got, full)
			}
			if got < prev {
				t.Fatalf("iter %d band %d: banded score not monotone in band (%d < %d)", iter, band, got, prev)
			}
			prev = got
		}
	}
}

func TestScoreBandedIdentityDiagonal(t *testing.T) {
	// A perfect self-match lies on the main diagonal: band 0 suffices.
	rng := rand.New(rand.NewSource(12))
	q := randProtein(rng, 64)
	want := Score(q, q, protScheme())
	if got := ScoreBanded(q, q, protScheme(), 0); got != want {
		t.Errorf("band-0 self score = %d, want %d", got, want)
	}
}

func TestCells(t *testing.T) {
	if Cells(100, 5000) != 500000 {
		t.Errorf("Cells(100,5000) = %d", Cells(100, 5000))
	}
	if Cells(1<<20, 1<<20) != 1<<40 {
		t.Error("Cells overflows at large sizes")
	}
}

func TestMaxPossibleScore(t *testing.T) {
	if got := MaxPossibleScore(10, protScheme()); got != 110 {
		t.Errorf("MaxPossibleScore = %d, want 110 (10 * W:W=11)", got)
	}
}

func TestAlignmentHelpers(t *testing.T) {
	a := &Alignment{
		Score:    5,
		QueryRow: []byte("AC-T"), TargetRow: []byte("AGGT"),
	}
	if got := a.Identity(); got != 0.5 {
		t.Errorf("Identity = %v, want 0.5", got)
	}
	if got := a.Gaps(); got != 1 {
		t.Errorf("Gaps = %d, want 1", got)
	}
}

func TestRescoreRejectsMalformed(t *testing.T) {
	bad := &Alignment{QueryRow: []byte("A-"), TargetRow: []byte("A")}
	if _, err := bad.Rescore(protScheme()); err == nil {
		t.Error("ragged rows accepted")
	}
	dbl := &Alignment{QueryRow: []byte("-"), TargetRow: []byte("-")}
	if _, err := dbl.Rescore(protScheme()); err == nil {
		t.Error("double gap accepted")
	}
}

func TestFormatContainsCoordinates(t *testing.T) {
	q := []byte("ACDEFGHIKLMNP")
	a := Align(q, q, protScheme())
	out := a.Format(protScheme(), 10)
	for _, want := range []string{"Score", "Query", "Target", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	empty := &Alignment{}
	if !strings.Contains(empty.Format(protScheme(), 0), "empty") {
		t.Error("empty alignment format should say so")
	}
}
