package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Event is one line of a structured scheduler event stream. Its JSON field
// names deliberately mirror internal/platform's TraceEvent so a wall-clock
// master run and a discrete-event simulation produce interchangeable
// JSON-lines files: the same jq filter or pandas loader reads both.
// (The types cannot be shared — platform sits above sched while metrics is
// a leaf package — so the JSON shape is the contract, locked in by the
// round-trip test in internal/platform.)
type Event struct {
	Kind    string  `json:"kind"`
	TimeSec float64 `json:"t"`
	PE      string  `json:"pe,omitempty"`

	// assign
	Tasks   []int `json:"tasks,omitempty"`
	Replica bool  `json:"replica,omitempty"`

	// sample
	GCUPS float64 `json:"gcups,omitempty"`

	// exec (one task occupancy window)
	Task      int     `json:"task,omitempty"`
	EndSec    float64 `json:"end,omitempty"`
	Completed bool    `json:"completed,omitempty"`

	// summary (one per PE plus one overall with PE == "")
	CellsDone   int64   `json:"cells,omitempty"`
	TasksWon    int     `json:"won,omitempty"`
	BusySec     float64 `json:"busy_s,omitempty"`
	MakespanSec float64 `json:"makespan_s,omitempty"`
	TotalGCUPS  float64 `json:"total_gcups,omitempty"`

	// stage (one filtered-search stage completed for one query)
	Stage       string  `json:"stage,omitempty"`
	Windows     int     `json:"windows,omitempty"`
	Selectivity float64 `json:"selectivity,omitempty"`
}

// Event kinds shared with platform.TraceEvent.
const (
	EventAssign  = "assign"
	EventSample  = "sample"
	EventExec    = "exec"
	EventSummary = "summary"
	EventStage   = "stage"
)

// EventLog serialises events as JSON lines to a writer. It is safe for
// concurrent Emit from any number of goroutines; a nil *EventLog discards
// events, so call sites need no guards.
type EventLog struct {
	mu      sync.Mutex
	enc     *json.Encoder
	emitted atomic.Uint64
}

// NewEventLog writes events to w (one JSON object per line).
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{enc: json.NewEncoder(w)}
}

// Emit writes one event line. Emitting on a nil log is a no-op.
func (l *EventLog) Emit(e Event) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.enc.Encode(e); err != nil {
		return err
	}
	l.emitted.Add(1)
	return nil
}

// Emitted returns how many events have been written.
func (l *EventLog) Emitted() uint64 {
	if l == nil {
		return 0
	}
	return l.emitted.Load()
}
