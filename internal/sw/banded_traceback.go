package sw

import "repro/internal/score"

// AlignBanded computes a Smith-Waterman local alignment with both phases
// restricted to the diagonal band |i - j| <= band, in O((m+n)·band) time
// and memory. With a covering band it equals Align; with a narrow band it
// is the standard fast path for re-aligning a known-similar pair (e.g. a
// hit found by ScoreBanded or a search engine).
func AlignBanded(q, t []byte, s score.Scheme, band int) *Alignment {
	m, n := len(q), len(t)
	if m == 0 || n == 0 || band < 0 {
		return &Alignment{}
	}
	open, ext := s.Gap.Open, s.Gap.Extend
	width := 2*band + 1

	// Banded storage: cell (i, j) lives at row i, offset j-i+band when
	// |i-j| <= band. Out-of-band reads yield negInf.
	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	for i := 0; i <= m; i++ {
		H[i] = make([]int, width)
		E[i] = make([]int, width)
		F[i] = make([]int, width)
	}
	get := func(M [][]int, i, j int) int {
		if i < 0 || j < 0 || i > m || j > n {
			return negInf
		}
		off := j - i + band
		if off < 0 || off >= width {
			return negInf
		}
		// Row/column zero of H reads its zero default (the local-alignment
		// boundary); E/F are initialized to sentinels below.
		return M[i][off]
	}
	// Initialize E/F to sentinels everywhere (H's zero default is the
	// correct local-alignment boundary).
	for i := 0; i <= m; i++ {
		for o := 0; o < width; o++ {
			E[i][o], F[i][o] = negInf, negInf
		}
	}

	best, bi, bj := 0, 0, 0
	for i := 1; i <= m; i++ {
		lo := max(1, i-band)
		hi := min(n, i+band)
		for j := lo; j <= hi; j++ {
			off := j - i + band
			e := max(get(H, i, j-1)-open-ext, get(E, i, j-1)-ext)
			f := max(get(H, i-1, j)-open-ext, get(F, i-1, j)-ext)
			h := max(get(H, i-1, j-1)+s.Matrix.Score(q[i-1], t[j-1]), e, f, 0)
			E[i][off], F[i][off] = e, f
			H[i][off] = h
			if h > best {
				best, bi, bj = h, i, j
			}
		}
	}
	a := &Alignment{Score: best}
	if best == 0 {
		return a
	}
	var qRow, tRow []byte
	i, j := bi, bj
	st := stateH
	for i > 0 || j > 0 {
		switch st {
		case stateH:
			h := get(H, i, j)
			if h == 0 {
				goto done
			}
			switch {
			case h == get(E, i, j):
				st = stateE
			case h == get(F, i, j):
				st = stateF
			default:
				qRow = append(qRow, q[i-1])
				tRow = append(tRow, t[j-1])
				i, j = i-1, j-1
			}
		case stateE:
			qRow = append(qRow, '-')
			tRow = append(tRow, t[j-1])
			if get(E, i, j) == get(H, i, j-1)-open-ext {
				st = stateH
			}
			j--
		case stateF:
			qRow = append(qRow, q[i-1])
			tRow = append(tRow, '-')
			if get(F, i, j) == get(H, i-1, j)-open-ext {
				st = stateH
			}
			i--
		}
	}
done:
	reverse(qRow)
	reverse(tRow)
	a.QueryRow, a.TargetRow = qRow, tRow
	a.QueryStart, a.QueryEnd = i, bi
	a.TargetStart, a.TargetEnd = j, bj
	return a
}
