package msa

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
)

func protScheme() score.Scheme { return score.DefaultProtein() }

func randProtein(rng *rand.Rand, n int) []byte {
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	out := make([]byte, n)
	for i := range out {
		out[i] = canon[rng.Intn(len(canon))]
	}
	return out
}

func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	var out []byte
	for _, c := range s {
		r := rng.Float64()
		switch {
		case r < rate/3:
		case r < 2*rate/3:
			out = append(out, c, canon[rng.Intn(len(canon))])
		case r < rate:
			out = append(out, canon[rng.Intn(len(canon))])
		default:
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []byte("A")
	}
	return out
}

func mkSeqs(rows ...string) []*seq.Sequence {
	out := make([]*seq.Sequence, len(rows))
	for i, r := range rows {
		out[i] = seq.New(string(rune('a'+i)), "", []byte(r))
	}
	return out
}

func degap(row []byte) string { return strings.ReplaceAll(string(row), "-", "") }

func checkWellFormed(t *testing.T, res *Result, seqs []*seq.Sequence) {
	t.Helper()
	if len(res.Rows) != len(seqs) {
		t.Fatalf("%d rows for %d sequences", len(res.Rows), len(seqs))
	}
	cols := res.Columns()
	for i, row := range res.Rows {
		if len(row) != cols {
			t.Fatalf("row %d has %d columns, want %d", i, len(row), cols)
		}
		if degap(row) != string(seqs[i].Residues) {
			t.Fatalf("row %d does not degap to its input:\n%s\n%s", i, row, seqs[i].Residues)
		}
	}
	// No all-gap columns should survive... actually center-star merging can
	// leave none by construction only when every column holds a residue of
	// at least the center or a new sequence; assert columns are non-empty.
	for c := 0; c < cols; c++ {
		allGap := true
		for _, row := range res.Rows {
			if row[c] != '-' {
				allGap = false
				break
			}
		}
		if allGap {
			t.Fatalf("column %d is all gaps", c)
		}
	}
}

func TestAlignValidation(t *testing.T) {
	if _, err := Align(nil, protScheme(), 1); err == nil {
		t.Error("no sequences accepted")
	}
	if _, err := Align(mkSeqs("ACD", ""), protScheme(), 1); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := Align(mkSeqs("ACD"), score.Scheme{}, 1); err == nil {
		t.Error("bad scheme accepted")
	}
}

func TestAlignSingle(t *testing.T) {
	res, err := Align(mkSeqs("ACDEF"), protScheme(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Rows[0]) != "ACDEF" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAlignPairEqualsGlobal(t *testing.T) {
	// A 2-sequence MSA is exactly the pairwise global alignment.
	seqs := mkSeqs("MKVLATGLLACDE", "MKVLTTGLACDE")
	res, err := Align(seqs, protScheme(), 1)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, res, seqs)
	want := sw.AlignGlobal(seqs[0].Residues, seqs[1].Residues, protScheme()).Score
	if got := res.SumOfPairs(protScheme()); got != want {
		t.Errorf("SP score = %d, want pairwise global %d", got, want)
	}
}

func TestAlignIdenticalSequences(t *testing.T) {
	seqs := mkSeqs("ACDEFGHIKL", "ACDEFGHIKL", "ACDEFGHIKL")
	res, err := Align(seqs, protScheme(), 2)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, res, seqs)
	if res.Columns() != 10 {
		t.Errorf("identical sequences should align gap-free, got %d columns", res.Columns())
	}
	for _, row := range res.Rows {
		if bytes.ContainsRune(row, '-') {
			t.Error("gap in identical-sequence alignment")
		}
	}
}

func TestAlignRelatedFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ancestor := randProtein(rng, 60)
	var seqs []*seq.Sequence
	for i := 0; i < 6; i++ {
		seqs = append(seqs, seq.New(string(rune('a'+i)), "", mutate(rng, ancestor, 0.15)))
	}
	res, err := Align(seqs, protScheme(), 3)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, res, seqs)
	// Related sequences must produce a strongly positive SP score, far
	// above what unrelated sequences of the same lengths would get.
	if sp := res.SumOfPairs(protScheme()); sp < 15*60 {
		t.Errorf("SP score = %d, suspiciously low for a related family", sp)
	}
}

func TestAlignUnrelatedStillWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var seqs []*seq.Sequence
	for i := 0; i < 5; i++ {
		seqs = append(seqs, seq.New(string(rune('a'+i)), "", randProtein(rng, 20+rng.Intn(40))))
	}
	res, err := Align(seqs, protScheme(), 2)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, res, seqs)
}

func TestAlignWorkerCountIrrelevant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ancestor := randProtein(rng, 40)
	var seqs []*seq.Sequence
	for i := 0; i < 5; i++ {
		seqs = append(seqs, seq.New(string(rune('a'+i)), "", mutate(rng, ancestor, 0.2)))
	}
	r1, err := Align(seqs, protScheme(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Align(seqs, protScheme(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Center != r4.Center || r1.SumOfPairs(protScheme()) != r4.SumOfPairs(protScheme()) {
		t.Error("worker count changed the result")
	}
}

func TestFormat(t *testing.T) {
	seqs := mkSeqs("ACDEFGHIKL", "ACDFGHIKL")
	res, _ := Align(seqs, protScheme(), 1)
	out := res.Format([]string{"alpha", "beta"}, 5)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Errorf("Format missing IDs:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines < 4 {
		t.Errorf("Format too short:\n%s", out)
	}
	// Unnamed rows fall back to seqN.
	out2 := res.Format(nil, 0)
	if !strings.Contains(out2, "seq0") {
		t.Error("fallback IDs missing")
	}
}

func TestSumOfPairsGapAccounting(t *testing.T) {
	r := &Result{Rows: [][]byte{
		[]byte("AC-D"),
		[]byte("ACCD"),
		[]byte("----"),
	}}
	s := protScheme()
	// pair(0,1): A:A + C:C + open+ext gap + D:D
	want01 := s.Matrix.Score('A', 'A') + s.Matrix.Score('C', 'C') - s.Gap.Open - s.Gap.Extend + s.Matrix.Score('D', 'D')
	// pair(0,2): row2 all gaps vs 3 residues: one gap run of 3 (the '-' vs
	// '-' column contributes nothing and splits no run in row2's favor —
	// row2's gap run continues).
	want02 := -(s.Gap.Open + 3*s.Gap.Extend)
	want12 := -(s.Gap.Open + 4*s.Gap.Extend)
	if got := r.SumOfPairs(s); got != want01+want02+want12 {
		t.Errorf("SP = %d, want %d", got, want01+want02+want12)
	}
}
