// Package msa implements center-star progressive multiple sequence
// alignment — the first of the paper's §VI future-work applications
// ("Multiple Sequence Alignment") — on top of the pairwise engines this
// repository already provides.
//
// The center-star method (Gusfield 1993) aligns k sequences in three steps:
//
//  1. compute all k·(k-1)/2 pairwise global alignment scores (these are
//     independent tasks, exactly the shape the paper's master/slave
//     environment schedules; Align accepts a worker count and fans the
//     pairwise phase out over goroutines);
//  2. pick the center: the sequence with the best score sum against all
//     others;
//  3. progressively merge each remaining sequence's pairwise alignment to
//     the center into a growing multiple alignment under the
//     "once a gap, always a gap" rule.
//
// For the sum-of-pairs objective with a metric-like scoring, center-star is
// a 2-approximation; this implementation targets fidelity and testability,
// not large-k performance.
package msa

import (
	"fmt"
	"sync"

	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
)

// Result is a multiple alignment: Rows[i] is the gapped form of the i-th
// input sequence (original order), all rows equal length.
type Result struct {
	Rows   [][]byte
	Center int // index of the center sequence
}

// Columns returns the alignment length.
func (r *Result) Columns() int {
	if len(r.Rows) == 0 {
		return 0
	}
	return len(r.Rows[0])
}

// SumOfPairs scores the alignment column-wise over all sequence pairs with
// the given scheme (gap-gap columns score 0; each residue-gap pair charges
// the extend penalty, plus open at gap starts).
func (r *Result) SumOfPairs(s score.Scheme) int {
	total := 0
	n := len(r.Rows)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			total += pairScore(r.Rows[a], r.Rows[b], s)
		}
	}
	return total
}

func pairScore(x, y []byte, s score.Scheme) int {
	total := 0
	inXGap, inYGap := false, false
	for i := range x {
		switch {
		case x[i] == '-' && y[i] == '-':
			// Column irrelevant for this pair.
		case x[i] == '-':
			if !inXGap {
				total -= s.Gap.Open
			}
			total -= s.Gap.Extend
			inXGap, inYGap = true, false
		case y[i] == '-':
			if !inYGap {
				total -= s.Gap.Open
			}
			total -= s.Gap.Extend
			inYGap, inXGap = true, false
		default:
			total += s.Matrix.Score(x[i], y[i])
			inXGap, inYGap = false, false
		}
	}
	return total
}

// Align computes the center-star multiple alignment of the inputs. workers
// bounds the parallelism of the pairwise phase (<=0 means 1).
func Align(seqs []*seq.Sequence, s score.Scheme, workers int) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	k := len(seqs)
	if k == 0 {
		return nil, fmt.Errorf("msa: no sequences")
	}
	for i, sq := range seqs {
		if sq.Len() == 0 {
			return nil, fmt.Errorf("msa: sequence %d (%s) is empty", i, sq.ID)
		}
	}
	if k == 1 {
		return &Result{Rows: [][]byte{append([]byte{}, seqs[0].Residues...)}}, nil
	}
	if workers < 1 {
		workers = 1
	}

	// Phase 1: all pairwise global scores, fanned out over workers.
	type pair struct{ a, b int }
	pairs := make(chan pair)
	scores := make([][]int, k)
	for i := range scores {
		scores[i] = make([]int, k)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range pairs {
				sc := sw.AlignGlobal(seqs[p.a].Residues, seqs[p.b].Residues, s).Score
				scores[p.a][p.b] = sc
				scores[p.b][p.a] = sc
			}
		}()
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			pairs <- pair{a, b}
		}
	}
	close(pairs)
	wg.Wait()

	// Phase 2: the center maximizes its score sum.
	center, best := 0, int(-1)<<62
	for i := 0; i < k; i++ {
		sum := 0
		for j := 0; j < k; j++ {
			if i != j {
				sum += scores[i][j]
			}
		}
		if sum > best {
			center, best = i, sum
		}
	}

	// Phase 3: progressive merge against the center.
	rows := make([][]byte, 0, k)
	order := make([]int, 0, k) // input index of each row
	rows = append(rows, append([]byte{}, seqs[center].Residues...))
	order = append(order, center)
	for i := 0; i < k; i++ {
		if i == center {
			continue
		}
		a := sw.AlignGlobal(seqs[center].Residues, seqs[i].Residues, s)
		rows = merge(rows, a.QueryRow, a.TargetRow)
		order = append(order, i)
	}

	// Restore input order.
	out := make([][]byte, k)
	for rowIdx, inputIdx := range order {
		out[inputIdx] = rows[rowIdx]
	}
	return &Result{Rows: out, Center: center}, nil
}

// merge folds a new pairwise alignment (center row pc / new row pn, where
// pc degaps to the original center) into the existing multiple alignment
// whose first row is the center with accumulated gaps. It returns the
// existing rows (gap columns inserted where the pairwise alignment adds
// them) plus the new row as the last element.
func merge(rows [][]byte, pc, pn []byte) [][]byte {
	existing := rows[0]
	var cols []mergeCol
	i, j := 0, 0 // positions in existing center row / pairwise center row
	for i < len(existing) || j < len(pc) {
		switch {
		case i < len(existing) && existing[i] == '-' && (j >= len(pc) || pc[j] != '-'):
			// Gap column already in the multiple alignment: the new
			// sequence gets a gap here.
			cols = append(cols, mergeCol{fromExisting: true, exIdx: i, newCh: '-'})
			i++
		case j < len(pc) && pc[j] == '-':
			// The pairwise alignment inserts a gap into the center: a
			// fresh all-gap column for every existing row.
			cols = append(cols, mergeCol{fromExisting: false, newCh: pn[j]})
			j++
		default:
			// Both sides sit on the same center residue.
			ch := byte('-')
			if j < len(pc) {
				ch = pn[j]
			}
			cols = append(cols, mergeCol{fromExisting: true, exIdx: i, newCh: ch})
			i++
			j++
		}
	}

	out := make([][]byte, len(rows)+1)
	for r := range rows {
		row := make([]byte, len(cols))
		for c, col := range cols {
			if col.fromExisting {
				row[c] = rows[r][col.exIdx]
			} else {
				row[c] = '-'
			}
		}
		out[r] = row
	}
	newRow := make([]byte, len(cols))
	for c, col := range cols {
		newRow[c] = col.newCh
	}
	out[len(rows)] = newRow
	return out
}

type mergeCol struct {
	fromExisting bool
	exIdx        int
	newCh        byte
}

// Format renders the alignment in blocks of width columns with sequence IDs.
func (r *Result) Format(ids []string, width int) string {
	if width <= 0 {
		width = 60
	}
	var b []byte
	cols := r.Columns()
	for off := 0; off < cols; off += width {
		end := min(off+width, cols)
		for i, row := range r.Rows {
			id := fmt.Sprintf("seq%d", i)
			if i < len(ids) {
				id = ids[i]
			}
			b = append(b, fmt.Sprintf("%-12s %s\n", id, row[off:end])...)
		}
		b = append(b, '\n')
	}
	return string(b)
}
