package prefilter

import "repro/internal/metrics"

// Metrics is the prefilter instrumentation bundle. Like the farrar bundle,
// the engine itself stays metrics-free (automata are built per query, per
// task); callers observe a pass's Stats after it completes. Every method is
// nil-safe so call sites observe unconditionally.
type Metrics struct {
	// PatternsCompiled counts k-mer seed patterns compiled into automata.
	PatternsCompiled *metrics.Counter
	// ResiduesScanned counts database residues streamed through automata.
	ResiduesScanned *metrics.Counter
	// WindowsEmitted counts merged candidate windows handed to rescore.
	WindowsEmitted *metrics.Counter
	// Selectivity is the distribution of per-pass candidate fractions
	// (candidate residues / database residues, 0..1).
	Selectivity *metrics.Histogram
	// RescoreCellsSaved counts DP cells a filtered search skipped versus
	// the full scan of the same query (full-scan cells minus rescored).
	RescoreCellsSaved *metrics.Counter
}

// SelectivityBuckets spans the useful range: very selective passes land in
// the fine low buckets, degenerate everything-admitted passes in the top.
var SelectivityBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1}

// NewMetrics registers (or re-attaches to) the prefilter families on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		PatternsCompiled:  r.Counter("prefilter_patterns_compiled_total", "K-mer seed patterns compiled into Aho-Corasick automata."),
		ResiduesScanned:   r.Counter("prefilter_residues_scanned_total", "Database residues streamed through prefilter automata."),
		WindowsEmitted:    r.Counter("prefilter_windows_emitted_total", "Merged candidate windows emitted to the rescore stage."),
		Selectivity:       r.Histogram("prefilter_selectivity_ratio", "Fraction of database residues admitted for rescoring, per prefilter pass.", SelectivityBuckets),
		RescoreCellsSaved: r.Counter("prefilter_rescore_cells_saved_total", "DP cells skipped by filtered searches relative to full scans."),
	}
}

// Observe publishes one completed prefilter pass.
func (m *Metrics) Observe(s Stats) {
	if m == nil {
		return
	}
	m.PatternsCompiled.Add(float64(s.Patterns))
	m.ResiduesScanned.Add(float64(s.ResiduesScanned))
	m.WindowsEmitted.Add(float64(s.Windows))
	m.Selectivity.Observe(s.Selectivity())
}

// ObserveSaved publishes the cells a filtered search skipped versus its
// full-scan equivalent. Negative deltas (margins re-covered more residues
// than the database holds) are clamped to zero.
func (m *Metrics) ObserveSaved(fullCells, rescoredCells int64) {
	if m == nil {
		return
	}
	if saved := fullCells - rescoredCells; saved > 0 {
		m.RescoreCellsSaved.Add(float64(saved))
	}
}
