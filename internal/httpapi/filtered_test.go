package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/jobs"
)

// TestSearchFilteredMode runs the same database-member query through both
// pipelines over HTTP: the filtered ranking must match the full scan's for
// the query's source sequence, and the response must carry the filter's
// accounting.
func TestSearchFilteredMode(t *testing.T) {
	srv, ts := testServer(t)
	q := srv.db[5]
	fastaQ := fmt.Sprintf(">q\n%s\n", q.Residues)

	resp, body := post(t, ts.URL+"/search", SearchRequest{QueriesFasta: fastaQ, TopK: 3})
	if resp.StatusCode != 200 {
		t.Fatalf("full: status %d: %s", resp.StatusCode, body)
	}
	var full SearchResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}

	resp, body = post(t, ts.URL+"/search", SearchRequest{
		QueriesFasta: fastaQ, TopK: 3, Mode: "filtered",
	})
	if resp.StatusCode != 200 {
		t.Fatalf("filtered: status %d: %s", resp.StatusCode, body)
	}
	var filt SearchResponse
	if err := json.Unmarshal(body, &filt); err != nil {
		t.Fatal(err)
	}
	if filt.Filter == nil {
		t.Fatal("filtered response has no filter report")
	}
	if full.Filter != nil {
		t.Fatal("full-scan response has a filter report")
	}
	if filt.Filter.RescoredCells >= filt.Filter.FullScanCells {
		t.Fatalf("rescored %d >= full-scan %d cells", filt.Filter.RescoredCells, filt.Filter.FullScanCells)
	}
	if sel := filt.Filter.Selectivity; sel <= 0 || sel >= 1 {
		t.Fatalf("selectivity %v not in (0,1)", sel)
	}
	// The query is a database member: its self-hit survives the filter, and
	// filtered scores never exceed the exact ones.
	fb, gb := full.Results[0].Hits[0], filt.Results[0].Hits[0]
	if gb.SeqID != fb.SeqID || gb.Score != fb.Score {
		t.Fatalf("best hit: full {%s %d}, filtered {%s %d}", fb.SeqID, fb.Score, gb.SeqID, gb.Score)
	}
	for i, h := range filt.Results[0].Hits {
		if h.Score > full.Results[0].Hits[i].Score {
			t.Errorf("hit %d: filtered score %d exceeds full %d", i, h.Score, full.Results[0].Hits[i].Score)
		}
	}
}

func TestSearchUnknownMode(t *testing.T) {
	_, ts := testServer(t)
	resp, body := post(t, ts.URL+"/search", SearchRequest{
		QueriesFasta: ">q\nMKVLATGFFDE\n", Mode: "telepathic",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out map[string]string
	json.Unmarshal(body, &out)
	if out["reason"] != "unknown_mode" {
		t.Fatalf("reason %q", out["reason"])
	}
}

// TestFilteredModeCacheIsolation: the same FASTA under different modes must
// produce different cache identities — a filtered result can never answer a
// full-scan request.
func TestFilteredModeCacheIsolation(t *testing.T) {
	srv, ts := testServer(t)
	fastaQ := fmt.Sprintf(">q\n%s\n", srv.db[2].Residues)

	submit := func(mode string) JobView {
		resp, body := post(t, ts.URL+"/jobs", SearchRequest{QueriesFasta: fastaQ, Mode: mode})
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %q: status %d: %s", mode, resp.StatusCode, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	fullJob := submit("")
	filtJob := submit("filtered")
	if fullJob.Key == filtJob.Key {
		t.Fatalf("full and filtered share cache key %s", fullJob.Key)
	}
	if filtJob.Mode != "filtered" {
		t.Fatalf("job view mode %q", filtJob.Mode)
	}
	for _, id := range []string{fullJob.ID, filtJob.ID} {
		if _, err := srv.jobs.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	job, err := srv.jobs.Get(filtJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != jobs.StateDone {
		t.Fatalf("filtered job ended %s: %s", job.State, job.Error)
	}
	// The finished job retains its per-stage progress: both stages complete.
	for _, stage := range []string{"prefilter", "rescore"} {
		sc, ok := job.Stages[stage]
		if !ok || sc.Done != sc.Total || sc.Done != 1 {
			t.Fatalf("stage %q progress %+v (present %v)", stage, sc, ok)
		}
	}
}
