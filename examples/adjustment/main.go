// Adjustment reproduces the paper's Fig. 5 walkthrough of the dynamic
// workload adjustment mechanism, then shows its effect at full scale on the
// simulated 4 GPU + 4 SSE SwissProt run (Fig. 6's headline case).
//
// The walkthrough: 20 tasks that take 1 s on the GPU; 1 GPU that is 6x
// faster than each of 3 SSE cores; PSS allocation. With the mechanism the
// job ends at 14 s — the idle GPU re-executes task t20, which SSE1 would
// only deliver at 18 s.
package main

import (
	"fmt"
	"log"

	hybridsw "repro"
	"repro/internal/experiments"
)

func main() {
	fig5, err := experiments.Fig5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 5a — with the workload adjustment mechanism (paper: 14 s):")
	fmt.Print(experiments.Gantt(fig5.With))
	fmt.Println("\nFig. 5b — without the mechanism (paper: 18 s):")
	fmt.Print(experiments.Gantt(fig5.Without))
	fmt.Println("\n(* marks a replica granted by the adjustment mechanism)")

	fmt.Println("\nFull scale, simulated 4 GPU + 4 SSE on UniProtKB/SwissProt:")
	for _, adjust := range []bool{false, true} {
		res, err := hybridsw.Simulate("UniProtKB/SwissProt", 4, 4, "PSS", adjust, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  adjustment=%-5v  %7.1f s  %7.2f GCUPS  (%d replicas)\n",
			adjust, res.Makespan.Seconds(), res.GCUPS(), res.Replicas)
	}
	fmt.Println("\nThe paper reports a 57.2% total-time reduction from the mechanism")
	fmt.Println("on this configuration; compare the two rows above.")
}
