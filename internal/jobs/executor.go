package jobs

import "context"

// Backend names the execution path a Manager routes jobs onto. It is a
// closed enum: the exhaustive analyzer audits switches over it, so adding
// a backend forces every routing decision to be revisited.
type Backend string

const (
	// BackendLocal executes jobs on the in-process engine set (the
	// single-node path swserve has always had).
	BackendLocal Backend = "local"
	// BackendCluster executes jobs on a sharded master/slave fleet with
	// scatter-gather merging (internal/cluster).
	BackendCluster Backend = "cluster"
)

// Executor is the pluggable job-execution seam. A Manager built with
// Config.Executor routes every job body through Execute instead of the
// legacy Config.Run closure; Kind stamps each job so observers (JobView,
// /readyz) can tell which path produced a result.
//
// Execute must honor ctx — cancellation aborts the job — and may call
// Manager.SetStage/Manager.SetShards with the same ctx to publish progress.
type Executor interface {
	// Kind identifies the backend for job stamping and health reporting.
	Kind() Backend
	// Execute runs one job to completion, returning the result body.
	Execute(ctx context.Context, req Request) ([]byte, error)
}

// ShardProgress is the live state of one database shard within a running
// cluster job: how much of the shard's cell budget has been scanned, at
// what instantaneous rate, and which lifecycle state the scan is in
// ("pending", "scanning", "done", "failed").
type ShardProgress struct {
	Shard      int     `json:"shard"`
	State      string  `json:"state"`
	Cells      int64   `json:"cells"`
	TotalCells int64   `json:"total_cells"`
	Rate       float64 `json:"rate,omitempty"`
}

// SetShards records a running cluster job's per-shard progress, the
// scatter-gather analogue of SetStage. The executor body calls it from
// inside Execute with the Execute context; calls with a foreign or stale
// context are dropped. The job's Shards slice is replaced, not mutated,
// so snapshots already handed out stay race-free.
func (m *Manager) SetShards(ctx context.Context, shards []ShardProgress) {
	id := JobID(ctx)
	if id == "" {
		return
	}
	next := make([]ShardProgress, len(shards))
	copy(next, shards)
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil || j.State != StateRunning {
		return
	}
	j.Shards = next
}
