// Package wire defines the master/slave protocol of the task execution
// environment (§IV, Fig. 4) and its transports.
//
// The protocol is strictly slave-initiated request/response, matching the
// paper's design where slaves register, ask for work, notify progress and
// deliver results:
//
//	Register  -> RegisterAck        announce name/kind/declared speed
//	Request   -> Assign             ask for tasks (normal or replica)
//	Progress  -> ProgressAck        periodic rate notification
//	Complete  -> CompleteAck        deliver one task's hits
//
// Cancellations (a replica elsewhere finished first) piggyback on
// ProgressAck and CompleteAck, so no server push is needed and the same
// code runs over TCP (gob-encoded, one connection per slave) or in-process
// (direct dispatch), mirroring the paper's two-host Gigabit Ethernet setup
// and single-host runs respectively.
package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/prefilter"
	"repro/internal/sched"
)

// Hit is the score of one query against one database sequence. When the
// slave ran the traceback phase for this hit (slave.Options.AlignBest), the
// alignment rows travel along.
type Hit struct {
	SeqID string
	Index int // position in the database
	Score int

	// Optional phase-2 payload: aligned rows with '-' gaps, plus the
	// 0-based half-open coordinates of the aligned regions.
	QueryRow, TargetRow    []byte
	QueryStart, QueryEnd   int
	TargetStart, TargetEnd int
}

// TaskSpec is a task as shipped to a slave: the query travels with the
// assignment (queries are small; the database is resident on the slave).
type TaskSpec struct {
	ID       sched.TaskID
	QueryID  string
	Residues []byte
	Cells    int64

	// TaskKind selects the slave's execution path. The gob zero value is
	// sched.TaskSW, so masters and slaves from before the filtered-search
	// pipeline interoperate unchanged.
	TaskKind sched.TaskKind
	// Filter carries the prefilter parameters of a TaskPrefilter task.
	Filter *prefilter.Spec
	// Windows restricts a TaskRescore task to its candidate regions.
	Windows []sched.Window
}

// RegisterMsg announces a slave.
type RegisterMsg struct {
	Name          string
	Kind          sched.SlaveKind
	DeclaredSpeed float64
	// Caps lists the task kinds the slave can execute; nil means the
	// historical SW-only contract (see sched.CanRun).
	Caps []sched.TaskKind
}

// RegisterAckMsg returns the slave's ID.
type RegisterAckMsg struct {
	Slave sched.SlaveID
}

// RequestMsg asks for work.
type RequestMsg struct {
	Slave sched.SlaveID
}

// AssignMsg grants work. With no tasks: Done means the job is over, and
// Standby means ask again later.
type AssignMsg struct {
	Tasks   []TaskSpec
	Replica bool
	Standby bool
	Done    bool
}

// ProgressMsg is a periodic notification: measured rate and cells processed
// since the previous notification.
type ProgressMsg struct {
	Slave sched.SlaveID
	Rate  float64
	Cells int64
}

// ProgressAckMsg acknowledges progress; Cancel lists tasks the slave should
// abandon because another copy finished first.
type ProgressAckMsg struct {
	Cancel []sched.TaskID
	Done   bool // the whole job finished; stop working
}

// CompleteMsg delivers one finished task. Rate and Cells carry the final
// progress delta — the work done since the slave's last periodic
// notification — so the master's speed estimates and backlog accounting do
// not undercount short tasks whose last (or only) stretch of work never
// made it into a ProgressMsg.
type CompleteMsg struct {
	Slave sched.SlaveID
	Task  sched.TaskID
	Hits  []Hit
	Rate  float64 // measured cells/second over the final delta; 0 = unknown
	Cells int64   // cells processed since the previous notification

	// Windows is the payload of a finished TaskPrefilter task: the merged
	// candidate regions. Nil for other kinds.
	Windows []sched.Window
	// Scanned/Candidates carry the prefilter pass's selectivity accounting
	// (database residues scanned and residues admitted for rescoring).
	Scanned    int64
	Candidates int64
}

// CompleteAckMsg reports whether the result was accepted (first completion)
// and piggybacks cancellations.
type CompleteAckMsg struct {
	Accepted bool
	Cancel   []sched.TaskID
	Done     bool // the whole job finished; no need to ask again
}

// Envelope is the gob-friendly union of all protocol messages: exactly one
// field is non-zero.
type Envelope struct {
	Register    *RegisterMsg
	RegisterAck *RegisterAckMsg
	Request     *RequestMsg
	Assign      *AssignMsg
	Progress    *ProgressMsg
	ProgressAck *ProgressAckMsg
	Complete    *CompleteMsg
	CompleteAck *CompleteAckMsg
	Error       string
}

// Caller is a strict request/response client: every Call sends one envelope
// and receives one. Implementations must be safe for sequential use by one
// slave; they need not support concurrent Calls.
type Caller interface {
	Call(req Envelope) (Envelope, error)
	Close() error
}

// Handler is the master side: one envelope in, one envelope out.
type Handler interface {
	Dispatch(req Envelope) Envelope
	// SlaveGone tells the master a slave's connection died so its tasks
	// can be requeued.
	SlaveGone(id sched.SlaveID)
}

// Local is an in-process Caller wired straight to a Handler.
type Local struct {
	H Handler
}

// Call implements Caller.
func (l Local) Call(req Envelope) (Envelope, error) { return l.H.Dispatch(req), nil }

// Close implements Caller.
func (l Local) Close() error { return nil }

// Client is a TCP Caller speaking gob.
type Client struct {
	// Timeout bounds each Call's network I/O: the whole send+receive round
	// trip must finish within it or the call fails with a deadline error.
	// The master answers every request immediately, so a tripped deadline
	// means a hung or partitioned master, and the gob stream is no longer
	// usable — re-dial before calling again. Zero disables deadlines.
	Timeout time.Duration

	// conn is set once at Dial and never reassigned, so Close can read it
	// without mu and interrupt a Call blocked mid-receive.
	conn net.Conn

	mu  sync.Mutex
	enc *gob.Encoder
	dec *gob.Decoder
}

// Dial connects to a master at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// DialTimeout connects to a master at addr, bounding both the connection
// attempt and every subsequent Call's I/O by timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn), Timeout: timeout}, nil
}

// Call implements Caller.
func (c *Client) Call(req Envelope) (Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Timeout > 0 {
		// A failed SetDeadline means a dead connection, which the Encode
		// just below reports with a more useful error.
		_ = c.conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	if err := c.enc.Encode(&req); err != nil {
		return Envelope{}, fmt.Errorf("wire: send: %w", err)
	}
	var resp Envelope
	if err := c.dec.Decode(&resp); err != nil {
		return Envelope{}, fmt.Errorf("wire: recv: %w", err)
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("wire: master: %s", resp.Error)
	}
	return resp, nil
}

// Close implements Caller.
func (c *Client) Close() error { return c.conn.Close() }

// Serve accepts slave connections on l and pumps their envelopes through h
// until the listener closes. Each connection is one slave; when it drops,
// h.SlaveGone is called with the slave ID it registered (if any).
func Serve(l net.Listener, h Handler) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, h)
	}
}

func serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	slave := sched.SlaveID(-1)
	for {
		var req Envelope
		if err := dec.Decode(&req); err != nil {
			if slave >= 0 {
				h.SlaveGone(slave)
			}
			return
		}
		resp := h.Dispatch(req)
		if req.Register != nil && resp.RegisterAck != nil {
			slave = resp.RegisterAck.Slave
		}
		if err := enc.Encode(&resp); err != nil {
			if slave >= 0 {
				h.SlaveGone(slave)
			}
			return
		}
	}
}
