package master_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/master"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/slave"
	"repro/internal/wire"
)

// TestCheckpointResume completes part of a job, snapshots it, rebuilds a
// master from the checkpoint, and finishes the rest. Finished tasks must
// not re-run, and the merged results must cover every query.
func TestCheckpointResume(t *testing.T) {
	db, queries := testJob(t, 6)
	cfg := master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     sched.SS{},
		Adjust:     true,
	}
	m1, err := master.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Complete exactly two tasks by hand through the protocol.
	eng, _ := slave.NewFarrarEngine("partial", score.DefaultProtein(), db, 0)
	resp := m1.Dispatch(wire.Envelope{Register: &wire.RegisterMsg{Name: "partial"}})
	id := resp.RegisterAck.Slave
	preDone := map[sched.TaskID]bool{}
	for k := 0; k < 2; k++ {
		assign := m1.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: id}})
		spec := assign.Assign.Tasks[0]
		hits, err := eng.Search(queryOf(queries, spec.QueryID), nil, make(chan struct{}))
		if err != nil {
			t.Fatal(err)
		}
		m1.Dispatch(wire.Envelope{Complete: &wire.CompleteMsg{
			Slave: id, Task: spec.ID, Hits: slave.TopK(hits, 2),
		}})
		preDone[spec.ID] = true
	}

	var buf bytes.Buffer
	if err := m1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh master and finish the job with a new slave.
	m2, err := master.LoadCheckpoint(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Coordinator().Pool().Finished(); got != 2 {
		t.Fatalf("restored master has %d finished tasks, want 2", got)
	}
	for tid := range preDone {
		if m2.Coordinator().Pool().StateOf(tid) != sched.Finished {
			t.Fatalf("pre-checkpoint task %d not finished after restore", tid)
		}
	}
	eng2, _ := slave.NewFarrarEngine("finisher", score.DefaultProtein(), db, 0)
	done, err := slave.Run(wire.Local{H: m2}, eng2, slave.Options{
		NotifyEvery: time.Millisecond, Poll: time.Millisecond, TopK: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Errorf("finisher ran %d tasks, want the remaining 4", done)
	}
	if err := m2.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	results := m2.Results()
	if len(results) != len(queries) {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if len(r.Hits) != 2 {
			t.Fatalf("query %s has %d hits", r.Query, len(r.Hits))
		}
	}
}

func TestCheckpointOfFinishedJobIsDone(t *testing.T) {
	db, queries := testJob(t, 2)
	cfg := master.Config{Queries: queries, DBResidues: dbResidues(db), Policy: sched.SS{}}
	m1, _ := master.New(cfg)
	eng, _ := slave.NewFarrarEngine("s", score.DefaultProtein(), db, 0)
	runLocal(t, m1, []slave.Engine{eng})
	if err := m1.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := master.LoadCheckpoint(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-m2.Done():
	default:
		t.Error("restored finished job is not Done")
	}
	if len(m2.Results()) != 2 {
		t.Error("results lost across checkpoint")
	}
}

func TestLoadCheckpointValidation(t *testing.T) {
	db, queries := testJob(t, 3)
	cfg := master.Config{Queries: queries, DBResidues: dbResidues(db)}
	m1, _ := master.New(cfg)
	var buf bytes.Buffer
	m1.SaveCheckpoint(&buf)

	// Garbage stream.
	if _, err := master.LoadCheckpoint(bytes.NewReader([]byte("junk")), cfg); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	// Mismatched query count.
	short := cfg
	short.Queries = queries[:2]
	if _, err := master.LoadCheckpoint(bytes.NewReader(buf.Bytes()), short); err == nil {
		t.Error("short query list accepted")
	}
	// Mismatched query identity.
	swapped := cfg
	swapped.Queries = append([]*seq.Sequence{}, queries...)
	swapped.Queries[0], swapped.Queries[1] = swapped.Queries[1], swapped.Queries[0]
	if _, err := master.LoadCheckpoint(bytes.NewReader(buf.Bytes()), swapped); err == nil {
		t.Error("reordered queries accepted")
	}
}

func queryOf(queries []*seq.Sequence, id string) *seq.Sequence {
	for _, q := range queries {
		if q.ID == id {
			return q
		}
	}
	return nil
}
