// Package farrar implements Farrar's striped Smith-Waterman algorithm
// (Farrar 2007, "Striped Smith-Waterman speeds database searches six times
// over other SIMD implementations"), the algorithm the paper runs on its
// multicore SSE slaves (§IV-C).
//
// The query is laid out in the striped pattern: with L vector lanes and
// segment length segLen = ceil(m/L), vector element (lane l, segment s)
// holds query position l*segLen + s, which moves the inter-lane dependency
// of the F (vertical gap) recurrence out of the inner loop into a rare
// correction pass.
//
// Two interchangeable kernel implementations exist behind one dispatch
// switch (no build tags):
//
//   - ImplSWAR (the default) packs 8 byte lanes — or 4 word lanes in the
//     fallback tier — into a uint64 and computes all lanes at once with
//     the loop-free bit tricks of internal/simd/swar. This is the
//     native-speed production path.
//   - ImplEmulated runs the same recurrences on the emulated SSE2 ISA of
//     internal/simd, one Go loop iteration per lane — slow, but a direct
//     transcription of the SSE original, kept as the bit-exact oracle the
//     differential tests compare against.
//
// Both implementations use the same overflow ladder. The 8-bit tier holds
// DP values as biased unsigned bytes (Farrar's original formulation): the
// query profile carries bias = -matrix.Min(), so the largest score the
// tier can certify is 255 - bias, not 255 — a score reaching that ceiling
// may have been clipped by a saturating add and escalates. The 16-bit
// tier raises the ceiling to 32767 (the paper's adapted signed variant in
// the emulated kernel; a biased unsigned rendering with the same ceiling
// in the SWAR kernel), and the scalar reference resolves anything beyond.
//
// A Kernel precomputes the striped query profile once and scores many
// database sequences against it, trying the 8-bit kernel first and
// falling back on overflow, exactly like the SSE original.
package farrar

import (
	"fmt"

	"repro/internal/score"
	"repro/internal/simd"
	"repro/internal/sw"
)

const (
	lanes8  = 16 // byte lanes in an emulated 128-bit register
	lanes16 = 8  // 16-bit lanes in an emulated 128-bit register
)

// Impl selects which kernel implementation a Kernel dispatches to.
type Impl int

const (
	// ImplSWAR is the native 64-bit SWAR implementation (the default).
	ImplSWAR Impl = iota
	// ImplEmulated is the emulated SSE2 ISA implementation, kept as the
	// bit-exact oracle.
	ImplEmulated
)

// String names the implementation for logs and test output.
func (i Impl) String() string {
	switch i {
	case ImplSWAR:
		return "swar"
	case ImplEmulated:
		return "emulated"
	default:
		return fmt.Sprintf("Impl(%d)", int(i))
	}
}

// Stats counts kernel dispatch decisions across the lifetime of a Kernel.
type Stats struct {
	Scored8    int64 // sequences fully resolved by the 8-bit kernel
	Fallback16 int64 // sequences that overflowed 8-bit and used 16-bit
	FallbackSW int64 // sequences that overflowed 16-bit and used the scalar reference
}

// Add returns the sum of two stat sets — used to aggregate the private
// kernels of parallel workers into one observable total.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Scored8:    s.Scored8 + o.Scored8,
		Fallback16: s.Fallback16 + o.Fallback16,
		FallbackSW: s.FallbackSW + o.FallbackSW,
	}
}

// Total returns the number of sequences the stats cover.
func (s Stats) Total() int64 { return s.Scored8 + s.Fallback16 + s.FallbackSW }

// Kernel holds the striped query profiles for one query sequence.
type Kernel struct {
	query  []byte
	scheme score.Scheme
	impl   Impl

	bias   int  // -matrix.Min(), added to 8-bit profile entries
	tier8  bool // the 8-bit tier's fixed-point assumptions hold
	tier16 bool // the 16-bit tier's fixed-point assumptions hold

	// Emulated-ISA profiles (the oracle path), built lazily.
	segLen8  int
	prof8    [][]simd.U8x16 // prof8[residueIndex][segment]
	segLen16 int
	prof16   [][]simd.I16x8

	// SWAR profiles (the native path), built lazily. Byte lane l of
	// swarProf8[r][s] holds the biased score of query position
	// l*swarSegLen8 + s against residue r.
	swarSegLen8  int
	swarProf8    [][]uint64
	swarSegLen16 int
	swarProf16   [][]uint64

	stats Stats
}

// NewKernel validates the inputs and prepares the default (SWAR) kernel.
func NewKernel(query []byte, s score.Scheme) (*Kernel, error) {
	return NewKernelImpl(query, s, ImplSWAR)
}

// NewKernelImpl builds a kernel dispatching to the given implementation.
func NewKernelImpl(query []byte, s score.Scheme, impl Impl) (*Kernel, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if impl != ImplSWAR && impl != ImplEmulated {
		return nil, fmt.Errorf("farrar: unknown impl %v", impl)
	}
	if len(query) == 0 {
		return nil, fmt.Errorf("farrar: empty query")
	}
	if err := s.Matrix.Alphabet().Validate(query); err != nil {
		return nil, fmt.Errorf("farrar: query: %w", err)
	}
	k := &Kernel{query: query, scheme: s, impl: impl, bias: -s.Matrix.Min()}
	if k.bias < 0 {
		k.bias = 0
	}
	// Tier admission: the narrow kernels hold profile entries, gap
	// penalties and DP cells in fixed-width lanes; a scheme whose
	// constants do not fit would wrap silently and mis-score, so such
	// schemes skip the tier entirely instead (the overflow ladder ends at
	// the scalar reference, which has no such limits).
	gapOE := s.Gap.Open + s.Gap.Extend
	k.tier8 = k.bias <= 255 && k.bias+s.Matrix.Max() <= 255 && gapOE <= 255
	k.tier16 = k.bias <= 32767 && k.bias+s.Matrix.Max() <= 32767 && gapOE <= 32767
	// Build the active implementation's 8-bit profile eagerly so the
	// construction cost lands on NewKernel, not the first Score; the
	// other tiers and the oracle's profiles are built on first use.
	if k.tier8 {
		if impl == ImplSWAR {
			k.buildSwarProfile8()
		} else {
			k.buildProfile8()
		}
	}
	return k, nil
}

// Query returns the query sequence the kernel was built for.
func (k *Kernel) Query() []byte { return k.query }

// Impl returns which implementation the kernel dispatches to.
func (k *Kernel) Impl() Impl { return k.impl }

// Stats returns cumulative kernel dispatch counters.
func (k *Kernel) Stats() Stats { return k.stats }

// ceiling8 is the largest score the 8-bit tier can certify: DP cells are
// biased unsigned bytes, saturating adds clip at 255, and the bias is
// subtracted back out — so a result of 255 - bias is indistinguishable
// from a clipped larger score and must escalate.
func (k *Kernel) ceiling8() int { return 255 - k.bias }

func (k *Kernel) buildProfile8() {
	m := len(k.query)
	k.segLen8 = (m + lanes8 - 1) / lanes8
	alpha := k.scheme.Matrix.Alphabet()
	// One row per alphabet residue plus a final all-minimum row used for
	// database residues outside the alphabet (matching the scalar
	// reference, which scores them at the matrix minimum).
	k.prof8 = make([][]simd.U8x16, alpha.Size()+1)
	for r := 0; r <= alpha.Size(); r++ {
		segs := make([]simd.U8x16, k.segLen8)
		var row []int
		if r < alpha.Size() {
			row = k.scheme.Matrix.Row(r)
		}
		for s := 0; s < k.segLen8; s++ {
			var v simd.U8x16
			for l := 0; l < lanes8; l++ {
				qi := l*k.segLen8 + s
				if qi >= m {
					// Padding lanes hold biased zero — the most negative
					// representable entry — so phantom rows past the query
					// end can only decay (or, with bias 0, carry a real
					// value unchanged) and never outgrow the true maximum.
					// Matrix.Min() here would grow phantoms when Min > 0.
					continue
				}
				sc := k.scheme.Matrix.Min() // invalid residues score worst, like the scalar reference
				if row != nil {
					sc = row[alpha.Index(k.query[qi])]
				}
				v[l] = uint8(sc + k.bias)
			}
			segs[s] = v
		}
		k.prof8[r] = segs
	}
}

func (k *Kernel) buildProfile16() {
	m := len(k.query)
	k.segLen16 = (m + lanes16 - 1) / lanes16
	alpha := k.scheme.Matrix.Alphabet()
	k.prof16 = make([][]simd.I16x8, alpha.Size()+1)
	for r := 0; r <= alpha.Size(); r++ {
		segs := make([]simd.I16x8, k.segLen16)
		var row []int
		if r < alpha.Size() {
			row = k.scheme.Matrix.Row(r)
		}
		for s := 0; s < k.segLen16; s++ {
			var v simd.I16x8
			for l := 0; l < lanes16; l++ {
				qi := l*k.segLen16 + s
				if qi >= m {
					v[l] = -32768 // padding: saturating add floors, so phantoms never grow
					continue
				}
				sc := k.scheme.Matrix.Min()
				if row != nil {
					sc = row[alpha.Index(k.query[qi])]
				}
				v[l] = int16(sc)
			}
			segs[s] = v
		}
		k.prof16[r] = segs
	}
}

// Score returns the optimal local alignment score of the kernel's query vs
// target, automatically escalating 8-bit -> 16-bit -> scalar on overflow.
func (k *Kernel) Score(target []byte) int {
	if sc, ok := k.Score8(target); ok {
		k.stats.Scored8++
		return sc
	}
	if sc, ok := k.Score16(target); ok {
		k.stats.Fallback16++
		return sc
	}
	k.stats.FallbackSW++
	return sw.Score(k.query, target, k.scheme)
}

// Score8 runs the active implementation's 8-bit tier. ok is false when
// the score may have overflowed the tier's range, in which case the
// result is unusable and the caller must rerun with a wider kernel.
func (k *Kernel) Score8(target []byte) (sc int, ok bool) {
	if k.impl == ImplEmulated {
		return k.ScoreU8(target)
	}
	return k.ScoreSWAR8(target)
}

// Score16 runs the active implementation's 16-bit tier. ok is false when
// the score reached the tier's 32767 ceiling.
func (k *Kernel) Score16(target []byte) (sc int, ok bool) {
	if k.impl == ImplEmulated {
		return k.ScoreI16(target)
	}
	return k.ScoreSWAR16(target)
}

// Cells returns the DP cell count of scoring target, the GCUPS currency.
func (k *Kernel) Cells(target []byte) int64 {
	return sw.Cells(len(k.query), len(target))
}

// ScoreU8 runs the emulated-ISA 8-bit saturating kernel (the oracle for
// ScoreSWAR8). ok is false when the score may have overflowed the 8-bit
// range.
func (k *Kernel) ScoreU8(target []byte) (sc int, ok bool) {
	if len(target) == 0 {
		return 0, true
	}
	if !k.tier8 {
		return 0, false
	}
	if k.prof8 == nil {
		k.buildProfile8()
	}
	segLen := k.segLen8
	alpha := k.scheme.Matrix.Alphabet()
	vBias := simd.SplatU8(uint8(k.bias))
	vGapOE := simd.SplatU8(uint8(k.scheme.Gap.Open + k.scheme.Gap.Extend))
	vGapE := simd.SplatU8(uint8(k.scheme.Gap.Extend))
	var vMax simd.U8x16

	vHLoad := make([]simd.U8x16, segLen)
	vHStore := make([]simd.U8x16, segLen)
	vE := make([]simd.U8x16, segLen)

	for _, c := range target {
		ri := alpha.Index(c)
		if ri < 0 {
			ri = alpha.Size() // all-minimum row for out-of-alphabet residues
		}
		prof := k.prof8[ri]

		var vF simd.U8x16
		// H of query position l*segLen-1 feeds lane l segment 0: shift the
		// last stored segment left one lane (zero fill = H[0][j-1] = 0).
		vH := simd.ShiftLanesLeftU8(vHLoad[segLen-1], 1)
		for s := 0; s < segLen; s++ {
			vH = simd.SubSatU8(simd.AddSatU8(vH, prof[s]), vBias)
			vH = simd.MaxU8(vH, vE[s])
			vH = simd.MaxU8(vH, vF)
			vMax = simd.MaxU8(vMax, vH)
			vHStore[s] = vH

			vHGap := simd.SubSatU8(vH, vGapOE)
			vE[s] = simd.MaxU8(simd.SubSatU8(vE[s], vGapE), vHGap)
			vF = simd.MaxU8(simd.SubSatU8(vF, vGapE), vHGap)
			vH = vHLoad[s]
		}

		// Lazy-F correction (Farrar's loop): keep sweeping the decaying F
		// carry through the striped column while it can still beat the
		// fresh gap openings the main pass already accounted for. The
		// carry decays by gapE >= 1 each step and the lane shift retires
		// it entirely after lanes8 sweeps, so the loop terminates; the
		// guard bounds it defensively, and if it ever were to expire the
		// kernel escalates to the next tier instead of returning a score
		// whose correction pass did not finish.
		vF = simd.ShiftLanesLeftU8(vF, 1)
		for s, guard := 0, segLen*(lanes8+1); simd.AnyGtU8(vF, simd.SubSatU8(vHStore[s], vGapOE)); guard-- {
			if guard <= 0 {
				return 0, false
			}
			nh := simd.MaxU8(vHStore[s], vF)
			if nh != vHStore[s] {
				vHStore[s] = nh
				vMax = simd.MaxU8(vMax, nh)
				// A raised H can feed a horizontal gap in the next column.
				vE[s] = simd.MaxU8(vE[s], simd.SubSatU8(nh, vGapOE))
			}
			vF = simd.SubSatU8(vF, vGapE)
			if s++; s == segLen {
				s = 0
				vF = simd.ShiftLanesLeftU8(vF, 1)
			}
		}

		vHLoad, vHStore = vHStore, vHLoad
	}
	best := int(simd.HMaxU8(vMax))
	if best >= k.ceiling8() {
		return 0, false // a saturating add may have clipped the true score
	}
	return best, true
}

// ScoreI16 runs the emulated-ISA 16-bit signed kernel (the paper's
// adapted variant, and the oracle for ScoreSWAR16). ok is false when the
// score reached the int16 ceiling.
func (k *Kernel) ScoreI16(target []byte) (sc int, ok bool) {
	if len(target) == 0 {
		return 0, true
	}
	if !k.tier16 {
		return 0, false
	}
	if k.prof16 == nil {
		k.buildProfile16()
	}
	segLen := k.segLen16
	alpha := k.scheme.Matrix.Alphabet()
	vGapOE := simd.SplatI16(int16(k.scheme.Gap.Open + k.scheme.Gap.Extend))
	vGapE := simd.SplatI16(int16(k.scheme.Gap.Extend))
	var vZero simd.I16x8
	vMax := simd.SplatI16(0)

	vHLoad := make([]simd.I16x8, segLen)
	vHStore := make([]simd.I16x8, segLen)
	vE := make([]simd.I16x8, segLen)

	for _, c := range target {
		ri := alpha.Index(c)
		if ri < 0 {
			ri = alpha.Size()
		}
		prof := k.prof16[ri]

		vF := vZero
		vH := simd.ShiftLanesLeftI16(vHLoad[segLen-1], 1, 0)
		for s := 0; s < segLen; s++ {
			vH = simd.AddSatI16(vH, prof[s])
			vH = simd.MaxI16(vH, vE[s])
			vH = simd.MaxI16(vH, vF)
			vH = simd.MaxI16(vH, vZero) // the Smith-Waterman 0 floor
			vMax = simd.MaxI16(vMax, vH)
			vHStore[s] = vH

			vHGap := simd.SubSatI16(vH, vGapOE)
			vE[s] = simd.MaxI16(simd.SubSatI16(vE[s], vGapE), vHGap)
			vF = simd.MaxI16(simd.SubSatI16(vF, vGapE), vHGap)
			vH = vHLoad[s]
		}

		// Lazy-F correction, signed flavor. The shift fills with the int16
		// minimum (F of the row-0 boundary is -infinity); filling with 0
		// would keep the carry alive forever against negative thresholds.
		// Guard expiry escalates, as in the 8-bit kernel.
		vF = simd.ShiftLanesLeftI16(vF, 1, -32768)
		for s, guard := 0, segLen*(lanes16+1); simd.AnyGtI16(vF, simd.SubSatI16(vHStore[s], vGapOE)); guard-- {
			if guard <= 0 {
				return 0, false
			}
			nh := simd.MaxI16(vHStore[s], vF)
			if nh != vHStore[s] {
				vHStore[s] = nh
				vMax = simd.MaxI16(vMax, nh)
				vE[s] = simd.MaxI16(vE[s], simd.SubSatI16(nh, vGapOE))
			}
			vF = simd.SubSatI16(vF, vGapE)
			if s++; s == segLen {
				s = 0
				vF = simd.ShiftLanesLeftI16(vF, 1, -32768)
			}
		}

		vHLoad, vHStore = vHStore, vHLoad
	}
	best := int(simd.HMaxI16(vMax))
	if best >= 32767 {
		return 0, false
	}
	return best, true
}
