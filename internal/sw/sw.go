// Package sw implements reference dynamic-programming algorithms for
// pairwise biological sequence alignment.
//
// It provides the Smith-Waterman local alignment algorithm (Smith & Waterman
// 1981) in both the linear gap model and the affine-gap model of Gotoh
// (1982), with three kinds of kernels:
//
//   - score-only kernels in O(n) space (Score, ScoreEnds) — phase 1 of the
//     paper's §II-A, used by database search;
//   - full-matrix traceback kernels (Align, AlignGlobal) — phase 2, which
//     recover the optimal alignment itself;
//   - a Myers-Miller linear-space traceback (AlignLinearSpace) for long
//     sequences where the O(mn) matrix does not fit in memory;
//   - a banded kernel (ScoreBanded) restricting the DP to a diagonal band.
//
// These are the trusted oracles: the vectorized Farrar kernel
// (internal/farrar) and the simulated GPU engine (internal/cudasw) are
// property-tested against this package.
package sw

import (
	"fmt"

	"repro/internal/score"
)

// Alignment is the result of a traceback alignment between a query q and a
// target t. Coordinates are 0-based, half-open over the original sequences.
type Alignment struct {
	Score int

	QueryStart, QueryEnd   int // q[QueryStart:QueryEnd] is aligned
	TargetStart, TargetEnd int // t[TargetStart:TargetEnd] is aligned

	// QueryRow and TargetRow are the aligned residue rows, equal length,
	// with '-' marking gaps.
	QueryRow  []byte
	TargetRow []byte
}

// Identity returns the fraction of alignment columns with identical
// residues, in [0, 1]. An empty alignment has identity 0.
func (a *Alignment) Identity() float64 {
	if len(a.QueryRow) == 0 {
		return 0
	}
	same := 0
	for i := range a.QueryRow {
		if a.QueryRow[i] == a.TargetRow[i] && a.QueryRow[i] != '-' {
			same++
		}
	}
	return float64(same) / float64(len(a.QueryRow))
}

// Gaps returns the number of gap characters across both rows.
func (a *Alignment) Gaps() int {
	n := 0
	for i := range a.QueryRow {
		if a.QueryRow[i] == '-' {
			n++
		}
		if a.TargetRow[i] == '-' {
			n++
		}
	}
	return n
}

// Rescore recomputes the alignment score column by column under scheme s.
// It is used by tests to confirm that tracebacks are internally consistent:
// Rescore must equal Score.
func (a *Alignment) Rescore(s score.Scheme) (int, error) {
	if len(a.QueryRow) != len(a.TargetRow) {
		return 0, fmt.Errorf("sw: ragged alignment rows (%d vs %d)", len(a.QueryRow), len(a.TargetRow))
	}
	total := 0
	inQGap, inTGap := false, false
	for i := range a.QueryRow {
		qc, tc := a.QueryRow[i], a.TargetRow[i]
		switch {
		case qc == '-' && tc == '-':
			return 0, fmt.Errorf("sw: double gap at column %d", i)
		case qc == '-':
			if !inQGap {
				total -= s.Gap.Open
			}
			total -= s.Gap.Extend
			inQGap, inTGap = true, false
		case tc == '-':
			if !inTGap {
				total -= s.Gap.Open
			}
			total -= s.Gap.Extend
			inTGap, inQGap = true, false
		default:
			total += s.Matrix.Score(qc, tc)
			inQGap, inTGap = false, false
		}
	}
	return total, nil
}

// Cells returns the number of DP cells a full comparison of sequence lengths
// m and n updates: the currency of the paper's GCUPS metric.
func Cells(m, n int) int64 { return int64(m) * int64(n) }

// Score computes the optimal Smith-Waterman local alignment score of q vs t
// under scheme s, in O(min-side) space. The empty alignment scores 0, so the
// result is never negative.
func Score(q, t []byte, s score.Scheme) int {
	sc, _, _ := ScoreEnds(q, t, s)
	return sc
}

// ScoreEnds computes the optimal local score and the (0-based, inclusive)
// end coordinates of an optimal alignment: q[.. qEnd] and t[.. tEnd] are the
// last aligned residues. For a zero score (no positive-scoring alignment),
// ends are -1.
//
// The recurrence is the paper's Equation (1), generalized to the affine-gap
// model when s.Gap.IsAffine(): three DP rows H, E, F as in Gotoh.
func ScoreEnds(q, t []byte, s score.Scheme) (best, qEnd, tEnd int) {
	m, n := len(q), len(t)
	qEnd, tEnd = -1, -1
	if m == 0 || n == 0 {
		return 0, qEnd, tEnd
	}
	open, ext := s.Gap.Open, s.Gap.Extend
	// H[j], E[j] hold row i-1 values while computing row i; diag carries
	// H[i-1][j-1].
	H := make([]int, n+1)
	E := make([]int, n+1)
	negInf := -(1 << 30)
	for j := range E {
		E[j] = negInf
	}
	for i := 1; i <= m; i++ {
		var row []int
		if qi := s.Matrix.Alphabet().Index(q[i-1]); qi >= 0 {
			row = s.Matrix.Row(qi)
		}
		diag := 0 // H[i-1][0]
		f := negInf
		hPrev := 0 // H[i][0]
		for j := 1; j <= n; j++ {
			e := max(H[j]-open-ext, E[j]-ext) // gap in q (vertical move)
			f = max(hPrev-open-ext, f-ext)    // gap in t (horizontal move)
			h := diag
			if k := s.Matrix.Alphabet().Index(t[j-1]); k >= 0 && row != nil {
				h += row[k]
			} else {
				h += s.Matrix.Min()
			}
			h = max(h, e, f, 0)
			diag = H[j]
			H[j], E[j] = h, e
			hPrev = h
			if h > best {
				best, qEnd, tEnd = h, i-1, j-1
			}
		}
	}
	return best, qEnd, tEnd
}

// ScoreMatrix computes and returns the full (m+1)x(n+1) similarity matrix H
// of the paper's §II-A phase 1, for the affine or linear model depending on
// the scheme. Intended for tests and teaching (e.g. the paper's Fig. 2);
// use ScoreEnds for real workloads.
func ScoreMatrix(q, t []byte, s score.Scheme) [][]int {
	m, n := len(q), len(t)
	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	negInf := -(1 << 30)
	for i := 0; i <= m; i++ {
		H[i] = make([]int, n+1)
		E[i] = make([]int, n+1)
		F[i] = make([]int, n+1)
		for j := 0; j <= n; j++ {
			E[i][j], F[i][j] = negInf, negInf
		}
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			E[i][j] = max(H[i][j-1]-s.Gap.Open-s.Gap.Extend, E[i][j-1]-s.Gap.Extend)
			F[i][j] = max(H[i-1][j]-s.Gap.Open-s.Gap.Extend, F[i-1][j]-s.Gap.Extend)
			H[i][j] = max(H[i-1][j-1]+s.Matrix.Score(q[i-1], t[j-1]), E[i][j], F[i][j], 0)
		}
	}
	return H
}

// MaxPossibleScore bounds the local score of any query of length m under
// scheme s: every residue matching at the matrix maximum. Used to pick the
// 8-bit vs 16-bit Farrar kernel.
func MaxPossibleScore(m int, s score.Scheme) int {
	if s.Matrix.Max() <= 0 {
		return 0
	}
	return m * s.Matrix.Max()
}
