// Command swmaster runs the master process of the distributed task
// execution environment over TCP (the paper's two-host Gigabit Ethernet
// deployment). Slaves (cmd/swslave) connect, register and pull tasks; the
// master merges results and prints them when the job completes.
//
// Usage:
//
//	swmaster -queries queries.fasta -db-residues 12100000 \
//	         -listen :7777 -policy PSS -adjust -slaves 2
//
// -db-residues must match the database resident on the slaves (swslave
// prints it at startup); alternatively pass -db db.fasta to read it.
//
// -metrics addr serves GET /metrics (Prometheus text exposition) and
// GET /varz (JSON) on a side listener; -events file appends one JSON
// scheduler event per line (assign/sample/exec/summary), the same shapes
// the virtual-time platform writes.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/fasta"
	"repro/internal/gcups"
	"repro/internal/master"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func main() {
	var (
		qPath    = flag.String("queries", "", "query FASTA file")
		dbPath   = flag.String("db", "", "database FASTA (only to count residues)")
		residues = flag.Int64("db-residues", 0, "database residue count (alternative to -db)")
		listen   = flag.String("listen", ":7777", "TCP listen address")
		policy   = flag.String("policy", "PSS", "allocation policy")
		adjust   = flag.Bool("adjust", true, "enable the workload adjustment mechanism")
		omega    = flag.Int("omega", 0, "PSS history window")
		lease    = flag.Duration("lease", 15*time.Second, "slave liveness lease: a slave silent this long is declared dead and its tasks requeue (0 disables)")
		timeout  = flag.Duration("timeout", time.Hour, "job timeout")
		topShow  = flag.Int("show", 3, "hits to print per query")
		ckpt     = flag.String("checkpoint", "", "checkpoint file: resumed if present, saved every 30s and on completion")
		metricsA = flag.String("metrics", "", "serve GET /metrics and /varz on this address (empty disables)")
		events   = flag.String("events", "", "append scheduler event-log lines (JSON, one per line) to this file")
	)
	flag.Parse()
	if *qPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	queries, err := fasta.ReadFile(*qPath)
	if err != nil {
		fail("%v", err)
	}
	if *dbPath != "" {
		db, err := fasta.ReadFile(*dbPath)
		if err != nil {
			fail("%v", err)
		}
		*residues = 0
		for _, d := range db {
			*residues += int64(d.Len())
		}
	}
	if *residues <= 0 {
		fail("need -db or a positive -db-residues")
	}
	pol, err := sched.NewPolicy(*policy)
	if err != nil {
		fail("%v", err)
	}

	cfg := master.Config{
		Queries:    queries,
		DBResidues: *residues,
		Policy:     pol,
		Adjust:     *adjust,
		Omega:      *omega,
		Lease:      *lease,
	}
	if *metricsA != "" {
		cfg.Registry = metrics.NewRegistry()
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", cfg.Registry.Handler())
		mux.Handle("GET /varz", cfg.Registry.VarzHandler())
		go func() {
			if err := http.ListenAndServe(*metricsA, mux); err != nil {
				fmt.Fprintf(os.Stderr, "swmaster: metrics listener: %v\n", err)
			}
		}()
		fmt.Printf("master: metrics on http://%s/metrics\n", *metricsA)
	}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail("events log: %v", err)
		}
		defer f.Close()
		cfg.Events = metrics.NewEventLog(f)
	}
	var m *master.Master
	if *ckpt != "" {
		if f, err := os.Open(*ckpt); err == nil {
			m, err = master.LoadCheckpoint(f, cfg)
			_ = f.Close()
			if err != nil {
				fail("resuming %s: %v", *ckpt, err)
			}
			fmt.Printf("master: resumed from %s (%d/%d tasks already finished)\n",
				*ckpt, m.Coordinator().Pool().Finished(), len(queries))
		}
	}
	if m == nil {
		var err error
		m, err = master.New(cfg)
		if err != nil {
			fail("%v", err)
		}
	}
	if *ckpt != "" {
		saveCheckpoint := func() {
			tmp := *ckpt + ".tmp"
			f, err := os.Create(tmp)
			if err != nil {
				return
			}
			if err := m.SaveCheckpoint(f); err == nil && f.Close() == nil {
				_ = os.Rename(tmp, *ckpt)
			} else {
				_ = f.Close()
			}
		}
		defer saveCheckpoint()
		go func() {
			for range time.Tick(30 * time.Second) {
				saveCheckpoint()
			}
		}()
	}
	l, err := m.Listen(*listen)
	if err != nil {
		fail("%v", err)
	}
	defer l.Close()
	go func() {
		// Surface serve-loop failures; after the job finishes the listener
		// close produces an expected error we stay quiet about.
		if err := <-m.ServeErrors(); err != nil {
			select {
			case <-m.Done():
			default:
				fmt.Fprintf(os.Stderr, "swmaster: serve: %v\n", err)
			}
		}
	}()
	fmt.Printf("master: %d tasks (%d queries x database of %d residues), policy %s, adjust=%v, lease=%v\n",
		len(queries), len(queries), *residues, pol.Name(), *adjust, *lease)
	fmt.Printf("master: listening on %s, waiting for slaves...\n", l.Addr())

	if err := m.Wait(*timeout); err != nil {
		fail("%v", err)
	}
	fmt.Printf("master: job complete in %s s\n", gcups.Seconds(m.Elapsed()))
	for _, r := range m.Results() {
		fmt.Printf("%s: slave %d at %s s", r.Query, r.Slave, gcups.Seconds(r.Elapsed))
		n := min(*topShow, len(r.Hits))
		for _, h := range r.Hits[:n] {
			fmt.Printf("  %s=%d", h.SeqID, h.Score)
		}
		fmt.Println()
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swmaster: "+format+"\n", args...)
	os.Exit(1)
}
