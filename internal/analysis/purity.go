package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// PurityAnalyzer enforces DESIGN §1's central contract: internal/sched,
// internal/platform, internal/vtime and internal/sim are pure state
// machines — every method takes the current time as an argument and
// performs no I/O, no sleeping and no goroutine spawning. That purity is
// what lets the same code drive both the wall-clock master and the
// calibrated discrete-event experiments, and what makes the cluster
// simulator's chaos runs replay byte-identically from a seed, so it must
// hold mechanically, not by convention.
//
// Inside the pure packages the analyzer forbids:
//   - go statements (concurrency belongs to the drivers, not the model);
//   - wall-clock and sleeping calls from package time (Now, Sleep, Since,
//     Until, After, Tick, NewTimer, NewTicker, AfterFunc);
//   - importing I/O-capable packages (os, os/exec, os/signal, net and its
//     subtree, syscall, io/ioutil);
//   - math/rand functions that draw from the process-global source (Intn,
//     Float64, Shuffle, ...). Explicitly seeded generators via rand.New /
//     rand.NewSource stay allowed: a seeded *rand.Rand is deterministic,
//     which is the property the checker actually guards.
//
// The analyzer also guards a second, unrelated purity contract: the SWAR
// hot path. internal/simd/swar must stay loop-free bit tricks (no for or
// range statements) and must never import the emulated internal/simd ISA;
// the swar*.go kernel files of internal/farrar likewise must not import
// internal/simd — the whole point of the SWAR tier is that the emulated
// ISA is its oracle, not its substrate, so a stray import there would
// silently reintroduce the per-lane-loop tax the tier exists to remove.
var PurityAnalyzer = &Analyzer{
	Name: "purity",
	Doc:  "forbid goroutines, wall-clock time, I/O imports and global randomness in the pure scheduler/simulator packages; keep the SWAR hot path loop-free and off the emulated ISA",
	Run:  runPurity,
}

// purePackages are the packages (matched on import-path segments) the
// purity analyzer applies to.
var purePackages = []string{"internal/sched", "internal/platform", "internal/vtime", "internal/sim", "internal/autoscale"}

// forbiddenTimeFuncs are package time functions that read the wall clock
// or sleep.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRandFuncs are the math/rand constructors for explicitly seeded
// generators; every other package-level rand function uses the global
// source and is forbidden in pure packages.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// forbiddenImports are I/O-capable packages pure code must not import.
// net matches its whole subtree via pathHasPackage.
var forbiddenImports = []string{"os", "os/exec", "os/signal", "net", "syscall", "io/ioutil"}

// swarPackage is the loop-free primitives package and emulatedISA the
// oracle package SWAR code must not import. Both are matched as exact
// path suffixes (pathIsPackage), because segment matching would conflate
// internal/simd with its swar subpackage.
const (
	swarPackage   = "internal/simd/swar"
	emulatedISA   = "internal/simd"
	farrarPackage = "internal/farrar"
)

// pathIsPackage reports whether import path p IS the package pkg (exact
// match or exact suffix), unlike pathHasPackage which also matches pkg as
// a prefix segment and would conflate internal/simd with internal/simd/swar.
func pathIsPackage(p, pkg string) bool {
	return p == pkg || strings.HasSuffix(p, "/"+pkg)
}

// runSwarPurity enforces the SWAR hot-path contract; see the analyzer doc.
func runSwarPurity(pass *Pass) {
	switch {
	case pathIsPackage(pass.Pkg.Path, swarPackage):
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && pathIsPackage(path, emulatedISA) {
					pass.Reportf(imp.Pos(), "SWAR package %s imports the emulated ISA %s: the oracle must never be the substrate", pass.Pkg.Types.Name(), path)
				}
			}
		}
		pass.Pkg.WalkStack(func(n ast.Node, _ []ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				pass.Reportf(n.Pos(), "loop statement in SWAR package %s: primitives must be loop-free bit tricks over packed words", pass.Pkg.Types.Name())
			}
			return true
		})
	case pathIsPackage(pass.Pkg.Path, farrarPackage):
		for _, f := range pass.Pkg.Files {
			name := filepath.Base(pass.Pkg.Fset.Position(f.Pos()).Filename)
			if !strings.HasPrefix(name, "swar") {
				continue
			}
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && pathIsPackage(path, emulatedISA) {
					pass.Reportf(imp.Pos(), "SWAR kernel file %s imports the emulated ISA %s: the hot path must stay on packed-word bit tricks", name, path)
				}
			}
		}
	}
}

func runPurity(pass *Pass) {
	runSwarPurity(pass)
	pure := false
	for _, p := range purePackages {
		if pathHasPackage(pass.Pkg.Path, p) {
			pure = true
			break
		}
	}
	if !pure {
		return
	}

	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, bad := range forbiddenImports {
				if path == bad || (bad == "net" && strings.HasPrefix(path, "net/")) {
					pass.Reportf(imp.Pos(), "pure package %s imports %s (no I/O in the scheduler/simulator core)", pass.Pkg.Types.Name(), path)
				}
			}
		}
	}

	pass.Pkg.WalkStack(func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in pure package %s: concurrency belongs to the drivers, not the state machine", pass.Pkg.Types.Name())
		case *ast.SelectorExpr:
			pkgName, ok := pkgNameOf(pass.Pkg.Info, n.X)
			if !ok {
				return true
			}
			// Only function uses matter: type references like *rand.Rand or
			// time.Duration are pure values.
			if _, isFunc := pass.Pkg.Info.Uses[n.Sel].(*types.Func); !isFunc {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if forbiddenTimeFuncs[n.Sel.Name] {
					pass.Reportf(n.Pos(), "time.%s in pure package %s: take the current time as an argument instead", n.Sel.Name, pass.Pkg.Types.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[n.Sel.Name] {
					pass.Reportf(n.Pos(), "rand.%s draws from the global source; use an explicitly seeded *rand.Rand for determinism", n.Sel.Name)
				}
			}
		}
		return true
	})
}

// pkgNameOf resolves an expression to the package it names, if it is a
// plain package qualifier like `time` in `time.Now`.
func pkgNameOf(info *types.Info, e ast.Expr) (*types.PkgName, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return pn, ok
}
