package master_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cudasw"
	"repro/internal/dataset"
	"repro/internal/master"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/slave"
	"repro/internal/sw"
	"repro/internal/wire"
)

func testJob(t *testing.T, nQueries int) ([]*seq.Sequence, []*seq.Sequence) {
	t.Helper()
	p := dataset.Profile{Name: "tiny", NumSeqs: 20, MeanLen: 70, SigmaLn: 0.5, MinLen: 20, MaxLen: 200}
	db := dataset.Generate(p, 42)
	queries := dataset.Queries(db, nQueries, 40, 150, 43)
	return db, queries
}

func dbResidues(db []*seq.Sequence) int64 {
	var n int64
	for _, d := range db {
		n += int64(d.Len())
	}
	return n
}

// runLocal drives a master and a set of in-process engines to completion.
func runLocal(t *testing.T, m *master.Master, engines []slave.Engine) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(engines))
	for i, eng := range engines {
		wg.Add(1)
		go func(i int, eng slave.Engine) {
			defer wg.Done()
			_, errs[i] = slave.Run(wire.Local{H: m}, eng, slave.Options{
				NotifyEvery: 10 * time.Millisecond,
				Poll:        5 * time.Millisecond,
			})
		}(i, eng)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slave %d: %v", i, err)
		}
	}
}

func TestEndToEndLocalCorrectness(t *testing.T) {
	db, queries := testJob(t, 6)
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     &sched.PSS{},
		Adjust:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sse1, _ := slave.NewFarrarEngine("sse1", score.DefaultProtein(), db, 0)
	sse2, _ := slave.NewFarrarEngine("sse2", score.DefaultProtein(), db, 0)
	gpu, _ := slave.NewGPUEngine("gpu1", cudasw.GTX580(), score.DefaultProtein(), db, 0)
	runLocal(t, m, []slave.Engine{sse1, sse2, gpu})

	if err := m.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	results := m.Results()
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	for i, r := range results {
		if r.Query != queries[i].ID {
			t.Fatalf("result %d for %s, want %s", i, r.Query, queries[i].ID)
		}
		if len(r.Hits) != len(db) {
			t.Fatalf("query %s: %d hits, want %d", r.Query, len(r.Hits), len(db))
		}
		// The best hit must carry the true optimal score over the database.
		best := 0
		for _, d := range db {
			if sc := sw.Score(queries[i].Residues, d.Residues, score.DefaultProtein()); sc > best {
				best = sc
			}
		}
		if r.Hits[0].Score != best {
			t.Fatalf("query %s: top hit %d, reference best %d", r.Query, r.Hits[0].Score, best)
		}
	}
}

func TestEndToEndTCP(t *testing.T) {
	db, queries := testJob(t, 4)
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     sched.SS{},
		Adjust:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		eng, _ := slave.NewFarrarEngine("sse", score.DefaultProtein(), db, 0)
		client, err := wire.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer client.Close()
			if _, err := slave.Run(client, eng, slave.Options{
				NotifyEvery: 10 * time.Millisecond,
				Poll:        5 * time.Millisecond,
				TopK:        5,
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := m.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	for _, r := range m.Results() {
		if len(r.Hits) != 5 {
			t.Fatalf("TopK=5 but query %s has %d hits", r.Query, len(r.Hits))
		}
	}
}

func TestMasterValidation(t *testing.T) {
	if _, err := master.New(master.Config{}); err == nil {
		t.Error("no queries accepted")
	}
	_, queries := testJob(t, 1)
	if _, err := master.New(master.Config{Queries: queries}); err == nil {
		t.Error("zero DBResidues accepted")
	}
	empty := []*seq.Sequence{seq.New("e", "", nil)}
	if _, err := master.New(master.Config{Queries: empty, DBResidues: 10}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestMasterWaitTimeout(t *testing.T) {
	_, queries := testJob(t, 1)
	m, _ := master.New(master.Config{Queries: queries, DBResidues: 100})
	if err := m.Wait(10 * time.Millisecond); err == nil {
		t.Error("Wait should time out with no slaves")
	}
}

func TestSlaveGoneRequeues(t *testing.T) {
	_, queries := testJob(t, 2)
	m, _ := master.New(master.Config{Queries: queries, DBResidues: 100, Policy: sched.SS{}})
	resp := m.Dispatch(wire.Envelope{Register: &wire.RegisterMsg{Name: "dying"}})
	id := resp.RegisterAck.Slave
	assign := m.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: id}})
	if len(assign.Assign.Tasks) != 1 {
		t.Fatal("setup failed")
	}
	m.SlaveGone(id)
	if got := m.Coordinator().Pool().Ready(); got != 2 {
		t.Fatalf("ready = %d after slave death, want 2", got)
	}
}

func TestDispatchUnknownMessage(t *testing.T) {
	_, queries := testJob(t, 1)
	m, _ := master.New(master.Config{Queries: queries, DBResidues: 100})
	if resp := m.Dispatch(wire.Envelope{}); resp.Error == "" {
		t.Error("empty envelope should error")
	}
}

func TestEndToEndWithSSPolicyNoAdjust(t *testing.T) {
	db, queries := testJob(t, 5)
	m, _ := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     sched.SS{},
		Adjust:     false,
	})
	eng, _ := slave.NewFarrarEngine("solo", score.DefaultProtein(), db, 0)
	runLocal(t, m, []slave.Engine{eng})
	if err := m.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Results()); got != 5 {
		t.Fatalf("%d results", got)
	}
}

func TestDispatchRejectsMalformedIDs(t *testing.T) {
	_, queries := testJob(t, 2)
	m, _ := master.New(master.Config{Queries: queries, DBResidues: 100, Policy: sched.SS{}})
	// Nothing registered: every slave reference is invalid and must yield
	// an error envelope, never a panic.
	cases := []wire.Envelope{
		{Request: &wire.RequestMsg{Slave: 0}},
		{Request: &wire.RequestMsg{Slave: -3}},
		{Progress: &wire.ProgressMsg{Slave: 9, Rate: 1, Cells: 1}},
		{Complete: &wire.CompleteMsg{Slave: 0, Task: 0}},
	}
	for i, c := range cases {
		if resp := m.Dispatch(c); resp.Error == "" {
			t.Errorf("case %d: malformed message accepted", i)
		}
	}
	// A registered slave completing a bogus task is also rejected.
	reg := m.Dispatch(wire.Envelope{Register: &wire.RegisterMsg{Name: "s"}})
	id := reg.RegisterAck.Slave
	if resp := m.Dispatch(wire.Envelope{Complete: &wire.CompleteMsg{Slave: id, Task: 99}}); resp.Error == "" {
		t.Error("bogus task accepted")
	}
	// SlaveGone with a junk ID is a no-op, not a panic.
	m.SlaveGone(-1)
	m.SlaveGone(42)
}
