package sched

import (
	"testing"
	"time"

	"repro/internal/vtime"
)

func TestExpireReapsSilentSlave(t *testing.T) {
	c := NewCoordinator(mkTasks(2), Config{Policy: SS{}})
	quiet := c.Register(SlaveInfo{Name: "quiet"}, 0)
	chatty := c.Register(SlaveInfo{Name: "chatty"}, 0)
	tasks, _ := c.RequestWork(quiet, 0)
	if len(tasks) != 1 {
		t.Fatal("setup failed")
	}
	chattyTasks, _ := c.RequestWork(chatty, 0)

	// Within the lease nobody expires.
	if got := c.Expire(sec(5), sec(10)); got != nil {
		t.Fatalf("expired %v inside the lease", got)
	}
	// The chatty slave keeps notifying; the quiet one goes silent.
	c.ProgressRate(chatty, 100, 100, sec(8))
	got := c.Expire(sec(11), sec(10))
	if len(got) != 1 || got[0] != quiet {
		t.Fatalf("Expire = %v, want [%d]", got, quiet)
	}
	if !c.Dead(quiet) || c.Dead(chatty) {
		t.Fatal("dead flags wrong after expiry")
	}
	// The hung slave's task went back to ready and the survivor picks it up.
	if c.Pool().StateOf(tasks[0].ID) != Ready {
		t.Fatal("expired slave's task not requeued")
	}
	if w, _ := c.RequestWork(quiet, sec(12)); w != nil {
		t.Fatal("expired slave still receives work")
	}
	// The survivor finishes its own task (a busy slave asking again would
	// only get a retransmission) and then picks the requeued one up.
	c.Complete(chatty, chattyTasks[0].ID, nil, sec(12))
	w, _ := c.RequestWork(chatty, sec(12))
	if len(w) != 1 || w[0].ID != tasks[0].ID {
		t.Fatalf("survivor got %v, want the requeued task", w)
	}
	// Idempotent: the already-dead slave never expires twice (the chatty
	// one, last heard at 12s, is still within its lease here).
	if got := c.Expire(sec(13), sec(10)); got != nil {
		t.Fatalf("second Expire = %v", got)
	}
}

func TestExpireDisabledAndContactRefresh(t *testing.T) {
	c := NewCoordinator(mkTasks(1), Config{Policy: SS{}})
	id := c.Register(SlaveInfo{Name: "s"}, 0)
	if got := c.Expire(sec(100), 0); got != nil {
		t.Fatalf("lease 0 expired %v", got)
	}
	// Every protocol interaction refreshes the lease.
	c.RequestWork(id, sec(5))
	if got := c.LastContact(id); got != sec(5) {
		t.Fatalf("LastContact after RequestWork = %v", got)
	}
	c.Progress(id, 10, sec(6))
	if got := c.LastContact(id); got != sec(6) {
		t.Fatalf("LastContact after Progress = %v", got)
	}
	c.Complete(id, 0, nil, sec(7))
	if got := c.LastContact(id); got != sec(7) {
		t.Fatalf("LastContact after Complete = %v", got)
	}
	if got := c.Expire(sec(8), sec(10)); got != nil {
		t.Fatalf("fresh slave expired: %v", got)
	}
}

func TestDeadSlaveNotificationsDiscarded(t *testing.T) {
	c := NewCoordinator(mkTasks(1), Config{Policy: SS{}})
	id := c.Register(SlaveInfo{Name: "s", DeclaredSpeed: 50}, 0)
	c.SlaveDied(id)
	c.ProgressRate(id, 999, 100, sec(1))
	c.Progress(id, 100, sec(2))
	if got := c.SpeedOf(id); got != 50 {
		t.Fatalf("dead slave's notifications observed: SpeedOf = %v", got)
	}
	if got := c.LastContact(id); got != 0 {
		t.Fatalf("dead slave's lastContact refreshed to %v", got)
	}
}

// TestCompleteWorkCreditsFinalDelta is the regression test for the lost
// final progress delta: a task completed between notifications must still
// feed the speed estimator and the backlog credit.
func TestCompleteWorkCreditsFinalDelta(t *testing.T) {
	c := NewCoordinator(mkTasks(2), Config{Policy: SS{}})
	id := c.Register(SlaveInfo{Name: "s"}, 0)
	tasks, _ := c.RequestWork(id, 0)
	// No periodic notification ever fired (short task); the completion
	// carries the whole task as its final delta.
	ok, _ := c.CompleteWork(id, tasks[0].ID, nil, 1000, 2000, sec(0.5))
	if !ok {
		t.Fatal("completion rejected")
	}
	if got := c.SpeedOf(id); got != 2000 {
		t.Fatalf("SpeedOf after CompleteWork = %v, want the final-delta rate 2000", got)
	}
	// Without a rate the delta still lands as an Observe sample measured
	// against the registration anchor.
	c2 := NewCoordinator(mkTasks(1), Config{Policy: SS{}})
	id2 := c2.Register(SlaveInfo{Name: "s2"}, sec(1))
	ts, _ := c2.RequestWork(id2, sec(1))
	c2.CompleteWork(id2, ts[0].ID, nil, 1000, 0, sec(2))
	if got := c2.SpeedOf(id2); got != 1000 {
		t.Fatalf("SpeedOf = %v, want 1000 cells over the 1s since registration", got)
	}
	// A forged CompleteWork from a non-executor credits nothing.
	c3 := NewCoordinator(mkTasks(1), Config{Policy: SS{}})
	id3 := c3.Register(SlaveInfo{Name: "s3"}, 0)
	if ok, _ := c3.CompleteWork(id3, 0, nil, 500, 500, sec(1)); ok {
		t.Fatal("forged completion accepted")
	}
	if got := c3.SpeedOf(id3); got != 0 {
		t.Fatalf("forged completion credited a speed sample: %v", got)
	}
}

// TestHistoryAnchoredAtRegistration is the regression test for the
// deflated first PSS sample: a slave registering late must have its first
// delta divided by time since registration, not time since job start.
func TestHistoryAnchoredAtRegistration(t *testing.T) {
	c := NewCoordinator(mkTasks(1), Config{Policy: &PSS{}})
	// Registers 100 s into the job, then reports 1000 cells one second
	// later. The buggy timebase (job start) would yield ~9.9 cells/s.
	id := c.Register(SlaveInfo{Name: "late"}, sec(100))
	c.Progress(id, 1000, sec(101))
	if got := c.SpeedOf(id); got != 1000 {
		t.Fatalf("first sample = %v cells/s, want 1000 (anchored at registration)", got)
	}
}

func TestHistoryAnchor(t *testing.T) {
	h := NewHistory(4)
	h.Anchor(sec(10))
	h.Observe(500, sec(11))
	if v, ok := h.Speed(); !ok || v != 500 {
		t.Fatalf("Speed = %v %v, want 500", v, ok)
	}
	// Un-anchored first Observe only anchors — no sample from a dubious
	// division by absolute time.
	h2 := NewHistory(4)
	h2.Observe(700, sec(7))
	if _, ok := h2.Speed(); ok {
		t.Fatal("un-anchored first notification produced a sample")
	}
	h2.Observe(300, sec(8))
	if v, _ := h2.Speed(); v != 300 {
		t.Fatalf("second sample = %v, want 300", v)
	}
}

// TestLeaseExpiryUnderVirtualClock drives the failure detector the way
// the wall-clock master does — a recurring lease/4 tick — but from a
// vtime event loop, so the timing-sensitive scenario (one slave notifying
// on schedule, one going silent mid-run) runs instantly and reproduces
// exactly. This is the discipline the cluster simulator (internal/sim)
// generalizes; the test pins the minimal version against the coordinator
// alone.
func TestLeaseExpiryUnderVirtualClock(t *testing.T) {
	const lease = 2 * time.Second
	c := NewCoordinator(mkTasks(4), Config{Policy: SS{}})
	chatty := c.Register(SlaveInfo{Name: "chatty"}, 0)
	quiet := c.Register(SlaveInfo{Name: "quiet"}, 0)
	c.RequestWork(chatty, 0)
	quietTasks, _ := c.RequestWork(quiet, 0)

	sim := vtime.New()
	type expiry struct {
		id SlaveID
		at time.Duration
	}
	var expired []expiry
	var tick func()
	tick = func() {
		for _, id := range c.Expire(sim.Now(), lease) {
			expired = append(expired, expiry{id, sim.Now()})
		}
		if sim.Now() < 10*time.Second {
			sim.After(lease/4, tick)
		}
	}
	sim.After(lease/4, tick)

	// The chatty slave notifies every 500ms for the whole horizon; the
	// quiet one falls silent after one notification at 600ms.
	var notify func()
	notify = func() {
		c.ProgressRate(chatty, 1000, 500, sim.Now())
		if sim.Now() < 10*time.Second {
			sim.After(500*time.Millisecond, notify)
		}
	}
	sim.After(500*time.Millisecond, notify)
	sim.Schedule(600*time.Millisecond, func() {
		c.ProgressRate(quiet, 1000, 500, sim.Now())
	})

	if _, err := sim.Run(10000); err != nil {
		t.Fatal(err)
	}
	if len(expired) != 1 || expired[0].id != quiet {
		t.Fatalf("expired = %v, want exactly the quiet slave", expired)
	}
	// Silence began at 600ms; the first tick past 600ms+lease is at 3s.
	if got := expired[0].at; got != 3*time.Second {
		t.Fatalf("quiet slave expired at %v, want the first tick after its lease ran out (3s)", got)
	}
	if c.Dead(chatty) {
		t.Fatal("chatty slave reaped despite notifying inside every lease window")
	}
	if c.Pool().StateOf(quietTasks[0].ID) != Ready {
		t.Fatal("expired slave's task not requeued")
	}
}
