package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package of the module.
type Package struct {
	// Path is the import path the loader assigned: the module path plus the
	// directory's path relative to the module root. Testdata packages get a
	// synthetic path the same way, which is what lets path-scoped analyzers
	// (purity) fire on fixtures laid out like the real tree.
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// ModulePath is the module path from go.mod (shared by all packages of
	// one Loader); analyzers use it to tell module enums from imported ones.
	ModulePath string

	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by file name
	Types *types.Package
	Info  *types.Info

	ignores   []ignoreDirective // keyed by file via position
	malformed []Diagnostic

	// fileOf maps each directive back to its file name so directives only
	// suppress diagnostics in their own file.
	ignoreFiles []string
	// usedIgnores marks, per directive, whether it suppressed at least one
	// finding this run — the liveness signal behind `swcheck -ignores`.
	usedIgnores []bool
}

// coveringIgnore returns the index of the first ignore directive covering
// a diagnostic by analyzer at position (same file, directive line or the
// line below), or -1 when none does.
func (p *Package) coveringIgnore(analyzer string, pos token.Position) int {
	for i, d := range p.ignores {
		if d.analyzer != analyzer && d.analyzer != "all" {
			continue
		}
		if p.ignoreFiles[i] != pos.Filename {
			continue
		}
		if pos.Line == d.line || pos.Line == d.line+1 {
			return i
		}
	}
	return -1
}

// Loader loads packages of one module by directory, type-checking them
// with go/types. Module-internal imports are resolved recursively by the
// loader itself; the standard library comes from the gc importer's export
// data. Loaded packages are cached, so shared dependencies (e.g.
// internal/metrics) are checked once.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset  *token.FileSet
	std   types.Importer
	byDir map[string]*Package
	// loading guards against import cycles, which go/types would otherwise
	// chase forever through our Import.
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root %s: %w", abs, err)
	}
	path := modulePath(string(mod))
	if path == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: abs,
		ModulePath: path,
		fset:       fset,
		std:        importer.ForCompiler(fset, "gc", nil),
		byDir:      map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(mod string) string {
	for _, line := range strings.Split(mod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// Import implements types.Importer: module-internal paths are loaded from
// source, everything else is delegated to the gc importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir loads, parses and type-checks the package in dir (non-test .go
// files only). Results are cached per directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byDir[abs]; ok {
		return pkg, nil
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	names, err := goSourceFiles(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", abs)
	}

	pkg := &Package{
		Path:       path,
		Dir:        abs,
		ModulePath: l.ModulePath,
		Fset:       l.fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		dirs, bad := parseIgnores(l.fset, f)
		pkg.malformed = append(pkg.malformed, bad...)
		for _, d := range dirs {
			pkg.ignores = append(pkg.ignores, d)
			pkg.ignoreFiles = append(pkg.ignoreFiles, filepath.Join(abs, name))
		}
	}
	pkg.usedIgnores = make([]bool, len(pkg.ignores))

	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	l.byDir[abs] = pkg
	return pkg, nil
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(abs string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", abs, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// goSourceFiles lists the non-test .go files of dir, sorted.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
