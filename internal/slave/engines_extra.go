package slave

import (
	"fmt"
	"runtime"

	"repro/internal/farrar"
	"repro/internal/parallel"
	"repro/internal/prefilter"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
	"repro/internal/swipe"
	"repro/internal/wire"
)

// MulticoreEngine is a CPU slave that uses all of a host's cores for one
// task, with the coarse-grained (Fig. 3b) database decomposition: workers
// self-schedule chunks of database sequences through Farrar kernels. This
// models registering a whole multicore host as a single slave instead of
// one slave per core.
type MulticoreEngine struct {
	name     string
	scheme   score.Scheme
	db       []*seq.Sequence
	residues int64
	cores    int
	declared float64
	kmet     *farrar.Metrics
	pmet     *prefilter.Metrics
}

// SetKernelMetrics attaches the farrar fallback-telemetry bundle; the
// per-worker kernel stats that CoarseGrainedSearchStats aggregates are
// observed after each task.
func (e *MulticoreEngine) SetKernelMetrics(m *farrar.Metrics) { e.kmet = m }

// NewMulticoreEngine builds a whole-host CPU engine; cores <= 0 uses
// runtime.NumCPU().
func NewMulticoreEngine(name string, s score.Scheme, db []*seq.Sequence, cores int, declaredSpeed float64) (*MulticoreEngine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("slave: empty database")
	}
	if cores <= 0 {
		cores = runtime.NumCPU()
	}
	e := &MulticoreEngine{name: name, scheme: s, db: db, cores: cores, declared: declaredSpeed}
	for _, d := range db {
		e.residues += int64(d.Len())
	}
	return e, nil
}

// Name implements Engine.
func (e *MulticoreEngine) Name() string { return e.name }

// Kind implements Engine.
func (e *MulticoreEngine) Kind() sched.SlaveKind { return sched.KindCPU }

// DeclaredSpeed implements Engine.
func (e *MulticoreEngine) DeclaredSpeed() float64 { return e.declared }

// DatabaseResidues implements Engine.
func (e *MulticoreEngine) DatabaseResidues() int64 { return e.residues }

// Cores returns the worker count used per task.
func (e *MulticoreEngine) Cores() int { return e.cores }

// Search implements Engine. The parallel chunk scan is not interruptible;
// cancellation is observed at the boundaries like the GPU engine.
func (e *MulticoreEngine) Search(query *seq.Sequence, progress func(int64), cancel <-chan struct{}) ([]wire.Hit, error) {
	select {
	case <-cancel:
		return nil, ErrCanceled
	default:
	}
	scores, kstats, err := parallel.CoarseGrainedSearchStats(query.Residues, e.db, e.scheme, e.cores, 16)
	if err != nil {
		return nil, err
	}
	e.kmet.Observe(kstats)
	select {
	case <-cancel:
		return nil, ErrCanceled
	default:
	}
	if progress != nil {
		progress(int64(query.Len()) * e.residues)
	}
	hits := make([]wire.Hit, len(e.db))
	for i, d := range e.db {
		hits[i] = wire.Hit{SeqID: d.ID, Index: i, Score: scores[i]}
	}
	return hits, nil
}

// SwipeEngine is a CPU slave built on the inter-sequence SIMD kernel of
// internal/swipe (Rognes [17]) instead of the intra-sequence Farrar kernel.
type SwipeEngine struct {
	name     string
	scheme   score.Scheme
	db       []*seq.Sequence
	residues int64
	declared float64
	pmet     *prefilter.Metrics
}

// NewSwipeEngine builds a SWIPE-style CPU engine over a resident database.
func NewSwipeEngine(name string, s score.Scheme, db []*seq.Sequence, declaredSpeed float64) (*SwipeEngine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("slave: empty database")
	}
	e := &SwipeEngine{name: name, scheme: s, db: db, declared: declaredSpeed}
	for _, d := range db {
		e.residues += int64(d.Len())
	}
	return e, nil
}

// Name implements Engine.
func (e *SwipeEngine) Name() string { return e.name }

// Kind implements Engine.
func (e *SwipeEngine) Kind() sched.SlaveKind { return sched.KindCPU }

// DeclaredSpeed implements Engine.
func (e *SwipeEngine) DeclaredSpeed() float64 { return e.declared }

// DatabaseResidues implements Engine.
func (e *SwipeEngine) DatabaseResidues() int64 { return e.residues }

// Search implements Engine.
func (e *SwipeEngine) Search(query *seq.Sequence, progress func(int64), cancel <-chan struct{}) ([]wire.Hit, error) {
	select {
	case <-cancel:
		return nil, ErrCanceled
	default:
	}
	sr, err := swipe.New(query.Residues, e.scheme)
	if err != nil {
		return nil, err
	}
	scores := sr.Search(e.db)
	select {
	case <-cancel:
		return nil, ErrCanceled
	default:
	}
	if progress != nil {
		progress(int64(query.Len()) * e.residues)
	}
	hits := make([]wire.Hit, len(e.db))
	for i, d := range e.db {
		hits[i] = wire.Hit{SeqID: d.ID, Index: i, Score: scores[i]}
	}
	return hits, nil
}

// AlignHit implements Aligner for the multicore engine.
func (e *MulticoreEngine) AlignHit(query *seq.Sequence, hitIndex int) (*sw.Alignment, error) {
	if hitIndex < 0 || hitIndex >= len(e.db) {
		return nil, fmt.Errorf("slave: hit index %d out of range", hitIndex)
	}
	return sw.AlignLinearSpace(query.Residues, e.db[hitIndex].Residues, e.scheme), nil
}

// AlignHit implements Aligner for the SWIPE engine.
func (e *SwipeEngine) AlignHit(query *seq.Sequence, hitIndex int) (*sw.Alignment, error) {
	if hitIndex < 0 || hitIndex >= len(e.db) {
		return nil, fmt.Errorf("slave: hit index %d out of range", hitIndex)
	}
	return sw.AlignLinearSpace(query.Residues, e.db[hitIndex].Residues, e.scheme), nil
}
