// Package vtime provides a deterministic discrete-event simulator.
//
// The paper's evaluation measures *when* heterogeneous processing elements
// finish tasks under different allocation policies. Reproducing those
// experiments without the original GPUs requires a virtual clock: events
// (task completions, progress notifications, message deliveries) are
// executed in strict timestamp order, and simulated durations are computed
// from calibrated processing-element speed models instead of wall time.
//
// Determinism: events at equal timestamps run in scheduling order (a
// monotonic sequence number breaks ties), so a simulation is a pure function
// of its inputs.
package vtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. Cancel prevents a pending event from
// firing; canceling an already-fired event is a no-op.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel prevents the event from firing.
func (e *Event) Cancel() { e.canceled = true }

// At returns the event's scheduled time.
func (e *Event) At() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a discrete-event executor with a virtual clock starting at 0.
// It is not safe for concurrent use: simulations are single-threaded by
// design so that they are reproducible.
type Simulator struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	fired  uint64
}

// New returns a simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Fired reports how many events have executed, a cheap progress/debug metric.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are scheduled (including canceled ones not
// yet reaped).
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule runs fn at virtual time at. Scheduling in the past panics: it is
// always a logic error in a causal simulation.
func (s *Simulator) Schedule(at time.Duration, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("vtime: scheduling at %v before now %v", at, s.now))
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After runs fn d from now. Negative d panics.
func (s *Simulator) After(d time.Duration, fn func()) *Event {
	return s.Schedule(s.now+d, fn)
}

// Step fires the next pending event, if any, advancing the clock to its
// timestamp. It reports whether an event fired.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until none remain. maxEvents bounds the run to protect
// against runaway event loops; <= 0 means no bound. It returns the number of
// events fired and an error if the bound was hit.
func (s *Simulator) Run(maxEvents uint64) (uint64, error) {
	start := s.fired
	for s.Step() {
		if maxEvents > 0 && s.fired-start >= maxEvents {
			if len(s.events) > 0 {
				return s.fired - start, fmt.Errorf("vtime: event bound %d reached with %d events pending at t=%v",
					maxEvents, len(s.events), s.now)
			}
		}
	}
	return s.fired - start, nil
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
func (s *Simulator) RunUntil(t time.Duration) {
	for len(s.events) > 0 {
		// Peek: the heap root is the earliest event.
		if s.events[0].canceled {
			heap.Pop(&s.events)
			continue
		}
		if s.events[0].at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}
