package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnlockpathAnalyzer is the flow-sensitive half of the repo's lock
// discipline (lockguard checks the naming convention; this checks the
// paths). Per function it builds a CFG (cfg.go) and runs a forward
// dataflow (dataflow.go) tracking the lock state of every mutex named by
// a stable selector path (mu, m.mu, c.inner.mu, ...):
//
//   - a mutex locked on some path must be unlocked on every path to a
//     return — a `defer mu.Unlock()` (including inside a deferred
//     closure) satisfies all paths at once;
//   - locking a mutex that is definitely already held is reported as a
//     guaranteed self-deadlock (read locks are exempt: RLock is
//     shareable);
//   - holding a mutex across an unbounded blocking operation — a channel
//     send or receive, a select without default, sync.WaitGroup.Wait, or
//     a wire RPC (any Call(wire.Envelope) method) — is reported, because
//     it turns one slow peer into a process-wide stall. sync.Cond.Wait
//     is exempt: it releases the mutex while waiting by contract.
//
// Function literals are analyzed as separate functions; a mutex reached
// through an index or call result is not tracked.
var UnlockpathAnalyzer = &Analyzer{
	Name: "unlockpath",
	Doc:  "every Lock must reach an Unlock on all paths; no double-lock; no blocking while locked",
	Run:  runUnlockpath,
}

// lockState is the per-mutex dataflow fact. Absence from the map means
// the mutex is not held (or never touched).
type lockState uint8

const (
	lockHeld  lockState = iota // held on every path reaching here
	lockMaybe                  // held on some path, released on another
)

type lockFact map[string]lockState

func joinLocks(a, b lockFact) lockFact {
	out := lockFact{}
	for k, va := range a {
		if vb, ok := b[k]; ok && vb == va {
			out[k] = va
		} else {
			out[k] = lockMaybe
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			out[k] = lockMaybe
		}
	}
	return out
}

func equalLocks(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func runUnlockpath(pass *Pass) {
	forEachFuncBody(pass.Pkg, func(body *ast.BlockStmt) {
		checkUnlockPaths(pass, body)
	})
}

// forEachFuncBody calls fn once per function body of the package: every
// FuncDecl body and every FuncLit body, each treated as its own
// function.
func forEachFuncBody(pkg *Package, fn func(body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}

// lockEvent is one mutex operation or blocking point of a block node, in
// execution order.
type lockEvent struct {
	pos token.Pos
	op  string // "lock", "unlock" or "block"
	key string // mutex path for lock/unlock
	// read marks RLock/RUnlock: balance-checked but re-entrant.
	read bool
	desc string // human description for "block" events
}

func checkUnlockPaths(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	g := BuildCFG(body)

	// Comm statements of select clauses: their channel operations are
	// accounted for at the select header, not as standalone blocking ops.
	comms := map[ast.Node]bool{}
	inspectStack(body, func(n ast.Node, _ []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(*ast.SelectStmt); ok {
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms[cc.Comm] = true
				}
			}
		}
		return true
	})

	transfer := func(b *Block, in lockFact, report func(lockEvent, lockFact)) lockFact {
		state := in
		cloned := false
		mutate := func() {
			if !cloned {
				c := make(lockFact, len(state))
				for k, v := range state {
					c[k] = v
				}
				state, cloned = c, true
			}
		}
		for _, n := range b.Nodes {
			for _, ev := range lockEvents(info, n, comms) {
				if report != nil {
					report(ev, state)
				}
				switch ev.op {
				case "lock":
					mutate()
					state[ev.key] = lockHeld
				case "unlock":
					mutate()
					delete(state, ev.key)
				}
			}
		}
		return state
	}

	in := Solve(g, FlowProblem[lockFact]{
		Entry: lockFact{},
		Join:  joinLocks,
		Equal: equalLocks,
		Transfer: func(b *Block, in lockFact) lockFact {
			return transfer(b, in, nil)
		},
	})

	// Reporting pass: re-run each reachable block once from its final
	// in-state.
	lockPos := map[string]token.Pos{} // first Lock site per mutex path
	for _, b := range g.Blocks {
		st, reachable := in[b]
		if !reachable {
			continue
		}
		transfer(b, st, func(ev lockEvent, state lockFact) {
			switch ev.op {
			case "lock":
				if _, ok := lockPos[ev.key]; !ok {
					lockPos[ev.key] = ev.pos
				}
				if s, held := state[ev.key]; held && s == lockHeld && !ev.read {
					pass.Reportf(ev.pos, "%s is locked twice without an intervening Unlock: guaranteed self-deadlock", ev.key)
				}
			case "block":
				for key, s := range state {
					if s == lockHeld {
						pass.Reportf(ev.pos, "%s is held across %s; release the lock before blocking", key, ev.desc)
					}
				}
			}
		})
	}

	// Exit check: whatever is still held when the function returns must
	// be covered by a deferred unlock.
	exitState, ok := in[g.Exit]
	if !ok {
		return // no path reaches a return (an intentional run-forever loop)
	}
	deferred := deferredUnlockKeys(info, g.Defers)
	for key, st := range exitState {
		if deferred[key] {
			continue
		}
		pos := lockPos[key]
		if !pos.IsValid() {
			continue // locked only in dead code or through an untracked path
		}
		switch st {
		case lockHeld:
			pass.Reportf(pos, "%s is still held at every return: add an Unlock or defer %s.Unlock()", key, key)
		case lockMaybe:
			pass.Reportf(pos, "%s is released on some paths but not others: an early return would leak the lock", key)
		}
	}
}

// lockEvents extracts the mutex operations and blocking points of one
// block node, in source order. Nested function literals are skipped
// (they execute elsewhere); loop headers and select statements added to
// blocks by the CFG builder are handled structurally so clause/body
// statements belonging to other blocks are not re-visited.
func lockEvents(info *types.Info, n ast.Node, comms map[ast.Node]bool) []lockEvent {
	var evs []lockEvent

	var scan func(n ast.Node, commExempt bool)
	scan = func(n ast.Node, commExempt bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.SelectStmt:
			// Header node: the blocking event is the select itself; its
			// clauses live in successor blocks.
			if !selectHasDefault(n) {
				evs = append(evs, lockEvent{pos: n.Pos(), op: "block", desc: "a select without default"})
			}
			return
		case *ast.RangeStmt:
			// Header node: only the range expression evaluates here.
			scan(n.X, false)
			return
		case *ast.DeferStmt:
			return // runs at exit; modeled via CFG.Defers
		case *ast.GoStmt:
			// The spawned call runs elsewhere; only its arguments are
			// evaluated here.
			for _, a := range n.Call.Args {
				scan(a, false)
			}
			return
		case *ast.SendStmt:
			scan(n.Chan, false)
			scan(n.Value, false)
			if !commExempt {
				evs = append(evs, lockEvent{pos: n.Pos(), op: "block", desc: "a channel send"})
			}
			return
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				scan(n.X, false)
				if !commExempt {
					evs = append(evs, lockEvent{pos: n.Pos(), op: "block", desc: "a channel receive"})
				}
				return
			}
		case *ast.CallExpr:
			for _, a := range n.Args {
				scan(a, false)
			}
			if ev, ok := mutexOp(info, n); ok {
				evs = append(evs, ev)
				return
			}
			scan(n.Fun, false)
			if desc, ok := blockingCall(info, n); ok {
				evs = append(evs, lockEvent{pos: n.Pos(), op: "block", desc: desc})
			}
			return
		}
		exempt := commExempt || comms[n]
		for _, c := range childNodes(n) {
			scan(c, exempt)
		}
	}
	scan(n, comms[n])
	return evs
}

// childNodes lists the direct children of n.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	depth := 0
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			depth--
			return true
		}
		depth++
		if depth == 1 {
			return true // n itself
		}
		out = append(out, c)
		return false // children only, not grandchildren
	})
	return out
}

// mutexOp recognizes X.Lock/RLock/Unlock/RUnlock on a sync.Mutex or
// sync.RWMutex reachable through a stable selector path. Read locks are
// tracked under a separate "path (rlock)" key so RLock/RUnlock balance
// is checked independently of the write side.
func mutexOp(info *types.Info, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var op string
	read := false
	switch sel.Sel.Name {
	case "Lock":
		op = "lock"
	case "RLock":
		op, read = "lock", true
	case "Unlock":
		op = "unlock"
	case "RUnlock":
		op, read = "unlock", true
	default:
		return lockEvent{}, false
	}
	tv, okT := info.Types[sel.X]
	if !okT || !isMutexType(derefType(tv.Type)) {
		return lockEvent{}, false
	}
	path, okP := stablePath(sel.X)
	if !okP {
		return lockEvent{}, false
	}
	if read {
		path += " (rlock)"
	}
	return lockEvent{pos: call.Pos(), op: op, key: path, read: read}, true
}

// blockingCall recognizes calls that can block unboundedly while a lock
// is held. sync.Cond.Wait is deliberately absent: it releases the
// associated mutex while waiting.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
		if tv, ok := info.Types[sel.X]; ok && namedFrom(tv.Type, "sync", "WaitGroup") {
			return "sync.WaitGroup.Wait", true
		}
	}
	if isWireEnvelopeCall(info, call) {
		return "a wire RPC (Call)", true
	}
	return "", false
}

// deferredUnlockKeys collects the mutex paths released by deferred
// calls, looking through one level of deferred closure (`defer func() {
// ...; mu.Unlock() }()`).
func deferredUnlockKeys(info *types.Info, defers []*ast.CallExpr) map[string]bool {
	keys := map[string]bool{}
	addIfUnlock := func(call *ast.CallExpr) {
		if ev, ok := mutexOp(info, call); ok && ev.op == "unlock" {
			keys[ev.key] = true
		}
	}
	for _, d := range defers {
		addIfUnlock(d)
		if lit, ok := d.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					addIfUnlock(call)
				}
				return true
			})
		}
	}
	return keys
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// stablePath renders an ident/selector chain ("m.inner.mu") as a key, or
// fails for expressions involving calls or indexing.
func stablePath(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := stablePath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}
