package sched

import (
	"fmt"
	"sort"
	"time"
)

// SlaveKind labels the hardware class of a slave for reports; the scheduler
// itself is agnostic and only looks at observed speeds.
type SlaveKind int

const (
	// KindCPU marks a multicore/SSE slave.
	KindCPU SlaveKind = iota
	// KindGPU marks a GPU slave.
	KindGPU
	// KindFPGA marks a reconfigurable-accelerator slave (the paper's
	// future-work integration, modeled after Meng & Chaudhary [13]).
	KindFPGA
)

// String returns the conventional label of the slave kind.
func (k SlaveKind) String() string {
	switch k {
	case KindCPU:
		return "CPU"
	case KindGPU:
		return "GPU"
	case KindFPGA:
		return "FPGA"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// SlaveInfo is what a slave announces at registration.
type SlaveInfo struct {
	Name string
	Kind SlaveKind
	// DeclaredSpeed is the slave's theoretical speed in cells/second, used
	// by the WFixed baseline and as a fallback before any observation
	// exists. Zero means undeclared.
	DeclaredSpeed float64
	// Caps lists the task kinds this slave can execute. Nil keeps the
	// historical contract — full Smith-Waterman scans only — so every
	// pre-existing slave, the discrete-event runner and the simulator stay
	// on the paper's single-kind path without declaring anything.
	Caps []TaskKind
}

// CanRun reports whether a slave with the given declared capabilities can
// execute task kind k. Nil caps mean the historical SW-only contract.
func CanRun(caps []TaskKind, k TaskKind) bool {
	if caps == nil {
		return k == TaskSW
	}
	for _, c := range caps {
		if c == k {
			return true
		}
	}
	return false
}

// Result is one collected task result.
type Result struct {
	Task    TaskID
	QueryID string
	Slave   SlaveID       // who finished first
	At      time.Duration // completion time
	Payload any           // domain result (e.g. per-database-sequence scores)
}

// Assignment records one allocation interaction for traces and the Fig. 5
// style Gantt reconstructions.
type Assignment struct {
	Time    time.Duration
	Slave   SlaveID
	Tasks   []TaskID
	Replica bool // true when granted by the workload adjustment mechanism
}

// Config selects the coordinator's behaviour.
type Config struct {
	Policy Policy // task allocation policy; nil means PSS
	Adjust bool   // enable the workload adjustment mechanism (§IV-A.3)
	Omega  int    // PSS notification window; <1 means DefaultOmega
	// GainThreshold is the minimum estimated completion-time improvement
	// — as a fraction of the requester's own execution time — required
	// before the adjustment mechanism replicates a task. 0 means the
	// default (0.1); negative means replicate on any positive gain.
	// Higher values avoid wasted replicas at the cost of slower rescue.
	GainThreshold float64
	// Tenants maps tenant names to fair-share weights (default 1 for any
	// tenant not listed, including the anonymous ""). Weights scale the
	// dominant-resource share each tenant is entitled to; they only matter
	// once tasks carry tenants.
	Tenants map[string]float64
	// Preempt enables priority/share preemption of *replicated* task
	// copies (see Coordinator.Preempt). Sole-copy tasks are never touched.
	Preempt bool
	// PreemptFactor is the dominant-score imbalance (victim over claimant)
	// required before a share preemption fires; 0 means the default 1.5.
	PreemptFactor float64
	// Metrics, when non-nil, receives task-lifecycle counters, pool-depth
	// gauges and per-slave rate gauges (see NewMetrics). The coordinator is
	// clock-agnostic, so the same hooks serve the wall-clock master and the
	// discrete-event runner.
	Metrics *Metrics
}

type slaveState struct {
	info      SlaveInfo
	hist      *History
	executing map[TaskID]bool
	// order lists the slave's live assigned tasks oldest-first (its queue,
	// as far as the master can know it); credit is the cell count the
	// slave has reported done since its last completion. Together they let
	// the workload adjustment mechanism estimate when a given queued task
	// will finish: tasks deep in a backlogged queue have distant ETAs.
	order  []TaskID
	credit int64
	dead   bool
	// lastContact is the time of the slave's most recent protocol
	// interaction; the lease-based failure detector (Expire) declares a
	// slave dead when it stays silent for longer than the lease.
	lastContact time.Duration
}

// assign records a new live task at the back of the slave's queue.
func (s *slaveState) assign(tid TaskID) {
	s.executing[tid] = true
	s.order = append(s.order, tid)
}

// drop removes a task from the slave's live set, absorbing the progress
// credit the slave accumulated against it.
func (s *slaveState) drop(tid TaskID, cells int64) {
	if !s.executing[tid] {
		return
	}
	delete(s.executing, tid)
	for i, id := range s.order {
		if id == tid {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.credit -= cells
	if s.credit < 0 {
		s.credit = 0
	}
}

// Coordinator is the master-side scheduling state machine (§IV): it
// registers slaves, grants tasks according to the configured policy,
// ingests progress notifications, applies the workload adjustment
// mechanism when the ready queue drains, and collects results (first
// completion wins).
//
// The coordinator is deliberately passive: every method takes `now` and the
// caller (wall-clock master or discrete-event simulation) owns the clock.
// Methods are not safe for concurrent use; wrap with a mutex when driven
// from multiple goroutines.
type Coordinator struct {
	cfg     Config
	pool    *Pool
	slaves  []*slaveState
	results map[TaskID]Result
	log     []Assignment
	// mixedKinds latches true once any non-SW task enters the pool; until
	// then nil-caps slaves take the kind-blind fast path.
	mixedKinds bool
	// mixedTenants latches true once any task carries a tenant (or weights
	// are configured); until then grants take the tenant-blind fast path
	// and the share ledgers stay empty.
	mixedTenants bool
	tenants      map[string]*tenantShare
	preemptLog   []PreemptEvent
}

// NewCoordinator builds a coordinator over the job's tasks.
func NewCoordinator(tasks []Task, cfg Config) *Coordinator {
	if cfg.Policy == nil {
		cfg.Policy = &PSS{}
	}
	if cfg.Omega < 1 {
		cfg.Omega = DefaultOmega
	}
	c := &Coordinator{
		cfg:     cfg,
		pool:    NewPool(tasks),
		results: make(map[TaskID]Result, len(tasks)),
		tenants: map[string]*tenantShare{},
	}
	if len(cfg.Tenants) > 0 {
		c.mixedTenants = true
	}
	for _, t := range tasks {
		if t.Kind != TaskSW {
			c.mixedKinds = true
		}
		if t.Tenant != "" {
			c.mixedTenants = true
		}
	}
	c.syncGauges()
	return c
}

// syncGauges refreshes the pool-depth and slave-count gauges after any
// state transition. Cheap enough to call unconditionally from every
// mutating method.
func (c *Coordinator) syncGauges() {
	m := c.cfg.Metrics
	if m == nil {
		return
	}
	m.ReadyTasks.Set(float64(c.pool.Ready()))
	m.ExecutingTasks.Set(float64(c.pool.ExecutingCount()))
	m.FinishedTasks.Set(float64(c.pool.Finished()))
	m.AliveSlaves.Set(float64(c.aliveSlaves()))
}

// gaugeRate publishes the slave's current speed estimate in GCUPS.
func (c *Coordinator) gaugeRate(id SlaveID) {
	m := c.cfg.Metrics
	if m == nil {
		return
	}
	m.SlaveRate.With(c.slaveLabel(id)).Set(c.SpeedOf(id) / 1e9)
}

// slaveLabel is the metric label for a slave: its registered name, or a
// synthetic one when it registered anonymously.
func (c *Coordinator) slaveLabel(id SlaveID) string {
	if name := c.slaves[id].info.Name; name != "" {
		return name
	}
	return fmt.Sprintf("slave%d", int(id))
}

// abandonToPool routes every executor-removal through one place so the
// requeue counter sees each executing->ready fallback exactly once and the
// tenant share ledger releases the task when it leaves the in-flight set.
func (c *Coordinator) abandonToPool(tid TaskID, sid SlaveID) {
	wasExecuting := c.pool.StateOf(tid) == Executing
	c.pool.Abandon(tid, sid)
	if wasExecuting && c.pool.StateOf(tid) == Ready {
		c.tenantRelease(c.pool.Task(tid), false)
		if m := c.cfg.Metrics; m != nil {
			m.TasksRequeued.Inc()
		}
	}
}

// Pool exposes the underlying task pool (read-mostly; used by reports).
func (c *Coordinator) Pool() *Pool { return c.pool }

// Policy returns the active allocation policy.
func (c *Coordinator) Policy() Policy { return c.cfg.Policy }

// Register adds a slave and returns its ID. The speed history is anchored
// at the registration instant so the first progress delta is divided by
// time the slave actually spent working.
func (c *Coordinator) Register(info SlaveInfo, now time.Duration) SlaveID {
	hist := NewHistory(c.cfg.Omega)
	hist.Anchor(now)
	c.slaves = append(c.slaves, &slaveState{
		info:        info,
		hist:        hist,
		executing:   map[TaskID]bool{},
		lastContact: now,
	})
	c.syncGauges()
	return SlaveID(len(c.slaves) - 1)
}

// Slaves returns how many slaves have registered (including dead ones).
func (c *Coordinator) Slaves() int { return len(c.slaves) }

// SlaveInfoOf returns the registration info of a slave.
func (c *Coordinator) SlaveInfoOf(id SlaveID) SlaveInfo { return c.slaves[id].info }

// SpeedOf returns the best current speed estimate for a slave: the Ω-window
// weighted mean if any notifications arrived, otherwise the declared speed,
// otherwise 0 (unknown).
func (c *Coordinator) SpeedOf(id SlaveID) float64 {
	s := c.slaves[id]
	if v, ok := s.hist.Speed(); ok {
		return v
	}
	return s.info.DeclaredSpeed
}

// Progress ingests a periodic notification: cells processed by the slave
// since its previous notification. The cells also feed the slave's backlog
// estimate used by the workload adjustment mechanism. Notifications from
// dead (expired) slaves are discarded.
func (c *Coordinator) Progress(id SlaveID, cells int64, now time.Duration) {
	s := c.slaves[id]
	if s.dead {
		return
	}
	s.lastContact = now
	s.hist.Observe(cells, now)
	if cells > 0 {
		s.credit += cells
	}
	c.gaugeRate(id)
}

// ProgressRate ingests a directly measured speed sample (cells/second) plus
// the cells completed since the previous notification. Notifications from
// dead (expired) slaves are discarded.
func (c *Coordinator) ProgressRate(id SlaveID, cellsPerSecond float64, cells int64, now time.Duration) {
	s := c.slaves[id]
	if s.dead {
		return
	}
	s.lastContact = now
	s.hist.ObserveRate(cellsPerSecond, now)
	if cells > 0 {
		s.credit += cells
	}
	c.gaugeRate(id)
}

// RequestWork grants tasks to an idle slave. The policy decides how many
// ready tasks the slave receives; when the ready queue is empty and the
// workload adjustment mechanism is enabled, the slave may instead receive a
// copy of a task that is still executing elsewhere (replica = true). An
// empty result with Done() false means the slave should stand by; with
// Done() true the job is over.
func (c *Coordinator) RequestWork(id SlaveID, now time.Duration) (tasks []Task, replica bool) {
	if c.slaves[id].dead {
		return nil, false
	}
	c.slaves[id].lastContact = now
	// Retransmission. The protocol is pull-based — a slave asks for work
	// only when idle — so a request from a slave the coordinator still
	// considers busy means the previous Assign response never reached it
	// (the connection dropped, or the reply was lost, after the grant was
	// recorded). Re-deliver the outstanding tasks instead of granting
	// more: without this those tasks starve forever, because the slave
	// keeps talking (so the lease never expires) and no policy ever
	// grants an executing task a second time.
	if s := c.slaves[id]; len(s.order) > 0 {
		tasks = make([]Task, 0, len(s.order))
		for _, tid := range s.order {
			tasks = append(tasks, c.pool.Task(tid))
		}
		if m := c.cfg.Metrics; m != nil {
			m.TasksRedelivered.Add(float64(len(tasks)))
		}
		return tasks, false
	}
	// The slave only sees — and is only granted — ready tasks whose kind it
	// declared capability for, so heterogeneous pipelines never strand a
	// rescore task on a prefilter-only slave or vice versa. For nil caps
	// (every pre-existing slave) allow stays kind-blind on the single-kind
	// pool and this is the paper's original path.
	allow := c.allowFor(id)
	req := Request{
		Slave:          id,
		Ready:          c.pool.ReadyFunc(allow),
		Total:          c.pool.Len(),
		Slaves:         c.aliveSlaves(),
		Speeds:         make([]float64, len(c.slaves)),
		DeclaredSpeeds: make([]float64, len(c.slaves)),
	}
	for i, s := range c.slaves {
		if s.dead {
			continue
		}
		if v, ok := s.hist.Speed(); ok {
			req.Speeds[i] = v
		}
		req.DeclaredSpeeds[i] = s.info.DeclaredSpeed
	}
	n := c.cfg.Policy.Grant(req)
	if n == 0 && req.Ready > 0 {
		// Recovery grant: static policies (Fixed/WFixed) hand out their
		// quota once, so a task requeued later — because a slave died or
		// abandoned it — would otherwise be stranded with no policy
		// willing to grant it. Any idle slave asking while ready tasks
		// exist gets one, degrading gracefully to self-scheduling for the
		// recovered tail.
		n = 1
	}
	if n > 0 {
		tasks = c.takeReadyFair(n, allow, id, now)
		for _, t := range tasks {
			c.slaves[id].assign(t.ID)
		}
		if len(tasks) > 0 {
			c.log = append(c.log, Assignment{Time: now, Slave: id, Tasks: taskIDs(tasks)})
			if m := c.cfg.Metrics; m != nil {
				m.TasksAssigned.Add(float64(len(tasks)))
			}
			c.syncGauges()
			return tasks, false
		}
	}
	if c.pool.Ready() == 0 && c.cfg.Adjust {
		if tid, ok := c.selectReplica(id, now); ok {
			c.pool.AddExecutor(tid, id, now)
			c.slaves[id].assign(tid)
			c.log = append(c.log, Assignment{Time: now, Slave: id, Tasks: []TaskID{tid}, Replica: true})
			if m := c.cfg.Metrics; m != nil {
				m.TasksReplicated.Inc()
			}
			return []Task{c.pool.Task(tid)}, true
		}
	}
	return nil, false
}

// selectReplica implements the workload adjustment choice: among tasks in
// the executing state that the requester is not already running, pick the
// one whose estimated completion time the requester would improve the most.
//
// A task's completion estimate on a current executor accounts for queue
// position and reported progress: ETA = now + (cells of the executor's live
// tasks up to and including this one, minus its progress credit) / speed.
// The requester would start fresh: myETA = now + cells/speed(requester). A
// replica is only worthwhile when the gain clears 10% of the requester's
// own execution time, which stops equally-slow peers from replicating each
// other's nearly-finished tasks on speed-estimate noise.
//
// When speeds are unknown the estimates degenerate and the longest-assigned
// task is chosen, matching the paper's plain description of the mechanism.
func (c *Coordinator) selectReplica(id SlaveID, now time.Duration) (TaskID, bool) {
	vr := c.SpeedOf(id)
	bestGain := time.Duration(-1 << 62)
	bestID := TaskID(-1)
	var oldestStart time.Duration = 1 << 62
	var oldestID TaskID = -1
	allow := c.allowFor(id)
	for _, tid := range c.pool.ExecutingTasks() {
		execs := c.pool.Executors(tid)
		if _, mine := execs[id]; mine {
			continue
		}
		task := c.pool.Task(tid)
		if allow != nil && !allow(task) {
			// The requester cannot execute this kind; replicating it there
			// would only burn an assignment slot.
			continue
		}
		// Earliest estimated completion among current executors.
		var bestETA time.Duration = 1 << 62
		known := false
		var earliestStart time.Duration = 1 << 62
		for sid, start := range execs {
			if start < earliestStart {
				earliestStart = start
			}
			ve := c.SpeedOf(sid)
			if ve <= 0 {
				continue
			}
			remaining := c.backlogThrough(sid, tid)
			eta := now + time.Duration(float64(remaining)/ve*float64(time.Second))
			known = true
			if eta < bestETA {
				bestETA = eta
			}
		}
		if earliestStart < oldestStart {
			oldestStart, oldestID = earliestStart, tid
		}
		if vr <= 0 || !known {
			continue
		}
		myDur := time.Duration(float64(task.Cells) / vr * float64(time.Second))
		gain := bestETA - (now + myDur)
		threshold := time.Duration(float64(myDur) * c.gainThreshold())
		if gain > threshold && gain > bestGain {
			bestGain, bestID = gain, tid
		}
	}
	if bestID >= 0 {
		return bestID, true
	}
	if vr <= 0 && oldestID >= 0 {
		// No speed information at all: fall back to replicating the task
		// that has been assigned the longest.
		return oldestID, true
	}
	return -1, false
}

// allowFor builds the grant filter for a slave: nil (kind-blind) when the
// slave's declared capabilities already cover every kind present, otherwise
// a predicate admitting only kinds the slave can run. Returning nil for the
// common single-kind case keeps the historical fast path allocation-free.
func (c *Coordinator) allowFor(id SlaveID) func(Task) bool {
	caps := c.slaves[id].info.Caps
	if caps == nil {
		// Historical contract: SW-only. On a pure-SW pool (the paper's
		// workload) no filtering is needed at all.
		if !c.mixedKinds {
			return nil
		}
		return func(t Task) bool { return t.Kind == TaskSW }
	}
	return func(t Task) bool { return CanRun(caps, t.Kind) }
}

// AddTasks appends follow-on tasks to the pool mid-job and returns their
// assigned IDs — the growth path for heterogeneous pipelines (a filtered
// search appends each query's rescore task the moment its prefilter
// completes). The caller must invoke it from the same single-threaded
// context as the other Coordinator methods.
func (c *Coordinator) AddTasks(tasks []Task) []TaskID {
	ids := c.pool.Append(tasks)
	for _, t := range tasks {
		if t.Kind != TaskSW {
			c.mixedKinds = true
		}
		if t.Tenant != "" {
			c.mixedTenants = true
		}
	}
	if m := c.cfg.Metrics; m != nil {
		m.TasksAdded.Add(float64(len(tasks)))
	}
	c.syncGauges()
	return ids
}

// gainThreshold resolves the configured replication threshold.
func (c *Coordinator) gainThreshold() float64 {
	switch {
	case c.cfg.GainThreshold > 0:
		return c.cfg.GainThreshold
	case c.cfg.GainThreshold < 0:
		return 0
	default:
		return 0.1
	}
}

// backlogThrough estimates the cells slave sid must still process before
// task tid completes: the cells of its live queue up to and including tid,
// less the progress it has reported.
func (c *Coordinator) backlogThrough(sid SlaveID, tid TaskID) int64 {
	s := c.slaves[sid]
	var sum int64
	for _, id := range s.order {
		sum += c.pool.Task(id).Cells
		if id == tid {
			break
		}
	}
	sum -= s.credit
	if sum < 0 {
		sum = 0
	}
	return sum
}

// Complete records that a slave finished a task. accepted is false when
// another copy already finished (the result is discarded). cancel lists the
// slaves still executing moot copies; the caller should notify them so they
// can abandon the work and request something useful.
func (c *Coordinator) Complete(id SlaveID, tid TaskID, payload any, now time.Duration) (accepted bool, cancel []SlaveID) {
	task := c.pool.Task(tid)
	if !c.slaves[id].dead {
		c.slaves[id].lastContact = now
	}
	if !c.slaves[id].executing[tid] {
		// A completion for a task this slave does not hold: either the
		// task already finished elsewhere (normal race) or the slave is
		// confused/malicious. Either way the result is discarded.
		return false, nil
	}
	c.slaves[id].drop(tid, task.Cells)
	if c.pool.StateOf(tid) == Finished {
		return false, nil
	}
	first, others := c.pool.Complete(tid, id, now)
	if !first {
		return false, nil
	}
	c.results[tid] = Result{Task: tid, QueryID: task.QueryID, Slave: id, At: now, Payload: payload}
	c.tenantRelease(task, true)
	for _, o := range others {
		c.slaves[o].drop(tid, task.Cells)
	}
	if m := c.cfg.Metrics; m != nil {
		m.TasksCompleted.Inc()
	}
	c.syncGauges()
	return true, others
}

// CompleteWork is Complete plus the final progress delta the slave
// measured since its last notification. Before this existed, the cells a
// slave processed between its last periodic notification and the task's
// completion were silently lost, so PSS speed estimates and the backlog
// accounting undercounted short tasks. cells and rate come straight off
// the wire (wire.CompleteMsg); zero values mean "no delta to report".
func (c *Coordinator) CompleteWork(id SlaveID, tid TaskID, payload any, cells int64, rate float64, now time.Duration) (accepted bool, cancel []SlaveID) {
	s := c.slaves[id]
	if !s.dead && s.executing[tid] {
		if rate > 0 {
			s.hist.ObserveRate(rate, now)
		} else if cells > 0 {
			s.hist.Observe(cells, now)
		}
		if cells > 0 {
			s.credit += cells
		}
		// Publish the refreshed estimate: tasks short enough to finish
		// inside one notification interval would otherwise never move the
		// per-slave rate gauge.
		c.gaugeRate(id)
	}
	return c.Complete(id, tid, payload, now)
}

// Abandon records that a slave gave up a task (cancellation acknowledged).
func (c *Coordinator) Abandon(id SlaveID, tid TaskID) {
	c.slaves[id].drop(tid, c.pool.Task(tid).Cells)
	c.abandonToPool(tid, id)
	c.syncGauges()
}

// SlaveDied removes a slave: its executing tasks lose an executor and
// return to ready if no other copy runs (the paper's future-work item of
// nodes leaving mid-run).
func (c *Coordinator) SlaveDied(id SlaveID) {
	s := c.slaves[id]
	if s.dead {
		return
	}
	s.dead = true
	for tid := range s.executing {
		c.abandonToPool(tid, id)
	}
	s.executing = map[TaskID]bool{}
	s.order = nil
	s.credit = 0
	if m := c.cfg.Metrics; m != nil {
		m.SlaveRate.With(c.slaveLabel(id)).Set(0)
	}
	c.syncGauges()
}

// Expire is the lease-based failure detector: every slave silent for
// longer than lease is declared dead via the SlaveDied path (its tasks
// requeue) and reported. The paper's environment assumes slaves either
// answer or their connection drops; Expire additionally catches the hung
// slave — process alive, socket open, no progress — that would otherwise
// stall its executing tasks forever when the workload adjustment mechanism
// is off. The lease must comfortably exceed the slaves' notification and
// standby-poll intervals or healthy-but-quiet slaves get reaped.
//
// Like every Coordinator method it is clock-agnostic: the wall-clock
// master drives it from a ticker and the discrete-event runner from a
// recurring simulated event, so both clocks exercise the same code.
func (c *Coordinator) Expire(now, lease time.Duration) []SlaveID {
	if lease <= 0 {
		return nil
	}
	var expired []SlaveID
	for i, s := range c.slaves {
		if s.dead || now-s.lastContact <= lease {
			continue
		}
		c.SlaveDied(SlaveID(i))
		expired = append(expired, SlaveID(i))
		if m := c.cfg.Metrics; m != nil {
			m.LeaseExpirations.Inc()
		}
	}
	return expired
}

// Dead reports whether a slave has been declared dead (connection drop or
// lease expiry). A dead slave's ID is never reused; a returning slave must
// re-register for a fresh one.
func (c *Coordinator) Dead(id SlaveID) bool { return c.slaves[id].dead }

// LastContact returns the time of the slave's most recent protocol
// interaction.
func (c *Coordinator) LastContact(id SlaveID) time.Duration {
	return c.slaves[id].lastContact
}

func (c *Coordinator) aliveSlaves() int {
	n := 0
	for _, s := range c.slaves {
		if !s.dead {
			n++
		}
	}
	return n
}

// Done reports whether every task has a result.
func (c *Coordinator) Done() bool { return c.pool.Done() }

// Results returns the collected results ordered by task ID (the master's
// "merge results" step).
func (c *Coordinator) Results() []Result {
	out := make([]Result, 0, len(c.results))
	for _, r := range c.results {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// AssignmentLog returns every allocation interaction in time order.
func (c *Coordinator) AssignmentLog() []Assignment { return c.log }

func taskIDs(ts []Task) []TaskID {
	out := make([]TaskID, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	return out
}
