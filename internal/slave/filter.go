package slave

import (
	"fmt"

	"repro/internal/farrar"
	"repro/internal/prefilter"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/wire"
)

// Prefilterer is the optional engine interface for the first stage of a
// filtered search: compile the query's k-mer seeds and scan the resident
// database for candidate windows. Like the GPU kernel launch, the scan is
// not interruptible; cancellation is observed at the call boundaries (the
// pass costs ~1/PrefilterEquivCells of a full scan, so the exposure is
// small).
type Prefilterer interface {
	Prefilter(query *seq.Sequence, spec prefilter.Spec, cancel <-chan struct{}) (prefilter.Result, error)
}

// WindowRescorer is the optional engine interface for the second stage:
// full Smith-Waterman restricted to candidate windows, returning one hit
// per database sequence (score 0 where the prefilter admitted nothing) so
// results rank exactly like a full scan's.
type WindowRescorer interface {
	RescoreWindows(query *seq.Sequence, windows []sched.Window, cancel <-chan struct{}) ([]wire.Hit, error)
}

// EngineCaps derives the capability list a slave registers with from the
// optional interfaces its engine implements. SW-only engines return nil —
// the historical registration shape — so their wire traffic is unchanged.
func EngineCaps(eng Engine) []sched.TaskKind {
	caps := []sched.TaskKind{sched.TaskSW}
	if _, ok := eng.(Prefilterer); ok {
		caps = append(caps, sched.TaskPrefilter)
	}
	if _, ok := eng.(WindowRescorer); ok {
		caps = append(caps, sched.TaskRescore)
	}
	if len(caps) == 1 {
		return nil
	}
	return caps
}

// prefilterPass is the shared Prefilterer body of the CPU engines.
func prefilterPass(db []*seq.Sequence, query *seq.Sequence, spec prefilter.Spec, cancel <-chan struct{}, pmet *prefilter.Metrics) (prefilter.Result, error) {
	select {
	case <-cancel:
		return prefilter.Result{}, ErrCanceled
	default:
	}
	res, err := prefilter.Run(query.Residues, db, spec)
	if err != nil {
		return prefilter.Result{}, err
	}
	select {
	case <-cancel:
		return prefilter.Result{}, ErrCanceled
	default:
	}
	pmet.Observe(res.Stats)
	return res, nil
}

// rescorePass is the shared WindowRescorer body of the CPU engines.
func rescorePass(db []*seq.Sequence, scheme score.Scheme, query *seq.Sequence, windows []sched.Window, cancel <-chan struct{}, kmet *farrar.Metrics) ([]wire.Hit, error) {
	select {
	case <-cancel:
		return nil, ErrCanceled
	default:
	}
	r, err := prefilter.NewRescorer(query.Residues, scheme)
	if err != nil {
		return nil, err
	}
	scores, _, err := r.Rescore(db, windows)
	if err != nil {
		return nil, err
	}
	select {
	case <-cancel:
		return nil, ErrCanceled
	default:
	}
	kmet.Observe(r.Stats())
	hits := make([]wire.Hit, len(db))
	for i, d := range db {
		hits[i] = wire.Hit{SeqID: d.ID, Index: i, Score: scores[i]}
	}
	return hits, nil
}

// SetPrefilterMetrics attaches the prefilter instrumentation bundle; each
// Prefilter pass observes its Stats on completion.
func (e *FarrarEngine) SetPrefilterMetrics(m *prefilter.Metrics) { e.pmet = m }

// Prefilter implements Prefilterer.
func (e *FarrarEngine) Prefilter(query *seq.Sequence, spec prefilter.Spec, cancel <-chan struct{}) (prefilter.Result, error) {
	return prefilterPass(e.db, query, spec, cancel, e.pmet)
}

// RescoreWindows implements WindowRescorer.
func (e *FarrarEngine) RescoreWindows(query *seq.Sequence, windows []sched.Window, cancel <-chan struct{}) ([]wire.Hit, error) {
	return rescorePass(e.db, e.scheme, query, windows, cancel, e.kmet)
}

// SetPrefilterMetrics attaches the prefilter instrumentation bundle.
func (e *SwipeEngine) SetPrefilterMetrics(m *prefilter.Metrics) { e.pmet = m }

// Prefilter implements Prefilterer.
func (e *SwipeEngine) Prefilter(query *seq.Sequence, spec prefilter.Spec, cancel <-chan struct{}) (prefilter.Result, error) {
	return prefilterPass(e.db, query, spec, cancel, e.pmet)
}

// RescoreWindows implements WindowRescorer. The rescore runs through the
// Farrar kernel rather than the inter-sequence SWIPE kernel: windows are
// few and uneven, which defeats SWIPE's lane packing.
func (e *SwipeEngine) RescoreWindows(query *seq.Sequence, windows []sched.Window, cancel <-chan struct{}) ([]wire.Hit, error) {
	return rescorePass(e.db, e.scheme, query, windows, cancel, nil)
}

// SetPrefilterMetrics attaches the prefilter instrumentation bundle.
func (e *MulticoreEngine) SetPrefilterMetrics(m *prefilter.Metrics) { e.pmet = m }

// Prefilter implements Prefilterer.
func (e *MulticoreEngine) Prefilter(query *seq.Sequence, spec prefilter.Spec, cancel <-chan struct{}) (prefilter.Result, error) {
	return prefilterPass(e.db, query, spec, cancel, e.pmet)
}

// RescoreWindows implements WindowRescorer.
func (e *MulticoreEngine) RescoreWindows(query *seq.Sequence, windows []sched.Window, cancel <-chan struct{}) ([]wire.Hit, error) {
	return rescorePass(e.db, e.scheme, query, windows, cancel, e.kmet)
}

// runStage executes the kind-specific body of one task and returns the
// completion payload: hits for SW and rescore tasks, windows plus
// selectivity accounting for prefilter tasks.
func runStage(eng Engine, spec wire.TaskSpec, query *seq.Sequence, progress func(int64), cancel <-chan struct{}) (hits []wire.Hit, windows []sched.Window, scanned, candidates int64, err error) {
	switch spec.TaskKind {
	case sched.TaskSW:
		hits, err = eng.Search(query, progress, cancel)
		return hits, nil, 0, 0, err
	case sched.TaskPrefilter:
		pf, ok := eng.(Prefilterer)
		if !ok {
			return nil, nil, 0, 0, fmt.Errorf("slave: engine %q cannot execute %s tasks", eng.Name(), spec.TaskKind)
		}
		var fspec prefilter.Spec
		if spec.Filter != nil {
			fspec = *spec.Filter
		}
		res, err := pf.Prefilter(query, fspec, cancel)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		// The pass is done: report the task's full cell-equivalent budget
		// so the master's speed estimate sees the work.
		if progress != nil {
			progress(spec.Cells)
		}
		return nil, res.Windows, res.Stats.ResiduesScanned, res.Stats.CandidateResidues, nil
	case sched.TaskRescore:
		rs, ok := eng.(WindowRescorer)
		if !ok {
			return nil, nil, 0, 0, fmt.Errorf("slave: engine %q cannot execute %s tasks", eng.Name(), spec.TaskKind)
		}
		hits, err = rs.RescoreWindows(query, spec.Windows, cancel)
		if err == nil && progress != nil {
			progress(spec.Cells)
		}
		return hits, nil, 0, 0, err
	default:
		return nil, nil, 0, 0, fmt.Errorf("slave: unknown task kind %v", spec.TaskKind)
	}
}
