package platform

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/metrics"
)

// TestEventLogTraceContract locks in the cross-package contract: a
// metrics.Event line (wall-clock master) must parse into an identical
// platform.TraceEvent (discrete-event trace), because the two packages
// cannot share the type but promise the same JSON shape.
func TestEventLogTraceContract(t *testing.T) {
	in := metrics.Event{
		Kind: "exec", TimeSec: 1.5, PE: "GPU1",
		Tasks: []int{3, 4}, Replica: true,
		GCUPS: 2.25,
		Task:  7, EndSec: 9.75, Completed: true,
		CellsDone: 12345, TasksWon: 3, BusySec: 8.5,
		MakespanSec: 100.25, TotalGCUPS: 3.5,
	}
	var buf bytes.Buffer
	if err := metrics.NewEventLog(&buf).Emit(in); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("event-log line unreadable as a trace: %v", err)
	}
	want := TraceEvent{
		Kind: "exec", TimeSec: 1.5, PE: "GPU1",
		Tasks: []int{3, 4}, Replica: true,
		GCUPS: 2.25,
		Task:  7, EndSec: 9.75, Completed: true,
		CellsDone: 12345, TasksWon: 3, BusySec: 8.5,
		MakespanSec: 100.25, TotalGCUPS: 3.5,
	}
	if len(evs) != 1 || !reflect.DeepEqual(evs[0], want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", evs, want)
	}
}

// TestEventLogTraceTagsMatch verifies the two structs declare the same
// JSON tags field for field, so a new field added to one side without the
// other fails here instead of silently dropping data.
func TestEventLogTraceTagsMatch(t *testing.T) {
	tags := func(v any) map[string]string {
		out := map[string]string{}
		rt := reflect.TypeOf(v)
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			out[f.Name] = f.Tag.Get("json")
		}
		return out
	}
	a, b := tags(TraceEvent{}), tags(metrics.Event{})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("field/tag mismatch:\n platform.TraceEvent: %v\n metrics.Event:       %v", a, b)
	}
}
