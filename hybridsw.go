// Package hybridsw is a Go reproduction of "Biological Sequence Comparison
// on Hybrid Platforms with Dynamic Workload Adjustment" (Mendonça & de
// Melo, IEEE IPDPSW 2013).
//
// It provides, end to end:
//
//   - exact Smith-Waterman database search with the adapted Farrar striped
//     kernel (emulated SSE2) and a CUDASW++ 2.0-style engine with a
//     simulated GPU device model;
//   - the paper's master/slave task execution environment with the SS and
//     PSS allocation policies, the Fixed/WFixed baselines, and the dynamic
//     workload adjustment mechanism (task replication to idle slaves);
//   - a calibrated virtual-time platform that reproduces the paper's
//     evaluation (Tables III-V, Figures 5-8) without the 2013 GPU testbed.
//
// # Quick start
//
//	db := hybridsw.GenerateDatabase("UniProtKB/SwissProt", 0.0001, 1)
//	queries := hybridsw.GenerateQueries(db, 4, 100, 500, 2)
//	report, err := hybridsw.Search(queries, db, hybridsw.Platform{
//		GPUs: 1, SSECores: 2, Policy: "PSS", Adjust: true, TopK: 5,
//	})
//
// Search runs a real computation on the calling machine (the "GPUs" are
// simulated devices computing true scores). Simulate runs the same
// scheduler against the calibrated virtual-time platform to predict the
// behaviour of the paper's 4-GPU/8-core testbed; see also cmd/benchtables.
package hybridsw

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cudasw"
	"repro/internal/dataset"
	"repro/internal/farrar"
	"repro/internal/master"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/prefilter"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/slave"
	"repro/internal/stats"
	"repro/internal/sw"
	"repro/internal/wire"
)

// Sequence is a named biological sequence.
type Sequence = seq.Sequence

// Scheme bundles a substitution matrix with gap penalties.
type Scheme = score.Scheme

// Alignment is a traceback alignment (see Align).
type Alignment = sw.Alignment

// Hit is one query-vs-database-sequence score.
type Hit = wire.Hit

// QueryResult is the merged search outcome for one query.
type QueryResult = master.QueryResult

// FilterSpec parameterizes the filtered pipeline's prefilter stage (k-mer
// seed length, stride, window margin, pattern budget). The zero value uses
// the prefilter defaults.
type FilterSpec = prefilter.Spec

// FilterStats is the filtered pipeline's accounting: per-stage completion
// counts, residues scanned vs admitted, and rescored vs full-scan DP cells.
type FilterStats = master.FilterStats

// DefaultScheme returns the paper's scoring: BLOSUM62, gap open 10,
// gap extend 2.
func DefaultScheme() Scheme { return score.DefaultProtein() }

// Score computes the optimal Smith-Waterman local alignment score.
func Score(query, target []byte, s Scheme) int { return sw.Score(query, target, s) }

// Align computes an optimal local alignment with full traceback.
func Align(query, target []byte, s Scheme) *Alignment { return sw.Align(query, target, s) }

// AlignLinearSpace computes an optimal local alignment in O(m+n) memory
// (Myers-Miller), for sequences whose DP matrix would not fit.
func AlignLinearSpace(query, target []byte, s Scheme) *Alignment {
	return sw.AlignLinearSpace(query, target, s)
}

// GenerateDatabase builds a deterministic synthetic database with the size
// profile of one of the paper's Table II databases (see DatabaseNames),
// scaled by the given factor.
func GenerateDatabase(name string, scale float64, seed int64) ([]*Sequence, error) {
	p, err := dataset.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	if scale > 0 && scale != 1 {
		p = p.Scale(scale)
	}
	return dataset.Generate(p, seed), nil
}

// DatabaseNames lists the Table II database profiles.
func DatabaseNames() []string {
	var out []string
	for _, p := range dataset.TableII() {
		out = append(out, p.Name)
	}
	return out
}

// GenerateQueries derives n queries with lengths equally distributed in
// [minLen, maxLen] from database content, the paper's query-selection rule.
func GenerateQueries(db []*Sequence, n, minLen, maxLen int, seed int64) []*Sequence {
	return dataset.Queries(db, n, minLen, maxLen, seed)
}

// Platform describes the local hybrid platform for Search.
type Platform struct {
	GPUs     int    // simulated CUDASW++ devices (real scores, modeled cost)
	SSECores int    // CPU engines
	Policy   string // "SS", "PSS" (default), "Fixed", "WFixed"
	Adjust   bool   // enable the workload adjustment mechanism
	Omega    int    // PSS history window; 0 = default
	TopK     int    // hits returned per query; 0 = all
	Scheme   Scheme // zero value = DefaultScheme

	// CPUKernel selects the CPU engines' algorithm: "farrar" (default, the
	// paper's adapted striped kernel), "swipe" (inter-sequence SIMD per
	// Rognes [17]) or "multicore" (whole-host Fig. 3b engine; see
	// CoresPerHost).
	CPUKernel string
	// CoresPerHost sets the worker count of each "multicore" engine;
	// 0 uses all available cores.
	CoresPerHost int
	// AlignBest ships the traceback alignment of each query's best hit.
	AlignBest bool

	// Mode selects the pipeline: "" or "full" runs the exhaustive scan;
	// "filtered" runs the two-stage pipeline (Aho-Corasick seed prefilter,
	// then Smith-Waterman rescore restricted to the candidate windows).
	// Filtered mode needs at least one CPU engine — the GPU engine is
	// SW-only and sits out both filtered stages.
	Mode string
	// Filter parameterizes the prefilter stage in filtered mode; the zero
	// value uses the prefilter defaults.
	Filter FilterSpec
	// StageProgress, when non-nil, observes filtered-stage completions with
	// cumulative done/total query counts (stage is "prefilter" or
	// "rescore"). Called under the master's lock: keep it fast.
	StageProgress func(stage string, done, total int64)

	// Registry, when non-nil, receives scheduler, wire and slave metrics
	// from every Search run (see internal/metrics). Repeated Searches on
	// the same registry accumulate into the same families.
	Registry *metrics.Registry
	// Events, when non-nil, receives the master's assign/sample/exec/summary
	// event-log lines, one JSON object per line, in the same shape the
	// virtual-time platform writes its trace.
	Events *metrics.EventLog
}

// Report is the outcome of a Search.
type Report struct {
	PerQuery []QueryResult
	Elapsed  time.Duration
	// Cells is the job's DP cell count: query×database for the full scan,
	// the (smaller) rescored total in filtered mode.
	Cells int64
	// Filter carries the two-stage pipeline's accounting; nil for the full
	// scan.
	Filter *FilterStats
}

// GCUPS returns the achieved billions of cell updates per second.
func (r *Report) GCUPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Cells) / r.Elapsed.Seconds() / 1e9
}

// Search compares every query against the database on an in-process hybrid
// platform: the master/slave environment runs with real engines on real
// data, wall-clock time, and the selected allocation policy.
func Search(queries, db []*Sequence, p Platform) (*Report, error) {
	//swcheck:ignore ctxflow Search is the deliberate no-ctx compatibility API; SearchContext is the threaded variant
	return SearchContext(context.Background(), queries, db, p)
}

// ctxCaller gates a slave's protocol calls on a context. While the context
// is live, calls pass through and the caller tracks which tasks the master
// assigned on this connection. Once the context is cancelled it stops
// dispatching to the master: work requests are answered with Done (no new
// tasks start) and progress notifications are acknowledged with a
// cancellation of every task still assigned here, which closes the engine's
// cancel channel and aborts the in-flight scan. Completions that race the
// cancellation still reach the master so its accounting stays consistent.
type ctxCaller struct {
	ctx   context.Context
	inner wire.Caller

	mu sync.Mutex
	// pending are tasks assigned through this caller and not yet finished
	// with (completed, or cancelled by the master or the context).
	pending map[sched.TaskID]bool
}

func newCtxCaller(ctx context.Context, inner wire.Caller) *ctxCaller {
	return &ctxCaller{ctx: ctx, inner: inner, pending: map[sched.TaskID]bool{}}
}

// Call implements wire.Caller.
func (c *ctxCaller) Call(req wire.Envelope) (wire.Envelope, error) {
	if c.ctx.Err() != nil {
		switch {
		case req.Request != nil:
			return wire.Envelope{Assign: &wire.AssignMsg{Done: true}}, nil
		case req.Progress != nil:
			return wire.Envelope{ProgressAck: &wire.ProgressAckMsg{
				Cancel: c.takePending(), Done: true,
			}}, nil
		}
		// Register and Complete still go to the (in-process) master:
		// registration is the session's first call and completions keep the
		// coordinator's books straight for results that beat the cancel.
	}
	resp, err := c.inner.Call(req)
	if err != nil {
		return resp, err
	}
	c.track(req, resp)
	return resp, nil
}

// track maintains the pending-task set from the live protocol flow.
func (c *ctxCaller) track(req, resp wire.Envelope) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if resp.Assign != nil {
		for _, t := range resp.Assign.Tasks {
			c.pending[t.ID] = true
		}
	}
	if req.Complete != nil {
		delete(c.pending, req.Complete.Task)
	}
	var cancels []sched.TaskID
	if resp.ProgressAck != nil {
		cancels = resp.ProgressAck.Cancel
	}
	if resp.CompleteAck != nil {
		cancels = resp.CompleteAck.Cancel
	}
	for _, id := range cancels {
		delete(c.pending, id)
	}
}

// takePending drains the pending-task set for a synthetic cancellation ack.
func (c *ctxCaller) takePending() []sched.TaskID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]sched.TaskID, 0, len(c.pending))
	for id := range c.pending {
		out = append(out, id)
	}
	c.pending = map[sched.TaskID]bool{}
	return out
}

// Close implements wire.Caller.
func (c *ctxCaller) Close() error { return c.inner.Close() }

// SearchContext is Search with cancellation: when ctx is cancelled the
// slaves stop asking for new tasks and every in-flight task is aborted
// through the engines' cancel channels (the same path a replica's victory
// uses), so a cancelled search releases its CPU promptly instead of
// finishing the whole job. It returns ctx.Err() when cancelled before the
// job completed.
func SearchContext(ctx context.Context, queries, db []*Sequence, p Platform) (*Report, error) {
	if p.GPUs+p.SSECores == 0 {
		p.SSECores = 1
	}
	if p.Policy == "" {
		p.Policy = "PSS"
	}
	if p.Scheme.Matrix == nil {
		p.Scheme = DefaultScheme()
	}
	pol, err := sched.NewPolicy(p.Policy)
	if err != nil {
		return nil, err
	}
	var filtered bool
	switch p.Mode {
	case "", "full":
	case "filtered":
		filtered = true
		if p.SSECores < 1 {
			return nil, fmt.Errorf("hybridsw: filtered mode needs at least one CPU engine (the GPU engine is SW-only)")
		}
	default:
		return nil, fmt.Errorf("hybridsw: unknown mode %q", p.Mode)
	}
	var residues int64
	for _, d := range db {
		residues += int64(d.Len())
	}
	m, err := master.New(master.Config{
		Queries:       queries,
		DBResidues:    residues,
		Policy:        pol,
		Adjust:        p.Adjust,
		Omega:         p.Omega,
		Registry:      p.Registry,
		Events:        p.Events,
		Filtered:      filtered,
		Filter:        p.Filter,
		StageProgress: p.StageProgress,
	})
	if err != nil {
		return nil, err
	}
	var slaveMet *slave.Metrics
	var wireMet *wire.Metrics
	var kernMet *farrar.Metrics
	if p.Registry != nil {
		slaveMet = slave.NewMetrics(p.Registry)
		wireMet = wire.NewMetrics(p.Registry)
		kernMet = farrar.NewMetrics(p.Registry)
	}

	var engines []slave.Engine
	for i := 0; i < p.GPUs; i++ {
		eng, err := slave.NewGPUEngine(fmt.Sprintf("GPU%d", i+1), cudasw.GTX580(), p.Scheme, db, 0)
		if err != nil {
			return nil, err
		}
		engines = append(engines, eng)
	}
	for i := 0; i < p.SSECores; i++ {
		var eng slave.Engine
		var err error
		name := fmt.Sprintf("SSE%d", i+1)
		switch p.CPUKernel {
		case "", "farrar":
			eng, err = slave.NewFarrarEngine(name, p.Scheme, db, 0)
		case "swipe":
			eng, err = slave.NewSwipeEngine(name, p.Scheme, db, 0)
		case "multicore":
			eng, err = slave.NewMulticoreEngine(name, p.Scheme, db, p.CoresPerHost, 0)
		default:
			return nil, fmt.Errorf("hybridsw: unknown CPU kernel %q", p.CPUKernel)
		}
		if err != nil {
			return nil, err
		}
		engines = append(engines, eng)
	}
	if kernMet != nil {
		// Engines whose compute core is a farrar.Kernel publish the
		// 8/16/scalar fallback telemetry their workers would otherwise drop.
		for _, eng := range engines {
			if ke, ok := eng.(interface{ SetKernelMetrics(*farrar.Metrics) }); ok {
				ke.SetKernelMetrics(kernMet)
			}
		}
	}
	if p.Registry != nil && filtered {
		pmet := prefilter.NewMetrics(p.Registry)
		for _, eng := range engines {
			if pe, ok := eng.(interface {
				SetPrefilterMetrics(*prefilter.Metrics)
			}); ok {
				pe.SetPrefilterMetrics(pmet)
			}
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(engines))
	for i, eng := range engines {
		wg.Add(1)
		go func(i int, eng slave.Engine) {
			defer wg.Done()
			_, errs[i] = slave.Run(newCtxCaller(ctx, wire.Meter(wire.Local{H: m}, wireMet)), eng, slave.Options{
				NotifyEvery: 50 * time.Millisecond,
				Poll:        10 * time.Millisecond,
				TopK:        p.TopK,
				AlignBest:   p.AlignBest,
				Metrics:     slaveMet,
			})
		}(i, eng)
	}
	//swcheck:ignore ctxflow the joined slaves are ctx-gated via newCtxCaller, so cancellation already unblocks this join; returning before it would leak engine goroutines
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		// Cancelled mid-job: the slaves have stopped, but the master never
		// saw every task complete, so its done channel will not close.
		return nil, err
	}
	if err := m.Wait(time.Second); err != nil {
		return nil, err
	}

	rep := &Report{PerQuery: m.Results(), Elapsed: m.Elapsed()}
	if filtered {
		fs := m.FilterStats()
		rep.Filter = &fs
		rep.Cells = fs.RescoredCells
	} else {
		for _, q := range queries {
			rep.Cells += int64(q.Len()) * residues
		}
	}
	return rep, nil
}

// HitEValue returns the Karlin-Altschul E-value of a raw hit score for a
// query of queryLen residues against a database of dbResidues total
// residues, and whether exact statistical parameters were tabulated for the
// scheme (otherwise a conservative fallback is used; exact=false with an
// unusable result means the scheme has no statistics at all).
func HitEValue(s Scheme, raw, queryLen int, dbResidues int64) (evalue float64, exact bool) {
	p, exact := stats.Lookup(s)
	if p.Validate() != nil {
		return 0, false
	}
	return p.EValue(raw, queryLen, dbResidues), exact
}

// SimResult is the outcome of a virtual-time Simulate run.
type SimResult = platform.Result

// Simulate predicts the behaviour of the paper's testbed: the same
// scheduler code runs against the calibrated discrete-event platform
// (GTX 580 GPUs, 2.71-GCUPS SSE cores) for the named Table II database and
// the paper's 40-query workload.
func Simulate(database string, gpus, sseCores int, policy string, adjust bool, seed int64) (*SimResult, error) {
	p, err := dataset.ProfileByName(database)
	if err != nil {
		return nil, err
	}
	pol, err := sched.NewPolicy(policy)
	if err != nil {
		return nil, err
	}
	lengths := dataset.QueryLengths(40, 100, 5000)
	tasks := make([]sched.Task, len(lengths))
	for i, n := range lengths {
		tasks[i] = sched.Task{QueryID: fmt.Sprintf("Q%02d", i), Cells: int64(n) * p.Residues()}
	}
	return platform.Run(platform.Experiment{
		Tasks:       tasks,
		PEs:         platform.Hybrid(gpus, sseCores),
		Policy:      pol,
		Adjust:      adjust,
		CommLatency: 200 * time.Microsecond,
		NotifyEvery: 500 * time.Millisecond,
		Seed:        seed,
	})
}
