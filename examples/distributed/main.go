// Distributed runs the full TCP deployment in one process: a master
// listening on the loopback interface and three slaves (one simulated GPU,
// two SSE cores) that dial in, register, and pull tasks — the paper's
// two-host Gigabit Ethernet setup in miniature. See cmd/swmaster and
// cmd/swslave for the separate binaries.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	hybridsw "repro"
	"repro/internal/cudasw"
	"repro/internal/master"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/slave"
	"repro/internal/wire"
)

func main() {
	db, err := hybridsw.GenerateDatabase("RefSeq Human Proteins", 0.001, 11)
	if err != nil {
		log.Fatal(err)
	}
	queries := hybridsw.GenerateQueries(db, 5, 60, 250, 12)
	var residues int64
	for _, d := range db {
		residues += int64(d.Len())
	}

	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: residues,
		Policy:     &sched.PSS{},
		Adjust:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := m.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Printf("master listening on %s (%d tasks)\n", l.Addr(), len(queries))

	mkEngines := func() []slave.Engine {
		gpu, err := slave.NewGPUEngine("gpu1", cudasw.GTX580(), score.DefaultProtein(), db, 0)
		if err != nil {
			log.Fatal(err)
		}
		sse1, _ := slave.NewFarrarEngine("sse1", score.DefaultProtein(), db, 0)
		sse2, _ := slave.NewFarrarEngine("sse2", score.DefaultProtein(), db, 0)
		return []slave.Engine{gpu, sse1, sse2}
	}

	var wg sync.WaitGroup
	for _, eng := range mkEngines() {
		wg.Add(1)
		go func(eng slave.Engine) {
			defer wg.Done()
			client, err := wire.DialTimeout(l.Addr().String(), 5*time.Second)
			if err != nil {
				log.Fatal(err)
			}
			defer client.Close()
			n, err := slave.Run(client, eng, slave.Options{
				NotifyEvery: 50 * time.Millisecond,
				TopK:        2,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("slave %s executed %d task(s)\n", eng.Name(), n)
		}(eng)
	}
	wg.Wait()
	if err := m.Wait(5 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\njob complete in %.2fs\n", m.Elapsed().Seconds())
	for _, r := range m.Results() {
		fmt.Printf("%-14s -> slave %d, best hit %s=%d\n",
			r.Query, r.Slave, r.Hits[0].SeqID, r.Hits[0].Score)
	}
}
