package platform

import (
	"testing"

	"repro/internal/sched"
)

// TestNativeCalibrationAnchors pins the two families of anchors: the
// paper's published numbers (which the discrete-event experiments depend
// on) and the measured native-kernel numbers from BENCH_2026-08-08.json.
// If a rebenchmark moves the native constants, update them together with
// the archived BENCH json; the paper anchors must never move.
func TestNativeCalibrationAnchors(t *testing.T) {
	if SSECoreGCUPS != 2.71 {
		t.Errorf("SSECoreGCUPS = %v, want the Table III anchor 2.71", SSECoreGCUPS)
	}
	if PaperSSECoreGCUPS != SSECoreGCUPS {
		t.Errorf("PaperSSECoreGCUPS = %v, must alias SSECoreGCUPS = %v", PaperSSECoreGCUPS, SSECoreGCUPS)
	}
	if !(NativeSSECoreGCUPS > EmulatedSSECoreGCUPS) {
		t.Errorf("native (%v GCUPS) must beat emulated (%v GCUPS)", NativeSSECoreGCUPS, EmulatedSSECoreGCUPS)
	}
	if ratio := NativeSSECoreGCUPS / EmulatedSSECoreGCUPS; ratio < 5 {
		t.Errorf("SWAR/emulated ratio = %.2f, want >= 5 (the tier's acceptance bar)", ratio)
	}
	if NativeSSECoreGCUPS >= PaperSSECoreGCUPS {
		t.Errorf("native %v GCUPS should not exceed the paper's hand-tuned SSE %v", NativeSSECoreGCUPS, PaperSSECoreGCUPS)
	}
}

func TestNativeSSEPE(t *testing.T) {
	pe := NativeSSEPE("CPU1")
	if pe.Kind != sched.KindCPU {
		t.Errorf("Kind = %v, want KindCPU", pe.Kind)
	}
	if pe.CellsPerSec != NativeSSECoreGCUPS*1e9 {
		t.Errorf("CellsPerSec = %v, want %v", pe.CellsPerSec, NativeSSECoreGCUPS*1e9)
	}
	if pe.TaskOverhead != SSETaskOverhead || pe.Jitter != DedicatedJitter {
		t.Errorf("overhead/jitter = %v/%v, want the shared SSE values %v/%v",
			pe.TaskOverhead, pe.Jitter, SSETaskOverhead, DedicatedJitter)
	}
}
