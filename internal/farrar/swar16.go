package farrar

import "repro/internal/simd/swar"

// This file is the native-speed 16-bit fallback tier: 4 word lanes packed
// in a uint64. Unlike the emulated ScoreI16 — which transcribes the SSE
// original's *signed* 16-bit arithmetic — this kernel keeps Farrar's
// biased *unsigned* formulation from the 8-bit tier, because the unsigned
// saturating bit tricks are what a packed word computes cheaply. The two
// renderings agree wherever both certify a score:
//
//   - Unsigned E/F hold max(signed E/F, 0); a clamped-to-zero gap state
//     can never win a max against H >= 0, so H is identical.
//   - The unsigned cells clip at 65535 while bias+matrix.Max() <= 32767
//     (the tier16 admission bound), so no cell under 32767 is ever
//     clipped; conversely any clipped run has best >= 32767 in both
//     kernels. Escalating at best >= 32767 therefore makes the two
//     implementations return identical (score, ok) pairs.

// buildSwarProfile16 packs the striped biased word profile: 16-bit lane l
// of swarProf16[r][s] holds score(query[l*segLen+s], r) + bias.
func (k *Kernel) buildSwarProfile16() {
	m := len(k.query)
	k.swarSegLen16 = (m + swar.Lanes16 - 1) / swar.Lanes16
	alpha := k.scheme.Matrix.Alphabet()
	k.swarProf16 = make([][]uint64, alpha.Size()+1)
	for r := 0; r <= alpha.Size(); r++ {
		segs := make([]uint64, k.swarSegLen16)
		var row []int
		if r < alpha.Size() {
			row = k.scheme.Matrix.Row(r)
		}
		for s := 0; s < k.swarSegLen16; s++ {
			var v uint64
			for l := 0; l < swar.Lanes16; l++ {
				qi := l*k.swarSegLen16 + s
				if qi >= m {
					continue // padding lanes hold biased zero so phantom rows never grow
				}
				sc := k.scheme.Matrix.Min()
				if row != nil {
					sc = row[alpha.Index(k.query[qi])]
				}
				v |= uint64(uint16(sc+k.bias)) << (16 * l)
			}
			segs[s] = v
		}
		k.swarProf16[r] = segs
	}
}

// ScoreSWAR16 runs the packed-word 16-bit kernel. ok is false when the
// score reached the ladder's 32767 ceiling.
func (k *Kernel) ScoreSWAR16(target []byte) (sc int, ok bool) {
	if len(target) == 0 {
		return 0, true
	}
	if !k.tier16 {
		return 0, false
	}
	if k.swarProf16 == nil {
		k.buildSwarProfile16()
	}
	segLen := k.swarSegLen16
	alpha := k.scheme.Matrix.Alphabet()
	vBias := swar.Splat16(uint16(k.bias))
	vGapOE := swar.Splat16(uint16(k.scheme.Gap.Open + k.scheme.Gap.Extend))
	vGapE := swar.Splat16(uint16(k.scheme.Gap.Extend))
	var vMax uint64

	vHLoad := make([]uint64, segLen)
	vHStore := make([]uint64, segLen)
	vE := make([]uint64, segLen)

	for _, c := range target {
		ri := alpha.Index(c)
		if ri < 0 {
			ri = alpha.Size()
		}
		prof := k.swarProf16[ri][:segLen] // len hint: elides bounds checks below

		var vF uint64
		vH := swar.ShiftLane16(vHLoad[segLen-1])
		for s := 0; s < segLen; s++ {
			vH = swar.SubSat16(swar.AddSat16(vH, prof[s]), vBias)
			vH = swar.Max16(vH, vE[s])
			vH = swar.Max16(vH, vF)
			vMax = swar.Max16(vMax, vH)
			vHStore[s] = vH

			vHGap := swar.SubSat16(vH, vGapOE)
			vE[s] = swar.Max16(swar.SubSat16(vE[s], vGapE), vHGap)
			vF = swar.Max16(swar.SubSat16(vF, vGapE), vHGap)
			vH = vHLoad[s]
		}

		// Lazy-F correction. The unsigned rendering shifts zeros in (F at
		// the row-0 boundary clamps to the zero floor, not -infinity), and
		// a zero lane can never beat a saturating-subtracted threshold by
		// strict greater-than, so the carry still retires after Lanes16
		// sweeps. Guard expiry escalates, as everywhere else.
		vF = swar.ShiftLane16(vF)
		for s, guard := 0, segLen*(swar.Lanes16+1); swar.AnyGt16(vF, swar.SubSat16(vHStore[s], vGapOE)); guard-- {
			if guard <= 0 {
				return 0, false
			}
			nh := swar.Max16(vHStore[s], vF)
			if nh != vHStore[s] {
				vHStore[s] = nh
				vMax = swar.Max16(vMax, nh)
				vE[s] = swar.Max16(vE[s], swar.SubSat16(nh, vGapOE))
			}
			vF = swar.SubSat16(vF, vGapE)
			if s++; s == segLen {
				s = 0
				vF = swar.ShiftLane16(vF)
			}
		}

		vHLoad, vHStore = vHStore, vHLoad
	}
	best := int(swar.HMax16(vMax))
	if best >= 32767 {
		return 0, false
	}
	return best, true
}
