// Hybridsearch compares the platform configurations of the paper's Table V
// on a real (scaled-down) workload: the same query set is searched on
// SSE-only, GPU-only and hybrid in-process platforms, and the wall-clock
// times and GCUPS are reported side by side.
package main

import (
	"fmt"
	"log"

	hybridsw "repro"
)

func main() {
	db, err := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.002, 7)
	if err != nil {
		log.Fatal(err)
	}
	queries := hybridsw.GenerateQueries(db, 8, 60, 400, 8)
	var residues int64
	for _, d := range db {
		residues += int64(d.Len())
	}
	fmt.Printf("workload: %d queries x %d sequences (%d residues)\n\n", len(queries), len(db), residues)

	configs := []struct {
		name       string
		gpus, sses int
	}{
		{"1 SSE core ", 0, 1},
		{"2 SSE cores", 0, 2},
		{"1 GPU      ", 1, 0},
		{"1 GPU+2 SSE", 1, 2},
	}
	fmt.Println("configuration   time (s)   GCUPS")
	for _, c := range configs {
		rep, err := hybridsw.Search(queries, db, hybridsw.Platform{
			GPUs:     c.gpus,
			SSECores: c.sses,
			Policy:   "PSS",
			Adjust:   true,
			TopK:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s    %8.2f  %6.3f\n", c.name, rep.Elapsed.Seconds(), rep.GCUPS())
	}
	fmt.Println("\nNote: this is a real computation on this machine, so absolute")
	fmt.Println("numbers reflect the Go kernels, not the 2013 testbed; run")
	fmt.Println("cmd/benchtables for the calibrated virtual-time reproduction.")
}
