// Package master implements the wall-clock master process of the task
// execution environment (§IV, Fig. 4): it acquires the query sequences,
// builds one very coarse-grained task per query, registers slaves, assigns
// tasks through the configured allocation policy (with the workload
// adjustment mechanism), merges the results and reports them to the user.
//
// The scheduling brain is the same sched.Coordinator that drives the
// virtual-time experiments, and the protocol brain is Core — a
// clock-passed, single-threaded dispatch state machine shared with the
// deterministic cluster simulator (internal/sim). This file only adds the
// wall clock, the mutex and the network plumbing.
package master

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/prefilter"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/wire"
)

// Config describes one job.
type Config struct {
	Queries    []*seq.Sequence
	DBResidues int64        // database size, for task cell counts
	Policy     sched.Policy // nil means PSS
	Adjust     bool
	Omega      int
	// Lease enables lease-based failure detection: a slave that stays
	// silent for longer than this is declared dead and its tasks requeue,
	// which rescues jobs from hung slaves (process alive, connection open,
	// no progress) that SlaveGone never notices. Must comfortably exceed
	// the slaves' notification and standby-poll intervals. 0 disables.
	Lease time.Duration
	// Registry, when non-nil, attaches the job's full instrumentation to it:
	// the coordinator's task-lifecycle counters and depth gauges
	// (sched.NewMetrics), the master's protocol counters, and — for
	// connections served through Listen — wire dispatch latency histograms.
	Registry *metrics.Registry
	// Events, when non-nil, receives the structured scheduler event stream
	// (assign/sample/exec/summary JSON lines) in the same shapes the
	// discrete-event runner's platform.WriteTrace emits, so one toolchain
	// reads wall-clock and simulated runs.
	Events *metrics.EventLog

	// Filtered selects the two-stage pipeline: an Aho-Corasick prefilter
	// task per query, then Smith-Waterman rescore tasks over the candidate
	// windows. Slaves must declare the matching capabilities (CPU engines
	// do; the GPU engine is SW-only).
	Filtered bool
	// Filter parameterizes the prefilter stage; the zero value uses the
	// prefilter defaults. Ignored unless Filtered.
	Filter prefilter.Spec
	// StageProgress, when non-nil, is invoked on every accepted stage
	// completion of a filtered job with cumulative done/total counts
	// (stage is "prefilter" or "rescore"). Called under the master's lock:
	// keep it fast and never call back into the master.
	StageProgress func(stage string, done, total int64)
	// Progress, when non-nil, is invoked on every progress report and
	// accepted completion with the job's authoritative finished-cell tally
	// (replicated scans are not double-counted) and the reporting slave's
	// instantaneous rate. Called under the master's lock: keep it fast and
	// never call back into the master. The cluster backend folds per-shard
	// progress out of this hook.
	Progress func(doneCells int64, rate float64)
}

// schedConfig derives the coordinator configuration, attaching scheduler
// metrics when a registry is present. sched.NewMetrics is idempotent per
// registry, so calling this more than once (New + LoadCheckpoint restore)
// re-attaches to the same families.
func (cfg Config) schedConfig() sched.Config {
	sc := sched.Config{
		Policy: cfg.Policy,
		Adjust: cfg.Adjust,
		Omega:  cfg.Omega,
	}
	if cfg.Registry != nil {
		sc.Metrics = sched.NewMetrics(cfg.Registry)
	}
	return sc
}

// masterMetrics are the master-process protocol counters.
type masterMetrics struct {
	registrations *metrics.Counter
	deadSlaves    *metrics.Counter
	messages      *metrics.CounterVec
}

func newMasterMetrics(r *metrics.Registry) *masterMetrics {
	return &masterMetrics{
		registrations: r.Counter("master_registrations_total", "Slave registrations accepted."),
		deadSlaves:    r.Counter("master_dead_slaves_total", "Slaves declared dead (connection drop or lease expiry)."),
		messages:      r.CounterVec("master_messages_total", "Protocol messages dispatched, by kind.", "kind"),
	}
}

// QueryResult is the merged outcome for one query.
type QueryResult struct {
	Query    string
	Hits     []wire.Hit // best-first
	Slave    sched.SlaveID
	Elapsed  time.Duration // completion time relative to job start
	Replicas int           // how many extra copies the adjustment mechanism ran
}

// Master serves one job to any number of slaves. The struct follows the
// lockguard grouping convention: fields above mu are set once in New and
// never reassigned (channels synchronize themselves; the instrumentation
// hooks are nil unless Config.Registry/Events were set); the group below
// mu is what mu guards.
type Master struct {
	start time.Time
	lease time.Duration
	// done closes when every task has a result.
	done chan struct{}
	// stop ends the lease-expiry ticker when the master is shut down
	// before the job completes (Close); loopDone closes when the ticker
	// goroutine has actually exited, so Close can join it.
	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}
	// serveErr receives each Listen serve loop's terminal error.
	serveErr chan error
	met      *masterMetrics
	wireMet  *wire.Metrics

	mu     sync.Mutex
	core   *Core
	closed bool
}

// New builds a master for the job.
func New(cfg Config) (*Master, error) {
	var core *Core
	var err error
	if cfg.Filtered {
		core, err = NewFilteredCore(cfg.Queries, cfg.DBResidues, cfg.Filter, cfg.schedConfig(), cfg.Events)
	} else {
		core, err = NewCore(cfg.Queries, cfg.DBResidues, cfg.schedConfig(), cfg.Events)
	}
	if err != nil {
		return nil, err
	}
	core.SetStageProgress(cfg.StageProgress)
	core.SetProgress(cfg.Progress)
	if cfg.Registry != nil {
		core.SetFilterMetrics(prefilter.NewMetrics(cfg.Registry))
	}
	m := &Master{
		core:     core,
		start:    time.Now(),
		done:     make(chan struct{}),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
		serveErr: make(chan error, 1),
		lease:    cfg.Lease,
	}
	if cfg.Registry != nil {
		m.met = newMasterMetrics(cfg.Registry)
		m.wireMet = wire.NewMetrics(cfg.Registry)
	}
	if m.lease > 0 {
		go m.expireLoop()
	}
	return m, nil
}

func (m *Master) now() time.Duration { return time.Since(m.start) }

// expireLoop drives the coordinator's lease-based failure detector on the
// wall clock, checking several times per lease so detection latency stays
// a small multiple of the lease itself.
func (m *Master) expireLoop() {
	defer close(m.loopDone)
	interval := m.lease / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-m.stop:
			return
		case <-t.C:
			m.mu.Lock()
			expired := m.core.Expire(m.now(), m.lease)
			if m.met != nil {
				m.met.deadSlaves.Add(float64(len(expired)))
			}
			m.mu.Unlock()
		}
	}
}

// Close stops the lease-expiry ticker and waits for it to exit, so callers
// can read coordinator state afterwards without racing the detector. It
// does not close listeners returned by Listen.
func (m *Master) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	if m.lease > 0 {
		<-m.loopDone
	}
}

// Dispatch implements wire.Handler: the single protocol entry point on the
// wall clock. All protocol behaviour lives in Core.Dispatch; this wrapper
// adds the lock, the clock, the protocol counters and the done channel.
func (m *Master) Dispatch(req wire.Envelope) wire.Envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.met != nil {
		m.met.messages.With(wire.KindOf(req).String()).Inc()
	}
	resp := m.core.Dispatch(req, m.now())
	if m.met != nil && req.Register != nil && resp.RegisterAck != nil {
		m.met.registrations.Inc()
	}
	if m.core.Done() && !m.closed {
		m.closed = true
		close(m.done)
	}
	return resp
}

// SlaveGone implements wire.Handler: a slave's connection dropped, so its
// tasks return to the pool (the paper's future-work scenario of nodes
// leaving mid-run).
func (m *Master) SlaveGone(id sched.SlaveID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.core.SlaveGone(id) && m.met != nil {
		m.met.deadSlaves.Inc()
	}
}

// Done returns a channel closed when every task has a result.
func (m *Master) Done() <-chan struct{} { return m.done }

// Wait blocks until the job completes or the timeout elapses.
func (m *Master) Wait(timeout time.Duration) error {
	select {
	case <-m.done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("master: job not finished after %v", timeout)
	}
}

// Results merges and returns the per-query outcomes, in query order.
func (m *Master) Results() []QueryResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.core.Results()
}

// FilterStats returns the filtered pipeline's accounting so far (zero for
// full-scan jobs).
func (m *Master) FilterStats() FilterStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.core.FilterStats()
}

// Elapsed returns the job's wall-clock duration so far (or final, once
// done).
func (m *Master) Elapsed() time.Duration { return m.now() }

// Coordinator exposes the scheduling state for reports.
func (m *Master) Coordinator() *sched.Coordinator {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.core.Coordinator()
}

// Listen binds addr and serves slave connections in the background. It
// returns the bound listener so callers can learn the address and close
// it. The serve loop's terminal error — an unexpected accept failure, or
// the routine "use of closed network connection" after the caller closes
// the listener — is delivered on ServeErrors instead of being discarded.
func (m *Master) Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// With a registry attached, every served connection's dispatches are
	// timed per message kind (wire_call_seconds).
	h := wire.MeterHandler(wire.Handler(m), m.wireMet)
	go func() {
		err := wire.Serve(l, h)
		select {
		case m.serveErr <- err:
		default: // nobody drained the previous error; keep the oldest
		}
	}()
	return l, nil
}

// ServeErrors exposes the terminal error of each Listen serve loop (one
// send per Listen call). The channel is buffered; if several serve loops
// end before anyone reads, only the first error is retained.
func (m *Master) ServeErrors() <-chan error { return m.serveErr }

// SaveCheckpoint writes the job's durable state (task set + collected
// results) as a gob stream. Restarting with LoadCheckpoint skips every
// finished task; unfinished ones re-run. Hit payloads are gob-registered by
// this package.
func (m *Master) SaveCheckpoint(w io.Writer) error {
	m.mu.Lock()
	snap := m.core.Snapshot()
	m.mu.Unlock()
	return gob.NewEncoder(w).Encode(snap)
}

// LoadCheckpoint rebuilds a master from a checkpoint. The same queries (in
// the same order) must be supplied — the checkpoint carries only scheduling
// state, not sequence data — and are verified against the snapshot.
func LoadCheckpoint(r io.Reader, cfg Config) (*Master, error) {
	var snap sched.Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("master: reading checkpoint: %w", err)
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	core, err := RestoreCore(&snap, cfg.Queries, cfg.schedConfig(), cfg.Events)
	if err != nil {
		return nil, err
	}
	// New may already have started the lease-expiry loop, which reads
	// m.core under the mutex — swap the restored core in under it.
	m.mu.Lock()
	m.core = core
	if m.core.Done() && !m.closed {
		m.closed = true
		close(m.done)
	}
	m.mu.Unlock()
	return m, nil
}

func init() {
	// Checkpoint payloads are the per-task hit lists, plus candidate
	// windows for filtered jobs' prefilter results.
	gob.Register([]wire.Hit{})
	gob.Register([]sched.Window{})
}
