package prefilter

import (
	"repro/internal/farrar"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/seq"
)

// Rescorer runs the second stage of the filtered search: the dispatched
// Farrar Smith-Waterman kernel restricted to candidate windows. Scores are
// per database sequence — the maximum over that sequence's windows, or 0
// (the local-alignment floor) for sequences the prefilter excluded — so a
// rescored score slice has the same shape as a full scan's and ranks
// identically whenever every hit's alignment lies inside an admitted
// window.
type Rescorer struct {
	kernel *farrar.Kernel
	qlen   int
}

// NewRescorer builds a rescorer for one query under the given scheme.
func NewRescorer(query []byte, s score.Scheme) (*Rescorer, error) {
	k, err := farrar.NewKernel(query, s)
	if err != nil {
		return nil, err
	}
	return &Rescorer{kernel: k, qlen: len(query)}, nil
}

// Rescore aligns the candidate windows and returns one score per database
// sequence plus the DP cells actually computed. Windows are validated
// against the database first (they may have crossed the wire).
func (r *Rescorer) Rescore(db []*seq.Sequence, windows []sched.Window) (scores []int, cells int64, err error) {
	if err := ValidateWindows(windows, db); err != nil {
		return nil, 0, err
	}
	scores = make([]int, len(db))
	for _, w := range windows {
		segment := db[w.Seq].Residues[w.Start:w.End]
		sc := r.kernel.Score(segment)
		cells += int64(r.qlen) * int64(len(segment))
		if sc > scores[w.Seq] {
			scores[w.Seq] = sc
		}
	}
	return scores, cells, nil
}

// CellsFor returns the DP cost of rescoring the given windows — the
// scheduling weight of a rescore task, in true SW cells.
func CellsFor(qlen int, windows []sched.Window) int64 {
	var cells int64
	for _, w := range windows {
		cells += int64(qlen) * int64(w.End-w.Start)
	}
	return cells
}

// Stats exposes the kernel's fallback-ladder telemetry accumulated across
// Rescore calls, for the farrar metrics bundle.
func (r *Rescorer) Stats() farrar.Stats { return r.kernel.Stats() }
