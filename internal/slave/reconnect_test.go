package slave

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/wire"
)

// testBackoff is a realistic reconnect schedule. The tests never wait it
// out: sleeps route through a virtualSleeper, so the schedule is asserted
// on — instantly and deterministically — instead of shrunk to
// microseconds and raced against the wall clock.
var testBackoff = wire.Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.1}

// virtualSleeper replaces wall-clock sleeps with an instant, recorded
// virtual clock (Options.Sleep).
type virtualSleeper struct {
	mu     sync.Mutex
	now    time.Duration
	delays []time.Duration
}

func (v *virtualSleeper) sleep(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now += d
	v.delays = append(v.delays, d)
}

func (v *virtualSleeper) recorded() (time.Duration, []time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now, append([]time.Duration(nil), v.delays...)
}

// dyingCaller forwards to a scripted master but starts failing every call
// after failAfter successful ones, simulating a connection that dies
// mid-session.
type dyingCaller struct {
	mu        sync.Mutex
	inner     wire.Caller
	failAfter int
	calls     int
}

func (d *dyingCaller) Call(req wire.Envelope) (wire.Envelope, error) {
	d.mu.Lock()
	d.calls++
	dead := d.calls > d.failAfter
	d.mu.Unlock()
	if dead {
		return wire.Envelope{}, fmt.Errorf("connection reset")
	}
	return d.inner.Call(req)
}

func (d *dyingCaller) Close() error { return nil }

func TestRunReconnectsAfterLostMaster(t *testing.T) {
	eng, specs := testEngine(t)
	m := &scriptedMaster{tasks: specs, doneAfter: len(specs)}
	// The first connection dies right after registration; the replacement
	// dial fails twice (master still restarting) before a healthy caller
	// comes back.
	first := &dyingCaller{inner: m, failAfter: 1}
	var dials, dialFailures int
	reconnect := func() (wire.Caller, error) {
		dials++
		if dials <= 2 {
			dialFailures++
			return nil, fmt.Errorf("connection refused")
		}
		return m, nil
	}
	vs := &virtualSleeper{}
	n, err := Run(first, eng, Options{
		NotifyEvery: time.Microsecond,
		Poll:        time.Millisecond,
		Reconnect:   reconnect,
		MaxRetries:  5,
		Backoff:     testBackoff,
		RetrySeed:   1,
		Sleep:       vs.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(specs) {
		t.Fatalf("completed %d tasks across reconnects, want %d", n, len(specs))
	}
	if dialFailures != 2 || dials != 3 {
		t.Fatalf("dials = %d (failures %d), want 3 with 2 failures", dials, dialFailures)
	}
	// One backoff sleep per reconnect attempt, escalating: the second
	// delay doubles the first (modulo ±10% jitter, which cannot mask a
	// doubling), and every delay respects the configured envelope.
	elapsed, delays := vs.recorded()
	if len(delays) != 3 {
		t.Fatalf("recorded %d backoff sleeps (%v), want one per dial (3)", len(delays), delays)
	}
	for i, d := range delays {
		if d < time.Duration(float64(testBackoff.Base)*0.9) || d > testBackoff.Cap {
			t.Errorf("delay %d = %v outside the backoff envelope [%v, %v]", i, d, testBackoff.Base, testBackoff.Cap)
		}
	}
	if delays[1] <= delays[0] {
		t.Errorf("backoff did not escalate: %v then %v", delays[0], delays[1])
	}
	if elapsed <= 0 {
		t.Error("no virtual time elapsed across reconnects")
	}
}

func TestRunGivesUpAfterMaxRetries(t *testing.T) {
	eng, _ := testEngine(t)
	dials := 0
	reconnect := func() (wire.Caller, error) {
		dials++
		return nil, fmt.Errorf("connection refused")
	}
	vs := &virtualSleeper{}
	_, err := Run(failCaller{err: fmt.Errorf("boom")}, eng, Options{
		Reconnect:  reconnect,
		MaxRetries: 3,
		Backoff:    testBackoff,
		RetrySeed:  1,
		Sleep:      vs.sleep,
	})
	if err == nil {
		t.Fatal("exhausted retries did not surface an error")
	}
	if !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("error = %v, want a giving-up message", err)
	}
	if dials != 3 {
		t.Fatalf("%d reconnect attempts, want MaxRetries = 3", dials)
	}
	if _, delays := vs.recorded(); len(delays) != 3 {
		t.Fatalf("recorded %d backoff sleeps, want one per attempt (3)", len(delays))
	}
}

func TestRunFailureBudgetResetsOnProgress(t *testing.T) {
	// Each session makes one successful round trip before its connection
	// dies. Because the session progressed, the consecutive-failure budget
	// resets every time, so far more than MaxRetries reconnections succeed.
	eng, specs := testEngine(t)
	m := &scriptedMaster{tasks: specs, doneAfter: len(specs)}
	// failAfter 3 = register + request + complete: each session finishes
	// exactly one task, then its next call fails. With MaxRetries 1 and no
	// budget reset, the second reconnect would give up; the reset lets the
	// job ride out one outage per task.
	sessions := 0
	reconnect := func() (wire.Caller, error) {
		sessions++
		return &dyingCaller{inner: m, failAfter: 3}, nil
	}
	first, _ := reconnect()
	vs := &virtualSleeper{}
	n, err := Run(first, eng, Options{
		NotifyEvery: time.Hour, // no periodic notifications
		Poll:        time.Millisecond,
		Reconnect:   reconnect,
		MaxRetries:  1,
		Backoff:     testBackoff,
		RetrySeed:   1,
		Sleep:       vs.sleep,
	})
	if err != nil {
		t.Fatalf("Run = %v after %d sessions", err, sessions)
	}
	if n != len(specs) {
		t.Fatalf("completed %d, want %d", n, len(specs))
	}
	if sessions != len(specs) {
		t.Fatalf("%d sessions, want one per task (%d)", sessions, len(specs))
	}
	// Every outage is the first consecutive failure (the budget reset), so
	// no delay ever escalates beyond the first backoff step.
	if _, delays := vs.recorded(); len(delays) > 0 {
		maxFirst := time.Duration(float64(testBackoff.Base) * 1.1)
		for i, d := range delays {
			if d > maxFirst {
				t.Errorf("delay %d = %v escalated beyond the first step (%v); failure budget did not reset", i, d, maxFirst)
			}
		}
	}
}

func TestCancelSetPrunedAfterTasks(t *testing.T) {
	eng, specs := testEngine(t)
	var sets []*cancelSet
	testCancelSet = func(c *cancelSet) { sets = append(sets, c) }
	defer func() { testCancelSet = nil }()

	// One task canceled mid-batch, the rest complete: every path must
	// forget its entry.
	m := &scriptedBatchMaster{batch: specs, cancelID: 1}
	if _, err := Run(m, eng, Options{NotifyEvery: time.Microsecond, Poll: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 {
		t.Fatalf("%d sessions, want 1", len(sets))
	}
	if got := sets[0].size(); got != 0 {
		t.Fatalf("cancelSet still tracks %d tasks after the session; completed and canceled entries must be pruned", got)
	}
}

func TestCancelSetForget(t *testing.T) {
	c := newCancelSet()
	ch := c.channelFor(7)
	c.add([]sched.TaskID{7, 8})
	select {
	case <-ch:
	default:
		t.Fatal("cancel channel not closed")
	}
	if c.size() != 2 {
		t.Fatalf("size = %d, want 2", c.size())
	}
	c.forget(7)
	c.forget(8)
	c.forget(8) // double-forget is a no-op
	if c.size() != 0 {
		t.Fatalf("size = %d after forget, want 0", c.size())
	}
	// A forgotten task re-canceled later gets a fresh, closed channel.
	c.add([]sched.TaskID{7})
	select {
	case <-c.channelFor(7):
	default:
		t.Fatal("re-added cancel not observable")
	}
}

func TestCompleteCarriesFinalDelta(t *testing.T) {
	// With notifications effectively disabled, the whole task's cells must
	// ride on the CompleteMsg; before the fix they were silently lost.
	eng, specs := testEngine(t)
	type final struct {
		cells int64
		rate  float64
	}
	var mu sync.Mutex
	finals := map[sched.TaskID]final{}
	m := &scriptedMaster{tasks: specs, doneAfter: len(specs)}
	recording := callerFunc(func(req wire.Envelope) (wire.Envelope, error) {
		if req.Complete != nil {
			mu.Lock()
			finals[req.Complete.Task] = final{req.Complete.Cells, req.Complete.Rate}
			mu.Unlock()
		}
		return m.Call(req)
	})
	if _, err := Run(recording, eng, Options{NotifyEvery: time.Hour}); err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		f, ok := finals[spec.ID]
		if !ok {
			t.Fatalf("task %d never completed", spec.ID)
		}
		if f.cells != spec.Cells {
			t.Errorf("task %d final delta = %d cells, want the full task (%d)", spec.ID, f.cells, spec.Cells)
		}
		if f.rate <= 0 {
			t.Errorf("task %d final rate = %v, want > 0", spec.ID, f.rate)
		}
	}
}
