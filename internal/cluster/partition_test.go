package cluster

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/seq"
)

func TestPartitionCoversDatabaseContiguously(t *testing.T) {
	p, err := dataset.ProfileByName("Ensembl Dog Proteins")
	if err != nil {
		t.Fatal(err)
	}
	db := dataset.Generate(p.Scale(0.001), 11)
	for n := 1; n <= len(db); n++ {
		bounds := partition(db, n)
		if len(bounds) != n {
			t.Fatalf("n=%d: %d shards", n, len(bounds))
		}
		prev := 0
		for i, b := range bounds {
			if b[0] != prev {
				t.Fatalf("n=%d shard %d: starts at %d, want %d (contiguous, no gaps)", n, i, b[0], prev)
			}
			if b[1] <= b[0] {
				t.Fatalf("n=%d shard %d: empty range %v", n, i, b)
			}
			prev = b[1]
		}
		if prev != len(db) {
			t.Fatalf("n=%d: covers %d of %d sequences", n, prev, len(db))
		}
	}
}

func TestPartitionBalancesResidues(t *testing.T) {
	p, err := dataset.ProfileByName("UniProtKB/SwissProt")
	if err != nil {
		t.Fatal(err)
	}
	db := dataset.Generate(p.Scale(0.002), 3)
	var total int64
	for _, d := range db {
		total += int64(d.Len())
	}
	const n = 4
	ideal := total / n
	for i, b := range partition(db, n) {
		var res int64
		for _, d := range db[b[0]:b[1]] {
			res += int64(d.Len())
		}
		// Greedy splitting can overshoot by at most one sequence; the
		// profile's longest sequences are far under half the ideal share,
		// so every shard should land within 2x of it.
		if res > 2*ideal {
			t.Errorf("shard %d holds %d residues, ideal %d: partition badly unbalanced", i, res, ideal)
		}
	}
}

func TestShardStateStrings(t *testing.T) {
	want := map[ShardState]string{
		ShardPending:   "pending",
		ShardScanning:  "scanning",
		ShardDone:      "done",
		ShardFailed:    "failed",
		ShardState(99): "ShardState(99)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(s), got, w)
		}
	}
}

func TestBoardAggregatesStagesAcrossShards(t *testing.T) {
	db := []*seq.Sequence{seq.New("a", "", []byte("ACDEFGHIKL")), seq.New("b", "", []byte("MNPQRSTVWY"))}
	shards := []*shard{
		{index: 0, db: db[:1], residues: 10},
		{index: 1, db: db[1:], offset: 1, residues: 10},
	}
	queries := db[:1]
	var gotStage string
	var gotDone, gotTotal int64
	var snaps [][]ShardStatus
	b := newBoard(shards, queries, true, 10, Params{
		StageProgress: func(stage string, done, total int64) {
			gotStage, gotDone, gotTotal = stage, done, total
		},
		OnShards: func(s []ShardStatus) { snaps = append(snaps, s) },
	})
	b.setStage(0, "prefilter", 1, 1)
	b.setStage(1, "prefilter", 0, 1)
	if gotStage != "prefilter" || gotDone != 1 || gotTotal != 2 {
		t.Errorf("stage sum = %s %d/%d, want prefilter 1/2", gotStage, gotDone, gotTotal)
	}
	b.setProgress(0, 80, 1e6)
	b.setState(0, ShardScanning)
	b.finish(0)
	b.setState(1, ShardFailed)
	last := snaps[len(snaps)-1]
	if last[0].State != ShardDone || last[0].Cells != 80 || last[1].State != ShardFailed {
		t.Errorf("final snapshot %+v", last)
	}
	if last[0].TotalCells == 0 || last[1].TotalCells == 0 {
		t.Errorf("filtered totals not seeded: %+v", last)
	}
}
