package httpapi

import (
	"net/http"
	"time"

	"repro/internal/jobs"
)

// JobView is the API projection of a job record: everything a client needs
// to poll and reason about a job, minus the raw FASTA payload (which can be
// megabytes and is something the submitter already has).
type JobView struct {
	ID        string     `json:"id"`
	State     jobs.State `json:"state"`
	Key       string     `json:"key"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Coalesced int        `json:"coalesced,omitempty"`
	CacheHit  bool       `json:"cache_hit,omitempty"`
	// Backend names the execution path that runs (or ran) this job.
	Backend jobs.Backend `json:"backend,omitempty"`

	Queries     int    `json:"queries"`
	Residues    int64  `json:"residues"`
	TopK        int    `json:"top_k,omitempty"`
	Policy      string `json:"policy,omitempty"`
	Align       bool   `json:"align,omitempty"`
	Mode        string `json:"mode,omitempty"`
	Priority    int    `json:"priority,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	ResultBytes int64  `json:"result_bytes,omitempty"`
	// Stages shows a running filtered job's prefilter/rescore progress.
	Stages map[string]jobs.StageCount `json:"stages,omitempty"`
	// Shards shows a running cluster job's per-shard scan progress.
	Shards []jobs.ShardProgress `json:"shards,omitempty"`
}

func viewOf(j jobs.Job) JobView {
	v := JobView{
		ID:        j.ID,
		State:     j.State,
		Key:       j.Key,
		Created:   j.Created,
		Error:     j.Error,
		Coalesced: j.Coalesced,
		CacheHit:  j.CacheHit,
		Backend:   j.Backend,

		Queries:     j.Request.Queries,
		Residues:    j.Request.Residues,
		TopK:        j.Request.TopK,
		Policy:      j.Request.Policy,
		Align:       j.Request.Align,
		Mode:        j.Request.Mode,
		Priority:    j.Request.Priority,
		Tenant:      j.Request.Tenant,
		ResultBytes: j.ResultBytes,
		Stages:      j.Stages,
		Shards:      j.Shards,
	}
	if !j.Started.IsZero() {
		t := j.Started
		v.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		v.Finished = &t
	}
	return v
}

// handleJobSubmit is POST /jobs: fire-and-forget submission. A freshly
// queued (or coalesced in-flight) job answers 202; a job that is already
// terminal at submission time — a cache hit — answers 200 immediately.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	jreq, ok := s.decodeSearch(w, r)
	if !ok {
		return
	}
	job, err := s.jobs.Submit(jreq, true)
	if err != nil {
		writeJobErr(w, err)
		return
	}
	code := http.StatusAccepted
	if job.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, viewOf(job))
}

// handleJobList is GET /jobs: every tracked job, newest first, optionally
// filtered with ?state=queued|running|done|failed|canceled.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("state")
	views := []JobView{}
	for _, j := range s.jobs.List() {
		if filter != "" && string(j.State) != filter {
			continue
		}
		views = append(views, viewOf(j))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// handleJobGet is GET /jobs/{id}: one job's status.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeJobErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, viewOf(job))
}

// handleJobResult is GET /jobs/{id}/result: the encoded search response for
// a done job; 202 with the job view while it is still queued or running;
// 410 for a cancelled job or an evicted result; 500 for a failed one.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	body, job, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		if job.State == jobs.StateDone {
			writeErr(w, http.StatusGone, "result: %v", err)
			return
		}
		writeJobErr(w, err)
		return
	}
	switch job.State {
	case jobs.StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	case jobs.StateQueued, jobs.StateRunning:
		writeJSON(w, http.StatusAccepted, viewOf(job))
	case jobs.StateFailed:
		writeErr(w, http.StatusInternalServerError, "search: %s", job.Error)
	case jobs.StateCanceled:
		writeErr(w, http.StatusGone, "job was cancelled")
	default:
		writeErr(w, http.StatusInternalServerError, "job in unknown state %q", job.State)
	}
}

// handleJobCancel is DELETE /jobs/{id}: abort a queued or running job. The
// cancellation propagates through the search context into the scheduler, so
// in-flight kernel work actually stops. Idempotent — cancelling a terminal
// job returns its (unchanged) snapshot.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeJobErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, viewOf(job))
}
