package simd

import (
	"testing"
	"testing/quick"
)

func TestSplat(t *testing.T) {
	u := SplatU8(7)
	for i, v := range u {
		if v != 7 {
			t.Fatalf("SplatU8 lane %d = %d", i, v)
		}
	}
	s := SplatI16(-3)
	for i, v := range s {
		if v != -3 {
			t.Fatalf("SplatI16 lane %d = %d", i, v)
		}
	}
}

func TestAddSatU8Saturates(t *testing.T) {
	a := SplatU8(200)
	b := SplatU8(100)
	if got := AddSatU8(a, b); got != SplatU8(255) {
		t.Errorf("AddSatU8(200,100) = %v, want saturated 255", got)
	}
}

func TestSubSatU8Clamps(t *testing.T) {
	a := SplatU8(10)
	b := SplatU8(20)
	if got := SubSatU8(a, b); got != SplatU8(0) {
		t.Errorf("SubSatU8(10,20) = %v, want clamped 0", got)
	}
	if got := SubSatU8(b, a); got != SplatU8(10) {
		t.Errorf("SubSatU8(20,10) = %v, want 10", got)
	}
}

func TestAddSubSatU8Property(t *testing.T) {
	f := func(a, b U8x16) bool {
		add := AddSatU8(a, b)
		sub := SubSatU8(a, b)
		for i := range a {
			wantAdd := int(a[i]) + int(b[i])
			if wantAdd > 255 {
				wantAdd = 255
			}
			wantSub := int(a[i]) - int(b[i])
			if wantSub < 0 {
				wantSub = 0
			}
			if int(add[i]) != wantAdd || int(sub[i]) != wantSub {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxGtU8(t *testing.T) {
	f := func(a, b U8x16) bool {
		m := MaxU8(a, b)
		g := GtU8(a, b)
		for i := range a {
			if m[i] != max(a[i], b[i]) {
				return false
			}
			wantMask := uint8(0)
			if a[i] > b[i] {
				wantMask = 0xFF
			}
			if g[i] != wantMask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoveMaskU8(t *testing.T) {
	var a U8x16
	a[0], a[5], a[15] = 0x80, 0xFF, 0x81
	want := 1<<0 | 1<<5 | 1<<15
	if got := MoveMaskU8(a); got != want {
		t.Errorf("MoveMaskU8 = %#x, want %#x", got, want)
	}
}

func TestAnyGtU8(t *testing.T) {
	if AnyGtU8(SplatU8(1), SplatU8(1)) {
		t.Error("AnyGtU8(equal) = true")
	}
	a := SplatU8(1)
	a[9] = 3
	if !AnyGtU8(a, SplatU8(1)) {
		t.Error("AnyGtU8 missed lane 9")
	}
}

func TestShiftLanesLeftU8(t *testing.T) {
	var a U8x16
	for i := range a {
		a[i] = uint8(i + 1)
	}
	s := ShiftLanesLeftU8(a, 1)
	if s[0] != 0 {
		t.Errorf("lane 0 = %d, want 0 fill", s[0])
	}
	for i := 1; i < 16; i++ {
		if s[i] != a[i-1] {
			t.Errorf("lane %d = %d, want %d", i, s[i], a[i-1])
		}
	}
	if got := ShiftLanesLeftU8(a, 16); got != (U8x16{}) {
		t.Errorf("full shift = %v, want zero", got)
	}
}

func TestHMaxU8(t *testing.T) {
	var a U8x16
	a[3] = 200
	a[12] = 199
	if got := HMaxU8(a); got != 200 {
		t.Errorf("HMaxU8 = %d, want 200", got)
	}
}

func TestAddSatI16Saturates(t *testing.T) {
	if got := AddSatI16(SplatI16(30000), SplatI16(30000)); got != SplatI16(32767) {
		t.Errorf("AddSatI16 overflow = %v", got)
	}
	if got := AddSatI16(SplatI16(-30000), SplatI16(-30000)); got != SplatI16(-32768) {
		t.Errorf("AddSatI16 underflow = %v", got)
	}
}

func TestSubSatI16Saturates(t *testing.T) {
	if got := SubSatI16(SplatI16(-30000), SplatI16(10000)); got != SplatI16(-32768) {
		t.Errorf("SubSatI16 underflow = %v", got)
	}
}

func TestAddSubSatI16Property(t *testing.T) {
	f := func(a, b I16x8) bool {
		add := AddSatI16(a, b)
		sub := SubSatI16(a, b)
		for i := range a {
			if add[i] != satI16(int32(a[i])+int32(b[i])) {
				return false
			}
			if sub[i] != satI16(int32(a[i])-int32(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxGtI16(t *testing.T) {
	f := func(a, b I16x8) bool {
		m := MaxI16(a, b)
		g := GtI16(a, b)
		for i := range a {
			if m[i] != max(a[i], b[i]) {
				return false
			}
			want := int16(0)
			if a[i] > b[i] {
				want = -1
			}
			if g[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftLanesLeftI16Fill(t *testing.T) {
	var a I16x8
	for i := range a {
		a[i] = int16(i + 1)
	}
	s := ShiftLanesLeftI16(a, 1, -999)
	if s[0] != -999 {
		t.Errorf("lane 0 = %d, want fill -999", s[0])
	}
	for i := 1; i < 8; i++ {
		if s[i] != a[i-1] {
			t.Errorf("lane %d = %d", i, s[i])
		}
	}
	if got := ShiftLanesLeftI16(a, 9, 5); got != SplatI16(5) {
		t.Errorf("overshift = %v, want all fill", got)
	}
}

func TestMoveMaskAnyGtI16(t *testing.T) {
	var a I16x8
	a[2] = -1
	if got := MoveMaskI16(a); got != 1<<2 {
		t.Errorf("MoveMaskI16 = %#x", got)
	}
	if AnyGtI16(SplatI16(0), SplatI16(0)) {
		t.Error("AnyGtI16(equal) = true")
	}
	b := SplatI16(0)
	b[7] = 1
	if !AnyGtI16(b, SplatI16(0)) {
		t.Error("AnyGtI16 missed lane 7")
	}
}

func TestHMaxI16(t *testing.T) {
	a := SplatI16(-5)
	a[6] = -2
	if got := HMaxI16(a); got != -2 {
		t.Errorf("HMaxI16 = %d, want -2", got)
	}
}
