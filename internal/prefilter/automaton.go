package prefilter

import (
	"errors"
	"fmt"
)

// Automaton is an Aho-Corasick multi-pattern matcher compiled into flat
// slices. The classic goto/fail/output construction (Aho & Corasick 1975)
// is resolved at compile time into a dense, fail-free transition table, so
// the scan loop costs exactly one byte-class lookup plus one table lookup
// per database residue — no pointer chasing, no failure-link walks.
//
// The alphabet is reduced to the bytes that actually occur in the patterns:
// a byte absent from every pattern cannot participate in any match, so the
// scanner resets to the root without consulting the table. For protein
// k-mer seeds this keeps the table at states x ~20 entries instead of
// states x 256.
type Automaton struct {
	sym    [256]int16 // byte -> 1-based symbol index; 0 = absent from every pattern
	nsym   int        // distinct symbols (columns of the transition table)
	next   []int32    // dense fail-resolved transitions: next[state*nsym + sym-1]
	out    [][]int32  // out[state] = pattern indices whose occurrence ends at state
	states int
	plen   []int32 // pattern lengths, for match-start arithmetic
}

// maxStates bounds the trie so a hostile pattern set cannot compile an
// unboundedly large table: states <= 1 + sum of pattern lengths, and the
// seed compiler caps patterns well below this.
const maxStates = 1 << 20

// Compile builds the automaton over the given patterns. Patterns must be
// non-empty; duplicates are allowed and report independently.
func Compile(patterns [][]byte) (*Automaton, error) {
	if len(patterns) == 0 {
		return nil, errors.New("prefilter: no patterns")
	}
	a := &Automaton{plen: make([]int32, len(patterns))}
	total := 0
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("prefilter: pattern %d is empty", i)
		}
		a.plen[i] = int32(len(p))
		total += len(p)
		for _, b := range p {
			if a.sym[b] == 0 {
				a.nsym++
				a.sym[b] = int16(a.nsym)
			}
		}
	}
	if total+1 > maxStates {
		return nil, fmt.Errorf("prefilter: pattern set needs up to %d states (max %d)", total+1, maxStates)
	}
	S := a.nsym

	// Trie phase: dense per-state rows, -1 marking absent edges.
	trie := make([][]int32, 1, total+1)
	trie[0] = newRow(S)
	out := make([][]int32, 1, total+1)
	for pi, p := range patterns {
		st := int32(0)
		for _, b := range p {
			c := int32(a.sym[b]) - 1
			if trie[st][c] < 0 {
				trie = append(trie, newRow(S))
				out = append(out, nil)
				trie[st][c] = int32(len(trie) - 1)
			}
			st = trie[st][c]
		}
		out[st] = append(out[st], int32(pi))
	}

	// BFS phase: compute failure links level by level, fold each state's
	// failure outputs into its own output list, and overwrite absent edges
	// with the failure state's (already resolved) transition so the scan
	// never follows a fail link.
	fail := make([]int32, len(trie))
	queue := make([]int32, 0, len(trie))
	for c := 0; c < S; c++ {
		if t := trie[0][c]; t >= 0 {
			queue = append(queue, t)
		} else {
			trie[0][c] = 0
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		st := queue[qi]
		// fail[st] is strictly shallower, so its out list is final.
		out[st] = append(out[st], out[fail[st]]...)
		row, frow := trie[st], trie[fail[st]]
		for c := 0; c < S; c++ {
			if t := row[c]; t >= 0 {
				fail[t] = frow[c]
				queue = append(queue, t)
			} else {
				row[c] = frow[c]
			}
		}
	}

	a.states = len(trie)
	a.next = make([]int32, len(trie)*S)
	for st, row := range trie {
		copy(a.next[st*S:(st+1)*S], row)
	}
	a.out = out
	return a, nil
}

func newRow(nsym int) []int32 {
	row := make([]int32, nsym)
	for i := range row {
		row[i] = -1
	}
	return row
}

// States returns the number of automaton states (trie nodes).
func (a *Automaton) States() int { return a.states }

// Patterns returns how many patterns the automaton was compiled over.
func (a *Automaton) Patterns() int { return len(a.plen) }

// PatternLen returns the length of pattern pi.
func (a *Automaton) PatternLen(pi int) int { return int(a.plen[pi]) }

// Scan streams data through the automaton, calling emit(end, pat) for every
// occurrence of pattern pat ending just before index end (the match spans
// data[end-PatternLen(pat):end]). Overlapping and nested occurrences all
// report, in left-to-right order of their end positions. Bytes outside the
// pattern alphabet reset the scanner to the root.
func (a *Automaton) Scan(data []byte, emit func(end, pat int)) {
	st := int32(0)
	S := a.nsym
	for i := 0; i < len(data); i++ {
		c := a.sym[data[i]]
		if c == 0 {
			st = 0
			continue
		}
		st = a.next[int(st)*S+int(c)-1]
		for _, pi := range a.out[st] {
			emit(i+1, int(pi))
		}
	}
}
