package sched

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
)

// mkTenantTasks builds n tasks alternating none across the given tenants in
// round-robin, 1000 cells each.
func tenantTasks(counts map[string]int) []Task {
	var out []Task
	for _, name := range []string{"alice", "bob", "carol"} {
		for i := 0; i < counts[name]; i++ {
			out = append(out, Task{
				QueryID: fmt.Sprintf("%s-%d", name, i),
				Cells:   1000,
				Tenant:  name,
			})
		}
	}
	return out
}

// With a heavy and a light tenant at equal weight, single-task grants must
// alternate between them instead of draining the heavy tenant's FIFO run.
func TestFairGrantsInterleaveTenants(t *testing.T) {
	tasks := tenantTasks(map[string]int{"alice": 8, "bob": 2})
	c := NewCoordinator(tasks, Config{Policy: SS{}})
	var ids []SlaveID
	for i := 0; i < 4; i++ {
		ids = append(ids, c.Register(SlaveInfo{Name: fmt.Sprintf("s%d", i), Kind: KindCPU, DeclaredSpeed: 1e6}, 0))
	}
	got := map[string]int{}
	for i, id := range ids {
		tasks, _ := c.RequestWork(id, sec(float64(i)))
		for _, tk := range tasks {
			got[tk.Tenant]++
		}
	}
	// 4 single-task grants across 8 alice + 2 bob tasks: DRF must give both
	// tenants 2 each, not 4 to alice.
	if got["alice"] != 2 || got["bob"] != 2 {
		t.Fatalf("grants by tenant = %v, want alice=2 bob=2", got)
	}
}

// Within one tenant, higher priority pops before older arrivals.
func TestFairGrantsHonorPriorityWithinTenant(t *testing.T) {
	tasks := []Task{
		{QueryID: "lo", Cells: 1000, Tenant: "alice"},
		{QueryID: "hi", Cells: 1000, Tenant: "alice", Priority: 5},
	}
	c := NewCoordinator(tasks, Config{Policy: SS{}})
	id := c.Register(SlaveInfo{Name: "s0", Kind: KindCPU, DeclaredSpeed: 1e6}, 0)
	got, _ := c.RequestWork(id, 0)
	if len(got) != 1 || got[0].QueryID != "hi" {
		t.Fatalf("first grant = %+v, want the high-priority task", got)
	}
}

// A replicated copy of an over-served tenant's task is revoked when an
// underserved tenant has ready work; the survivor count never drops to 0.
func TestPreemptRevokesOnlyReplicatedCopies(t *testing.T) {
	reg := metrics.NewRegistry()
	mm := NewMetrics(reg)
	tasks := []Task{
		{QueryID: "a0", Cells: 1000, Tenant: "alice"},
		{QueryID: "b0", Cells: 1000, Tenant: "bob"},
	}
	c := NewCoordinator(tasks, Config{Policy: SS{}, Adjust: true, Preempt: true, Metrics: mm})
	// s0 is slow and s1 fast, so the adjustment mechanism is willing to
	// replicate s0's task on an idle s1.
	s0 := c.Register(SlaveInfo{Name: "s0", Kind: KindCPU, DeclaredSpeed: 1e3}, 0)
	s1 := c.Register(SlaveInfo{Name: "s1", Kind: KindCPU, DeclaredSpeed: 1e6}, 0)

	// s0 takes alice's task; bob's stays ready. s1 asks while no capable
	// ready work remains... take bob's task too, then replicate alice's on
	// s1 via the adjustment mechanism by completing bob's first.
	g0, _ := c.RequestWork(s0, 0)
	if len(g0) != 1 {
		t.Fatalf("s0 grant = %v", g0)
	}
	g1, _ := c.RequestWork(s1, 0)
	if len(g1) != 1 {
		t.Fatalf("s1 grant = %v", g1)
	}
	// Sole copies everywhere: preemption must refuse even though shares
	// may be imbalanced.
	if got := c.Preempt(s0, sec(1)); got != nil {
		t.Fatalf("preempted a sole copy: %v", got)
	}

	// Finish bob's task, then s1 idles and replicates alice's task.
	ok, _ := c.Complete(s1, g1[0].ID, "r", sec(1))
	if !ok {
		t.Fatal("bob completion rejected")
	}
	rep, replica := c.RequestWork(s1, sec(2))
	if !replica || len(rep) != 1 || rep[0].ID != g0[0].ID {
		t.Fatalf("replica grant = %v (replica=%v), want a copy of task %d", rep, replica, g0[0].ID)
	}

	// Give bob fresh ready work at higher priority: the replicated copy of
	// alice's task is now revocable.
	c.AddTasks([]Task{{QueryID: "b1", Cells: 1000, Tenant: "bob", Priority: 3}})
	victims := c.Preempt(s1, sec(3))
	if len(victims) != 1 || victims[0] != g0[0].ID {
		t.Fatalf("victims = %v, want [%d]", victims, g0[0].ID)
	}
	if st := c.Pool().StateOf(g0[0].ID); st != Executing {
		t.Fatalf("preempted task state = %v, want still executing on the survivor", st)
	}
	log := c.PreemptLog()
	if len(log) != 1 || log[0].Survivors < 1 || log[0].Reason != PreemptPriority {
		t.Fatalf("preempt log = %+v", log)
	}
	if got := mm.TasksPreempted.Value(); got != 1 {
		t.Fatalf("sched_tasks_preempted_total = %v, want 1", got)
	}
	// The revoked slave asks again and must now receive bob's ready task.
	next, replica := c.RequestWork(s1, sec(4))
	if replica || len(next) != 1 || next[0].Tenant != "bob" {
		t.Fatalf("post-preempt grant = %v (replica=%v), want bob's task", next, replica)
	}
}

// Preemption is off by default and never fires without Config.Preempt.
func TestPreemptDisabledByDefault(t *testing.T) {
	tasks := tenantTasks(map[string]int{"alice": 2, "bob": 2})
	c := NewCoordinator(tasks, Config{Policy: SS{}, Adjust: true})
	s0 := c.Register(SlaveInfo{Name: "s0", Kind: KindCPU, DeclaredSpeed: 1e6}, 0)
	c.RequestWork(s0, 0)
	if got := c.Preempt(s0, sec(1)); got != nil {
		t.Fatalf("preempt fired while disabled: %v", got)
	}
}

// Tenant share ledgers survive a snapshot/restore round trip: finished
// cells recount from the snapshot so post-restore fairness picks up where
// the crashed master left off.
func TestTenantAccountingSurvivesRestore(t *testing.T) {
	tasks := tenantTasks(map[string]int{"alice": 2, "bob": 2})
	c := NewCoordinator(tasks, Config{Policy: SS{}})
	s0 := c.Register(SlaveInfo{Name: "s0", Kind: KindCPU, DeclaredSpeed: 1e6}, 0)
	g, _ := c.RequestWork(s0, 0)
	if ok, _ := c.Complete(s0, g[0].ID, "r", sec(1)); !ok {
		t.Fatal("completion rejected")
	}
	r := Restore(c.Snapshot(), Config{Policy: SS{}})
	ts := r.tenantOf(g[0].Tenant)
	if ts.doneCells != g[0].Cells {
		t.Fatalf("restored doneCells = %d, want %d", ts.doneCells, g[0].Cells)
	}
	if !r.mixedTenants {
		t.Fatal("restore lost tenant awareness")
	}
}
