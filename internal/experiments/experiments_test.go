package experiments

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

func TestTasksWorkload(t *testing.T) {
	lengths := QueryLengths()
	if len(lengths) != 40 || lengths[0] != 100 || lengths[39] != 5000 {
		t.Fatalf("query lengths = %d..%d (%d)", lengths[0], lengths[39], len(lengths))
	}
}

func TestFig5Anchors(t *testing.T) {
	res, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.With.Makespan.Round(time.Millisecond); got != 14*time.Second {
		t.Errorf("with adjustment = %v, want the paper's 14s", got)
	}
	if got := res.Without.Makespan.Round(time.Millisecond); got != 18*time.Second {
		t.Errorf("without adjustment = %v, want the paper's 18s", got)
	}
	g := Gantt(res.With)
	if !strings.Contains(g, "GPU1") || !strings.Contains(g, "t20*") {
		t.Errorf("Gantt missing GPU replica marker:\n%s", g)
	}
}

func TestTable3SSEScalesNearLinearly(t *testing.T) {
	runs, table, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) != 5 {
		t.Fatalf("table rows = %d", len(table.Rows))
	}
	byKey := map[string]Run{}
	for _, r := range runs {
		byKey[r.Config+"|"+r.DB] = r
	}
	const sp = "UniProtKB/SwissProt"
	t1 := byKey["1 SSE|"+sp].Time()
	// Anchor: one SSE core vs SwissProt took the paper 7,190 s.
	if secs := t1.Seconds(); secs < 6500 || secs > 7900 {
		t.Errorf("1 SSE SwissProt = %.0f s, want ~7190", secs)
	}
	for _, n := range []int{2, 4, 8} {
		tn := byKey[sprintfConfig(n)+"|"+sp].Time()
		speedup := t1.Seconds() / tn.Seconds()
		if speedup < 0.85*float64(n) || speedup > float64(n)*1.05 {
			t.Errorf("%d SSE speedup = %.2f, want near-linear", n, speedup)
		}
	}
}

func sprintfConfig(n int) string {
	return map[int]string{1: "1 SSE", 2: "2 SSE", 4: "4 SSE", 8: "8 SSE"}[n]
}

func TestTable4GPUBehaviour(t *testing.T) {
	runs, _, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Run{}
	for _, r := range runs {
		byKey[r.Config+"|"+r.DB] = r
	}
	const sp = "UniProtKB/SwissProt"
	// Near-linear GPU scaling on the big database.
	t1 := byKey["1 GPU|"+sp].Time().Seconds()
	t4 := byKey["4 GPU|"+sp].Time().Seconds()
	if speedup := t1 / t4; speedup < 3.2 || speedup > 4.2 {
		t.Errorf("4 GPU speedup on SwissProt = %.2f, want near-linear", speedup)
	}
	// Table IV's stated effect: SwissProt GCUPS is roughly double the
	// small-database GCUPS (per-task overheads amortize).
	gSp := byKey["4 GPU|"+sp].GCUPS()
	gDog := byKey["4 GPU|Ensembl Dog Proteins"].GCUPS()
	if ratio := gSp / gDog; ratio < 1.5 || ratio > 3.0 {
		t.Errorf("SwissProt/Dog GCUPS ratio = %.2f, want ~2", ratio)
	}
}

func TestTable5HybridAnchors(t *testing.T) {
	runs, _, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Run{}
	for _, r := range runs {
		byKey[r.Config+"|"+r.DB] = r
	}
	const sp = "UniProtKB/SwissProt"
	// Anchor: 4 GPU + 4 SSE finished SwissProt in 112 s.
	tBest := byKey["4 GPU + 4 SSE|"+sp].Time().Seconds()
	if tBest < 95 || tBest > 130 {
		t.Errorf("4G+4S SwissProt = %.0f s, want ~112", tBest)
	}
	// Hybrid beats GPU-only on the big database...
	t4, _, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	gpuOnly := map[string]Run{}
	for _, r := range t4 {
		gpuOnly[r.Config+"|"+r.DB] = r
	}
	if gpuOnly["4 GPU|"+sp].Time() <= byKey["4 GPU + 4 SSE|"+sp].Time() {
		t.Errorf("hybrid (%v) not faster than GPU-only (%v) on SwissProt",
			byKey["4 GPU + 4 SSE|"+sp].Time(), gpuOnly["4 GPU|"+sp].Time())
	}
	// ...while GPU-only stays competitive (within ~15%) on the small
	// databases, the paper's §V-A.3 observation.
	const dog = "Ensembl Dog Proteins"
	hyb := byKey["4 GPU + 4 SSE|"+dog].Time().Seconds()
	gpu := gpuOnly["4 GPU|"+dog].Time().Seconds()
	if hyb > gpu*1.5 {
		t.Errorf("hybrid on Dog = %.1f s vs GPU-only %.1f s: too far apart", hyb, gpu)
	}
}

func TestFig6AdjustmentGains(t *testing.T) {
	rows, table, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || table == nil {
		t.Fatalf("%d rows", len(rows))
	}
	byConfig := map[string]Fig6Row{}
	for _, r := range rows {
		byConfig[r.Config] = r
	}
	// Homogeneous configurations: negligible impact (within a few %).
	for _, c := range []string{"1 GPU", "2 GPU", "4 GPU"} {
		if g := byConfig[c].GainPercent; g < -5 || g > 10 {
			t.Errorf("%s gain = %.1f%%, want negligible", c, g)
		}
	}
	// Hybrid configurations: large gains (paper: 85.9% at 2G+4S, 207.2%
	// at 4G+4S; we require the same order of magnitude).
	if g := byConfig["2 GPU + 4 SSE"].GainPercent; g < 25 {
		t.Errorf("2G+4S gain = %.1f%%, want large (paper: 85.9%%)", g)
	}
	if g := byConfig["4 GPU + 4 SSE"].GainPercent; g < 80 {
		t.Errorf("4G+4S gain = %.1f%%, want very large (paper: 207.2%%)", g)
	}
	// Abstract anchor: the mechanism reduced total time by 57.2%.
	if r := byConfig["4 GPU + 4 SSE"].TimeReducePercent; r < 40 || r > 80 {
		t.Errorf("4G+4S time reduction = %.1f%%, want ~57%%", r)
	}
	// Hybrid with adjustment must beat GPU-only.
	if byConfig["4 GPU + 4 SSE"].With <= byConfig["4 GPU"].With {
		t.Error("4G+4S with adjustment should out-run 4 GPU alone")
	}
}

func TestFig7DedicatedTimeline(t *testing.T) {
	res, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("%d series", len(res.Series))
	}
	// All cores run near the calibrated 2.71 GCUPS with small jitter.
	for _, s := range res.Series {
		m := s.MeanBetween(0, res.Makespan-10*time.Second)
		if m < 2.3 || m > 3.1 {
			t.Errorf("%s mean = %.2f GCUPS, want ~2.71", s.Name, m)
		}
	}
}

func TestFig8LoadAdaptation(t *testing.T) {
	ded, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Core 0's rate drops to less than half after t=60 s.
	s0 := loaded.Series[0]
	before := s0.MeanBetween(10*time.Second, 58*time.Second)
	after := s0.MeanBetween(62*time.Second, loaded.Makespan-10*time.Second)
	if after >= before*0.6 {
		t.Errorf("core 0: %.2f -> %.2f GCUPS, want a drop below half", before, after)
	}
	// Paper: wall-clock grew only 12.1% while ~15% of capacity vanished.
	// Accept a moderate band around that.
	growth := (loaded.Makespan.Seconds() - ded.Makespan.Seconds()) / ded.Makespan.Seconds() * 100
	if growth < 2 || growth > 25 {
		t.Errorf("non-dedicated growth = %.1f%%, want moderate (~12%%)", growth)
	}
}

func TestPolicyAblation(t *testing.T) {
	table, err := PolicyAblation(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("%d rows", len(table.Rows))
	}
	out := table.String()
	for _, p := range []string{"SS", "PSS", "Fixed", "WFixed"} {
		if !strings.Contains(out, p) {
			t.Errorf("ablation missing %s:\n%s", p, out)
		}
	}
}

func TestTable2(t *testing.T) {
	out := Table2().String()
	if !strings.Contains(out, "537505") || !strings.Contains(out, "UniProtKB/SwissProt") {
		t.Errorf("Table II:\n%s", out)
	}
}

func TestFutureWorkScenarios(t *testing.T) {
	table, err := FutureWork()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("%d rows", len(table.Rows))
	}
	out := table.String()
	for _, want := range []string{"FPGA", "leaves", "joins"} {
		if !strings.Contains(out, want) {
			t.Errorf("future-work table missing %q:\n%s", want, out)
		}
	}
	// The FPGA must help, and losing a GPU without replacement must hurt
	// relative to the baseline.
	parse := func(row []string) float64 {
		var v float64
		fmt.Sscanf(strings.ReplaceAll(row[1], ",", ""), "%f", &v)
		return v
	}
	base, fpga, churn, lost := parse(table.Rows[0]), parse(table.Rows[1]), parse(table.Rows[2]), parse(table.Rows[3])
	if fpga >= base {
		t.Errorf("FPGA did not help: %v vs %v", fpga, base)
	}
	if lost <= base {
		t.Errorf("losing a GPU did not hurt: %v vs %v", lost, base)
	}
	if churn >= lost {
		t.Errorf("replacement GPU did not help: churn %v vs lost %v", churn, lost)
	}
}

func TestSVGFigures(t *testing.T) {
	dir := t.TempDir()
	paths, err := WriteSVGs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("%d files", len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		svg := string(data)
		if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Errorf("%s is not an SVG document", p)
		}
		if strings.Contains(svg, "NaN") {
			t.Errorf("%s contains NaN", p)
		}
	}
}

// TestHeadlineRunDeterminism pins the claim in EXPERIMENTS.md that every
// number is exactly reproducible: two headline runs must agree event for
// event, not merely in aggregate.
func TestHeadlineRunDeterminism(t *testing.T) {
	a, err := HeadlineRun()
	if err != nil {
		t.Fatal(err)
	}
	b, err := HeadlineRun()
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Replicas != b.Replicas || a.WastedCells != b.WastedCells {
		t.Fatalf("aggregates differ: %v/%d/%d vs %v/%d/%d",
			a.Makespan, a.Replicas, a.WastedCells, b.Makespan, b.Replicas, b.WastedCells)
	}
	if len(a.Assignments) != len(b.Assignments) {
		t.Fatalf("assignment counts differ: %d vs %d", len(a.Assignments), len(b.Assignments))
	}
	for i := range a.Assignments {
		x, y := a.Assignments[i], b.Assignments[i]
		if x.Time != y.Time || x.Slave != y.Slave || x.Replica != y.Replica || len(x.Tasks) != len(y.Tasks) {
			t.Fatalf("assignment %d differs: %+v vs %+v", i, x, y)
		}
	}
	for pi := range a.PerPE {
		if len(a.PerPE[pi].Executions) != len(b.PerPE[pi].Executions) {
			t.Fatalf("PE %d execution counts differ", pi)
		}
		for ei := range a.PerPE[pi].Executions {
			if a.PerPE[pi].Executions[ei] != b.PerPE[pi].Executions[ei] {
				t.Fatalf("PE %d execution %d differs", pi, ei)
			}
		}
	}
}
