package sw

import "repro/internal/score"

// AlignSemiGlobal computes an optimal semiglobal ("glocal") alignment: the
// whole query must align, but leading and trailing stretches of the target
// are free. This is the natural mode for locating a short sequence inside a
// long one (e.g. a read inside a genome region) and rounds out the local
// (Align) and global (AlignGlobal) family.
//
// Scores may be negative (a poor query has to align regardless). The
// returned alignment always spans the full query: QueryStart = 0 and
// QueryEnd = len(q).
func AlignSemiGlobal(q, t []byte, s score.Scheme) *Alignment {
	m, n := len(q), len(t)
	if m == 0 {
		return &Alignment{TargetEnd: 0}
	}
	open, ext := s.Gap.Open, s.Gap.Extend

	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	for i := 0; i <= m; i++ {
		H[i] = make([]int, n+1)
		E[i] = make([]int, n+1)
		F[i] = make([]int, n+1)
	}
	// Row 0: leading target residues are free. Column 0: the query can
	// only start with a (costly) gap in the target.
	for j := 1; j <= n; j++ {
		E[0][j], F[0][j] = negInf, negInf
	}
	for i := 1; i <= m; i++ {
		F[i][0] = -open - i*ext
		H[i][0] = F[i][0]
		E[i][0] = negInf
		for j := 1; j <= n; j++ {
			E[i][j] = max(H[i][j-1]-open-ext, E[i][j-1]-ext)
			F[i][j] = max(H[i-1][j]-open-ext, F[i-1][j]-ext)
			H[i][j] = max(H[i-1][j-1]+s.Matrix.Score(q[i-1], t[j-1]), E[i][j], F[i][j])
		}
	}

	// Best full-query alignment ends anywhere in the last row.
	bj := 0
	for j := 1; j <= n; j++ {
		if H[m][j] > H[m][bj] {
			bj = j
		}
	}
	a := &Alignment{Score: H[m][bj], QueryEnd: m, TargetEnd: bj}

	var qRow, tRow []byte
	i, j := m, bj
	st := stateH
	for i > 0 {
		switch st {
		case stateH:
			switch {
			case j > 0 && H[i][j] == H[i-1][j-1]+s.Matrix.Score(q[i-1], t[j-1]):
				qRow = append(qRow, q[i-1])
				tRow = append(tRow, t[j-1])
				i, j = i-1, j-1
			case j > 0 && H[i][j] == E[i][j]:
				st = stateE
			default:
				st = stateF
			}
		case stateE:
			qRow = append(qRow, '-')
			tRow = append(tRow, t[j-1])
			if E[i][j] == H[i][j-1]-open-ext {
				st = stateH
			}
			j--
		case stateF:
			qRow = append(qRow, q[i-1])
			tRow = append(tRow, '-')
			if i == 1 || F[i][j] == H[i-1][j]-open-ext {
				st = stateH
			}
			i--
		}
	}
	reverse(qRow)
	reverse(tRow)
	a.QueryRow, a.TargetRow = qRow, tRow
	a.TargetStart = j
	return a
}

// ScoreSemiGlobal returns only the optimal semiglobal score, in O(n) space.
func ScoreSemiGlobal(q, t []byte, s score.Scheme) int {
	m, n := len(q), len(t)
	if m == 0 {
		return 0
	}
	open, ext := s.Gap.Open, s.Gap.Extend
	H := make([]int, n+1) // previous row's H; row 0 is all zeros
	F := make([]int, n+1) // vertical-gap state per column
	for j := range F {
		F[j] = negInf
	}
	for i := 1; i <= m; i++ {
		diag := H[0] // H[i-1][0]
		H[0] = -open - i*ext
		e := negInf // E[i][0]: no horizontal gap can precede column 0
		for j := 1; j <= n; j++ {
			F[j] = max(H[j]-open-ext, F[j]-ext)
			e = max(H[j-1]-open-ext, e-ext)
			h := max(diag+s.Matrix.Score(q[i-1], t[j-1]), e, F[j])
			diag = H[j]
			H[j] = h
		}
	}
	best := H[0]
	for j := 1; j <= n; j++ {
		best = max(best, H[j])
	}
	return best
}
