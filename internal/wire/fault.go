package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// This file implements seeded fault injection for robustness tests in two
// layers. RuleSet is the pure decision engine: given a message kind it
// decides — deterministically from a seed — whether a fault fires and
// which one. FaultCaller executes those decisions on the wall clock around
// any transport (sleeping for delays, blocking for hangs); the
// deterministic cluster simulator (internal/sim) drives the same RuleSet
// but executes the decisions as virtual-time events instead. The master
// and slave test suites use the caller to prove that lease expiry rescues
// hung slaves, that killed slaves requeue deterministically, and that a
// reconnecting slave double-completes nothing.

// ErrInjected is the transport error produced by FaultError and FaultDrop
// rules (optionally wrapped); match it with errors.Is.
var ErrInjected = errors.New("wire: injected fault")

// MsgKind classifies a request envelope for fault-rule matching.
type MsgKind int

const (
	// AnyMsg matches every request.
	AnyMsg MsgKind = iota
	// RegisterKind matches RegisterMsg requests.
	RegisterKind
	// RequestKind matches RequestMsg requests.
	RequestKind
	// ProgressKind matches ProgressMsg requests.
	ProgressKind
	// CompleteKind matches CompleteMsg requests.
	CompleteKind
)

// KindOf classifies a request envelope.
func KindOf(req Envelope) MsgKind {
	switch {
	case req.Register != nil:
		return RegisterKind
	case req.Request != nil:
		return RequestKind
	case req.Progress != nil:
		return ProgressKind
	case req.Complete != nil:
		return CompleteKind
	default:
		return AnyMsg
	}
}

// FaultAction is what happens to a matched call.
type FaultAction int

const (
	// FaultError fails the call without delivering it: the request never
	// reaches the master (a send on a dead connection).
	FaultError FaultAction = iota
	// FaultHang blocks the call until the caller is closed, then fails it:
	// the hung-slave scenario, where the process lives and the socket stays
	// open but nothing progresses.
	FaultHang
	// FaultDelay sleeps Rule.Delay, then passes the call through: a slow
	// link or a stalled peer that eventually answers.
	FaultDelay
	// FaultDrop delivers the request but loses the response: the master's
	// state changes (it may have accepted a completion) while the slave
	// sees a failure — the classic at-least-once duplication hazard.
	FaultDrop
	// FaultDup delivers the request twice: a retransmit whose original also
	// arrived. The master dispatches both copies (exercising its
	// duplicate-completion and double-registration protections); the caller
	// sees the second response.
	FaultDup
)

// Rule selects calls and assigns them a fault. Matching calls are counted
// per rule; the fault applies to matching calls after the first After and
// for at most Count of them (0 = unlimited), each with probability Prob
// (0 or >=1 = always). The first rule that matches and fires wins.
type Rule struct {
	Kind   MsgKind
	Action FaultAction
	After  int
	Count  int
	Prob   float64
	Delay  time.Duration // used by FaultDelay
}

// RuleSet is the deterministic decision half of fault injection: it
// matches calls against rules and decides which fault (if any) fires,
// drawing probabilistic decisions from an explicitly seeded generator so a
// run is a pure function of its seed. It performs no sleeping or blocking
// itself — executing the decided fault is the caller's business, which is
// what lets the virtual-time simulator reuse it. Not safe for concurrent
// use; FaultCaller serializes access under its own mutex.
type RuleSet struct {
	rules   []Rule
	rng     *rand.Rand
	matched []int // matching-call count per rule
	fired   []int // fault count per rule
}

// NewRuleSet builds a decision engine over the rules; seed drives the
// probabilistic rules so runs are reproducible.
func NewRuleSet(seed int64, rules ...Rule) *RuleSet {
	return &RuleSet{
		rules:   rules,
		rng:     rand.New(rand.NewSource(seed)),
		matched: make([]int, len(rules)),
		fired:   make([]int, len(rules)),
	}
}

// Next decides the fate of one call of kind k: the first rule that matches
// and fires wins (fired = true), returning its action and delay.
func (rs *RuleSet) Next(k MsgKind) (action FaultAction, delay time.Duration, fired bool) {
	for i, r := range rs.rules {
		if r.Kind != AnyMsg && r.Kind != k {
			continue
		}
		n := rs.matched[i]
		rs.matched[i]++
		if n < r.After {
			continue
		}
		if r.Count > 0 && rs.fired[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && rs.rng.Float64() >= r.Prob {
			continue
		}
		rs.fired[i]++
		return r.Action, r.Delay, true
	}
	return 0, 0, false
}

// Fired returns how many times rule i fired its fault.
func (rs *RuleSet) Fired(i int) int { return rs.fired[i] }

// FaultCaller wraps a Caller with seeded fault injection. It is safe for
// the sequential use the Caller contract requires, plus a concurrent
// Close to release hung calls.
type FaultCaller struct {
	inner Caller

	mu    sync.Mutex
	rules *RuleSet
	meter *Metrics

	closeOnce sync.Once
	closed    chan struct{}
}

// NewFaultCaller wraps inner with the given rules; seed drives the
// probabilistic rules so runs are reproducible.
func NewFaultCaller(inner Caller, seed int64, rules ...Rule) *FaultCaller {
	return &FaultCaller{
		inner:  inner,
		rules:  NewRuleSet(seed, rules...),
		closed: make(chan struct{}),
	}
}

// SetMetrics attaches an instrumentation bundle: every fault that fires
// additionally increments m.Faults, so chaos runs show up on /metrics.
func (f *FaultCaller) SetMetrics(m *Metrics) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.meter = m
}

// Fired returns how many times rule i injected its fault.
func (f *FaultCaller) Fired(i int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rules.Fired(i)
}

// Call implements Caller, applying the first matching rule that fires.
func (f *FaultCaller) Call(req Envelope) (Envelope, error) {
	k := KindOf(req)
	f.mu.Lock()
	action, delay, fired := f.rules.Next(k)
	if fired && f.meter != nil {
		f.meter.Faults.Inc()
	}
	f.mu.Unlock()
	if !fired {
		return f.inner.Call(req)
	}

	switch action {
	case FaultError:
		return Envelope{}, fmt.Errorf("%w: %v lost", ErrInjected, k)
	case FaultHang:
		<-f.closed
		return Envelope{}, fmt.Errorf("%w: hung call released by close", ErrInjected)
	case FaultDelay:
		select {
		case <-time.After(delay):
		case <-f.closed:
			return Envelope{}, fmt.Errorf("%w: closed while delayed", ErrInjected)
		}
	case FaultDrop:
		if _, err := f.inner.Call(req); err != nil {
			return Envelope{}, err
		}
		return Envelope{}, fmt.Errorf("%w: %v response dropped", ErrInjected, k)
	case FaultDup:
		if _, err := f.inner.Call(req); err != nil {
			return Envelope{}, err
		}
	}
	return f.inner.Call(req)
}

// Close implements Caller, releasing any hung or delayed call first.
func (f *FaultCaller) Close() error {
	f.closeOnce.Do(func() { close(f.closed) })
	return f.inner.Close()
}

// String returns the kind name for error messages.
func (k MsgKind) String() string {
	switch k {
	case RegisterKind:
		return "Register"
	case RequestKind:
		return "Request"
	case ProgressKind:
		return "Progress"
	case CompleteKind:
		return "Complete"
	default:
		return "Any"
	}
}
