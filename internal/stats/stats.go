// Package stats implements Karlin-Altschul statistics for Smith-Waterman
// search scores: bit scores and expect values (E-values).
//
// A raw Smith-Waterman score S is only meaningful relative to the scoring
// system. Karlin-Altschul theory normalizes it with two parameters λ and K
// estimated for the (matrix, gap-penalty) pair:
//
//	bit score  S' = (λ·S − ln K) / ln 2
//	E-value    E  = m·n / 2^S'
//
// where m is the query length and n the total database residue count. The
// parameter table below carries the standard BLAST values for the schemes
// this repository ships; unknown gap settings fall back to the matrix's
// most conservative (smallest-λ) gapped entry, which overestimates E — the
// safe direction for a filter.
package stats

import (
	"fmt"
	"math"

	"repro/internal/score"
)

// Params are the Karlin-Altschul parameters of one scoring system.
type Params struct {
	Lambda float64
	K      float64
	H      float64 // relative entropy, bits/position (informational)
}

// entry keys the parameter table.
type entry struct {
	matrix       string
	open, extend int
}

// Standard BLAST parameter values (ungapped rows use open=0, extend=0).
var table = map[entry]Params{
	{"BLOSUM62", 0, 0}:  {Lambda: 0.3176, K: 0.134, H: 0.40},
	{"BLOSUM62", 11, 1}: {Lambda: 0.267, K: 0.041, H: 0.14},
	{"BLOSUM62", 10, 1}: {Lambda: 0.243, K: 0.024, H: 0.10},
	{"BLOSUM62", 10, 2}: {Lambda: 0.293, K: 0.047, H: 0.23},
	{"BLOSUM62", 9, 2}:  {Lambda: 0.286, K: 0.043, H: 0.21},
	{"BLOSUM62", 12, 1}: {Lambda: 0.283, K: 0.059, H: 0.19},
	{"BLOSUM50", 0, 0}:  {Lambda: 0.2318, K: 0.112, H: 0.34},
	{"BLOSUM50", 13, 2}: {Lambda: 0.177, K: 0.028, H: 0.10},
	{"BLOSUM50", 12, 2}: {Lambda: 0.172, K: 0.025, H: 0.10},
	{"BLOSUM50", 10, 3}: {Lambda: 0.174, K: 0.022, H: 0.10},
}

// Lookup returns the Karlin-Altschul parameters for a scheme. ok reports
// whether an exact (matrix, gap) entry existed; otherwise the returned
// params are the matrix's most conservative gapped entry (or the ungapped
// entry if no gapped one is known), and ok is false.
func Lookup(s score.Scheme) (Params, bool) {
	if s.Matrix == nil {
		return Params{}, false
	}
	name := s.Matrix.Name()
	if p, ok := table[entry{name, s.Gap.Open, s.Gap.Extend}]; ok {
		return p, true
	}
	// Fall back to the smallest λ among this matrix's entries.
	best := Params{}
	found := false
	for e, p := range table {
		if e.matrix != name {
			continue
		}
		if !found || p.Lambda < best.Lambda {
			best, found = p, true
		}
	}
	return best, false
}

// BitScore converts a raw score to bits.
func (p Params) BitScore(raw int) float64 {
	return (p.Lambda*float64(raw) - math.Log(p.K)) / math.Ln2
}

// EValue returns the expected number of chance alignments scoring at least
// raw, for a query of m residues against a database of n total residues.
func (p Params) EValue(raw int, m int, n int64) float64 {
	if m <= 0 || n <= 0 {
		return math.Inf(1)
	}
	// E = K m n e^{-λS}, equivalently m n 2^{-bitscore}.
	return p.K * float64(m) * float64(n) * math.Exp(-p.Lambda*float64(raw))
}

// RawForEValue inverts EValue: the smallest raw score whose E-value is at
// most e. Useful for score cutoffs.
func (p Params) RawForEValue(e float64, m int, n int64) int {
	if e <= 0 || m <= 0 || n <= 0 || p.Lambda <= 0 {
		return math.MaxInt32
	}
	// E = K m n exp(-λ S)  =>  S = ln(K m n / E) / λ
	s := math.Log(p.K*float64(m)*float64(n)/e) / p.Lambda
	return int(math.Ceil(s))
}

// Validate rejects degenerate parameters.
func (p Params) Validate() error {
	if p.Lambda <= 0 || p.K <= 0 {
		return fmt.Errorf("stats: invalid Karlin-Altschul params %+v", p)
	}
	return nil
}
