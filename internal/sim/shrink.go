package sim

import (
	"time"

	"repro/internal/platform"
	"repro/internal/wire"
)

// Shrink reduces a failing scenario to a smaller one that still fails,
// greedily and to a fixpoint: drop master restarts, strip each slave's
// faults (rules, crash/hang/slow schedules), remove non-essential slaves,
// then halve the task list. failing reports whether a candidate scenario
// still reproduces the failure (typically: Run(sc) has violations); budget
// caps how many candidates are tried. The result is the minimal replayable
// reproducer the property tests print.
func Shrink(sc Scenario, failing func(Scenario) bool, budget int) Scenario {
	try := func(cand Scenario) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if cand.Validate() != nil {
			return false
		}
		return failing(cand)
	}
	for changed := true; changed && budget > 0; {
		changed = false
		for _, cand := range candidates(sc) {
			if try(cand) {
				sc = cand
				changed = true
				break
			}
		}
	}
	return sc
}

// candidates enumerates one-step reductions of a scenario, most aggressive
// first so successful shrinks skip many later candidates.
func candidates(sc Scenario) []Scenario {
	var out []Scenario

	// Halve the task list.
	if n := len(sc.TaskResidues); n > 1 {
		c := clone(sc)
		c.TaskResidues = append([]int(nil), sc.TaskResidues[:(n+1)/2]...)
		out = append(out, c)
	}
	// Drop whole slaves (never the first: it is the guaranteed-healthy one
	// in generated scenarios, and something must finish the job).
	for i := len(sc.Slaves) - 1; i > 0; i-- {
		c := clone(sc)
		c.Slaves = append(append([]SlaveSpec(nil), sc.Slaves[:i]...), sc.Slaves[i+1:]...)
		out = append(out, c)
	}
	// Drop all master restarts, then individual ones.
	if len(sc.Restarts) > 0 {
		c := clone(sc)
		c.Restarts = nil
		out = append(out, c)
	}
	for i := range sc.Restarts {
		if len(sc.Restarts) <= 1 {
			break
		}
		c := clone(sc)
		c.Restarts = append(append([]MasterRestart(nil), sc.Restarts[:i]...), sc.Restarts[i+1:]...)
		out = append(out, c)
	}
	// Strip fault features per slave.
	for i, s := range sc.Slaves {
		if s.CrashAt != 0 || s.HangAt != 0 {
			c := clone(sc)
			c.Slaves[i].CrashAt, c.Slaves[i].HangAt, c.Slaves[i].RecoverAt = 0, 0, 0
			out = append(out, c)
		}
		if s.RecoverAt != 0 {
			c := clone(sc)
			c.Slaves[i].RecoverAt = 0
			out = append(out, c)
		}
		if len(s.Slow) > 0 {
			c := clone(sc)
			c.Slaves[i].Slow = nil
			out = append(out, c)
		}
		if len(s.Rules) > 0 {
			c := clone(sc)
			c.Slaves[i].Rules = nil
			out = append(out, c)
		}
		for j := range s.Rules {
			if len(s.Rules) <= 1 {
				break
			}
			c := clone(sc)
			c.Slaves[i].Rules = append(append([]wire.Rule(nil), s.Rules[:j]...), s.Rules[j+1:]...)
			out = append(out, c)
		}
		if s.Jitter != 0 {
			c := clone(sc)
			c.Slaves[i].Jitter = 0
			out = append(out, c)
		}
	}
	// Drop the multi-tenant machinery wholesale, then tenant by tenant.
	if len(sc.Tenants) > 0 {
		c := clone(sc)
		c.Tenants = nil
		out = append(out, c)
	}
	for i := range sc.Tenants {
		if len(sc.Tenants) <= 1 {
			break
		}
		c := clone(sc)
		c.Tenants = append(append([]TenantSpec(nil), sc.Tenants[:i]...), sc.Tenants[i+1:]...)
		out = append(out, c)
	}
	if sc.Autoscale != nil {
		c := clone(sc)
		c.Autoscale = nil
		out = append(out, c)
	}
	if sc.Preempt {
		c := clone(sc)
		c.Preempt = false
		out = append(out, c)
	}
	// Turn knobs off.
	if sc.TearWAL {
		c := clone(sc)
		c.TearWAL = false
		out = append(out, c)
	}
	if sc.Adjust {
		c := clone(sc)
		c.Adjust = false
		out = append(out, c)
	}
	if sc.Lease != 0 {
		c := clone(sc)
		c.Lease = 0
		out = append(out, c)
	}
	if sc.Latency > time.Millisecond {
		c := clone(sc)
		c.Latency = time.Millisecond
		out = append(out, c)
	}
	return out
}

// clone deep-copies the slice-valued fields so candidate mutations never
// alias the original scenario.
func clone(sc Scenario) Scenario {
	c := sc
	c.TaskResidues = append([]int(nil), sc.TaskResidues...)
	c.Slaves = make([]SlaveSpec, len(sc.Slaves))
	for i, s := range sc.Slaves {
		cs := s
		cs.Slow = append([]platform.LoadPhase(nil), s.Slow...)
		cs.Rules = append([]wire.Rule(nil), s.Rules...)
		c.Slaves[i] = cs
	}
	c.Restarts = append([]MasterRestart(nil), sc.Restarts...)
	c.Tenants = append([]TenantSpec(nil), sc.Tenants...)
	if sc.Autoscale != nil {
		a := *sc.Autoscale
		c.Autoscale = &a
	}
	return c
}
