package analysis

import "testing"

// runGolden loads one testdata fixture package, runs a single analyzer
// over it, and fails on every mismatch between the diagnostics and the
// fixture's // want comments — in both directions, so each golden test
// proves the analyzer catches its violations AND stays quiet on the
// clean idioms.
func runGolden(t *testing.T, dir string, a *Analyzer) {
	t.Helper()
	mismatches, err := CheckGolden(dir, []*Analyzer{a})
	if err != nil {
		t.Fatalf("CheckGolden(%s): %v", dir, err)
	}
	for _, m := range mismatches {
		t.Error(m)
	}
}

func TestPurityGolden(t *testing.T) {
	runGolden(t, "testdata/purity/internal/sched", PurityAnalyzer)
}

func TestPurityGoldenSim(t *testing.T) {
	runGolden(t, "testdata/purity/internal/sim", PurityAnalyzer)
}

func TestPurityGoldenSwar(t *testing.T) {
	runGolden(t, "testdata/purity/internal/simd/swar", PurityAnalyzer)
}

func TestPurityGoldenFarrar(t *testing.T) {
	runGolden(t, "testdata/purity/internal/farrar", PurityAnalyzer)
}

func TestExhaustiveGolden(t *testing.T) {
	runGolden(t, "testdata/exhaustive", ExhaustiveAnalyzer)
}

func TestLockguardGolden(t *testing.T) {
	runGolden(t, "testdata/lockguard", LockguardAnalyzer)
}

func TestNilMetricGolden(t *testing.T) {
	runGolden(t, "testdata/nilmetric", NilMetricAnalyzer)
}

func TestErrcheckGolden(t *testing.T) {
	runGolden(t, "testdata/errcheck", ErrcheckAnalyzer)
}

func TestMetricNameGolden(t *testing.T) {
	runGolden(t, "testdata/metricname", MetricNameAnalyzer)
}

func TestUnlockpathGolden(t *testing.T) {
	runGolden(t, "testdata/unlockpath", UnlockpathAnalyzer)
}

func TestCtxflowGolden(t *testing.T) {
	runGolden(t, "testdata/ctxflow", CtxflowAnalyzer)
}

func TestLeakcheckGolden(t *testing.T) {
	runGolden(t, "testdata/leakcheck/internal/jobs", LeakcheckAnalyzer)
}

func TestDeadlineGolden(t *testing.T) {
	runGolden(t, "testdata/deadline", DeadlineAnalyzer)
}
