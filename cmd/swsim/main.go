// Command swsim drives the deterministic cluster simulator
// (internal/sim): seeded chaos scenarios — slave crashes, hangs,
// slow-downs, link faults, master restarts with WAL recovery — run under
// virtual time against the real master/scheduler/jobs code, with every
// distributed-systems invariant checked at the end. The same seed always
// produces the same run, byte for byte, so any reported failure is a
// one-line reproducer.
//
// Usage:
//
//	swsim [-seed N] [-scenarios N] [-duration D] [-json] [-v]
//	swsim -named shard-failover [-seed N] [-scenarios N]
//	swsim -scenario-json file.json
//
// -seed is the first seed of the sweep; -scenarios how many consecutive
// seeds to run; -duration, when positive, stops the sweep early after
// that much wall time (CI smoke mode). -named runs a curated scenario
// (e.g. "shard-failover", the cluster backend's replica-crash story)
// instead of the seeded generator. -scenario-json replays one explicit
// scenario — the shape the property tests print after shrinking.
// Exit status is 1 when any scenario violates an invariant; the failing
// scenario is shrunk to a minimal reproducer and printed as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "first seed of the sweep")
	scenarios := flag.Int("scenarios", 1, "number of consecutive seeds to run")
	duration := flag.Duration("duration", 0, "stop the sweep after this much wall time (0 = run all)")
	jsonOut := flag.Bool("json", false, "emit one JSON report per line instead of text")
	verbose := flag.Bool("v", false, "print every report, not just failures")
	scenarioJSON := flag.String("scenario-json", "", "replay one explicit scenario from a JSON file")
	named := flag.String("named", "", `run a curated scenario by name (e.g. "shard-failover") instead of the generator`)
	flag.Parse()

	if *scenarioJSON != "" {
		os.Exit(replayFile(*scenarioJSON, *jsonOut))
	}

	start := time.Now()
	bad := 0
	ran := 0
	for i := 0; i < *scenarios; i++ {
		if *duration > 0 && time.Since(start) > *duration {
			fmt.Fprintf(os.Stderr, "swsim: duration budget %v spent after %d scenarios\n", *duration, ran)
			break
		}
		s := *seed + int64(i)
		var sc sim.Scenario
		if *named != "" {
			var err error
			if sc, err = sim.Named(*named, s); err != nil {
				fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
				os.Exit(2)
			}
		} else {
			sc = sim.Generate(s)
		}
		rep, err := sim.Run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swsim: seed %d: %v\n", s, err)
			os.Exit(2)
		}
		ran++
		failed := !rep.Done || len(rep.Violations) > 0
		if failed {
			bad++
		}
		if *jsonOut {
			line, _ := json.Marshal(rep)
			fmt.Println(string(line))
		} else if failed || *verbose {
			printReport(rep)
		}
		if failed {
			min := sim.Shrink(sc, failing, 400)
			repro, _ := json.MarshalIndent(min, "", "  ")
			fmt.Fprintf(os.Stderr, "swsim: seed %d shrunken reproducer (replay with -scenario-json):\n%s\n", s, repro)
		}
	}
	if !*jsonOut {
		fmt.Printf("swsim: %d scenarios, %d with violations\n", ran, bad)
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// replayFile runs one explicit scenario from disk and reports it.
func replayFile(path string, jsonOut bool) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		return 2
	}
	var sc sim.Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		fmt.Fprintf(os.Stderr, "swsim: parsing %s: %v\n", path, err)
		return 2
	}
	rep, err := sim.Run(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		return 2
	}
	if jsonOut {
		line, _ := json.Marshal(rep)
		fmt.Println(string(line))
	} else {
		printReport(rep)
	}
	if !rep.Done || len(rep.Violations) > 0 {
		return 1
	}
	return 0
}

func failing(sc sim.Scenario) bool {
	rep, err := sim.Run(sc)
	if err != nil {
		return false
	}
	return !rep.Done || len(rep.Violations) > 0
}

func printReport(rep *sim.Report) {
	status := "ok"
	if !rep.Done || len(rep.Violations) > 0 {
		status = "FAIL"
	}
	fmt.Printf("seed %-6d %-4s makespan=%-12v events=%-6d restarts=%d expired=%d replicas=%d faults=%d fp=%.12s\n",
		rep.Seed, status, rep.Makespan, rep.EventsFired, rep.Restarts, rep.Expired, rep.Replicas, rep.Faults, rep.Fingerprint)
	for _, v := range rep.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
}
