// Command swserve exposes the hybrid Smith-Waterman search engine as a
// small HTTP/JSON service over a resident database.
//
// Usage:
//
//	swserve -db db.fasta -listen :8080 -gpus 1 -sse 2 -jobs-dir /var/lib/swserve
//
// Endpoints:
//
//	GET    /healthz           liveness and uptime
//	GET    /readyz            readiness: backend kind and per-shard health; 503
//	                          while draining or when a shard has no live replica
//	GET    /database          database name/size
//	GET    /metrics           Prometheus text exposition (scheduler, wire, slave, jobs, HTTP)
//	GET    /varz              the same metrics as one JSON document
//	POST   /search            {"queries_fasta": ">q\nACDE...", "top_k": 5, "align": true}
//	                          add "mode": "filtered" (+ filter_k/filter_margin) for the
//	                          two-stage Aho-Corasick prefilter + SW rescore pipeline
//	POST   /align             {"a": "MKVL...", "b": "MKIL...", "global": false}
//	POST   /jobs              same payload as /search; returns 202 + job id
//	GET    /jobs              list jobs (optionally ?state=queued|running|done|failed|canceled)
//	GET    /jobs/{id}         poll one job
//	GET    /jobs/{id}/result  fetch a finished job's search response
//	DELETE /jobs/{id}         cancel a queued or running job
//
// Searches flow through the job subsystem: a bounded queue with admission
// control (-queue, -executors), a content-addressed result cache
// (-cache-bytes) with singleflight coalescing, and — with -jobs-dir — a
// durable store so queued jobs survive a restart.
//
// Multi-tenancy: requests carry a tenant (X-Tenant header or the "tenant"
// body field). -tenant-policy selects the dequeue discipline — "wfq"
// (weighted fair queueing over declared residues) or "drf" (dominant
// resource over queries and residues) instead of the default single FIFO —
// and -tenants sets per-tenant weights and outstanding-job quotas:
//
//	swserve -db db.fasta -tenant-policy drf -tenants "alice:2:0,bob:1:4"
//
// gives alice twice bob's share and caps bob at 4 outstanding jobs
// (over-quota submissions get 429 with a backlog-scaled Retry-After).
//
// With -backend=cluster the database is partitioned into -shards contiguous
// shards, each scanned by -replicas replicated engines under its own
// master-protocol job, and per-query top-k hits are merged with
// deterministic tie-breaking — results are byte-identical to -backend=local
// and a single replica crash mid-job is absorbed by the shard's survivor.
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener closes, requests
// and running jobs in flight get -drain to finish (past the deadline a
// running job is aborted and re-queued for the next boot), then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	hybridsw "repro"
	"repro/internal/cluster"
	"repro/internal/fasta"
	"repro/internal/httpapi"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/seq"
	"repro/internal/seqio"
)

func main() {
	var (
		dbPath = flag.String("db", "", "database FASTA or packed (.swpkd) file")
		listen = flag.String("listen", ":8080", "HTTP listen address")
		gpus   = flag.Int("gpus", 1, "simulated GPU engines")
		sse    = flag.Int("sse", 2, "SSE-core engines")
		policy = flag.String("policy", "PSS", "default allocation policy")
		adjust = flag.Bool("adjust", true, "enable the workload adjustment mechanism")
		drain  = flag.Duration("drain", 15*time.Second, "graceful-shutdown deadline for in-flight requests")
		quiet  = flag.Bool("quiet", false, "suppress the per-request access log")

		backend  = flag.String("backend", "local", `job execution backend: "local" (in-process engines) or "cluster" (sharded scatter-gather fleet)`)
		shards   = flag.Int("shards", 4, "cluster backend: contiguous database shards")
		replicas = flag.Int("replicas", 2, "cluster backend: replica engines per shard")
		kernel   = flag.String("kernel", "", `cluster backend: replica CPU kernel ("farrar" default, "swipe", "multicore")`)

		jobsDir     = flag.String("jobs-dir", "", "directory for the durable job store (empty: in-memory only)")
		executors   = flag.Int("executors", 0, "job executor-pool size (0: default, negative: none)")
		queueDepth  = flag.Int("queue", 0, "max queued jobs before 429 (0: default)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "result-cache budget in bytes (0: default, negative: disabled)")
		maxQueries  = flag.Int("max-queries", 0, "per-request query-count cap (0: default, negative: uncapped)")
		maxResidues = flag.Int64("max-residues", 0, "per-request total-residue cap (0: default, negative: uncapped)")
		maxTopK     = flag.Int("max-topk", 0, "per-request top_k cap (0: default, negative: uncapped)")

		tenantPolicy = flag.String("tenant-policy", "", `multi-tenant dequeue policy: "fifo" (default), "wfq" or "drf"`)
		tenantSpecs  = flag.String("tenants", "", `per-tenant overrides as "name:weight:maxOutstanding,..." (e.g. "alice:2:0,bob:1:4"; 0 = unlimited)`)
	)
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var db []*seq.Sequence
	var err error
	if strings.HasSuffix(*dbPath, ".swpkd") {
		db, _, err = seqio.ReadPacked(*dbPath)
	} else {
		db, err = fasta.ReadFile(*dbPath)
	}
	if err != nil {
		fail("%v", err)
	}
	platform := hybridsw.Platform{
		GPUs:     *gpus,
		SSECores: *sse,
		Policy:   *policy,
		Adjust:   *adjust,
	}
	var fleet *cluster.Fleet
	switch jobs.Backend(*backend) {
	case jobs.BackendLocal:
	case jobs.BackendCluster:
		// Share one registry between the fleet's cluster_* families and the
		// server's HTTP/jobs families, so /metrics shows the whole stack.
		platform.Registry = metrics.NewRegistry()
		fleet, err = cluster.New(cluster.Config{
			DB:        db,
			Shards:    *shards,
			Replicas:  *replicas,
			CPUKernel: *kernel,
			Registry:  platform.Registry,
		})
		if err != nil {
			fail("%v", err)
		}
	default:
		fail("unknown -backend %q (want local or cluster)", *backend)
	}
	tpol, err := jobs.ParseTenantPolicy(*tenantPolicy)
	if err != nil {
		fail("%v", err)
	}
	tenants, err := parseTenants(*tenantSpecs)
	if err != nil {
		fail("%v", err)
	}
	srv, err := httpapi.NewWithOptions(*dbPath, db, platform, httpapi.Options{
		Fleet: fleet,
		Limits: httpapi.Limits{
			MaxQueries:  *maxQueries,
			MaxResidues: *maxResidues,
			MaxTopK:     *maxTopK,
		},
		Jobs: jobs.Config{
			Dir:          *jobsDir,
			Executors:    *executors,
			MaxQueue:     *queueDepth,
			CacheBytes:   *cacheBytes,
			TenantPolicy: tpol,
			Tenants:      tenants,
		},
	})
	if err != nil {
		fail("%v", err)
	}
	if !*quiet {
		srv.Log = log.New(os.Stderr, "swserve: ", log.LstdFlags)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("swserve: %d sequences loaded from %s; listening on %s\n", len(db), *dbPath, *listen)

	select {
	case err := <-errc:
		fail("%v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Fprintf(os.Stderr, "swserve: signal received, draining for up to %s\n", *drain)
		// Flip /readyz to 503 first, so load balancers stop routing here
		// while in-flight requests finish.
		srv.SetDraining(true)
		sdCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sdCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fail("shutdown: %v", err)
		}
		// Drain the job subsystem on the same deadline: running jobs finish
		// or are aborted and re-queued for the next boot, and the durable
		// store is compacted and closed.
		if err := srv.Close(sdCtx); err != nil {
			fail("jobs shutdown: %v", err)
		}
		fmt.Println("swserve: shut down cleanly")
	}
}

// parseTenants parses the -tenants flag: comma-separated
// "name[:weight[:maxOutstanding]]" entries. Weight 0 means the default 1;
// maxOutstanding 0 means unlimited.
func parseTenants(s string) (map[string]jobs.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]jobs.TenantConfig{}
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		name := parts[0]
		if name == "" {
			return nil, fmt.Errorf("-tenants: empty tenant name in %q", entry)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("-tenants: duplicate tenant %q", name)
		}
		var cfg jobs.TenantConfig
		if len(parts) > 1 && parts[1] != "" {
			w, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("-tenants: bad weight %q for %q", parts[1], name)
			}
			cfg.Weight = w
		}
		if len(parts) > 2 && parts[2] != "" {
			n, err := strconv.Atoi(parts[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("-tenants: bad maxOutstanding %q for %q", parts[2], name)
			}
			cfg.MaxOutstanding = n
		}
		if len(parts) > 3 {
			return nil, fmt.Errorf("-tenants: too many fields in %q (want name:weight:maxOutstanding)", entry)
		}
		out[name] = cfg
	}
	return out, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swserve: "+format+"\n", args...)
	os.Exit(1)
}
