package seqio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/seq"
)

// This file implements the master's "convert format" step (Fig. 4): a
// packed binary database format that slaves load faster than FASTA. The
// residues are stored as dense alphabet indices, the header carries the
// counts a slave needs to size its buffers, and records are
// length-prefixed so loading is a single sequential pass with no parsing.
//
// Packed layout (little-endian):
//
//	magic    [8]byte "SWPKDB1\x00"
//	kind     uint8   seq.Kind of the alphabet
//	count    uint64  sequences
//	residues uint64  total residues
//	maxLen   uint64  longest sequence
//	records:
//	  idLen   uint16, id bytes
//	  descLen uint16, desc bytes
//	  seqLen  uint32, residue indices (1 byte each)

var packedMagic = [8]byte{'S', 'W', 'P', 'K', 'D', 'B', '1', 0}

// PackedPath returns the conventional packed file name for a FASTA path.
func PackedPath(fastaPath string) string { return fastaPath + ".swpkd" }

// WritePacked converts sequences to the packed format. Every residue must
// belong to the alphabet.
func WritePacked(path string, alpha *seq.Alphabet, seqs []*seq.Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var residues, maxLen uint64
	for _, s := range seqs {
		residues += uint64(s.Len())
		if uint64(s.Len()) > maxLen {
			maxLen = uint64(s.Len())
		}
	}
	werr := func() error {
		if _, err := w.Write(packedMagic[:]); err != nil {
			return err
		}
		if err := w.WriteByte(byte(alpha.Kind())); err != nil {
			return err
		}
		for _, v := range []uint64{uint64(len(seqs)), residues, maxLen} {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		for i, s := range seqs {
			enc, err := alpha.Encode(s.Residues)
			if err != nil {
				return fmt.Errorf("sequence %d (%s): %w", i, s.ID, err)
			}
			if len(s.ID) > 0xFFFF || len(s.Description) > 0xFFFF {
				return fmt.Errorf("sequence %d: header too long", i)
			}
			if err := binary.Write(w, binary.LittleEndian, uint16(len(s.ID))); err != nil {
				return err
			}
			w.WriteString(s.ID)
			if err := binary.Write(w, binary.LittleEndian, uint16(len(s.Description))); err != nil {
				return err
			}
			w.WriteString(s.Description)
			if err := binary.Write(w, binary.LittleEndian, uint32(len(enc))); err != nil {
				return err
			}
			if _, err := w.Write(enc); err != nil {
				return err
			}
		}
		return w.Flush()
	}()
	if werr != nil {
		_ = f.Close()
		return fmt.Errorf("seqio: packing %s: %w", path, werr)
	}
	return f.Close()
}

// PackedInfo summarizes a packed database without decoding records.
type PackedInfo struct {
	Kind     seq.Kind
	Count    int
	Residues int64
	MaxLen   int
}

// ReadPacked loads a packed database, returning the decoded sequences and
// the header info.
func ReadPacked(path string) ([]*seq.Sequence, PackedInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, PackedInfo{}, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != packedMagic {
		return nil, PackedInfo{}, fmt.Errorf("seqio: %s: not a packed database", path)
	}
	kindByte, err := r.ReadByte()
	if err != nil {
		return nil, PackedInfo{}, err
	}
	var header [3]uint64
	for i := range header {
		if err := binary.Read(r, binary.LittleEndian, &header[i]); err != nil {
			return nil, PackedInfo{}, fmt.Errorf("seqio: %s: truncated header", path)
		}
	}
	info := PackedInfo{
		Kind:     seq.Kind(kindByte),
		Count:    int(header[0]),
		Residues: int64(header[1]),
		MaxLen:   int(header[2]),
	}
	var alpha *seq.Alphabet
	switch info.Kind {
	case seq.DNAKind:
		alpha = seq.DNA
	case seq.RNAKind:
		alpha = seq.RNA
	case seq.ProteinKind:
		alpha = seq.Protein
	default:
		return nil, info, fmt.Errorf("seqio: %s: unknown alphabet kind %d", path, kindByte)
	}

	out := make([]*seq.Sequence, 0, info.Count)
	readStr := func() (string, error) {
		var n uint16
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var total int64
	for i := 0; i < info.Count; i++ {
		id, err := readStr()
		if err != nil {
			return nil, info, fmt.Errorf("seqio: %s: record %d: %w", path, i, err)
		}
		desc, err := readStr()
		if err != nil {
			return nil, info, fmt.Errorf("seqio: %s: record %d: %w", path, i, err)
		}
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, info, fmt.Errorf("seqio: %s: record %d: %w", path, i, err)
		}
		enc := make([]byte, n)
		if _, err := io.ReadFull(r, enc); err != nil {
			return nil, info, fmt.Errorf("seqio: %s: record %d: %w", path, i, err)
		}
		for _, v := range enc {
			if int(v) >= alpha.Size() {
				return nil, info, fmt.Errorf("seqio: %s: record %d: residue index %d out of range", path, i, v)
			}
		}
		out = append(out, &seq.Sequence{ID: id, Description: desc, Residues: alpha.Decode(enc)})
		total += int64(n)
	}
	if total != info.Residues {
		return nil, info, fmt.Errorf("seqio: %s: residue count %d does not match header %d", path, total, info.Residues)
	}
	return out, info, nil
}

// Pack converts a FASTA file to the packed format, guessing the alphabet
// from the first sequence when alpha is nil. Returns the packed info.
func Pack(fastaPath, packedPath string, alpha *seq.Alphabet) (PackedInfo, error) {
	f, err := Open(fastaPath)
	if err != nil {
		return PackedInfo{}, err
	}
	defer f.Close()
	seqs, err := f.GetRange(0, f.Count())
	if err != nil {
		return PackedInfo{}, err
	}
	if alpha == nil {
		alpha = seq.Protein
		if len(seqs) > 0 {
			alpha = seq.GuessAlphabet(seqs[0].Residues)
		}
	}
	if err := WritePacked(packedPath, alpha, seqs); err != nil {
		return PackedInfo{}, err
	}
	_, info, err := ReadPacked(packedPath)
	return info, err
}
