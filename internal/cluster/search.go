package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/master"
	"repro/internal/prefilter"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/slave"
	"repro/internal/wire"
)

// Params configures one scatter-gather search. The knobs mirror the local
// backend's hybridsw.Platform so the two paths stay request-compatible.
type Params struct {
	Policy    string // "SS", "PSS" (default), "Fixed", "WFixed"
	Adjust    bool   // workload adjustment within each shard
	Omega     int    // PSS history window; 0 = default
	TopK      int    // hits returned per query; 0 = all
	AlignBest bool   // traceback rows for each query's best hit

	// Mode selects the pipeline ("" or "full" = exhaustive scan,
	// "filtered" = prefilter + rescore) and Filter parameterizes the
	// filtered pipeline, exactly as on the local backend. The filter
	// automaton is query-derived and candidate windows never span
	// sequences, so filtering commutes with sharding.
	Mode   string
	Filter prefilter.Spec

	// StageProgress, when non-nil, observes filtered-stage completions
	// summed across shards. Totals count per-shard tasks: a filtered job
	// over S shards runs S prefilter passes per query.
	StageProgress func(stage string, done, total int64)
	// OnShards, when non-nil, observes every per-shard progress change
	// with a fresh snapshot of all shard statuses (safe to retain).
	OnShards func([]ShardStatus)
}

// ShardStatus is one shard's live progress within a running search.
type ShardStatus struct {
	Shard int
	State ShardState
	// Cells is the shard master's authoritative finished-cell tally;
	// TotalCells is the shard's full workload (in filtered mode the seed
	// prefilter equivalents — a lower bound, since rescore tasks append
	// as candidates emerge). Rate is the latest reporting replica's
	// instantaneous speed.
	Cells      int64
	TotalCells int64
	Rate       float64
}

// ShardReport is one shard's contribution to a finished search.
type ShardReport struct {
	Shard     int
	Sequences int
	Residues  int64
	// Cells is the DP work this shard computed; Elapsed its scan wall
	// time; GCUPS the two combined. Failovers counts replica deaths the
	// shard absorbed without failing the job.
	Cells     int64
	Elapsed   time.Duration
	GCUPS     float64
	Failovers int
}

// Report is the outcome of a scatter-gather search.
type Report struct {
	PerQuery []master.QueryResult
	Elapsed  time.Duration
	// Cells sums the DP work across every shard — the job's true total,
	// not any single engine's contribution — so GCUPS aggregates the
	// whole fleet's throughput. Shards carries the per-shard breakdown.
	Cells  int64
	Shards []ShardReport
	// Filter aggregates the filtered pipeline's accounting across shards
	// (nil for full scans). Residue and cell fields sum to the local
	// backend's figures; the per-stage done counts are per-shard tasks,
	// so they total queries x shards.
	Filter *master.FilterStats
}

// GCUPS returns the fleet's aggregate throughput in billions of cell
// updates per second: the cross-shard cell sum over the job's wall time.
func (r *Report) GCUPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Cells) / r.Elapsed.Seconds() / 1e9
}

// Search is SearchContext without cancellation.
func (f *Fleet) Search(queries []*seq.Sequence, p Params) (*Report, error) {
	//swcheck:ignore ctxflow Search is the deliberate no-ctx compatibility API; SearchContext is the threaded variant
	return f.SearchContext(context.Background(), queries, p)
}

// SearchContext compares every query against the sharded database: one
// master-protocol job per shard, every live replica registered as a slave,
// per-query hits merged across shards under wire.HitLess. The merged
// ranking is byte-identical to a single-node scan of the same database. It
// is safe for concurrent use; each call builds its own shard masters.
func (f *Fleet) SearchContext(ctx context.Context, queries []*seq.Sequence, p Params) (*Report, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("cluster: no queries")
	}
	if p.Policy == "" {
		p.Policy = "PSS"
	}
	// Validate once; each shard master gets its own policy instance
	// below (policies carry per-job speed-estimation state).
	if _, err := sched.NewPolicy(p.Policy); err != nil {
		return nil, err
	}
	var filtered bool
	switch p.Mode {
	case "", "full":
	case "filtered":
		filtered = true
	default:
		return nil, fmt.Errorf("cluster: unknown mode %q", p.Mode)
	}

	var queryResidues int64
	for _, q := range queries {
		queryResidues += int64(q.Len())
	}
	board := newBoard(f.shards, queries, filtered, queryResidues, p)

	start := time.Now()
	outcomes := make([]shardOutcome, len(f.shards))
	var wg sync.WaitGroup
	for i, s := range f.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			o := &outcomes[i]
			o.results, o.filter, o.report, o.err = f.searchShard(ctx, s, queries, filtered, p, board)
		}(i, s)
	}
	//swcheck:ignore ctxflow every replica caller is ctx-gated (replicaCaller), so cancellation already unblocks this join; returning before it would leak replica goroutines
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, o := range outcomes {
		if o.err != nil {
			return nil, o.err
		}
	}

	rep := &Report{Elapsed: time.Since(start), Shards: make([]ShardReport, len(f.shards))}
	if filtered {
		rep.Filter = &master.FilterStats{Queries: len(queries)}
	}
	for i, o := range outcomes {
		rep.Shards[i] = o.report
		rep.Cells += o.report.Cells
		if filtered {
			rep.Filter.PrefilterDone += o.filter.PrefilterDone
			rep.Filter.RescoreDone += o.filter.RescoreDone
			rep.Filter.ResiduesScanned += o.filter.ResiduesScanned
			rep.Filter.CandidateResidues += o.filter.CandidateResidues
			rep.Filter.Windows += o.filter.Windows
			rep.Filter.RescoredCells += o.filter.RescoredCells
			rep.Filter.FullScanCells += o.filter.FullScanCells
		}
	}
	rep.PerQuery = f.merge(queries, outcomes, p.TopK)
	if f.met != nil {
		mode := p.Mode
		if mode == "" {
			mode = "full"
		}
		f.met.Searches.With(mode).Inc()
	}
	return rep, nil
}

// shardOutcome is one shard's scan result within a job.
type shardOutcome struct {
	results []master.QueryResult
	filter  *master.FilterStats
	report  ShardReport
	err     error
}

// merge gathers each query's per-shard hit lists into the global ranking.
// Shard hit indices were already remapped to global database positions, so
// concatenating and sorting under wire.HitLess yields exactly the order a
// single-node scan produces; the top-k cut commutes with the merge because
// every shard already kept its own k best.
func (f *Fleet) merge(queries []*seq.Sequence, outcomes []shardOutcome, topK int) []master.QueryResult {
	merged := make([]master.QueryResult, len(queries))
	for qi := range queries {
		qr := master.QueryResult{Query: queries[qi].ID}
		var hits []wire.Hit
		for _, o := range outcomes {
			sq := o.results[qi]
			hits = append(hits, sq.Hits...)
			if sq.Elapsed > qr.Elapsed {
				qr.Elapsed = sq.Elapsed
			}
			qr.Replicas += sq.Replicas
		}
		wire.SortHits(hits)
		if topK > 0 && len(hits) > topK {
			hits = hits[:topK]
		}
		// Each shard aligned its own best hit; only the global best keeps
		// its traceback so the payload matches a single-node run, where
		// exactly one hit per query carries rows.
		for i := 1; i < len(hits); i++ {
			hits[i].QueryRow, hits[i].TargetRow = nil, nil
			hits[i].QueryStart, hits[i].QueryEnd = 0, 0
			hits[i].TargetStart, hits[i].TargetEnd = 0, 0
		}
		qr.Hits = hits
		if len(hits) > 0 {
			if si := f.shardOf(hits[0].Index); si >= 0 {
				qr.Slave = outcomes[si].results[qi].Slave
			}
		}
		merged[qi] = qr
	}
	return merged
}

// shardOf maps a global database index to its shard.
func (f *Fleet) shardOf(index int) int {
	for i, s := range f.shards {
		if index >= s.offset && index < s.offset+len(s.db) {
			return i
		}
	}
	return -1
}

// searchShard runs one shard's scan as a full master-protocol job: a
// dedicated master over the shard's residues, every live replica running
// the standard slave loop against it. Replica death surfaces as a failed
// protocol call, which cancels the replica's in-flight scan and requeues
// its tasks for the survivors — the same path a dropped TCP connection
// takes — with the shard master's lease as the backstop for silent hangs.
func (f *Fleet) searchShard(ctx context.Context, s *shard, queries []*seq.Sequence, filtered bool, p Params, board *progressBoard) ([]master.QueryResult, *master.FilterStats, ShardReport, error) {
	report := ShardReport{Shard: s.index, Sequences: len(s.db), Residues: s.residues}
	fail := func(err error) ([]master.QueryResult, *master.FilterStats, ShardReport, error) {
		board.setState(s.index, ShardFailed)
		if f.met != nil {
			f.met.ShardScans.With("failed").Inc()
		}
		return nil, nil, report, err
	}

	pol, err := sched.NewPolicy(p.Policy)
	if err != nil {
		return fail(err)
	}
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: s.residues,
		Policy:     pol,
		Adjust:     p.Adjust,
		Omega:      p.Omega,
		Lease:      f.cfg.Lease,
		Registry:   f.cfg.Registry,
		Filtered:   filtered,
		Filter:     p.Filter,
		StageProgress: func(stage string, done, total int64) {
			board.setStage(s.index, stage, done, total)
		},
		Progress: func(doneCells int64, rate float64) {
			board.setProgress(s.index, doneCells, rate)
		},
	})
	if err != nil {
		return fail(err)
	}
	defer m.Close()

	replicas := s.liveReplicas()
	if len(replicas) == 0 {
		return fail(fmt.Errorf("cluster: shard %d has no live replica", s.index))
	}
	onFailover := func() {
		report.Failovers++
		board.setState(s.index, ShardScanning)
		if f.met != nil {
			f.met.Failovers.Inc()
		}
	}
	callers := make([]*replicaCaller, len(replicas))
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, r := range replicas {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			callers[i] = newReplicaCaller(ctx, r, wire.Meter(wire.Local{H: m}, f.wireMet), m, onFailover)
			_, errs[i] = slave.Run(callers[i], r.eng, slave.Options{
				NotifyEvery: 20 * time.Millisecond,
				Poll:        5 * time.Millisecond,
				TopK:        p.TopK,
				AlignBest:   p.AlignBest,
				Metrics:     f.slaveMet,
			})
		}(i, r)
	}
	//swcheck:ignore ctxflow the joined replica loops are ctx-gated via replicaCaller, so cancellation already unblocks this join
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, report, err
	}
	for i, rerr := range errs {
		// A killed replica's loop ends with a "replica down" call failure;
		// that is the fault we absorb. Any other error is a real engine or
		// protocol failure and fails the shard.
		if rerr != nil && !callers[i].Down() {
			return fail(fmt.Errorf("cluster: shard %d replica %s: %w", s.index, replicas[i].name, rerr))
		}
	}
	select {
	case <-m.Done():
	default:
		return fail(fmt.Errorf("cluster: shard %d lost all %d replicas mid-scan (%d failovers)", s.index, len(replicas), report.Failovers))
	}

	results := m.Results()
	for qi := range results {
		for hi := range results[qi].Hits {
			// Shard engines index their own database slice; lift hits to
			// global database positions so the cross-shard merge (and the
			// tie-break identity with single-node runs) works on one axis.
			results[qi].Hits[hi].Index += s.offset
		}
	}
	var fs *master.FilterStats
	if filtered {
		stats := m.FilterStats()
		fs = &stats
	}
	report.Elapsed = m.Elapsed()
	if filtered {
		report.Cells = fs.RescoredCells
	} else {
		for _, q := range queries {
			report.Cells += int64(q.Len()) * s.residues
		}
	}
	if report.Elapsed > 0 {
		report.GCUPS = float64(report.Cells) / report.Elapsed.Seconds() / 1e9
	}
	board.finish(s.index)
	if f.met != nil {
		f.met.ShardScans.With("done").Inc()
		f.met.ShardScanSeconds.Observe(report.Elapsed.Seconds())
	}
	return results, fs, report, nil
}
