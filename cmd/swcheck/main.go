// Command swcheck is the repository's static-analysis suite: a
// stdlib-only (go/parser + go/types, no x/tools) multi-analyzer driver
// that enforces the invariants DESIGN §7 documents — scheduler purity,
// enum-switch exhaustiveness, mutex discipline, nil-guarded metric
// handles, checked errors and the subsystem_name_unit metric naming
// convention. `make lint` (and therefore `make test` and CI) runs it over
// the whole module.
//
// Usage:
//
//	swcheck [-only a,b] [-list] [-json] [-ignores] [package pattern ...]
//
// Patterns are directories, optionally ending in /... for a recursive
// walk (default ./... from the enclosing module root). Exit status is 1
// when any diagnostic is reported; each is printed as
//
//	file:line:col: [analyzer] message
//
// -json emits the findings as a JSON array instead — including the
// suppressed ones, flagged "ignored" with the directive's reason — for
// CI artifacts and tooling; the exit status still counts only live
// findings. -ignores audits every //swcheck:ignore directive and fails
// when one is stale (no longer suppresses anything).
//
// A finding can be suppressed with a trailing or preceding comment
// `//swcheck:ignore <analyzer> <reason>`; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings (including ignored ones) as a JSON array")
	ignores := flag.Bool("ignores", false, "audit //swcheck:ignore directives; stale ones fail")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		var err error
		analyzers, err = analysis.Select(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "swcheck: %v\n", err)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "swcheck: %v\n", err)
		os.Exit(2)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swcheck: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *jsonOut || *ignores {
		diags, uses, err := analysis.Findings(root, patterns, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swcheck: %v\n", err)
			os.Exit(2)
		}
		if *ignores {
			stale := 0
			for _, u := range uses {
				status := "live"
				if !u.Live {
					status = "STALE"
					stale++
				}
				fmt.Printf("%s:%d: [%s] %s — %s\n", u.File, u.Line, u.Analyzer, status, u.Reason)
			}
			if stale > 0 {
				fmt.Fprintf(os.Stderr, "swcheck: %d stale ignore directive(s): delete them or restore the finding they suppressed\n", stale)
				os.Exit(1)
			}
			return
		}
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "swcheck: %v\n", err)
			os.Exit(2)
		}
		live := 0
		for _, d := range diags {
			if !d.Ignored {
				live++
			}
		}
		if live > 0 {
			fmt.Fprintf(os.Stderr, "swcheck: %d finding(s)\n", live)
			os.Exit(1)
		}
		return
	}

	n, err := analysis.Run(root, patterns, analyzers, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swcheck: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "swcheck: %d finding(s)\n", n)
		os.Exit(1)
	}
}
