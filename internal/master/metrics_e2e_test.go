package master_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/master"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/slave"
	"repro/internal/wire"
)

// TestMetricsEndToEnd drives a real TCP master/slave job with the full
// instrumentation stack attached and asserts that (a) the scheduler, wire
// and slave families carry the job's numbers, (b) the Prometheus
// exposition renders them, and (c) the master's event log parses with the
// same reader as a discrete-event trace — the unification the metrics
// package promises.
func TestMetricsEndToEnd(t *testing.T) {
	db, queries := testJob(t, 4)
	reg := metrics.NewRegistry()
	var evBuf bytes.Buffer
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     &sched.PSS{},
		Adjust:     true,
		Registry:   reg,
		Events:     metrics.NewEventLog(&evBuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	wireMet := wire.NewMetrics(reg)
	slaveMet := slave.NewMetrics(reg)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		eng, _ := slave.NewFarrarEngine("sse", score.DefaultProtein(), db, 0)
		client, err := wire.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			caller := wire.Meter(client, wireMet)
			defer caller.Close()
			if _, err := slave.Run(caller, eng, slave.Options{
				NotifyEvery: 10 * time.Millisecond,
				Poll:        5 * time.Millisecond,
				Metrics:     slaveMet,
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := m.Wait(time.Second); err != nil {
		t.Fatal(err)
	}

	// (a) Registration is idempotent, so re-attaching reads the live values.
	sm := sched.NewMetrics(reg)
	if got := sm.TasksCompleted.Value(); got != float64(len(queries)) {
		t.Errorf("sched_tasks_completed_total = %v, want %d", got, len(queries))
	}
	if sm.TasksAssigned.Value() < float64(len(queries)) {
		t.Errorf("sched_tasks_assigned_total = %v, want >= %d", sm.TasksAssigned.Value(), len(queries))
	}
	if got := sm.FinishedTasks.Value(); got != float64(len(queries)) {
		t.Errorf("sched_finished_tasks = %v, want %d", got, len(queries))
	}
	for _, kind := range []string{"Register", "Request", "Complete"} {
		if wireMet.CallSeconds.With(kind).Count() == 0 {
			t.Errorf("wire_call_seconds{kind=%q} has no samples", kind)
		}
	}
	if slaveMet.TaskSeconds.Count() == 0 {
		t.Error("slave_task_seconds has no samples")
	}
	if slaveMet.Cells.Value() <= 0 {
		t.Errorf("slave_cells_computed_total = %v", slaveMet.Cells.Value())
	}

	// (b) The exposition carries every subsystem.
	var expo bytes.Buffer
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sched_tasks_completed_total " + "4",
		"sched_slave_rate_gcups{slave=",
		"wire_call_seconds_bucket{kind=\"Complete\",le=",
		"slave_task_seconds_count",
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// (c) The event log is a valid trace for the DES parser.
	evs, err := platform.ReadTrace(&evBuf)
	if err != nil {
		t.Fatalf("event log unreadable as a trace: %v", err)
	}
	counts := map[string]int{}
	execCompleted := 0
	for _, e := range evs {
		counts[e.Kind]++
		if e.Kind == "exec" {
			if e.PE == "" || e.EndSec < e.TimeSec {
				t.Errorf("malformed exec event: %+v", e)
			}
			if e.Completed {
				execCompleted++
			}
		}
	}
	if counts["assign"] == 0 {
		t.Error("no assign events")
	}
	if execCompleted != len(queries) {
		t.Errorf("%d completed exec events, want %d", execCompleted, len(queries))
	}
	sum, ok := platform.TraceSummary(evs)
	if !ok {
		t.Fatal("no overall summary event")
	}
	if sum.MakespanSec <= 0 || sum.CellsDone <= 0 || sum.TotalGCUPS <= 0 {
		t.Errorf("summary = %+v", sum)
	}
}
