package farrar

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestMetricsObserve(t *testing.T) {
	r := metrics.NewRegistry()
	m := NewMetrics(r)
	m.Observe(Stats{Scored8: 5, Fallback16: 2})
	m.Observe(Stats{Scored8: 1, FallbackSW: 3})

	if got := m.Fallback.With(Tier8).Value(); got != 6 {
		t.Errorf("8bit counter = %v, want 6", got)
	}
	if got := m.Fallback.With(Tier16).Value(); got != 2 {
		t.Errorf("16bit counter = %v, want 2", got)
	}
	if got := m.Fallback.With(TierScalar).Value(); got != 3 {
		t.Errorf("scalar counter = %v, want 3", got)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`farrar_fallback_total{tier="8bit"} 6`,
		`farrar_fallback_total{tier="16bit"} 2`,
		`farrar_fallback_total{tier="scalar"} 3`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.Observe(Stats{Scored8: 1}) // must not panic
}
