// Package farrar implements Farrar's striped Smith-Waterman algorithm
// (Farrar 2007, "Striped Smith-Waterman speeds database searches six times
// over other SIMD implementations") on the emulated SSE2 ISA of
// internal/simd.
//
// This is the algorithm the paper runs on its multicore SSE slaves (§IV-C),
// in the paper's *adapted* form: where Farrar's original held DP values as
// biased unsigned integers, the adaptation uses signed integers, raising the
// representable maximum score to 255 in the 8-bit kernel and 32767 in the
// 16-bit kernel. The query is laid out in the striped pattern: with L vector
// lanes and segment length segLen = ceil(m/L), vector element (lane l,
// segment s) holds query position l*segLen + s, which moves the inter-lane
// dependency of the F (vertical gap) recurrence out of the inner loop into a
// rare correction pass.
//
// A Kernel precomputes the striped query profile once and scores many
// database sequences against it, trying the 8-bit kernel first and falling
// back to the 16-bit kernel — and ultimately to the scalar reference — on
// score overflow, exactly like the SSE original.
package farrar

import (
	"fmt"

	"repro/internal/score"
	"repro/internal/simd"
	"repro/internal/sw"
)

const (
	lanes8  = 16 // byte lanes in a 128-bit register
	lanes16 = 8  // 16-bit lanes in a 128-bit register
)

// Stats counts kernel dispatch decisions across the lifetime of a Kernel.
type Stats struct {
	Scored8    int64 // sequences fully resolved by the 8-bit kernel
	Fallback16 int64 // sequences that overflowed 8-bit and used 16-bit
	FallbackSW int64 // sequences that overflowed 16-bit and used the scalar reference
}

// Kernel holds the striped query profiles for one query sequence.
type Kernel struct {
	query  []byte
	scheme score.Scheme

	bias    int // -matrix.Min(), added to 8-bit profile entries
	segLen8 int
	prof8   [][]simd.U8x16 // prof8[residueIndex][segment]

	segLen16 int
	prof16   [][]simd.I16x8 // built lazily on first 8-bit overflow

	stats Stats
}

// NewKernel validates the inputs and builds the 8-bit striped profile.
func NewKernel(query []byte, s score.Scheme) (*Kernel, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(query) == 0 {
		return nil, fmt.Errorf("farrar: empty query")
	}
	if err := s.Matrix.Alphabet().Validate(query); err != nil {
		return nil, fmt.Errorf("farrar: query: %w", err)
	}
	k := &Kernel{query: query, scheme: s, bias: -s.Matrix.Min()}
	if k.bias < 0 {
		k.bias = 0
	}
	k.buildProfile8()
	return k, nil
}

// Query returns the query sequence the kernel was built for.
func (k *Kernel) Query() []byte { return k.query }

// Stats returns cumulative kernel dispatch counters.
func (k *Kernel) Stats() Stats { return k.stats }

func (k *Kernel) buildProfile8() {
	m := len(k.query)
	k.segLen8 = (m + lanes8 - 1) / lanes8
	alpha := k.scheme.Matrix.Alphabet()
	// One row per alphabet residue plus a final all-minimum row used for
	// database residues outside the alphabet (matching the scalar
	// reference, which scores them at the matrix minimum).
	k.prof8 = make([][]simd.U8x16, alpha.Size()+1)
	for r := 0; r <= alpha.Size(); r++ {
		segs := make([]simd.U8x16, k.segLen8)
		var row []int
		if r < alpha.Size() {
			row = k.scheme.Matrix.Row(r)
		}
		for s := 0; s < k.segLen8; s++ {
			var v simd.U8x16
			for l := 0; l < lanes8; l++ {
				qi := l*k.segLen8 + s
				sc := k.scheme.Matrix.Min() // padding lanes and invalid residues score worst
				if qi < m && row != nil {
					sc = row[alpha.Index(k.query[qi])]
				}
				v[l] = uint8(sc + k.bias)
			}
			segs[s] = v
		}
		k.prof8[r] = segs
	}
}

func (k *Kernel) buildProfile16() {
	m := len(k.query)
	k.segLen16 = (m + lanes16 - 1) / lanes16
	alpha := k.scheme.Matrix.Alphabet()
	k.prof16 = make([][]simd.I16x8, alpha.Size()+1)
	for r := 0; r <= alpha.Size(); r++ {
		segs := make([]simd.I16x8, k.segLen16)
		var row []int
		if r < alpha.Size() {
			row = k.scheme.Matrix.Row(r)
		}
		for s := 0; s < k.segLen16; s++ {
			var v simd.I16x8
			for l := 0; l < lanes16; l++ {
				qi := l*k.segLen16 + s
				sc := k.scheme.Matrix.Min()
				if qi < m && row != nil {
					sc = row[alpha.Index(k.query[qi])]
				}
				v[l] = int16(sc)
			}
			segs[s] = v
		}
		k.prof16[r] = segs
	}
}

// Score returns the optimal local alignment score of the kernel's query vs
// target, automatically escalating 8-bit -> 16-bit -> scalar on overflow.
func (k *Kernel) Score(target []byte) int {
	if sc, ok := k.ScoreU8(target); ok {
		k.stats.Scored8++
		return sc
	}
	if sc, ok := k.ScoreI16(target); ok {
		k.stats.Fallback16++
		return sc
	}
	k.stats.FallbackSW++
	return sw.Score(k.query, target, k.scheme)
}

// Cells returns the DP cell count of scoring target, the GCUPS currency.
func (k *Kernel) Cells(target []byte) int64 {
	return sw.Cells(len(k.query), len(target))
}

// ScoreU8 runs the 8-bit saturating kernel. ok is false when the score may
// have overflowed the 8-bit range, in which case the result is unusable and
// the caller must rerun with a wider kernel.
func (k *Kernel) ScoreU8(target []byte) (sc int, ok bool) {
	if len(target) == 0 {
		return 0, true
	}
	segLen := k.segLen8
	alpha := k.scheme.Matrix.Alphabet()
	vBias := simd.SplatU8(uint8(k.bias))
	vGapOE := simd.SplatU8(uint8(k.scheme.Gap.Open + k.scheme.Gap.Extend))
	vGapE := simd.SplatU8(uint8(k.scheme.Gap.Extend))
	var vMax simd.U8x16

	vHLoad := make([]simd.U8x16, segLen)
	vHStore := make([]simd.U8x16, segLen)
	vE := make([]simd.U8x16, segLen)

	for _, c := range target {
		ri := alpha.Index(c)
		if ri < 0 {
			ri = alpha.Size() // all-minimum row for out-of-alphabet residues
		}
		prof := k.prof8[ri]

		var vF simd.U8x16
		// H of query position l*segLen-1 feeds lane l segment 0: shift the
		// last stored segment left one lane (zero fill = H[0][j-1] = 0).
		vH := simd.ShiftLanesLeftU8(vHLoad[segLen-1], 1)
		for s := 0; s < segLen; s++ {
			vH = simd.SubSatU8(simd.AddSatU8(vH, prof[s]), vBias)
			vH = simd.MaxU8(vH, vE[s])
			vH = simd.MaxU8(vH, vF)
			vMax = simd.MaxU8(vMax, vH)
			vHStore[s] = vH

			vHGap := simd.SubSatU8(vH, vGapOE)
			vE[s] = simd.MaxU8(simd.SubSatU8(vE[s], vGapE), vHGap)
			vF = simd.MaxU8(simd.SubSatU8(vF, vGapE), vHGap)
			vH = vHLoad[s]
		}

		// Lazy-F correction (Farrar's loop): keep sweeping the decaying F
		// carry through the striped column while it can still beat the
		// fresh gap openings the main pass already accounted for. The
		// carry only decays, so the loop terminates; guard bounds it
		// defensively.
		vF = simd.ShiftLanesLeftU8(vF, 1)
		for s, guard := 0, segLen*(lanes8+1); simd.AnyGtU8(vF, simd.SubSatU8(vHStore[s], vGapOE)) && guard > 0; guard-- {
			nh := simd.MaxU8(vHStore[s], vF)
			if nh != vHStore[s] {
				vHStore[s] = nh
				vMax = simd.MaxU8(vMax, nh)
				// A raised H can feed a horizontal gap in the next column.
				vE[s] = simd.MaxU8(vE[s], simd.SubSatU8(nh, vGapOE))
			}
			vF = simd.SubSatU8(vF, vGapE)
			if s++; s == segLen {
				s = 0
				vF = simd.ShiftLanesLeftU8(vF, 1)
			}
		}

		vHLoad, vHStore = vHStore, vHLoad
	}
	best := int(simd.HMaxU8(vMax))
	if best+k.bias >= 255 {
		return 0, false // a saturating add may have clipped the true score
	}
	return best, true
}

// ScoreI16 runs the 16-bit signed kernel (the paper's adapted variant). ok
// is false when the score reached the int16 ceiling.
func (k *Kernel) ScoreI16(target []byte) (sc int, ok bool) {
	if len(target) == 0 {
		return 0, true
	}
	if k.prof16 == nil {
		k.buildProfile16()
	}
	segLen := k.segLen16
	alpha := k.scheme.Matrix.Alphabet()
	vGapOE := simd.SplatI16(int16(k.scheme.Gap.Open + k.scheme.Gap.Extend))
	vGapE := simd.SplatI16(int16(k.scheme.Gap.Extend))
	var vZero simd.I16x8
	vMax := simd.SplatI16(0)

	vHLoad := make([]simd.I16x8, segLen)
	vHStore := make([]simd.I16x8, segLen)
	vE := make([]simd.I16x8, segLen)

	for _, c := range target {
		ri := alpha.Index(c)
		if ri < 0 {
			ri = alpha.Size()
		}
		prof := k.prof16[ri]

		vF := vZero
		vH := simd.ShiftLanesLeftI16(vHLoad[segLen-1], 1, 0)
		for s := 0; s < segLen; s++ {
			vH = simd.AddSatI16(vH, prof[s])
			vH = simd.MaxI16(vH, vE[s])
			vH = simd.MaxI16(vH, vF)
			vH = simd.MaxI16(vH, vZero) // the Smith-Waterman 0 floor
			vMax = simd.MaxI16(vMax, vH)
			vHStore[s] = vH

			vHGap := simd.SubSatI16(vH, vGapOE)
			vE[s] = simd.MaxI16(simd.SubSatI16(vE[s], vGapE), vHGap)
			vF = simd.MaxI16(simd.SubSatI16(vF, vGapE), vHGap)
			vH = vHLoad[s]
		}

		// Lazy-F correction, signed flavor. The shift fills with the int16
		// minimum (F of the row-0 boundary is -infinity); filling with 0
		// would keep the carry alive forever against negative thresholds.
		vF = simd.ShiftLanesLeftI16(vF, 1, -32768)
		for s, guard := 0, segLen*(lanes16+1); simd.AnyGtI16(vF, simd.SubSatI16(vHStore[s], vGapOE)) && guard > 0; guard-- {
			nh := simd.MaxI16(vHStore[s], vF)
			if nh != vHStore[s] {
				vHStore[s] = nh
				vMax = simd.MaxI16(vMax, nh)
				vE[s] = simd.MaxI16(vE[s], simd.SubSatI16(nh, vGapOE))
			}
			vF = simd.SubSatI16(vF, vGapE)
			if s++; s == segLen {
				s = 0
				vF = simd.ShiftLanesLeftI16(vF, 1, -32768)
			}
		}

		vHLoad, vHStore = vHStore, vHLoad
	}
	best := int(simd.HMaxI16(vMax))
	if best >= 32767 {
		return 0, false
	}
	return best, true
}
