// Package httpapi exposes the hybrid search engine as a small REST service
// (cmd/swserve): a database is loaded at startup and queries are submitted
// over HTTP, making the task execution environment usable from any
// language. JSON in, JSON out, stdlib only.
//
// Every route runs behind a middleware stack (request IDs, a body-size
// cap, request metrics and an optional access log), and the server's
// metrics registry — shared with the search platform, so scheduler, wire
// and slave families accumulate across requests — is exposed at
// GET /metrics (Prometheus text exposition) and GET /varz (JSON).
//
// Searches execute through the asynchronous job subsystem
// (internal/jobs): POST /jobs submits work and returns immediately,
// GET /jobs/{id} polls it, GET /jobs/{id}/result fetches the outcome and
// DELETE /jobs/{id} aborts real in-flight work. POST /search remains the
// synchronous facade — it submits a job and waits, so it shares the same
// admission control, singleflight coalescing and result cache, and a
// disconnected client cancels the underlying search instead of letting it
// burn to completion.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	hybridsw "repro"
	"repro/internal/cluster"
	"repro/internal/fasta"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/prefilter"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/slave"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Limits are the request-validation caps: a request exceeding one is
// rejected with 422 before any work is admitted, so a single oversized
// FASTA body cannot monopolize the server.
type Limits struct {
	MaxQueries  int   // queries per request
	MaxResidues int64 // total query residues per request
	MaxTopK     int   // hits per query a request may ask for
	MaxAlignLen int   // per-sequence length cap for POST /align
}

// DefaultLimits caps requests at sizes a shared deployment tolerates;
// every field can be raised (or zeroed to disable) via Options.Limits.
var DefaultLimits = Limits{
	MaxQueries:  64,
	MaxResidues: 1 << 20,
	MaxTopK:     1000,
	MaxAlignLen: 100_000,
}

// Options tunes a Server beyond the platform defaults.
type Options struct {
	// Limits are the validation caps; zero fields take DefaultLimits
	// values. A negative field disables that cap.
	Limits Limits
	// Jobs configures the job subsystem (queue depth, executor-pool size,
	// cache budget, durable dir). Run, Salt, Metrics, MaxQueries and
	// MaxResidues are supplied by the server and need not be set.
	Jobs jobs.Config
	// Fleet, when non-nil, routes every job onto the sharded scatter-gather
	// backend (internal/cluster) instead of the in-process engine set. The
	// fleet must be built over the same database the server was.
	Fleet *cluster.Fleet
}

// Server serves search requests against one resident database.
type Server struct {
	db       []*seq.Sequence
	dbName   string
	residues int64
	platform hybridsw.Platform
	started  time.Time
	reg      *metrics.Registry
	met      *httpMetrics
	maxBody  int64
	limits   Limits
	jobs     *jobs.Manager
	fleet    *cluster.Fleet // nil on the local backend

	// draining flips once shutdown starts; /readyz answers 503 from then
	// on so load balancers drain traffic before Close aborts running jobs.
	draining atomic.Bool

	// Log, when non-nil, receives one access-log line per request
	// (method, path, status, latency, request ID). Set it before Handler
	// is served.
	Log *log.Logger
}

// New builds a server over a database with a default platform configuration
// (individual request fields can override parts of it). If
// platform.Registry is nil a fresh registry is created; either way every
// search instruments into the registry that /metrics serves.
func New(dbName string, db []*seq.Sequence, platform hybridsw.Platform) (*Server, error) {
	return NewWithOptions(dbName, db, platform, Options{})
}

// NewWithOptions is New with explicit validation caps and job-subsystem
// configuration.
func NewWithOptions(dbName string, db []*seq.Sequence, platform hybridsw.Platform, opts Options) (*Server, error) {
	if len(db) == 0 {
		return nil, fmt.Errorf("httpapi: empty database")
	}
	reg := platform.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
		platform.Registry = reg
	}
	// Pre-register the scheduler, wire, slave and prefilter families so a
	// scrape before the first search already shows the full taxonomy.
	sched.NewMetrics(reg)
	wire.NewMetrics(reg)
	slave.NewMetrics(reg)
	prefilter.NewMetrics(reg)
	s := &Server{
		db: db, dbName: dbName, platform: platform, started: time.Now(),
		reg: reg, met: newHTTPMetrics(reg), maxBody: DefaultMaxBody,
		limits: fillLimits(opts.Limits),
	}
	for _, d := range db {
		s.residues += int64(d.Len())
	}
	jc := opts.Jobs
	if opts.Fleet != nil {
		s.fleet = opts.Fleet
		jc.Executor = &clusterExecutor{s: s, fleet: opts.Fleet}
	} else {
		jc.Executor = &localExecutor{s: s}
	}
	// The ranking-identity contract makes local and cluster results
	// byte-compatible, so the cache salt deliberately ignores the backend.
	jc.Salt = s.cacheSalt()
	jc.Metrics = jobs.NewMetrics(reg)
	jc.MaxQueries = s.limits.MaxQueries
	jc.MaxResidues = s.limits.MaxResidues
	mgr, err := jobs.New(jc)
	if err != nil {
		return nil, err
	}
	s.jobs = mgr
	return s, nil
}

// fillLimits resolves the zero-means-default, negative-means-disabled
// convention field by field.
func fillLimits(l Limits) Limits {
	fill := func(v, def int) int {
		if v == 0 {
			return def
		}
		if v < 0 {
			return 0
		}
		return v
	}
	l.MaxQueries = fill(l.MaxQueries, DefaultLimits.MaxQueries)
	l.MaxTopK = fill(l.MaxTopK, DefaultLimits.MaxTopK)
	l.MaxAlignLen = fill(l.MaxAlignLen, DefaultLimits.MaxAlignLen)
	switch {
	case l.MaxResidues == 0:
		l.MaxResidues = DefaultLimits.MaxResidues
	case l.MaxResidues < 0:
		l.MaxResidues = 0
	}
	return l
}

// cacheSalt folds the serving identity into every job's cache key, so a
// redeploy over a different database or scoring scheme can never serve
// stale results from a reused jobs dir.
func (s *Server) cacheSalt() string {
	scheme := s.platform.Scheme
	if scheme.Matrix == nil {
		scheme = hybridsw.DefaultScheme()
	}
	return fmt.Sprintf("%s|%d|%d|%s|%s", s.dbName, len(s.db), s.residues,
		scheme.Matrix.Name(), scheme.Gap)
}

// Jobs exposes the job subsystem (tests and embedders).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// SetDraining flips the /readyz signal: a draining server answers 503 so
// load balancers stop routing to it ahead of Close. Job submission is
// governed separately by the job subsystem's own drain state.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Close drains the job subsystem: running searches get until ctx ends to
// finish, then are aborted and re-queued for the next boot; the durable
// store (if any) is compacted and closed. /readyz flips to 503 first.
func (s *Server) Close(ctx context.Context) error {
	s.draining.Store(true)
	return s.jobs.Close(ctx)
}

// Registry returns the server's metrics registry (the one /metrics
// serves).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReady))
	mux.HandleFunc("GET /database", s.instrument("database", s.handleDatabase))
	mux.HandleFunc("POST /search", s.instrument("search", s.handleSearch))
	mux.HandleFunc("POST /align", s.instrument("align", s.handleAlign))
	mux.HandleFunc("POST /jobs", s.instrument("jobs_submit", s.handleJobSubmit))
	mux.HandleFunc("GET /jobs", s.instrument("jobs_list", s.handleJobList))
	mux.HandleFunc("GET /jobs/{id}", s.instrument("jobs_get", s.handleJobGet))
	mux.HandleFunc("GET /jobs/{id}/result", s.instrument("jobs_result", s.handleJobResult))
	mux.HandleFunc("DELETE /jobs/{id}", s.instrument("jobs_cancel", s.handleJobCancel))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.reg.Handler().ServeHTTP))
	mux.HandleFunc("GET /varz", s.instrument("varz", s.reg.VarzHandler().ServeHTTP))
	return mux
}

// decodeJSON decodes the request body into v, writing the appropriate
// error response (413 when the body-size cap fired, 400 otherwise) and
// returning false on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleDatabase(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"name":      s.dbName,
		"sequences": len(s.db),
		"residues":  s.residues,
	})
}

// SearchRequest is the POST /search and POST /jobs payload.
type SearchRequest struct {
	// QueriesFasta holds one or more FASTA records.
	QueriesFasta string `json:"queries_fasta"`
	TopK         int    `json:"top_k,omitempty"`
	Policy       string `json:"policy,omitempty"`
	Align        bool   `json:"align,omitempty"`
	// Mode selects the pipeline: "" or "full" scans every database cell;
	// "filtered" runs the Aho-Corasick seed prefilter and rescores only the
	// candidate windows (exact scores inside windows, possible misses for
	// hits sharing no seed k-mer with the query).
	Mode string `json:"mode,omitempty"`
	// FilterK and FilterMargin tune filtered mode: seed k-mer length and
	// window margin in residues (0 = engine defaults).
	FilterK      int `json:"filter_k,omitempty"`
	FilterMargin int `json:"filter_margin,omitempty"`
	// Priority orders the job queue: higher runs first, FIFO within a
	// level. Only meaningful while the queue is backed up.
	Priority int `json:"priority,omitempty"`
	// Tenant names the submitting tenant for fair queueing and quotas; the
	// X-Tenant request header takes precedence over this field. Empty means
	// the anonymous default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// SearchHit is one reported hit.
type SearchHit struct {
	SeqID  string   `json:"seq_id"`
	Score  int      `json:"score"`
	EValue *float64 `json:"evalue,omitempty"`

	QueryRow  string `json:"query_row,omitempty"`
	TargetRow string `json:"target_row,omitempty"`
}

// SearchResult is one query's outcome.
type SearchResult struct {
	Query string      `json:"query"`
	Hits  []SearchHit `json:"hits"`
}

// FilterReport is the filtered pipeline's accounting in a response.
type FilterReport struct {
	Selectivity       float64 `json:"selectivity"`
	Windows           int     `json:"windows"`
	ResiduesScanned   int64   `json:"residues_scanned"`
	CandidateResidues int64   `json:"candidate_residues"`
	RescoredCells     int64   `json:"rescored_cells"`
	FullScanCells     int64   `json:"full_scan_cells"`
	CellsSaved        int64   `json:"cells_saved"`
}

// SearchResponse is the POST /search reply.
type SearchResponse struct {
	Results  []SearchResult `json:"results"`
	Elapsed  float64        `json:"elapsed_s"`
	GCUPS    float64        `json:"gcups"`
	Database string         `json:"database"`
	// Filter reports the prefilter's work; present only for mode=filtered.
	Filter *FilterReport `json:"filter,omitempty"`
}

// decodeSearch decodes and validates a search payload: JSON errors and
// empty FASTA get 400, cap violations get 422 with a machine-readable
// reason, an unknown policy gets 422 (catching it before an async job
// would fail obscurely at run time). On failure the response is already
// written and ok is false.
func (s *Server) decodeSearch(w http.ResponseWriter, r *http.Request) (jreq jobs.Request, ok bool) {
	var req SearchRequest
	if !decodeJSON(w, r, &req) {
		return jreq, false
	}
	tenant := req.Tenant
	if h := r.Header.Get("X-Tenant"); h != "" {
		tenant = h
	}
	if err := validTenant(tenant); err != nil {
		writeReject(w, http.StatusUnprocessableEntity, "bad_tenant", "%v", err)
		return jreq, false
	}
	queries, err := fasta.NewReader(strings.NewReader(req.QueriesFasta)).ReadAll()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "queries_fasta: %v", err)
		return jreq, false
	}
	if len(queries) == 0 {
		writeErr(w, http.StatusBadRequest, "queries_fasta contains no sequences")
		return jreq, false
	}
	if s.limits.MaxQueries > 0 && len(queries) > s.limits.MaxQueries {
		writeReject(w, http.StatusUnprocessableEntity, "too_many_queries",
			"%d queries exceeds the %d-query cap", len(queries), s.limits.MaxQueries)
		return jreq, false
	}
	var residues int64
	for _, q := range queries {
		if q.Len() == 0 {
			writeReject(w, http.StatusUnprocessableEntity, "empty_query",
				"query %q is empty", q.ID)
			return jreq, false
		}
		residues += int64(q.Len())
	}
	if s.limits.MaxResidues > 0 && residues > s.limits.MaxResidues {
		writeReject(w, http.StatusUnprocessableEntity, "too_many_residues",
			"%d total query residues exceeds the %d-residue cap", residues, s.limits.MaxResidues)
		return jreq, false
	}
	if s.limits.MaxTopK > 0 && req.TopK > s.limits.MaxTopK {
		writeReject(w, http.StatusUnprocessableEntity, "top_k_too_large",
			"top_k %d exceeds the cap of %d", req.TopK, s.limits.MaxTopK)
		return jreq, false
	}
	if req.Policy != "" {
		if _, err := sched.NewPolicy(req.Policy); err != nil {
			writeReject(w, http.StatusUnprocessableEntity, "unknown_policy",
				"policy: %v", err)
			return jreq, false
		}
	}
	switch req.Mode {
	case "", "full":
	case "filtered":
		// Cluster replicas are always CPU engines, so only the local
		// backend can find itself GPU-only and without a prefilter host.
		if s.fleet == nil && s.platform.SSECores < 1 && s.platform.GPUs > 0 {
			writeReject(w, http.StatusUnprocessableEntity, "filtered_unavailable",
				"filtered mode needs a CPU engine; this server runs GPU-only")
			return jreq, false
		}
	default:
		writeReject(w, http.StatusUnprocessableEntity, "unknown_mode",
			"mode %q is not one of \"\", \"full\", \"filtered\"", req.Mode)
		return jreq, false
	}
	return jobs.Request{
		QueriesFasta: req.QueriesFasta,
		TopK:         req.TopK,
		Policy:       req.Policy,
		Align:        req.Align,
		Mode:         req.Mode,
		FilterK:      req.FilterK,
		FilterMargin: req.FilterMargin,
		Priority:     req.Priority,
		Tenant:       tenant,
		Queries:      len(queries),
		Residues:     residues,
	}, true
}

// validTenant vets a tenant name before it becomes a queue bucket and a
// metrics label: at most 64 characters from [a-zA-Z0-9._-]. Empty is the
// anonymous default and always valid.
func validTenant(name string) error {
	if len(name) > 64 {
		return fmt.Errorf("tenant name exceeds 64 characters")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("tenant name contains %q; allowed: [a-zA-Z0-9._-]", c)
		}
	}
	return nil
}

// runJob is the executor body the job subsystem runs: one full search with
// cancellation plumbed through to the scheduler, encoded as the POST
// /search response shape.
func (s *Server) runJob(ctx context.Context, req jobs.Request) ([]byte, error) {
	queries, err := fasta.NewReader(strings.NewReader(req.QueriesFasta)).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("queries_fasta: %w", err)
	}
	p := s.platform
	if req.TopK > 0 {
		p.TopK = req.TopK
	}
	if req.Policy != "" {
		p.Policy = req.Policy
	}
	p.AlignBest = req.Align
	if req.Mode != "" {
		p.Mode = req.Mode
	}
	if p.Mode == "filtered" {
		p.Filter = hybridsw.FilterSpec{K: req.FilterK, Margin: req.FilterMargin}
		// Per-stage progress lands on the job record, so GET /jobs/{id}
		// shows prefilter/rescore completion counts while the job runs.
		p.StageProgress = func(stage string, done, total int64) {
			s.jobs.SetStage(ctx, stage, done, total)
		}
	}
	rep, err := hybridsw.SearchContext(ctx, queries, s.db, p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(s.buildSearchResponse(queries, rep, p))
}

// buildSearchResponse shapes a report into the API response, attaching
// E-values when the scheme has tabulated statistics.
func (s *Server) buildSearchResponse(queries []*seq.Sequence, rep *hybridsw.Report, p hybridsw.Platform) SearchResponse {
	scheme := p.Scheme
	if scheme.Matrix == nil {
		scheme = hybridsw.DefaultScheme()
	}
	params, haveStats := stats.Lookup(scheme)
	queryLen := map[string]int{}
	for _, q := range queries {
		queryLen[q.ID] = q.Len()
	}
	resp := SearchResponse{
		Elapsed:  rep.Elapsed.Seconds(),
		GCUPS:    rep.GCUPS(),
		Database: s.dbName,
	}
	if fs := rep.Filter; fs != nil {
		resp.Filter = &FilterReport{
			Selectivity:       fs.Selectivity(),
			Windows:           fs.Windows,
			ResiduesScanned:   fs.ResiduesScanned,
			CandidateResidues: fs.CandidateResidues,
			RescoredCells:     fs.RescoredCells,
			FullScanCells:     fs.FullScanCells,
			CellsSaved:        fs.CellsSaved(),
		}
	}
	for _, qr := range rep.PerQuery {
		res := SearchResult{Query: qr.Query}
		for _, h := range qr.Hits {
			hit := SearchHit{SeqID: h.SeqID, Score: h.Score}
			if haveStats {
				e := params.EValue(h.Score, queryLen[qr.Query], s.residues)
				hit.EValue = &e
			}
			if len(h.QueryRow) > 0 {
				hit.QueryRow = string(h.QueryRow)
				hit.TargetRow = string(h.TargetRow)
			}
			res.Hits = append(res.Hits, hit)
		}
		resp.Results = append(resp.Results, res)
	}
	return resp
}

// handleSearch is the synchronous facade over the job subsystem: submit,
// wait, stream the result. It shares admission control, coalescing and the
// result cache with POST /jobs, and a disconnected client cancels the
// underlying search (unless an async submission also owns it).
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	jreq, ok := s.decodeSearch(w, r)
	if !ok {
		return
	}
	job, err := s.jobs.Submit(jreq, false)
	if err != nil {
		writeJobErr(w, err)
		return
	}
	job, err = s.jobs.Wait(r.Context(), job.ID)
	if err != nil {
		// The client went away; the response will never be read. The Wait
		// already cancelled the job if nobody else wants it.
		writeErr(w, http.StatusServiceUnavailable, "client cancelled: %v", err)
		return
	}
	s.writeJobOutcome(w, job)
}

// writeJobOutcome renders a terminal job for a synchronous caller.
func (s *Server) writeJobOutcome(w http.ResponseWriter, job jobs.Job) {
	switch job.State {
	case jobs.StateDone:
		body, _, err := s.jobs.Result(job.ID)
		if err != nil {
			writeErr(w, http.StatusGone, "result: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	case jobs.StateFailed:
		writeErr(w, http.StatusInternalServerError, "search: %s", job.Error)
	case jobs.StateCanceled:
		writeErr(w, http.StatusConflict, "search was cancelled")
	case jobs.StateQueued, jobs.StateRunning:
		// Unreachable after Wait; kept for exhaustiveness.
		writeErr(w, http.StatusInternalServerError, "job %s still %s", job.ID, job.State)
	default:
		writeErr(w, http.StatusInternalServerError, "job %s in unknown state %q", job.ID, job.State)
	}
}

// AlignRequest is the POST /align payload: two literal sequences.
type AlignRequest struct {
	A      string `json:"a"`
	B      string `json:"b"`
	Global bool   `json:"global,omitempty"`
}

// AlignResponse is the POST /align reply.
type AlignResponse struct {
	Score     int     `json:"score"`
	Identity  float64 `json:"identity"`
	QueryRow  string  `json:"query_row"`
	TargetRow string  `json:"target_row"`
}

func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	var req AlignRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.A == "" || req.B == "" {
		writeErr(w, http.StatusBadRequest, "both a and b are required")
		return
	}
	if cap := s.limits.MaxAlignLen; cap > 0 && (len(req.A) > cap || len(req.B) > cap) {
		writeReject(w, http.StatusUnprocessableEntity, "sequence_too_long",
			"alignment sequences are capped at %d residues", cap)
		return
	}
	scheme := hybridsw.DefaultScheme()
	// The DP runs off-handler so a disconnected client releases the
	// request slot immediately; the stray computation is bounded by
	// MaxAlignLen and finishes on its own.
	done := make(chan *hybridsw.Alignment, 1)
	go func() {
		done <- hybridsw.Align([]byte(strings.ToUpper(req.A)), []byte(strings.ToUpper(req.B)), scheme)
	}()
	select {
	case a := <-done:
		writeJSON(w, http.StatusOK, AlignResponse{
			Score:     a.Score,
			Identity:  a.Identity(),
			QueryRow:  string(a.QueryRow),
			TargetRow: string(a.TargetRow),
		})
	case <-r.Context().Done():
		writeErr(w, http.StatusServiceUnavailable, "client cancelled: %v", r.Context().Err())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeReject renders a validation/admission rejection with a
// machine-readable reason alongside the human-readable error.
func writeReject(w http.ResponseWriter, code int, reason, format string, args ...any) {
	writeJSON(w, code, map[string]string{
		"error":  fmt.Sprintf(format, args...),
		"reason": reason,
	})
}

// writeJobErr maps job-subsystem errors onto HTTP statuses: queue overload
// is 429 with a Retry-After hint, size-cap rejections are 422, a draining
// server is 503, unknown IDs are 404.
func writeJobErr(w http.ResponseWriter, err error) {
	var rej *jobs.RejectError
	if errors.As(err, &rej) {
		code := http.StatusBadRequest
		switch rej.Reason {
		case "queue_full", "tenant_quota":
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(rej.RetryAfter.Seconds()+0.5)))
		case "too_many_queries", "too_many_residues":
			code = http.StatusUnprocessableEntity
		case "draining":
			code = http.StatusServiceUnavailable
		}
		writeReject(w, code, rej.Reason, "%s", rej.Detail)
		return
	}
	if errors.Is(err, jobs.ErrNotFound) {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeErr(w, http.StatusInternalServerError, "jobs: %v", err)
}
