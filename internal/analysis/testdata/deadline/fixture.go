// Package deadline is the golden fixture for the deadline analyzer:
// every wire RPC needs a governing deadline — a context.WithTimeout/
// WithDeadline in scope, a wire.Backoff-driven retry loop, or a
// Client.Timeout — either in the calling function or in every one of
// its same-package callers. Bare wire.Dial is flagged too unless the
// function sets Client.Timeout afterwards.
package deadline

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/wire"
)

// pingUngoverned fires an RPC with nothing bounding how long it can take.
func pingUngoverned(c wire.Caller) error {
	_, err := c.Call(wire.Envelope{}) // want "wire RPC without a governing deadline"
	return err
}

// pingWithTimeout is clean: the call is raced against a derived deadline.
func pingWithTimeout(ctx context.Context, c wire.Caller) error {
	tctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(wire.Envelope{})
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-tctx.Done():
		return tctx.Err()
	}
}

// pingWithBackoff is clean: the wire.Backoff retry loop bounds the call.
func pingWithBackoff(c wire.Caller, b wire.Backoff) error {
	rng := rand.New(rand.NewSource(1))
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if _, err = c.Call(wire.Envelope{}); err == nil {
			return nil
		}
		time.Sleep(b.Delay(attempt, rng))
	}
	return err
}

// pingWithClientTimeout is clean: the client itself enforces a deadline.
func pingWithClientTimeout(addr string) error {
	c, err := wire.DialTimeout(addr, time.Second)
	if err != nil {
		return err
	}
	c.Timeout = 2 * time.Second
	defer c.Close()
	_, err = c.Call(wire.Envelope{})
	return err
}

// dialBare leaves Client.Timeout at zero: every later RPC can hang.
func dialBare(addr string) (*wire.Client, error) {
	return wire.Dial(addr) // want "wire.Dial leaves Client.Timeout zero"
}

// dialGoverned is clean: DialTimeout installs the deadline at dial time.
func dialGoverned(addr string) (*wire.Client, error) {
	return wire.DialTimeout(addr, 3*time.Second)
}

// session has no evidence of its own, but its only caller drives it from
// a wire.Backoff loop, so the obligation bubbles up and is met there.
func session(c wire.Caller) error {
	_, err := c.Call(wire.Envelope{})
	return err
}

// driveSession governs session's RPC for it.
func driveSession(c wire.Caller, b wire.Backoff) error {
	rng := rand.New(rand.NewSource(7))
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if err = session(c); err == nil {
			return nil
		}
		time.Sleep(b.Delay(attempt, rng))
	}
	return err
}

// loggedCaller is middleware: its Call forwards to the wrapped caller and
// is exempt — the deadline obligation belongs to whoever drives it.
type loggedCaller struct {
	inner wire.Caller
	n     int
}

func (l *loggedCaller) Call(env wire.Envelope) (wire.Envelope, error) {
	l.n++
	return l.inner.Call(env)
}

func (l *loggedCaller) Close() error { return l.inner.Close() }
