// Quickstart: align two protein sequences, then run a small hybrid
// database search with the public API.
package main

import (
	"fmt"
	"log"

	hybridsw "repro"
)

func main() {
	scheme := hybridsw.DefaultScheme() // BLOSUM62, gap open 10 / extend 2

	// Phase 1+2 of Smith-Waterman on a pair of sequences.
	q := []byte("MKVLATGLLFACDEHISWWKLRNQP")
	t := []byte("MKVLTTGLLACDEHISWKLRNQ")
	aln := hybridsw.Align(q, t, scheme)
	fmt.Println("pairwise local alignment:")
	fmt.Print(aln.Format(scheme, 60))

	// A synthetic database with the SwissProt profile, scaled to laptop
	// size, and four queries derived from it (so real homologs exist).
	db, err := hybridsw.GenerateDatabase("UniProtKB/SwissProt", 0.0001, 1)
	if err != nil {
		log.Fatal(err)
	}
	queries := hybridsw.GenerateQueries(db, 4, 80, 300, 2)
	fmt.Printf("searching %d queries against %d database sequences...\n\n", len(queries), len(db))

	// The paper's task execution environment, in process: one simulated
	// CUDASW++ GPU plus two adapted-Farrar SSE cores, PSS policy, workload
	// adjustment on.
	report, err := hybridsw.Search(queries, db, hybridsw.Platform{
		GPUs:     1,
		SSECores: 2,
		Policy:   "PSS",
		Adjust:   true,
		TopK:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range report.PerQuery {
		fmt.Printf("%-14s best hits:", r.Query)
		for _, h := range r.Hits {
			fmt.Printf("  %s=%d", h.SeqID, h.Score)
		}
		fmt.Println()
	}
	fmt.Printf("\nwall clock %.2fs, %.3f GCUPS\n", report.Elapsed.Seconds(), report.GCUPS())
}
