package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/platform"
	"repro/internal/svgplot"
)

// Fig6SVG renders the adjustment-impact bars as an SVG chart.
func Fig6SVG() (string, error) {
	rows, _, err := Fig6()
	if err != nil {
		return "", err
	}
	c := &svgplot.BarChart{
		Title:  "Fig. 6: GCUPS with and without the workload adjustment mechanism (SwissProt)",
		YLabel: "GCUPS",
	}
	for _, r := range rows {
		c.Groups = append(c.Groups, svgplot.BarGroup{
			Label: r.Config,
			Bars: []svgplot.Bar{
				{Label: "without load adjustment", Value: r.Without},
				{Label: "with load adjustment", Value: r.With},
			},
		})
	}
	return c.Render(), nil
}

// timelineSVG renders a Figs. 7/8-style per-core GCUPS chart.
func timelineSVG(title string, res *FigTimeline) string {
	c := &svgplot.LineChart{
		Title:  fmt.Sprintf("%s (wall clock %.1f s)", title, res.Makespan.Seconds()),
		XLabel: "time (s)",
		YLabel: "GCUPS",
	}
	for _, s := range res.Series {
		ls := svgplot.LineSeries{Name: s.Name}
		for _, p := range s.Points {
			ls.Points = append(ls.Points, svgplot.Point{X: p.T.Seconds(), Y: p.GCUPS})
		}
		c.Series = append(c.Series, ls)
	}
	return c.Render()
}

// Fig7SVG renders the dedicated 4-core timeline.
func Fig7SVG() (string, error) {
	res, err := Fig7()
	if err != nil {
		return "", err
	}
	return timelineSVG("Fig. 7: dedicated execution with 4 cores", res), nil
}

// Fig8SVG renders the non-dedicated timeline with the load injection.
func Fig8SVG() (string, error) {
	res, err := Fig8()
	if err != nil {
		return "", err
	}
	return timelineSVG("Fig. 8: non-dedicated execution, local load at core 0 from 60 s", res), nil
}

// WriteSVGs renders every figure chart into dir, returning the file paths.
func WriteSVGs(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var out []string
	figs5, err := Fig5SVG()
	if err != nil {
		return nil, err
	}
	for i, svg := range figs5 {
		path := filepath.Join(dir, fmt.Sprintf("fig5%c.svg", 'a'+i))
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return nil, err
		}
		out = append(out, path)
	}
	for _, f := range []struct {
		name   string
		render func() (string, error)
	}{
		{"fig6.svg", Fig6SVG},
		{"fig7.svg", Fig7SVG},
		{"fig8.svg", Fig8SVG},
	} {
		svg, err := f.render()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		path := filepath.Join(dir, f.name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return nil, err
		}
		out = append(out, path)
	}
	return out, nil
}

// Fig5SVG renders the Fig. 5 schedules (with and without the adjustment
// mechanism) as two Gantt charts, returned in that order.
func Fig5SVG() ([]string, error) {
	res, err := Fig5()
	if err != nil {
		return nil, err
	}
	mk := func(title string, r *platform.Result) string {
		c := &svgplot.GanttChart{Title: title, XLabel: "time (s)"}
		for _, pe := range r.PerPE {
			for _, ex := range pe.Executions {
				c.Bars = append(c.Bars, svgplot.GanttBar{
					Row:     pe.Name,
					Start:   ex.Start.Seconds(),
					End:     ex.End.Seconds(),
					Label:   fmt.Sprintf("t%d", int(ex.Task)+1),
					Replica: ex.Replica,
				})
			}
		}
		return c.Render()
	}
	return []string{
		mk(fmt.Sprintf("Fig. 5a: with workload adjustment (%.0f s)", res.With.Makespan.Seconds()), res.With),
		mk(fmt.Sprintf("Fig. 5b: without workload adjustment (%.0f s)", res.Without.Makespan.Seconds()), res.Without),
	}, nil
}
