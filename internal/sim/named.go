package sim

import (
	"fmt"
	"time"

	"repro/internal/sched"
)

// ShardFailover is the cluster backend's fault story reduced to one shard:
// a primary and a replica scan the same task set, the primary crashes
// mid-scan (its connection drops, so the master hears SlaveGone and
// requeues its work), and the replica must finish every task exactly once
// — the invariant library rejects both lost and double-completed tasks.
// The lease is armed as the backstop the real fleet also carries.
func ShardFailover(seed int64) Scenario {
	return Scenario{
		Name:         "shard-failover",
		Seed:         seed,
		TaskResidues: []int{900, 700, 1100, 800},
		Policy:       "PSS",
		Adjust:       true,
		Lease:        2 * time.Second,
		Slaves: []SlaveSpec{
			{Name: "shard0-primary", Kind: sched.KindCPU, Speed: 5e8, CrashAt: time.Second},
			{Name: "shard0-replica", Kind: sched.KindCPU, Speed: 4e8},
		},
	}
}

// Named returns a curated scenario by name with the given seed — the chaos
// CI entry point (swsim -named). Unlike Generate's seeded soup, a named
// scenario pins its fault schedule so the regression it guards stays
// guarded.
func Named(name string, seed int64) (Scenario, error) {
	switch name {
	case "shard-failover":
		return ShardFailover(seed), nil
	default:
		return Scenario{}, fmt.Errorf("sim: unknown named scenario %q", name)
	}
}
