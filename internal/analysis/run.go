package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Run expands the given package patterns (a directory, or a directory
// followed by /... for a recursive walk) relative to the module rooted at
// root, loads every matched package, runs the analyzers over each, and
// writes one line per non-ignored diagnostic to w. It returns the number
// of diagnostics printed. Directories named testdata, vendor or starting
// with "." are skipped by pattern expansion — fixtures are loaded
// explicitly by the golden tests, never by a production run.
func Run(root string, patterns []string, analyzers []*Analyzer, w io.Writer) (int, error) {
	diags, _, err := Findings(root, patterns, analyzers)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, d := range diags {
		if d.Ignored {
			continue
		}
		fmt.Fprintln(w, d)
		n++
	}
	return n, nil
}

// IgnoreUse is one //swcheck:ignore directive seen during Findings, with
// its liveness: Live means it suppressed at least one finding this run,
// so a stale (dead) directive is documentation for a violation that no
// longer exists.
type IgnoreUse struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
	Live     bool
}

// Findings is Run's machine-facing core: it returns every diagnostic,
// including ones suppressed by //swcheck:ignore (flagged Ignored), plus
// an audit entry per ignore directive encountered in the checked
// packages. Diagnostics are sorted by position, audits by file and line.
func Findings(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, []IgnoreUse, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, nil, err
	}
	var diags []Diagnostic
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
		diags = append(diags, Check(pkg, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	var uses []IgnoreUse
	for _, pkg := range pkgs {
		for i, d := range pkg.ignores {
			uses = append(uses, IgnoreUse{
				File:     pkg.ignoreFiles[i],
				Line:     d.line,
				Analyzer: d.analyzer,
				Reason:   d.reason,
				Live:     pkg.usedIgnores[i],
			})
		}
	}
	sort.Slice(uses, func(i, j int) bool {
		if uses[i].File != uses[j].File {
			return uses[i].File < uses[j].File
		}
		return uses[i].Line < uses[j].Line
	})
	return diags, uses, nil
}

// jsonDiagnostic is the `swcheck -json` wire shape of one Diagnostic.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Ignored  bool   `json:"ignored"`
	Reason   string `json:"reason,omitempty"`
}

// WriteJSON writes diags to w as an indented JSON array — the
// machine-readable output behind `swcheck -json`, which CI uploads as an
// artifact. Ignored findings are included so the artifact records what
// was suppressed and why, not just what fired.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Ignored:  d.Ignored,
			Reason:   d.IgnoreReason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Check runs the analyzers over one loaded package and returns their
// diagnostics plus any malformed ignore directives found in it.
func Check(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags := append([]Diagnostic(nil), pkg.malformed...)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
		a.Run(pass)
	}
	return diags
}

// expandPatterns resolves CLI package patterns to package directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
		return nil
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "" || base == "." {
			base = root
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			names, err := goSourceFiles(path)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				return add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
