package farrar

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/sw"
)

func TestNewSegmentedKernelValidation(t *testing.T) {
	q := []byte("ACDEFGHIKL")
	if _, err := NewSegmentedKernel(q, protScheme(), 1, 0); err == nil {
		t.Error("segLen 1 accepted")
	}
	if _, err := NewSegmentedKernel(q, protScheme(), 5, 5); err == nil {
		t.Error("overlap == segLen accepted")
	}
	if _, err := NewSegmentedKernel(q, protScheme(), 5, -1); err == nil {
		t.Error("negative overlap accepted")
	}
	if _, err := NewSegmentedKernel(nil, protScheme(), 5, 2); err == nil {
		t.Error("empty query accepted")
	}
}

func TestSegmentCount(t *testing.T) {
	q := make([]byte, 100)
	for i := range q {
		q[i] = 'A'
	}
	sk, err := NewSegmentedKernel(q, protScheme(), 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	// starts 0, 30, 60; the segment at 60 reaches the query end.
	if sk.Segments() != 3 {
		t.Errorf("Segments = %d, want 3", sk.Segments())
	}
	one, _ := NewSegmentedKernel(q[:30], protScheme(), 40, 10)
	if one.Segments() != 1 {
		t.Errorf("short query Segments = %d, want 1", one.Segments())
	}
}

func TestSegmentedExactWhenAlignmentFits(t *testing.T) {
	// Plant a strong local match well inside one segment: the segmented
	// score must equal the full score.
	rng := rand.New(rand.NewSource(1))
	motif := randProtein(rng, 30)
	q := append(append(randProtein(rng, 100), motif...), randProtein(rng, 100)...)
	target := append(append(randProtein(rng, 20), motif...), randProtein(rng, 20)...)

	full := sw.Score(q, target, protScheme())
	sk, err := NewSegmentedKernel(q, protScheme(), 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.Score(target); got != full {
		// The motif may straddle a boundary by construction chance; with
		// overlap 40 > len(motif) 30 it cannot.
		t.Errorf("segmented = %d, full = %d", got, full)
	}
	if !sk.Sensitive(30) {
		t.Error("span 30 should be safe with overlap 40")
	}
}

func TestSegmentedIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 30; iter++ {
		q := randProtein(rng, 150+rng.Intn(150))
		d := mutate(rng, q, 0.3)
		full := sw.Score(q, d, protScheme())
		sk, err := NewSegmentedKernel(q, protScheme(), 50, 10)
		if err != nil {
			t.Fatal(err)
		}
		got := sk.Score(d)
		if got > full {
			t.Fatalf("iter %d: segmented %d exceeds full %d", iter, got, full)
		}
		if got <= 0 && full > 30 {
			t.Fatalf("iter %d: segmented lost the alignment entirely (full %d)", iter, full)
		}
	}
}

func TestSegmentedSensitivityLossIsReal(t *testing.T) {
	// A long exact alignment spanning several segments must be
	// under-scored — the effect the paper warns about.
	rng := rand.New(rand.NewSource(3))
	q := randProtein(rng, 300)
	d := append([]byte{}, q...) // identical target: alignment spans all 300
	full := sw.Score(q, d, protScheme())
	sk, _ := NewSegmentedKernel(q, protScheme(), 60, 10)
	got := sk.Score(d)
	if got >= full {
		t.Fatalf("segmented %d not below full %d for a 300-residue identity", got, full)
	}
	if sk.Sensitive(300) {
		t.Error("span 300 claimed safe")
	}
	if !sk.Sensitive(11) {
		t.Error("span overlap+1 should be safe")
	}
}

func TestSegmentedQueryNotAliased(t *testing.T) {
	q := bytes.Repeat([]byte("ACDEFGHIKL"), 10)
	orig := append([]byte{}, q...)
	sk, _ := NewSegmentedKernel(q, protScheme(), 30, 5)
	sk.Score([]byte("ACDEFGHIKL"))
	if !bytes.Equal(q, orig) {
		t.Error("query mutated")
	}
}
