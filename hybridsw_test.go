package hybridsw_test

import (
	"strings"
	"testing"

	hybridsw "repro"
)

func TestDatabaseNames(t *testing.T) {
	names := hybridsw.DatabaseNames()
	if len(names) != 5 {
		t.Fatalf("%d database names", len(names))
	}
	found := false
	for _, n := range names {
		if n == "UniProtKB/SwissProt" {
			found = true
		}
	}
	if !found {
		t.Error("SwissProt missing")
	}
}

func TestGenerateDatabaseAndQueries(t *testing.T) {
	db, err := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != 25 {
		t.Fatalf("scaled Dog database has %d sequences, want 25", len(db))
	}
	qs := hybridsw.GenerateQueries(db, 3, 50, 150, 2)
	if len(qs) != 3 || qs[0].Len() != 50 || qs[2].Len() != 150 {
		t.Fatalf("queries = %v", qs)
	}
	if _, err := hybridsw.GenerateDatabase("nope", 1, 1); err == nil {
		t.Error("unknown database accepted")
	}
}

func TestScoreAndAlign(t *testing.T) {
	s := hybridsw.DefaultScheme()
	q := []byte("MKVLATGFFDE")
	if got := hybridsw.Score(q, q, s); got <= 0 {
		t.Fatalf("self score = %d", got)
	}
	a := hybridsw.Align(q, []byte("MKVLAGFFDE"), s)
	if a.Score <= 0 || len(a.QueryRow) == 0 {
		t.Fatalf("alignment = %+v", a)
	}
	lin := hybridsw.AlignLinearSpace(q, []byte("MKVLAGFFDE"), s)
	if lin.Score != a.Score {
		t.Errorf("linear-space score %d != %d", lin.Score, a.Score)
	}
}

func TestSearchEndToEnd(t *testing.T) {
	db, err := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.0008, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := hybridsw.GenerateQueries(db, 4, 40, 120, 4)
	rep, err := hybridsw.Search(queries, db, hybridsw.Platform{
		GPUs: 1, SSECores: 2, Policy: "PSS", Adjust: true, TopK: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerQuery) != 4 {
		t.Fatalf("%d results", len(rep.PerQuery))
	}
	for _, r := range rep.PerQuery {
		if len(r.Hits) != 3 {
			t.Fatalf("query %s: %d hits, want TopK=3", r.Query, len(r.Hits))
		}
		for i := 1; i < len(r.Hits); i++ {
			if r.Hits[i].Score > r.Hits[i-1].Score {
				t.Fatal("hits not sorted best-first")
			}
		}
		// Queries are stitched from database fragments, so real homology
		// must surface as a clearly positive top score.
		if r.Hits[0].Score < 20 {
			t.Errorf("query %s: top score %d suspiciously low", r.Query, r.Hits[0].Score)
		}
	}
	if rep.Cells <= 0 || rep.GCUPS() <= 0 {
		t.Errorf("report metrics: %+v", rep)
	}
}

func TestSearchDefaults(t *testing.T) {
	db, _ := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.0004, 5)
	queries := hybridsw.GenerateQueries(db, 1, 60, 60, 6)
	rep, err := hybridsw.Search(queries, db, hybridsw.Platform{}) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerQuery) != 1 || len(rep.PerQuery[0].Hits) != len(db) {
		t.Fatalf("defaults: %+v", rep.PerQuery)
	}
}

func TestSearchBadPolicy(t *testing.T) {
	db, _ := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.0004, 5)
	queries := hybridsw.GenerateQueries(db, 1, 60, 60, 6)
	if _, err := hybridsw.Search(queries, db, hybridsw.Platform{Policy: "bogus"}); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestSimulate(t *testing.T) {
	res, err := hybridsw.Simulate("UniProtKB/SwissProt", 4, 4, "PSS", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	secs := res.Makespan.Seconds()
	if secs < 90 || secs > 200 {
		t.Errorf("simulated 4G+4S SwissProt = %.0f s, want the paper's ballpark (~112)", secs)
	}
	if _, err := hybridsw.Simulate("nope", 1, 1, "PSS", true, 1); err == nil {
		t.Error("unknown database accepted")
	}
	if _, err := hybridsw.Simulate("UniProtKB/SwissProt", 1, 1, "bogus", true, 1); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPackagePathIsTidy(t *testing.T) {
	// Guard against accidentally leaking internal types in exported API
	// signatures beyond the documented aliases: the aliases must resolve.
	var _ = hybridsw.Sequence{}
	var _ = hybridsw.Scheme{}
	var _ = hybridsw.Hit{}
	if !strings.Contains("hybridsw", "sw") {
		t.Skip()
	}
}

func TestSearchAlternativeKernels(t *testing.T) {
	db, _ := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.0006, 13)
	queries := hybridsw.GenerateQueries(db, 2, 50, 90, 14)
	base, err := hybridsw.Search(queries, db, hybridsw.Platform{SSECores: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []string{"swipe", "multicore"} {
		rep, err := hybridsw.Search(queries, db, hybridsw.Platform{
			SSECores: 1, CPUKernel: kernel, CoresPerHost: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		for qi := range base.PerQuery {
			if len(rep.PerQuery[qi].Hits) != len(base.PerQuery[qi].Hits) {
				t.Fatalf("%s: hit counts differ", kernel)
			}
			for hi := range base.PerQuery[qi].Hits {
				if rep.PerQuery[qi].Hits[hi].Score != base.PerQuery[qi].Hits[hi].Score {
					t.Fatalf("%s: query %d hit %d differs", kernel, qi, hi)
				}
			}
		}
	}
	if _, err := hybridsw.Search(queries, db, hybridsw.Platform{SSECores: 1, CPUKernel: "magic"}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestHitEValue(t *testing.T) {
	e1, exact := hybridsw.HitEValue(hybridsw.DefaultScheme(), 300, 250, 190_000_000)
	if !exact {
		t.Error("paper default scheme should have exact statistics")
	}
	e2, _ := hybridsw.HitEValue(hybridsw.DefaultScheme(), 50, 250, 190_000_000)
	if e1 >= e2 {
		t.Errorf("E-values not ordered: %g vs %g", e1, e2)
	}
	if e1 > 1e-6 {
		t.Errorf("strong hit E = %g, want tiny", e1)
	}
}

func TestSearchAlignBest(t *testing.T) {
	db, _ := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.0006, 15)
	queries := hybridsw.GenerateQueries(db, 2, 60, 120, 16)
	rep, err := hybridsw.Search(queries, db, hybridsw.Platform{
		SSECores: 1, TopK: 3, AlignBest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := hybridsw.DefaultScheme()
	for qi, r := range rep.PerQuery {
		best := r.Hits[0]
		if len(best.QueryRow) == 0 || len(best.QueryRow) != len(best.TargetRow) {
			t.Fatalf("query %s: no alignment rows on the best hit", r.Query)
		}
		// The shipped alignment must rescore to the reported score.
		a := hybridsw.Alignment{
			Score:    best.Score,
			QueryRow: best.QueryRow, TargetRow: best.TargetRow,
		}
		re, err := a.Rescore(s)
		if err != nil {
			t.Fatal(err)
		}
		if re != best.Score {
			t.Fatalf("query %s: alignment rescores to %d, hit score %d", r.Query, re, best.Score)
		}
		// Coordinates must reference the query.
		q := queries[qi]
		gotQ := strings.ReplaceAll(string(best.QueryRow), "-", "")
		if gotQ != string(q.Residues[best.QueryStart:best.QueryEnd]) {
			t.Fatalf("query %s: alignment coords inconsistent", r.Query)
		}
		// Lower hits carry no rows.
		if len(r.Hits) > 1 && len(r.Hits[1].QueryRow) != 0 {
			t.Error("non-best hit carries alignment rows")
		}
	}
}

func TestSearchFilteredMode(t *testing.T) {
	db, err := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.0008, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Queries drawn from database content: the prefilter's exact k-mer seeds
	// hit their source sequences, so each query's true best score survives.
	queries := hybridsw.GenerateQueries(db, 3, 40, 100, 8)
	full, err := hybridsw.Search(queries, db, hybridsw.Platform{SSECores: 2})
	if err != nil {
		t.Fatal(err)
	}
	filt, err := hybridsw.Search(queries, db, hybridsw.Platform{
		SSECores: 2, Mode: "filtered", GPUs: 1, // the GPU sits out, harmlessly
	})
	if err != nil {
		t.Fatal(err)
	}
	if filt.Filter == nil {
		t.Fatal("filtered report has no Filter stats")
	}
	if full.Filter != nil {
		t.Fatal("full-scan report has Filter stats")
	}
	if filt.Filter.RescoredCells >= filt.Filter.FullScanCells {
		t.Fatalf("rescored %d >= full %d", filt.Filter.RescoredCells, filt.Filter.FullScanCells)
	}
	if filt.Cells != filt.Filter.RescoredCells {
		t.Fatalf("Cells %d != RescoredCells %d", filt.Cells, filt.Filter.RescoredCells)
	}
	for i := range full.PerQuery {
		fq, gq := full.PerQuery[i], filt.PerQuery[i]
		if fq.Query != gq.Query {
			t.Fatalf("query order: %s vs %s", fq.Query, gq.Query)
		}
		// The query's source sequence scores identically; every hit is
		// bounded by the full scan's.
		if gq.Hits[0].Score != fq.Hits[0].Score {
			t.Errorf("query %s: filtered best %d, full best %d", fq.Query, gq.Hits[0].Score, fq.Hits[0].Score)
		}
		for j := range gq.Hits {
			if gq.Hits[j].Score > fq.Hits[j].Score {
				t.Errorf("query %s hit %d: filtered %d exceeds full %d", fq.Query, j, gq.Hits[j].Score, fq.Hits[j].Score)
			}
		}
	}
}

func TestSearchFilteredValidation(t *testing.T) {
	db, _ := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.0005, 9)
	queries := hybridsw.GenerateQueries(db, 1, 40, 40, 10)
	if _, err := hybridsw.Search(queries, db, hybridsw.Platform{GPUs: 1, Mode: "filtered"}); err == nil {
		t.Error("filtered mode with only GPUs accepted")
	}
	if _, err := hybridsw.Search(queries, db, hybridsw.Platform{SSECores: 1, Mode: "sideways"}); err == nil {
		t.Error("unknown mode accepted")
	} else if !strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("error %v", err)
	}
}
