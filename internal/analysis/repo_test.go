package analysis

import (
	"bytes"
	"testing"
)

// TestRepoIsClean is the meta-test behind `make lint`: the full analyzer
// suite must produce zero diagnostics on the real tree. Any new
// violation fails here with the same file:line output swcheck prints,
// so CI catches it even if the Makefile target is skipped.
func TestRepoIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	var buf bytes.Buffer
	n, err := Run(root, []string{"./..."}, All(), &buf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 0 {
		t.Errorf("swcheck found %d finding(s) on the repository:\n%s", n, buf.String())
	}
}

// TestIgnoreDirectivesAreLive fails when a //swcheck:ignore directive in
// the real tree no longer suppresses anything. A stale directive is a
// lie: its reason documents a violation that no longer exists, and it
// silently swallows the next genuine finding on that line.
func TestIgnoreDirectivesAreLive(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	_, uses, err := Findings(root, []string{"./..."}, All())
	if err != nil {
		t.Fatalf("Findings: %v", err)
	}
	for _, u := range uses {
		if !u.Live {
			t.Errorf("%s:%d: stale //swcheck:ignore %s (%q): it suppresses nothing — delete it", u.File, u.Line, u.Analyzer, u.Reason)
		}
	}
}
