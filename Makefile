# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench tables svg csv examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (EXPERIMENTS.md data).
tables:
	go run ./cmd/benchtables

svg:
	go run ./cmd/benchtables -svg out/svg

csv:
	go run ./cmd/benchtables -csv out/csv

examples:
	@for e in quickstart adjustment hybridsearch nondedicated distributed applications; do \
		echo "=== examples/$$e ==="; go run ./examples/$$e || exit 1; done

clean:
	rm -rf out
