package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// This file implements a fault-injecting Caller for robustness tests: it
// wraps any transport and makes calls fail, hang, lag or lose their
// response, selected per message kind and deterministically from a seed.
// The master and slave test suites use it to prove that lease expiry
// rescues hung slaves, that killed slaves requeue deterministically, and
// that a reconnecting slave double-completes nothing.

// ErrInjected is the transport error produced by FaultError and FaultDrop
// rules (optionally wrapped); match it with errors.Is.
var ErrInjected = errors.New("wire: injected fault")

// MsgKind classifies a request envelope for fault-rule matching.
type MsgKind int

const (
	// AnyMsg matches every request.
	AnyMsg MsgKind = iota
	// RegisterKind matches RegisterMsg requests.
	RegisterKind
	// RequestKind matches RequestMsg requests.
	RequestKind
	// ProgressKind matches ProgressMsg requests.
	ProgressKind
	// CompleteKind matches CompleteMsg requests.
	CompleteKind
)

// KindOf classifies a request envelope.
func KindOf(req Envelope) MsgKind {
	switch {
	case req.Register != nil:
		return RegisterKind
	case req.Request != nil:
		return RequestKind
	case req.Progress != nil:
		return ProgressKind
	case req.Complete != nil:
		return CompleteKind
	default:
		return AnyMsg
	}
}

// FaultAction is what happens to a matched call.
type FaultAction int

const (
	// FaultError fails the call without delivering it: the request never
	// reaches the master (a send on a dead connection).
	FaultError FaultAction = iota
	// FaultHang blocks the call until the caller is closed, then fails it:
	// the hung-slave scenario, where the process lives and the socket stays
	// open but nothing progresses.
	FaultHang
	// FaultDelay sleeps Rule.Delay, then passes the call through: a slow
	// link or a stalled peer that eventually answers.
	FaultDelay
	// FaultDrop delivers the request but loses the response: the master's
	// state changes (it may have accepted a completion) while the slave
	// sees a failure — the classic at-least-once duplication hazard.
	FaultDrop
)

// Rule selects calls and assigns them a fault. Matching calls are counted
// per rule; the fault applies to matching calls after the first After and
// for at most Count of them (0 = unlimited), each with probability Prob
// (0 or >=1 = always). The first rule that matches and fires wins.
type Rule struct {
	Kind   MsgKind
	Action FaultAction
	After  int
	Count  int
	Prob   float64
	Delay  time.Duration // used by FaultDelay
}

// FaultCaller wraps a Caller with seeded fault injection. It is safe for
// the sequential use the Caller contract requires, plus a concurrent
// Close to release hung calls.
type FaultCaller struct {
	inner Caller
	rules []Rule

	mu      sync.Mutex
	rng     *rand.Rand
	meter   *Metrics
	matched []int // matching-call count per rule
	fired   []int // fault count per rule

	closeOnce sync.Once
	closed    chan struct{}
}

// NewFaultCaller wraps inner with the given rules; seed drives the
// probabilistic rules so runs are reproducible.
func NewFaultCaller(inner Caller, seed int64, rules ...Rule) *FaultCaller {
	return &FaultCaller{
		inner:   inner,
		rules:   rules,
		rng:     rand.New(rand.NewSource(seed)),
		matched: make([]int, len(rules)),
		fired:   make([]int, len(rules)),
		closed:  make(chan struct{}),
	}
}

// SetMetrics attaches an instrumentation bundle: every fault that fires
// additionally increments m.Faults, so chaos runs show up on /metrics.
func (f *FaultCaller) SetMetrics(m *Metrics) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.meter = m
}

// Fired returns how many times rule i injected its fault.
func (f *FaultCaller) Fired(i int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired[i]
}

// Call implements Caller, applying the first matching rule that fires.
func (f *FaultCaller) Call(req Envelope) (Envelope, error) {
	k := KindOf(req)
	f.mu.Lock()
	action := FaultAction(-1)
	var delay time.Duration
	for i, r := range f.rules {
		if r.Kind != AnyMsg && r.Kind != k {
			continue
		}
		n := f.matched[i]
		f.matched[i]++
		if n < r.After {
			continue
		}
		if r.Count > 0 && f.fired[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && f.rng.Float64() >= r.Prob {
			continue
		}
		f.fired[i]++
		if f.meter != nil {
			f.meter.Faults.Inc()
		}
		action, delay = r.Action, r.Delay
		break
	}
	f.mu.Unlock()

	switch action {
	case FaultError:
		return Envelope{}, fmt.Errorf("%w: %v lost", ErrInjected, k)
	case FaultHang:
		<-f.closed
		return Envelope{}, fmt.Errorf("%w: hung call released by close", ErrInjected)
	case FaultDelay:
		select {
		case <-time.After(delay):
		case <-f.closed:
			return Envelope{}, fmt.Errorf("%w: closed while delayed", ErrInjected)
		}
	case FaultDrop:
		if _, err := f.inner.Call(req); err != nil {
			return Envelope{}, err
		}
		return Envelope{}, fmt.Errorf("%w: %v response dropped", ErrInjected, k)
	}
	return f.inner.Call(req)
}

// Close implements Caller, releasing any hung or delayed call first.
func (f *FaultCaller) Close() error {
	f.closeOnce.Do(func() { close(f.closed) })
	return f.inner.Close()
}

// String returns the kind name for error messages.
func (k MsgKind) String() string {
	switch k {
	case RegisterKind:
		return "Register"
	case RequestKind:
		return "Request"
	case ProgressKind:
		return "Progress"
	case CompleteKind:
		return "Complete"
	default:
		return "Any"
	}
}
