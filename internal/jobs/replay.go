package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// This file is the pure half of the durable store: turning a snapshot blob
// plus a WAL blob back into job records, and turning one record into its
// WAL line. Keeping it free of file I/O lets the deterministic cluster
// simulator (internal/sim) and the FuzzWALReplay target exercise the exact
// recovery semantics the Manager boots with — torn tails, duplicated
// records, last-wins — against in-memory ledgers.

// Replay reconstructs the surviving job records from a snapshot body (a
// JSON array of records; nil or empty means no snapshot) with the WAL (one
// JSON record per line) replayed over it. Later WAL records for the same
// job ID win. Unparseable WAL lines are skipped: a torn final line is the
// expected shape of a crash mid-append, and any earlier complete records
// already took effect. A corrupt snapshot is an error — it is written
// atomically, so damage there is real. Records return sorted by Created
// then ID, the order recovery re-enqueues them in.
func Replay(snapshot, wal []byte) ([]Job, error) {
	byID := map[string]Job{}
	if len(bytes.TrimSpace(snapshot)) > 0 {
		var snap []Job
		if err := json.Unmarshal(snapshot, &snap); err != nil {
			return nil, fmt.Errorf("jobs: corrupt snapshot: %w", err)
		}
		for _, j := range snap {
			byID[j.ID] = j
		}
	}
	for _, line := range bytes.Split(wal, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var j Job
		if err := json.Unmarshal(line, &j); err != nil {
			continue
		}
		byID[j.ID] = j
	}
	out := make([]Job, 0, len(byID))
	for _, j := range byID {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.Before(out[k].Created)
		}
		return out[i].ID < out[k].ID
	})
	return out, nil
}

// CleanLength returns the length of the WAL prefix ending at the last
// complete (newline-terminated) record. Recovery must truncate the WAL to
// this offset before appending again: Replay tolerates a torn final line,
// but appending directly after the torn bytes would concatenate the next
// record onto them, producing one unparseable merged line — the crash
// would silently swallow the first record written after recovery.
func CleanLength(wal []byte) int {
	if i := bytes.LastIndexByte(wal, '\n'); i >= 0 {
		return i + 1
	}
	return 0
}

// MarshalRecord encodes one job record as its WAL line, trailing newline
// included — the exact bytes store.append writes.
func MarshalRecord(j Job) ([]byte, error) {
	raw, err := json.Marshal(j)
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}
