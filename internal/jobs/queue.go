package jobs

// queue is a bounded priority FIFO: jobs pop highest Priority first and in
// submission order within a priority level. It is not safe for concurrent
// use; the Manager serializes access under its mutex.
type queue struct {
	max   int
	items []*job // sorted: higher priority first, then arrival order
}

func newQueue(max int) *queue { return &queue{max: max} }

func (q *queue) len() int { return len(q.items) }

// push appends j in priority position; it reports false when the queue is
// at capacity (admission control rejects, it never blocks).
func (q *queue) push(j *job) bool {
	if q.max > 0 && len(q.items) >= q.max {
		return false
	}
	// Insert after the last item with priority >= j's: stable within a
	// level. Queues are small (bounded); linear scan is fine.
	i := len(q.items)
	for i > 0 && q.items[i-1].Request.Priority < j.Request.Priority {
		i--
	}
	q.items = append(q.items, nil)
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = j
	return true
}

// forcePush inserts j regardless of capacity — recovery re-enqueues every
// surviving job even when the configured bound shrank, and a job bumped by
// a shutdown abort must never be dropped.
func (q *queue) forcePush(j *job) {
	max := q.max
	q.max = 0
	q.push(j)
	q.max = max
}

// pop removes and returns the head, or nil when empty.
func (q *queue) pop() *job {
	if len(q.items) == 0 {
		return nil
	}
	j := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return j
}

// remove drops a specific job (cancellation of a queued job); it reports
// whether the job was present.
func (q *queue) remove(j *job) bool {
	for i, it := range q.items {
		if it == j {
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			return true
		}
	}
	return false
}
