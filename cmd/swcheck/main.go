// Command swcheck is the repository's static-analysis suite: a
// stdlib-only (go/parser + go/types, no x/tools) multi-analyzer driver
// that enforces the invariants DESIGN §7 documents — scheduler purity,
// enum-switch exhaustiveness, mutex discipline, nil-guarded metric
// handles, checked errors and the subsystem_name_unit metric naming
// convention. `make lint` (and therefore `make test` and CI) runs it over
// the whole module.
//
// Usage:
//
//	swcheck [-only a,b] [-list] [package pattern ...]
//
// Patterns are directories, optionally ending in /... for a recursive
// walk (default ./... from the enclosing module root). Exit status is 1
// when any diagnostic is reported; each is printed as
//
//	file:line:col: [analyzer] message
//
// A finding can be suppressed with a trailing or preceding comment
// `//swcheck:ignore <analyzer> <reason>`; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		var err error
		analyzers, err = analysis.Select(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "swcheck: %v\n", err)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "swcheck: %v\n", err)
		os.Exit(2)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swcheck: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := analysis.Run(root, patterns, analyzers, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swcheck: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "swcheck: %d finding(s)\n", n)
		os.Exit(1)
	}
}
