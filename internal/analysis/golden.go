package analysis

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
)

// This file is the hand-rolled analysistest: a golden testdata package
// annotates the lines where an analyzer must fire with
//
//	offending code // want "regexp"
//
// comments (several "..." patterns on one line expect several
// diagnostics). CheckGolden loads such a package, runs the analyzers, and
// returns one mismatch string per unexpected or missing diagnostic —
// empty means the fixture and analyzer agree exactly. Tests fail on any
// returned mismatch, so goldens assert both directions: every violation
// is caught, and clean code stays clean.

var wantPatternRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// CheckGolden runs the analyzers over the package in dir (resolved
// against the enclosing module) and compares the diagnostics with the
// package's // want comments.
func CheckGolden(dir string, analyzers []*Analyzer) ([]string, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	diags := Check(pkg, analyzers)
	// Goldens assert what swcheck reports; suppressed findings don't count.
	kept := diags[:0]
	for _, d := range diags {
		if !d.Ignored {
			kept = append(kept, d)
		}
	}
	diags = kept

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		if err := collectWants(pkg, f, func(file string, line int, re *regexp.Regexp) {
			k := key{file, line}
			wants[k] = append(wants[k], re)
		}); err != nil {
			return nil, err
		}
	}

	var mismatches []string
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			mismatches = append(mismatches, fmt.Sprintf("unexpected diagnostic: %s", d))
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			mismatches = append(mismatches, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re))
		}
	}
	return mismatches, nil
}

// collectWants parses every // want comment of one file.
func collectWants(pkg *Package, f *ast.File, add func(file string, line int, re *regexp.Regexp)) error {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			pos := pkg.Fset.Position(c.Pos())
			text := c.Text
			if len(text) < 2 || text[:2] != "//" {
				continue
			}
			body := text[2:]
			idx := indexWant(body)
			if idx < 0 {
				continue
			}
			for _, m := range wantPatternRE.FindAllStringSubmatch(body[idx:], -1) {
				pat, err := strconv.Unquote(`"` + m[1] + `"`)
				if err != nil {
					return fmt.Errorf("%s: bad want pattern %s: %v", pos, m[0], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				add(pos.Filename, pos.Line, re)
			}
		}
	}
	return nil
}

// indexWant finds the start of a "want" directive in a comment body,
// requiring it to be the first word.
func indexWant(body string) int {
	i := 0
	for i < len(body) && (body[i] == ' ' || body[i] == '\t') {
		i++
	}
	if len(body)-i >= 4 && body[i:i+4] == "want" {
		return i + 4
	}
	return -1
}
