// Package farrar is the kernel-side half of the SWAR-purity golden
// fixture. The dispatch core may import the emulated ISA — it IS the
// oracle implementation — so this file must stay diagnostic-free.
package farrar

import (
	_ "repro/internal/simd" // the oracle path: allowed outside swar*.go
)

// Dispatch stands in for the real kernel's impl switch.
func Dispatch(swar bool) string {
	if swar {
		return "swar"
	}
	return "emulated"
}
