package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockguardAnalyzer enforces the repo's mutex convention: in a struct
// with a field `mu sync.Mutex` (or sync.RWMutex), the contiguous field
// group below mu — up to the first blank line — is what mu guards.
// A method that touches a guarded sibling field must acquire the lock
// somewhere in its body (mu.Lock or mu.RLock, directly or via defer), be
// named *Locked (the caller-holds-the-lock convention), or carry an
// ignore directive explaining why unlocked access is safe.
//
// The check is deliberately coarse — it demands that a method locking
// guarded state locks at all, not that every access is dominated by the
// lock — so it catches the real failure mode (a new method that forgets
// mu entirely) without drowning refactors in false positives.
//
// Two lock-copy hazards are flagged as well: value receivers on structs
// that contain a mutex, and struct literals that copy a mutex value into
// a mutex field (a fresh composite literal like sync.Mutex{} is fine).
var LockguardAnalyzer = &Analyzer{
	Name: "lockguard",
	Doc:  "methods touching mu-guarded fields must lock mu or be named *Locked; no mutex copies",
	Run:  runLockguard,
}

// guardedType describes one struct type with a mu field.
type guardedType struct {
	name    string
	mutexRW bool
	guarded map[string]bool // sibling fields mu guards
	hasMu   bool
}

func runLockguard(pass *Pass) {
	guards := map[string]*guardedType{} // by type name
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			if g := analyzeStruct(pass, st); g != nil {
				g.name = ts.Name.Name
				guards[ts.Name.Name] = g
			}
			return true
		})
	}

	pass.Pkg.WalkStack(func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkMethod(pass, guards, n)
		case *ast.CompositeLit:
			checkLiteralCopies(pass, n)
		}
		return true
	})
}

// analyzeStruct returns the guard info for a struct with a mu field, or
// nil when it has none. Guarded fields are those declared after mu with
// no intervening blank line (doc comments do not break the group).
func analyzeStruct(pass *Pass, st *ast.StructType) *guardedType {
	fset := pass.Pkg.Fset
	g := &guardedType{guarded: map[string]bool{}}
	inGroup := false
	prevEnd := 0
	for _, field := range st.Fields.List {
		start := fset.Position(field.Pos()).Line
		if field.Doc != nil {
			start = fset.Position(field.Doc.Pos()).Line
		}
		if inGroup && start > prevEnd+1 {
			inGroup = false // blank line ends the guarded group
		}
		if inGroup && !selfSynchronized(pass.Pkg.Info.Types[field.Type].Type) {
			for _, name := range field.Names {
				g.guarded[name.Name] = true
			}
		}
		if isMutexField(pass, field) {
			g.hasMu = true
			g.mutexRW = isRWMutex(pass.Pkg.Info.Types[field.Type].Type)
			inGroup = true
		}
		prevEnd = fset.Position(field.End()).Line
	}
	if !g.hasMu || len(g.guarded) == 0 {
		return nil
	}
	return g
}

// selfSynchronized reports whether a field type provides its own
// synchronization, so sitting below mu does not make mu its guard:
// sync/atomic values, sync.Once and sync.WaitGroup.
func selfSynchronized(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync/atomic":
		return true
	case "sync":
		return obj.Name() == "Once" || obj.Name() == "WaitGroup"
	}
	return false
}

// isMutexField reports whether the field is the conventional `mu` lock.
func isMutexField(pass *Pass, field *ast.Field) bool {
	if len(field.Names) != 1 || field.Names[0].Name != "mu" {
		return false
	}
	return isMutexType(pass.Pkg.Info.Types[field.Type].Type)
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func isRWMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "RWMutex"
}

// checkMethod flags a method of a guarded type that touches guarded
// fields through its receiver without ever locking mu.
func checkMethod(pass *Pass, guards map[string]*guardedType, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
		return
	}
	recvType, byValue := receiverTypeName(fd.Recv.List[0].Type)
	g, ok := guards[recvType]
	if !ok {
		return
	}
	if byValue {
		pass.Reportf(fd.Name.Pos(), "method %s.%s has a value receiver but %s contains a sync.Mutex: receiver must be *%s",
			recvType, fd.Name.Name, recvType, recvType)
		return
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	var recvObj types.Object
	if len(fd.Recv.List[0].Names) == 1 {
		recvObj = pass.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	if recvObj == nil {
		return // anonymous receiver cannot touch fields
	}

	locks := false
	var firstGuarded *ast.SelectorExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// recv.mu.Lock / RLock, in plain or deferred form.
		if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "mu" &&
			isReceiver(pass, inner.X, recvObj) &&
			(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			locks = true
		}
		if g.guarded[sel.Sel.Name] && isReceiver(pass, sel.X, recvObj) && firstGuarded == nil {
			firstGuarded = sel
		}
		return true
	})
	if firstGuarded != nil && !locks {
		pass.Reportf(firstGuarded.Pos(), "method %s.%s accesses %s.%s, which %s.mu guards, without locking mu (lock it, rename to %sLocked, or ignore with a reason)",
			recvType, fd.Name.Name, recvType, firstGuarded.Sel.Name, recvType, fd.Name.Name)
	}
}

// isReceiver reports whether e is a direct use of the receiver variable.
func isReceiver(pass *Pass, e ast.Expr, recvObj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.Pkg.Info.Uses[id] == recvObj
}

// receiverTypeName unwraps a method receiver type to its type name,
// reporting whether the receiver is by value.
func receiverTypeName(e ast.Expr) (name string, byValue bool) {
	byValue = true
	if star, ok := e.(*ast.StarExpr); ok {
		byValue = false
		e = star.X
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name, byValue
	}
	return "", byValue
}

// checkLiteralCopies flags composite-literal elements that copy an
// existing mutex value into a mutex-typed field.
func checkLiteralCopies(pass *Pass, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		tv, ok := pass.Pkg.Info.Types[val]
		if !ok || !isMutexType(tv.Type) {
			continue
		}
		if _, fresh := val.(*ast.CompositeLit); fresh {
			continue
		}
		pass.Reportf(val.Pos(), "struct literal copies a %s value; a lock must not be copied after first use",
			types.TypeString(tv.Type, nil))
	}
}
