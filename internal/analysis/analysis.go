// Package analysis is the stdlib-only static-analysis core behind
// cmd/swcheck. It loads and type-checks the module's packages (load.go),
// runs a set of repo-specific analyzers over them (run.go), and reports
// file:line diagnostics. The analyzers turn DESIGN's prose invariants —
// scheduler purity, enum-switch exhaustiveness, lock discipline,
// nil-guarded metrics, checked errors, metric naming — into checks that
// fail `make test` when violated.
//
// The package deliberately avoids golang.org/x/tools: packages are
// parsed with go/parser, type-checked with go/types, and module-internal
// imports are resolved by the Loader itself, with the gc importer
// supplying the standard library. The result is a miniature analysis
// framework in the same spirit as x/tools/go/analysis, small enough to
// live in-tree.
//
// A finding can be suppressed at a specific line with a directive
// comment carrying a mandatory reason:
//
//	//swcheck:ignore <analyzer> <reason...>
//
// The directive applies to its own source line and the one below it, so
// it works both trailing the offending statement and on the line above
// it. A directive without a reason is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description shown by `swcheck -list`.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Diagnostic is one finding at one position. Findings covered by an
// ignore directive are still recorded, flagged Ignored and carrying the
// directive's reason — that is what lets `swcheck -json` export the full
// picture and `swcheck -ignores` prove each directive still earns its
// keep. Text output and exit codes count only non-ignored findings.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string

	Ignored      bool
	IgnoreReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's run over one package and collects its
// diagnostics, honouring //swcheck:ignore directives.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos. If an ignore directive covers it the
// finding is kept but flagged Ignored, and the directive is marked live.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	d := Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if i := p.Pkg.coveringIgnore(p.Analyzer.Name, position); i >= 0 {
		p.Pkg.usedIgnores[i] = true
		d.Ignored = true
		d.IgnoreReason = p.Pkg.ignores[i].reason
	}
	*p.diags = append(*p.diags, d)
}

// ignoreDirective is one parsed //swcheck:ignore comment. It suppresses
// matching diagnostics on its own line and the line below.
type ignoreDirective struct {
	analyzer string // analyzer name or "all"
	line     int    // line the directive is written on
	reason   string
}

const ignorePrefix = "//swcheck:ignore"

// parseIgnores extracts every ignore directive of a file. Malformed
// directives (missing analyzer or reason) are returned separately so the
// driver can report them — a silent bad directive would suppress nothing
// while looking like it does.
func parseIgnores(fset *token.FileSet, f *ast.File) (dirs []ignoreDirective, malformed []Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				malformed = append(malformed, Diagnostic{
					Pos:      pos,
					Analyzer: "swcheck",
					Message:  "malformed ignore directive: want //swcheck:ignore <analyzer> <reason>",
				})
				continue
			}
			dirs = append(dirs, ignoreDirective{
				analyzer: fields[0],
				line:     pos.Line,
				reason:   strings.Join(fields[1:], " "),
			})
		}
	}
	return dirs, malformed
}

// WalkStack traverses every file of the package, calling fn with each node
// and its ancestor stack (outermost first, excluding n itself). Returning
// false skips the node's children.
func (p *Package) WalkStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// pathHasPackage reports whether import path p names the package pkg
// ("internal/sched" style) on a segment boundary: p is pkg, ends in
// /pkg, or contains /pkg/ — so "x/internal/schedx" does not match
// "internal/sched".
func pathHasPackage(p, pkg string) bool {
	return p == pkg ||
		strings.HasSuffix(p, "/"+pkg) ||
		strings.HasPrefix(p, pkg+"/") ||
		strings.Contains(p, "/"+pkg+"/")
}
