package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/gcups"
	"repro/internal/platform"
	"repro/internal/sched"
)

// FutureWork runs the paper's §VI future-work scenarios, which this
// reproduction implements ahead of the original: integrating an FPGA
// accelerator into the hybrid platform, and nodes joining/leaving while an
// application executes.
func FutureWork() (*gcups.Table, error) {
	db, err := dataset.ProfileByName("UniProtKB/SwissProt")
	if err != nil {
		return nil, err
	}
	t := &gcups.Table{
		Title:  "Future-work scenarios (SwissProt, PSS + adjustment)",
		Header: []string{"Scenario", "Time (s)", "GCUPS", "Replicas"},
	}
	run := func(name string, pes []*platform.PE) error {
		res, err := platform.Run(platform.Experiment{
			Tasks:       Tasks(db),
			PEs:         pes,
			Policy:      &sched.PSS{},
			Adjust:      true,
			Omega:       Omega,
			CommLatency: CommLatency,
			NotifyEvery: NotifyEvery,
			Seed:        baseSeed,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		t.AddRow(name, res.Makespan, res.GCUPS(), res.Replicas)
		return nil
	}

	if err := run("4 GPU + 4 SSE (baseline)", platform.Hybrid(4, 4)); err != nil {
		return nil, err
	}
	withFPGA := append(platform.Hybrid(4, 4), platform.FPGAPE("FPGA1"))
	if err := run("4 GPU + 4 SSE + 1 FPGA", withFPGA); err != nil {
		return nil, err
	}

	// Churn: GPU4 crashes at t=30 s; a replacement GPU joins at t=60 s.
	churn := platform.Hybrid(4, 4)
	churn[3].LeaveAt = 30 * time.Second
	late := platform.GPUPE("GPU5")
	late.JoinAt = 60 * time.Second
	churn = append(churn, late)
	if err := run("GPU4 leaves @30s, GPU5 joins @60s", churn); err != nil {
		return nil, err
	}

	// Worst case: a GPU leaves and nothing replaces it.
	lost := platform.Hybrid(4, 4)
	lost[3].LeaveAt = 30 * time.Second
	if err := run("GPU4 leaves @30s, no replacement", lost); err != nil {
		return nil, err
	}
	return t, nil
}
