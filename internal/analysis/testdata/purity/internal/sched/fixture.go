// Package sched is the purity golden fixture. Its directory sits under
// testdata/purity/internal/sched, so the loader's synthetic import path
// matches the analyzer's internal/sched scope and the checks fire here
// exactly as they do on the real scheduler package.
package sched

import (
	"math/rand"
	"time"

	_ "os" // want "pure package sched imports os"
)

// Tick is the clean idiom the contract demands: the current time arrives
// as an argument and randomness comes from an explicitly seeded
// generator, so the same code is deterministic under the simulator.
func Tick(now time.Time, rng *rand.Rand) time.Duration {
	jitter := time.Duration(rng.Int63n(int64(time.Second)))
	return now.Add(jitter).Sub(now)
}

// NewRNG uses the allowed constructors: a seeded *rand.Rand is
// deterministic, which is the property the analyzer guards.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func violations() {
	_ = time.Now()               // want "time.Now in pure package sched"
	time.Sleep(time.Millisecond) // want "time.Sleep in pure package sched"
	_ = rand.Intn(10)            // want "rand.Intn draws from the global source"
	go violations()              // want "go statement in pure package sched"
}

// suppressed demonstrates the escape hatch: a well-formed ignore
// directive with a reason silences the diagnostic on the next line.
func suppressed() time.Time {
	//swcheck:ignore purity golden-fixture demo of the suppression directive
	return time.Now()
}
