package sched

import (
	"math/rand"
	"testing"
	"time"
)

// TestCoordinatorModelRandomRuns drives the coordinator with randomized
// slave behaviour — requests, progress, completions, cancel acknowledgments
// and slave deaths in arbitrary interleavings — and checks the global
// invariants after every step:
//
//   - ready + executing + finished always equals the task total;
//   - a slave never holds a task the pool does not list it as executing;
//   - the job always terminates with every task finished exactly once and
//     a merged result per task.
func TestCoordinatorModelRandomRuns(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		runCoordinatorModel(t, seed)
	}
}

func runCoordinatorModel(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nTasks := 1 + rng.Intn(25)
	nSlaves := 1 + rng.Intn(6)
	policies := []Policy{SS{}, &PSS{}, &Fixed{}, &WFixed{}}
	pol, _ := NewPolicy([]string{"SS", "PSS", "Fixed", "WFixed"}[rng.Intn(4)])
	_ = policies
	adjust := rng.Intn(2) == 0

	tasks := make([]Task, nTasks)
	for i := range tasks {
		tasks[i] = Task{QueryID: "q", Cells: int64(100 + rng.Intn(10000))}
	}
	c := NewCoordinator(tasks, Config{Policy: pol, Adjust: adjust, Omega: 1 + rng.Intn(16)})

	type slaveSim struct {
		id    SlaveID
		queue []Task
		dead  bool
	}
	var slaves []*slaveSim
	for i := 0; i < nSlaves; i++ {
		info := SlaveInfo{Name: "s", DeclaredSpeed: float64(rng.Intn(3)) * 1000}
		slaves = append(slaves, &slaveSim{id: c.Register(info, 0)})
	}
	alive := nSlaves

	now := time.Duration(0)
	checkInvariants := func() {
		t.Helper()
		p := c.Pool()
		if p.Ready()+p.ExecutingCount()+p.Finished() != p.Len() {
			t.Fatalf("seed %d: state counts diverge: %d+%d+%d != %d",
				seed, p.Ready(), p.ExecutingCount(), p.Finished(), p.Len())
		}
	}

	for steps := 0; !c.Done() && steps < 100000; steps++ {
		now += time.Duration(rng.Intn(1000)) * time.Millisecond
		s := slaves[rng.Intn(nSlaves)]
		if s.dead {
			continue
		}
		switch op := rng.Intn(10); {
		case op < 4: // request work
			got, _ := c.RequestWork(s.id, now)
			s.queue = append(s.queue, got...)
		case op < 7: // complete a queued task
			if len(s.queue) > 0 {
				i := rng.Intn(len(s.queue))
				task := s.queue[i]
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				_, cancel := c.Complete(s.id, task.ID, nil, now)
				// Canceled slaves drop their local copies.
				for _, cid := range cancel {
					for _, other := range slaves {
						if other.id != cid {
							continue
						}
						keep := other.queue[:0]
						for _, q := range other.queue {
							if q.ID != task.ID {
								keep = append(keep, q)
							}
						}
						other.queue = keep
					}
				}
			}
		case op < 9: // progress notification
			c.ProgressRate(s.id, float64(1+rng.Intn(5000)), int64(rng.Intn(2000)), now)
		default: // occasional death, but never the last slave
			if alive > 1 && rng.Intn(4) == 0 {
				c.SlaveDied(s.id)
				s.dead = true
				s.queue = nil
				alive--
			}
		}
		checkInvariants()
	}

	// Survivors drain whatever remains deterministically.
	for guard := 0; !c.Done() && guard < nTasks*nSlaves*10+100; guard++ {
		now += time.Second
		for _, s := range slaves {
			if s.dead {
				continue
			}
			got, _ := c.RequestWork(s.id, now)
			s.queue = append(s.queue, got...)
			for len(s.queue) > 0 {
				task := s.queue[0]
				s.queue = s.queue[1:]
				c.Complete(s.id, task.ID, nil, now)
			}
			checkInvariants()
		}
	}
	if !c.Done() {
		t.Fatalf("seed %d: job never finished (%d/%d)", seed, c.Pool().Finished(), c.Pool().Len())
	}
	res := c.Results()
	if len(res) != nTasks {
		t.Fatalf("seed %d: %d results for %d tasks", seed, len(res), nTasks)
	}
	seen := map[TaskID]bool{}
	for _, r := range res {
		if seen[r.Task] {
			t.Fatalf("seed %d: duplicate result for task %d", seed, r.Task)
		}
		seen[r.Task] = true
	}
}
