package autoscale

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func cfg() Config {
	return Config{
		Min: 1, Max: 4,
		UpAt: 4, DownAt: 0.5,
		UpAfter: 2 * time.Second, DownAfter: 2 * time.Second,
		Cooldown: 5 * time.Second,
	}
}

// A momentary spike shorter than the dwell never grows the pool.
func TestSpikeShorterThanDwellIsIgnored(t *testing.T) {
	c := New(cfg())
	if a := c.Observe(40, 2, 0); a != Hold {
		t.Fatalf("first over-pressure sample acted: %v", a)
	}
	if c.State() != ScalingUp {
		t.Fatalf("state = %v, want scaling-up", c.State())
	}
	// Back inside the band before the dwell elapses: intent resets.
	if a := c.Observe(4, 2, sec(1)); a != Hold || c.State() != Steady {
		t.Fatalf("reset sample: action=%v state=%v", a, c.State())
	}
	// Over again — the old dwell must not be credited.
	if a := c.Observe(40, 2, sec(1.5)); a != Hold {
		t.Fatalf("fresh dwell acted immediately: %v", a)
	}
	if a := c.Observe(40, 2, sec(4)); a != Grow {
		t.Fatalf("sustained pressure past dwell = %v, want grow", a)
	}
}

// Sustained pressure grows, cooldown mutes the next action, and Max clamps.
func TestGrowCooldownAndMaxClamp(t *testing.T) {
	c := New(cfg())
	mm := NewMetrics(metrics.NewRegistry())
	pool := 2
	apply := func(a Action) {
		switch a {
		case Grow:
			pool++
		case Shrink:
			pool--
		case Hold:
		}
		mm.Record(a, pool)
	}
	apply(c.Observe(40, pool, 0))
	apply(c.Observe(40, pool, sec(3))) // dwell elapsed -> grow to 3
	if pool != 3 {
		t.Fatalf("pool = %d after dwell, want 3", pool)
	}
	// Still over-pressure but inside cooldown: held.
	apply(c.Observe(40, pool, sec(4)))
	apply(c.Observe(40, pool, sec(6)))
	if pool != 3 {
		t.Fatalf("pool = %d during cooldown, want 3", pool)
	}
	// Cooldown over; a fresh dwell (restarted at the post-action sample)
	// must still elapse before the next grow.
	apply(c.Observe(40, pool, sec(9)))
	apply(c.Observe(40, pool, sec(12)))
	if pool != 4 {
		t.Fatalf("pool = %d after second cycle, want 4", pool)
	}
	// At Max: no further growth no matter the pressure.
	apply(c.Observe(400, pool, sec(20)))
	apply(c.Observe(400, pool, sec(30)))
	if pool != 4 {
		t.Fatalf("pool = %d, grew past Max", pool)
	}
	if got := mm.PoolSize.Value(); got != 4 {
		t.Fatalf("autoscale_pool_size = %v, want 4", got)
	}
	if got := mm.Events.With("grow").Value(); got != 2 {
		t.Fatalf("autoscale_events_total{grow} = %v, want 2", got)
	}
}

// An idle pool shrinks after the down dwell and never below Min.
func TestShrinkAndMinClamp(t *testing.T) {
	c := New(cfg())
	pool := 3
	if a := c.Observe(0, pool, 0); a != Hold {
		t.Fatalf("first idle sample acted: %v", a)
	}
	if a := c.Observe(0, pool, sec(3)); a != Shrink {
		t.Fatalf("idle past dwell = %v, want shrink", a)
	}
	pool--
	// Cooldown, then another full dwell, shrinks again.
	if a := c.Observe(0, pool, sec(9)); a != Hold {
		t.Fatalf("post-cooldown first sample acted: %v", a)
	}
	if a := c.Observe(0, pool, sec(12)); a != Shrink {
		t.Fatalf("second idle dwell = %v, want shrink", a)
	}
	pool--
	// At Min: held forever.
	if a := c.Observe(0, pool, sec(20)); a != Hold {
		t.Fatalf("at Min acted: %v", a)
	}
	if a := c.Observe(0, pool, sec(60)); a != Hold {
		t.Fatalf("at Min acted late: %v", a)
	}
	dec := c.Decisions()
	if len(dec) != 2 || dec[0].Action != Shrink || dec[1].Action != Shrink {
		t.Fatalf("decisions = %+v, want exactly 2 shrinks", dec)
	}
}

// A workload oscillating faster than the dwell produces zero actions: the
// hysteresis band plus dwell is the anti-flap guarantee the simulator
// sweeps under chaos.
func TestFastOscillationNeverActs(t *testing.T) {
	c := New(cfg())
	for i := 0; i < 100; i++ {
		backlog := 0
		if i%2 == 0 {
			backlog = 40
		}
		if a := c.Observe(backlog, 2, sec(float64(i)*0.5)); a != Hold {
			t.Fatalf("flapping sample %d acted: %v", i, a)
		}
	}
	if len(c.Decisions()) != 0 {
		t.Fatalf("decisions = %+v, want none", c.Decisions())
	}
}

// Defaults complete a zero config into a usable band.
func TestDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Min < 1 || c.Max < c.Min || c.DownAt >= c.UpAt || c.UpAfter <= 0 || c.DownAfter <= 0 || c.Cooldown <= 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
	// An inverted band is repaired, not accepted.
	c = Config{UpAt: 1, DownAt: 3}.Defaults()
	if c.DownAt >= c.UpAt {
		t.Fatalf("inverted band survived Defaults: %+v", c)
	}
}
