package slave

import (
	"math/rand"
	"testing"

	"repro/internal/cudasw"
	"repro/internal/dataset"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
	"repro/internal/wire"
)

func tinyDB(t *testing.T) []*seq.Sequence {
	t.Helper()
	p := dataset.Profile{Name: "tiny", NumSeqs: 25, MeanLen: 80, SigmaLn: 0.5, MinLen: 20, MaxLen: 300}
	return dataset.Generate(p, 101)
}

func TestFarrarEngineScoresMatchReference(t *testing.T) {
	db := tinyDB(t)
	eng, err := NewFarrarEngine("sse0", score.DefaultProtein(), db, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Queries(db, 1, 60, 60, 7)[0]
	var progressCalls int
	hits, err := eng.Search(q, func(int64) { progressCalls++ }, make(chan struct{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(db) {
		t.Fatalf("%d hits", len(hits))
	}
	for i, h := range hits {
		want := sw.Score(q.Residues, db[i].Residues, score.DefaultProtein())
		if h.Score != want || h.SeqID != db[i].ID || h.Index != i {
			t.Fatalf("hit %d = %+v, want score %d", i, h, want)
		}
	}
	if progressCalls == 0 {
		t.Error("no progress callbacks")
	}
	if eng.DatabaseResidues() <= 0 || eng.Kind().String() != "CPU" || eng.Name() != "sse0" {
		t.Error("accessors wrong")
	}
}

func TestFarrarEngineCancel(t *testing.T) {
	db := tinyDB(t)
	eng, _ := NewFarrarEngine("sse0", score.DefaultProtein(), db, 0)
	q := dataset.Queries(db, 1, 50, 50, 8)[0]
	cancel := make(chan struct{})
	close(cancel)
	if _, err := eng.Search(q, nil, cancel); err != ErrCanceled {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

func TestFarrarEngineValidation(t *testing.T) {
	if _, err := NewFarrarEngine("x", score.DefaultProtein(), nil, 0); err == nil {
		t.Error("empty db accepted")
	}
	if _, err := NewFarrarEngine("x", score.Scheme{}, tinyDB(t), 0); err == nil {
		t.Error("bad scheme accepted")
	}
}

func TestGPUEngineScoresMatchFarrar(t *testing.T) {
	db := tinyDB(t)
	gpu, err := NewGPUEngine("gpu0", cudasw.GTX580(), score.DefaultProtein(), db, 0)
	if err != nil {
		t.Fatal(err)
	}
	sse, _ := NewFarrarEngine("sse0", score.DefaultProtein(), db, 0)
	q := dataset.Queries(db, 1, 90, 90, 9)[0]
	gh, err := gpu.Search(q, nil, make(chan struct{}))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := sse.Search(q, nil, make(chan struct{}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range gh {
		if gh[i].Score != sh[i].Score || gh[i].SeqID != sh[i].SeqID || gh[i].Index != sh[i].Index {
			t.Fatalf("hit %d: GPU %+v vs SSE %+v", i, gh[i], sh[i])
		}
	}
	if gpu.Kind().String() != "GPU" {
		t.Error("kind")
	}
}

func TestTopK(t *testing.T) {
	hits := []wire.Hit{
		{SeqID: "a", Index: 0, Score: 5},
		{SeqID: "b", Index: 1, Score: 9},
		{SeqID: "c", Index: 2, Score: 9},
		{SeqID: "d", Index: 3, Score: 1},
	}
	top := TopK(hits, 2)
	if len(top) != 2 || top[0].SeqID != "b" || top[1].SeqID != "c" {
		t.Errorf("TopK = %v", top)
	}
	if got := TopK(hits, 0); len(got) != 4 {
		t.Errorf("TopK(0) = %d hits, want all", len(got))
	}
	if got := TopK(hits, 99); len(got) != 4 {
		t.Errorf("TopK(99) = %d hits", len(got))
	}
	// The input must not be reordered.
	if hits[0].SeqID != "a" {
		t.Error("TopK mutated its input")
	}
}

func TestRandomizedEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	p := dataset.Profile{Name: "r", NumSeqs: 12, MeanLen: 60, SigmaLn: 0.4, MinLen: 10, MaxLen: 150}
	for iter := 0; iter < 3; iter++ {
		db := dataset.Generate(p, rng.Int63())
		qs := dataset.Queries(db, 2, 40, 120, rng.Int63())
		gpu, _ := NewGPUEngine("g", cudasw.GTX580(), score.DefaultProtein(), db, 0)
		sse, _ := NewFarrarEngine("s", score.DefaultProtein(), db, 0)
		for _, q := range qs {
			gh, _ := gpu.Search(q, nil, make(chan struct{}))
			sh, _ := sse.Search(q, nil, make(chan struct{}))
			for i := range gh {
				if gh[i].Score != sh[i].Score {
					t.Fatalf("engines disagree on %s vs %s", q.ID, db[i].ID)
				}
			}
		}
	}
}
