package platform

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/sched"
)

// TraceEvent is one line of an exported run trace. Kind is "assign",
// "sample" or "summary"; the other fields are populated per kind. Traces
// are JSON-lines so standard tooling (jq, pandas) can consume them.
type TraceEvent struct {
	Kind    string  `json:"kind"`
	TimeSec float64 `json:"t"`
	PE      string  `json:"pe,omitempty"`

	// assign
	Tasks   []int `json:"tasks,omitempty"`
	Replica bool  `json:"replica,omitempty"`

	// sample
	GCUPS float64 `json:"gcups,omitempty"`

	// exec (one task occupancy window)
	Task      int     `json:"task,omitempty"`
	EndSec    float64 `json:"end,omitempty"`
	Completed bool    `json:"completed,omitempty"`

	// summary (one per PE plus one overall with PE == "")
	CellsDone   int64   `json:"cells,omitempty"`
	TasksWon    int     `json:"won,omitempty"`
	BusySec     float64 `json:"busy_s,omitempty"`
	MakespanSec float64 `json:"makespan_s,omitempty"`
	TotalGCUPS  float64 `json:"total_gcups,omitempty"`

	// stage (one filtered-search stage completed for one query)
	Stage       string  `json:"stage,omitempty"`
	Windows     int     `json:"windows,omitempty"`
	Selectivity float64 `json:"selectivity,omitempty"`
}

// WriteTrace streams the run as JSON lines: every assignment interaction,
// every throughput sample, per-PE summaries and the overall summary.
func WriteTrace(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	name := func(id sched.SlaveID) string {
		if int(id) < len(res.PerPE) {
			return res.PerPE[id].Name
		}
		return fmt.Sprintf("pe%d", id)
	}
	for _, a := range res.Assignments {
		ids := make([]int, len(a.Tasks))
		for i, t := range a.Tasks {
			ids[i] = int(t)
		}
		if err := enc.Encode(TraceEvent{
			Kind: "assign", TimeSec: a.Time.Seconds(), PE: name(a.Slave),
			Tasks: ids, Replica: a.Replica,
		}); err != nil {
			return err
		}
	}
	for _, pe := range res.PerPE {
		for _, s := range pe.Timeline {
			if err := enc.Encode(TraceEvent{
				Kind: "sample", TimeSec: s.T.Seconds(), PE: pe.Name, GCUPS: s.Rate / 1e9,
			}); err != nil {
				return err
			}
		}
		for _, ex := range pe.Executions {
			if err := enc.Encode(TraceEvent{
				Kind: "exec", PE: pe.Name, Task: int(ex.Task),
				TimeSec: ex.Start.Seconds(), EndSec: ex.End.Seconds(),
				Completed: ex.Completed, Replica: ex.Replica,
			}); err != nil {
				return err
			}
		}
	}
	for _, pe := range res.PerPE {
		if err := enc.Encode(TraceEvent{
			Kind: "summary", PE: pe.Name,
			CellsDone: pe.CellsDone, TasksWon: pe.TasksWon, BusySec: pe.Busy.Seconds(),
		}); err != nil {
			return err
		}
	}
	if err := enc.Encode(TraceEvent{
		Kind:        "summary",
		MakespanSec: res.Makespan.Seconds(),
		CellsDone:   res.UsefulCells,
		TotalGCUPS:  res.GCUPS(),
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTrace parses a JSON-lines trace back into events.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	dec := json.NewDecoder(r)
	for {
		var e TraceEvent
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("platform: trace line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

// TraceSummary extracts the overall summary event from a trace.
func TraceSummary(events []TraceEvent) (TraceEvent, bool) {
	for _, e := range events {
		if e.Kind == "summary" && e.PE == "" {
			return e, true
		}
	}
	return TraceEvent{}, false
}

// Makespan is a convenience for tests and tools reading traces.
func (e TraceEvent) Makespan() time.Duration {
	return time.Duration(e.MakespanSec * float64(time.Second))
}
