// Command benchtables regenerates every table and figure of the paper's
// evaluation (§V) on the calibrated virtual-time platform, plus the
// ablations from DESIGN.md. See EXPERIMENTS.md for the paper-vs-measured
// record these outputs feed.
//
// Usage:
//
//	benchtables              # run everything
//	benchtables -exp table5  # one experiment: table2..table5, fig5..fig8,
//	                         # policies, omega, latency
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/gcups"
	"repro/internal/platform"
)

var runners = []struct {
	name string
	run  func() error
}{
	{"table2", func() error { fmt.Println(experiments.Table2()); return nil }},
	{"table3", tableRunner(experiments.Table3)},
	{"table4", tableRunner(experiments.Table4)},
	{"table5", tableRunner(experiments.Table5)},
	{"fig5", runFig5},
	{"fig6", func() error {
		_, tab, err := experiments.Fig6()
		if err != nil {
			return err
		}
		fmt.Println(tab)
		return nil
	}},
	{"fig7", func() error { return runTimeline("Fig. 7: dedicated execution with 4 cores", experiments.Fig7) }},
	{"fig8", func() error {
		return runTimeline("Fig. 8: non-dedicated execution, local load at core 0 from t=60s", experiments.Fig8)
	}},
	{"policies", func() error {
		for _, adjust := range []bool{true, false} {
			tab, err := experiments.PolicyAblation(adjust)
			if err != nil {
				return err
			}
			fmt.Println(tab)
		}
		return nil
	}},
	{"omega", tableOnly(experiments.OmegaAblation)},
	{"latency", tableOnly(experiments.LatencyAblation)},
	{"futurework", tableOnly(experiments.FutureWork)},
	{"threshold", tableOnly(experiments.ThresholdAblation)},
	{"burst", tableOnly(experiments.BurstAblation)},
	{"trace", runTrace},
}

// traceOut is where -exp trace writes its JSON-lines run trace.
var traceOut string

// runTrace dumps the full event trace of the headline run (4 GPU + 4 SSE on
// SwissProt with PSS + adjustment) for external analysis.
func runTrace() error {
	res, err := experiments.HeadlineRun()
	if err != nil {
		return err
	}
	out := os.Stdout
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := platform.WriteTrace(out, res); err != nil {
		return err
	}
	if traceOut != "" {
		fmt.Printf("trace written to %s (%d assignments, %d PEs)\n", traceOut, len(res.Assignments), len(res.PerPE))
	}
	return nil
}

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all): "+nameList())
	flag.StringVar(&traceOut, "trace-out", "", "file for -exp trace output (default stdout)")
	svgDir := flag.String("svg", "", "also render figs 5-8 as SVG charts into this directory")
	csvDir := flag.String("csv", "", "also write the tables as CSV files into this directory")
	flag.Parse()

	if *csvDir != "" {
		if err := writeCSVs(*csvDir); err != nil {
			fail("csv: %v", err)
		}
		if *exp == "" && *svgDir == "" {
			return
		}
	}

	if *svgDir != "" {
		paths, err := experiments.WriteSVGs(*svgDir)
		if err != nil {
			fail("svg: %v", err)
		}
		for _, p := range paths {
			fmt.Println("wrote", p)
		}
		if *exp == "" {
			return
		}
	}

	if *exp != "" {
		for _, r := range runners {
			if r.name == *exp {
				if err := r.run(); err != nil {
					fail("%s: %v", r.name, err)
				}
				return
			}
		}
		fail("unknown experiment %q (want one of %s)", *exp, nameList())
	}
	for _, r := range runners {
		if r.name == "trace" {
			continue // explicit opt-in only: the trace floods stdout
		}
		fmt.Printf("### %s\n\n", r.name)
		if err := r.run(); err != nil {
			fail("%s: %v", r.name, err)
		}
		fmt.Println()
	}
}

// writeCSVs dumps every tabular experiment as CSV for external plotting.
func writeCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tables := map[string]func() (*gcups.Table, error){
		"table2.csv": func() (*gcups.Table, error) { return experiments.Table2(), nil },
		"table3.csv": func() (*gcups.Table, error) { _, t, err := experiments.Table3(); return t, err },
		"table4.csv": func() (*gcups.Table, error) { _, t, err := experiments.Table4(); return t, err },
		"table5.csv": func() (*gcups.Table, error) { _, t, err := experiments.Table5(); return t, err },
		"fig6.csv":   func() (*gcups.Table, error) { _, t, err := experiments.Fig6(); return t, err },
		"policies.csv": func() (*gcups.Table, error) {
			return experiments.PolicyAblation(true)
		},
		"omega.csv":      experiments.OmegaAblation,
		"latency.csv":    experiments.LatencyAblation,
		"threshold.csv":  experiments.ThresholdAblation,
		"burst.csv":      experiments.BurstAblation,
		"futurework.csv": experiments.FutureWork,
	}
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tab, err := tables[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func nameList() string {
	var names []string
	for _, r := range runners {
		names = append(names, r.name)
	}
	return strings.Join(names, ", ")
}

func tableRunner(f func() ([]experiments.Run, *gcups.Table, error)) func() error {
	return func() error {
		_, tab, err := f()
		if err != nil {
			return err
		}
		fmt.Println(tab)
		return nil
	}
}

func tableOnly(f func() (*gcups.Table, error)) func() error {
	return func() error {
		tab, err := f()
		if err != nil {
			return err
		}
		fmt.Println(tab)
		return nil
	}
}

func runFig5() error {
	res, err := experiments.Fig5()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 5a: with the workload adjustment mechanism (paper: 14 s)")
	fmt.Print(experiments.Gantt(res.With))
	fmt.Println("\nFig. 5b: without the mechanism (paper: 18 s)")
	fmt.Print(experiments.Gantt(res.Without))
	return nil
}

func runTimeline(title string, f func() (*experiments.FigTimeline, error)) error {
	res, err := f()
	if err != nil {
		return err
	}
	fmt.Println(title)
	fmt.Printf("wall-clock execution time: %s s\n\n", gcups.Seconds(res.Makespan))
	// Render each core's GCUPS series as a sparkline-style text plot.
	for _, s := range res.Series {
		fmt.Printf("%-6s", s.Name)
		for _, p := range s.Points {
			fmt.Printf(" %s", bar(p.GCUPS))
		}
		fmt.Printf("  (mean %.2f GCUPS)\n", s.Mean())
	}
	fmt.Println("\n(one column per 2 s bucket; scale: ' '<0.5, .<1.5, :<2.0, |<2.5, #>=2.5 GCUPS)")
	return nil
}

func bar(g float64) string {
	switch {
	case g < 0.5:
		return " "
	case g < 1.5:
		return "."
	case g < 2.0:
		return ":"
	case g < 2.5:
		return "|"
	default:
		return "#"
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtables: "+format+"\n", args...)
	os.Exit(1)
}
