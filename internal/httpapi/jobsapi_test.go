package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	hybridsw "repro"
	"repro/internal/dataset"
	"repro/internal/jobs"
)

func testServerOpts(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	p := dataset.Profile{Name: "t", NumSeqs: 20, MeanLen: 70, SigmaLn: 0.5, MinLen: 20, MaxLen: 200}
	db := dataset.Generate(p, 42)
	s, err := NewWithOptions("test-db", db, hybridsw.Platform{SSECores: 1, Adjust: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s, ts
}

func do(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, _ := json.Marshal(body)
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

func pollJob(t *testing.T, url, id string, want jobs.State) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var v JobView
	for time.Now().Before(deadline) {
		resp, body := do(t, "GET", url+"/jobs/"+id, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("GET /jobs/%s: %d %s", id, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == want {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
	return JobView{}
}

// TestConcurrentSearchesCoalesce: N identical concurrent POST /search calls
// execute the underlying search exactly once — verified through the jobs_*
// metric families — and every caller gets the same body.
func TestConcurrentSearchesCoalesce(t *testing.T) {
	srv, ts := testServerOpts(t, Options{})
	q := srv.db[3]
	payload := SearchRequest{QueriesFasta: fmt.Sprintf(">query1\n%s\n", q.Residues), TopK: 3}

	const n = 6
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := do(t, "POST", ts.URL+"/search", payload)
			if resp.StatusCode != 200 {
				t.Errorf("request %d: %d %s", i, resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	// NewMetrics is idempotent: this re-attaches to the server's families.
	mm := jobs.NewMetrics(srv.Registry())
	if got := mm.CacheMisses.Value(); got != 1 {
		t.Errorf("jobs_cache_misses_total = %v, want 1 (exactly one execution)", got)
	}
	if got := mm.Completed.With("done").Value(); got != 1 {
		t.Errorf("jobs_completed_total{done} = %v, want 1", got)
	}
	if got := mm.Coalesced.Value() + mm.CacheHits.Value(); got != n-1 {
		t.Errorf("coalesced+cache_hits = %v, want %d", got, n-1)
	}
}

func TestJobLifecycle(t *testing.T) {
	srv, ts := testServerOpts(t, Options{})
	q := srv.db[5]
	payload := SearchRequest{QueriesFasta: fmt.Sprintf(">q\n%s\n", q.Residues), TopK: 2, Align: true}

	resp, body := do(t, "POST", ts.URL+"/jobs", payload)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Queries != 1 {
		t.Fatalf("job view = %+v", v)
	}

	done := pollJob(t, ts.URL, v.ID, jobs.StateDone)
	if done.Finished == nil || done.ResultBytes == 0 {
		t.Fatalf("done view = %+v", done)
	}

	resp, body = do(t, "GET", ts.URL+"/jobs/"+v.ID+"/result", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	var out SearchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || len(out.Results[0].Hits) != 2 {
		t.Fatalf("result payload = %+v", out)
	}
	if out.Results[0].Hits[0].QueryRow == "" {
		t.Error("align=true produced no alignment rows")
	}

	// The job shows up in the listing.
	resp, body = do(t, "GET", ts.URL+"/jobs?state=done", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var listing struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range listing.Jobs {
		if j.ID == v.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s missing from listing %s", v.ID, body)
	}

	// An identical submission is a cache hit: 200 immediately, no new run.
	resp, body = do(t, "POST", ts.URL+"/jobs", payload)
	if resp.StatusCode != 200 {
		t.Fatalf("cache-hit submit: %d %s", resp.StatusCode, body)
	}
	var hit JobView
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.State != jobs.StateDone {
		t.Fatalf("repeat submission = %+v, want cache hit", hit)
	}
}

func TestJobCancelAndNotFound(t *testing.T) {
	_, ts := testServerOpts(t, Options{Jobs: jobs.Config{Executors: -1}}) // queue only
	payload := SearchRequest{QueriesFasta: ">q\nMKVLATGFFDE\n"}

	resp, body := do(t, "POST", ts.URL+"/jobs", payload)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != jobs.StateQueued {
		t.Fatalf("state = %s, want queued (no executors)", v.State)
	}
	// Result of a queued job: 202 with the view, not an error.
	resp, _ = do(t, "GET", ts.URL+"/jobs/"+v.ID+"/result", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("result while queued: %d", resp.StatusCode)
	}
	resp, body = do(t, "DELETE", ts.URL+"/jobs/"+v.ID, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != jobs.StateCanceled {
		t.Fatalf("state after DELETE = %s", v.State)
	}
	resp, _ = do(t, "GET", ts.URL+"/jobs/"+v.ID+"/result", nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("result of cancelled job: %d, want 410", resp.StatusCode)
	}
	// Idempotent DELETE; unknown IDs are 404 everywhere.
	if resp, _ = do(t, "DELETE", ts.URL+"/jobs/"+v.ID, nil); resp.StatusCode != 200 {
		t.Fatalf("re-DELETE: %d", resp.StatusCode)
	}
	if resp, _ = do(t, "GET", ts.URL+"/jobs/nope", nil); resp.StatusCode != 404 {
		t.Fatalf("GET unknown: %d", resp.StatusCode)
	}
	if resp, _ = do(t, "DELETE", ts.URL+"/jobs/nope", nil); resp.StatusCode != 404 {
		t.Fatalf("DELETE unknown: %d", resp.StatusCode)
	}
}

func TestValidationCaps(t *testing.T) {
	_, ts := testServerOpts(t, Options{
		Limits: Limits{MaxQueries: 1, MaxResidues: 100, MaxTopK: 5, MaxAlignLen: 10},
	})
	reason := func(body []byte) string {
		var m map[string]string
		_ = json.Unmarshal(body, &m)
		return m["reason"]
	}
	cases := []struct {
		name   string
		path   string
		body   any
		status int
		reason string
	}{
		{"too many queries", "/search", SearchRequest{QueriesFasta: ">a\nMKVL\n>b\nMKVL\n"}, 422, "too_many_queries"},
		{"too many residues", "/jobs", SearchRequest{QueriesFasta: ">a\n" + string(bytes.Repeat([]byte("M"), 150)) + "\n"}, 422, "too_many_residues"},
		{"top_k too large", "/search", SearchRequest{QueriesFasta: ">a\nMKVL\n", TopK: 6}, 422, "top_k_too_large"},
		{"unknown policy", "/jobs", SearchRequest{QueriesFasta: ">a\nMKVL\n", Policy: "bogus"}, 422, "unknown_policy"},
		{"align too long", "/align", AlignRequest{A: "MKVLATGFFDEMK", B: "MKVL"}, 422, "sequence_too_long"},
		{"empty fasta", "/search", SearchRequest{QueriesFasta: ""}, 400, ""},
	}
	for _, tc := range cases {
		resp, body := do(t, "POST", ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		if tc.reason != "" && reason(body) != tc.reason {
			t.Errorf("%s: reason %q, want %q", tc.name, reason(body), tc.reason)
		}
	}
}

func TestQueueFullGets429(t *testing.T) {
	_, ts := testServerOpts(t, Options{Jobs: jobs.Config{Executors: -1, MaxQueue: 1}})
	resp, body := do(t, "POST", ts.URL+"/jobs", SearchRequest{QueriesFasta: ">a\nMKVL\n"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, "POST", ts.URL+"/jobs", SearchRequest{QueriesFasta: ">b\nACDE\n"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var m map[string]string
	_ = json.Unmarshal(body, &m)
	if m["reason"] != "queue_full" {
		t.Errorf("reason = %q", m["reason"])
	}
}

// TestJobsSurviveRestart: a job queued against a durable dir is resumed and
// completed by a fresh server over the same dir — the acceptance demo's
// restart leg.
func TestJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	p := dataset.Profile{Name: "t", NumSeqs: 20, MeanLen: 70, SigmaLn: 0.5, MinLen: 20, MaxLen: 200}
	db := dataset.Generate(p, 42)

	// First life: no executors, so the submission stays queued.
	s1, err := NewWithOptions("test-db", db, hybridsw.Platform{SSECores: 1},
		Options{Jobs: jobs.Config{Dir: dir, Executors: -1}})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	payload := SearchRequest{QueriesFasta: fmt.Sprintf(">q\n%s\n", db[2].Residues), TopK: 1}
	resp, body := do(t, "POST", ts1.URL+"/jobs", payload)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Second life over the same dir: the queued job must run to done.
	s2, err := NewWithOptions("test-db", db, hybridsw.Platform{SSECores: 1},
		Options{Jobs: jobs.Config{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s2.Close(ctx)
	})
	done := pollJob(t, ts2.URL, v.ID, jobs.StateDone)
	if done.ID != v.ID {
		t.Fatalf("recovered job = %+v", done)
	}
	resp, body = do(t, "GET", ts2.URL+"/jobs/"+v.ID+"/result", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("recovered result: %d %s", resp.StatusCode, body)
	}
	var out SearchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || len(out.Results[0].Hits) != 1 {
		t.Fatalf("recovered result payload = %+v", out)
	}
}
