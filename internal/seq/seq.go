// Package seq defines biological sequences and residue alphabets.
//
// A biological sequence is an ordered list of residues: nucleotide bases for
// DNA/RNA or amino acids for proteins. Sequences are stored as byte slices of
// upper-case residue letters; the Alphabet type validates membership and maps
// residues to dense indices used by scoring matrices and query profiles.
package seq

import (
	"fmt"
	"strings"
)

// Kind identifies the molecule type of an alphabet.
type Kind int

const (
	// DNAKind is deoxyribonucleic acid (alphabet ATGC).
	DNAKind Kind = iota
	// RNAKind is ribonucleic acid (alphabet AUGC).
	RNAKind
	// ProteinKind is a protein (20 amino acids plus ambiguity codes).
	ProteinKind
)

// String returns the conventional name of the molecule kind.
func (k Kind) String() string {
	switch k {
	case DNAKind:
		return "DNA"
	case RNAKind:
		return "RNA"
	case ProteinKind:
		return "protein"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Alphabet maps residue letters to dense indices [0, Size) and back.
// The zero value is not useful; use one of the package-level alphabets or
// NewAlphabet.
type Alphabet struct {
	kind    Kind
	letters string
	index   [256]int8 // -1 when the byte is not a residue of this alphabet
}

// Package alphabets. Protein includes the standard 20 amino acids followed by
// the ambiguity/extension codes B, Z, X and the stop/unknown placeholder '*',
// matching the column order of the embedded BLOSUM/PAM matrices.
var (
	DNA     = NewAlphabet(DNAKind, "ATGC")
	RNA     = NewAlphabet(RNAKind, "AUGC")
	Protein = NewAlphabet(ProteinKind, "ACDEFGHIKLMNPQRSTVWYBZX*")
)

// NewAlphabet builds an alphabet from the given residue letters. Letters are
// case-insensitive on lookup but stored upper-case. It panics if letters
// repeat, because alphabets are package-level constants in practice.
func NewAlphabet(kind Kind, letters string) *Alphabet {
	letters = strings.ToUpper(letters)
	a := &Alphabet{kind: kind, letters: letters}
	for i := range a.index {
		a.index[i] = -1
	}
	for i := 0; i < len(letters); i++ {
		c := letters[i]
		if a.index[c] != -1 {
			panic(fmt.Sprintf("seq: duplicate letter %q in alphabet", c))
		}
		a.index[c] = int8(i)
		if lo := c | 0x20; lo != c { // also accept lower case
			a.index[lo] = int8(i)
		}
	}
	return a
}

// Kind reports the molecule kind of the alphabet.
func (a *Alphabet) Kind() Kind { return a.kind }

// Size returns the number of residues in the alphabet.
func (a *Alphabet) Size() int { return len(a.letters) }

// Letters returns the residue letters in index order.
func (a *Alphabet) Letters() string { return a.letters }

// Index returns the dense index of residue c, or -1 if c is not a residue of
// this alphabet.
func (a *Alphabet) Index(c byte) int { return int(a.index[c]) }

// Letter returns the residue letter for dense index i.
func (a *Alphabet) Letter(i int) byte { return a.letters[i] }

// Contains reports whether c is a residue of this alphabet (case-insensitive).
func (a *Alphabet) Contains(c byte) bool { return a.index[c] >= 0 }

// Validate checks that every byte of s is a residue of the alphabet and
// returns a descriptive error naming the first offending byte otherwise.
func (a *Alphabet) Validate(s []byte) error {
	for i, c := range s {
		if a.index[c] < 0 {
			return fmt.Errorf("seq: invalid %s residue %q at position %d", a.kind, c, i)
		}
	}
	return nil
}

// Encode converts residue letters to dense indices, allocating a new slice.
// It returns an error if any byte is not in the alphabet.
func (a *Alphabet) Encode(s []byte) ([]byte, error) {
	out := make([]byte, len(s))
	for i, c := range s {
		v := a.index[c]
		if v < 0 {
			return nil, fmt.Errorf("seq: invalid %s residue %q at position %d", a.kind, c, i)
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Decode converts dense indices back to residue letters, allocating a new
// slice. Indices outside the alphabet render as '?'.
func (a *Alphabet) Decode(idx []byte) []byte {
	out := make([]byte, len(idx))
	for i, v := range idx {
		if int(v) < len(a.letters) {
			out[i] = a.letters[v]
		} else {
			out[i] = '?'
		}
	}
	return out
}

// Sequence is a named biological sequence. Residues holds upper-case letters
// of the sequence's alphabet (not dense indices).
type Sequence struct {
	ID          string // first word of the FASTA header
	Description string // remainder of the FASTA header, may be empty
	Residues    []byte
}

// New builds a sequence, upper-casing residues in place of a fresh copy so
// the caller's buffer is not aliased.
func New(id, desc string, residues []byte) *Sequence {
	r := make([]byte, len(residues))
	for i, c := range residues {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		r[i] = c
	}
	return &Sequence{ID: id, Description: desc, Residues: r}
}

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.Residues) }

// String renders the sequence as ">ID desc" plus a residue preview, for logs.
func (s *Sequence) String() string {
	const preview = 12
	r := s.Residues
	suffix := ""
	if len(r) > preview {
		r, suffix = r[:preview], "..."
	}
	return fmt.Sprintf(">%s [%d aa] %s%s", s.ID, s.Len(), r, suffix)
}

// Composition counts each residue letter of s under alphabet a. Returns a
// slice indexed by dense residue index and the count of bytes outside the
// alphabet.
func Composition(a *Alphabet, s []byte) (counts []int, invalid int) {
	counts = make([]int, a.Size())
	for _, c := range s {
		if i := a.Index(c); i >= 0 {
			counts[i]++
		} else {
			invalid++
		}
	}
	return counts, invalid
}

// GuessAlphabet inspects s and returns the most plausible package alphabet:
// DNA if all residues are ATGC(N), RNA if AUGC(N), otherwise Protein.
func GuessAlphabet(s []byte) *Alphabet {
	var hasU, hasT, other bool
	for _, c := range s {
		switch c | 0x20 {
		case 'a', 'g', 'c', 'n':
		case 't':
			hasT = true
		case 'u':
			hasU = true
		default:
			other = true
		}
	}
	switch {
	case other || (hasT && hasU):
		return Protein
	case hasU:
		return RNA
	default:
		return DNA
	}
}

// complementTable maps DNA bases to their Watson-Crick complements,
// tolerating lower case and leaving unknown bytes (e.g. N) unchanged.
var complementTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = byte(i)
	}
	for _, p := range [][2]byte{{'A', 'T'}, {'G', 'C'}, {'a', 't'}, {'g', 'c'}} {
		t[p[0]], t[p[1]] = p[1], p[0]
	}
	return t
}()

// ReverseComplement returns the reverse complement of a DNA sequence,
// allocating a new slice. Non-ATGC bytes pass through unchanged.
func ReverseComplement(dna []byte) []byte {
	out := make([]byte, len(dna))
	for i, c := range dna {
		out[len(dna)-1-i] = complementTable[c]
	}
	return out
}
