// Command makedb generates a synthetic protein database with the size
// profile of one of the paper's Table II databases (optionally scaled),
// writes it as FASTA, builds the paper's §IV-B index for it, and derives a
// query file with lengths equally distributed as in the evaluation.
//
// Usage:
//
//	makedb -db "UniProtKB/SwissProt" -scale 0.001 -out swissprot.fasta \
//	       -queries 40 -minq 100 -maxq 5000 -qout queries.fasta
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/fasta"
	"repro/internal/seqio"
)

func main() {
	var (
		dbName  = flag.String("db", "UniProtKB/SwissProt", "Table II database profile (see -list)")
		list    = flag.Bool("list", false, "list available database profiles and exit")
		scale   = flag.Float64("scale", 0.001, "scale factor on the sequence count")
		seed    = flag.Int64("seed", 1, "generation seed")
		out     = flag.String("out", "db.fasta", "database FASTA output path")
		queries = flag.Int("queries", 40, "number of query sequences (0 to skip)")
		minQ    = flag.Int("minq", 100, "smallest query length")
		maxQ    = flag.Int("maxq", 5000, "largest query length")
		qout    = flag.String("qout", "queries.fasta", "query FASTA output path")
		pack    = flag.Bool("pack", false, "also write the packed binary format (.swpkd)")
	)
	flag.Parse()

	if *list {
		for _, p := range dataset.TableII() {
			fmt.Printf("%-24s %8d sequences, mean length %.0f, ~%d residues\n",
				p.Name, p.NumSeqs, p.MeanLen, p.Residues())
		}
		return
	}
	profile, err := dataset.ProfileByName(*dbName)
	if err != nil {
		fail("%v\navailable: %s", err, strings.Join(names(), ", "))
	}
	if *scale > 0 && *scale != 1 {
		profile = profile.Scale(*scale)
	}
	db := dataset.Generate(profile, *seed)
	if err := fasta.WriteFile(*out, db); err != nil {
		fail("writing %s: %v", *out, err)
	}
	n, err := seqio.Build(*out, seqio.IndexPath(*out))
	if err != nil {
		fail("indexing %s: %v", *out, err)
	}
	var residues int64
	for _, s := range db {
		residues += int64(s.Len())
	}
	fmt.Printf("wrote %s: %d sequences, %d residues (indexed %d records -> %s)\n",
		*out, len(db), residues, n, seqio.IndexPath(*out))
	if *pack {
		info, err := seqio.Pack(*out, seqio.PackedPath(*out), nil)
		if err != nil {
			fail("packing: %v", err)
		}
		fmt.Printf("packed -> %s (%d sequences, %d residues, max len %d)\n",
			seqio.PackedPath(*out), info.Count, info.Residues, info.MaxLen)
	}

	if *queries > 0 {
		qs := dataset.Queries(db, *queries, *minQ, *maxQ, *seed+1)
		if err := fasta.WriteFile(*qout, qs); err != nil {
			fail("writing %s: %v", *qout, err)
		}
		if _, err := seqio.Build(*qout, seqio.IndexPath(*qout)); err != nil {
			fail("indexing %s: %v", *qout, err)
		}
		fmt.Printf("wrote %s: %d queries, lengths %d..%d\n", *qout, len(qs), *minQ, *maxQ)
	}
}

func names() []string {
	var out []string
	for _, p := range dataset.TableII() {
		out = append(out, fmt.Sprintf("%q", p.Name))
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "makedb: "+format+"\n", args...)
	os.Exit(1)
}
