package master_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cudasw"
	"repro/internal/master"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/prefilter"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/slave"
	"repro/internal/wire"
)

// plantedJob builds a database where every sequence contains each query
// verbatim, so every hit's alignment lies inside an admitted window and the
// filtered ranking must be byte-identical to the full scan's.
func plantedJob(seed int64, nseqs, seqLen, nqueries, qlen int) (db, queries []*seq.Sequence) {
	rng := rand.New(rand.NewSource(seed))
	const sigma = "ACDEFGHIKLMNPQRSTVWY"
	queries = make([]*seq.Sequence, nqueries)
	for i := range queries {
		res := make([]byte, qlen)
		for j := range res {
			res[j] = sigma[rng.Intn(len(sigma))]
		}
		queries[i] = seq.New("q"+string(rune('0'+i)), "", res)
	}
	db = make([]*seq.Sequence, nseqs)
	for i := range db {
		res := make([]byte, seqLen)
		for j := range res {
			res[j] = sigma[rng.Intn(len(sigma))]
		}
		for qi, q := range queries {
			at := (i*nqueries + qi) * qlen * 2 % (seqLen - qlen)
			copy(res[at:], q.Residues)
		}
		db[i] = seq.New("d"+string(rune('A'+i)), "", res)
	}
	return db, queries
}

func TestFilteredMatchesFullScanRanking(t *testing.T) {
	db, queries := plantedJob(91, 5, 800, 3, 30)
	scheme := score.DefaultProtein()

	run := func(filtered bool) ([]master.QueryResult, master.FilterStats) {
		m, err := master.New(master.Config{
			Queries:    queries,
			DBResidues: dbResidues(db),
			Policy:     &sched.PSS{},
			Filtered:   filtered,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		sse1, _ := slave.NewFarrarEngine("sse1", scheme, db, 0)
		sse2, _ := slave.NewFarrarEngine("sse2", scheme, db, 0)
		runLocal(t, m, []slave.Engine{sse1, sse2})
		if err := m.Wait(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		return m.Results(), m.FilterStats()
	}

	full, fullStats := run(false)
	filt, filtStats := run(true)

	if fullStats.RescoredCells != 0 || fullStats.Queries != 0 {
		t.Fatalf("full scan reported filter stats: %+v", fullStats)
	}
	if len(filt) != len(full) {
		t.Fatalf("filtered produced %d results, full %d", len(filt), len(full))
	}
	for i := range full {
		if filt[i].Query != full[i].Query {
			t.Fatalf("result %d: query %q vs %q", i, filt[i].Query, full[i].Query)
		}
		if len(filt[i].Hits) != len(full[i].Hits) {
			t.Fatalf("query %s: %d filtered hits vs %d full", full[i].Query, len(filt[i].Hits), len(full[i].Hits))
		}
		for j := range full[i].Hits {
			fh, gh := full[i].Hits[j], filt[i].Hits[j]
			if fh.SeqID != gh.SeqID || fh.Index != gh.Index || fh.Score != gh.Score {
				t.Fatalf("query %s hit %d: full {%s %d %d} vs filtered {%s %d %d}",
					full[i].Query, j, fh.SeqID, fh.Index, fh.Score, gh.SeqID, gh.Index, gh.Score)
			}
		}
	}

	// The selectivity acceptance: rescored cells strictly below full-scan
	// cells, with every stage accounted.
	if filtStats.Queries != len(queries) || filtStats.PrefilterDone != len(queries) || filtStats.RescoreDone != len(queries) {
		t.Fatalf("stage accounting: %+v", filtStats)
	}
	if filtStats.RescoredCells <= 0 || filtStats.RescoredCells >= filtStats.FullScanCells {
		t.Fatalf("rescored cells %d not strictly below full-scan cells %d", filtStats.RescoredCells, filtStats.FullScanCells)
	}
	if sel := filtStats.Selectivity(); sel <= 0 || sel >= 1 {
		t.Fatalf("selectivity %v not in (0,1)", sel)
	}
	if filtStats.CellsSaved() == 0 {
		t.Fatal("no cells saved")
	}
}

// TestFilteredCoreProtocol drives the two-stage protocol by hand: a
// capability-less slave must be left on standby, a capable slave runs the
// prefilter, and the rescore task materializes in the same dispatch step
// that accepted the windows.
func TestFilteredCoreProtocol(t *testing.T) {
	q := seq.New("q0", "", bytes.Repeat([]byte("ACDEFGHI"), 5))
	core, err := master.NewFilteredCore([]*seq.Sequence{q}, 1000, prefilter.Spec{}, sched.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)

	// SW-only slave (nil caps): sees a standby, never a prefilter task.
	legacy := core.Dispatch(wire.Envelope{Register: &wire.RegisterMsg{Name: "legacy"}}, now)
	la := core.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: legacy.RegisterAck.Slave}}, now)
	if la.Assign == nil || !la.Assign.Standby || len(la.Assign.Tasks) != 0 {
		t.Fatalf("legacy slave got %+v, want standby", la.Assign)
	}

	caps := []sched.TaskKind{sched.TaskSW, sched.TaskPrefilter, sched.TaskRescore}
	reg := core.Dispatch(wire.Envelope{Register: &wire.RegisterMsg{Name: "cpu", Caps: caps}}, now)
	id := reg.RegisterAck.Slave

	a := core.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: id}}, now)
	if a.Assign == nil || len(a.Assign.Tasks) != 1 {
		t.Fatalf("capable slave got %+v", a.Assign)
	}
	spec := a.Assign.Tasks[0]
	if spec.TaskKind != sched.TaskPrefilter || spec.Filter == nil {
		t.Fatalf("first task is %v (filter %v), want prefilter with spec", spec.TaskKind, spec.Filter)
	}
	if spec.Cells != 1000*sched.PrefilterEquivCells {
		t.Fatalf("prefilter task cells = %d, want %d", spec.Cells, 1000*sched.PrefilterEquivCells)
	}

	windows := []sched.Window{{Seq: 0, Start: 10, End: 90}}
	ack := core.Dispatch(wire.Envelope{Complete: &wire.CompleteMsg{
		Slave: id, Task: spec.ID, Windows: windows, Scanned: 1000, Candidates: 80,
	}}, now)
	if ack.CompleteAck == nil || !ack.CompleteAck.Accepted {
		t.Fatalf("prefilter completion not accepted: %+v", ack)
	}
	if ack.CompleteAck.Done {
		t.Fatal("job reported done with the rescore stage outstanding")
	}

	a2 := core.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: id}}, now)
	if a2.Assign == nil || len(a2.Assign.Tasks) != 1 {
		t.Fatalf("no rescore task after prefilter completion: %+v", a2.Assign)
	}
	rspec := a2.Assign.Tasks[0]
	if rspec.TaskKind != sched.TaskRescore || len(rspec.Windows) != 1 || rspec.Windows[0] != windows[0] {
		t.Fatalf("second task is %v windows %v", rspec.TaskKind, rspec.Windows)
	}
	if want := int64(q.Len()) * 80; rspec.Cells != want {
		t.Fatalf("rescore task cells = %d, want %d", rspec.Cells, want)
	}

	hits := []wire.Hit{{SeqID: "d0", Index: 0, Score: 42}}
	ack2 := core.Dispatch(wire.Envelope{Complete: &wire.CompleteMsg{Slave: id, Task: rspec.ID, Hits: hits}}, now)
	if ack2.CompleteAck == nil || !ack2.CompleteAck.Accepted || !ack2.CompleteAck.Done {
		t.Fatalf("rescore completion: %+v", ack2)
	}
	results := core.Results()
	if len(results) != 1 || results[0].Query != "q0" || len(results[0].Hits) != 1 || results[0].Hits[0].Score != 42 {
		t.Fatalf("results = %+v", results)
	}
	fs := core.FilterStats()
	if fs.PrefilterDone != 1 || fs.RescoreDone != 1 || fs.Windows != 1 || fs.ResiduesScanned != 1000 || fs.CandidateResidues != 80 {
		t.Fatalf("filter stats = %+v", fs)
	}
}

// TestFilteredJobWithMixedFleet: a GPU (SW-only) slave joins a filtered job
// alongside CPU slaves; the job must complete, with the GPU simply idle.
func TestFilteredJobWithMixedFleet(t *testing.T) {
	db, queries := plantedJob(17, 4, 500, 2, 24)
	scheme := score.DefaultProtein()
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     &sched.PSS{},
		Filtered:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cpu, _ := slave.NewFarrarEngine("cpu", scheme, db, 0)
	gpu, _ := slave.NewGPUEngine("gpu", cudasw.GTX580(), scheme, db, 0)

	var wg sync.WaitGroup
	var cpuErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, cpuErr = slave.Run(wire.Local{H: m}, cpu, slave.Options{NotifyEvery: 10 * time.Millisecond, Poll: 2 * time.Millisecond})
	}()
	// The GPU slave polls standby until Done; run it too, it must exit
	// cleanly without ever being handed a prefilter or rescore task.
	var gpuErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, gpuErr = slave.Run(wire.Local{H: m}, gpu, slave.Options{NotifyEvery: 10 * time.Millisecond, Poll: 2 * time.Millisecond})
	}()
	wg.Wait()
	if cpuErr != nil || gpuErr != nil {
		t.Fatalf("cpu err %v, gpu err %v", cpuErr, gpuErr)
	}
	if err := m.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Results()); got != len(queries) {
		t.Fatalf("%d results for %d queries", got, len(queries))
	}
}

// TestFilteredStageProgress asserts the per-stage hook sees both stages
// reach completion.
func TestFilteredStageProgress(t *testing.T) {
	db, queries := plantedJob(29, 3, 400, 2, 20)
	var mu sync.Mutex
	last := map[string]int64{}
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Filtered:   true,
		StageProgress: func(stage string, done, total int64) {
			mu.Lock()
			defer mu.Unlock()
			if done > last[stage] {
				last[stage] = done
			}
			if total != int64(len(queries)) {
				t.Errorf("stage %s total %d, want %d", stage, total, len(queries))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cpu, _ := slave.NewFarrarEngine("cpu", score.DefaultProtein(), db, 0)
	runLocal(t, m, []slave.Engine{cpu})
	if err := m.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if last["prefilter"] != int64(len(queries)) || last["rescore"] != int64(len(queries)) {
		t.Fatalf("stage progress high-water marks: %v", last)
	}
}

// TestFilteredStageEvents: a filtered run's event log carries one "stage"
// line per completed stage per query, readable by the platform trace parser
// (the JSON-shape contract between metrics.Event and platform.TraceEvent).
func TestFilteredStageEvents(t *testing.T) {
	db, queries := plantedJob(43, 3, 400, 2, 20)
	var buf bytes.Buffer
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Filtered:   true,
		Events:     metrics.NewEventLog(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cpu, _ := slave.NewFarrarEngine("cpu", score.DefaultProtein(), db, 0)
	runLocal(t, m, []slave.Engine{cpu})
	if err := m.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	events, err := platform.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byStage := map[string]int{}
	for _, e := range events {
		if e.Kind != metrics.EventStage {
			continue
		}
		byStage[e.Stage]++
		if e.PE != "cpu" {
			t.Errorf("stage event PE %q", e.PE)
		}
		if e.Stage == "prefilter" && (e.Selectivity <= 0 || e.Selectivity >= 1) {
			t.Errorf("prefilter event selectivity %v", e.Selectivity)
		}
	}
	if byStage["prefilter"] != len(queries) || byStage["rescore"] != len(queries) {
		t.Fatalf("stage events %v, want %d of each", byStage, len(queries))
	}
}
