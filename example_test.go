package hybridsw_test

import (
	"fmt"

	hybridsw "repro"
)

// ExampleAlign aligns two related protein fragments with the paper's
// default scoring (BLOSUM62, gap open 10 / extend 2).
func ExampleAlign() {
	scheme := hybridsw.DefaultScheme()
	a := hybridsw.Align([]byte("HEAGAWGHEE"), []byte("PAWHEAE"), scheme)
	fmt.Println("score:", a.Score)
	fmt.Printf("%s\n%s\n", a.QueryRow, a.TargetRow)
	// Output:
	// score: 17
	// HEA
	// HEA
}

// ExampleScore computes just the optimal local score (phase 1).
func ExampleScore() {
	scheme := hybridsw.DefaultScheme()
	fmt.Println(hybridsw.Score([]byte("MKVLATGLL"), []byte("MKVLAGLL"), scheme))
	// Output: 24
}

// ExampleSearch runs a tiny hybrid database search end to end: one
// simulated GPU plus one SSE core under the PSS policy with the workload
// adjustment mechanism.
func ExampleSearch() {
	db, _ := hybridsw.GenerateDatabase("Ensembl Dog Proteins", 0.0003, 1)
	queries := hybridsw.GenerateQueries(db, 1, 60, 60, 2)

	report, err := hybridsw.Search(queries, db, hybridsw.Platform{
		GPUs: 1, SSECores: 1, Policy: "PSS", Adjust: true, TopK: 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r := report.PerQuery[0]
	fmt.Printf("%s best hit %s with score %d\n", r.Query, r.Hits[0].SeqID, r.Hits[0].Score)
	// Output: Q00_len60 best hit DB000002 with score 293
}

// ExampleSimulate predicts the paper's testbed behaviour on the calibrated
// virtual-time platform: 4 GTX 580s plus 4 SSE cores against SwissProt.
func ExampleSimulate() {
	res, err := hybridsw.Simulate("UniProtKB/SwissProt", 4, 4, "PSS", true, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("within the paper's ballpark (~112 s): %v\n",
		res.Makespan.Seconds() > 90 && res.Makespan.Seconds() < 160)
	// Output: within the paper's ballpark (~112 s): true
}
