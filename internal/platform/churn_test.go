package platform

import (
	"testing"
	"time"

	"repro/internal/sched"
)

func churnTasks(n int, cells int64) []sched.Task {
	tasks := make([]sched.Task, n)
	for i := range tasks {
		tasks[i] = sched.Task{QueryID: "q", Cells: cells}
	}
	return tasks
}

func TestSlaveLeavesTasksRequeue(t *testing.T) {
	// Two equal PEs, one dies mid-run; the job must still finish with all
	// tasks accounted for, on the survivor.
	dying := &PE{Name: "dying", CellsPerSec: 10, LeaveAt: 5 * time.Second}
	survivor := &PE{Name: "survivor", CellsPerSec: 10}
	res, err := Run(Experiment{
		Tasks:       churnTasks(8, 100), // 10 s per task per PE
		PEs:         []*PE{dying, survivor},
		Policy:      sched.SS{},
		NotifyEvery: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The survivor alone carries ~all 800 cells: at 10 cells/s that is
	// ~80 s (the dying PE completed nothing in 5 s of its 10 s task).
	if res.Makespan < 70*time.Second || res.Makespan > 95*time.Second {
		t.Errorf("makespan = %v, want ~80s on the survivor", res.Makespan)
	}
	if res.PerPE[1].TasksWon != 8 {
		t.Errorf("survivor won %d tasks, want all 8", res.PerPE[1].TasksWon)
	}
}

func TestSlaveJoinsMidRun(t *testing.T) {
	// A second PE joining halfway shortens the makespan.
	solo, err := Run(Experiment{
		Tasks:       churnTasks(10, 100),
		PEs:         []*PE{{Name: "a", CellsPerSec: 10}},
		Policy:      sched.SS{},
		NotifyEvery: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	joined, err := Run(Experiment{
		Tasks: churnTasks(10, 100),
		PEs: []*PE{
			{Name: "a", CellsPerSec: 10},
			{Name: "late", CellsPerSec: 10, JoinAt: 30 * time.Second},
		},
		Policy:      sched.SS{},
		NotifyEvery: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Makespan != 100*time.Second {
		t.Errorf("solo makespan = %v, want 100s", solo.Makespan)
	}
	// Late joiner handles ~3-4 of the remaining 7 tasks: ~60-70 s total.
	if joined.Makespan >= solo.Makespan || joined.Makespan > 75*time.Second {
		t.Errorf("joined makespan = %v, want meaningfully below 100s", joined.Makespan)
	}
	if joined.PerPE[1].TasksWon == 0 {
		t.Error("late joiner did no work")
	}
}

func TestLeaveBeforeJoinRejected(t *testing.T) {
	bad := &PE{Name: "x", CellsPerSec: 1, JoinAt: 10 * time.Second, LeaveAt: 5 * time.Second}
	if err := bad.Validate(); err == nil {
		t.Error("LeaveAt before JoinAt accepted")
	}
}

func TestAllSlavesLeaveFailsCleanly(t *testing.T) {
	// If every PE leaves, the simulation drains without finishing and Run
	// must report it instead of hanging or panicking.
	pe := &PE{Name: "only", CellsPerSec: 1, LeaveAt: time.Second}
	_, err := Run(Experiment{
		Tasks:       churnTasks(2, 100),
		PEs:         []*PE{pe},
		Policy:      sched.SS{},
		NotifyEvery: time.Second,
	})
	if err == nil {
		t.Fatal("expected an unfinished-job error")
	}
}

func TestFPGAPEJoinsHybrid(t *testing.T) {
	pes := append(Hybrid(1, 1), FPGAPE("FPGA1"))
	res, err := Run(Experiment{
		Tasks:       churnTasks(12, 20e9),
		PEs:         pes,
		Policy:      &sched.PSS{},
		Adjust:      true,
		NotifyEvery: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerPE[2].Kind != sched.KindFPGA {
		t.Errorf("kind = %v", res.PerPE[2].Kind)
	}
	if res.PerPE[2].TasksWon == 0 {
		t.Error("FPGA did no work")
	}
	if sched.KindFPGA.String() != "FPGA" {
		t.Error("kind name")
	}
}
