package sw

import "repro/internal/score"

// dpState identifies which DP matrix a traceback step is in.
type dpState byte

const (
	stateH dpState = iota // match/mismatch matrix
	stateE                // gap-in-query matrix (horizontal moves)
	stateF                // gap-in-target matrix (vertical moves)
)

const negInf = -(1 << 30)

// Align computes an optimal Smith-Waterman local alignment of q vs t with a
// full O(mn) DP matrix and traceback (the paper's §II-A phase 2). With an
// affine scheme this is the Gotoh three-matrix variant.
func Align(q, t []byte, s score.Scheme) *Alignment {
	m, n := len(q), len(t)
	H, E, F := fullMatrices(q, t, s, false)

	best, bi, bj := 0, 0, 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			if H[i][j] > best {
				best, bi, bj = H[i][j], i, j
			}
		}
	}
	a := &Alignment{Score: best}
	if best == 0 {
		return a
	}
	var qRow, tRow []byte // built in reverse
	i, j := bi, bj
	st := stateH
	for i > 0 || j > 0 {
		switch st {
		case stateH:
			if H[i][j] == 0 {
				goto done
			}
			switch {
			case H[i][j] == E[i][j]:
				st = stateE
			case H[i][j] == F[i][j]:
				st = stateF
			default: // diagonal
				qRow = append(qRow, q[i-1])
				tRow = append(tRow, t[j-1])
				i, j = i-1, j-1
			}
		case stateE:
			qRow = append(qRow, '-')
			tRow = append(tRow, t[j-1])
			if E[i][j] == H[i][j-1]-s.Gap.Open-s.Gap.Extend {
				st = stateH
			}
			j--
		case stateF:
			qRow = append(qRow, q[i-1])
			tRow = append(tRow, '-')
			if F[i][j] == H[i-1][j]-s.Gap.Open-s.Gap.Extend {
				st = stateH
			}
			i--
		}
	}
done:
	reverse(qRow)
	reverse(tRow)
	a.QueryRow, a.TargetRow = qRow, tRow
	a.QueryStart, a.QueryEnd = i, bi
	a.TargetStart, a.TargetEnd = j, bj
	return a
}

// AlignGlobal computes an optimal Needleman-Wunsch global alignment of q vs
// t under the (affine or linear) scheme. Unlike local alignment the score
// may be negative.
func AlignGlobal(q, t []byte, s score.Scheme) *Alignment {
	m, n := len(q), len(t)
	H, E, F := fullMatrices(q, t, s, true)

	a := &Alignment{Score: H[m][n], QueryEnd: m, TargetEnd: n}
	var qRow, tRow []byte
	i, j := m, n
	st := stateH
	for i > 0 || j > 0 {
		switch st {
		case stateH:
			switch {
			case i > 0 && j > 0 && H[i][j] == H[i-1][j-1]+s.Matrix.Score(q[i-1], t[j-1]):
				qRow = append(qRow, q[i-1])
				tRow = append(tRow, t[j-1])
				i, j = i-1, j-1
			case j > 0 && H[i][j] == E[i][j]:
				st = stateE
			default:
				st = stateF
			}
		case stateE:
			qRow = append(qRow, '-')
			tRow = append(tRow, t[j-1])
			if j == 1 || E[i][j] == H[i][j-1]-s.Gap.Open-s.Gap.Extend {
				st = stateH
			}
			j--
		case stateF:
			qRow = append(qRow, q[i-1])
			tRow = append(tRow, '-')
			if i == 1 || F[i][j] == H[i-1][j]-s.Gap.Open-s.Gap.Extend {
				st = stateH
			}
			i--
		}
	}
	reverse(qRow)
	reverse(tRow)
	a.QueryRow, a.TargetRow = qRow, tRow
	return a
}

// fullMatrices fills the Gotoh H/E/F matrices. When global is true the first
// row and column carry gap penalties instead of zeros and the recurrence
// drops the 0 floor.
func fullMatrices(q, t []byte, s score.Scheme, global bool) (H, E, F [][]int) {
	m, n := len(q), len(t)
	H = make([][]int, m+1)
	E = make([][]int, m+1)
	F = make([][]int, m+1)
	for i := 0; i <= m; i++ {
		H[i] = make([]int, n+1)
		E[i] = make([]int, n+1)
		F[i] = make([]int, n+1)
	}
	open, ext := s.Gap.Open, s.Gap.Extend
	for j := 1; j <= n; j++ {
		E[0][j], F[0][j] = negInf, negInf
		if global {
			E[0][j] = -open - j*ext
			H[0][j] = E[0][j]
		}
	}
	for i := 1; i <= m; i++ {
		E[i][0], F[i][0] = negInf, negInf
		if global {
			F[i][0] = -open - i*ext
			H[i][0] = F[i][0]
		}
		for j := 1; j <= n; j++ {
			E[i][j] = max(H[i][j-1]-open-ext, E[i][j-1]-ext)
			F[i][j] = max(H[i-1][j]-open-ext, F[i-1][j]-ext)
			h := max(H[i-1][j-1]+s.Matrix.Score(q[i-1], t[j-1]), E[i][j], F[i][j])
			if !global {
				h = max(h, 0)
			}
			H[i][j] = h
		}
	}
	return H, E, F
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}
