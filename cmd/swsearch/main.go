// Command swsearch compares a query file against a database file on an
// in-process hybrid platform: the paper's master/slave environment with
// real engines (adapted Farrar SSE cores and simulated CUDASW++ GPUs).
//
// Usage:
//
//	swsearch -queries queries.fasta -db db.fasta \
//	         -gpus 1 -sse 2 -policy PSS -adjust -top 5
package main

import (
	"flag"
	"fmt"
	"os"

	hybridsw "repro"
	"repro/internal/fasta"
	"repro/internal/gcups"
)

func main() {
	var (
		qPath  = flag.String("queries", "", "query FASTA file")
		dbPath = flag.String("db", "", "database FASTA file")
		gpus   = flag.Int("gpus", 1, "simulated GPU engines")
		sse    = flag.Int("sse", 2, "SSE-core engines")
		policy = flag.String("policy", "PSS", "allocation policy: SS, PSS, Fixed, WFixed")
		adjust = flag.Bool("adjust", true, "enable the workload adjustment mechanism")
		omega  = flag.Int("omega", 0, "PSS history window (0 = default)")
		topK   = flag.Int("top", 5, "hits reported per query (0 = all)")
		kernel = flag.String("kernel", "farrar", "CPU kernel: farrar, swipe or multicore")
		doAln  = flag.Bool("align", false, "print the traceback alignment of each query's best hit")
		cores  = flag.Int("cores", 0, "workers per multicore engine (0 = all)")
	)
	flag.Parse()
	if *qPath == "" || *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	queries, err := fasta.ReadFile(*qPath)
	if err != nil {
		fail("%v", err)
	}
	db, err := fasta.ReadFile(*dbPath)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("comparing %d queries to %d database sequences on %d GPU + %d SSE (%s, adjust=%v)\n",
		len(queries), len(db), *gpus, *sse, *policy, *adjust)

	rep, err := hybridsw.Search(queries, db, hybridsw.Platform{
		GPUs:         *gpus,
		SSECores:     *sse,
		Policy:       *policy,
		Adjust:       *adjust,
		Omega:        *omega,
		TopK:         *topK,
		CPUKernel:    *kernel,
		CoresPerHost: *cores,
		AlignBest:    *doAln,
	})
	if err != nil {
		fail("%v", err)
	}
	var residues int64
	for _, d := range db {
		residues += int64(d.Len())
	}
	queryLen := map[string]int{}
	for _, q := range queries {
		queryLen[q.ID] = q.Len()
	}

	for _, r := range rep.PerQuery {
		fmt.Printf("\n%s  (finished by slave %d at %s s", r.Query, r.Slave, gcups.Seconds(r.Elapsed))
		if r.Replicas > 0 {
			fmt.Printf(", %d replica(s) via workload adjustment", r.Replicas)
		}
		fmt.Println(")")
		for i, h := range r.Hits {
			fmt.Printf("  %2d. %-12s score %d", i+1, h.SeqID, h.Score)
			if e, ok := hybridsw.HitEValue(hybridsw.DefaultScheme(), h.Score, queryLen[r.Query], residues); ok {
				fmt.Printf("  E=%.2g", e)
			}
			fmt.Println()
		}
		if *doAln && len(r.Hits) > 0 && len(r.Hits[0].QueryRow) > 0 {
			best := r.Hits[0]
			a := hybridsw.Alignment{
				Score:      best.Score,
				QueryStart: best.QueryStart, QueryEnd: best.QueryEnd,
				TargetStart: best.TargetStart, TargetEnd: best.TargetEnd,
				QueryRow: best.QueryRow, TargetRow: best.TargetRow,
			}
			fmt.Print(a.Format(hybridsw.DefaultScheme(), 60))
		}
	}
	fmt.Printf("\ntotal: %s s wall clock, %.3f GCUPS\n", gcups.Seconds(rep.Elapsed), rep.GCUPS())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swsearch: "+format+"\n", args...)
	os.Exit(1)
}
