package platform

import (
	"testing"
	"time"

	"repro/internal/sched"
)

// fig5Experiment reproduces the paper's Fig. 5 walkthrough: 20 tasks of 1 s
// GPU work, 1 GPU six times faster than 3 SSE cores, PSS policy, negligible
// communication time.
func fig5Experiment(adjust bool) Experiment {
	tasks := make([]sched.Task, 20)
	for i := range tasks {
		tasks[i] = sched.Task{QueryID: "q", Cells: 6} // 6 cells at 6 cells/s = 1 s on the GPU
	}
	gpu := &PE{Name: "GPU1", Kind: sched.KindGPU, CellsPerSec: 6}
	pes := []*PE{gpu}
	for i := 1; i <= 3; i++ {
		pes = append(pes, &PE{Name: "SSE" + string(rune('0'+i)), Kind: sched.KindCPU, CellsPerSec: 1})
	}
	return Experiment{
		Tasks:       tasks,
		PEs:         pes,
		Policy:      &sched.PSS{},
		Adjust:      adjust,
		NotifyEvery: 500 * time.Millisecond,
	}
}

func TestFig5WithAdjustment(t *testing.T) {
	res, err := Run(fig5Experiment(true))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: total execution time is 14 s with the mechanism.
	if got := res.Makespan.Round(time.Millisecond); got != 14*time.Second {
		t.Errorf("makespan = %v, want 14s", got)
	}
	if res.Replicas != 1 {
		t.Errorf("replicas = %d, want exactly 1 (t20 on the GPU)", res.Replicas)
	}
	// The replica goes to the GPU, not to the equally-slow SSEs.
	last := res.Assignments[len(res.Assignments)-1]
	if !last.Replica || last.Slave != 0 {
		t.Errorf("last assignment = %+v, want replica on GPU (slave 0)", last)
	}
}

func TestFig5WithoutAdjustment(t *testing.T) {
	res, err := Run(fig5Experiment(false))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 18 s without the mechanism (SSE1 drags t20 to the end).
	if got := res.Makespan.Round(time.Millisecond); got != 18*time.Second {
		t.Errorf("makespan = %v, want 18s", got)
	}
	if res.Replicas != 0 {
		t.Errorf("replicas = %d, want 0", res.Replicas)
	}
}

func TestFig5AssignmentPattern(t *testing.T) {
	// The paper's schedule: after its first task the GPU receives 6 tasks
	// per request.
	res, err := Run(fig5Experiment(true))
	if err != nil {
		t.Fatal(err)
	}
	var gpuGrants []int
	for _, a := range res.Assignments {
		if a.Slave == 0 && !a.Replica {
			gpuGrants = append(gpuGrants, len(a.Tasks))
		}
	}
	if len(gpuGrants) < 3 || gpuGrants[0] != 1 || gpuGrants[1] != 6 || gpuGrants[2] != 6 {
		t.Errorf("GPU grants = %v, want [1 6 6]", gpuGrants)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Experiment{}); err == nil {
		t.Error("empty experiment accepted")
	}
	if _, err := Run(Experiment{Tasks: []sched.Task{{Cells: 1}}}); err == nil {
		t.Error("experiment without PEs accepted")
	}
	bad := Experiment{
		Tasks: []sched.Task{{Cells: 1}},
		PEs:   []*PE{{Name: "x", CellsPerSec: -1}},
	}
	if _, err := Run(bad); err == nil {
		t.Error("invalid PE accepted")
	}
}

func TestSingleSlowPE(t *testing.T) {
	res, err := Run(Experiment{
		Tasks:       []sched.Task{{Cells: 100}, {Cells: 100}},
		PEs:         []*PE{{Name: "p", CellsPerSec: 10}},
		Policy:      sched.SS{},
		NotifyEvery: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Makespan.Round(10 * time.Millisecond); got != 20*time.Second {
		t.Errorf("makespan = %v, want 20s", got)
	}
	if res.PerPE[0].TasksWon != 2 || res.PerPE[0].CellsDone != 200 {
		t.Errorf("stats = %+v", res.PerPE[0])
	}
	if g := res.GCUPS(); g <= 0 {
		t.Errorf("GCUPS = %v", g)
	}
}

func TestTaskOverheadExtendsMakespan(t *testing.T) {
	base := Experiment{
		Tasks:       []sched.Task{{Cells: 100}},
		PEs:         []*PE{{Name: "p", CellsPerSec: 10}},
		Policy:      sched.SS{},
		NotifyEvery: time.Second,
	}
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.PEs = []*PE{{Name: "p", CellsPerSec: 10, TaskOverhead: 2 * time.Second}}
	r2, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if d := r2.Makespan - r1.Makespan; d.Round(10*time.Millisecond) != 2*time.Second {
		t.Errorf("overhead delta = %v, want 2s", d)
	}
}

func TestLoadPhaseSlowsPE(t *testing.T) {
	// Full capacity: 100 cells at 10/s = 10 s. Capacity 0.5 throughout:
	// 20 s.
	exp := Experiment{
		Tasks: []sched.Task{{Cells: 100}},
		PEs: []*PE{{
			Name: "p", CellsPerSec: 10,
			Load: []LoadPhase{{From: 0, Capacity: 0.5}},
		}},
		Policy:      sched.SS{},
		NotifyEvery: time.Second,
	}
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Makespan.Round(100 * time.Millisecond); got != 20*time.Second {
		t.Errorf("makespan = %v, want 20s", got)
	}
}

func TestLoadPhaseWindowed(t *testing.T) {
	// 10/s for 5 s (50 cells), then half speed: remaining 50 cells take
	// 10 s. Total 15 s.
	exp := Experiment{
		Tasks: []sched.Task{{Cells: 100}},
		PEs: []*PE{{
			Name: "p", CellsPerSec: 10,
			Load: []LoadPhase{{From: 5 * time.Second, Capacity: 0.5}},
		}},
		Policy:      sched.SS{},
		NotifyEvery: 500 * time.Millisecond,
	}
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Makespan.Round(100 * time.Millisecond); got != 15*time.Second {
		t.Errorf("makespan = %v, want 15s", got)
	}
}

func TestHeterogeneousFasterWithAdjustment(t *testing.T) {
	// A generic heterogeneous endgame: adjustment must never hurt and
	// should help when slow PEs hold the last tasks.
	mk := func(adjust bool) Experiment {
		tasks := make([]sched.Task, 12)
		for i := range tasks {
			tasks[i] = sched.Task{Cells: 1000}
		}
		return Experiment{
			Tasks: tasks,
			PEs: []*PE{
				{Name: "fast", CellsPerSec: 1000, Kind: sched.KindGPU},
				{Name: "slow1", CellsPerSec: 100},
				{Name: "slow2", CellsPerSec: 100},
			},
			Policy:      &sched.PSS{},
			Adjust:      adjust,
			NotifyEvery: 200 * time.Millisecond,
		}
	}
	with, err := Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	if with.Makespan > without.Makespan {
		t.Errorf("adjustment hurt: %v > %v", with.Makespan, without.Makespan)
	}
}

func TestCommLatencyIncreasesMakespan(t *testing.T) {
	mk := func(lat time.Duration) Experiment {
		tasks := make([]sched.Task, 10)
		for i := range tasks {
			tasks[i] = sched.Task{Cells: 10}
		}
		return Experiment{
			Tasks:       tasks,
			PEs:         []*PE{{Name: "p", CellsPerSec: 10}},
			Policy:      sched.SS{},
			CommLatency: lat,
			NotifyEvery: time.Second,
		}
	}
	fast, err := Run(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(mk(100 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= fast.Makespan {
		t.Errorf("latency had no cost: %v vs %v", slow.Makespan, fast.Makespan)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Experiment {
		tasks := make([]sched.Task, 8)
		for i := range tasks {
			tasks[i] = sched.Task{Cells: 500}
		}
		return Experiment{
			Tasks:       tasks,
			PEs:         []*PE{SSEPE("a"), SSEPE("b"), GPUPE("g")},
			Policy:      &sched.PSS{},
			Adjust:      true,
			NotifyEvery: 100 * time.Millisecond,
			Seed:        99,
		}
	}
	r1, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.Replicas != r2.Replicas {
		t.Errorf("runs differ: %v/%d vs %v/%d", r1.Makespan, r1.Replicas, r2.Makespan, r2.Replicas)
	}
}

func TestTimelineRecorded(t *testing.T) {
	res, err := Run(Experiment{
		Tasks:       []sched.Task{{Cells: 100}},
		PEs:         []*PE{{Name: "p", CellsPerSec: 10}},
		Policy:      sched.SS{},
		NotifyEvery: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.PerPE[0].Timeline
	if len(tl) < 5 {
		t.Fatalf("timeline has %d samples, want >= 5", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].T <= tl[i-1].T {
			t.Fatal("timeline not increasing")
		}
	}
}

func TestCapacityAt(t *testing.T) {
	pe := &PE{Name: "p", CellsPerSec: 1, Load: []LoadPhase{
		{From: 10 * time.Second, To: 20 * time.Second, Capacity: 0.5},
		{From: 15 * time.Second, Capacity: 0.8},
	}}
	if got := pe.CapacityAt(5 * time.Second); got != 1 {
		t.Errorf("capacity(5s) = %v", got)
	}
	if got := pe.CapacityAt(12 * time.Second); got != 0.5 {
		t.Errorf("capacity(12s) = %v", got)
	}
	if got := pe.CapacityAt(17 * time.Second); got != 0.4 {
		t.Errorf("capacity(17s) = %v, want stacked 0.4", got)
	}
	if got := pe.CapacityAt(25 * time.Second); got != 0.8 {
		t.Errorf("capacity(25s) = %v", got)
	}
}

func TestHybridConstructor(t *testing.T) {
	pes := Hybrid(2, 4)
	if len(pes) != 6 {
		t.Fatalf("Hybrid(2,4) built %d PEs", len(pes))
	}
	if pes[0].Kind != sched.KindGPU || pes[5].Kind != sched.KindCPU {
		t.Error("kinds wrong")
	}
	if pes[0].CellsPerSec <= pes[5].CellsPerSec {
		t.Error("GPU not faster than SSE in calibration")
	}
}

func TestCalibrationAnchors(t *testing.T) {
	// 1 SSE core on SwissProt must land near the paper's 7,190 s.
	cells := int64(102000) * int64(190814275)
	secs := float64(cells) / (SSECoreGCUPS * 1e9)
	if secs < 6800 || secs > 7600 {
		t.Errorf("SSE SwissProt time = %.0f s, want ~7190", secs)
	}
}
