package cluster

import "repro/internal/metrics"

// ScanBuckets spans one shard's scan time within a job: sub-millisecond
// for tiny test shards up to minutes for real database partitions.
var ScanBuckets = []float64{0.001, 0.01, 0.05, 0.25, 1, 5, 20, 60, 300}

// Metrics is the cluster backend's instrumentation bundle. Like every
// bundle in this repo it is optional: a Fleet with a nil Config.Registry
// skips all accounting.
type Metrics struct {
	Searches       *metrics.CounterVec // by mode
	ShardScans     *metrics.CounterVec // by outcome ("done", "failed")
	Failovers      *metrics.Counter
	ReplicasKilled *metrics.Counter
	LiveReplicas   *metrics.Gauge

	ShardScanSeconds *metrics.Histogram
}

// NewMetrics registers (or re-attaches to) the cluster families on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Searches:         r.CounterVec("cluster_searches_total", "Scatter-gather searches executed, by pipeline mode.", "mode"),
		ShardScans:       r.CounterVec("cluster_shard_scans_total", "Per-shard scans finished within jobs, by outcome.", "outcome"),
		Failovers:        r.Counter("cluster_failovers_total", "Replica failures absorbed mid-job (tasks requeued onto surviving replicas)."),
		ReplicasKilled:   r.Counter("cluster_replicas_killed_total", "Replicas administratively killed through the fault-injection seam."),
		LiveReplicas:     r.Gauge("cluster_live_replicas", "Replica engines currently alive across all shards."),
		ShardScanSeconds: r.Histogram("cluster_shard_scan_seconds", "Wall time of one shard's scan within a job.", ScanBuckets),
	}
}
